package main

import (
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/fuzz"
)

func TestPickModes(t *testing.T) {
	cases := []struct {
		in   string
		want []core.Mode
	}{
		{"all", []core.Mode{core.ModeQueuing, core.ModeNack}},
		{"queuing", []core.Mode{core.ModeQueuing}},
		{"nack", []core.Mode{core.ModeNack}},
	}
	for _, c := range cases {
		got, err := pickModes(c.in)
		if err != nil {
			t.Fatalf("pickModes(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("pickModes(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("pickModes(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	if _, err := pickModes("dash"); err == nil {
		t.Fatal("pickModes(\"dash\") should fail")
	}
}

func TestPickBool(t *testing.T) {
	cases := []struct {
		in   string
		want []bool
	}{
		{"all", []bool{true, false}},
		{"on", []bool{true}},
		{"off", []bool{false}},
	}
	for _, c := range cases {
		got, err := pickBool(c.in)
		if err != nil {
			t.Fatalf("pickBool(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("pickBool(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("pickBool(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	if _, err := pickBool("maybe"); err == nil {
		t.Fatal("pickBool(\"maybe\") should fail")
	}
}

func TestCellsSingleSlice(t *testing.T) {
	got, err := cells("queuing", "on", "off", "4")
	if err != nil {
		t.Fatalf("cells: %v", err)
	}
	want := []fuzz.Cell{{Mode: core.ModeQueuing, Multicast: true, Update: false, Stages: 4}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("cells = %v, want %v", got, want)
	}
}

// TestCellsFullMatrix checks the sweep size and that the "all" update
// axis matches fuzz.DefaultCells order (off before on) so -replay
// per-case seeds line up with the library sweep.
func TestCellsFullMatrix(t *testing.T) {
	got, err := cells("all", "all", "all", "2, 4,6")
	if err != nil {
		t.Fatalf("cells: %v", err)
	}
	if want := 2 * 2 * 2 * 3; len(got) != want {
		t.Fatalf("full matrix has %d cells, want %d", len(got), want)
	}
	if got[0].Stages != 2 || got[1].Stages != 4 || got[2].Stages != 6 {
		t.Fatalf("stages should be the innermost axis, got %v, %v, %v", got[0], got[1], got[2])
	}
	if got[0].Update || !got[3].Update {
		t.Fatalf("update axis should sweep off before on, got %v then %v", got[0], got[3])
	}
}

func TestCellsRejectsBadValues(t *testing.T) {
	cases := []struct {
		name                           string
		mode, multicast, update, stage string
		wantErr                        string
	}{
		{"bad mode", "dash", "all", "all", "4", "-mode"},
		{"bad multicast", "all", "yes", "all", "4", "-multicast"},
		{"bad update", "all", "all", "sometimes", "4", "-update"},
		{"bad stages", "all", "all", "all", "4,x", "-stages"},
		{"empty stages entry", "all", "all", "all", "4,,6", "-stages"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := cells(c.mode, c.multicast, c.update, c.stage)
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
