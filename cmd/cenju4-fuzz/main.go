// Command cenju4-fuzz drives the coherence-traffic fuzzer and
// consistency oracle across the protocol configuration matrix.
//
// Usage:
//
//	cenju4-fuzz -seed 1 -ops 50000                    # full sweep
//	cenju4-fuzz -pattern hotspot -mode nack -ops 5000 # one slice
//	cenju4-fuzz -replay 834259609813245009            # re-run one case
//	                                                    with trace dump
//	cenju4-fuzz -metrics-out m.json                   # merged case metrics
//	cenju4-fuzz -replay N -trace-out t.json           # Perfetto trace of
//	                                                    the replayed case
//
// The run is deterministic: the same seed and flags reproduce a
// byte-identical report. On any oracle violation, invariant failure or
// deadlock the process exits 1 after printing the shrunk reproducer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/faults"
	"cenju4/internal/fuzz"
	"cenju4/internal/metrics"
	"cenju4/internal/topology"
	"cenju4/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cenju4-fuzz: ")
	seed := flag.Uint64("seed", 1, "run seed; per-case seeds derive from it")
	ops := flag.Int("ops", 2000, "access budget per case")
	nodes := flag.Int("nodes", 8, "node count (power of two, <= 1024)")
	rounds := flag.Int("rounds", 4, "quiescent validation rounds per case")
	pattern := flag.String("pattern", "all", "traffic pattern (or all): uniform, hotspot, partition, migratory, producer-consumer, false-sharing, eviction")
	mode := flag.String("mode", "all", "protocol mode: queuing, nack, all")
	multicast := flag.String("multicast", "all", "multicast: on, off, all")
	update := flag.String("update", "all", "update protocol: on, off, all")
	stages := flag.String("stages", "2,4,6", "network stage counts (comma separated)")
	noShrink := flag.Bool("noshrink", false, "skip shrinking failures to minimal reproducers")
	shrinkRuns := flag.Int("shrinkruns", 300, "max re-executions while shrinking one failure")
	replay := flag.Uint64("replay", 0, "re-run the one case with this per-case seed, protocol trace attached")
	quiet := flag.Bool("q", false, "suppress per-case progress lines")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent fuzz cases (1 = sequential; report and progress output are byte-identical at every setting)")
	fault := flag.String("fault", "", "deterministic fault plan for every case: preset name or k=v spec (see cenju4-chaos for plan-grid sweeps)")
	budget := flag.Uint64("budget", 0, "per-case event budget (0 = unlimited; set one when -fault may wedge nack-mode cases)")
	metricsOut := flag.String("metrics-out", "", "write the merged metrics registry of all cases as canonical JSON to this file")
	traceOut := flag.String("trace-out", "", "write the replayed case's Chrome-trace-event JSON to this file (requires -replay)")
	flag.Parse()

	if *traceOut != "" && *replay == 0 {
		log.Fatal("-trace-out requires -replay: full-matrix runs do not retain per-case event streams")
	}

	opts := fuzz.Options{
		Seed:           *seed,
		Nodes:          *nodes,
		Ops:            *ops,
		Rounds:         *rounds,
		Shrink:         !*noShrink,
		MaxShrinkRuns:  *shrinkRuns,
		Parallel:       *parallel,
		MaxEvents:      *budget,
		CollectMetrics: *metricsOut != "",
	}
	if *fault != "" {
		spec, err := faults.ParseSpec(*fault)
		if err != nil {
			log.Fatal(err)
		}
		spec = spec.Normalize()
		if err := spec.Validate(); err != nil {
			log.Fatal(err)
		}
		opts.Fault = spec
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *pattern != "all" {
		p, err := fuzz.ParsePattern(*pattern)
		if err != nil {
			log.Fatal(err)
		}
		opts.Patterns = []fuzz.Pattern{p}
	}
	var err error
	if opts.Cells, err = cells(*mode, *multicast, *update, *stages); err != nil {
		log.Fatal(err)
	}
	if !topology.ValidNodeCount(*nodes) {
		log.Fatalf("-nodes: %d is not a power of two <= %d", *nodes, topology.MaxNodes)
	}
	for _, c := range opts.Cells {
		if c.Stages < 1 || 2*c.Stages > 32 || 1<<(2*c.Stages) < *nodes {
			log.Fatalf("-stages: %d stages cannot address %d nodes", c.Stages, *nodes)
		}
	}

	if *replay != 0 {
		replayCase(opts, *replay, *metricsOut, *traceOut)
		return
	}

	rep := fuzz.Run(opts)
	fmt.Print(rep.String())
	if *metricsOut != "" {
		reg := rep.MergedMetrics()
		if reg == nil {
			reg = metrics.New()
		}
		if err := writeMetrics(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// writeMetrics writes reg as canonical JSON to path.
func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayCase re-runs the single case whose derived seed matches, with
// the protocol tracer attached, and dumps the trace on failure. When
// metricsOut/traceOut are set the case's registry and event stream are
// exported regardless of pass/fail.
func replayCase(opts fuzz.Options, caseSeed uint64, metricsOut, traceOut string) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = fuzz.AllPatterns()
	}
	if len(opts.Cells) == 0 {
		opts.Cells = fuzz.DefaultCells()
	}
	i := 0
	for _, p := range opts.Patterns {
		for _, cell := range opts.Cells {
			s := fuzz.CaseSeed(opts.Seed, i)
			i++
			if s != caseSeed {
				continue
			}
			c := fuzz.Case{
				Seed: s, Nodes: opts.Nodes, Ops: opts.Ops, Rounds: opts.Rounds,
				Pattern: p, Cell: cell, Trace: true,
				Metrics: metricsOut != "",
			}
			streams := fuzz.Generate(c.Pattern, c.Seed, c.Nodes, c.Ops)
			res := fuzz.RunOps(c, streams)
			fmt.Printf("replay %v\n", c)
			if metricsOut != "" && res.Metrics != nil {
				if err := writeMetrics(metricsOut, res.Metrics); err != nil {
					log.Fatal(err)
				}
			}
			if traceOut != "" && res.Trace != nil {
				f, err := os.Create(traceOut)
				if err != nil {
					log.Fatal(err)
				}
				dropped, err := trace.WriteChrome(f, res.Trace.Stream(fmt.Sprintf("replay %d", caseSeed)))
				if err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				if dropped > 0 {
					log.Printf("trace truncated: %d events beyond the replay collector bound (truncation is recorded in %s)", dropped, traceOut)
				}
			}
			if !res.Failed() {
				fmt.Println("ok: no violations")
				return
			}
			if res.Panic != "" {
				fmt.Printf("panic: %s\n", res.Panic)
			}
			if res.ValidateErr != "" {
				fmt.Printf("validate: %s\n", res.ValidateErr)
			}
			for _, v := range res.Violations {
				fmt.Printf("violation: %v\n", v)
			}
			if res.TraceDump != "" {
				fmt.Println(res.TraceDump)
			}
			os.Exit(1)
		}
	}
	log.Fatalf("no case with seed %d under these flags (the per-case seed depends on -seed and the matrix flags)", caseSeed)
}

func cells(mode, multicast, update, stages string) ([]fuzz.Cell, error) {
	modes, err := pickModes(mode)
	if err != nil {
		return nil, fmt.Errorf("-mode: %w", err)
	}
	mcs, err := pickBool(multicast)
	if err != nil {
		return nil, fmt.Errorf("-multicast: %w", err)
	}
	upds, err := pickBool(update)
	if err != nil {
		return nil, fmt.Errorf("-update: %w", err)
	}
	if update == "all" {
		// Match fuzz.DefaultCells order (off before on) so per-case
		// seeds line up with the library's sweep for -replay.
		upds = []bool{false, true}
	}
	var stageList []int
	for _, s := range strings.Split(stages, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			return nil, fmt.Errorf("-stages: bad value %q", s)
		}
		stageList = append(stageList, n)
	}
	var out []fuzz.Cell
	for _, m := range modes {
		for _, mc := range mcs {
			for _, u := range upds {
				for _, st := range stageList {
					out = append(out, fuzz.Cell{Mode: m, Multicast: mc, Update: u, Stages: st})
				}
			}
		}
	}
	return out, nil
}

func pickModes(s string) ([]core.Mode, error) {
	switch s {
	case "all":
		return []core.Mode{core.ModeQueuing, core.ModeNack}, nil
	case "queuing":
		return []core.Mode{core.ModeQueuing}, nil
	case "nack":
		return []core.Mode{core.ModeNack}, nil
	}
	return nil, fmt.Errorf("unknown value %q (queuing, nack, all)", s)
}

func pickBool(s string) ([]bool, error) {
	switch s {
	case "all":
		return []bool{true, false}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	}
	return nil, fmt.Errorf("unknown value %q (on, off, all)", s)
}
