// Command cenju4-serve hosts the memoizing experiment service: an
// HTTP/JSON API that runs deterministic Cenju-4 simulations on demand
// and memoizes them by content digest (see internal/serve).
//
// Usage:
//
//	cenju4-serve [-addr :8944] [-workers n] [-queue n] [-batch n]
//	             [-cache-bytes n] [-max-nodes n] [-max-events n]
//	             [-job-timeout d]
//
// Endpoints:
//
//	POST /v1/jobs               submit a spec, wait for the payload
//	GET  /v1/jobs/{digest}       fetch a cached payload
//	GET  /v1/jobs/{digest}/trace fetch a run's Chrome-trace payload
//	GET  /v1/metrics             service + merged simulation metrics
//	GET  /healthz                liveness
//
// SIGINT/SIGTERM triggers a graceful drain: no new jobs are admitted,
// queued and running jobs finish (bounded by -drain-timeout), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cenju4/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8944", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation workers per batch")
	queue := flag.Int("queue", 256, "admission queue depth (beyond it, submissions get 429)")
	batch := flag.Int("batch", 0, "max jobs per runner batch (0 = 2x workers)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "result cache bound in bytes")
	maxNodes := flag.Int("max-nodes", 0, "per-job node ceiling (0 = topology max)")
	maxEvents := flag.Uint64("max-events", 500_000_000, "per-job simulation event budget (0 = unlimited)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job wall-clock budget (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		BatchMax:   *batch,
		JobTimeout: *jobTimeout,
		CacheBytes: *cacheBytes,
		Limits:     serve.Limits{MaxNodes: *maxNodes, MaxEvents: *maxEvents},
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cenju4-serve: listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		*addr, *workers, *queue, *cacheBytes>>20)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "cenju4-serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "cenju4-serve: %v, draining (bound %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections and let in-flight requests finish while
	// the pool drains its queue.
	shutdownErr := hs.Shutdown(ctx)
	closeErr := s.Close(ctx)
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "cenju4-serve: shutdown: %v\n", shutdownErr)
		os.Exit(1)
	}
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "cenju4-serve: drain incomplete: %v\n", closeErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cenju4-serve: drained cleanly")
}
