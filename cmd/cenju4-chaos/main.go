// Command cenju4-chaos runs the coherence fuzz matrix under a grid of
// deterministic fault plans and holds every plan to its contract:
// recoverable plans must pass the shadow-memory oracle with
// byte-identical digests at any parallelism, and unrecoverable plans
// must abort within the event budget — a quiescence-watchdog trip with
// a stuck-state diagnosis under the queuing protocol, an event-budget
// abort for the nack protocol's livelock.
//
// Usage:
//
//	cenju4-chaos                                  # full plan grid
//	cenju4-chaos -plan drop-forwards              # one plan (watchdog expected)
//	cenju4-chaos -plan 'drop=0.1,timeout=100000' -expect recover
//	cenju4-chaos -check-parallel                  # cross-check digests at -parallel 1
//
// The run is deterministic: the same seed and flags reproduce a
// byte-identical report. Exit status 1 when any plan violates its
// contract.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"cenju4/internal/core"
	"cenju4/internal/faults"
	"cenju4/internal/fuzz"
	"cenju4/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cenju4-chaos: ")
	seed := flag.Uint64("seed", 1, "run seed; per-case seeds derive from it")
	ops := flag.Int("ops", 400, "access budget per case")
	nodes := flag.Int("nodes", 8, "node count (power of two, <= 1024)")
	rounds := flag.Int("rounds", 2, "quiescent validation rounds per case")
	pattern := flag.String("pattern", "", "traffic pattern (default: hotspot+migratory; 'all' for every generator)")
	mode := flag.String("mode", "all", "protocol mode: queuing, nack, all")
	stages := flag.Int("stages", 4, "network stage count")
	plan := flag.String("plan", "", "fault plan: preset name or k=v spec (default: the full preset grid)")
	expect := flag.String("expect", "auto", "expected outcome for -plan: auto, recover, watchdog")
	budget := flag.Uint64("budget", fuzz.DefaultChaosBudget, "per-case event budget (bounds nack-mode livelocks)")
	checkParallel := flag.Bool("check-parallel", false, "re-run recoverable plans at -parallel 1 and compare digests")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent cases (report is byte-identical at every setting)")
	flag.Parse()

	if !topology.ValidNodeCount(*nodes) {
		log.Fatalf("-nodes: %d is not a power of two <= %d", *nodes, topology.MaxNodes)
	}
	o := fuzz.ChaosOptions{
		Fuzz: fuzz.Options{
			Seed:      *seed,
			Nodes:     *nodes,
			Ops:       *ops,
			Rounds:    *rounds,
			MaxEvents: *budget,
			Parallel:  *parallel,
			Patterns:  []fuzz.Pattern{fuzz.PatternHotspot, fuzz.PatternMigratory},
		},
		CheckParallel: *checkParallel,
	}
	if *pattern == "all" {
		o.Fuzz.Patterns = fuzz.AllPatterns()
	} else if *pattern != "" {
		p, err := fuzz.ParsePattern(*pattern)
		if err != nil {
			log.Fatal(err)
		}
		o.Fuzz.Patterns = []fuzz.Pattern{p}
	}
	for _, m := range modes(*mode) {
		o.Fuzz.Cells = append(o.Fuzz.Cells, fuzz.Cell{Mode: m, Multicast: true, Stages: *stages})
	}
	if *plan != "" {
		spec, err := faults.ParseSpec(*plan)
		if err != nil {
			log.Fatal(err)
		}
		spec = spec.Normalize()
		if err := spec.Validate(); err != nil {
			log.Fatal(err)
		}
		p := fuzz.Plan{Name: *plan, Spec: spec}
		switch *expect {
		case "recover":
			p.ExpectRecover = true
		case "watchdog":
			p.ExpectRecover = false
		case "auto":
			// Recovery covers exactly the request/reply legs; faults
			// confined there are repairable, anything wider is not.
			p.ExpectRecover = spec.Scope == faults.ScopeRequestReply
		default:
			log.Fatalf("-expect: %q is not auto, recover, or watchdog", *expect)
		}
		o.Plans = []fuzz.Plan{p}
	}

	rep := fuzz.RunChaos(o)
	fmt.Print(rep.String())
	if rep.Failed() {
		os.Exit(1)
	}
}

func modes(s string) []core.Mode {
	switch s {
	case "queuing":
		return []core.Mode{core.ModeQueuing}
	case "nack":
		return []core.Mode{core.ModeNack}
	case "all":
		return []core.Mode{core.ModeQueuing, core.ModeNack}
	}
	log.Fatalf("-mode: %q is not queuing, nack, or all", s)
	return nil
}
