package main

import (
	"testing"

	"cenju4/internal/topology"
)

func TestParseSharers(t *testing.T) {
	got, err := parseSharers([]string{"0", "4", "5", "32", "164"}, 1024)
	if err != nil {
		t.Fatalf("parseSharers: %v", err)
	}
	want := []topology.NodeID{0, 4, 5, 32, 164}
	if len(got) != len(want) {
		t.Fatalf("parseSharers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSharers = %v, want %v", got, want)
		}
	}
}

func TestParseSharersEmpty(t *testing.T) {
	got, err := parseSharers(nil, 16)
	if err != nil || len(got) != 0 {
		t.Fatalf("parseSharers(nil) = %v, %v; want empty, nil", got, err)
	}
}

func TestParseSharersRejects(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		total int
	}{
		{"non-numeric", []string{"abc"}, 1024},
		{"negative", []string{"-1"}, 1024},
		{"out of range", []string{"16"}, 16},
		{"mixed good and bad", []string{"3", "oops"}, 16},
		{"float", []string{"1.5"}, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got, err := parseSharers(c.args, c.total); err == nil {
				t.Fatalf("parseSharers(%v, %d) = %v, want error", c.args, c.total, got)
			}
		})
	}
}
