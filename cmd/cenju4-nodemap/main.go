// Command cenju4-nodemap inspects the Cenju-4 directory node-map
// encodings: given a list of sharer node numbers, it shows the pointer
// or bit-pattern representation, the decoded (represented) set, and how
// the other schemes of Figure 4 would represent the same sharers.
//
// Usage:
//
//	cenju4-nodemap [-nodes 1024] 0 4 5 32 164
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cenju4-nodemap: ")
	total := flag.Int("nodes", 1024, "machine size")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cenju4-nodemap [-nodes n] sharer-node-numbers...")
		os.Exit(2)
	}

	sharers, err := parseSharers(flag.Args(), *total)
	if err != nil {
		log.Fatal(err)
	}

	var e directory.Entry
	for _, n := range sharers {
		e.MapAdd(n)
	}
	form := "pointer (precise)"
	if e.UsesBitPattern() {
		form = "bit-pattern"
	}
	members := e.MapMembers(nil, *total)
	fmt.Printf("sharers:      %v\n", sharers)
	fmt.Printf("entry:        %v\n", e)
	fmt.Printf("structure:    %s\n", form)
	fmt.Printf("represented:  %d nodes: %v\n", len(members), members)
	fmt.Printf("overshoot:    %.2fx\n\n", float64(len(members))/float64(len(sharers)))

	fmt.Println("comparison with the other Figure 4 schemes:")
	for _, s := range directory.Schemes() {
		m := s.New(*total)
		for _, n := range sharers {
			m.Add(n)
		}
		fmt.Printf("  %-28s %4d nodes represented (%.2fx)\n",
			s.Name, m.Count(), float64(m.Count())/float64(len(sharers)))
	}
}

// parseSharers turns the positional arguments into node IDs, rejecting
// anything that is not a node number of a total-node machine.
func parseSharers(args []string, total int) ([]topology.NodeID, error) {
	var sharers []topology.NodeID
	for _, arg := range args {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 || n >= total {
			return nil, fmt.Errorf("bad node number %q (machine has %d nodes)", arg, total)
		}
		sharers = append(sharers, topology.NodeID(n))
	}
	return sharers, nil
}
