// Command cenju4-lint runs the repository's custom static-analysis
// suite (internal/analysis) over Go packages and fails on any
// diagnostic. CI runs it as a required job; run it locally with:
//
//	go run ./cmd/cenju4-lint ./...
//
// Usage:
//
//	cenju4-lint [-only a,b] [-list] [packages]
//
// The analyzers enforce the protocol's compile-time invariants:
//
//	exhaustiveswitch  switches over protocol enums handle every
//	                  constant or panic in an explicit default
//	determinism       simulation packages don't range over maps, read
//	                  the wall clock, or use the global math/rand
//	enumnames         string-name tables stay index-synchronized with
//	                  their const blocks
//	simtime           event-handler contexts use sim.Engine virtual
//	                  time, never the wall clock
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/passes/determinism"
	"cenju4/internal/analysis/passes/enumnames"
	"cenju4/internal/analysis/passes/exhaustiveswitch"
	"cenju4/internal/analysis/passes/simtime"
)

// All is the cenju4-lint suite in reporting order.
var All = []*analysis.Analyzer{
	exhaustiveswitch.Analyzer,
	determinism.Analyzer,
	enumnames.Analyzer,
	simtime.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range All {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only filter against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return All, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
