// Command cenju4-lint runs the repository's custom static-analysis
// suite (internal/analysis) over Go packages and fails on any
// diagnostic. CI runs it as a required job; run it locally with:
//
//	go run ./cmd/cenju4-lint ./...
//
// Usage:
//
//	cenju4-lint [-only a,b] [-list] [-json] [packages]
//
// The analyzers enforce the protocol's compile-time invariants. The
// suite is interprocedural: the driver builds a module-wide call graph
// and the starred analyzers propagate facts across package boundaries,
// so always run over ./... — a package subset weakens their transitive
// checks.
//
//	exhaustiveswitch  switches over protocol enums handle every
//	                  constant or panic in an explicit default
//	determinism     * simulation packages don't range over maps, read
//	                  the wall clock, or use the global math/rand —
//	                  directly or through helpers in other packages
//	enumnames         string-name tables stay index-synchronized with
//	                  their const blocks
//	simtime         * event-handler contexts use sim.Engine virtual
//	                  time, never the wall clock, through any helper
//	hotalloc        * no per-event heap allocation reachable from
//	                  //cenju4:hotpath roots
//	pdessafety      * runner.Map workers don't write captured or
//	                  package-level state, through any helper
//
// With -json, findings are emitted as a JSON array of
// {analyzer, file, line, column, message} objects for tooling;
// the human format is file:line:col: message (analyzer), which the
// checked-in GitHub Actions problem matcher
// (.github/problem-matchers/cenju4-lint.json) turns into PR
// annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/passes/determinism"
	"cenju4/internal/analysis/passes/enumnames"
	"cenju4/internal/analysis/passes/exhaustiveswitch"
	"cenju4/internal/analysis/passes/hotalloc"
	"cenju4/internal/analysis/passes/pdessafety"
	"cenju4/internal/analysis/passes/simtime"
)

// All is the cenju4-lint suite in reporting order.
var All = []*analysis.Analyzer{
	exhaustiveswitch.Analyzer,
	determinism.Analyzer,
	enumnames.Analyzer,
	simtime.Analyzer,
	hotalloc.Analyzer,
	pdessafety.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range All {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "cenju4-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cenju4-lint: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable diagnostic shape: flat, stable
// field names, one object per finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as an indented JSON array ([] when the
// run is clean, so consumers can always json-decode the output).
func writeJSON(w *os.File, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -only filter against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return All, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
