// Command cenju4-load is a closed-loop load generator and soak test
// for cenju4-serve. Each client goroutine posts job specs back to
// back; the spec mix reuses a small set of popular specs with
// probability -dup (cache hits) and otherwise generates unique ones
// (cache misses). After the run it re-fetches every digest it saw and
// verifies the bodies are byte-identical, then prints a latency /
// throughput / hit-rate report.
//
// Usage:
//
//	cenju4-load -addr http://127.0.0.1:8944 [-clients n] [-requests n]
//	            [-duration d] [-dup f] [-seed n] [-app cg] [-variant dsm2]
//	            [-nodes n] [-fault plan] [-retries n] [-min-hit-rate f] [-json]
//
// With -retries set, shed responses (429 queue-full, 503 unavailable)
// are retried with seeded-jitter exponential backoff, never sooner
// than the server's Retry-After header; retry counts appear in the
// report.
//
// Exit status is nonzero if any identity check fails, any request
// errors, or the hit rate falls below -min-hit-rate (when set).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cenju4/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8944", "service base URL")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 0, "total POSTs across all clients (0 = 64x clients)")
	duration := flag.Duration("duration", 0, "run for this long instead of a request count")
	dup := flag.Float64("dup", 0.9, "probability a request duplicates a popular spec")
	seed := flag.Uint64("seed", 1, "seed for the reproducible request mix")
	app := flag.String("app", "cg", "base workload application")
	variant := flag.String("variant", "dsm2", "base workload variant")
	nodes := flag.Int("nodes", 8, "base workload node count")
	iters := flag.Int("iters", 1, "base workload iterations")
	scale := flag.Float64("scale", 0.02, "base workload problem scale")
	sharedSpecs := flag.Int("shared-specs", 4, "number of distinct popular specs")
	fault := flag.String("fault", "", "fault plan field of the base spec (preset name or k=v; recoverable plans only)")
	retries := flag.Int("retries", 0, "retry shed responses (429/503) up to this many times, backing off with seeded jitter and honoring Retry-After")
	minHitRate := flag.Float64("min-hit-rate", -1, "fail if the hit rate is below this (-1 = no assertion)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	rep, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:     *addr,
		Clients:     *clients,
		Requests:    *requests,
		Duration:    *duration,
		DupRatio:    *dup,
		Seed:        *seed,
		SharedSpecs: *sharedSpecs,
		MaxRetries:  *retries,
		Spec: serve.Spec{
			App: *app, Variant: *variant, Nodes: *nodes,
			Iterations: *iters, Scale: *scale, Fault: *fault,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cenju4-load: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "cenju4-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.String())
	}

	failed := false
	if rep.Mismatch > 0 {
		fmt.Fprintf(os.Stderr, "cenju4-load: FAIL: %d byte-identity mismatches\n", rep.Mismatch)
		failed = true
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "cenju4-load: FAIL: %d request errors\n", rep.Errors)
		failed = true
	}
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "cenju4-load: FAIL: no requests completed")
		failed = true
	}
	if *minHitRate >= 0 && rep.HitRate() < *minHitRate {
		fmt.Fprintf(os.Stderr, "cenju4-load: FAIL: hit rate %.3f below required %.3f\n", rep.HitRate(), *minHitRate)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
