// Command cenju4-bench regenerates every table and figure of the
// paper's evaluation, plus the ablation studies.
//
// Usage:
//
//	cenju4-bench [-quick|-full] [-scale f] [-iters n] [-only name]
//	             [-metrics-out m.json] [-trace-out t.json] [-trace-max n]
//
// Experiment names: table1, table2, table3, table4, fig4, fig10, fig11,
// fig12, futurework, ablations. The default runs everything under the
// quick preset (tens of seconds); -full uses Class A scale, matching
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"cenju4/internal/experiments"
	"cenju4/internal/faults"
	"cenju4/internal/metrics"
	"cenju4/internal/trace"
)

func main() {
	quick := flag.Bool("quick", true, "quick preset (small problem scale)")
	full := flag.Bool("full", false, "full preset (Class A scale; overrides -quick)")
	scale := flag.Float64("scale", 0, "override problem scale (1.0 = NPB Class A)")
	iters := flag.Int("iters", 0, "override iteration count")
	only := flag.String("only", "", "comma-separated experiments to run (default: all)")
	seed := flag.Int64("seed", 0, "Monte-Carlo seed for Figure 4 (0 = preset default)")
	ablSeed := flag.Int64("ablation-seed", 7, "sharer-placement seed for the imprecision ablation")
	fault := flag.String("fault", "", "deterministic fault plan for the application runs: preset name or k=v spec (recoverable plans only)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulation runs (1 = sequential; output is byte-identical at every setting)")
	parallelIntra := flag.Int("parallel-intra", 1, "additionally shard each application run over K conservative-PDES partitions (byte-identical output; mpi/faulted/traced runs fall back to K=1)")
	metricsOut := flag.String("metrics-out", "", "write the merged metrics registry of all machine runs as canonical JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome-trace-event (Perfetto-loadable) JSON file covering all machine runs")
	traceMax := flag.Int("trace-max", 1<<16, "per-run trace event capacity for -trace-out; excess events are counted and surfaced")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	} else if !*quick {
		cfg = experiments.Full()
	}
	if *scale != 0 {
		cfg.Scale = *scale
	}
	if *iters != 0 {
		cfg.Iterations = *iters
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	cfg.IntraParallel = *parallelIntra
	if *fault != "" {
		spec, err := faults.ParseSpec(*fault)
		if err != nil {
			log.Fatal(err)
		}
		spec = spec.Normalize()
		if err := spec.Validate(); err != nil {
			log.Fatal(err)
		}
		cfg.Fault = spec
	}
	if *metricsOut != "" || *traceOut != "" {
		ob := &experiments.Observation{}
		if *traceOut != "" {
			ob.TraceCap = *traceMax
		}
		cfg.Observe = ob
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type step struct {
		name string
		run  func() string
	}
	steps := []step{
		{"table1", func() string { return experiments.Table1().Render() }},
		{"fig4", func() string { return experiments.Figure4(cfg).Render() }},
		{"table2", func() string { return experiments.Table2().Render() }},
		{"fig10", func() string { return experiments.Figure10().Render() }},
		{"fig11", func() string { return experiments.Figure11(cfg).Render() }},
		{"fig12", func() string { return experiments.Figure12(cfg).Render() }},
		{"table3", func() string { return experiments.Table3(cfg).Render() }},
		{"table4", func() string { return experiments.Table4(cfg).Render() }},
		{"futurework", func() string { return experiments.FutureWork(cfg).Render() }},
		{"ablations", func() string {
			var b strings.Builder
			b.WriteString(experiments.AblationNack(32).Render())
			b.WriteString("\n")
			b.WriteString(experiments.AblationSinglecastThreshold(cfg, 64).Render())
			b.WriteString("\n")
			b.WriteString(experiments.AblationImprecision(cfg, 1024, *ablSeed).Render())
			return b.String()
		}},
	}

	ran := 0
	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		ran++
		start := time.Now()
		out := s.run()
		// Results go to stdout, which is byte-deterministic for a given
		// flag set at every -parallel level; wall-clock timing is a
		// progress note on stderr so it never perturbs that guarantee.
		fmt.Printf("==== %s (scale %.2f, %d iters) ====\n%s\n",
			s.name, cfg.Scale, cfg.Iterations, out)
		fmt.Fprintf(os.Stderr, "cenju4-bench: %s %.1fs\n", s.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cenju4-bench: no experiment matches %q\n", *only)
		os.Exit(2)
	}

	if *metricsOut != "" {
		reg := cfg.Observe.Metrics
		if reg == nil {
			reg = metrics.New() // no machine-building experiment selected
		}
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = reg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cenju4-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			var dropped int
			dropped, err = trace.WriteChrome(f, cfg.Observe.Streams...)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if dropped > 0 {
				fmt.Fprintf(os.Stderr, "cenju4-bench: trace truncated: %d events beyond -trace-max %d (truncation is recorded in %s)\n",
					dropped, *traceMax, *traceOut)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cenju4-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
