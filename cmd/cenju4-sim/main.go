// Command cenju4-sim runs one workload configuration on a simulated
// Cenju-4 machine and prints its execution summary.
//
// Usage:
//
//	cenju4-sim -app bt -variant dsm2 -nodes 64 [-nomap] [-scale f] [-iters n]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"cenju4"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cenju4-sim: ")
	app := flag.String("app", "bt", "application: bt, cg, ft, sp")
	variant := flag.String("variant", "dsm2", "program form: seq, mpi, dsm1, dsm2")
	nodes := flag.Int("nodes", 16, "node count (power of two, <= 1024)")
	nomap := flag.Bool("nomap", false, "disable shared-data mappings")
	scale := flag.Float64("scale", 0.25, "problem scale (1.0 = NPB Class A)")
	iters := flag.Int("iters", 2, "outer iterations")
	flag.Parse()

	mapped := !*nomap
	res, err := cenju4.RunNPB(*app, *variant, cenju4.WorkloadOptions{
		Nodes:       *nodes,
		DataMapping: &mapped,
		Iterations:  *iters,
		Scale:       *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%s on %d nodes (scale %.2f, %d iterations, mappings %v)\n",
		*app, *variant, *nodes, *scale, *iters, mapped)
	fmt.Printf("  simulated time    %v\n", res.Time)
	fmt.Printf("  instructions      %d\n", res.Instructions)
	fmt.Printf("  memory accesses   %d\n", res.MemAccesses)
	fmt.Printf("  L2 miss ratio     %.2f%%\n", 100*res.MissRatio)
	fmt.Printf("  miss breakdown    private %.1f%% / local %.1f%% / remote %.1f%%\n",
		100*res.PrivateMissShare, 100*res.LocalMissShare, 100*res.RemoteMissShare)
	fmt.Printf("  sync fraction     %.1f%%\n", 100*res.SyncFraction)
	fmt.Printf("  rewriting ratio   %.1f%%\n", 100*res.RewriteRatio)
	if len(res.Latency) > 0 {
		fmt.Println("  transaction latencies:")
		kinds := make([]string, 0, len(res.Latency))
		for k := range res.Latency {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			l := res.Latency[k]
			fmt.Printf("    %-16s n=%-8d mean=%-9v p50<=%-9v p99<=%-9v max=%v\n",
				k, l.Count, l.Mean, l.P50, l.P99, l.Max)
		}
	}
}
