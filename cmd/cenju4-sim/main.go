// Command cenju4-sim runs one workload configuration on a simulated
// Cenju-4 machine and prints its execution summary.
//
// Usage:
//
//	cenju4-sim -app bt -variant dsm2 -nodes 64 [-nomap] [-scale f] [-iters n]
//	           [-seed n] [-parallel-intra k] [-metrics-out m.json]
//	           [-trace-out t.json] [-trace-max n]
//
// The simulation is fully deterministic: the same flags always produce
// the same summary, the same -metrics-out report, and the same
// -trace-out file, byte for byte. -seed is recorded in both outputs so
// runs can be labelled, but does not perturb the simulation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"cenju4"
	"cenju4/internal/metrics"
	"cenju4/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cenju4-sim: ")
	app := flag.String("app", "bt", "application: bt, cg, ft, sp")
	variant := flag.String("variant", "dsm2", "program form: seq, mpi, dsm1, dsm2")
	nodes := flag.Int("nodes", 16, "node count (power of two, <= 1024)")
	nomap := flag.Bool("nomap", false, "disable shared-data mappings")
	scale := flag.Float64("scale", 0.25, "problem scale (1.0 = NPB Class A)")
	iters := flag.Int("iters", 2, "outer iterations")
	seed := flag.Int64("seed", 0, "run label recorded in observability output (simulation is deterministic)")
	fault := flag.String("fault", "", "deterministic fault plan: preset name or k=v spec (recoverable plans only; see cenju4-chaos for the grid)")
	parallelIntra := flag.Int("parallel-intra", 1, "shard the run over K conservative-PDES partitions (power of two dividing nodes; byte-identical results; incompatible with -fault, -trace-out and -variant mpi)")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry as canonical JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome-trace-event (Perfetto-loadable) JSON file")
	traceMax := flag.Int("trace-max", 1<<20, "trace event capacity; excess events are counted and surfaced")
	flag.Parse()

	opts := cenju4.WorkloadOptions{
		Nodes:         *nodes,
		Iterations:    *iters,
		Scale:         *scale,
		Fault:         *fault,
		IntraParallel: *parallelIntra,
	}
	mapped := !*nomap
	opts.DataMapping = &mapped
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.New()
		opts.Metrics = reg
	}
	var col *trace.Collector
	if *traceOut != "" {
		col = trace.NewCollector(*traceMax)
		opts.Trace = col
	}

	res, err := cenju4.RunNPB(*app, *variant, opts)
	if err != nil {
		log.Fatal(err)
	}

	if reg != nil {
		reg.Gauge("run/seed").Peak(*seed)
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if col != nil {
		label := fmt.Sprintf("%s/%s nodes=%d seed=%d", *app, *variant, *nodes, *seed)
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		dropped, err := trace.WriteChrome(f, col.Stream(label))
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if dropped > 0 {
			log.Printf("trace truncated: %d events beyond -trace-max %d (truncation is recorded in %s)",
				dropped, *traceMax, *traceOut)
		}
	}

	fmt.Printf("%s/%s on %d nodes (scale %.2f, %d iterations, mappings %v)\n",
		*app, *variant, *nodes, *scale, *iters, mapped)
	fmt.Printf("  simulated time    %v\n", res.Time)
	fmt.Printf("  instructions      %d\n", res.Instructions)
	fmt.Printf("  memory accesses   %d\n", res.MemAccesses)
	fmt.Printf("  L2 miss ratio     %.2f%%\n", 100*res.MissRatio)
	fmt.Printf("  miss breakdown    private %.1f%% / local %.1f%% / remote %.1f%%\n",
		100*res.PrivateMissShare, 100*res.LocalMissShare, 100*res.RemoteMissShare)
	fmt.Printf("  sync fraction     %.1f%%\n", 100*res.SyncFraction)
	fmt.Printf("  rewriting ratio   %.1f%%\n", 100*res.RewriteRatio)
	if len(res.Latency) > 0 {
		fmt.Println("  transaction latencies:")
		kinds := make([]string, 0, len(res.Latency))
		for k := range res.Latency {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			l := res.Latency[k]
			fmt.Printf("    %-16s n=%-8d mean=%-9v p50<=%-9v p99<=%-9v max=%v\n",
				k, l.Count, l.Mean, l.P50, l.P99, l.Max)
		}
	}
}
