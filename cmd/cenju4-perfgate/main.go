// Command cenju4-perfgate gates `go test -bench` output against the
// committed baseline in BENCH_sim.json, failing (exit 1) when a
// benchmark regresses past the tolerance or disappears.
//
// Usage:
//
//	go test ./internal/sim -bench BenchmarkEngine -benchmem -count 3 -run '^$' \
//	  | tee bench.txt
//	cenju4-perfgate -baseline BENCH_sim.json -bench bench.txt [-tolerance 2.5]
//
// With -bench - (the default) the bench output is read from stdin, so
// the two commands pipe together in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cenju4/internal/perfgate"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "committed benchmark baseline")
	benchPath := flag.String("bench", "-", "go test -bench output file (- = stdin)")
	tolerance := flag.Float64("tolerance", 2.5, "allowed ns/op factor over the baseline upper bound")
	allocTolerance := flag.Float64("alloc-tolerance", 1.5, "allowed allocs/op factor over the baseline")
	flag.Parse()

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := perfgate.ParseBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	samples, err := perfgate.ParseBench(in)
	if err != nil {
		fatal(err)
	}

	err = perfgate.Gate(os.Stdout, baseline, samples, perfgate.Options{
		Tolerance:      *tolerance,
		AllocTolerance: *allocTolerance,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cenju4-perfgate: %v\n", err)
	os.Exit(1)
}
