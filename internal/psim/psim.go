// Package psim runs one machine-scale simulation across multiple
// engines: a conservative parallel discrete-event simulation (PDES)
// layer over the sequential kernel in internal/sim.
//
// Nodes (with their caches and controllers) are partitioned into K
// shards, each owning a ranked sim.Engine. Execution alternates
// two-phase windows:
//
//   - Phase A (parallel): every shard fires its node-local events up to
//     a common deadline W+L-1, where W is the minimum queue-head time
//     across shards and L is the lookahead — the minimum cross-shard
//     propagation latency from internal/timing (one control-message
//     network traversal, or the MPI software latency, whichever is
//     smaller). Calls into shared state (network sends, gather-group
//     stats, MPI collectives) are not executed; they are appended to a
//     per-shard outcall log, each entry stamped with the firing event's
//     rank and a reserved push slot.
//   - Phase B (serial): the coordinator k-way-merges the logs in
//     (time, rank, slot) order — exactly the order a sequential engine
//     would have made those calls — and replays each against the real
//     network and MPI world. Every event a replayed call schedules is
//     routed back to the owning shard's engine with a rank composed
//     from the logging context, and must land strictly after the
//     window deadline; the lookahead guarantees it, and the router
//     enforces it with a hard panic.
//
// Because every cross-engine event carries the rank the sequential
// engine would have assigned (see internal/sim/rank.go for the
// equivalence argument), the merged schedule — and therefore
// machine.Digest — is byte-identical to the sequential kernel at every
// K. The worker count affects wall-clock only.
//
// Unsupported under K > 1 (the machine layer gates them): fault
// injection, protocol tracers, value tracking, and mpi Recv — Recv has
// zero lookahead (a buffered arrival resumes the receiver "now"), so
// it cannot be deferred to the replay phase without admitting an event
// inside the current window. The repo's coherence workloads never use
// it; message-passing program variants run at K=1.
package psim

import (
	"fmt"
	"sync"

	"cenju4/internal/directory"
	"cenju4/internal/mpi"
	"cenju4/internal/msg"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// Config assembles a Coordinator.
type Config struct {
	// Shards is K, the number of shard engines. Must divide Nodes.
	Shards int
	// Workers bounds the goroutines running phase A (clamped to
	// [1, Shards]). One worker runs shard windows inline on the calling
	// goroutine — the full PDES machinery on a single core.
	Workers int
	// Nodes is the machine size.
	Nodes int
	// Params and MPI derive the lookahead.
	Params timing.Params
	MPI    timing.MPIParams
	// Stages is the network stage count (for the traversal bound).
	Stages int
	// Net and World are the shared interconnect and message-passing
	// state, both built on CoordEng. They are touched only in phase B.
	Net      *network.Network
	World    *mpi.World
	CoordEng *sim.Engine
}

// Lookahead computes the conservative window width: no event fired at
// time t can schedule a cross-shard effect earlier than t+Lookahead.
// Network messages pay at least one fixed entry/exit cost plus one
// control hop per stage (timing.Params.Traversal); MPI operations pay
// at least the software latency.
func (c Config) Lookahead() sim.Time {
	l := c.Params.Traversal(c.Stages, false)
	if c.MPI.Latency < l {
		l = c.MPI.Latency
	}
	return l
}

// outcall kinds: the shared-state calls phase A defers.
const (
	ocNetSend = iota
	ocGatherStats
	ocBarrier
	ocAllReduce
	ocMPISend
)

// outcall is one deferred shared-state call. at/rank/slot are the merge
// key: the virtual time of the call, the rank of the event whose
// handler made it, and the push slot reserved for it in that handler —
// together the exact position the call held in the sequential order.
type outcall struct {
	at   sim.Time
	rank *sim.Rank
	slot uint64
	kind int

	m     *msg.Message    // ocNetSend
	node  topology.NodeID // ocBarrier/ocAllReduce: the node; ocMPISend: src
	dst   topology.NodeID // ocMPISend
	bytes uint64          // ocAllReduce/ocMPISend
	done  func()          // ocBarrier/ocAllReduce completion
}

// shard is one partition: an engine, the pools its nodes own, and the
// outcall log it fills during phase A.
type shard struct {
	idx  int
	eng  *sim.Engine
	pool msg.Pool

	log []outcall

	// Phase-disjoint freelists: delFree is filled by this shard's
	// delivery events (phase A) and drained by the coordinator when
	// injecting deliveries INTO this shard (phase B); groupFree holds
	// retired gather groups the same way.
	delFree   []*delivery
	groupFree []*msg.Gather
	gatherCtr uint64
}

// delivery carries one routed cross-engine handler invocation.
type delivery struct {
	c    *Coordinator
	s    *shard // destination shard (recycles the record)
	m    *msg.Message
	node topology.NodeID
}

// Coordinator owns the window loop and the serial replay phase.
type Coordinator struct {
	cfg       Config
	lookahead sim.Time
	shards    []*shard
	perShard  int // nodes per shard
	handlers  []network.Handler

	deadline sim.Time // current window's inclusive deadline

	// Replay context: the outcall being replayed; sub counts the pushes
	// it has performed so far (sub-push j gets ComposedRank(..., j)).
	replaying bool
	curParent *sim.Rank
	curAt     sim.Time
	curSlot   uint64
	curSub    uint64

	// Observability for the lookahead differential test.
	windows  uint64
	minSlack sim.Time // min (injected event time − deadline) seen; ≥1 by construction
	anySlack bool

	sinceCompact uint64
	engines      []*sim.Engine // shard engines, for CanonicalizeRanks

	// Worker pool (see workers.go): nil work means inline phase A.
	work chan int
	wg   sync.WaitGroup
}

// compactEvery bounds rank-chain memory: after this many fired events
// the queued ranks are flattened at a window barrier.
const compactEvery = 256 << 10

// New builds a coordinator. The caller (machine.New) constructs nodes
// against ShardEngine/ShardPool/Fabric/Sync and attaches handlers, then
// drives Run.
func New(cfg Config) *Coordinator {
	if cfg.Shards < 1 || cfg.Nodes%cfg.Shards != 0 {
		panic(fmt.Sprintf("psim: %d shards do not partition %d nodes", cfg.Shards, cfg.Nodes))
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Shards {
		cfg.Workers = cfg.Shards
	}
	c := &Coordinator{
		cfg:       cfg,
		lookahead: cfg.Lookahead(),
		perShard:  cfg.Nodes / cfg.Shards,
		handlers:  make([]network.Handler, cfg.Nodes),
	}
	if c.lookahead < 1 {
		panic(fmt.Sprintf("psim: lookahead %v < 1ns — timing parameters leave no conservative window", c.lookahead))
	}
	c.shards = make([]*shard, cfg.Shards)
	c.engines = make([]*sim.Engine, cfg.Shards)
	for i := range c.shards {
		eng := sim.NewEngine()
		eng.EnableRankedMode()
		c.shards[i] = &shard{idx: i, eng: eng}
		c.engines[i] = eng
	}
	cfg.Net.SetDeliveryRouter(c)
	cfg.World.SetScheduler(c.scheduleMPI)
	return c
}

// Lookahead returns the window width in use.
func (c *Coordinator) Lookahead() sim.Time { return c.lookahead }

// Windows returns how many two-phase windows have run.
func (c *Coordinator) Windows() uint64 { return c.windows }

// MinSlack returns the smallest margin by which a replay-scheduled
// event cleared its window's deadline (0 if none was scheduled yet).
// The conservative invariant is MinSlack >= 1 — enforced by panic, and
// asserted by the lookahead differential test.
func (c *Coordinator) MinSlack() sim.Time {
	if !c.anySlack {
		return 0
	}
	return c.minSlack
}

// Fired sums events fired across all shard engines. The coordinator
// engine fires none: replay calls run inline, so the total equals the
// sequential engine's count.
func (c *Coordinator) Fired() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.eng.Fired()
	}
	return n
}

func (c *Coordinator) shardOf(node topology.NodeID) *shard {
	return c.shards[int(node)/c.perShard]
}

// ShardEngine returns the engine owning node's shard.
func (c *Coordinator) ShardEngine(node topology.NodeID) *sim.Engine {
	return c.shardOf(node).eng
}

// ShardPool returns the message pool node's controller allocates from.
func (c *Coordinator) ShardPool(node topology.NodeID) *msg.Pool {
	return &c.shardOf(node).pool
}

// Attach registers node's delivery handler (the controller's Deliver).
func (c *Coordinator) Attach(node topology.NodeID, h network.Handler) {
	c.handlers[node] = h
}

// Fabric returns the core.Fabric facade for node.
func (c *Coordinator) Fabric(node topology.NodeID) *ShardFabric {
	return &ShardFabric{c: c, s: c.shardOf(node)}
}

// Sync returns the cpu.Sync facade for node.
func (c *Coordinator) Sync(node topology.NodeID) *ShardSync {
	return &ShardSync{c: c, s: c.shardOf(node)}
}

// logCall appends a deferred shared-state call to the shard's log,
// reserving a push slot in the firing event so replay-time pushes keep
// their sequential position. Logs are appended in firing order, so each
// is already sorted by the merge key.
func (s *shard) logCall(oc outcall) {
	rank, at, slot := s.eng.ReserveRankSlot()
	oc.at, oc.rank, oc.slot = at, rank, slot
	s.log = append(s.log, oc)
}

// ShardFabric implements core.Fabric for one shard by deferring all
// network entry points to the replay phase.
type ShardFabric struct {
	c *Coordinator
	s *shard
}

// Send defers the network injection. The message is a self-contained
// snapshot (directory.Dest is a value type), so it is safe to carry
// across the phase boundary.
func (f *ShardFabric) Send(m *msg.Message) {
	f.s.logCall(outcall{kind: ocNetSend, m: m})
}

// AllocGather allocates the gather group shard-side — from the shard's
// freelist, in a shard-disjoint ID space — and defers only the
// network's statistics update. The group record itself is touched by
// the home node's controller and the combining walk, which replay
// serializes.
func (f *ShardFabric) AllocGather(spec directory.Dest, home topology.NodeID) *msg.Gather {
	s := f.s
	s.gatherCtr++
	id := uint64(s.idx+1)<<48 | s.gatherCtr
	s.logCall(outcall{kind: ocGatherStats})
	if k := len(s.groupFree); k > 0 {
		g := s.groupFree[k-1]
		s.groupFree[k-1] = nil
		s.groupFree = s.groupFree[:k-1]
		*g = msg.Gather{ID: id, Spec: spec, Home: home}
		return g
	}
	//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
	return &msg.Gather{ID: id, Spec: spec, Home: home}
}

// MulticastEnabled reads immutable network configuration (safe from
// phase A).
func (f *ShardFabric) MulticastEnabled() bool { return f.c.cfg.Net.MulticastEnabled() }

// Nodes reads immutable network configuration (safe from phase A).
func (f *ShardFabric) Nodes() int { return f.c.cfg.Net.Nodes() }

// ShardSync implements cpu.Sync for one shard by deferring the MPI
// world calls to the replay phase.
type ShardSync struct {
	c *Coordinator
	s *shard
}

// Barrier defers the collective join.
func (y *ShardSync) Barrier(node topology.NodeID, done func()) {
	y.s.logCall(outcall{kind: ocBarrier, node: node, done: done})
}

// AllReduce defers the collective join.
func (y *ShardSync) AllReduce(node topology.NodeID, n uint64, done func()) {
	y.s.logCall(outcall{kind: ocAllReduce, node: node, bytes: n, done: done})
}

// Send defers the message injection.
func (y *ShardSync) Send(src, dst topology.NodeID, n uint64) {
	y.s.logCall(outcall{kind: ocMPISend, node: src, dst: dst, bytes: n})
}

// Recv is unsupported under intra-run parallelism: a buffered arrival
// resumes the receiver at max(arrival, now) — zero lookahead — so the
// completion cannot be deferred past the window deadline. The repo's
// coherence workloads never issue Recv; run message-passing program
// variants with -parallel-intra 1.
func (y *ShardSync) Recv(dst, src topology.NodeID, done func()) {
	panic("psim: mpi Recv has zero lookahead and is unsupported under intra-run parallelism (use -parallel-intra 1)")
}

// RouteDelivery implements network.DeliveryRouter: a delivery whose
// wire time was computed during replay is handed to the destination
// node's shard engine under a rank composed from the replayed outcall.
// The conservative invariant — no replay-scheduled event may land in
// the window just executed — is enforced here.
func (c *Coordinator) RouteDelivery(m *msg.Message, node topology.NodeID, t sim.Time) {
	c.notePush(t, "network delivery")
	rank := sim.ComposedRank(c.curParent, c.curAt, c.curSlot, c.curSub)
	c.curSub++
	s := c.shardOf(node)
	var d *delivery
	if k := len(s.delFree); k > 0 {
		d = s.delFree[k-1]
		s.delFree[k-1] = nil
		s.delFree = s.delFree[:k-1]
	} else {
		//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
		d = &delivery{}
	}
	d.c, d.s, d.m, d.node = c, s, m, node
	s.eng.InjectCallAt(t, rank, runShardDelivery, d)
}

// runShardDelivery fires on the destination shard's engine (phase A of
// a later window): it invokes the node's handler and releases the
// message — and, for a combined gathered reply, the group record — to
// the shard's pools.
func runShardDelivery(x any) {
	d := x.(*delivery)
	c, s, m, node := d.c, d.s, d.m, d.node
	d.m = nil
	s.delFree = append(s.delFree, d)
	var g *msg.Gather
	if m.Gather != nil && (m.Kind == msg.InvAck || m.Kind == msg.UpdateAck) {
		g = m.Gather
	}
	c.handlers[node](m)
	s.pool.Put(m)
	if g != nil {
		s.groupFree = append(s.groupFree, g)
	}
}

// scheduleMPI is the mpi.Scheduler hook: collective releases and
// message completions computed during replay are routed to the engine
// owning the released node's shard.
func (c *Coordinator) scheduleMPI(node topology.NodeID, at sim.Time, done func()) {
	c.notePush(at, "mpi completion")
	rank := sim.ComposedRank(c.curParent, c.curAt, c.curSlot, c.curSub)
	c.curSub++
	c.shardOf(node).eng.InjectAt(at, rank, done)
}

// notePush asserts the conservative invariant for one replay-phase
// push and records its slack for the differential test.
func (c *Coordinator) notePush(t sim.Time, what string) {
	if !c.replaying {
		panic(fmt.Sprintf("psim: %s scheduled outside the replay phase", what))
	}
	if t <= c.deadline {
		panic(fmt.Sprintf(
			"psim: lookahead violation — %s at %v inside window deadline %v (lookahead %v)",
			what, t, c.deadline, c.lookahead))
	}
	slack := t - c.deadline
	if !c.anySlack || slack < c.minSlack {
		c.minSlack = slack
		c.anySlack = true
	}
}

// ocBefore orders two outcall log heads by the sequential merge key
// (time, handler rank, slot).
func ocBefore(a, b *outcall) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.rank == b.rank {
		return a.slot < b.slot
	}
	return sim.RankLess(a.rank, b.rank)
}

// replay is phase B: merge the shard logs and execute each deferred
// call against the shared network/MPI state, with the coordinator
// engine's clock advanced to the call's original time so every latency
// computation sees the same "now" the sequential kernel would have.
func (c *Coordinator) replay() {
	heads := make([]int, len(c.shards))
	c.replaying = true
	for {
		best := -1
		for i, s := range c.shards {
			if heads[i] >= len(s.log) {
				continue
			}
			if best == -1 || ocBefore(&s.log[heads[i]], &c.shards[best].log[heads[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		oc := &c.shards[best].log[heads[best]]
		heads[best]++
		c.cfg.CoordEng.SyncTo(oc.at)
		c.curParent, c.curAt, c.curSlot, c.curSub = oc.rank, oc.at, oc.slot, 0
		switch oc.kind {
		case ocNetSend:
			c.cfg.Net.Send(oc.m)
		case ocGatherStats:
			c.cfg.Net.NoteGatherAlloc()
		case ocBarrier:
			c.cfg.World.Barrier(oc.node, oc.done)
		case ocAllReduce:
			c.cfg.World.AllReduce(oc.node, oc.bytes, oc.done)
		case ocMPISend:
			c.cfg.World.Send(oc.node, oc.dst, oc.bytes)
		}
	}
	c.replaying = false
	for _, s := range c.shards {
		// Truncate in place; entries are overwritten next window and the
		// messages they referenced are pool-owned either way.
		s.log = s.log[:0]
	}
}

// Run drives two-phase windows until global quiescence. poll, if
// non-nil, runs between windows and aborts the run by returning an
// error (context cancellation, event budgets). quiesce, if non-nil,
// runs at every global drain — the machine's quiescent callbacks.
// Scheduling new work from a quiescent callback is unsupported under
// intra-run parallelism (their push order across shards cannot be
// reconstructed) and panics.
func (c *Coordinator) Run(poll func() error, quiesce func()) error {
	stop, panics := c.startWorkers()
	defer stop()
	for {
		if poll != nil {
			if err := poll(); err != nil {
				return err
			}
		}
		w, any := c.minHead()
		if !any {
			// Global drain: align every clock at the last activity, give
			// the quiescent callbacks their point, and finish if they
			// scheduled nothing (they must not).
			t := c.cfg.CoordEng.Now()
			for _, s := range c.shards {
				if lf := s.eng.LastFired(); lf > t {
					t = lf
				}
			}
			c.cfg.CoordEng.SyncTo(t)
			for _, s := range c.shards {
				s.eng.SyncTo(t)
				s.eng.BeginDriverSection(t)
			}
			if quiesce != nil {
				quiesce()
				if _, refilled := c.minHead(); refilled {
					panic("psim: quiescent callback scheduled events — round-injecting drivers are unsupported under intra-run parallelism")
				}
			}
			return nil
		}
		deadline := w + c.lookahead - 1
		if deadline < w {
			deadline = ^sim.Time(0) // clamp at the end of time
		}
		c.deadline = deadline
		c.runWindow(deadline, panics)
		c.replay()
		c.windows++
		c.maybeCompact()
	}
}

// minHead returns the earliest pending event time across shards.
func (c *Coordinator) minHead() (sim.Time, bool) {
	var w sim.Time
	any := false
	for _, s := range c.shards {
		if t, ok := s.eng.PeekTime(); ok && (!any || t < w) {
			w, any = t, true
		}
	}
	return w, any
}

// maybeCompact flattens queued rank chains once enough events have
// fired since the last pass; without it, rank ancestry would retain
// O(total events) memory.
func (c *Coordinator) maybeCompact() {
	fired := c.Fired()
	if fired-c.sinceCompact < compactEvery {
		return
	}
	c.sinceCompact = fired
	sim.CanonicalizeRanks(c.engines)
}

// runWindow executes phase A: every shard fires its due events, across
// the worker pool (or inline when it is nil). A panicking shard is
// re-raised on the coordinator goroutine, lowest shard index first, so
// model bugs surface exactly as they do sequentially.
func (c *Coordinator) runWindow(deadline sim.Time, panics []any) {
	if c.work == nil {
		for _, s := range c.shards {
			s.eng.RunDue(deadline)
		}
		return
	}
	c.wg.Add(len(c.shards))
	for i := range c.shards {
		c.work <- i
	}
	c.wg.Wait()
	for i, p := range panics {
		if p != nil {
			panics[i] = nil
			panic(p)
		}
	}
}
