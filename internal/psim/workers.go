package psim

import "sync"

// startWorkers launches the persistent phase-A worker pool for this
// run and returns a stop func plus the per-shard panic capture slots.
// With one worker the pool is skipped entirely: runWindow executes
// shard windows inline on the coordinator goroutine, so the full PDES
// machinery runs (and is testable) on a single core.
//
// Shard i is always executed by worker i%workers, but any assignment
// would do: phase A touches only shard-owned state, phase B only
// coordinator-owned state, and the WaitGroup barrier orders the phases
// — this phase-disjoint ownership is the entire synchronization story,
// which is why the digest cannot depend on the worker count.
func (c *Coordinator) startWorkers() (stop func(), panics []any) {
	if c.cfg.Workers <= 1 {
		return func() {}, nil
	}
	// Workers range over a local copy of the channel: stop() nils the
	// field, and a worker goroutine scheduled late must not re-read it.
	work := make(chan int)
	c.work = work
	panics = make([]any, len(c.shards))
	var workerWG sync.WaitGroup
	workerWG.Add(c.cfg.Workers)
	for w := 0; w < c.cfg.Workers; w++ {
		go func() {
			defer workerWG.Done()
			for i := range work {
				c.runShardWindow(i, panics)
			}
		}()
	}
	return func() {
		close(work)
		workerWG.Wait()
		c.work = nil
	}, panics
}

// runShardWindow executes one shard's phase A with panic capture: a
// shard panic (a model bug) must not crash the worker goroutine but
// re-raise on the coordinator after the window barrier.
func (c *Coordinator) runShardWindow(i int, panics []any) {
	defer c.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	c.shards[i].eng.RunDue(c.deadline)
}
