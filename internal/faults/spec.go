// Package faults is the deterministic fault-injection layer for the
// Cenju-4 reproduction: seed-derived fault *plans* that drop,
// duplicate, delay or corrupt coherence messages at network delivery
// points, stall switch stages, and squeeze module FIFO capacities —
// all decided in virtual time from a splitmix64 stream, so the same
// (config, seed, plan) produces a byte-identical simulation at any
// -parallel level.
//
// A Spec is the user-facing plan description (rates + windows + seed);
// Compile turns it into an Injector the network consults per endpoint
// delivery. The package deliberately separates the *fault model* from
// the *recovery model*: recovery knobs (master request timeout,
// retransmit limit) ride in the same Spec because one plan should be
// one self-contained, digestible description, but the machinery lives
// in internal/core.
//
// Recoverability is a property of the plan's Scope, not of luck:
//
//   - ScopeRequestReply (the default) faults only the master<->home
//     request/reply plane, excluding WriteBack. Every faulted message
//     has a master-side timeout watching it, so drops (and corruptions,
//     which the checksum turns into detected drops) are repaired by
//     bounded retransmit. These plans must pass the consistency oracle
//     and match fault-free golden digests... of their own (spec, seed):
//     recovery changes timing, never outcome.
//   - ScopeForwards / ScopeRepliesToHome / ScopeAll can break the
//     protocol by design (a dropped forward strands a pending directory
//     entry forever; a dropped WriteBack would silently lose dirty
//     data, which is why even ScopeAll never drops WriteBack). Such
//     plans exist to prove the watchdog fires with a diagnosis instead
//     of hanging.
//
// The package is in the determinism analyzer's simulation scope: no
// wall clock, no global rand, no map iteration.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cenju4/internal/sim"
)

// Scope selects which message kinds a plan may fault.
type Scope uint8

const (
	// ScopeRequestReply faults master->home requests (ReadShared,
	// ReadExclusive, Ownership, UpdateWrite — never WriteBack) and
	// home->master replies (HomeData, HomeAck, Nack). This is the
	// recoverable plane: the master's timeout/retransmit machinery
	// repairs every loss.
	ScopeRequestReply Scope = iota
	// ScopeForwards faults home->slave traffic (forwarded requests and
	// singlecast invalidations). Drops here strand pending directory
	// entries: unrecoverable by design, watchdog territory.
	ScopeForwards
	// ScopeRepliesToHome faults slave->home replies. Drops here strand
	// the home's pending transaction: unrecoverable by design.
	ScopeRepliesToHome
	// ScopeAll faults every kind except WriteBack (whose loss would be
	// silent dirty-data loss with no detecting party).
	ScopeAll
)

var scopeNames = [...]string{"request-reply", "forwards", "replies-to-home", "all"}

func (s Scope) String() string {
	if int(s) < len(scopeNames) {
		return scopeNames[s]
	}
	return fmt.Sprintf("Scope(%d)", uint8(s))
}

// ParseScope parses the textual form used by CLI flags and serve specs.
func ParseScope(s string) (Scope, error) {
	for i, n := range scopeNames {
		if s == n {
			return Scope(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown scope %q (want request-reply|forwards|replies-to-home|all)", s)
}

// Default recovery constants. The timeout comfortably exceeds the worst
// observed transaction latency (a 1023-sharer singlecast invalidation
// storm takes ~148µs), so fault-free traffic never retransmits
// spuriously; exponential backoff (timeout << resends) keeps even
// pathological plans from retry-storming the network.
const (
	// DefaultTimeout is the master's per-request retransmit timer in
	// simulated nanoseconds.
	DefaultTimeout sim.Time = 500_000
	// DefaultRetries is the bounded retransmit limit per transaction.
	// With independent per-message drop decisions at rate p, a
	// transaction is abandoned with probability ~p^(DefaultRetries+1);
	// at the chaos grid's p <= 0.05 that is < 4e-11.
	DefaultRetries = 7
)

// Spec is one fault plan: what to inject, where, when, how often, and
// how the machine is allowed to recover. The zero Spec injects nothing
// and enables no recovery machinery (the fault-free hot path stays
// byte- and alloc-identical to a build without this package).
type Spec struct {
	// Seed drives the plan's splitmix64 decision stream. A zero seed is
	// normalized to 1 when the plan injects anything, so "same spec" is
	// always a complete description of behavior.
	Seed uint64

	// Drop, Dup, Delay, Corrupt are per-delivery fault probabilities in
	// [0,1]. They are mutually exclusive per message (one draw, banded):
	// a message is dropped, duplicated, delayed or corrupted, never two
	// of those at once.
	Drop    float64
	Dup     float64
	Delay   float64
	Corrupt float64

	// DelayBy is the extra latency applied to delayed messages.
	// Delivery order per (src,dst) pair is still preserved (the
	// injector keeps per-pair floors), matching the hardware guarantee
	// that one physical path never reorders.
	DelayBy sim.Time

	// From/Until bound the injection window in virtual time
	// (Until == 0 means no upper bound). Outside the window the plan is
	// inert.
	From  sim.Time
	Until sim.Time

	// Scope selects the faultable message kinds; see the Scope docs for
	// the recoverability contract.
	Scope Scope

	// StallEvery stalls every Nth switch-stage traversal by StallFor
	// (0 disables). Stalls model a backpressured switch: they slow the
	// message, they never lose it.
	StallEvery int
	StallFor   sim.Time

	// MaxFaults caps the total number of injected faults (drops + dups
	// + delays + corruptions + stalls); 0 means unlimited.
	MaxFaults int

	// Timeout is the master's per-request retransmit timer; 0 means
	// DefaultTimeout when the plan injects anything, disabled otherwise.
	Timeout sim.Time
	// Retries is the retransmit limit; 0 means DefaultRetries when
	// recovery is armed.
	Retries int

	// ModuleBuf squeezes every module's hardware FIFO to this many
	// entries (0 keeps the default 4). Squeezing to 1 forces constant
	// spill through the memory-resident overflow regions — the paper's
	// deadlock-prevention machinery — without violating their sizing
	// invariant.
	ModuleBuf int
}

// Injecting reports whether the plan injects any network fault (and so
// needs an Injector compiled into the network).
func (s Spec) Injecting() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Delay > 0 || s.Corrupt > 0 || s.StallEvery > 0
}

// Enabled reports whether the plan changes the machine at all.
func (s Spec) Enabled() bool {
	return s.Injecting() || s.ModuleBuf > 0 || s.Timeout > 0
}

// Recovering reports whether the plan arms the master timeout/
// retransmit machinery (after Normalize this is simply Timeout > 0).
func (s Spec) Recovering() bool { return s.Timeout > 0 }

// Normalize fills derived defaults: a seed for any injecting plan, a
// delay amount for delay plans, stall duration for stall plans, and the
// recovery defaults whenever the plan injects anything. It returns the
// completed spec.
func (s Spec) Normalize() Spec {
	if s.Injecting() {
		if s.Seed == 0 {
			s.Seed = 1
		}
		if s.Timeout == 0 {
			s.Timeout = DefaultTimeout
		}
	}
	if s.Delay > 0 && s.DelayBy == 0 {
		s.DelayBy = 2000
	}
	if s.StallEvery > 0 && s.StallFor == 0 {
		s.StallFor = 1000
	}
	if s.Timeout > 0 && s.Retries == 0 {
		s.Retries = DefaultRetries
	}
	return s
}

// Validate rejects malformed plans.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"dup", s.Dup}, {"delay", s.Delay}, {"corrupt", s.Corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", p.name, p.v)
		}
	}
	if s.Drop+s.Dup+s.Delay+s.Corrupt > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1 (they are bands of one draw)", s.Drop+s.Dup+s.Delay+s.Corrupt)
	}
	if s.Until != 0 && s.Until < s.From {
		return fmt.Errorf("faults: window until=%d before from=%d", s.Until, s.From)
	}
	if int(s.Scope) >= len(scopeNames) {
		return fmt.Errorf("faults: unknown scope %d", s.Scope)
	}
	if s.StallEvery < 0 || s.MaxFaults < 0 || s.Retries < 0 || s.ModuleBuf < 0 {
		return fmt.Errorf("faults: negative count field")
	}
	return nil
}

// String renders the canonical textual form: the non-zero fields as
// sorted key=value pairs, or "none" for the zero spec. ParseSpec
// round-trips it, and serve's spec digest embeds it, so the rendering
// must stay deterministic and injective.
func (s Spec) String() string {
	var kv []string
	add := func(k, v string) { kv = append(kv, k+"="+v) }
	if s.Seed != 0 {
		add("seed", strconv.FormatUint(s.Seed, 10))
	}
	for _, p := range []struct {
		k string
		v float64
	}{{"drop", s.Drop}, {"dup", s.Dup}, {"delay", s.Delay}, {"corrupt", s.Corrupt}} {
		if p.v != 0 {
			add(p.k, strconv.FormatFloat(p.v, 'g', -1, 64))
		}
	}
	for _, p := range []struct {
		k string
		v uint64
	}{
		{"delay-by", uint64(s.DelayBy)}, {"from", uint64(s.From)}, {"until", uint64(s.Until)},
		{"stall-every", uint64(s.StallEvery)}, {"stall-for", uint64(s.StallFor)},
		{"max-faults", uint64(s.MaxFaults)}, {"timeout", uint64(s.Timeout)},
		{"retries", uint64(s.Retries)}, {"module-buf", uint64(s.ModuleBuf)},
	} {
		if p.v != 0 {
			add(p.k, strconv.FormatUint(p.v, 10))
		}
	}
	if s.Scope != ScopeRequestReply {
		add("scope", s.Scope.String())
	}
	if len(kv) == 0 {
		return "none"
	}
	sort.Strings(kv)
	return strings.Join(kv, ",")
}

// Presets returns the named plan shorthands ParseSpec accepts, in a
// fixed order (no map, per the determinism lint). Every preset except
// drop-forwards is recoverable.
func Presets() []struct {
	Name string
	Spec Spec
} {
	return []struct {
		Name string
		Spec Spec
	}{
		{"light-loss", Spec{Drop: 0.02}},
		{"dup-delay", Spec{Dup: 0.02, Delay: 0.05, DelayBy: 3000}},
		{"corrupt", Spec{Corrupt: 0.02}},
		{"stall", Spec{StallEvery: 64, StallFor: 2000}},
		{"squeeze", Spec{Drop: 0.01, ModuleBuf: 1}},
		{"drop-forwards", Spec{Drop: 0.05, Scope: ScopeForwards}},
	}
}

// ParseSpec parses a plan from its textual form: "none", a preset name
// (see Presets), or a comma-separated key=value list using the same
// keys String emits. The result is normalized.
func ParseSpec(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return Spec{}, nil
	}
	if !strings.Contains(text, "=") {
		for _, p := range Presets() {
			if text == p.Name {
				return p.Spec.Normalize(), nil
			}
		}
		return Spec{}, fmt.Errorf("faults: unknown preset %q (try drop=0.01 syntax, or one of the Presets)", text)
	}
	var s Spec
	for _, part := range strings.Split(text, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", part)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "drop":
			s.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			s.Dup, err = strconv.ParseFloat(v, 64)
		case "delay":
			s.Delay, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			s.Corrupt, err = strconv.ParseFloat(v, 64)
		case "delay-by":
			err = parseTime(v, &s.DelayBy)
		case "from":
			err = parseTime(v, &s.From)
		case "until":
			err = parseTime(v, &s.Until)
		case "scope":
			s.Scope, err = ParseScope(v)
		case "stall-every":
			s.StallEvery, err = strconv.Atoi(v)
		case "stall-for":
			err = parseTime(v, &s.StallFor)
		case "max-faults":
			s.MaxFaults, err = strconv.Atoi(v)
		case "timeout":
			err = parseTime(v, &s.Timeout)
		case "retries":
			s.Retries, err = strconv.Atoi(v)
		case "module-buf":
			s.ModuleBuf, err = strconv.Atoi(v)
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseTime(v string, out *sim.Time) error {
	u, err := strconv.ParseUint(v, 10, 64)
	*out = sim.Time(u)
	return err
}
