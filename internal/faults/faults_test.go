package faults

import (
	"strings"
	"testing"

	"cenju4/internal/metrics"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Seed: 7, Drop: 0.25},
		{Seed: 1, Dup: 0.125, Delay: 0.5, DelayBy: 300, From: 10, Until: 90},
		{Seed: 3, Corrupt: 0.01, Scope: ScopeAll, MaxFaults: 12},
		{Seed: 9, StallEvery: 16, StallFor: 450, Timeout: 1000, Retries: 2},
		{Seed: 2, Drop: 0.1, Scope: ScopeForwards, ModuleBuf: 1},
	}
	for _, s := range specs {
		s = s.Normalize()
		text := s.String()
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if back != s {
			t.Errorf("round trip of %q: got %+v want %+v", text, back, s)
		}
	}
}

func TestParseSpecPresetsAndErrors(t *testing.T) {
	for _, p := range Presets() {
		s, err := ParseSpec(p.Name)
		if err != nil {
			t.Fatalf("preset %q: %v", p.Name, err)
		}
		if !s.Injecting() {
			t.Errorf("preset %q injects nothing", p.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
		if p.Name != "drop-forwards" && s.Scope != ScopeRequestReply {
			t.Errorf("preset %q is not recoverable scope", p.Name)
		}
	}
	if s, err := ParseSpec("none"); err != nil || s.Enabled() {
		t.Errorf("ParseSpec(none) = %+v, %v", s, err)
	}
	for _, bad := range []string{
		"bogus-preset", "drop", "drop=x", "drop=1.5", "drop=0.9,dup=0.9",
		"from=9,until=3", "k=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestNormalizeArmsRecovery(t *testing.T) {
	s := Spec{Drop: 0.1}.Normalize()
	if s.Seed == 0 || s.Timeout != DefaultTimeout || s.Retries != DefaultRetries {
		t.Fatalf("normalize left recovery unarmed: %+v", s)
	}
	if !s.Recovering() {
		t.Fatal("Recovering() false after Normalize of injecting plan")
	}
	z := Spec{}.Normalize()
	if z.Enabled() {
		t.Fatalf("zero spec enabled after Normalize: %+v", z)
	}
}

// drive feeds n uniform deliveries through the injector and returns a
// compact schedule fingerprint (action and time per delivery).
func drive(in *Injector, n int) []uint64 {
	var sched []uint64
	for i := 0; i < n; i++ {
		src := topology.NodeID(i % 4)
		dst := topology.NodeID((i + 1) % 4)
		act, at := in.Arrival(msg.ReadShared, src, dst, false, sim.Time(i*100))
		sched = append(sched, uint64(act)<<62|uint64(at))
	}
	return sched
}

func TestInjectorDeterministicAndSeedSensitive(t *testing.T) {
	spec := Spec{Seed: 42, Drop: 0.1, Dup: 0.1, Delay: 0.2, DelayBy: 1000, Corrupt: 0.1}
	a := drive(spec.Compile(4), 500)
	b := drive(spec.Compile(4), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, plan) diverged at delivery %d", i)
		}
	}
	spec.Seed = 43
	c := drive(spec.Compile(4), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules (placebo injector)")
	}
}

func TestInjectorPairOrderingFloor(t *testing.T) {
	in := Spec{Seed: 5, Delay: 1, DelayBy: 10_000}.Compile(2)
	var last sim.Time
	for i := 0; i < 200; i++ {
		_, at := in.Arrival(msg.HomeData, 0, 1, false, sim.Time(i))
		if at < last {
			t.Fatalf("delivery %d scheduled at %d before previous %d on same pair", i, at, last)
		}
		last = at
	}
	if in.Stats.Delays == 0 {
		t.Fatal("delay plan injected no delays")
	}
}

func TestInjectorScopeWindowBudgetAndGatherExemption(t *testing.T) {
	in := Spec{Seed: 1, Drop: 1, From: 100, Until: 200, MaxFaults: 3}.Compile(2)
	if act, _ := in.Arrival(msg.ReadShared, 0, 1, false, 50); act != Pass {
		t.Fatal("faulted outside window")
	}
	if act, _ := in.Arrival(msg.WriteBack, 0, 1, false, 150); act != Pass {
		t.Fatal("faulted WriteBack in request-reply scope")
	}
	if act, _ := in.Arrival(msg.FwdReadShared, 0, 1, false, 150); act != Pass {
		t.Fatal("faulted a forward in request-reply scope")
	}
	if act, _ := in.Arrival(msg.InvAck, 0, 1, true, 150); act != Pass {
		t.Fatal("faulted a gather-carrying delivery")
	}
	drops := 0
	for i := 0; i < 10; i++ {
		if act, _ := in.Arrival(msg.ReadShared, 0, 1, false, 150); act == DropMsg {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("MaxFaults=3 but injected %d drops", drops)
	}
	if in.Injected() != 3 {
		t.Fatalf("Injected() = %d, want 3", in.Injected())
	}
}

func TestInjectorStallCadence(t *testing.T) {
	in := Spec{Seed: 1, StallEvery: 4, StallFor: 99}.Compile(2)
	var stalls int
	for i := 0; i < 16; i++ {
		if d := in.Stall(10); d != 0 {
			if d != 99 {
				t.Fatalf("stall duration %d, want 99", d)
			}
			stalls++
		}
	}
	if stalls != 4 {
		t.Fatalf("16 traversals at StallEvery=4 gave %d stalls", stalls)
	}
}

func TestScopeParseAndCoverage(t *testing.T) {
	for s := ScopeRequestReply; s <= ScopeAll; s++ {
		back, err := ParseScope(s.String())
		if err != nil || back != s {
			t.Errorf("scope %v round trip: %v, %v", s, back, err)
		}
	}
	if _, err := ParseScope("nope"); err == nil {
		t.Error("ParseScope accepted junk")
	}
	// Every kind except WriteBack must be faultable in exactly the
	// scopes that claim it, and WriteBack in none.
	all := Spec{Scope: ScopeAll}.cover()
	for k := msg.ReadShared; int(k) < msg.NumKinds; k++ {
		want := k != msg.WriteBack
		if all[k] != want {
			t.Errorf("ScopeAll covers %v = %v, want %v", k, all[k], want)
		}
	}
}

// cover reports, per kind, whether the spec's scope includes it.
func (s Spec) cover() map[msg.Kind]bool {
	in := Injector{spec: s}
	m := make(map[msg.Kind]bool)
	for k := msg.Kind(0); int(k) < msg.NumKinds; k++ {
		m[k] = in.inScope(k)
	}
	return m
}

func TestMetricsInto(t *testing.T) {
	in := Spec{Seed: 3, Drop: 0.5}.Compile(2)
	for i := 0; i < 50; i++ {
		in.Arrival(msg.ReadShared, 0, 1, false, sim.Time(i))
	}
	in.NoteDetectedDrop()
	reg := metrics.New()
	in.MetricsInto(reg)
	rep := reg.Report()
	for _, want := range []string{"faults/candidates", "faults/drops", "faults/detected-drops"} {
		if !strings.Contains(rep, want) {
			t.Errorf("metrics report missing %s:\n%s", want, rep)
		}
	}
	if reg.Counter("faults/candidates").Value() != 50 {
		t.Errorf("candidates = %d, want 50", reg.Counter("faults/candidates").Value())
	}
	if reg.Counter("faults/drops").Value() == 0 {
		t.Error("drop plan recorded zero drops")
	}
}
