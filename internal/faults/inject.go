package faults

import (
	"cenju4/internal/metrics"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// Action is the injector's verdict for one endpoint delivery.
type Action uint8

const (
	// Pass delivers the message normally (possibly delayed).
	Pass Action = iota
	// DropMsg discards the message instead of delivering it.
	DropMsg
	// DupMsg delivers the message and a clone one tick later.
	DupMsg
	// CorruptMsg flips a bit in the message before delivery; the
	// checksum check at the endpoint turns it into a detected drop.
	CorruptMsg
)

// Stats counts what the injector actually did. All integers, merged
// into the metrics registry by MetricsInto; chaos reports print them so
// an "all tests pass" run with zero injected faults is visibly a
// placebo.
type Stats struct {
	// Candidates is the number of in-scope, in-window deliveries that
	// drew from the fault stream.
	Candidates uint64
	// Drops, Dups, Delays, Corruptions count injected faults by kind.
	Drops       uint64
	Dups        uint64
	Delays      uint64
	Corruptions uint64
	// DetectedDrops counts corrupted messages the endpoint checksum
	// check caught and discarded (should equal Corruptions: the
	// checksum must never miss).
	DetectedDrops uint64
	// Stalls counts injected switch-stage stalls.
	Stalls uint64
}

// Injector is a compiled fault plan, owned by one machine's network.
// It is single-goroutine like the engine: every decision comes from
// one splitmix64 stream advanced at deterministic points (endpoint
// delivery scheduling, stage traversal), so the schedule is a pure
// function of (spec, traffic) and identical at any -parallel level.
// Never share an Injector between machines or runs.
type Injector struct {
	spec  Spec
	nodes int

	// band holds cumulative 52-bit fixed-point thresholds for the one
	// banded draw per candidate: [drop, +dup, +delay, +corrupt).
	band [4]uint64

	state    uint64 // splitmix64 stream state
	stallCtr uint64
	injected int

	// floors[src*nodes+dst] is the latest delivery time scheduled for
	// the pair; applying max(t, floor) to every delivery preserves the
	// hardware's per-path in-order guarantee even when a plan delays
	// individual messages.
	floors []sim.Time

	// Stats is the injection ledger; read it after the run.
	Stats Stats
}

// Compile builds an Injector for a machine with the given node count.
// The spec is normalized first. Compile returns nil when the plan
// injects nothing, so callers can thread the result straight into
// network.Config.Injector.
func (s Spec) Compile(nodes int) *Injector {
	s = s.Normalize()
	if !s.Injecting() {
		return nil
	}
	const fracBits = 52
	cum := 0.0
	in := &Injector{spec: s, nodes: nodes, state: s.Seed, floors: make([]sim.Time, nodes*nodes)}
	for i, p := range [4]float64{s.Drop, s.Dup, s.Delay, s.Corrupt} {
		cum += p
		in.band[i] = uint64(cum * (1 << fracBits))
	}
	return in
}

// Spec returns the normalized plan this injector was compiled from.
func (in *Injector) Spec() Spec { return in.spec }

// splitmix64 output function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw advances the decision stream and returns 52 uniform bits.
func (in *Injector) draw() uint64 {
	in.state += 0x9e3779b97f4a7c15
	return mix64(in.state) >> 12
}

// active reports whether virtual time t is inside the plan's window.
func (in *Injector) active(t sim.Time) bool {
	return t >= in.spec.From && (in.spec.Until == 0 || t < in.spec.Until)
}

// spend consumes one unit of the MaxFaults budget; false means the
// budget is exhausted and the fault must not be injected.
func (in *Injector) spend() bool {
	if in.spec.MaxFaults > 0 && in.injected >= in.spec.MaxFaults {
		return false
	}
	in.injected++
	return true
}

// inScope reports whether the plan may fault messages of kind k.
func (in *Injector) inScope(k msg.Kind) bool {
	switch in.spec.Scope {
	case ScopeRequestReply:
		return k == msg.ReadShared || k == msg.ReadExclusive || k == msg.Ownership ||
			k == msg.UpdateWrite || k.ToMaster()
	case ScopeForwards:
		return k.ToSlave()
	case ScopeRepliesToHome:
		return k == msg.SlaveData || k == msg.SlaveAck || k == msg.InvAck || k == msg.UpdateAck
	case ScopeAll:
		return k != msg.WriteBack
	}
	return false
}

// Arrival decides the fate of one endpoint delivery of kind k from src
// to dst, nominally scheduled at t. It returns the action and the
// (possibly delayed, always pair-ordered) delivery time. Messages
// carrying gather state (gatherable) are exempt from loss faults —
// dropping one would leak its pooled group record and break the
// combining tree — but still pass through the ordering floor.
//
// Arrival is on the network's delivery hot path; it allocates nothing.
func (in *Injector) Arrival(k msg.Kind, src, dst topology.NodeID, gatherable bool, t sim.Time) (Action, sim.Time) {
	act := Pass
	at := t
	if !gatherable && in.active(t) && in.inScope(k) {
		in.Stats.Candidates++
		switch r := in.draw(); {
		case r < in.band[0]:
			if in.spend() {
				act = DropMsg
				in.Stats.Drops++
			}
		case r < in.band[1]:
			if in.spend() {
				act = DupMsg
				in.Stats.Dups++
			}
		case r < in.band[2]:
			if in.spend() {
				at = t + in.spec.DelayBy
				in.Stats.Delays++
			}
		case r < in.band[3]:
			if in.spend() {
				act = CorruptMsg
				in.Stats.Corruptions++
			}
		}
	}
	p := int(src)*in.nodes + int(dst)
	if at < in.floors[p] {
		at = in.floors[p]
	}
	// A duplicate is delivered one tick after the original; raise the
	// floor past it so a later message on the pair cannot slip between.
	if act == DupMsg {
		in.floors[p] = at + 1
	} else {
		in.floors[p] = at
	}
	return act, at
}

// Stall returns the extra latency to add to the current switch-stage
// traversal at time t: StallFor on every StallEvery-th traversal inside
// the window, 0 otherwise.
func (in *Injector) Stall(t sim.Time) sim.Time {
	if in.spec.StallEvery == 0 || !in.active(t) {
		return 0
	}
	in.stallCtr++
	if in.stallCtr%uint64(in.spec.StallEvery) != 0 || !in.spend() {
		return 0
	}
	in.Stats.Stalls++
	return in.spec.StallFor
}

// NoteDetectedDrop records that an endpoint checksum check caught a
// corrupted message and discarded it.
func (in *Injector) NoteDetectedDrop() { in.Stats.DetectedDrops++ }

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int { return in.injected }

// MetricsInto adds the injection ledger to reg under the "faults/"
// prefix.
func (in *Injector) MetricsInto(reg *metrics.Registry) {
	reg.Counter("faults/candidates").Add(in.Stats.Candidates)
	reg.Counter("faults/drops").Add(in.Stats.Drops)
	reg.Counter("faults/dups").Add(in.Stats.Dups)
	reg.Counter("faults/delays").Add(in.Stats.Delays)
	reg.Counter("faults/corruptions").Add(in.Stats.Corruptions)
	reg.Counter("faults/detected-drops").Add(in.Stats.DetectedDrops)
	reg.Counter("faults/stalls").Add(in.Stats.Stalls)
}
