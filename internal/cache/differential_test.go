package cache

// Differential property test: the packed move-to-front Cache must be
// observationally equivalent to the tick-LRU struct-per-line reference
// it replaced. Both are driven by identical randomized op sequences
// (Access load/store, Insert, SetState incl. invalidations, State
// probes, Flush) and must agree on every return value, every victim,
// all counters, and occupancy. This is the layer-local proof backing
// the golden-digest equivalence at machine scope.

import (
	"math/rand"
	"sort"
	"testing"

	"cenju4/internal/topology"
)

// refLine / refCache reproduce the pre-compaction implementation
// verbatim (struct lines, monotonic tick LRU, eager backing array).
type refLine struct {
	addr  topology.Addr
	state LineState
	lru   uint64
}

type refCache struct {
	sets  [][]refLine
	nsets int
	tick  uint64
	stats Stats
}

func newRef(cfg Config) *refCache {
	cfg = cfg.withDefaults()
	nsets := cfg.SizeBytes / (topology.BlockSize * cfg.Ways)
	sets := make([][]refLine, nsets)
	backing := make([]refLine, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &refCache{sets: sets, nsets: nsets}
}

func (c *refCache) set(addr topology.Addr) []refLine {
	return c.sets[int(uint64(addr)>>topology.BlockShift)&(c.nsets-1)]
}

func (c *refCache) find(block topology.Addr) *refLine {
	s := c.set(block)
	for i := range s {
		if s[i].state != Invalid && s[i].addr == block {
			return &s[i]
		}
	}
	return nil
}

func (c *refCache) state(addr topology.Addr) LineState {
	if l := c.find(addr.Block()); l != nil {
		return l.state
	}
	return Invalid
}

func (c *refCache) access(addr topology.Addr, store bool) (LineState, bool) {
	l := c.find(addr.Block())
	if l == nil {
		c.stats.Misses++
		return Invalid, false
	}
	c.tick++
	l.lru = c.tick
	if !store {
		c.stats.Hits++
		return l.state, true
	}
	switch l.state {
	case Modified:
		c.stats.Hits++
		return Modified, true
	case Exclusive:
		l.state = Modified
		c.stats.Hits++
		return Exclusive, true
	default: // Shared
		c.stats.Misses++
		return Shared, false
	}
}

func (c *refCache) setState(addr topology.Addr, st LineState) {
	l := c.find(addr.Block())
	if l == nil {
		return
	}
	if st == Invalid {
		c.stats.Invalidates++
	}
	l.state = st
}

func (c *refCache) insert(addr topology.Addr, st LineState) Victim {
	block := addr.Block()
	if l := c.find(block); l != nil {
		l.state = st
		c.tick++
		l.lru = c.tick
		return Victim{}
	}
	s := c.set(block)
	victim := &s[0]
	for i := range s {
		if s[i].state == Invalid {
			victim = &s[i]
			break
		}
		if s[i].lru < victim.lru {
			victim = &s[i]
		}
	}
	out := Victim{}
	if victim.state != Invalid {
		out = Victim{Addr: victim.addr, Writeback: victim.state == Modified, Valid: true}
		if victim.state == Modified {
			c.stats.Writebacks++
		}
	}
	c.tick++
	*victim = refLine{addr: block, state: st, lru: c.tick}
	return out
}

func (c *refCache) flush() []topology.Addr {
	var dirty []topology.Addr
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.state == Modified {
				dirty = append(dirty, l.addr)
				c.stats.Writebacks++
			}
			l.state = Invalid
		}
	}
	return dirty
}

func (c *refCache) occupancy() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].state != Invalid {
				n++
			}
		}
	}
	return n
}

func sortedAddrs(a []topology.Addr) []topology.Addr {
	out := append([]topology.Addr(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestDifferentialPackedVsTickLRU(t *testing.T) {
	configs := []Config{
		{SizeBytes: 2 * 128, Ways: 2},  // one set
		{SizeBytes: 8 * 128, Ways: 2},  // tiny, heavy eviction
		{SizeBytes: 16 * 128, Ways: 4}, // wider sets
		{SizeBytes: 64 * 128, Ways: 1}, // direct-mapped
	}
	states := []LineState{Shared, Exclusive, Modified}
	for ci, cfg := range configs {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(int64(ci)*101 + seed))
			got := New(cfg)
			want := newRef(cfg)
			for op := 0; op < 6000; op++ {
				a := topology.SharedAddr(topology.NodeID(rng.Intn(4)), uint64(rng.Intn(40))*topology.BlockSize)
				switch rng.Intn(10) {
				case 0, 1, 2: // load
					gs, gh := got.Access(a, false)
					ws, wh := want.access(a, false)
					if gs != ws || gh != wh {
						t.Fatalf("cfg %d seed %d op %d: load %v -> (%v,%v) want (%v,%v)", ci, seed, op, a, gs, gh, ws, wh)
					}
				case 3, 4: // store
					gs, gh := got.Access(a, true)
					ws, wh := want.access(a, true)
					if gs != ws || gh != wh {
						t.Fatalf("cfg %d seed %d op %d: store %v -> (%v,%v) want (%v,%v)", ci, seed, op, a, gs, gh, ws, wh)
					}
				case 5, 6, 7: // insert
					st := states[rng.Intn(len(states))]
					gv := got.Insert(a, st)
					wv := want.insert(a, st)
					if gv != wv {
						t.Fatalf("cfg %d seed %d op %d: insert %v,%v victim %+v want %+v", ci, seed, op, a, st, gv, wv)
					}
				case 8: // state change / invalidate
					st := []LineState{Invalid, Shared, Exclusive, Modified}[rng.Intn(4)]
					got.SetState(a, st)
					want.setState(a, st)
				case 9: // probe
					if gs, ws := got.State(a), want.state(a); gs != ws {
						t.Fatalf("cfg %d seed %d op %d: state %v = %v want %v", ci, seed, op, a, gs, ws)
					}
				}
				if op%997 == 0 {
					gd, wd := sortedAddrs(got.Flush()), sortedAddrs(want.flush())
					if len(gd) != len(wd) {
						t.Fatalf("cfg %d seed %d op %d: flush %d dirty want %d", ci, seed, op, len(gd), len(wd))
					}
					for i := range gd {
						if gd[i] != wd[i] {
							t.Fatalf("cfg %d seed %d op %d: flush dirty[%d]=%v want %v", ci, seed, op, i, gd[i], wd[i])
						}
					}
				}
				if got.Stats() != want.stats {
					t.Fatalf("cfg %d seed %d op %d: stats %+v want %+v", ci, seed, op, got.Stats(), want.stats)
				}
				if go_, wo := got.Occupancy(), want.occupancy(); go_ != wo {
					t.Fatalf("cfg %d seed %d op %d: occupancy %d want %d", ci, seed, op, go_, wo)
				}
			}
		}
	}
}
