// Package cache models the per-node secondary cache of Cenju-4: 1 MB,
// controlled by the R10000, 128-byte lines, MESI states. The simulator
// tracks tags and coherence states, not data contents — workloads are
// address streams, and block data values never influence timing.
package cache

import (
	"fmt"

	"cenju4/internal/topology"
)

// LineState is the MESI state of a cache line.
type LineState uint8

const (
	// Invalid: the line holds no valid copy.
	Invalid LineState = iota
	// Shared: a clean copy that other caches may also hold.
	Shared
	// Exclusive: the only cached copy, clean — stores upgrade silently.
	Exclusive
	// Modified: the only cached copy, dirty — replacement writes back.
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity (default 1 MB).
	SizeBytes int
	// Ways is the set associativity (default 2, as on the R10000 L2).
	Ways int
}

func (c Config) withDefaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 1 << 20
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	return c
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64 // modified lines evicted
	Invalidates uint64 // lines killed by coherence actions
}

// Cache is one node's secondary cache.
//
// Storage layout (the scale-critical part — a 1024-node machine holds
// 1024 of these): each line is one packed uint64 word, block address in
// the high bits and the MESI state in bits 1-0 (block addresses are
// 128-byte aligned, so the low bits are free; a zero word is an Invalid
// line). A set is Ways consecutive words kept in most-recently-used
// order — a hit rotates its word to the front, so the victim when the
// set is full is simply the last word, with no per-line LRU tick. Sets
// are grouped into lazily allocated pages: a cache that is never
// touched costs a page-pointer table and nothing else, instead of the
// ~200 KB of eager line structs the previous layout allocated per node.
//
// The move-to-front order is observationally equivalent to the tick
// LRU it replaced: ticks were strictly monotonic, so "smallest tick"
// is exactly "least recently rotated to front"; invalidations compact
// their set so holes sit behind all valid lines, and which hole an
// insert consumes was never observable (an Invalid victim is not
// reported).
type Cache struct {
	cfg       Config
	nsets     int
	ways      int
	pageShift uint       // sets per page = 1 << pageShift
	pageMask  int        // setsPerPage - 1
	pages     [][]uint64 // nil until a set in the page is first written
	stats     Stats
}

const (
	lineStateMask = 0x3
	// cachePageSets is the number of sets per lazily allocated page
	// (chosen so a default-geometry page is 1 KB: 64 sets x 2 ways x 8 B).
	cachePageSets = 64
)

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	nsets := cfg.SizeBytes / (topology.BlockSize * cfg.Ways)
	if nsets < 1 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: size %d / ways %d yields bad set count %d", cfg.SizeBytes, cfg.Ways, nsets))
	}
	perPage := cachePageSets
	if perPage > nsets {
		perPage = nsets
	}
	shift := uint(0)
	for 1<<shift < perPage {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		nsets:     nsets,
		ways:      cfg.Ways,
		pageShift: shift,
		pageMask:  perPage - 1,
		pages:     make([][]uint64, nsets/perPage),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the set count (for tests and capacity planning).
func (c *Cache) Sets() int { return c.nsets }

func (c *Cache) setIndex(addr topology.Addr) int {
	return int(uint64(addr)>>topology.BlockShift) & (c.nsets - 1)
}

// set returns the set's word slice for reading, or nil when its page
// has never been written (every line Invalid).
//
//cenju4:hotpath
func (c *Cache) set(si int) []uint64 {
	p := c.pages[si>>c.pageShift]
	if p == nil {
		return nil
	}
	base := (si & c.pageMask) * c.ways
	return p[base : base+c.ways]
}

// setForWrite returns the set's word slice, allocating its page on
// first touch.
func (c *Cache) setForWrite(si int) []uint64 {
	pi := si >> c.pageShift
	p := c.pages[pi]
	if p == nil {
		//cenju4:alloc-ok one page allocation covers cachePageSets sets for the cache's lifetime
		p = make([]uint64, (c.pageMask+1)*c.ways)
		c.pages[pi] = p
	}
	base := (si & c.pageMask) * c.ways
	return p[base : base+c.ways]
}

// findWay returns the way index holding block, or -1.
func findWay(s []uint64, block topology.Addr) int {
	for i, w := range s {
		if w&^lineStateMask == uint64(block) && w&lineStateMask != 0 {
			return i
		}
	}
	return -1
}

// moveToFront rotates s[i] to s[0], shifting s[0:i] back one way.
func moveToFront(s []uint64, i int) {
	if i == 0 {
		return
	}
	w := s[i]
	copy(s[1:i+1], s[0:i])
	s[0] = w
}

// State returns the MESI state of the block (Invalid when absent).
//
//cenju4:hotpath
func (c *Cache) State(addr topology.Addr) LineState {
	block := addr.Block()
	s := c.set(c.setIndex(block))
	if s == nil {
		return Invalid
	}
	if i := findWay(s, block); i >= 0 {
		return LineState(s[i] & lineStateMask)
	}
	return Invalid
}

// Access performs a processor load or store lookup. On a hit it updates
// recency, applies the silent E->M upgrade for stores, and returns
// (state-before-access, true). On a miss it returns (Invalid, false) —
// except a store to a Shared line, which is a "hit" in the array but
// still returns (Shared, false) at the protocol level because an
// ownership request is required; the caller upgrades via SetState after
// the transaction completes.
//
//cenju4:hotpath
func (c *Cache) Access(addr topology.Addr, store bool) (LineState, bool) {
	block := addr.Block()
	s := c.set(c.setIndex(block))
	i := -1
	if s != nil {
		i = findWay(s, block)
	}
	if i < 0 {
		c.stats.Misses++
		return Invalid, false
	}
	moveToFront(s, i)
	st := LineState(s[0] & lineStateMask)
	if !store {
		c.stats.Hits++
		return st, true
	}
	switch st {
	case Modified:
		c.stats.Hits++
		return Modified, true
	case Exclusive:
		s[0] = uint64(block) | uint64(Modified) // silent upgrade: sole clean copy
		c.stats.Hits++
		return Exclusive, true
	case Shared: // requires an ownership transaction
		c.stats.Misses++
		return Shared, false
	default:
		panic(fmt.Sprintf("cache: resident line in state %v", st))
	}
}

// SetState changes the coherence state of a resident block (used by the
// protocol modules: invalidations, downgrades, upgrade completions). It
// is a no-op when the block is absent — an invalidation can legally
// target a silently evicted line.
//
//cenju4:hotpath
func (c *Cache) SetState(addr topology.Addr, st LineState) {
	block := addr.Block()
	s := c.set(c.setIndex(block))
	if s == nil {
		return
	}
	i := findWay(s, block)
	if i < 0 {
		return
	}
	if st == Invalid {
		c.stats.Invalidates++
		// Compact so holes stay behind every valid line (the
		// victim-is-last invariant).
		copy(s[i:], s[i+1:])
		s[len(s)-1] = 0
		return
	}
	s[i] = uint64(block) | uint64(st)
}

// Victim describes a block displaced by Insert.
type Victim struct {
	Addr      topology.Addr
	Writeback bool // the victim was Modified and must be written back
	Valid     bool // a block was displaced at all
}

// Insert allocates the block with the given state, evicting the
// least-recently-used way if the set is full. Clean victims are dropped
// silently (the directory keeps a stale sharer record; a later
// invalidation is simply acknowledged). Modified victims are reported
// for writeback.
//
//cenju4:hotpath
func (c *Cache) Insert(addr topology.Addr, st LineState) Victim {
	block := addr.Block()
	s := c.setForWrite(c.setIndex(block))
	if i := findWay(s, block); i >= 0 {
		// Re-insert (transaction completion on a resident line).
		moveToFront(s, i)
		s[0] = uint64(block) | uint64(st)
		return Victim{}
	}
	out := Victim{}
	last := len(s) - 1
	if w := s[last]; w&lineStateMask != 0 {
		// Set full: the last (least recent) way is the victim.
		vst := LineState(w & lineStateMask)
		out = Victim{Addr: topology.Addr(w &^ lineStateMask), Writeback: vst == Modified, Valid: true}
		if vst == Modified {
			c.stats.Writebacks++
		}
	} else {
		// Holes live behind valid lines; shrink the shift to the first one.
		for last > 0 && s[last-1]&lineStateMask == 0 {
			last--
		}
	}
	copy(s[1:last+1], s[0:last])
	s[0] = uint64(block) | uint64(st)
	return out
}

// Flush invalidates every line and returns the addresses of modified
// blocks needing writeback (used when a workload phase migrates data).
func (c *Cache) Flush() []topology.Addr {
	var dirty []topology.Addr
	for _, p := range c.pages {
		if p == nil {
			continue
		}
		for i, w := range p {
			if w&lineStateMask == uint64(Modified) {
				dirty = append(dirty, topology.Addr(w&^lineStateMask))
				c.stats.Writebacks++
			}
			p[i] = 0
		}
	}
	return dirty
}

// Occupancy returns the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for _, p := range c.pages {
		if p == nil {
			continue
		}
		for _, w := range p {
			if w&lineStateMask != 0 {
				n++
			}
		}
	}
	return n
}
