// Package cache models the per-node secondary cache of Cenju-4: 1 MB,
// controlled by the R10000, 128-byte lines, MESI states. The simulator
// tracks tags and coherence states, not data contents — workloads are
// address streams, and block data values never influence timing.
package cache

import (
	"fmt"

	"cenju4/internal/topology"
)

// LineState is the MESI state of a cache line.
type LineState uint8

const (
	// Invalid: the line holds no valid copy.
	Invalid LineState = iota
	// Shared: a clean copy that other caches may also hold.
	Shared
	// Exclusive: the only cached copy, clean — stores upgrade silently.
	Exclusive
	// Modified: the only cached copy, dirty — replacement writes back.
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity (default 1 MB).
	SizeBytes int
	// Ways is the set associativity (default 2, as on the R10000 L2).
	Ways int
}

func (c Config) withDefaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 1 << 20
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	return c
}

type line struct {
	addr  topology.Addr // block address; meaningful only when state != Invalid
	state LineState
	lru   uint64
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64 // modified lines evicted
	Invalidates uint64 // lines killed by coherence actions
}

// Cache is one node's secondary cache.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	tick  uint64
	stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	nsets := cfg.SizeBytes / (topology.BlockSize * cfg.Ways)
	if nsets < 1 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: size %d / ways %d yields bad set count %d", cfg.SizeBytes, cfg.Ways, nsets))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the set count (for tests and capacity planning).
func (c *Cache) Sets() int { return c.nsets }

func (c *Cache) set(addr topology.Addr) []line {
	idx := int(uint64(addr)>>topology.BlockShift) & (c.nsets - 1)
	return c.sets[idx]
}

func (c *Cache) find(block topology.Addr) *line {
	s := c.set(block)
	for i := range s {
		if s[i].state != Invalid && s[i].addr == block {
			return &s[i]
		}
	}
	return nil
}

// State returns the MESI state of the block (Invalid when absent).
func (c *Cache) State(addr topology.Addr) LineState {
	if l := c.find(addr.Block()); l != nil {
		return l.state
	}
	return Invalid
}

// Access performs a processor load or store lookup. On a hit it updates
// LRU, applies the silent E->M upgrade for stores, and returns
// (state-before-access, true). On a miss it returns (Invalid, false) —
// except a store to a Shared line, which is a "hit" in the array but
// still returns (Shared, false) at the protocol level because an
// ownership request is required; the caller upgrades via SetState after
// the transaction completes.
func (c *Cache) Access(addr topology.Addr, store bool) (LineState, bool) {
	block := addr.Block()
	l := c.find(block)
	if l == nil {
		c.stats.Misses++
		return Invalid, false
	}
	c.tick++
	l.lru = c.tick
	if !store {
		c.stats.Hits++
		return l.state, true
	}
	switch l.state {
	case Modified:
		c.stats.Hits++
		return Modified, true
	case Exclusive:
		l.state = Modified // silent upgrade: sole clean copy
		c.stats.Hits++
		return Exclusive, true
	case Shared: // requires an ownership transaction
		c.stats.Misses++
		return Shared, false
	default:
		panic(fmt.Sprintf("cache: resident line in state %v", l.state))
	}
}

// SetState changes the coherence state of a resident block (used by the
// protocol modules: invalidations, downgrades, upgrade completions). It
// is a no-op when the block is absent — an invalidation can legally
// target a silently evicted line.
func (c *Cache) SetState(addr topology.Addr, st LineState) {
	l := c.find(addr.Block())
	if l == nil {
		return
	}
	if st == Invalid {
		c.stats.Invalidates++
	}
	l.state = st
}

// Victim describes a block displaced by Insert.
type Victim struct {
	Addr      topology.Addr
	Writeback bool // the victim was Modified and must be written back
	Valid     bool // a block was displaced at all
}

// Insert allocates the block with the given state, evicting the LRU way
// if the set is full. Clean victims are dropped silently (the directory
// keeps a stale sharer record; a later invalidation is simply
// acknowledged). Modified victims are reported for writeback.
func (c *Cache) Insert(addr topology.Addr, st LineState) Victim {
	block := addr.Block()
	if l := c.find(block); l != nil {
		// Re-insert (transaction completion on a resident line).
		l.state = st
		c.tick++
		l.lru = c.tick
		return Victim{}
	}
	s := c.set(block)
	victim := &s[0]
	for i := range s {
		if s[i].state == Invalid {
			victim = &s[i]
			break
		}
		if s[i].lru < victim.lru {
			victim = &s[i]
		}
	}
	out := Victim{}
	if victim.state != Invalid {
		out = Victim{Addr: victim.addr, Writeback: victim.state == Modified, Valid: true}
		if victim.state == Modified {
			c.stats.Writebacks++
		}
	}
	c.tick++
	*victim = line{addr: block, state: st, lru: c.tick}
	return out
}

// Flush invalidates every line and returns the addresses of modified
// blocks needing writeback (used when a workload phase migrates data).
func (c *Cache) Flush() []topology.Addr {
	var dirty []topology.Addr
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.state == Modified {
				dirty = append(dirty, l.addr)
				c.stats.Writebacks++
			}
			if l.state != Invalid {
				l.state = Invalid
			}
		}
	}
	return dirty
}

// Occupancy returns the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].state != Invalid {
				n++
			}
		}
	}
	return n
}
