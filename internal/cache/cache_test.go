package cache

import (
	"math/rand"
	"testing"

	"cenju4/internal/topology"
)

func addr(node topology.NodeID, block uint64) topology.Addr {
	return topology.SharedAddr(node, block*topology.BlockSize)
}

func TestDefaultGeometry(t *testing.T) {
	c := New(Config{})
	// 1 MB / (128 B * 2 ways) = 4096 sets.
	if c.Sets() != 4096 {
		t.Fatalf("Sets() = %d, want 4096", c.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two set count")
		}
	}()
	New(Config{SizeBytes: 3 * topology.BlockSize, Ways: 1})
}

func TestMissThenHit(t *testing.T) {
	c := New(Config{})
	a := addr(1, 5)
	if st, hit := c.Access(a, false); hit || st != Invalid {
		t.Fatalf("cold access: (%v,%v)", st, hit)
	}
	c.Insert(a, Shared)
	if st, hit := c.Access(a, false); !hit || st != Shared {
		t.Fatalf("after insert: (%v,%v)", st, hit)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUnalignedAddressesShareBlock(t *testing.T) {
	c := New(Config{})
	c.Insert(topology.SharedAddr(0, 640), Exclusive)
	if st, hit := c.Access(topology.SharedAddr(0, 700), false); !hit || st != Exclusive {
		t.Fatalf("same-block access missed: (%v,%v)", st, hit)
	}
}

func TestSilentExclusiveUpgrade(t *testing.T) {
	c := New(Config{})
	a := addr(0, 1)
	c.Insert(a, Exclusive)
	st, hit := c.Access(a, true)
	if !hit || st != Exclusive {
		t.Fatalf("store to E: (%v,%v), want (E,true)", st, hit)
	}
	if c.State(a) != Modified {
		t.Fatalf("state after silent upgrade = %v, want M", c.State(a))
	}
}

func TestStoreToSharedIsProtocolMiss(t *testing.T) {
	c := New(Config{})
	a := addr(0, 1)
	c.Insert(a, Shared)
	st, hit := c.Access(a, true)
	if hit || st != Shared {
		t.Fatalf("store to S: (%v,%v), want (S,false) — ownership required", st, hit)
	}
	if c.State(a) != Shared {
		t.Fatal("store to S must not change state before the transaction completes")
	}
}

func TestStoreToModifiedHits(t *testing.T) {
	c := New(Config{})
	a := addr(0, 1)
	c.Insert(a, Modified)
	if st, hit := c.Access(a, true); !hit || st != Modified {
		t.Fatalf("store to M: (%v,%v)", st, hit)
	}
}

func TestSetStateInvalidate(t *testing.T) {
	c := New(Config{})
	a := addr(0, 9)
	c.Insert(a, Shared)
	c.SetState(a, Invalid)
	if c.State(a) != Invalid {
		t.Fatal("invalidate failed")
	}
	if c.Stats().Invalidates != 1 {
		t.Fatalf("Invalidates = %d", c.Stats().Invalidates)
	}
	// Invalidating an absent block is a no-op.
	c.SetState(addr(0, 99), Invalid)
	if c.Stats().Invalidates != 1 {
		t.Fatal("no-op invalidate counted")
	}
}

func TestDowngradeModifiedToShared(t *testing.T) {
	c := New(Config{})
	a := addr(0, 3)
	c.Insert(a, Modified)
	c.SetState(a, Shared)
	if c.State(a) != Shared {
		t.Fatal("downgrade failed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 128, Ways: 2}) // one set, two ways
	a0, a1, a2 := addr(0, 0), addr(0, 1), addr(0, 2)
	c.Insert(a0, Shared)
	c.Insert(a1, Shared)
	c.Access(a0, false) // a0 most recent; a1 is LRU
	v := c.Insert(a2, Shared)
	if !v.Valid || v.Addr != a1.Block() {
		t.Fatalf("victim = %+v, want %v", v, a1.Block())
	}
	if v.Writeback {
		t.Fatal("clean victim flagged for writeback")
	}
	if c.State(a0) != Shared || c.State(a1) != Invalid || c.State(a2) != Shared {
		t.Fatal("post-eviction states wrong")
	}
}

func TestModifiedEvictionWritesBack(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1})
	a0, a1 := addr(0, 0), addr(0, 4096) // map to the same single set
	c.Insert(a0, Modified)
	v := c.Insert(a1, Exclusive)
	if !v.Valid || !v.Writeback || v.Addr != a0.Block() {
		t.Fatalf("victim = %+v, want writeback of %v", v, a0.Block())
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d", c.Stats().Writebacks)
	}
}

func TestReinsertUpdatesState(t *testing.T) {
	c := New(Config{})
	a := addr(0, 7)
	c.Insert(a, Shared)
	v := c.Insert(a, Modified)
	if v.Valid {
		t.Fatal("re-insert evicted something")
	}
	if c.State(a) != Modified {
		t.Fatal("re-insert did not update state")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", c.Occupancy())
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{})
	c.Insert(addr(0, 1), Modified)
	c.Insert(addr(0, 2), Shared)
	c.Insert(addr(0, 3), Modified)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("Flush returned %d dirty blocks, want 2", len(dirty))
	}
	if c.Occupancy() != 0 {
		t.Fatalf("Occupancy after flush = %d", c.Occupancy())
	}
}

func TestPrivateAndSharedCoexist(t *testing.T) {
	c := New(Config{})
	p := topology.PrivateAddr(256)
	s := addr(3, 2)
	c.Insert(p, Exclusive)
	c.Insert(s, Shared)
	if c.State(p) != Exclusive || c.State(s) != Shared {
		t.Fatal("private/shared lines interfere")
	}
}

// Property: the cache never exceeds capacity and a just-inserted block
// is always resident.
func TestPropertyCapacityAndResidency(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 128, Ways: 2}) // 64 lines
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5000; i++ {
		a := addr(topology.NodeID(rng.Intn(4)), uint64(rng.Intn(500)))
		st := []LineState{Shared, Exclusive, Modified}[rng.Intn(3)]
		c.Insert(a, st)
		if c.State(a) == Invalid {
			t.Fatalf("just-inserted block %v not resident", a)
		}
		if occ := c.Occupancy(); occ > 64 {
			t.Fatalf("occupancy %d exceeds capacity", occ)
		}
	}
}

// Property: every writeback reported corresponds to a block that was in
// Modified state.
func TestPropertyWritebackOnlyModified(t *testing.T) {
	c := New(Config{SizeBytes: 8 * 128, Ways: 2})
	rng := rand.New(rand.NewSource(77))
	states := map[topology.Addr]LineState{}
	for i := 0; i < 3000; i++ {
		a := addr(0, uint64(rng.Intn(64))).Block()
		st := []LineState{Shared, Exclusive, Modified}[rng.Intn(3)]
		v := c.Insert(a, st)
		if v.Valid {
			was := states[v.Addr]
			if v.Writeback != (was == Modified) {
				t.Fatalf("victim %v writeback=%v but recorded state %v", v.Addr, v.Writeback, was)
			}
			delete(states, v.Addr)
		}
		states[a] = st
	}
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("LineState strings wrong")
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{})
	a := addr(0, 3)
	c.Insert(a, Exclusive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(a, false)
	}
}
