package machine

import (
	"fmt"

	"cenju4/internal/core"
	"cenju4/internal/cpu"
	"cenju4/internal/mpi"
	"cenju4/internal/msg"
	"cenju4/internal/network"
	"cenju4/internal/psim"
	"cenju4/internal/topology"
)

// buildIntra assembles the machine for IntraParallel > 1: the network
// and MPI world live on the (serial) coordinator engine, while every
// node's controller and processor are constructed against the engine,
// message pool, and fabric/sync facades of the shard that owns the
// node. See internal/psim for the window protocol and the determinism
// argument; New has already validated the configuration.
func (m *Machine) buildIntra() {
	cfg := m.cfg
	// The coordinator pool serves the replay phase (multicast expansion
	// clones, absorbed gather contributions); each shard's controllers
	// and deliveries use the shard's own pool. Messages migrate between
	// freelists across the phase boundary, which is safe because each
	// pool is only touched in its owner's phase.
	pool := &msg.Pool{}
	m.net = network.New(m.eng, network.Config{
		Nodes:     cfg.Nodes,
		Stages:    cfg.Stages,
		Multicast: cfg.Multicast,
		Params:    cfg.Params,
		Pool:      pool,
	})
	m.world = mpi.New(m.eng, cfg.Nodes, cfg.MPI)
	m.psim = psim.New(psim.Config{
		Shards:   cfg.intraShards(),
		Workers:  cfg.IntraWorkers,
		Nodes:    cfg.Nodes,
		Params:   cfg.Params,
		MPI:      cfg.MPI,
		Stages:   m.net.Stages(),
		Net:      m.net,
		World:    m.world,
		CoordEng: m.eng,
	})
	m.ctrls = make([]*core.Controller, cfg.Nodes)
	m.cpus = make([]*cpu.CPU, cfg.Nodes)
	ctrlSlab := make([]core.Controller, cfg.Nodes)
	cpuSlab := make([]cpu.CPU, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node := topology.NodeID(i)
		eng := m.psim.ShardEngine(node)
		m.ctrls[i] = &ctrlSlab[i]
		m.ctrls[i].Init(eng, m.psim.Fabric(node), core.Config{
			Node:                node,
			Nodes:               cfg.Nodes,
			Params:              cfg.Params,
			Mode:                cfg.Mode,
			Cache:               cfg.Cache,
			SinglecastThreshold: cfg.SinglecastThreshold,
			UpdateMode:          cfg.UpdateMode,
			Pool:                m.psim.ShardPool(node),
			DenseDirectory:      cfg.DenseDirectory,
		})
		// The network-side attach only satisfies deliver()'s sanity
		// check; at K > 1 the delivery router intercepts before the
		// network's own scheduling, and the psim-side attach is the one
		// that fires.
		m.net.Attach(node, m.ctrls[i].Deliver)
		m.psim.Attach(node, m.ctrls[i].Deliver)
		cpuCfg := cfg.CPU
		cpuCfg.Node = node
		cpuCfg.Params = cfg.Params
		m.cpus[i] = &cpuSlab[i]
		m.cpus[i].Init(eng, m.ctrls[i], m.psim.Sync(node), cpuCfg)
	}
}

// Intra exposes the PDES coordinator, nil when the machine runs on the
// sequential kernel. Tests use it to assert the lookahead invariant
// (MinSlack) and window counts.
func (m *Machine) Intra() *psim.Coordinator { return m.psim }

// runQuiescent invokes the registered quiescent callbacks; the psim
// coordinator calls it at every global drain.
func (m *Machine) runQuiescent() {
	for _, f := range m.quiescent {
		f()
	}
}

// intraGate panics for machine features that are undefined or unsafe
// under intra-run parallelism.
func (m *Machine) intraGate(what string) {
	if m.psim != nil {
		panic(fmt.Sprintf("machine: %s is unsupported under IntraParallel > 1", what))
	}
}
