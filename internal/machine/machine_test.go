package machine

import (
	"testing"

	"cenju4/internal/cpu"
	"cenju4/internal/msg"
	"cenju4/internal/shmem"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

func progOf(ops ...cpu.Op) cpu.Program { return &cpu.SliceProgram{Ops: ops} }

func emptyProgs(n int) []cpu.Program {
	ps := make([]cpu.Program, n)
	for i := range ps {
		ps[i] = progOf()
	}
	return ps
}

func TestEmptyProgramsFinish(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	r := m.Run(emptyProgs(4))
	if r.Time != 0 {
		t.Fatalf("makespan %v, want 0", r.Time)
	}
	for _, s := range r.PerNode {
		if !s.Finished {
			t.Fatal("program not finished")
		}
	}
}

func TestComputeOnly(t *testing.T) {
	m := New(Config{Nodes: 2, Multicast: true})
	progs := []cpu.Program{
		progOf(cpu.Op{Kind: cpu.OpCompute, N: 1000}),
		progOf(cpu.Op{Kind: cpu.OpCompute, N: 500}),
	}
	r := m.Run(progs)
	if r.Time != 5000 { // 1000 instr * 5 ns
		t.Fatalf("makespan %v, want 5000", r.Time)
	}
	if r.PerNode[0].Instructions != 1000 || r.PerNode[1].Instructions != 500 {
		t.Fatalf("instruction counts: %d, %d", r.PerNode[0].Instructions, r.PerNode[1].Instructions)
	}
}

func TestPrivateAccessTiming(t *testing.T) {
	m := New(Config{Nodes: 1, Multicast: true})
	a := topology.PrivateAddr(0)
	progs := []cpu.Program{progOf(
		cpu.Op{Kind: cpu.OpLoad, Addr: a},  // private miss: 470 ns
		cpu.Op{Kind: cpu.OpLoad, Addr: a},  // hit: 8 ns
		cpu.Op{Kind: cpu.OpStore, Addr: a}, // hit (silent E->M): 8 ns
	)}
	r := m.Run(progs)
	if r.Time != 470+8+8 {
		t.Fatalf("makespan %v, want 486", r.Time)
	}
	s := r.PerNode[0]
	if s.PrivateAccesses != 3 || s.PrivateMisses != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSharedLocalCleanLatency(t *testing.T) {
	m := New(Config{Nodes: 16, Multicast: true})
	a := topology.SharedAddr(0, 0)
	progs := emptyProgs(16)
	progs[0] = progOf(cpu.Op{Kind: cpu.OpLoad, Addr: a})
	r := m.Run(progs)
	if r.Time != 610 { // Table 2 row b
		t.Fatalf("makespan %v, want 610", r.Time)
	}
	if r.PerNode[0].LocalAccesses != 1 || r.PerNode[0].LocalMisses != 1 {
		t.Fatalf("stats = %+v", r.PerNode[0])
	}
}

func TestRemoteAccessClassification(t *testing.T) {
	m := New(Config{Nodes: 16, Multicast: true})
	progs := emptyProgs(16)
	progs[3] = progOf(
		cpu.Op{Kind: cpu.OpLoad, Addr: topology.SharedAddr(7, 0)},
		cpu.Op{Kind: cpu.OpLoad, Addr: topology.SharedAddr(7, 0)}, // hit
	)
	r := m.Run(progs)
	s := r.PerNode[3]
	if s.RemoteAccesses != 2 || s.RemoteMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Misses != 1 || s.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", s.MissRatio())
	}
}

func TestTrueSharingThroughProgram(t *testing.T) {
	// Node 0 writes a block, barrier, node 1 reads it: the read must see
	// a coherence transaction (forwarded through the home).
	m := New(Config{Nodes: 2, Multicast: true})
	a := topology.SharedAddr(0, 0)
	progs := []cpu.Program{
		progOf(cpu.Op{Kind: cpu.OpStore, Addr: a}, cpu.Op{Kind: cpu.OpBarrier}),
		progOf(cpu.Op{Kind: cpu.OpBarrier}, cpu.Op{Kind: cpu.OpLoad, Addr: a}),
	}
	r := m.Run(progs)
	if r.Protocol[0].HomeForwards != 1 {
		t.Fatalf("home forwards = %d, want 1 (dirty read)", r.Protocol[0].HomeForwards)
	}
	if r.PerNode[1].SyncTime == 0 {
		t.Fatal("node 1 recorded no sync time despite waiting at the barrier")
	}
}

func TestSendRecvPrograms(t *testing.T) {
	m := New(Config{Nodes: 2, Multicast: true})
	progs := []cpu.Program{
		progOf(cpu.Op{Kind: cpu.OpSend, Dst: 1, N: 4096}),
		progOf(cpu.Op{Kind: cpu.OpRecv, Dst: 0}),
	}
	r := m.Run(progs)
	if r.MPI.Messages != 1 || r.MPI.Bytes != 4096 {
		t.Fatalf("MPI stats = %+v", r.MPI)
	}
	if r.PerNode[1].SyncTime == 0 {
		t.Fatal("receiver recorded no wait time")
	}
}

func TestAllReducePrograms(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	progs := make([]cpu.Program, 4)
	for i := range progs {
		progs[i] = progOf(cpu.Op{Kind: cpu.OpAllReduce, N: 8})
	}
	r := m.Run(progs)
	if r.MPI.AllReduces != 1 {
		t.Fatalf("AllReduces = %d", r.MPI.AllReduces)
	}
}

func TestQuantumPreservesTotalTime(t *testing.T) {
	// A long compute block must take the same total time regardless of
	// quantum-driven slicing.
	for _, q := range []sim.Time{1000, 1000000} {
		m := New(Config{Nodes: 1, Multicast: true, CPU: cpu.Config{Quantum: q}})
		r := m.Run([]cpu.Program{progOf(
			cpu.Op{Kind: cpu.OpCompute, N: 100000},
		)})
		if r.Time != 500000 {
			t.Fatalf("quantum %v: makespan %v, want 500000", q, r.Time)
		}
	}
}

func TestSharedArraySweepMissRate(t *testing.T) {
	// Streaming over a blocked shared region: 16 elements per block, so
	// the miss ratio must be 1/16 once cold misses dominate.
	m := New(Config{Nodes: 4, Multicast: true})
	alloc := shmem.NewAllocator(4)
	reg := alloc.Shared("u", 4*1024, shmem.MapBlocked)
	progs := make([]cpu.Program, 4)
	for n := 0; n < 4; n++ {
		lo, hi := reg.OwnerRange(topology.NodeID(n))
		var ops []cpu.Op
		for i := lo; i < hi; i++ {
			ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: reg.Addr(i)})
		}
		progs[n] = progOf(ops...)
	}
	r := m.Run(progs)
	tot := r.Totals()
	if tot.MemAccesses != 4096 {
		t.Fatalf("accesses = %d", tot.MemAccesses)
	}
	wantMisses := uint64(4096 / 16)
	if tot.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d", tot.Misses, wantMisses)
	}
	if tot.LocalMisses != wantMisses || tot.RemoteMisses != 0 {
		t.Fatalf("blocked mapping produced remote misses: %+v", tot)
	}
}

func TestUnmappedArrayIsRemoteForOthers(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	alloc := shmem.NewAllocator(4)
	reg := alloc.Shared("u", 1024, shmem.MapNone)
	progs := make([]cpu.Program, 4)
	for n := 0; n < 4; n++ {
		lo, hi := reg.OwnerRange(topology.NodeID(n))
		var ops []cpu.Op
		for i := lo; i < hi; i++ {
			ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: reg.Addr(i)})
		}
		progs[n] = progOf(ops...)
	}
	r := m.Run(progs)
	tot := r.Totals()
	if tot.RemoteMisses == 0 {
		t.Fatal("no remote misses despite MapNone")
	}
	// Node 0's accesses are local; the other three nodes' are remote.
	if r.PerNode[0].RemoteAccesses != 0 || r.PerNode[1].LocalAccesses != 0 {
		t.Fatalf("classification wrong: %+v / %+v", r.PerNode[0], r.PerNode[1])
	}
}

func TestLatencyHistograms(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	progs := []cpu.Program{
		progOf(
			cpu.Op{Kind: cpu.OpLoad, Addr: topology.SharedAddr(1, 0)},
			cpu.Op{Kind: cpu.OpStore, Addr: topology.SharedAddr(1, 128)},
		),
		progOf(), progOf(), progOf(),
	}
	m.Run(progs)
	h := m.LatencyHistograms()
	rs, ok := h[msg.ReadShared]
	if !ok || rs.Count() != 1 {
		t.Fatalf("read-shared histogram = %v", rs)
	}
	if _, ok := h[msg.ReadExclusive]; !ok {
		t.Fatal("read-exclusive histogram missing")
	}
	// Remote clean load on a 2-stage machine: Table 2 row c.
	if rs.Max() != 1740 {
		t.Fatalf("recorded latency %v, want 1740", rs.Max())
	}
}

func TestBadNodeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Nodes: 7})
}

func TestWrongProgramCountPanics(t *testing.T) {
	m := New(Config{Nodes: 2, Multicast: true})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Run(emptyProgs(3))
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		m := New(Config{Nodes: 8, Multicast: true})
		alloc := shmem.NewAllocator(8)
		reg := alloc.Shared("u", 2048, shmem.MapBlocked)
		progs := make([]cpu.Program, 8)
		for n := 0; n < 8; n++ {
			var ops []cpu.Op
			for i := 0; i < 512; i++ {
				idx := (i*13 + n*257) % 2048
				k := cpu.OpLoad
				if i%5 == 0 {
					k = cpu.OpStore
				}
				ops = append(ops, cpu.Op{Kind: k, Addr: reg.Addr(idx)})
			}
			ops = append(ops, cpu.Op{Kind: cpu.OpBarrier})
			progs[n] = progOf(ops...)
		}
		return m.Run(progs)
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Events != b.Events {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Time, a.Events, b.Time, b.Events)
	}
}

func BenchmarkMachineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(Config{Nodes: 16, Multicast: true})
		alloc := shmem.NewAllocator(16)
		reg := alloc.Shared("u", 16*1024, shmem.MapBlocked)
		progs := make([]cpu.Program, 16)
		for n := 0; n < 16; n++ {
			lo, hi := reg.OwnerRange(topology.NodeID(n))
			ops := make([]cpu.Op, 0, hi-lo)
			for j := lo; j < hi; j++ {
				ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: reg.Addr(j)})
			}
			progs[n] = progOf(ops...)
		}
		m.Run(progs)
	}
}
