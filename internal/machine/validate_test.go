package machine

import (
	"math/rand"
	"testing"

	"cenju4/internal/cache"
	"cenju4/internal/cpu"
	"cenju4/internal/shmem"
	"cenju4/internal/topology"
)

func TestValidateCleanMachine(t *testing.T) {
	m := New(Config{Nodes: 8, Multicast: true})
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh machine invalid: %v", err)
	}
}

func TestValidateAfterMixedTraffic(t *testing.T) {
	m := New(Config{Nodes: 16, Multicast: true})
	alloc := shmem.NewAllocator(16)
	reg := alloc.Shared("u", 4096, shmem.MapBlocked)
	rng := rand.New(rand.NewSource(5))
	progs := make([]cpu.Program, 16)
	for n := 0; n < 16; n++ {
		var ops []cpu.Op
		for i := 0; i < 800; i++ {
			k := cpu.OpLoad
			if rng.Intn(4) == 0 {
				k = cpu.OpStore
			}
			ops = append(ops, cpu.Op{Kind: k, Addr: reg.Addr(rng.Intn(4096))})
		}
		ops = append(ops, cpu.Op{Kind: cpu.OpBarrier})
		progs[n] = &cpu.SliceProgram{Ops: ops}
	}
	m.Run(progs)
	if err := m.Validate(); err != nil {
		t.Fatalf("coherence violated after mixed traffic: %v", err)
	}
}

func TestValidateAfterUpdateProtocolTraffic(t *testing.T) {
	alloc := shmem.NewAllocator(8)
	reg := alloc.Shared("p", 1024, shmem.MapBlocked)
	m := New(Config{Nodes: 8, Multicast: true, UpdateMode: reg.Contains})
	rng := rand.New(rand.NewSource(6))
	progs := make([]cpu.Program, 8)
	for n := 0; n < 8; n++ {
		var ops []cpu.Op
		for i := 0; i < 300; i++ {
			k := cpu.OpLoad
			if rng.Intn(4) == 0 {
				k = cpu.OpStore
			}
			ops = append(ops, cpu.Op{Kind: k, Addr: reg.Addr(rng.Intn(1024))})
		}
		progs[n] = &cpu.SliceProgram{Ops: ops}
	}
	m.Run(progs)
	if err := m.Validate(); err != nil {
		t.Fatalf("update-protocol traffic violated coherence: %v", err)
	}
}

// The validator must actually detect violations: corrupt a cache state
// behind the protocol's back and expect a complaint.
func TestValidateDetectsInjectedViolations(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	a := topology.SharedAddr(0, 0)
	done := false
	m.Controller(1).Request(a, true, func() { done = true })
	m.Engine().Run()
	if !done {
		t.Fatal("setup access failed")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	// Inject a second exclusive owner.
	m.Controller(2).Cache().Insert(a, cache.Modified)
	if err := m.Validate(); err == nil {
		t.Fatal("double owner not detected")
	}
	// Repair, then inject a sharer missing from the node map.
	m.Controller(2).Cache().SetState(a, cache.Invalid)
	m.Controller(1).Cache().SetState(a, cache.Shared)
	m.Controller(0).Memory().Entry(a).SetState(0 /* Clean */)
	if err := m.Validate(); err != nil {
		t.Fatalf("repaired state rejected: %v", err)
	}
	m.Controller(3).Cache().Insert(a, cache.Shared)
	if err := m.Validate(); err == nil {
		t.Fatal("unregistered sharer not detected")
	}
}

func TestValidateRejectsBusyEngine(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	m.Engine().At(100, func() {})
	if err := m.Validate(); err == nil {
		t.Fatal("validate accepted a busy engine")
	}
}
