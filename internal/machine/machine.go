// Package machine assembles a complete Cenju-4: N nodes (processor,
// cache, controller with master/home/slave modules, memory), the
// multistage network, and the message-passing world — and runs workload
// programs on it.
package machine

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"cenju4/internal/cache"
	"cenju4/internal/core"
	"cenju4/internal/cpu"
	"cenju4/internal/faults"
	"cenju4/internal/metrics"
	"cenju4/internal/mpi"
	"cenju4/internal/msg"
	"cenju4/internal/network"
	"cenju4/internal/psim"
	"cenju4/internal/sim"
	"cenju4/internal/stats"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// Config parameterizes a machine.
type Config struct {
	// Nodes is the machine size (power of two up to 1024).
	Nodes int
	// Stages overrides the network stage count (0 = paper default).
	Stages int
	// Multicast enables the network's multicast/gathering functions
	// (the real hardware; disable for the Figure 10 comparison).
	Multicast bool
	// Mode selects the coherence protocol (queuing or nack).
	Mode core.Mode
	// Params supplies hardware latency constants.
	Params timing.Params
	// MPI supplies message-passing constants.
	MPI timing.MPIParams
	// Cache overrides cache geometry.
	Cache cache.Config
	// CPU overrides processor constants (Node is filled per node).
	CPU cpu.Config
	// SinglecastThreshold forwards to core.Config.
	SinglecastThreshold int
	// UpdateMode forwards to core.Config: blocks handled by the
	// update-protocol extension.
	UpdateMode func(topology.Addr) bool
	// Faults forwards deliberate protocol-bug injection to every
	// controller (used by the fuzzing harness's self-tests; nil in
	// production configurations).
	Faults *core.Faults
	// DenseDirectory forwards to core.Config: build every node's
	// directory on the retained dense reference layout instead of the
	// sparse paged store. Observable behavior is identical (the digest
	// differential test proves it); only memory cost differs.
	DenseDirectory bool
	// Fault is the deterministic fault plan: message loss, duplication,
	// delay, and corruption on the network; switch stalls; buffer
	// squeezes; and the recovery machinery (timeouts + bounded
	// retransmits) that repairs the injected damage. The zero value is
	// fault-free and leaves every hot path untouched.
	Fault faults.Spec
	// IntraParallel partitions this one run's nodes into K shards
	// executed as a conservative PDES (internal/psim). 0 or 1 is the
	// sequential kernel, unchanged; K > 1 must be a power of two
	// dividing Nodes. Results are byte-identical at every K — only
	// wall-clock changes. Mutually exclusive with fault injection
	// (Fault, Faults), tracers, and value tracking; mpi Recv panics at
	// K > 1 (zero lookahead — see psim).
	IntraParallel int
	// IntraWorkers bounds the phase-A goroutines at K > 1 (0 = K,
	// clamped to [1, K]). Sweep drivers must budget it through
	// runner.NestedBudget so Map × intra workers ≤ GOMAXPROCS.
	IntraWorkers int
}

func (c Config) withDefaults() Config {
	if c.Params == (timing.Params{}) {
		c.Params = timing.Default()
	}
	if c.MPI == (timing.MPIParams{}) {
		c.MPI = timing.DefaultMPI()
	}
	return c
}

// Machine is one assembled system.
type Machine struct {
	cfg       Config
	eng       *sim.Engine
	net       *network.Network
	world     *mpi.World
	ctrls     []*core.Controller
	cpus      []*cpu.CPU
	quiescent []func()
	psim      *psim.Coordinator // non-nil iff cfg.IntraParallel > 1
}

// intraShards normalizes IntraParallel (0 → 1) and validates the
// combination.
func (c Config) intraShards() int {
	k := c.IntraParallel
	if k <= 1 {
		return 1
	}
	if k&(k-1) != 0 || k > c.Nodes {
		panic(fmt.Sprintf("machine: IntraParallel %d must be a power of two <= %d nodes", k, c.Nodes))
	}
	if c.Fault != (faults.Spec{}) || c.Faults != nil {
		panic("machine: IntraParallel > 1 is incompatible with fault injection")
	}
	return k
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if !topology.ValidNodeCount(cfg.Nodes) {
		panic(fmt.Sprintf("machine: invalid node count %d", cfg.Nodes))
	}
	m := &Machine{cfg: cfg, eng: sim.NewEngine()}
	fs := cfg.Fault.Normalize()
	if err := fs.Validate(); err != nil {
		panic(fmt.Sprintf("machine: %v", err))
	}
	if cfg.intraShards() > 1 {
		m.buildIntra()
		return m
	}
	// One message pool serves the whole machine: controllers allocate
	// from it, the network's release points feed it. Safe because every
	// machine handler is Controller.Deliver, which never retains a
	// delivered message past the handler call.
	pool := &msg.Pool{}
	m.net = network.New(m.eng, network.Config{
		Nodes:     cfg.Nodes,
		Stages:    cfg.Stages,
		Multicast: cfg.Multicast,
		Params:    cfg.Params,
		Pool:      pool,
		Injector:  fs.Compile(cfg.Nodes),
	})
	m.world = mpi.New(m.eng, cfg.Nodes, cfg.MPI)
	m.ctrls = make([]*core.Controller, cfg.Nodes)
	m.cpus = make([]*cpu.CPU, cfg.Nodes)
	// Contiguous slabs instead of per-node heap records: two allocations
	// cover all 1024 nodes' controller and processor hot state, keeping
	// per-node counters and module clocks dense in memory.
	ctrlSlab := make([]core.Controller, cfg.Nodes)
	cpuSlab := make([]cpu.CPU, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node := topology.NodeID(i)
		m.ctrls[i] = &ctrlSlab[i]
		m.ctrls[i].Init(m.eng, m.net, core.Config{
			Node:                node,
			Nodes:               cfg.Nodes,
			Params:              cfg.Params,
			Mode:                cfg.Mode,
			Cache:               cfg.Cache,
			SinglecastThreshold: cfg.SinglecastThreshold,
			UpdateMode:          cfg.UpdateMode,
			Faults:              cfg.Faults,
			Pool:                pool,
			DenseDirectory:      cfg.DenseDirectory,
			RequestTimeout:      fs.Timeout,
			RetransmitLimit:     fs.Retries,
			ModuleBufEntries:    fs.ModuleBuf,
		})
		m.net.Attach(node, m.ctrls[i].Deliver)
		cpuCfg := cfg.CPU
		cpuCfg.Node = node
		cpuCfg.Params = cfg.Params
		m.cpus[i] = &cpuSlab[i]
		m.cpus[i].Init(m.eng, m.ctrls[i], m.world, cpuCfg)
	}
	return m
}

// Engine exposes the event engine (examples and tests drive it). At
// IntraParallel > 1 there is no single engine to drive — events are
// partitioned across shard engines — so Engine panics.
func (m *Machine) Engine() *sim.Engine {
	m.intraGate("Engine()")
	return m.eng
}

// Network exposes the interconnect.
func (m *Machine) Network() *network.Network { return m.net }

// Controller returns node n's coherence controller.
func (m *Machine) Controller(n topology.NodeID) *core.Controller { return m.ctrls[n] }

// CPU returns node n's processor.
func (m *Machine) CPU(n topology.NodeID) *cpu.CPU { return m.cpus[n] }

// World exposes the message-passing world.
func (m *Machine) World() *mpi.World { return m.world }

// Nodes returns the machine size.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// SetTracer installs a protocol event tracer on every controller (nil
// removes it). Unsupported at IntraParallel > 1: controllers on
// different shards would invoke the tracer concurrently, and a trace
// interleaved by wall-clock completion order would not be
// deterministic.
func (m *Machine) SetTracer(t core.Tracer) {
	m.intraGate("SetTracer")
	for _, c := range m.ctrls {
		c.SetTracer(t)
	}
}

// TrackValues attaches a machine-wide data-value tracker reporting to
// obs and returns it. The tracker mirrors block data movement through
// every controller so a consistency oracle (internal/fuzz) can check
// that loads observe the values coherence order requires.
func (m *Machine) TrackValues(obs core.ValueObserver) *core.ValueTracker {
	m.intraGate("TrackValues") // one tracker shared by all shards would race
	vt := core.NewValueTracker(obs)
	for _, c := range m.ctrls {
		c.SetValueTracker(vt)
	}
	return vt
}

// OnQuiescent registers fn to be invoked at every quiescent point: each
// time the event queue drains during Run — once at the end of a single
// Run, and once per round for a driver that injects work in rounds.
// Callbacks run with the machine idle, so Machine.Validate holds inside
// them.
// At IntraParallel > 1, quiescence is a global property the psim
// coordinator decides; callbacks fire at every global drain but must
// not schedule new events (round-injecting drivers run at K = 1).
func (m *Machine) OnQuiescent(fn func()) {
	m.quiescent = append(m.quiescent, fn)
	if m.psim != nil {
		return // psim.Run invokes runQuiescent at each global drain
	}
	if len(m.quiescent) == 1 {
		m.eng.SetIdleFunc(m.runQuiescent)
	}
}

// AutoValidate arranges for Validate to run at every quiescent point
// and returns a getter for the first violation found (nil so far).
// Callers — the fuzzer, tests, long workload harnesses — no longer
// hand-roll idle detection around Validate.
func (m *Machine) AutoValidate() func() error {
	var first error
	m.OnQuiescent(func() {
		if first == nil {
			first = m.Validate()
		}
	})
	return func() error { return first }
}

// LatencyHistograms merges every node's per-request-kind transaction
// latency distributions.
func (m *Machine) LatencyHistograms() map[msg.Kind]*stats.Histogram {
	merged := make(map[msg.Kind]*stats.Histogram)
	for _, c := range m.ctrls {
		lats := c.Latencies()
		kinds := make([]msg.Kind, 0, len(lats))
		for kind := range lats { //cenju4:order-insensitive — keys are sorted below
			kinds = append(kinds, kind)
		}
		slices.Sort(kinds)
		for _, kind := range kinds {
			dst := merged[kind]
			if dst == nil {
				dst = &stats.Histogram{}
				merged[kind] = dst
			}
			dst.Merge(lats[kind])
		}
	}
	return merged
}

// MetricsInto assembles the machine's observability registry into reg:
// simulation counters (virtual end time, events fired), the network's
// per-stage utilization, every controller's protocol counters and FIFO
// watermarks, and one latency histogram per transaction kind. Call it
// after a run; counters add, so one registry can absorb several
// machines (the experiment harness merges per-run registries in run
// order).
// firedEvents counts executed events: the single engine's total, or at
// IntraParallel > 1 the sum over shard engines (the coordinator engine
// fires none — replay runs inline — so the sum equals the sequential
// count, keeping digests identical).
func (m *Machine) firedEvents() uint64 {
	if m.psim != nil {
		return m.psim.Fired()
	}
	return m.eng.Fired()
}

func (m *Machine) MetricsInto(reg *metrics.Registry) {
	reg.Counter("sim/events").Add(m.firedEvents())
	reg.Gauge("sim/time-ns").Peak(int64(m.eng.Now()))
	reg.Gauge("sim/nodes").Peak(int64(m.cfg.Nodes))
	m.net.MetricsInto(reg)
	if inj := m.net.Injector(); inj != nil {
		inj.MetricsInto(reg)
	}
	for _, c := range m.ctrls {
		c.MetricsInto(reg)
	}
	lats := m.LatencyHistograms()
	kinds := make([]msg.Kind, 0, len(lats))
	for kind := range lats { //cenju4:order-insensitive — keys are sorted below
		kinds = append(kinds, kind)
	}
	slices.Sort(kinds)
	for _, kind := range kinds {
		reg.Histogram("latency/" + kind.String()).Merge(lats[kind])
	}
}

// Metrics returns a fresh registry populated by MetricsInto.
func (m *Machine) Metrics() *metrics.Registry {
	reg := metrics.New()
	m.MetricsInto(reg)
	return reg
}

// Result summarizes one run.
type Result struct {
	// Time is the makespan: the latest program completion.
	Time sim.Time
	// PerNode holds each processor's execution statistics.
	PerNode []cpu.Stats
	// Protocol holds each controller's coherence statistics.
	Protocol []core.Stats
	// Network is the interconnect's counters.
	Network network.Stats
	// MPI is the message-passing counters.
	MPI mpi.Stats
	// Events is the number of simulation events executed.
	Events uint64
}

// launch starts every program and returns the per-node completion
// flags the watchdog reads at quiescence.
func (m *Machine) launch(progs []cpu.Program) []bool {
	if len(progs) != m.cfg.Nodes {
		panic(fmt.Sprintf("machine: %d programs for %d nodes", len(progs), m.cfg.Nodes))
	}
	done := make([]bool, m.cfg.Nodes)
	for i, p := range progs {
		i := i
		if m.psim != nil {
			// Stamp node i's launch push with the global node index so
			// launch ranks on different shard engines compare exactly as
			// this loop orders them on a single engine.
			m.psim.ShardEngine(topology.NodeID(i)).SetDriverSlot(uint64(i))
		}
		m.cpus[i].Run(p, func() { done[i] = true })
	}
	return done
}

func allDone(done []bool) bool {
	for _, ok := range done {
		if !ok {
			return false
		}
	}
	return true
}

// Run executes one program per node to completion and returns the
// aggregated result. len(progs) must equal the node count. Quiescence
// with unfinished programs panics with a *DeadlockError carrying the
// watchdog's stuck-state diagnosis; callers that want it as a value
// use RunContext.
func (m *Machine) Run(progs []cpu.Program) Result {
	done := m.launch(progs)
	if m.psim != nil {
		m.psim.Run(nil, m.runQuiescent) // nil poll: cannot return an error
	} else {
		m.eng.Run()
	}
	if !allDone(done) {
		panic(m.deadlock(done))
	}
	return m.Snapshot()
}

// ErrEventBudget is returned by RunContext when a run fires more
// events than its budget allows. The serve layer maps it to an
// over-limit rejection so one pathological spec cannot monopolize an
// execution worker.
var ErrEventBudget = errors.New("machine: event budget exhausted")

// runPollEvents is how many events RunContext executes between
// context/budget checks. Large enough that the checks are invisible in
// profiles, small enough that a cancelled job stops within
// microseconds of wall time.
const runPollEvents = 4096

// RunContext is Run with an abort path: between bounded event chunks
// it polls ctx and an optional event budget (0 = unlimited), so a
// caller can impose a wall-clock timeout (context.WithTimeout) or an
// operation ceiling on an otherwise opaque simulation. On abort the
// machine is mid-flight and must be discarded — only the error is
// meaningful. A run that completes is indistinguishable from Run: the
// chunked loop executes the identical event sequence (see
// sim.Engine.RunChunk), so digests and metrics are unaffected.
// Unlike Run, a watchdog trip surfaces as a returned *DeadlockError
// (classified with errors.Is(err, ErrDeadlock)), not a panic — the
// serve and chaos layers report the diagnosis instead of crashing.
func (m *Machine) RunContext(ctx context.Context, progs []cpu.Program, maxEvents uint64) (Result, error) {
	done := m.launch(progs)
	if m.psim != nil {
		// Window-bounded abort path: context and budget are polled at
		// every window barrier rather than every runPollEvents events —
		// coarser (a window can fire many events), but a cancelled run
		// still stops within one lookahead window.
		poll := func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if fired := m.psim.Fired(); maxEvents != 0 && fired > maxEvents {
				return fmt.Errorf("%w (%d events fired, budget %d)", ErrEventBudget, fired, maxEvents)
			}
			return nil
		}
		if err := m.psim.Run(poll, m.runQuiescent); err != nil {
			return Result{}, err
		}
		if !allDone(done) {
			return Result{}, m.deadlock(done)
		}
		return m.Snapshot(), nil
	}
	var fired uint64
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		limit := uint64(runPollEvents)
		if maxEvents != 0 {
			// Shrink the final chunk to the remaining budget plus one:
			// the extra event is what proves the budget is exceeded.
			if rem := maxEvents - fired; rem < limit {
				limit = rem + 1
			}
		}
		n, more := m.eng.RunChunk(limit)
		fired += n
		if maxEvents != 0 && fired > maxEvents {
			return Result{}, fmt.Errorf("%w (%d events fired, budget %d)", ErrEventBudget, fired, maxEvents)
		}
		if !more {
			break
		}
	}
	if !allDone(done) {
		return Result{}, m.deadlock(done)
	}
	return m.Snapshot(), nil
}

// Snapshot collects statistics without running.
func (m *Machine) Snapshot() Result {
	r := Result{
		PerNode:  make([]cpu.Stats, m.cfg.Nodes),
		Protocol: make([]core.Stats, m.cfg.Nodes),
		Network:  m.net.Stats(),
		MPI:      m.world.Stats(),
		Events:   m.firedEvents(),
	}
	for i := 0; i < m.cfg.Nodes; i++ {
		r.PerNode[i] = m.cpus[i].Stats()
		r.Protocol[i] = m.ctrls[i].Stats()
		if r.PerNode[i].EndTime > r.Time {
			r.Time = r.PerNode[i].EndTime
		}
	}
	return r
}

// Totals aggregates the per-node CPU statistics.
func (r Result) Totals() cpu.Stats {
	var t cpu.Stats
	for _, s := range r.PerNode {
		t.Instructions += s.Instructions
		t.MemAccesses += s.MemAccesses
		t.PrivateAccesses += s.PrivateAccesses
		t.LocalAccesses += s.LocalAccesses
		t.RemoteAccesses += s.RemoteAccesses
		t.Misses += s.Misses
		t.PrivateMisses += s.PrivateMisses
		t.LocalMisses += s.LocalMisses
		t.RemoteMisses += s.RemoteMisses
		t.BusyTime += s.BusyTime
		t.SyncTime += s.SyncTime
	}
	return t
}
