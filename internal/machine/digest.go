package machine

import (
	"fmt"
	"io"

	"cenju4/internal/digest"
	"cenju4/internal/msg"
)

// Digest returns a canonical SHA-256 digest of a Result, used by the
// golden regression tests: any engine, network or protocol change that
// perturbs a simulation's outcome — timing, event counts, per-node
// statistics — changes the digest.
//
// The serialization is explicit field-by-field writing in declaration
// order through the repo's canonical digest writer (internal/digest),
// never reflection or map iteration, so it is stable across process
// runs and Go versions. The one map in the Result
// (core.Stats.Requests) is written in msg.Kind numeric order. When a
// field is added to any stats struct, extend writeResult and regenerate
// the golden files (see fuzz/golden_test.go).
func Digest(r Result) string {
	w := digest.New()
	writeResult(w, r)
	return w.Sum()
}

func writeResult(w io.Writer, r Result) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("time=%d events=%d\n", r.Time, r.Events)
	for i, s := range r.PerNode {
		p("cpu%d %d %d %d %d %d %d %d %d %d %d %d %t %d\n", i,
			s.Instructions, s.MemAccesses,
			s.PrivateAccesses, s.LocalAccesses, s.RemoteAccesses,
			s.Misses, s.PrivateMisses, s.LocalMisses, s.RemoteMisses,
			s.BusyTime, s.SyncTime, s.Finished, s.EndTime)
	}
	for i, s := range r.Protocol {
		p("ctrl%d", i)
		for k := msg.Kind(0); k <= msg.UpdateAck; k++ {
			if v := s.Requests[k]; v != 0 {
				p(" %d:%d", uint8(k), v)
			}
		}
		p(" | %d %d %d %d %d %d %d", s.Replies, s.Nacks, s.Retries,
			s.MaxRetries, s.Writebacks, s.LatencySum, s.LatencyMax)
		p(" %d %d %d %d %d %d %d", s.Completed, s.HomeRequests,
			s.HomeForwards, s.Invalidations, s.InvTargets,
			s.QueuedRequests, s.QueueHighWater)
		p(" %d %d %d %d %d\n", s.SlaveRequests, s.SlaveOverflowHW,
			s.HomeOverflowHW, s.L3Hits, s.UpdateWrites)
	}
	n := r.Network
	p("net %d %d %d %d %d %d %d %d %d %d %d\n", n.Messages, n.Deliveries,
		n.Hops, n.Multicasts, n.Replications, n.Gathers, n.GatherMerges,
		n.PeakGathers, n.DataMessages, n.ContendedHops, n.MaxPortBacklog)
	p("mpi %d %d %d %d\n", r.MPI.Messages, r.MPI.Bytes, r.MPI.Barriers, r.MPI.AllReduces)
}
