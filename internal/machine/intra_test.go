package machine

import (
	"context"
	"testing"

	"cenju4/internal/timing"
)

// intraDigest runs the golden synthetic workload on n nodes at the
// given shard/worker counts and returns the result digest.
func intraDigest(t *testing.T, n, shards, workers, seed int) string {
	t.Helper()
	m := New(Config{
		Nodes:         n,
		Multicast:     true,
		IntraParallel: shards,
		IntraWorkers:  workers,
	})
	r := m.Run(goldenProgs(n, uint64(seed)))
	return Digest(r)
}

// TestIntraDigestIdentitySmall: the PDES execution must be
// byte-identical to the sequential kernel at every shard count, and
// independent of the worker count.
func TestIntraDigestIdentitySmall(t *testing.T) {
	const n = 16
	for _, seed := range []int{1, 7} {
		seq := intraDigest(t, n, 1, 0, seed)
		for _, k := range []int{2, 4, 8} {
			if got := intraDigest(t, n, k, 1, seed); got != seq {
				t.Errorf("seed %d K=%d workers=1: digest %s != sequential %s", seed, k, got, seq)
			}
			if got := intraDigest(t, n, k, 2, seed); got != seq {
				t.Errorf("seed %d K=%d workers=2: digest %s != sequential %s", seed, k, got, seq)
			}
		}
	}
}

// TestIntraLookaheadDifferential: the conservative window must be the
// minimum cross-shard propagation latency from internal/timing, and no
// replay-scheduled event may land inside the window that produced it.
// The router enforces the invariant with a panic; this test asserts the
// positive slack it recorded, so a silent weakening of the bound (or a
// lookahead wider than the timing model justifies) fails loudly.
func TestIntraLookaheadDifferential(t *testing.T) {
	const n = 16
	m := New(Config{Nodes: n, Multicast: true, IntraParallel: 4})
	c := m.Intra()

	p := timing.Default()
	wantL := p.Traversal(m.Network().Stages(), false)
	if mpiL := timing.DefaultMPI().Latency; mpiL < wantL {
		wantL = mpiL
	}
	if c.Lookahead() != wantL {
		t.Fatalf("lookahead %v, want min cross-shard latency %v", c.Lookahead(), wantL)
	}

	m.Run(goldenProgs(n, 3))
	if c.Windows() == 0 {
		t.Fatal("no windows ran — test is vacuous")
	}
	if c.MinSlack() < 1 {
		t.Fatalf("min slack %v — a cross-shard event landed at or before its window deadline", c.MinSlack())
	}
}

// TestIntraDigestIdentityScale: the golden-scale suite (the synthetic
// 1024-node workload and the NPB CG shape) digests byte-identically at
// every -parallel-intra level. The sequential digests are additionally
// pinned by TestScaleGoldenDigests, so this transitively pins the PDES
// execution to the golden files. CI's scale-smoke job runs this under
// -race: phase-disjoint ownership across shards is then machine-checked,
// not just argued.
func TestIntraDigestIdentityScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node runs are seconds each; skipped under -short")
	}
	for _, c := range scaleMatrix() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel() // each subtest owns its machines
			seq := runScale(t, c)
			for _, k := range []int{2, 4, 8} {
				progs, cfg := c.progs(t)
				cfg.IntraParallel = k
				cfg.IntraWorkers = 2
				m := New(cfg)
				r, err := m.RunContext(context.Background(), progs, c.budget)
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if got := Digest(r); got != seq {
					t.Errorf("K=%d: digest %s != sequential %s", k, got, seq)
				}
				if slack := m.Intra().MinSlack(); slack < 1 {
					t.Errorf("K=%d: min slack %v — lookahead invariant violated", k, slack)
				}
			}
		})
	}
}

// TestIntraConfigGates: invalid or unsupported combinations fail fast.
func TestIntraConfigGates(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-power-of-two K", func() {
		New(Config{Nodes: 16, IntraParallel: 3})
	})
	mustPanic("K > nodes", func() {
		New(Config{Nodes: 4, IntraParallel: 8})
	})
	m := New(Config{Nodes: 8, IntraParallel: 2})
	mustPanic("Engine() at K>1", func() { m.Engine() })
	mustPanic("SetTracer at K>1", func() { m.SetTracer(nil) })
	mustPanic("TrackValues at K>1", func() { m.TrackValues(nil) })
}
