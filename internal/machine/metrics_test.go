package machine

import (
	"strings"
	"testing"

	"cenju4/internal/cpu"
	"cenju4/internal/topology"
)

// metricsWorkload drives a small mixed shared/private workload with
// real multicast invalidations and returns the machine's registry.
func metricsWorkload() ([]string, *strings.Builder) {
	m := New(Config{Nodes: 16, Multicast: true})
	a := topology.SharedAddr(0, 0)
	b := topology.SharedAddr(3, 1)
	progs := emptyProgs(16)
	for i := 0; i < 6; i++ {
		progs[i+1] = progOf(
			cpu.Op{Kind: cpu.OpLoad, Addr: a},
			cpu.Op{Kind: cpu.OpStore, Addr: b},
			cpu.Op{Kind: cpu.OpStore, Addr: a},
		)
	}
	m.Run(progs)
	reg := m.Metrics()
	var json strings.Builder
	if err := reg.WriteJSON(&json); err != nil {
		panic(err)
	}
	return strings.Split(reg.Report(), "\n"), &json
}

// TestMachineMetricsDeterministic runs the same workload twice and
// demands byte-identical renderings — the machine-level half of the
// observability determinism contract.
func TestMachineMetricsDeterministic(t *testing.T) {
	r1, j1 := metricsWorkload()
	r2, j2 := metricsWorkload()
	if strings.Join(r1, "\n") != strings.Join(r2, "\n") {
		t.Fatal("Report differs between identical runs")
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON export differs between identical runs")
	}
}

func TestMachineMetricsContents(t *testing.T) {
	report, _ := metricsWorkload()
	text := strings.Join(report, "\n")
	for _, want := range []string{
		"sim/events",
		"sim/time-ns",
		"net/messages",
		"net/replications",
		"net/stage0/hops",
		"net/stage0/port-busy-ns",
		"core/fifo/home-requests",
		"core/fifo/home-out-overflow",
		"core/fifo/slave-overflow",
		"core/requests/read-shared",
		"latency/read-shared",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
