package machine

import (
	"context"
	"errors"
	"testing"

	"cenju4/internal/cpu"
	"cenju4/internal/topology"
)

// sharedProgs builds a small true-sharing workload: every node loads
// and stores one block homed at node 0, generating enough protocol
// traffic that the chunked run covers multiple poll intervals.
func sharedProgs(nodes, rounds int) []cpu.Program {
	progs := make([]cpu.Program, nodes)
	for i := range progs {
		var ops []cpu.Op
		for r := 0; r < rounds; r++ {
			a := topology.SharedAddr(0, uint64(r%4)*64)
			ops = append(ops,
				cpu.Op{Kind: cpu.OpLoad, Addr: a},
				cpu.Op{Kind: cpu.OpStore, Addr: a},
				cpu.Op{Kind: cpu.OpCompute, N: 10})
		}
		progs[i] = &cpu.SliceProgram{Ops: ops}
	}
	return progs
}

// TestRunContextMatchesRun: a completed RunContext is byte-identical
// (by result digest) to a plain Run of the same workload.
func TestRunContextMatchesRun(t *testing.T) {
	ref := New(Config{Nodes: 8, Multicast: true}).Run(sharedProgs(8, 40))

	m := New(Config{Nodes: 8, Multicast: true})
	got, err := m.RunContext(context.Background(), sharedProgs(8, 40), 0)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if Digest(got) != Digest(ref) {
		t.Fatalf("RunContext digest %s differs from Run digest %s", Digest(got), Digest(ref))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("post-run validate: %v", err)
	}
}

// TestRunContextCancelled: a pre-cancelled context aborts before any
// event fires.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(Config{Nodes: 4, Multicast: true})
	_, err := m.RunContext(ctx, sharedProgs(4, 10), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.Engine().Fired() != 0 {
		t.Fatalf("%d events fired under a cancelled context", m.Engine().Fired())
	}
}

// TestRunContextEventBudget: a budget smaller than the run aborts with
// ErrEventBudget, without overshooting by more than one event.
func TestRunContextEventBudget(t *testing.T) {
	total := New(Config{Nodes: 8, Multicast: true}).Run(sharedProgs(8, 40)).Events
	if total < 100 {
		t.Fatalf("workload too small to test budgeting (%d events)", total)
	}
	budget := total / 2
	m := New(Config{Nodes: 8, Multicast: true})
	_, err := m.RunContext(context.Background(), sharedProgs(8, 40), budget)
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if fired := m.Engine().Fired(); fired != budget+1 {
		t.Fatalf("fired %d events under budget %d, want exactly budget+1", fired, budget)
	}
}

// TestRunContextGenerousBudget: a budget at least the run's event
// count does not fire.
func TestRunContextGenerousBudget(t *testing.T) {
	total := New(Config{Nodes: 4, Multicast: true}).Run(sharedProgs(4, 10)).Events
	m := New(Config{Nodes: 4, Multicast: true})
	if _, err := m.RunContext(context.Background(), sharedProgs(4, 10), total); err != nil {
		t.Fatalf("budget == event count aborted: %v", err)
	}
}
