package machine

// Full-machine-scale regression suite: the paper's headline claims are
// made at 1024 nodes, so the hot-state compaction work (packed cache
// sets, paged directories, ring queues, pooled events and transactions)
// is locked down at that scale, not just at the 4–16 node sizes the
// main golden matrix covers.
//
//   - TestScaleGoldenDigests: two 1024-node runs — the synthetic golden
//     workload and an NPB CG (dsm2) shape — must complete within an
//     event budget and reproduce pinned digests.
//   - TestScaleSeqVsParallelIdentity: the same 1024-node run digests
//     byte-identically whether machines execute one at a time or
//     concurrently (run under -race in CI, this proves machines share
//     no mutable state).
//   - TestScaleSparseVsDenseDigest: the sparse directory layout and the
//     retained dense reference produce identical digests end to end.
//   - TestSteadyStateProtocolAllocs: a warm machine executes tens of
//     thousands of protocol operations with only a per-round constant
//     number of heap allocations.
//
// Regenerate the pinned digests after an intentional behavior change:
//
//	UPDATE_GOLDEN=1 go test ./internal/machine -run TestScaleGoldenDigests

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cenju4/internal/cpu"
	"cenju4/internal/npb"
	"cenju4/internal/topology"
)

const scaleNodes = 1024

type scaleCase struct {
	name string
	// budget is the RunContext event ceiling: generous headroom over the
	// measured event count (so legitimate timing changes do not trip
	// it), but tight enough that a complexity regression — an event
	// storm from a broken queue or retry loop — fails fast instead of
	// hanging the suite.
	budget uint64
	progs  func(t testing.TB) ([]cpu.Program, Config)
}

func scaleMatrix() []scaleCase {
	return []scaleCase{
		{
			// The golden synthetic workload at full machine size:
			// ~123k shared accesses over blocks homed on all 1024 nodes
			// (measured ~2.3M events).
			name:   "synthetic-n1024-s1",
			budget: 8_000_000,
			progs: func(testing.TB) ([]cpu.Program, Config) {
				return goldenProgs(scaleNodes, 1), Config{Nodes: scaleNodes, Multicast: true}
			},
		},
		{
			// An NPB-shape run: CG (dsm2 variant, data mapping on) at
			// quarter Class A scale, one time step (measured ~480k
			// events). This is the paper's evaluation workload shape at
			// the paper's full machine size.
			name:   "npb-cg-n1024",
			budget: 2_000_000,
			progs: func(t testing.TB) ([]cpu.Program, Config) {
				w, err := npb.Build(npb.Options{
					App: npb.CG, Variant: npb.DSM2, Nodes: scaleNodes,
					DataMapping: true, Iterations: 1, Scale: 0.25,
				})
				if err != nil {
					t.Fatal(err)
				}
				return w.Progs, Config{Nodes: scaleNodes, Multicast: true, UpdateMode: w.UpdateMode}
			},
		},
	}
}

// runScale executes one scale case under its event budget and returns
// the result digest.
func runScale(t testing.TB, c scaleCase) string {
	progs, cfg := c.progs(t)
	m := New(cfg)
	r, err := m.RunContext(context.Background(), progs, c.budget)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return Digest(r)
}

func TestScaleGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node runs are seconds each; skipped under -short")
	}
	path := filepath.Join("testdata", "golden_scale.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		var b strings.Builder
		b.WriteString("# machine.Result digests for the 1024-node scale matrix.\n")
		b.WriteString("# Regenerate: UPDATE_GOLDEN=1 go test ./internal/machine -run TestScaleGoldenDigests\n")
		for _, c := range scaleMatrix() {
			fmt.Fprintf(&b, "%s %s\n", c.name, runScale(t, c))
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, digest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[name] = digest
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	cases := scaleMatrix()
	if len(want) != len(cases) {
		t.Fatalf("golden file has %d entries, matrix has %d — regenerate", len(want), len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel() // each case owns its machine; digests are per-case
			got := runScale(t, c)
			w, ok := want[c.name]
			if !ok {
				t.Fatalf("no golden entry for %s — regenerate", c.name)
			}
			if got != w {
				t.Errorf("digest %s\n     want %s\n1024-node outcome changed; if intentional, regenerate with UPDATE_GOLDEN=1 and explain in the commit", got, w)
			}
		})
	}
}

// TestScaleSeqVsParallelIdentity: a 1024-node machine digests
// identically whether it runs alone or while three sibling machines run
// the same workload on other goroutines. Under -race (CI's race job)
// this also proves full-scale machines share no mutable state — pools,
// singles tables, page maps are all per-machine or immutable.
func TestScaleSeqVsParallelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("four 1024-node runs; skipped under -short")
	}
	c := scaleMatrix()[0]
	seq := runScale(t, c)

	const workers = 3
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = runScale(t, c)
		}(i)
	}
	wg.Wait()
	for i, d := range digests {
		if d != seq {
			t.Errorf("concurrent run %d digest %s != sequential %s", i, d, seq)
		}
	}
}

// TestScaleSparseVsDenseDigest: the machine-scope composition of the
// layer-local differentials in internal/memory — running every node's
// directory on the dense reference layout must not change any
// observable outcome.
func TestScaleSparseVsDenseDigest(t *testing.T) {
	nodes := []int{16}
	if !testing.Short() {
		nodes = append(nodes, scaleNodes)
	}
	for _, n := range nodes {
		progs := func() []cpu.Program { return goldenProgs(n, 7) }
		sparse := New(Config{Nodes: n, Multicast: true})
		dense := New(Config{Nodes: n, Multicast: true, DenseDirectory: true})
		ds := Digest(sparse.Run(progs()))
		dd := Digest(dense.Run(progs()))
		if ds != dd {
			t.Errorf("n=%d: sparse digest %s != dense digest %s", n, ds, dd)
		}
	}
}

// loopProgram is a resettable op-slice program: the steady-state alloc
// test re-arms the same program objects each round so the measurement
// sees only the machine's allocations, not the workload's.
type loopProgram struct {
	ops []cpu.Op
	pos int
}

func (p *loopProgram) Next() (cpu.Op, bool) {
	if p.pos >= len(p.ops) {
		return cpu.Op{}, false
	}
	op := p.ops[p.pos]
	p.pos++
	return op, true
}

// TestSteadyStateProtocolAllocs pins the allocation discipline of the
// protocol hot path: after one warmup round (which populates message,
// event and transaction pools, directory pages, cache set pages, and
// latency histograms), a round of 64k coherence operations across a
// 16-node machine must average out to a per-round constant — one
// event-engine entry per CPU restart plus pool/queue slack — not a
// per-operation cost. Before the compaction work a round like this
// allocated on every transaction (closure captures, map-backed
// directory entries, append-grown queues).
func TestSteadyStateProtocolAllocs(t *testing.T) {
	const nodes = 16
	const opsPerNode = 4000
	m := New(Config{Nodes: nodes, Multicast: true})

	progs := make([]*loopProgram, nodes)
	for n := range progs {
		s := splitmix64(uint64(n + 1))
		ops := make([]cpu.Op, opsPerNode)
		for i := range ops {
			s = splitmix64(s)
			home := topology.NodeID(s % nodes)
			block := (s >> 17) % 4
			addr := topology.SharedAddr(home, block*topology.BlockSize)
			kind := cpu.OpLoad
			if (s>>37)%4 == 0 {
				kind = cpu.OpStore
			}
			ops[i] = cpu.Op{Kind: kind, Addr: addr}
		}
		progs[n] = &loopProgram{ops: ops}
	}

	remaining := 0
	done := func() { remaining-- }
	round := func() {
		remaining = nodes
		for i, p := range progs {
			p.pos = 0
			m.CPU(topology.NodeID(i)).Run(p, done)
		}
		m.Engine().Run()
		if remaining != 0 {
			t.Fatalf("%d programs never finished", remaining)
		}
	}

	round() // warm pools, pages, histograms, rings
	avg := testing.AllocsPerRun(5, round)
	// 16 CPU restarts schedule 16 pooled events; the budget leaves room
	// for pool top-ups and an occasional calendar-queue resize, and is
	// still three orders of magnitude below one alloc per operation.
	const budget = 64
	t.Logf("steady-state round: %.1f allocs for %d protocol ops", avg, nodes*opsPerNode)
	if avg > budget {
		t.Errorf("steady-state round allocated %.1f times (budget %d) for %d ops — protocol hot path is allocating again", avg, budget, nodes*opsPerNode)
	}
}
