package machine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cenju4/internal/faults"
	"cenju4/internal/topology"
)

func recoverable(seed uint64) faults.Spec {
	return faults.Spec{Seed: seed, Drop: 0.02, Dup: 0.02, Corrupt: 0.01}.Normalize()
}

// unrecoverable drops every forwarded request: the first dirty-block
// steal wedges, retransmits exhaust, and the run goes quiescent with
// unfinished programs.
func unrecoverable() faults.Spec {
	return faults.Spec{
		Seed: 1, Drop: 1, Scope: faults.ScopeForwards,
		Timeout: 20_000, Retries: 2,
	}
}

func TestRecoverableFaultPlanCompletesAndValidates(t *testing.T) {
	m := New(Config{Nodes: 8, Multicast: true, Fault: recoverable(7)})
	violated := m.AutoValidate()
	r := m.Run(sharedProgs(8, 40))
	if err := violated(); err != nil {
		t.Fatalf("coherence violated under recoverable plan: %v", err)
	}
	inj := m.Network().Injector()
	if inj == nil || inj.Injected() == 0 {
		t.Fatal("plan injected nothing (placebo)")
	}
	var retransmits uint64
	for i := 0; i < m.Nodes(); i++ {
		retransmits += m.Controller(topology.NodeID(i)).Recovery().Retransmits
	}
	if retransmits == 0 {
		t.Fatal("faults injected but nothing was retransmitted")
	}
	if r.Time == 0 {
		t.Fatal("zero makespan")
	}
}

func TestFaultPlanDeterministicAcrossMachines(t *testing.T) {
	run := func(seed uint64) string {
		m := New(Config{Nodes: 8, Multicast: true, Fault: recoverable(seed)})
		return Digest(m.Run(sharedProgs(8, 40)))
	}
	if a, b := run(7), run(7); a != b {
		t.Fatalf("same plan, different digests: %s vs %s", a, b)
	}
	if a, b := run(7), run(8); a == b {
		t.Fatalf("different seeds, identical digest %s (placebo)", a)
	}
}

func TestWatchdogReturnsDeadlockErrorFromRunContext(t *testing.T) {
	m := New(Config{Nodes: 8, Multicast: true, Fault: unrecoverable()})
	_, err := m.RunContext(context.Background(), sharedProgs(8, 10), 0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err %T is not *DeadlockError", err)
	}
	if de.Unfinished == 0 {
		t.Fatal("DeadlockError with zero unfinished programs")
	}
	msg := de.Error()
	for _, want := range []string{
		"never finished",        // the phrase harnesses grep for
		"quiescent at t=",       // watchdog header
		"retransmits exhausted", // the stuck MSHR slot
		"faults (plan ",         // injector ledger
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, msg)
		}
	}
}

func TestWatchdogPanicsWithDeadlockErrorFromRun(t *testing.T) {
	m := New(Config{Nodes: 8, Multicast: true, Fault: unrecoverable()})
	defer func() {
		r := recover()
		de, ok := r.(*DeadlockError)
		if !ok {
			t.Fatalf("panic value %T, want *DeadlockError", r)
		}
		if !strings.Contains(de.Error(), "never finished") {
			t.Fatalf("panic lost the grep phrase: %s", de.Error())
		}
	}()
	m.Run(sharedProgs(8, 10))
	t.Fatal("unrecoverable run completed")
}

func TestFaultFreeMachineHasNoInjector(t *testing.T) {
	m := New(Config{Nodes: 4, Multicast: true})
	if m.Network().Injector() != nil {
		t.Fatal("zero fault spec compiled an injector")
	}
	if d := m.Diagnose(); d != "" {
		t.Fatalf("idle machine diagnosis non-empty:\n%s", d)
	}
}
