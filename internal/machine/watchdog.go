// Watchdog: quiescence-with-outstanding-work detection. The event
// engine is single-threaded and runs to quiescence, so a hang is never
// a livelock — it is always "the queue drained while programs still
// had work in flight". The watchdog turns that condition into a
// structured error carrying an actionable diagnosis (which CPUs are
// unfinished, which FIFOs hold depth, which directory entries are
// pending, which gather groups never combined, what the fault
// injector did) instead of a bare panic string.
package machine

import (
	"errors"
	"fmt"
	"strings"

	"cenju4/internal/topology"
)

// ErrDeadlock is the sentinel for quiescence with unfinished programs.
// DeadlockError wraps it, so callers classify with
// errors.Is(err, ErrDeadlock).
var ErrDeadlock = errors.New("machine: deadlock")

// DeadlockError reports a run that went quiescent with programs still
// unfinished — either a genuine protocol deadlock or (under fault
// injection) a transaction whose bounded retransmits were exhausted.
type DeadlockError struct {
	// Unfinished is the number of programs that never completed.
	Unfinished int
	// Diagnosis is the multi-line stuck-state report from Diagnose.
	Diagnosis string
}

// Error keeps the historical "programs never finished" phrase: the
// fuzz harness and operators grep for it.
func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("machine: %d programs never finished (deadlock or unmatched synchronization)", e.Unfinished)
	if e.Diagnosis != "" {
		s += "\n" + e.Diagnosis
	}
	return s
}

func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// Diagnose renders the machine's stuck-state report: virtual time,
// per-node controller state for every node holding work (stuck MSHR
// slots with retransmit counts, FIFO depths and high waters, pending
// directory entries with outstanding ack counts), in-flight gather
// groups that never combined, and — when a fault plan is active — the
// injector's ledger. Deterministic for a given machine state; empty
// when nothing is in flight.
func (m *Machine) Diagnose() string {
	var sb strings.Builder
	for _, c := range m.ctrls {
		c.DiagnoseInto(&sb)
	}
	if g := m.net.ActiveGathers(); g > 0 {
		fmt.Fprintf(&sb, "network: %d gather groups still awaiting combined replies\n", g)
	}
	if inj := m.net.Injector(); inj != nil {
		s := inj.Stats
		fmt.Fprintf(&sb, "faults (plan %s): %d candidates, %d dropped, %d duplicated, %d delayed, %d corrupted (%d detected), %d stalls\n",
			inj.Spec(), s.Candidates, s.Drops, s.Dups, s.Delays, s.Corruptions, s.DetectedDrops, s.Stalls)
	}
	return sb.String()
}

// deadlock builds the DeadlockError for a run that went quiescent with
// unfinished work. done[i] reports whether node i's program completed.
func (m *Machine) deadlock(done []bool) *DeadlockError {
	stuck := make([]topology.NodeID, 0, len(done))
	for i, ok := range done {
		if !ok {
			stuck = append(stuck, topology.NodeID(i))
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "quiescent at t=%dns with unfinished programs on nodes %v\n", m.eng.Now(), stuck)
	sb.WriteString(m.Diagnose())
	return &DeadlockError{Unfinished: len(stuck), Diagnosis: sb.String()}
}
