package machine

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

// Validate checks global coherence invariants across every touched
// shared block. It is meant to run when the event engine is idle (no
// in-flight transactions): pending directory states then indicate a
// protocol leak and fail validation too.
//
// Invariants:
//
//  1. Single writer: at most one node holds a block Modified or
//     Exclusive, and then no node holds it Shared.
//  2. Directory-dirty agreement: a Dirty block's decoded node map names
//     exactly one node, and no *other* node holds any copy. (The owner
//     itself may have silently evicted — the map is then stale but
//     safe.)
//  3. Conservative map: every node holding a copy of a Clean block
//     appears in the decoded (possibly superset) node map. Exception:
//     blocks under the update protocol do not track sharers.
//  4. Quiescence: no pending states, no reservation bits, and empty
//     request queues once the machine is idle.
//
// It returns the first violation found, or nil.
func (m *Machine) Validate() error {
	if m.eng.Pending() != 0 {
		return fmt.Errorf("machine: validate called with %d events outstanding", m.eng.Pending())
	}
	for home := 0; home < m.cfg.Nodes; home++ {
		ctrl := m.ctrls[home]
		if n := ctrl.PendingBlocks(); n != 0 {
			return fmt.Errorf("node %d: %d transactions still pending at idle", home, n)
		}
		if n := ctrl.QueueLen(); n != 0 {
			return fmt.Errorf("node %d: request queue holds %d entries at idle", home, n)
		}
		var err error
		ctrl.Memory().ForEach(func(idx uint64, e *directory.Entry) {
			if err != nil {
				return
			}
			addr := topology.SharedAddr(topology.NodeID(home), idx*topology.BlockSize)
			err = m.validateBlock(addr, e)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) validateBlock(addr topology.Addr, e *directory.Entry) error {
	if e.State().Pending() {
		return fmt.Errorf("block %v: state %v at idle", addr, e.State())
	}
	if e.Reserved() {
		return fmt.Errorf("block %v: reservation bit set at idle", addr)
	}
	updateMode := m.cfg.UpdateMode != nil && m.cfg.UpdateMode(addr)

	owners, sharers := 0, 0
	var owner topology.NodeID
	for n := 0; n < m.cfg.Nodes; n++ {
		switch m.ctrls[n].Cache().State(addr) {
		case cache.Modified, cache.Exclusive:
			owners++
			owner = topology.NodeID(n)
		case cache.Shared:
			sharers++
			if !updateMode && !e.MapContains(topology.NodeID(n)) {
				return fmt.Errorf("block %v: node %d holds S but is absent from the node map %v", addr, n, *e)
			}
		case cache.Invalid:
			// No copy at this node: nothing to cross-check.
		}
	}
	if owners > 1 {
		return fmt.Errorf("block %v: %d exclusive owners", addr, owners)
	}
	if owners == 1 && sharers > 0 {
		return fmt.Errorf("block %v: owner %v coexists with %d shared copies", addr, owner, sharers)
	}
	if owners == 1 {
		if updateMode {
			return fmt.Errorf("block %v: exclusive owner %v under the update protocol", addr, owner)
		}
		if e.State() != directory.Dirty {
			return fmt.Errorf("block %v: owner %v but directory state %v", addr, owner, e.State())
		}
		if !e.MapContains(owner) {
			return fmt.Errorf("block %v: owner %v absent from node map %v", addr, owner, *e)
		}
	}
	if e.State() == directory.Dirty {
		if n := len(e.MapMembers(nil, m.cfg.Nodes)); n != 1 {
			return fmt.Errorf("block %v: dirty with %d registered nodes", addr, n)
		}
	}
	return nil
}
