package machine

// Golden end-to-end regression test: run a fixed seed/config matrix of
// synthetic shared-memory workloads and compare the SHA-256 digest of
// every machine.Result against testdata/golden_digests.txt. Any change
// to the event kernel, the network model, the protocol, or the stats
// plumbing that perturbs any simulation outcome fails here.
//
// To regenerate after an intentional behavior change:
//
//	UPDATE_GOLDEN=1 go test ./internal/machine -run TestGoldenDigests
//
// and include the updated testdata file (and an explanation of why the
// numbers moved) in the same commit.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/cpu"
	"cenju4/internal/topology"
)

// splitmix64 is the repo's standard seed-derivation step (see
// fuzz.CaseSeed): deterministic, stateless, platform-independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// goldenProgs builds one deterministic workload: every node issues a
// seed-derived mix of compute bursts and loads/stores over a small set
// of shared blocks spread across all homes (so the run exercises local
// and remote transactions, invalidations, forwards and writebacks),
// then joins a final barrier.
func goldenProgs(nodes int, seed uint64) []cpu.Program {
	const opsPerNode = 120
	const blocksPerHome = 2
	progs := make([]cpu.Program, nodes)
	for n := 0; n < nodes; n++ {
		s := splitmix64(seed<<8 | uint64(n))
		ops := make([]cpu.Op, 0, opsPerNode+1)
		for i := 0; i < opsPerNode; i++ {
			s = splitmix64(s)
			home := topology.NodeID(s % uint64(nodes))
			block := (s >> 17) % blocksPerHome
			addr := topology.SharedAddr(home, block*topology.BlockSize)
			switch (s >> 37) % 4 {
			case 0:
				ops = append(ops, cpu.Op{Kind: cpu.OpCompute, N: 1 + s>>45%40})
			case 1, 2:
				ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: addr})
			default:
				ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: addr})
			}
		}
		ops = append(ops, cpu.Op{Kind: cpu.OpBarrier, N: 0})
		progs[n] = &cpu.SliceProgram{Ops: ops}
	}
	return progs
}

type goldenCase struct {
	name      string
	nodes     int
	mode      core.Mode
	multicast bool
	seed      uint64
}

func goldenMatrix() []goldenCase {
	var cases []goldenCase
	for _, nodes := range []int{4, 16} {
		for _, mode := range []core.Mode{core.ModeQueuing, core.ModeNack} {
			for _, mc := range []bool{true, false} {
				for seed := uint64(1); seed <= 2; seed++ {
					cases = append(cases, goldenCase{
						name:  fmt.Sprintf("n%d-%v-mc%t-s%d", nodes, mode, mc, seed),
						nodes: nodes, mode: mode, multicast: mc, seed: seed,
					})
				}
			}
		}
	}
	return cases
}

func runGolden(c goldenCase) string {
	m := New(Config{Nodes: c.nodes, Mode: c.mode, Multicast: c.multicast})
	r := m.Run(goldenProgs(c.nodes, c.seed))
	return Digest(r)
}

func TestGoldenDigests(t *testing.T) {
	path := filepath.Join("testdata", "golden_digests.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		var b strings.Builder
		b.WriteString("# machine.Result digests for the golden config/seed matrix.\n")
		b.WriteString("# Regenerate: UPDATE_GOLDEN=1 go test ./internal/machine -run TestGoldenDigests\n")
		for _, c := range goldenMatrix() {
			fmt.Fprintf(&b, "%s %s\n", c.name, runGolden(c))
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, digest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[name] = digest
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	cases := goldenMatrix()
	if len(want) != len(cases) {
		t.Fatalf("golden file has %d entries, matrix has %d — regenerate", len(want), len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if !testing.Short() {
				t.Parallel() // each case owns its machine; digests are per-case
			}
			got := runGolden(c)
			w, ok := want[c.name]
			if !ok {
				t.Fatalf("no golden entry for %s — regenerate", c.name)
			}
			if got != w {
				t.Errorf("digest %s\n     want %s\nsimulation outcome changed; if intentional, regenerate with UPDATE_GOLDEN=1 and explain in the commit", got, w)
			}
		})
	}
}

// TestDigestSensitivity: the digest must differ across distinct
// outcomes and be identical for identical reruns.
func TestDigestSensitivity(t *testing.T) {
	c := goldenCase{nodes: 4, mode: core.ModeQueuing, multicast: true, seed: 1}
	d1 := runGolden(c)
	d2 := runGolden(c)
	if d1 != d2 {
		t.Fatalf("identical runs digest differently: %s vs %s", d1, d2)
	}
	c.seed = 2
	if d3 := runGolden(c); d3 == d1 {
		t.Fatal("different workloads produced the same digest")
	}
	c.seed = 1
	c.multicast = false
	if d4 := runGolden(c); d4 == d1 {
		t.Fatal("different configs produced the same digest")
	}
}
