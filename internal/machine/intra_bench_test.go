package machine

import (
	"testing"

	"cenju4/internal/runner"
)

// benchIntra1024 runs the 1024-node synthetic golden workload (the
// BENCH_scale scenario at machine scale) once per iteration at the
// given shard count, with shard workers budgeted off GOMAXPROCS the
// way the frontends do it.
func benchIntra1024(b *testing.B, shards int) {
	const n = 1024
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		progs := goldenProgs(n, 1)
		m := New(Config{
			Nodes:         n,
			Multicast:     true,
			IntraParallel: shards,
			IntraWorkers:  runner.NestedBudget(1, shards),
		})
		b.StartTimer()
		r := m.Run(progs)
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkIntraSequential1024 is the sequential-kernel baseline the
// PDES numbers are read against.
func BenchmarkIntraSequential1024(b *testing.B) { benchIntra1024(b, 1) }

// BenchmarkIntraParallel1024 is the headline intra-run parallelism
// number: one 1024-node run sharded over 8 PDES partitions. The
// speedup over BenchmarkIntraSequential1024 scales with available
// cores (the digest does not — it is byte-identical at every K); on a
// single-core runner this measures the window/replay machinery's
// overhead instead, which the BENCH_scale.json floor pins so the
// coordination cost cannot silently grow.
func BenchmarkIntraParallel1024(b *testing.B) { benchIntra1024(b, 8) }
