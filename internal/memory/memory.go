// Package memory models a node's main memory as seen by the DSM: the
// directory store (one 64-bit entry per 128-byte block, 1/16 of memory)
// and the memory-resident bounded FIFO queues that make the coherence
// protocol starvation-free and deadlock-free.
//
// Data contents are not stored — workloads are address streams — but
// directory entries are real 64-bit words and the queues enforce the
// paper's exact capacities:
//
//   - request queue: 4 outstanding x N nodes entries of 64 bits (32 KB
//     at 1024 nodes) — requests that hit a pending block wait here.
//   - slave overflow queue: 4 x N entries of 128 bits (64 KB) — request
//     messages the slave module cannot buffer on-chip.
//   - home output queue: 4 x N entries of 128 bits (64 KB) — outbound
//     messages the home cannot inject; one invalidation plus its node
//     map stands in for a whole multicast fan-out.
package memory

import (
	"fmt"
	"slices"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

// Memory is one node's main memory (directory portion).
type Memory struct {
	node    topology.NodeID
	entries map[uint64]*directory.Entry
}

// New returns the memory of the given node.
func New(node topology.NodeID) *Memory {
	return &Memory{node: node, entries: make(map[uint64]*directory.Entry)}
}

// Entry returns the directory entry for the block containing addr,
// allocating a clean, empty entry on first touch (all memory starts
// uncached and clean). The address must be homed at this node.
func (m *Memory) Entry(addr topology.Addr) *directory.Entry {
	if !addr.Shared() || addr.Home() != m.node {
		panic(fmt.Sprintf("memory: %v not homed at %v", addr, m.node))
	}
	idx := addr.BlockIndex()
	e := m.entries[idx]
	if e == nil {
		e = new(directory.Entry)
		m.entries[idx] = e
	}
	return e
}

// Touched returns the number of blocks with allocated directory entries.
func (m *Memory) Touched() int { return len(m.entries) }

// ForEach visits every touched directory entry in ascending block
// order. The order matters: validators report the FIRST violating block
// they find, and that report must be identical across runs (the
// parallel-equivalence tests in internal/fuzz compare failure output
// byte for byte).
func (m *Memory) ForEach(fn func(blockIndex uint64, e *directory.Entry)) {
	idxs := make([]uint64, 0, len(m.entries))
	for idx := range m.entries { //cenju4:order-insensitive — keys are sorted below
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	for _, idx := range idxs {
		fn(idx, m.entries[idx])
	}
}

// DirectoryBytes returns the directory storage in use (8 bytes per
// touched block; the hardware reserves 1/16 of memory statically).
func (m *Memory) DirectoryBytes() int { return len(m.entries) * topology.DirEntryBytes }

// Queue is a bounded FIFO backed by main memory. Overflow is a protocol
// invariant violation and panics: the paper's sizing argument guarantees
// the bound (4 outstanding requests per node x N nodes), and the tests
// drive the system to that bound.
type Queue[T any] struct {
	name      string
	entries   []T
	head      int
	capacity  int
	entryBits int
	highWater int
}

// NewQueue returns a bounded FIFO with the given capacity. entryBits is
// the hardware size of one entry, used for BufferBytes reporting.
func NewQueue[T any](name string, capacity, entryBits int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("memory: queue %q capacity %d", name, capacity))
	}
	return &Queue[T]{name: name, capacity: capacity, entryBits: entryBits}
}

// Name returns the queue's configured name — the key the metrics
// layer reports its watermarks under.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.entries) - q.head }

// Empty reports whether the queue is empty.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Cap returns the capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// HighWater returns the maximum length ever reached.
func (q *Queue[T]) HighWater() int { return q.highWater }

// BufferBytes returns the memory reserved for this queue: capacity
// times the hardware entry size.
func (q *Queue[T]) BufferBytes() int { return q.capacity * q.entryBits / 8 }

// Push appends v. It panics on overflow — see the type comment.
func (q *Queue[T]) Push(v T) {
	if q.Len() >= q.capacity {
		panic(fmt.Sprintf("memory: queue %q overflow beyond %d entries — protocol sizing invariant violated", q.name, q.capacity))
	}
	q.entries = append(q.entries, v)
	if q.Len() > q.highWater {
		q.highWater = q.Len()
	}
}

// Peek returns the head entry without removing it ("reads the request at
// the top of the queue (does not dequeue yet)").
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.Empty() {
		return zero, false
	}
	return q.entries[q.head], true
}

// Pop removes and returns the head entry.
func (q *Queue[T]) Pop() (T, bool) {
	v, ok := q.Peek()
	if !ok {
		return v, false
	}
	var zero T
	q.entries[q.head] = zero
	q.head++
	if q.head == len(q.entries) { // fully drained: reset backing storage
		q.entries = q.entries[:0]
		q.head = 0
	} else if q.head > 4096 && q.head*2 > len(q.entries) {
		n := copy(q.entries, q.entries[q.head:])
		for i := n; i < len(q.entries); i++ {
			q.entries[i] = zero
		}
		q.entries = q.entries[:n]
		q.head = 0
	}
	return v, true
}

// RequestQueueCapacity returns the starvation-queue capacity for a
// machine of n nodes: every node can have at most MaxOutstanding
// non-writeback requests waiting at one home.
func RequestQueueCapacity(n int) int { return n * topology.MaxOutstanding }

// RequestQueueBits is the hardware size of one queued request.
const RequestQueueBits = 64

// OverflowQueueBits is the hardware size of one queued message in the
// slave and home overflow regions.
const OverflowQueueBits = 128
