// Package memory models a node's main memory as seen by the DSM: the
// directory store (one 64-bit entry per 128-byte block, 1/16 of memory)
// and the memory-resident bounded FIFO queues that make the coherence
// protocol starvation-free and deadlock-free.
//
// Data contents are not stored — workloads are address streams — but
// directory entries are real 64-bit words and the queues enforce the
// paper's exact capacities:
//
//   - request queue: 4 outstanding x N nodes entries of 64 bits (32 KB
//     at 1024 nodes) — requests that hit a pending block wait here.
//   - slave overflow queue: 4 x N entries of 128 bits (64 KB) — request
//     messages the slave module cannot buffer on-chip.
//   - home output queue: 4 x N entries of 128 bits (64 KB) — outbound
//     messages the home cannot inject; one invalidation plus its node
//     map stands in for a whole multicast fan-out.
//
// Directory entries live in sparse 256-block pages allocated on first
// touch: a block that no transaction ever references costs nothing,
// which is what keeps a 1024-node machine's directories at kilobytes
// instead of the per-block map the previous layout paid (one heap
// allocation plus map overhead per touched block, ~48 bytes each). A
// dense map-backed reference implementation is retained behind
// NewDense; the differential test in sparse_test.go drives both with
// randomized op sequences and requires identical observable state.
package memory

import (
	"fmt"
	"math/bits"
	"slices"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

const (
	// dirPageBlocks is the number of directory entries per sparse page
	// (256 x 8 B = 2 KB of entries plus a 32 B touched bitmap).
	dirPageBlocks = 256
	dirPageShift  = 8
	dirPageMask   = dirPageBlocks - 1
)

// dirPage is one lazily allocated span of 256 consecutive directory
// entries. The touched bitmap records which entries have been handed
// out by Entry: only those count as allocated for Touched /
// DirectoryBytes / ForEach, exactly as map keys did in the dense
// layout. Pages are never moved or freed, so &page.entries[i] is
// stable for the life of the Memory — callers may hold entry pointers
// across events just as they could with per-block heap entries.
type dirPage struct {
	touched [dirPageBlocks / 64]uint64
	entries [dirPageBlocks]directory.Entry
}

// Memory is one node's main memory (directory portion).
type Memory struct {
	node    topology.NodeID
	pages   map[uint64]*dirPage
	touched int
	// One-entry page TLB: protocol bursts hammer a handful of blocks,
	// so consecutive Entry calls almost always hit the same page.
	lastKey  uint64
	lastPage *dirPage

	// dense, when non-nil, switches this Memory to the retained
	// reference layout (one heap entry per touched block). Used by the
	// sparse-vs-dense differential and golden tests.
	dense map[uint64]*directory.Entry
}

// New returns the memory of the given node (sparse paged directory).
func New(node topology.NodeID) *Memory {
	return &Memory{node: node, pages: make(map[uint64]*dirPage)}
}

// NewDense returns the memory of the given node backed by the dense
// reference directory layout: one heap-allocated entry per touched
// block in a flat map. Observable behavior is identical to New — the
// differential suite proves it — it just spends more memory, so it
// exists only as the oracle for the sparse layout.
func NewDense(node topology.NodeID) *Memory {
	return &Memory{node: node, dense: make(map[uint64]*directory.Entry)}
}

// Entry returns the directory entry for the block containing addr,
// allocating a clean, empty entry on first touch (all memory starts
// uncached and clean). The address must be homed at this node.
//
//cenju4:hotpath
func (m *Memory) Entry(addr topology.Addr) *directory.Entry {
	if !addr.Shared() || addr.Home() != m.node {
		panic(fmt.Sprintf("memory: %v not homed at %v", addr, m.node))
	}
	idx := addr.BlockIndex()
	if m.dense != nil {
		e := m.dense[idx]
		if e == nil {
			//cenju4:alloc-ok dense reference layout: one entry per touched block by design
			e = new(directory.Entry)
			m.dense[idx] = e
		}
		return e
	}
	key := idx >> dirPageShift
	p := m.lastPage
	if p == nil || m.lastKey != key {
		p = m.pages[key]
		if p == nil {
			//cenju4:alloc-ok one page allocation covers 256 blocks for the memory's lifetime
			p = new(dirPage)
			m.pages[key] = p
		}
		m.lastKey, m.lastPage = key, p
	}
	bit := idx & dirPageMask
	w, b := bit>>6, bit&63
	if p.touched[w]>>b&1 == 0 {
		p.touched[w] |= 1 << b
		m.touched++
	}
	return &p.entries[bit]
}

// Touched returns the number of blocks with allocated directory entries.
func (m *Memory) Touched() int {
	if m.dense != nil {
		return len(m.dense)
	}
	return m.touched
}

// ForEach visits every touched directory entry in ascending block
// order. The order matters: validators report the FIRST violating block
// they find, and that report must be identical across runs (the
// parallel-equivalence tests in internal/fuzz compare failure output
// byte for byte).
func (m *Memory) ForEach(fn func(blockIndex uint64, e *directory.Entry)) {
	if m.dense != nil {
		idxs := make([]uint64, 0, len(m.dense))
		for idx := range m.dense { //cenju4:order-insensitive — keys are sorted below
			idxs = append(idxs, idx)
		}
		slices.Sort(idxs)
		for _, idx := range idxs {
			fn(idx, m.dense[idx])
		}
		return
	}
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages { //cenju4:order-insensitive — keys are sorted below
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		p := m.pages[k]
		for w := range p.touched {
			set := p.touched[w]
			for set != 0 {
				b := bits.TrailingZeros64(set)
				set &= set - 1
				i := w<<6 | b
				fn(k<<dirPageShift|uint64(i), &p.entries[i])
			}
		}
	}
}

// DirectoryBytes returns the directory storage in use (8 bytes per
// touched block; the hardware reserves 1/16 of memory statically).
func (m *Memory) DirectoryBytes() int { return m.Touched() * topology.DirEntryBytes }

// Queue is a bounded FIFO backed by main memory. Overflow is a protocol
// invariant violation and panics: the paper's sizing argument guarantees
// the bound (4 outstanding requests per node x N nodes), and the tests
// drive the system to that bound.
//
// Storage is a lazily allocated power-of-two ring: a queue that is
// never pushed to costs only the header, and a draining queue reuses
// its slots instead of append-growing and copy-compacting as the
// previous slice layout did — Push and Pop are allocation-free except
// when the ring itself must double.
type Queue[T any] struct {
	name      string
	ring      []T // power-of-two length; nil until first Push
	head      uint64
	tail      uint64 // monotonic; index = counter & (len(ring)-1)
	capacity  int
	entryBits int
	highWater int
}

// NewQueue returns a bounded FIFO with the given capacity. entryBits is
// the hardware size of one entry, used for BufferBytes reporting.
func NewQueue[T any](name string, capacity, entryBits int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("memory: queue %q capacity %d", name, capacity))
	}
	return &Queue[T]{name: name, capacity: capacity, entryBits: entryBits}
}

// Name returns the queue's configured name — the key the metrics
// layer reports its watermarks under.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return int(q.tail - q.head) }

// Empty reports whether the queue is empty.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Cap returns the capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// HighWater returns the maximum length ever reached.
func (q *Queue[T]) HighWater() int { return q.highWater }

// BufferBytes returns the memory reserved for this queue: capacity
// times the hardware entry size.
func (q *Queue[T]) BufferBytes() int { return q.capacity * q.entryBits / 8 }

// Push appends v. It panics on overflow — see the type comment.
//
//cenju4:hotpath
func (q *Queue[T]) Push(v T) {
	n := q.Len()
	if n >= q.capacity {
		panic(fmt.Sprintf("memory: queue %q overflow beyond %d entries — protocol sizing invariant violated", q.name, q.capacity))
	}
	if n == len(q.ring) {
		q.grow()
	}
	q.ring[q.tail&uint64(len(q.ring)-1)] = v
	q.tail++
	if n+1 > q.highWater {
		q.highWater = n + 1
	}
}

// grow doubles the ring (min 8 slots), relinearizing the live entries.
func (q *Queue[T]) grow() {
	size := 8
	for size < 2*len(q.ring) {
		size <<= 1
	}
	//cenju4:alloc-ok ring doubling amortizes across the pushes that filled it
	next := make([]T, size)
	mask := uint64(len(q.ring) - 1)
	for i, c := 0, q.head; c != q.tail; i, c = i+1, c+1 {
		next[i] = q.ring[c&mask]
	}
	q.ring = next
	q.tail -= q.head
	q.head = 0
}

// Peek returns the head entry without removing it ("reads the request at
// the top of the queue (does not dequeue yet)").
//
//cenju4:hotpath
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.Empty() {
		return zero, false
	}
	return q.ring[q.head&uint64(len(q.ring)-1)], true
}

// Pop removes and returns the head entry.
//
//cenju4:hotpath
func (q *Queue[T]) Pop() (T, bool) {
	v, ok := q.Peek()
	if !ok {
		return v, false
	}
	var zero T
	q.ring[q.head&uint64(len(q.ring)-1)] = zero
	q.head++
	return v, true
}

// RequestQueueCapacity returns the starvation-queue capacity for a
// machine of n nodes: every node can have at most MaxOutstanding
// non-writeback requests waiting at one home.
func RequestQueueCapacity(n int) int { return n * topology.MaxOutstanding }

// RequestQueueBits is the hardware size of one queued request.
const RequestQueueBits = 64

// OverflowQueueBits is the hardware size of one queued message in the
// slave and home overflow regions.
const OverflowQueueBits = 128
