package memory

// Differential property tests for the sparse storage layouts against
// their retained dense references:
//
//   - paged directory store (New) vs the flat map-of-heap-entries
//     layout (NewDense): randomized entry mutations must produce
//     identical Touched/DirectoryBytes, identical ForEach sequences,
//     and identical entry words.
//   - ring-buffer Queue vs the append-slice reference it replaced:
//     randomized push/pop interleavings must agree on every value,
//     length, and high-water mark.
//
// The machine-scope digest differential (internal/machine) composes on
// top of these layer-local proofs.

import (
	"math/rand"
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

func TestDifferentialSparseVsDenseDirectory(t *testing.T) {
	const home = topology.NodeID(3)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sparse := New(home)
		dense := NewDense(home)
		// Address pool mixing blocks within one page, across adjacent
		// pages, and far apart (distinct page-map keys).
		blocks := make([]uint64, 0, 64)
		for i := 0; i < 64; i++ {
			switch rng.Intn(3) {
			case 0:
				blocks = append(blocks, uint64(rng.Intn(dirPageBlocks)))
			case 1:
				blocks = append(blocks, uint64(rng.Intn(4*dirPageBlocks)))
			default:
				blocks = append(blocks, uint64(rng.Intn(1<<20)))
			}
		}
		addrFor := func(block uint64) topology.Addr {
			return topology.SharedAddr(home, block*topology.BlockSize)
		}
		for op := 0; op < 4000; op++ {
			a := addrFor(blocks[rng.Intn(len(blocks))])
			es, ed := sparse.Entry(a), dense.Entry(a)
			switch rng.Intn(5) {
			case 0:
				es.SetReserved(true)
				ed.SetReserved(true)
			case 1:
				st := directory.State(rng.Intn(6))
				es.SetState(st)
				ed.SetState(st)
			case 2:
				n := topology.NodeID(rng.Intn(1024))
				es.MapAdd(n)
				ed.MapAdd(n)
			case 3:
				es.MapClear()
				ed.MapClear()
			case 4:
				n := topology.NodeID(rng.Intn(1024))
				es.MapSetOnly(n)
				ed.MapSetOnly(n)
			}
			if *es != *ed {
				t.Fatalf("seed %d op %d: entry %v diverged: sparse %v dense %v", seed, op, a, *es, *ed)
			}
		}
		if sparse.Touched() != dense.Touched() {
			t.Fatalf("seed %d: Touched %d vs %d", seed, sparse.Touched(), dense.Touched())
		}
		if sparse.DirectoryBytes() != dense.DirectoryBytes() {
			t.Fatalf("seed %d: DirectoryBytes %d vs %d", seed, sparse.DirectoryBytes(), dense.DirectoryBytes())
		}
		type visit struct {
			idx uint64
			e   directory.Entry
		}
		var vs, vd []visit
		sparse.ForEach(func(i uint64, e *directory.Entry) { vs = append(vs, visit{i, *e}) })
		dense.ForEach(func(i uint64, e *directory.Entry) { vd = append(vd, visit{i, *e}) })
		if len(vs) != len(vd) {
			t.Fatalf("seed %d: ForEach visited %d vs %d entries", seed, len(vs), len(vd))
		}
		for i := range vs {
			if vs[i] != vd[i] {
				t.Fatalf("seed %d: ForEach[%d] = %+v vs %+v", seed, i, vs[i], vd[i])
			}
		}
	}
}

// refQueue is the append-slice FIFO the ring replaced, reproduced
// verbatim (including head compaction) as the differential oracle.
type refQueue struct {
	entries   []int
	head      int
	capacity  int
	highWater int
}

func (q *refQueue) len() int { return len(q.entries) - q.head }

func (q *refQueue) push(v int) {
	q.entries = append(q.entries, v)
	if q.len() > q.highWater {
		q.highWater = q.len()
	}
}

func (q *refQueue) pop() (int, bool) {
	if q.len() == 0 {
		return 0, false
	}
	v := q.entries[q.head]
	q.entries[q.head] = 0
	q.head++
	if q.head == len(q.entries) {
		q.entries = q.entries[:0]
		q.head = 0
	} else if q.head > 4096 && q.head*2 > len(q.entries) {
		n := copy(q.entries, q.entries[q.head:])
		for i := n; i < len(q.entries); i++ {
			q.entries[i] = 0
		}
		q.entries = q.entries[:n]
		q.head = 0
	}
	return v, true
}

func TestDifferentialRingVsSliceQueue(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		cap := 1 + rng.Intn(64)
		ring := NewQueue[int]("diff", cap, 64)
		ref := &refQueue{capacity: cap}
		next := 0
		for op := 0; op < 20000; op++ {
			if rng.Intn(2) == 0 && ref.len() < cap {
				ring.Push(next)
				ref.push(next)
				next++
			} else {
				gv, gok := ring.Pop()
				wv, wok := ref.pop()
				if gv != wv || gok != wok {
					t.Fatalf("seed %d op %d: Pop = (%d,%v) want (%d,%v)", seed, op, gv, gok, wv, wok)
				}
			}
			if pv, pok := ring.Peek(); pok != (ref.len() > 0) || (pok && pv != ref.entries[ref.head]) {
				t.Fatalf("seed %d op %d: Peek mismatch", seed, op)
			}
			if ring.Len() != ref.len() {
				t.Fatalf("seed %d op %d: Len %d want %d", seed, op, ring.Len(), ref.len())
			}
			if ring.HighWater() != ref.highWater {
				t.Fatalf("seed %d op %d: HighWater %d want %d", seed, op, ring.HighWater(), ref.highWater)
			}
		}
	}
}
