package memory

import (
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

func TestEntryAllocation(t *testing.T) {
	m := New(3)
	a := topology.SharedAddr(3, 0x1000)
	e := m.Entry(a)
	if e.State() != directory.Clean || !e.MapEmpty() {
		t.Fatalf("fresh entry = %v, want clean empty", *e)
	}
	e.MapAdd(7)
	e.SetState(directory.Dirty)
	// Same block returns the same entry.
	if e2 := m.Entry(topology.SharedAddr(3, 0x1000+64)); e2 != e {
		t.Fatal("same block yielded different entries")
	}
	if m.Touched() != 1 {
		t.Fatalf("Touched() = %d", m.Touched())
	}
	if m.DirectoryBytes() != 8 {
		t.Fatalf("DirectoryBytes() = %d", m.DirectoryBytes())
	}
}

func TestEntryWrongHomePanics(t *testing.T) {
	m := New(3)
	for _, a := range []topology.Addr{topology.SharedAddr(4, 0), topology.PrivateAddr(0)} {
		a := a
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Entry(%v) did not panic", a)
				}
			}()
			m.Entry(a)
		}()
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]("test", 10, 64)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len() = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek() = %d,%v", v, ok)
	}
	if q.Len() != 5 {
		t.Fatal("Peek dequeued")
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = %d,%v, want %d", v, ok, i)
		}
	}
	if !q.Empty() {
		t.Fatal("not empty after draining")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	q := NewQueue[int]("test", 4, 64)
	next := 0
	expect := 0
	for round := 0; round < 100; round++ {
		for q.Len() < 3 {
			q.Push(next)
			next++
		}
		v, _ := q.Pop()
		if v != expect {
			t.Fatalf("round %d: Pop() = %d, want %d", round, v, expect)
		}
		expect++
	}
}

func TestQueueOverflowPanics(t *testing.T) {
	q := NewQueue[int]("test", 2, 64)
	q.Push(1)
	q.Push(2)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(3)
}

func TestQueueHighWater(t *testing.T) {
	q := NewQueue[int]("test", 10, 64)
	q.Push(1)
	q.Push(2)
	q.Pop()
	q.Push(3)
	if q.HighWater() != 2 {
		t.Fatalf("HighWater() = %d, want 2", q.HighWater())
	}
}

func TestQueueBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	NewQueue[int]("bad", 0, 64)
}

// The paper's sizing: the starvation queue is 32 KB and each overflow
// region 64 KB on a 1024-node system.
func TestPaperBufferSizes(t *testing.T) {
	req := NewQueue[uint64]("requests", RequestQueueCapacity(1024), RequestQueueBits)
	if req.BufferBytes() != 32*1024 {
		t.Fatalf("request queue = %d bytes, want 32768", req.BufferBytes())
	}
	slave := NewQueue[uint64]("slave", RequestQueueCapacity(1024), OverflowQueueBits)
	if slave.BufferBytes() != 64*1024 {
		t.Fatalf("slave overflow = %d bytes, want 65536", slave.BufferBytes())
	}
	home := NewQueue[uint64]("home", RequestQueueCapacity(1024), OverflowQueueBits)
	if home.BufferBytes() != 64*1024 {
		t.Fatalf("home overflow = %d bytes, want 65536", home.BufferBytes())
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue[int]("test", 100000, 64)
	// Force the compaction path (head > 4096 and more than half drained).
	for i := 0; i < 10000; i++ {
		q.Push(i)
	}
	for i := 0; i < 6000; i++ {
		v, _ := q.Pop()
		if v != i {
			t.Fatalf("Pop() = %d, want %d", v, i)
		}
	}
	q.Push(10000)
	for i := 6000; i <= 10000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("post-compaction Pop() = %d,%v, want %d", v, ok, i)
		}
	}
}
