package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cenju4/internal/sim"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String() = %q", h.String())
	}
	if h.Bars(10) != "" {
		t.Fatal("empty bars")
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{100, 200, 300, 400} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// Percentile must be an upper bound within the 2x bucketing factor.
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var maxV uint64
		for _, r := range raw {
			v := uint64(r%1000000) + 1
			h.Add(sim.Time(v))
			if v > maxV {
				maxV = v
			}
		}
		p100 := uint64(h.Percentile(100))
		return p100 >= maxV/2 && p100 <= maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		h.Add(sim.Time(rng.Intn(100000) + 1))
	}
	prev := sim.Time(0)
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at %v: %v < %v", p, v, prev)
		}
		prev = v
	}
	// Out-of-range percentiles clamp.
	if h.Percentile(-5) > h.Percentile(0) || h.Percentile(200) != h.Percentile(100) {
		t.Fatal("clamping wrong")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Add(100)
	a.Add(200)
	b.Add(50)
	b.Add(4000)
	a.Merge(&b)
	if a.Count() != 4 || a.Min() != 50 || a.Max() != 4000 {
		t.Fatalf("merged = %v", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 50 {
		t.Fatalf("merge into empty = %v", empty.String())
	}
}

func TestBars(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(500)
	}
	h.Add(100000)
	out := h.Bars(20)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("Bars() = %q", out)
	}
}

func TestHugeSampleClamped(t *testing.T) {
	var h Histogram
	h.Add(sim.Time(1) << 60)
	if h.Count() != 1 {
		t.Fatal("huge sample lost")
	}
	if h.Percentile(100) == 0 {
		t.Fatal("percentile of clamped sample is zero")
	}
}
