package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cenju4/internal/sim"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String() = %q", h.String())
	}
	if h.Bars(10) != "" {
		t.Fatal("empty bars")
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{100, 200, 300, 400} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// Percentile must be an upper bound within the 2x bucketing factor.
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var maxV uint64
		for _, r := range raw {
			v := uint64(r%1000000) + 1
			h.Add(sim.Time(v))
			if v > maxV {
				maxV = v
			}
		}
		p100 := uint64(h.Percentile(100))
		return p100 >= maxV/2 && p100 <= maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		h.Add(sim.Time(rng.Intn(100000) + 1))
	}
	prev := sim.Time(0)
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at %v: %v < %v", p, v, prev)
		}
		prev = v
	}
	// Out-of-range percentiles clamp.
	if h.Percentile(-5) > h.Percentile(0) || h.Percentile(200) != h.Percentile(100) {
		t.Fatal("clamping wrong")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Add(100)
	a.Add(200)
	b.Add(50)
	b.Add(4000)
	a.Merge(&b)
	if a.Count() != 4 || a.Min() != 50 || a.Max() != 4000 {
		t.Fatalf("merged = %v", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 50 {
		t.Fatalf("merge into empty = %v", empty.String())
	}
}

func TestBars(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(500)
	}
	h.Add(100000)
	out := h.Bars(20)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("Bars() = %q", out)
	}
}

// TestBucketEdges pins the documented bucket semantics exactly: bucket
// 0 holds [0, 2), bucket i holds [2^i, 2^(i+1)), and only samples at or
// above 2^40 clamp into the top bucket. This is the regression test for
// the bits.Len64 off-by-one that left bucket 0 unreachable for v > 0
// and folded the top two decades together.
func TestBucketEdges(t *testing.T) {
	bucketOf := func(v uint64) int {
		var h Histogram
		h.Add(sim.Time(v))
		for i, c := range h.buckets {
			if c != 0 {
				return i
			}
		}
		t.Fatalf("Add(%d) recorded no bucket", v)
		return -1
	}
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucket(0) = %d, want 0", got)
	}
	if got := bucketOf(1); got != 0 {
		t.Errorf("bucket(1) = %d, want 0", got)
	}
	for i := 1; i < 63; i++ {
		want := i
		if want > numBuckets-1 {
			want = numBuckets - 1
		}
		if got := bucketOf(uint64(1) << uint(i)); got != want {
			t.Errorf("bucket(2^%d) = %d, want %d", i, got, want)
		}
		// 2^i - 1 is the last value of the previous bucket.
		wantBelow := i - 1
		if wantBelow > numBuckets-1 {
			wantBelow = numBuckets - 1
		}
		if got := bucketOf(uint64(1)<<uint(i) - 1); got != wantBelow {
			t.Errorf("bucket(2^%d-1) = %d, want %d", i, got, wantBelow)
		}
	}
	// The top two decades stay separate: 2^38 and 2^39 land in distinct
	// buckets (the old clamp folded both into bucket 39).
	if b38, b39 := bucketOf(1<<38), bucketOf(1<<39); b38 == b39 {
		t.Errorf("2^38 and 2^39 share bucket %d; the top decades must stay distinct", b38)
	}
	if lo, hi := bucketBounds(0); lo != 0 || hi != 2 {
		t.Errorf("bucketBounds(0) = [%d, %d), want [0, 2)", lo, hi)
	}
	if lo, hi := bucketBounds(7); lo != 128 || hi != 256 {
		t.Errorf("bucketBounds(7) = [%d, %d), want [128, 256)", lo, hi)
	}
}

// TestAddPercentileBarsAgree drives one sample through all three views
// and checks they name the same bucket edges.
func TestAddPercentileBarsAgree(t *testing.T) {
	var h Histogram
	h.Add(5) // bucket 2 = [4, 8)
	if h.buckets[2] != 1 {
		t.Fatalf("Add(5) landed outside bucket [4,8): %v", h.buckets[:4])
	}
	// Percentile reports the bucket's top edge, clamped to the max.
	if got := h.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want clamped max 5", got)
	}
	h.Add(6)
	h.Add(7)
	if got := h.Percentile(100); got != 7 {
		t.Errorf("p100 = %v, want 7", got)
	}
	// Bars labels the bucket with its lower edge.
	if out := h.Bars(10); !strings.Contains(out, "4ns") {
		t.Errorf("Bars() = %q, want the [4,8) bucket labeled 4ns", out)
	}
	var z Histogram
	z.Add(0)
	if out := z.Bars(10); !strings.Contains(out, "0ns") {
		t.Errorf("Bars() = %q, want the [0,2) bucket labeled 0ns", out)
	}
}

// TestMergeZeroValueTable audits Merge/Min zero-value interactions: an
// empty histogram merged in either direction must not perturb counts,
// minima or buckets, and a genuine 0ns sample must survive merging.
func TestMergeZeroValueTable(t *testing.T) {
	sample := func(vs ...sim.Time) *Histogram {
		h := &Histogram{}
		for _, v := range vs {
			h.Add(v)
		}
		return h
	}
	cases := []struct {
		name     string
		dst, src *Histogram
		count    uint64
		min, max sim.Time
		sum      uint64
	}{
		{"empty into empty", sample(), sample(), 0, 0, 0, 0},
		{"empty into nonempty", sample(100, 200), sample(), 2, 100, 200, 300},
		{"nonempty into empty", sample(), sample(100, 200), 2, 100, 200, 300},
		{"zero-sample src wins min", sample(5), sample(0), 2, 0, 5, 5},
		{"zero-sample dst keeps min", sample(0), sample(5), 2, 0, 5, 5},
		{"disjoint ranges", sample(1, 2), sample(1 << 20), 3, 1, 1 << 20, 3 + 1<<20},
	}
	for _, c := range cases {
		c.dst.Merge(c.src)
		if c.dst.Count() != c.count || c.dst.Min() != c.min || c.dst.Max() != c.max || c.dst.Sum() != c.sum {
			t.Errorf("%s: count/min/max/sum = %d/%v/%v/%d, want %d/%v/%v/%d",
				c.name, c.dst.Count(), c.dst.Min(), c.dst.Max(), c.dst.Sum(),
				c.count, c.min, c.max, c.sum)
		}
		var total uint64
		for _, b := range c.dst.buckets {
			total += b
		}
		if total != c.count {
			t.Errorf("%s: bucket total %d disagrees with count %d", c.name, total, c.count)
		}
	}
}

func TestHugeSampleClamped(t *testing.T) {
	var h Histogram
	h.Add(sim.Time(1) << 60)
	if h.Count() != 1 {
		t.Fatal("huge sample lost")
	}
	if h.Percentile(100) == 0 {
		t.Fatal("percentile of clamped sample is zero")
	}
}
