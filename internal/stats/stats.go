// Package stats provides the small statistical containers the simulator
// reports through: log-bucketed latency histograms with percentile
// queries, and running means. Everything is allocation-light and
// deterministic.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"cenju4/internal/sim"
)

// Histogram is a log2-bucketed latency histogram: bucket 0 counts
// samples in [0, 2), bucket i counts samples in [2^i, 2^(i+1))
// nanoseconds, and the last bucket additionally absorbs everything at
// or above 2^40 ns (~18 min — far beyond any simulated latency). Cheap
// enough to sit on every transaction path.
type Histogram struct {
	buckets [40]uint64
	count   uint64
	sum     uint64
	max     uint64
	min     uint64
}

// bucketIndex maps a sample to its bucket per the type comment.
func bucketIndex(v uint64) int {
	b := bits.Len64(v) // floor(log2(v)) + 1 for v > 0
	if b > 0 {
		b--
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

const numBuckets = 40

// bucketBounds returns bucket i's half-open range [lo, hi). The top
// bucket's hi is its nominal edge; samples beyond it are clamped in.
func bucketBounds(i int) (lo, hi uint64) {
	if i > 0 {
		lo = 1 << uint(i)
	}
	return lo, 1 << uint(i+1)
}

// Add records one sample.
func (h *Histogram) Add(t sim.Time) {
	v := uint64(t)
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.count == 1 || v < h.min {
		h.min = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample, 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return sim.Time(h.max) }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() sim.Time { return sim.Time(h.min) }

// Percentile returns an upper bound for the p-th percentile (p in
// [0,100]): the top edge of the bucket containing it. Log bucketing
// bounds the error to 2x, which is plenty for latency-shape reporting.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			_, edge := bucketBounds(i)
			if edge > h.max {
				edge = h.max
			}
			return sim.Time(edge)
		}
	}
	return sim.Time(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// EachBucket invokes fn for every non-empty bucket in ascending order
// with the bucket's index, half-open bounds [lo, hi) and count. The
// deterministic metrics exporters serialize histograms through it.
func (h *Histogram) EachBucket(fn func(i int, lo, hi sim.Time, count uint64)) {
	for i, c := range h.buckets {
		if c != 0 {
			lo, hi := bucketBounds(i)
			fn(i, sim.Time(lo), sim.Time(hi), c)
		}
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d mean=%.0fns p50<=%v p99<=%v max=%v}",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Bars renders an ASCII sketch of the non-empty buckets.
func (h *Histogram) Bars(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak uint64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		n := int(c * uint64(width) / peak)
		if n == 0 {
			n = 1
		}
		lo, _ := bucketBounds(i)
		fmt.Fprintf(&b, "%10v %s %d\n", sim.Time(lo), strings.Repeat("#", n), c)
	}
	return b.String()
}
