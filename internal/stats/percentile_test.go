package stats

import (
	"testing"

	"cenju4/internal/sim"
)

// Percentile edge cases: single samples, the p0/p100 extremes with
// out-of-range clamping, exact bucket boundaries, and zero samples.

func TestSingleSamplePercentiles(t *testing.T) {
	var h Histogram
	h.Add(100)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := h.Percentile(p); got != 100 {
			t.Errorf("p%v of a single 100ns sample = %v, want 100ns", p, got)
		}
	}
	if h.Min() != 100 || h.Max() != 100 || h.Mean() != 100 {
		t.Errorf("min/max/mean = %v/%v/%v, want 100 each", h.Min(), h.Max(), h.Mean())
	}
}

func TestPercentileExtremes(t *testing.T) {
	var h Histogram
	for v := sim.Time(1); v <= 1000; v++ {
		h.Add(v)
	}
	p0, p100 := h.Percentile(0), h.Percentile(100)
	if p100 != h.Max() {
		t.Errorf("p100 = %v, want max %v", p100, h.Max())
	}
	if p0 < h.Min() || p0 > 2*h.Min() {
		t.Errorf("p0 = %v, want within the log-bucket bound [%v, %v]", p0, h.Min(), 2*h.Min())
	}
	// Out-of-range p clamps to the extremes.
	if got := h.Percentile(-5); got != p0 {
		t.Errorf("p(-5) = %v, want p0 %v", got, p0)
	}
	if got := h.Percentile(150); got != p100 {
		t.Errorf("p(150) = %v, want p100 %v", got, p100)
	}
}

// TestPercentileBucketBoundaries pins the reported upper bounds for
// samples sitting exactly on power-of-two bucket edges.
func TestPercentileBucketBoundaries(t *testing.T) {
	var h Histogram
	h.Add(1) // bucket [1,2)
	h.Add(2) // bucket [2,4)
	h.Add(4) // bucket [4,8)
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{0, 2},    // first sample's bucket top edge
		{33.3, 2}, // still the first bucket
		{50, 4},   // second bucket's top edge
		{99, 4},   // third bucket, edge 8 clamped to max
		{100, 4},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestZeroSample(t *testing.T) {
	var h Histogram
	h.Add(0)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("count/min/max = %d/%v/%v after Add(0)", h.Count(), h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("p50 of a zero sample = %v, want 0", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Merge(&b) // empty into empty: still empty
	if a.Count() != 0 || a.Percentile(50) != 0 {
		t.Fatalf("empty merge produced samples: %v", a.String())
	}
	b.Add(7)
	a.Merge(&b) // into empty: adopts min
	if a.Min() != 7 || a.Count() != 1 {
		t.Fatalf("merge into empty: min=%v count=%d, want 7/1", a.Min(), a.Count())
	}
}
