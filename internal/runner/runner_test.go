package runner

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrderIndependence: for a fn whose output depends only on its
// index, every parallelism level must return the identical result
// slice.
func TestMapOrderIndependence(t *testing.T) {
	const n = 257
	fn := func(i int) int { return i*i + 7 }
	seq, p := Map(Options{Parallel: 1}, n, fn)
	if len(p) != 0 {
		t.Fatalf("sequential run panicked: %v", p[0])
	}
	for _, workers := range []int{2, 4, 8, 0} {
		par, p := Map(Options{Parallel: workers}, n, fn)
		if len(p) != 0 {
			t.Fatalf("parallel=%d run panicked: %v", workers, p[0])
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("parallel=%d: result[%d]=%d, sequential %d", workers, i, par[i], seq[i])
			}
		}
	}
}

// TestMapEachAscendingOrder: the each callback fires exactly once per
// run in strictly ascending index order, regardless of completion
// order.
func TestMapEachAscendingOrder(t *testing.T) {
	const n = 512
	var order []int
	_, p := MapEach(Options{Parallel: 8}, n,
		func(i int) int {
			// Skew work so later indices often finish first.
			x := 0
			for k := 0; k < (n-i)*50; k++ {
				x += k
			}
			return x
		},
		func(i int, _ int) { order = append(order, i) })
	if len(p) != 0 {
		t.Fatalf("panics: %v", p[0])
	}
	if len(order) != n {
		t.Fatalf("each fired %d times, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("each order[%d] = %d, want %d", i, got, i)
		}
	}
}

// TestMapPanicCapture: a panicking run is reported with index, label
// and stack while the rest of the fleet completes.
func TestMapPanicCapture(t *testing.T) {
	const n = 64
	var completed atomic.Int64
	results, panics := Map(
		Options{
			Parallel: 4,
			Label:    func(i int) string { return fmt.Sprintf("cfg=%d seed=%d", i%4, i) },
		},
		n,
		func(i int) int {
			if i == 13 || i == 40 {
				panic(fmt.Sprintf("boom %d", i))
			}
			completed.Add(1)
			return i
		})
	if got := completed.Load(); got != n-2 {
		t.Fatalf("%d runs completed, want %d", got, n-2)
	}
	if len(panics) != 2 {
		t.Fatalf("%d panics captured, want 2: %v", len(panics), panics)
	}
	if panics[0].Index != 13 || panics[1].Index != 40 {
		t.Fatalf("panic indices %d,%d, want 13,40", panics[0].Index, panics[1].Index)
	}
	if panics[0].Label != "cfg=1 seed=13" {
		t.Fatalf("panic label %q", panics[0].Label)
	}
	if panics[0].Value != "boom 13" {
		t.Fatalf("panic value %v", panics[0].Value)
	}
	if !strings.Contains(panics[0].Stack, "runner") {
		t.Fatalf("panic stack missing frames:\n%s", panics[0].Stack)
	}
	if !strings.Contains(panics[0].Error(), "run 13 (cfg=1 seed=13) panicked: boom 13") {
		t.Fatalf("panic Error() = %q", panics[0].Error())
	}
	// Panicked slots hold the zero value; others their result.
	if results[13] != 0 || results[12] != 12 {
		t.Fatalf("results[13]=%d results[12]=%d", results[13], results[12])
	}
}

// TestMapEachSkipsPanickedRuns: each is not invoked for a panicked
// index but still fires, in order, for everything after it.
func TestMapEachSkipsPanickedRuns(t *testing.T) {
	const n = 32
	var order []int
	_, panics := MapEach(Options{Parallel: 4}, n,
		func(i int) int {
			if i == 5 {
				panic("no")
			}
			return i
		},
		func(i int, _ int) { order = append(order, i) })
	if len(panics) != 1 || panics[0].Index != 5 {
		t.Fatalf("panics = %v", panics)
	}
	if len(order) != n-1 {
		t.Fatalf("each fired %d times, want %d", len(order), n-1)
	}
	prev := -1
	for _, i := range order {
		if i == 5 {
			t.Fatal("each fired for the panicked index")
		}
		if i <= prev {
			t.Fatalf("each order not ascending: %v", order)
		}
		prev = i
	}
}

// TestMapEmpty: n <= 0 is a no-op.
func TestMapEmpty(t *testing.T) {
	res, p := Map(Options{}, 0, func(i int) int { return i })
	if res != nil || p != nil {
		t.Fatalf("Map(0) = %v, %v, want nil, nil", res, p)
	}
}

// TestMapContextPreCancelled: a cancelled context skips every run.
func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		results, p := Map(Options{Parallel: workers, Context: ctx}, 64, func(i int) int {
			ran.Add(1)
			return i + 1
		})
		if len(p) != 0 {
			t.Fatalf("parallel=%d: unexpected panics: %v", workers, p)
		}
		if ran.Load() != 0 {
			t.Fatalf("parallel=%d: %d runs executed under a cancelled context", workers, ran.Load())
		}
		for i, r := range results {
			if r != 0 {
				t.Fatalf("parallel=%d: skipped run %d has non-zero result %d", workers, i, r)
			}
		}
	}
}

// TestMapContextCancelMidSweep: cancelling after run 0 (sequentially)
// skips the remaining runs and fires no callbacks for them.
func TestMapContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls []int
	results, p := MapEach(Options{Parallel: 1, Context: ctx}, 100,
		func(i int) int {
			if i == 2 {
				cancel()
			}
			return i + 1
		},
		func(i, r int) { calls = append(calls, i) })
	if len(p) != 0 {
		t.Fatalf("unexpected panics: %v", p)
	}
	if want := []int{0, 1, 2}; len(calls) != len(want) {
		t.Fatalf("callbacks for %v, want %v", calls, want)
	}
	for i := 3; i < 100; i++ {
		if results[i] != 0 {
			t.Fatalf("run %d executed after cancellation", i)
		}
	}
	if err := ctx.Err(); err == nil {
		t.Fatal("context not cancelled — test is vacuous")
	}
}

// TestMapNilContextRunsEverything: existing call sites pass no
// context and must be unaffected.
func TestMapNilContextRunsEverything(t *testing.T) {
	results, p := Map(Options{Parallel: 4}, 50, func(i int) int { return i })
	if len(p) != 0 || len(results) != 50 {
		t.Fatalf("results=%d panics=%d, want 50/0", len(results), len(p))
	}
}

// TestMapEachCancelDeliversCompletedStragglers: regression for the
// cursor stall on cancellation. Run 0 is slow; runs 1..3 complete
// before the context is cancelled (from inside run 3); runs 4..5 are
// claimed after cancellation and skipped. The skipped indices must be
// marked settled so that when run 0 finally completes, the callbacks
// for the already-completed runs 1..3 are delivered rather than
// silently suppressed.
func TestMapEachCancelDeliversCompletedStragglers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var mu sync.Mutex
	var calls []int

	results, p := MapEach(Options{Parallel: 2, Context: ctx}, 6,
		func(i int) int {
			if i == 0 {
				<-release // straggler: finishes after the sweep is cancelled
				return 1
			}
			if i == 3 {
				cancel()
				close(release)
			}
			return i + 1
		},
		func(i, r int) {
			mu.Lock()
			calls = append(calls, i)
			mu.Unlock()
		})

	if len(p) != 0 {
		t.Fatalf("unexpected panics: %v", p)
	}
	if want := "[0 1 2 3]"; fmt.Sprint(calls) != want {
		t.Fatalf("callbacks %v, want %s (completed prefix including stragglers)", calls, want)
	}
	for i := 4; i < 6; i++ {
		if results[i] != 0 {
			t.Fatalf("run %d executed after cancellation (result %d)", i, results[i])
		}
	}
}

// TestNestedBudget pins the Map × intra ≤ GOMAXPROCS rule.
func TestNestedBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		outer, inner, want int
	}{
		{1, 1, 1},
		{1, procs, procs},     // sole run may use the whole machine
		{procs, procs, 1},     // saturated sweep: no intra budget
		{0, 0, 1},             // both default to GOMAXPROCS
		{2 * procs, 8, 1},     // oversubscribed sweep still gets the floor
		{1, 3 * procs, procs}, // inner request clamped to the machine
	}
	for _, c := range cases {
		if got := NestedBudget(c.outer, c.inner); got != c.want {
			t.Errorf("NestedBudget(%d, %d) = %d, want %d (GOMAXPROCS=%d)",
				c.outer, c.inner, got, c.want, procs)
		}
	}
}
