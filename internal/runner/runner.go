// Package runner shards independent simulation runs across worker
// goroutines while keeping every observable output deterministic.
//
// The simulator's heavy drivers — the benchmark matrix, the fuzz
// matrix, the Monte-Carlo ablations — are all embarrassingly parallel:
// each run builds its own sim.Engine and machine.Machine from a config
// and a seed, and runs share nothing. runner.Map exploits that shape:
// it executes fn(0..n-1) on up to Options.Parallel goroutines and
// returns results ordered by run index, never by completion order, so
// the merged output of a parallel sweep is byte-identical to the
// sequential one (asserted by tests in internal/fuzz and
// internal/experiments, run under -race in CI).
//
// Rules for fn closures, enforced by the cenju4-lint determinism
// analyzer: fn must not write variables captured from the enclosing
// scope (the analyzer flags such assignments); every run derives its
// randomness from its index (e.g. fuzz.CaseSeed) rather than sharing a
// rand.Rand; and each run constructs its own engine/machine — sim
// engines are single-threaded and must never be shared across runs.
//
// A panicking run does not kill the fleet: the panic is captured with
// its stack and reported alongside the run's index and label so the
// failing config+seed can be replayed, while the other runs complete.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Options configures a Map call.
type Options struct {
	// Parallel is the maximum number of concurrent runs. Zero or
	// negative means GOMAXPROCS. One runs everything on the calling
	// goroutine.
	Parallel int
	// Label, if non-nil, names run i in panic reports (typically the
	// config+seed string needed to replay it).
	Label func(i int) string
	// Context, if non-nil, lets the caller abandon a sweep: once it is
	// cancelled, no further run starts (runs already executing finish —
	// fn itself must watch the context if mid-run abort is needed, as
	// machine.RunContext does). Skipped runs leave the zero value in the
	// result slice and never receive an each callback; runs that
	// completed before the cancellation still receive theirs, in index
	// order, even when a lower-indexed run was claimed later and
	// skipped. Callers that pass a cancellable context must check
	// Context.Err() before trusting the tail of the results. A nil
	// Context reproduces the original run-everything behaviour for
	// existing call sites.
	Context context.Context
}

// skip reports whether the sweep has been abandoned.
func (o Options) skip() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Panic describes one captured run panic.
type Panic struct {
	Index int
	Label string
	Value any
	Stack string
}

func (p *Panic) Error() string {
	if p.Label != "" {
		return fmt.Sprintf("run %d (%s) panicked: %v", p.Index, p.Label, p.Value)
	}
	return fmt.Sprintf("run %d panicked: %v", p.Index, p.Value)
}

// Map runs fn(i) for i in [0, n) across a worker pool and returns the
// results indexed by i. Captured panics are returned ordered by run
// index; results[i] is the zero value for a panicked run.
func Map[R any](o Options, n int, fn func(i int) R) ([]R, []*Panic) {
	return MapEach(o, n, fn, nil)
}

// MapEach is Map with a completion callback: each(i, results[i]) is
// invoked exactly once per non-panicked run, in strictly ascending
// index order, as soon as the prefix 0..i has completed. This is how
// drivers emit deterministic progress output (one line per run, always
// in run order) while the fleet completes out of order behind it. each
// runs on whichever worker goroutine completed the prefix, under the
// runner's lock: it must be fast and must not call back into the
// runner.
func MapEach[R any](o Options, n int, fn func(i int) R, each func(i int, r R)) ([]R, []*Panic) {
	if n <= 0 {
		return nil, nil
	}
	workers := o.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	panicked := make([]*Panic, n)

	if workers == 1 {
		for i := 0; i < n; i++ {
			if o.skip() {
				break
			}
			runOne(o, i, fn, results, panicked)
			if each != nil && panicked[i] == nil {
				each(i, results[i])
			}
		}
		return results, compact(panicked)
	}

	// Ordered delivery: done marks settled runs (completed or skipped);
	// cursor is the first index whose callback has not fired. Whichever
	// worker settles the run at the cursor drains the completed prefix.
	// A cancelled sweep marks every remaining index done-but-skipped
	// rather than abandoning it: otherwise the cursor would stall on the
	// first skipped index and suppress each callbacks for
	// higher-indexed runs that already completed.
	var (
		mu     sync.Mutex
		done   = make([]bool, n)
		ranOK  = make([]bool, n)
		cursor int
		next   atomic.Int64
		wg     sync.WaitGroup
	)
	deliver := func(i int, ran bool) {
		mu.Lock()
		done[i] = true
		ranOK[i] = ran
		for cursor < n && done[cursor] {
			if each != nil && ranOK[cursor] && panicked[cursor] == nil {
				each(cursor, results[cursor])
			}
			cursor++
		}
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if o.skip() {
					deliver(i, false)
					continue
				}
				runOne(o, i, fn, results, panicked)
				deliver(i, true)
			}
		}()
	}
	wg.Wait()
	return results, compact(panicked)
}

// NestedBudget caps a per-run (inner) worker count so that outer
// concurrent runs, each using the returned inner parallelism, never
// oversubscribe the machine: outer × result ≤ GOMAXPROCS, with a floor
// of 1. Sweep drivers that enable intra-run parallelism
// (machine.Config.IntraParallel) must pass their Map parallelism as
// outer; non-positive arguments mean GOMAXPROCS, matching
// Options.Parallel semantics.
func NestedBudget(outer, inner int) int {
	procs := runtime.GOMAXPROCS(0)
	if outer <= 0 {
		outer = procs
	}
	if inner <= 0 {
		inner = procs
	}
	budget := procs / outer
	if budget < 1 {
		budget = 1
	}
	if inner > budget {
		inner = budget
	}
	return inner
}

// DeriveSeed expands a base seed into the seed for run i (splitmix64
// applied twice, the repo's standard mixer — fuzz.CaseSeed and the
// experiment ablations both use it). Runs on a worker pool must never
// share a random generator: draw order would depend on goroutine
// scheduling. Instead each run seeds its own stream from its index, so
// a run is reproduced by (base, i) alone and the sweep's output is
// independent of the parallelism level.
func DeriveSeed(base uint64, i int) uint64 {
	return splitmix64(base ^ splitmix64(uint64(i)+1))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runOne executes a single run with panic capture.
func runOne[R any](o Options, i int, fn func(int) R, results []R, panicked []*Panic) {
	defer func() {
		if v := recover(); v != nil {
			label := ""
			if o.Label != nil {
				label = o.Label(i)
			}
			panicked[i] = &Panic{Index: i, Label: label, Value: v, Stack: string(debug.Stack())}
		}
	}()
	results[i] = fn(i)
}

func compact(sparse []*Panic) []*Panic {
	var out []*Panic
	for _, p := range sparse {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
