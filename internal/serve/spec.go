// Package serve turns the deterministic simulator into a long-running
// experiment service: an HTTP/JSON job API over a content-addressed
// result cache and a batching execution pool.
//
// The layering is digest → cache → pool → runner:
//
//   - a Spec canonically names one experiment (machine configuration +
//     workload selector + seed) and hashes to a stable content digest
//     (internal/digest);
//   - because PRs 3–4 made every run byte-identical for a given spec,
//     the digest is a perfect cache key: the bounded LRU Cache maps
//     digests to rendered result payloads, so a repeated spec costs a
//     map lookup instead of a simulation;
//   - the Pool batches cache misses through runner.Map with admission
//     control (bounded queue, queue-full rejection), per-job limits
//     (node ceiling, event budget, wall-clock timeout threaded into
//     the sim loop via machine.RunContext), duplicate-submission
//     coalescing (concurrent identical specs share one run), and
//     graceful draining shutdown;
//   - the Server exposes it all as HTTP: POST /v1/jobs, GET
//     /v1/jobs/{digest}, GET /v1/jobs/{digest}/trace, GET /v1/metrics,
//     GET /healthz.
//
// Unlike every package under the simulation lint scope, serve is
// wall-clock-legitimate: request latencies, timeouts and eviction
// order are service concerns, not simulation outcomes. Determinism is
// preserved where it matters — the cached payload bytes for a digest
// are identical no matter which worker, batch or process produced
// them, and cenju4-load asserts that contract under load.
package serve

import (
	"fmt"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/digest"
	"cenju4/internal/faults"
	"cenju4/internal/npb"
	"cenju4/internal/topology"
)

// Spec is the canonical job specification: everything that determines
// a simulation's outcome, and nothing else. JSON field names are the
// wire format of POST /v1/jobs.
//
// The zero value of every optional field means "the default", and
// Normalize rewrites a spec into its canonical form (defaults filled,
// names lowercased) before digesting, so two clients spelling the same
// experiment differently share one cache entry.
type Spec struct {
	// App and Variant select the workload: one of the four NPB kernels
	// ("bt", "cg", "ft", "sp") in one program form ("seq", "mpi",
	// "dsm1", "dsm2").
	App     string `json:"app"`
	Variant string `json:"variant"`
	// Nodes is the machine size (power of two; default 16, forced to 1
	// for seq).
	Nodes int `json:"nodes,omitempty"`
	// NoMapping disables the shared-data mappings (dsm variants).
	NoMapping bool `json:"no_mapping,omitempty"`
	// Iterations is the outer time-step count (default 2).
	Iterations int `json:"iterations,omitempty"`
	// Scale is the problem size relative to NPB Class A (default 0.05).
	Scale float64 `json:"scale,omitempty"`
	// Seed labels the run in observability output. The simulation is
	// deterministic — the seed does not perturb it — but it is part of
	// the digest, so distinct seeds are distinct cache entries (the
	// load generator exploits this for cheap unique specs).
	Seed int64 `json:"seed,omitempty"`
	// Protocol selects the coherence protocol: "queuing" (default) or
	// "nack".
	Protocol string `json:"protocol,omitempty"`
	// Stages overrides the network stage count (0 = paper default).
	Stages int `json:"stages,omitempty"`
	// NoMulticast disables the network's multicast/gathering hardware.
	NoMulticast bool `json:"no_multicast,omitempty"`
	// UpdateProtocol runs the hot shared region under the update-type
	// protocol extension.
	UpdateProtocol bool `json:"update_protocol,omitempty"`
	// TraceMax, when positive, collects up to that many protocol trace
	// events; the Chrome-trace payload is served from
	// GET /v1/jobs/{digest}/trace.
	TraceMax int `json:"trace_max,omitempty"`
	// Fault is a deterministic fault plan: a preset name
	// ("light-loss") or a k=v spec ("drop=0.02,seed=7"), canonicalized
	// by Normalize so equivalent spellings share a cache entry. An
	// unrecoverable plan aborts the job with the machine watchdog's
	// diagnosis (classified distinctly from budget and timeout
	// aborts). Empty means fault-free.
	Fault string `json:"fault,omitempty"`
	// IntraParallel shards the run's simulated nodes over K
	// conservative-PDES partitions that advance in parallel windows
	// (see internal/psim). 0 or 1 selects the sequential kernel. The
	// result payload is byte-identical at every setting — the field
	// exists so operators can trade cores for latency on big jobs — but
	// it is part of the digest, so PDES and sequential runs of one
	// experiment are distinct cache entries. Must be a power of two
	// dividing the node count; incompatible with the "mpi" variant
	// (blocking Recv has zero lookahead), fault plans, and tracing.
	IntraParallel int `json:"intra_parallel,omitempty"`
}

// Normalize returns the canonical form of s: defaults filled in and
// names folded to their canonical spellings. It does not validate —
// call Validate on the result.
func (s Spec) Normalize() Spec {
	s.App = strings.ToLower(s.App)
	s.Variant = canonicalVariant(s.Variant)
	s.Protocol = strings.ToLower(s.Protocol)
	if s.Protocol == "" {
		s.Protocol = "queuing"
	}
	if s.Nodes == 0 {
		s.Nodes = 16
	}
	if s.Variant == "seq" {
		s.Nodes = 1
	}
	if s.Iterations == 0 {
		s.Iterations = 2
	}
	if s.Scale == 0 {
		s.Scale = 0.05
	}
	if s.TraceMax < 0 {
		s.TraceMax = 0
	}
	if s.IntraParallel == 0 {
		s.IntraParallel = 1
	}
	if s.Fault != "" {
		// Canonicalize so "drop=0.02" and " DROP=0.02 " digest alike;
		// an unparsable plan is left verbatim for Validate to report.
		if f, err := faults.ParseSpec(s.Fault); err == nil {
			s.Fault = f.String()
			if !f.Enabled() {
				s.Fault = ""
			}
		}
	}
	return s
}

// canonicalVariant folds the accepted variant spellings ("dsm(2)",
// "DSM2", ...) to the compact wire form.
func canonicalVariant(v string) string {
	switch strings.ToLower(v) {
	case "dsm1", "dsm(1)":
		return "dsm1"
	case "dsm2", "dsm(2)":
		return "dsm2"
	default:
		return strings.ToLower(v)
	}
}

// Validate checks a normalized spec for well-formedness. It reports
// malformed specs (unknown names, impossible sizes) — resource ceilings
// are the Limits' concern, not the spec's.
func (s Spec) Validate() error {
	if _, err := npb.ParseApp(s.App); err != nil {
		return fmt.Errorf("serve: bad spec: %w", err)
	}
	v, err := npb.ParseVariant(s.Variant)
	if err != nil {
		return fmt.Errorf("serve: bad spec: %w", err)
	}
	if v == npb.Seq && s.Nodes != 1 {
		return fmt.Errorf("serve: bad spec: seq runs on exactly 1 node, got %d", s.Nodes)
	}
	if !topology.ValidNodeCount(s.Nodes) {
		return fmt.Errorf("serve: bad spec: node count %d is not a power of two <= %d", s.Nodes, topology.MaxNodes)
	}
	if s.Protocol != "queuing" && s.Protocol != "nack" {
		return fmt.Errorf("serve: bad spec: unknown protocol %q (want queuing or nack)", s.Protocol)
	}
	if s.Scale < 0.001 || s.Scale > 4 {
		return fmt.Errorf("serve: bad spec: scale %g out of range [0.001, 4]", s.Scale)
	}
	if s.Iterations < 1 || s.Iterations > 64 {
		return fmt.Errorf("serve: bad spec: iterations %d out of range [1, 64]", s.Iterations)
	}
	if s.Stages != 0 {
		if s.Stages < 2 || s.Stages > 6 || s.Stages%2 != 0 {
			return fmt.Errorf("serve: bad spec: stages %d (want 0 for default, or 2, 4, 6)", s.Stages)
		}
	}
	if s.Fault != "" {
		f, err := faults.ParseSpec(s.Fault)
		if err != nil {
			return fmt.Errorf("serve: bad spec: %w", err)
		}
		if err := f.Normalize().Validate(); err != nil {
			return fmt.Errorf("serve: bad spec: %w", err)
		}
	}
	if k := s.IntraParallel; k > 1 {
		if k&(k-1) != 0 || k > s.Nodes {
			return fmt.Errorf("serve: bad spec: intra_parallel %d must be a power of two <= %d nodes", k, s.Nodes)
		}
		if v == npb.MPI {
			return fmt.Errorf("serve: bad spec: intra_parallel > 1 is incompatible with the mpi variant (blocking Recv has zero lookahead)")
		}
		if s.Fault != "" {
			return fmt.Errorf("serve: bad spec: intra_parallel > 1 is incompatible with fault injection")
		}
		if s.TraceMax > 0 {
			return fmt.Errorf("serve: bad spec: intra_parallel > 1 is incompatible with tracing")
		}
	}
	return nil
}

// fault returns the compiled-in fault plan of a validated spec.
func (s Spec) fault() faults.Spec {
	if s.Fault == "" {
		return faults.Spec{}
	}
	f, err := faults.ParseSpec(s.Fault)
	if err != nil {
		// Validate already rejected unparsable plans.
		panic(fmt.Sprintf("serve: fault plan %q: %v", s.Fault, err))
	}
	return f.Normalize()
}

// mode returns the core protocol mode of a validated spec.
func (s Spec) mode() core.Mode {
	if s.Protocol == "nack" {
		return core.ModeNack
	}
	return core.ModeQueuing
}

// specEncoding versions the digest encoding. Bump it when a field is
// added or the canonical form changes: old cache entries then miss
// instead of aliasing new specs. (v2: fault plan; v3: intra_parallel.)
const specEncoding = "cenju4-serve spec v3"

// Digest returns the content address of a spec: the canonical SHA-256
// of its normalized encoding. Every field that can change a
// simulation's outcome (or its observability payload) is written, in
// declaration order; the golden-stability and field-sensitivity tests
// in spec_test.go pin the encoding.
func (s Spec) Digest() string {
	n := s.Normalize()
	w := digest.New()
	w.Printf("%s\n", specEncoding)
	w.Printf("app=%q variant=%q nodes=%d mapped=%t\n", n.App, n.Variant, n.Nodes, !n.NoMapping)
	w.Printf("iters=%d scale=%g seed=%d\n", n.Iterations, n.Scale, n.Seed)
	w.Printf("protocol=%q stages=%d multicast=%t update=%t trace=%d\n",
		n.Protocol, n.Stages, !n.NoMulticast, n.UpdateProtocol, n.TraceMax)
	w.Printf("fault=%q\n", n.Fault)
	w.Printf("intra=%d\n", n.IntraParallel)
	return w.Sum()
}

// Limits are the service's per-job resource ceilings, enforced at
// admission (MaxNodes) and inside the run (MaxEvents as an event
// budget, Pool.JobTimeout as a wall-clock deadline).
type Limits struct {
	// MaxNodes caps the machine size a job may request (0 = the
	// topology maximum).
	MaxNodes int
	// MaxEvents caps the number of simulation events a job may fire
	// (0 = unlimited).
	MaxEvents uint64
}

// Check reports whether a validated spec fits the limits.
func (l Limits) Check(s Spec) error {
	maxNodes := l.MaxNodes
	if maxNodes <= 0 {
		maxNodes = topology.MaxNodes
	}
	if s.Nodes > maxNodes {
		return fmt.Errorf("serve: over limit: %d nodes exceeds the service ceiling of %d", s.Nodes, maxNodes)
	}
	return nil
}
