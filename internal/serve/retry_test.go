package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cenju4/internal/machine"
	"cenju4/internal/metrics"
)

// TestRetryDelay pins the backoff policy: exponential from the base,
// capped, floored by the server's Retry-After header, with bounded
// jitter on top.
func TestRetryDelay(t *testing.T) {
	cases := []struct {
		name       string
		attempt    int
		retryAfter string
		base       time.Duration
		min, max   time.Duration
	}{
		{"first attempt", 0, "", 10 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond},
		{"third attempt doubles twice", 2, "", 10 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond},
		{"retry-after floors the delay", 0, "1", 10 * time.Millisecond, time.Second, 1500 * time.Millisecond},
		{"retry-after zero means base", 0, "0", 10 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond},
		{"garbage retry-after ignored", 0, "soon", 10 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond},
		{"exponent capped at 2s", 8, "", time.Second, 2 * time.Second, 3 * time.Second},
		{"zero base gets the default", 0, "", 0, 25 * time.Millisecond, 38 * time.Millisecond},
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range cases {
		for i := 0; i < 32; i++ { // jitter is random; bound it, don't pin it
			d := retryDelay(rng, tc.attempt, tc.retryAfter, tc.base)
			if d < tc.min || d > tc.max {
				t.Errorf("%s: delay %v outside [%v, %v]", tc.name, d, tc.min, tc.max)
				break
			}
		}
	}
}

// shedHandler is a scripted job API: the first len(sheds) POSTs are
// shed with the given statuses (each carrying Retry-After), later ones
// succeed; GETs always serve the cached body.
type shedHandler struct {
	mu    sync.Mutex
	sheds []int
	posts int
}

func (h *shedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		h.mu.Lock()
		i := h.posts
		h.posts++
		h.mu.Unlock()
		if i < len(h.sheds) {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(h.sheds[i])
			fmt.Fprintln(w, `{"error":"shed"}`)
			return
		}
		w.Header().Set(HeaderCache, CacheMiss)
		w.Header().Set(HeaderDigest, "d1")
		fmt.Fprintln(w, `{"ok":true}`)
		return
	}
	w.Header().Set(HeaderCache, CacheHit)
	w.Header().Set(HeaderDigest, "d1")
	fmt.Fprintln(w, `{"ok":true}`)
}

func (h *shedHandler) postCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.posts
}

// TestLoadRetriesShedResponses drives the load generator against a
// scripted server and checks the retry accounting: shed responses
// (429 and 503) are retried with backoff up to MaxRetries, successful
// retries do not count as rejections, and exhausted retries do.
func TestLoadRetriesShedResponses(t *testing.T) {
	cases := []struct {
		name       string
		sheds      []int
		maxRetries int

		wantPosts    int // HTTP POSTs the server saw
		wantRetries  int
		wantRejected int
		wantMisses   int
	}{
		{"429 then success", []int{http.StatusTooManyRequests}, 2, 2, 1, 0, 1},
		{"503 then success", []int{http.StatusServiceUnavailable}, 2, 2, 1, 0, 1},
		{"mixed shed then success", []int{http.StatusTooManyRequests, http.StatusServiceUnavailable}, 3, 3, 2, 0, 1},
		{"retries exhausted", []int{429, 429, 429, 429}, 2, 3, 2, 1, 0},
		{"retries disabled", []int{http.StatusTooManyRequests}, 0, 1, 0, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &shedHandler{sheds: tc.sheds}
			ts := httptest.NewServer(h)
			defer ts.Close()

			rep, err := RunLoad(context.Background(), LoadOptions{
				BaseURL:      ts.URL,
				Clients:      1,
				Requests:     1,
				DupRatio:     1, // always the one shared spec: exactly one logical POST
				MaxRetries:   tc.maxRetries,
				RetryBackoff: time.Millisecond,
				Client:       ts.Client(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := h.postCount(); got != tc.wantPosts {
				t.Errorf("server saw %d POSTs, want %d", got, tc.wantPosts)
			}
			if rep.Retries != tc.wantRetries {
				t.Errorf("Retries = %d, want %d", rep.Retries, tc.wantRetries)
			}
			if rep.Rejected != tc.wantRejected {
				t.Errorf("Rejected = %d, want %d", rep.Rejected, tc.wantRejected)
			}
			if rep.Misses != tc.wantMisses {
				t.Errorf("Misses = %d, want %d", rep.Misses, tc.wantMisses)
			}
			if rep.Mismatch != 0 || rep.Errors != 0 {
				t.Errorf("unexpected mismatches/errors: %+v", rep)
			}
		})
	}
}

// TestJobAbortClassification: the three ways a job can die inside the
// runner — watchdog trip, event-budget overrun, wall-clock timeout —
// map to distinct statuses and X-Cenju4-Abort values, so a chaos
// client can tell a wedged protocol from an undersized budget.
func TestJobAbortClassification(t *testing.T) {
	exec := func(ctx context.Context, dig string, spec Spec) (*Entry, *metrics.Registry, error) {
		switch spec.Seed {
		case 1:
			return nil, nil, &machine.DeadlockError{Unfinished: 3, Diagnosis: "node 0: mshr[0] wedged"}
		case 2:
			return nil, nil, fmt.Errorf("machine: run aborted: %w", machine.ErrEventBudget)
		case 3:
			return nil, nil, context.DeadlineExceeded
		}
		return nil, nil, errors.New("unclassified executor failure")
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Exec: exec})

	cases := []struct {
		name   string
		seed   int
		status int
		abort  string
		errHas string
	}{
		{"watchdog", 1, http.StatusUnprocessableEntity, AbortWatchdog, "never finished"},
		{"budget", 2, http.StatusUnprocessableEntity, AbortBudget, "event budget"},
		{"timeout", 3, http.StatusGatewayTimeout, AbortTimeout, "timed out"},
		{"other", 4, http.StatusInternalServerError, "", "unclassified"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSpec(t, ts, fmt.Sprintf(`{"app":"cg","variant":"dsm2","seed":%d}`, tc.seed))
			body := string(readAll(t, resp))
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if got := resp.Header.Get(HeaderAbort); got != tc.abort {
				t.Errorf("%s = %q, want %q", HeaderAbort, got, tc.abort)
			}
			if !strings.Contains(body, tc.errHas) {
				t.Errorf("body %q does not mention %q", body, tc.errHas)
			}
		})
	}
}

// TestShedResponsesCarryRetryAfter: every load-shedding status the
// service emits (shutdown 503s on submit and health) tells the client
// when to come back. The queue-full 429 path is asserted in
// TestQueueFullRejection.
func TestShedResponsesCarryRetryAfter(t *testing.T) {
	st := &stubExec{}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Exec: st.exec})
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/healthz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, r)
		if r.StatusCode != http.StatusServiceUnavailable || r.Header.Get("Retry-After") == "" {
			t.Errorf("GET %s: status %d Retry-After %q, want 503 with Retry-After", path, r.StatusCode, r.Header.Get("Retry-After"))
		}
	}
	resp := postSpec(t, ts, `{"app":"cg","variant":"dsm2"}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("POST after Close: status %d Retry-After %q, want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
