package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cenju4/internal/machine"
	"cenju4/internal/metrics"
	"cenju4/internal/runner"
)

// Cache-disposition values reported in the X-Cenju4-Cache response
// header; the load generator keys its hit-rate accounting on them.
const (
	// CacheHit: served straight from the result cache.
	CacheHit = "hit"
	// CacheCoalesced: attached to an identical in-flight run.
	CacheCoalesced = "coalesced"
	// CacheMiss: this request paid for a simulation.
	CacheMiss = "miss"
)

// Header names of the job API.
const (
	HeaderCache  = "X-Cenju4-Cache"
	HeaderDigest = "X-Cenju4-Digest"
	// HeaderAbort classifies why a job died: "watchdog" (the machine
	// went quiescent with unfinished programs — an unrecoverable fault
	// plan wedged the protocol), "budget" (event-budget overrun, e.g. a
	// nack-mode livelock), or "timeout" (wall-clock deadline).
	HeaderAbort = "X-Cenju4-Abort"
)

// HeaderAbort values.
const (
	AbortWatchdog = "watchdog"
	AbortBudget   = "budget"
	AbortTimeout  = "timeout"
)

// maxSpecBytes bounds a POST body; a job spec is a few hundred bytes,
// so anything beyond this is malformed or hostile.
const maxSpecBytes = 1 << 16

// Config parameterizes a Server.
type Config struct {
	// Workers, QueueDepth, BatchMax, JobTimeout forward to PoolConfig.
	Workers    int
	QueueDepth int
	BatchMax   int
	JobTimeout time.Duration
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// Limits are the per-job resource ceilings.
	Limits Limits
	// Exec overrides the job executor (tests stub it; nil = Execute).
	Exec Exec
}

// Server is the experiment service: digest → cache → pool → runner,
// fronted by an HTTP mux. Create with New, serve Handler, stop with
// Close.
type Server struct {
	cfg   Config
	cache *Cache
	pool  *Pool

	closed atomic.Bool

	// sim accumulates every finished run's simulation registry, merged
	// on the dispatcher goroutine in batch order.
	simMu sync.Mutex
	sim   *metrics.Registry

	requests atomic.Uint64
}

// New assembles a server.
func New(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheBytes),
		sim:   metrics.New(),
	}
	exec := cfg.Exec
	if exec == nil {
		exec = func(ctx context.Context, dig string, spec Spec) (*Entry, *metrics.Registry, error) {
			// Pool workers x PDES shard workers must not oversubscribe
			// the process; NestedBudget splits GOMAXPROCS between them.
			return Execute(ctx, dig, spec, cfg.Limits.MaxEvents,
				runner.NestedBudget(cfg.Workers, spec.IntraParallel))
		}
	}
	s.pool = NewPool(PoolConfig{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		BatchMax:   cfg.BatchMax,
		JobTimeout: cfg.JobTimeout,
		Exec:       exec,
		Done:       s.jobDone,
	})
	return s
}

// jobDone runs on the dispatcher for every finished job, in batch
// order: populate the cache and fold the run's simulation metrics into
// the server-lifetime registry.
func (s *Server) jobDone(j *Job) {
	if j.err != nil {
		return
	}
	s.cache.Put(j.entry)
	if j.reg != nil {
		s.simMu.Lock()
		s.sim.Merge(j.reg)
		s.simMu.Unlock()
	}
}

// Close drains the pool (bounded by ctx) and marks the server
// unhealthy. In-flight HTTP waiters are released as their jobs finish.
func (s *Server) Close(ctx context.Context) error {
	s.closed.Store(true)
	return s.pool.Close(ctx)
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{digest}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{digest}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// errorBody writes a JSON error document with the given status.
func errorBody(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\": %s}\n", msg)
}

// writeEntry serves a cached (or just-computed) payload verbatim.
// Entries are immutable, so every response for a digest is
// byte-identical.
func writeEntry(w http.ResponseWriter, e *Entry, disposition string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCache, disposition)
	w.Header().Set(HeaderDigest, e.Digest)
	w.Write(e.Body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		errorBody(w, http.StatusBadRequest, "malformed spec: %v", err)
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		errorBody(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.cfg.Limits.Check(spec); err != nil {
		errorBody(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	dig := spec.Digest()
	if e, ok := s.cache.Get(dig); ok {
		writeEntry(w, e, CacheHit)
		return
	}
	job, coalesced, err := s.pool.Submit(dig, spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		errorBody(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		errorBody(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		errorBody(w, http.StatusInternalServerError, "%v", err)
		return
	}
	entry, err := job.Wait(r.Context())
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	disposition := CacheMiss
	if coalesced {
		disposition = CacheCoalesced
	}
	writeEntry(w, entry, disposition)
}

// writeJobError maps a job failure to a status. Aborted simulations
// are the spec's fault (422) and carry an X-Cenju4-Abort header naming
// the mechanism that caught them — a watchdog trip (unrecoverable
// fault plan) is a different diagnosis from an event-budget overrun
// (livelock or runaway job); deadlines are a gateway timeout (504),
// shutdown is 503 with Retry-After, the rest are 500s.
func (s *Server) writeJobError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		// The client went away; nobody is reading this response.
		errorBody(w, http.StatusRequestTimeout, "client cancelled: %v", r.Context().Err())
	case errors.Is(err, machine.ErrDeadlock):
		w.Header().Set(HeaderAbort, AbortWatchdog)
		errorBody(w, http.StatusUnprocessableEntity, "watchdog abort: %v", err)
	case errors.Is(err, machine.ErrEventBudget):
		w.Header().Set(HeaderAbort, AbortBudget)
		errorBody(w, http.StatusUnprocessableEntity, "over limit: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set(HeaderAbort, AbortTimeout)
		errorBody(w, http.StatusGatewayTimeout, "job timed out: %v", err)
	case errors.Is(err, ErrShuttingDown), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		errorBody(w, http.StatusServiceUnavailable, "%v", ErrShuttingDown)
	default:
		errorBody(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	dig := r.PathValue("digest")
	if e, ok := s.cache.Get(dig); ok {
		writeEntry(w, e, CacheHit)
		return
	}
	if s.pool.Running(dig) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"digest\": %q, \"status\": \"running\"}\n", dig)
		return
	}
	errorBody(w, http.StatusNotFound, "no result for digest %s", dig)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	dig := r.PathValue("digest")
	e, ok := s.cache.Get(dig)
	if !ok {
		errorBody(w, http.StatusNotFound, "no result for digest %s", dig)
		return
	}
	if len(e.Trace) == 0 {
		errorBody(w, http.StatusNotFound, "spec %s did not request tracing (set trace_max)", dig)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderDigest, e.Digest)
	w.Write(e.Trace)
}

// handleMetrics serves the service registry: serve-layer counters
// (cache, pool, http) plus every finished run's simulation metrics
// merged in completion order, in the canonical metrics JSON format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := metrics.New()
	cs := s.cache.Stats()
	reg.Counter("serve/cache/hits").Add(cs.Hits)
	reg.Counter("serve/cache/misses").Add(cs.Misses)
	reg.Counter("serve/cache/evictions").Add(cs.Evictions)
	reg.Gauge("serve/cache/entries").Peak(int64(cs.Entries))
	reg.Gauge("serve/cache/bytes").Peak(cs.Bytes)
	ps := s.pool.Stats()
	reg.Counter("serve/pool/submitted").Add(ps.Submitted)
	reg.Counter("serve/pool/coalesced").Add(ps.Coalesced)
	reg.Counter("serve/pool/rejected").Add(ps.Rejected)
	reg.Counter("serve/pool/completed").Add(ps.Completed)
	reg.Counter("serve/pool/failed").Add(ps.Failed)
	reg.Counter("serve/pool/batches").Add(ps.Batches)
	reg.Gauge("serve/pool/inflight").Peak(int64(ps.Inflight))
	reg.Counter("serve/http/requests").Add(s.requests.Load())
	s.simMu.Lock()
	reg.Merge(s.sim)
	s.simMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing better to do than note it.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		w.Header().Set("Retry-After", "1")
		errorBody(w, http.StatusServiceUnavailable, "%v", ErrShuttingDown)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
