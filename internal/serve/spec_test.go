package serve

import (
	"reflect"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{App: "cg", Variant: "dsm2", Nodes: 16, Iterations: 1, Scale: 0.02, Seed: 1}
}

func TestNormalizeDefaults(t *testing.T) {
	n := Spec{App: "BT", Variant: "DSM(2)"}.Normalize()
	if n.App != "bt" || n.Variant != "dsm2" {
		t.Fatalf("names not canonicalized: %+v", n)
	}
	if n.Nodes != 16 || n.Iterations != 2 || n.Scale != 0.05 || n.Protocol != "queuing" {
		t.Fatalf("defaults not filled: %+v", n)
	}
	if seq := (Spec{App: "cg", Variant: "seq", Nodes: 64}).Normalize(); seq.Nodes != 1 {
		t.Fatalf("seq not forced to 1 node: %d", seq.Nodes)
	}
}

// TestNormalizeFaultCanonicalization: a preset name, its expanded k=v
// form, and the explicit "none" plan all fold to canonical spellings,
// so equivalent fault plans share one cache entry.
func TestNormalizeFaultCanonicalization(t *testing.T) {
	preset := Spec{App: "cg", Variant: "dsm2", Fault: "light-loss"}.Normalize()
	if preset.Fault == "" || preset.Fault == "light-loss" {
		t.Fatalf("preset not expanded to canonical k=v form: %q", preset.Fault)
	}
	kv := Spec{App: "cg", Variant: "dsm2", Fault: preset.Fault}.Normalize()
	if kv.Fault != preset.Fault {
		t.Fatalf("canonical form not a fixed point: %q vs %q", kv.Fault, preset.Fault)
	}
	if kv.Digest() != preset.Digest() {
		t.Fatal("preset and its canonical spelling digest differently")
	}
	if none := (Spec{App: "cg", Variant: "dsm2", Fault: "none"}).Normalize(); none.Fault != "" {
		t.Fatalf("explicit fault-free plan not folded to empty: %q", none.Fault)
	}
	if bad := (Spec{App: "cg", Variant: "dsm2", Fault: "frobnicate"}).Normalize(); bad.Fault != "frobnicate" {
		t.Fatalf("unparsable plan rewritten by Normalize: %q", bad.Fault)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		ok     bool
	}{
		{"valid", func(s *Spec) {}, true},
		{"nack protocol", func(s *Spec) { s.Protocol = "nack" }, true},
		{"explicit stages", func(s *Spec) { s.Stages = 4 }, true},
		{"unknown app", func(s *Spec) { s.App = "lu" }, false},
		{"unknown variant", func(s *Spec) { s.Variant = "omp" }, false},
		{"non-power-of-two nodes", func(s *Spec) { s.Nodes = 24 }, false},
		{"too many nodes", func(s *Spec) { s.Nodes = 2048 }, false},
		{"unknown protocol", func(s *Spec) { s.Protocol = "mesi" }, false},
		{"zero scale", func(s *Spec) { s.Scale = 0.00001 }, false},
		{"huge scale", func(s *Spec) { s.Scale = 9 }, false},
		{"iterations overflow", func(s *Spec) { s.Iterations = 1000 }, false},
		{"odd stages", func(s *Spec) { s.Stages = 3 }, false},
		{"seq with many nodes", func(s *Spec) { s.App = "cg"; s.Variant = "seq"; s.Nodes = 8 }, false},
		{"fault preset", func(s *Spec) { s.Fault = "light-loss" }, true},
		{"intra parallel", func(s *Spec) { s.IntraParallel = 4 }, true},
		{"intra non-power-of-two", func(s *Spec) { s.IntraParallel = 3 }, false},
		{"intra over nodes", func(s *Spec) { s.IntraParallel = 32 }, false},
		{"intra with mpi", func(s *Spec) { s.Variant = "mpi"; s.IntraParallel = 4 }, false},
		{"intra with fault", func(s *Spec) { s.Fault = "light-loss"; s.IntraParallel = 4 }, false},
		{"intra with trace", func(s *Spec) { s.TraceMax = 100; s.IntraParallel = 4 }, false},
		{"fault kv", func(s *Spec) { s.Fault = "drop=0.02,seed=7" }, true},
		{"unparsable fault", func(s *Spec) { s.Fault = "frobnicate" }, false},
		{"out-of-range fault", func(s *Spec) { s.Fault = "drop=2" }, false},
	}
	for _, tc := range cases {
		s := validSpec()
		s = s.Normalize()
		tc.mutate(&s)
		err := s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestDigestGoldenStability pins the canonical spec encoding. If this
// fails without a deliberate bump of specEncoding, the change would
// silently split the service's cache keyspace.
func TestDigestGoldenStability(t *testing.T) {
	const want = "1b1b31d3a6499f3b7ef4227dd68a0ddaef4f23908f413ccaba43ca1cddeb12e1"
	if got := validSpec().Digest(); got != want {
		t.Fatalf("spec digest changed:\n got  %s\n want %s\n(if intentional, bump specEncoding and update this golden)", got, want)
	}
}

// TestDigestNormalizationInvariance: equivalent spellings of a spec
// share a digest — that is what makes the cache keyspace canonical.
func TestDigestNormalizationInvariance(t *testing.T) {
	a := Spec{App: "CG", Variant: "dsm(2)", Nodes: 16, Iterations: 1, Scale: 0.02, Seed: 1}
	b := Spec{App: "cg", Variant: "dsm2", Nodes: 16, Iterations: 1, Scale: 0.02, Seed: 1, Protocol: "queuing"}
	if a.Digest() != b.Digest() {
		t.Fatalf("equivalent specs digest differently:\n %s\n %s", a.Digest(), b.Digest())
	}
	c := Spec{App: "cg", Variant: "dsm2"} // all defaults
	d := Spec{App: "cg", Variant: "dsm2", Nodes: 16, Iterations: 2, Scale: 0.05}
	if c.Digest() != d.Digest() {
		t.Fatal("default-filled spec digests differently from explicit defaults")
	}
}

// TestDigestFieldSensitivity: every spec field that can change a
// simulation (or its payload) must perturb the digest; a field that
// silently fell out of the encoding would alias distinct experiments
// to one cache entry.
func TestDigestFieldSensitivity(t *testing.T) {
	base := validSpec().Digest()
	mutations := map[string]func(*Spec){
		"App":            func(s *Spec) { s.App = "ft" },
		"Variant":        func(s *Spec) { s.Variant = "dsm1" },
		"Nodes":          func(s *Spec) { s.Nodes = 32 },
		"NoMapping":      func(s *Spec) { s.NoMapping = true },
		"Iterations":     func(s *Spec) { s.Iterations = 2 },
		"Scale":          func(s *Spec) { s.Scale = 0.03 },
		"Seed":           func(s *Spec) { s.Seed = 2 },
		"Protocol":       func(s *Spec) { s.Protocol = "nack" },
		"Stages":         func(s *Spec) { s.Stages = 4 },
		"NoMulticast":    func(s *Spec) { s.NoMulticast = true },
		"UpdateProtocol": func(s *Spec) { s.UpdateProtocol = true },
		"TraceMax":       func(s *Spec) { s.TraceMax = 1000 },
		"Fault":          func(s *Spec) { s.Fault = "light-loss" },
		"IntraParallel":  func(s *Spec) { s.IntraParallel = 4 },
	}
	for field, mutate := range mutations {
		s := validSpec()
		mutate(&s)
		if s.Digest() == base {
			t.Errorf("changing %s did not change the spec digest", field)
		}
	}
	if len(mutations) < numSpecFields(t) {
		t.Errorf("sensitivity table covers %d fields but Spec has %d — extend the table", len(mutations), numSpecFields(t))
	}
}

// numSpecFields counts Spec's fields so the sensitivity table cannot
// silently fall behind the struct.
func numSpecFields(t *testing.T) int {
	t.Helper()
	return reflect.TypeOf(Spec{}).NumField()
}

func TestLimitsCheck(t *testing.T) {
	s := validSpec().Normalize()
	if err := (Limits{MaxNodes: 16}).Check(s); err != nil {
		t.Fatalf("16 nodes rejected by a 16-node limit: %v", err)
	}
	err := (Limits{MaxNodes: 8}).Check(s)
	if err == nil || !strings.Contains(err.Error(), "over limit") {
		t.Fatalf("16 nodes passed an 8-node limit (err=%v)", err)
	}
	if err := (Limits{}).Check(s); err != nil {
		t.Fatalf("zero limits rejected a valid spec: %v", err)
	}
}
