package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer wires a Server around a stub executor and returns it
// with its httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSubmitRejections drives the submit handler through every
// client-error path.
func TestSubmitRejections(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Limits: Limits{MaxNodes: 64}, Exec: st.exec})
	cases := []struct {
		name   string
		body   string
		status int
		errHas string
	}{
		{"empty body", "", http.StatusBadRequest, "malformed spec"},
		{"not json", "app=cg", http.StatusBadRequest, "malformed spec"},
		{"unknown field", `{"app":"cg","variant":"dsm2","frobnicate":1}`, http.StatusBadRequest, "malformed spec"},
		{"wrong type", `{"app":"cg","variant":"dsm2","nodes":"many"}`, http.StatusBadRequest, "malformed spec"},
		{"unknown app", `{"app":"lu","variant":"dsm2"}`, http.StatusBadRequest, "unknown application"},
		{"unknown variant", `{"app":"cg","variant":"omp"}`, http.StatusBadRequest, "unknown variant"},
		{"bad node count", `{"app":"cg","variant":"dsm2","nodes":24}`, http.StatusBadRequest, "power of two"},
		{"bad protocol", `{"app":"cg","variant":"dsm2","protocol":"mesi"}`, http.StatusBadRequest, "unknown protocol"},
		{"over node limit", `{"app":"cg","variant":"dsm2","nodes":128}`, http.StatusUnprocessableEntity, "over limit"},
	}
	for _, tc := range cases {
		resp := postSpec(t, ts, tc.body)
		body := string(readAll(t, resp))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if !strings.Contains(body, tc.errHas) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.errHas)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Errorf("%s: error body is not JSON: %v", tc.name, err)
		}
	}
	if st.runs.Load() != 0 {
		t.Fatalf("rejected specs reached the executor %d times", st.runs.Load())
	}
}

// TestSubmitMissThenHit: the first POST pays for a run (miss), the
// second is served from the cache (hit), and both bodies are
// byte-identical.
func TestSubmitMissThenHit(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Exec: st.exec})
	spec := `{"app":"cg","variant":"dsm2","nodes":16}`

	first := postSpec(t, ts, spec)
	firstBody := readAll(t, first)
	if first.StatusCode != http.StatusOK || first.Header.Get(HeaderCache) != CacheMiss {
		t.Fatalf("first POST: status %d cache %q", first.StatusCode, first.Header.Get(HeaderCache))
	}
	dig := first.Header.Get(HeaderDigest)
	if dig == "" {
		t.Fatal("no digest header on first response")
	}

	second := postSpec(t, ts, spec)
	secondBody := readAll(t, second)
	if second.Header.Get(HeaderCache) != CacheHit {
		t.Fatalf("second POST cache disposition %q, want hit", second.Header.Get(HeaderCache))
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("hit body differs from miss body")
	}
	if st.runs.Load() != 1 {
		t.Fatalf("executor ran %d times for one digest, want 1", st.runs.Load())
	}
}

// TestGetByDigest: repeated GETs return byte-identical bodies; unknown
// digests 404.
func TestGetByDigest(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Exec: st.exec})
	resp := postSpec(t, ts, `{"app":"bt","variant":"mpi","nodes":4}`)
	want := readAll(t, resp)
	dig := resp.Header.Get(HeaderDigest)

	var bodies [][]byte
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/v1/jobs/" + dig)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK || r.Header.Get(HeaderCache) != CacheHit {
			t.Fatalf("GET %d: status %d cache %q", i, r.StatusCode, r.Header.Get(HeaderCache))
		}
		bodies = append(bodies, readAll(t, r))
	}
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("GET %d body differs from POST body", i)
		}
	}

	r, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, r); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", r.StatusCode)
	}
}

// TestCoalescing: two clients posting the same digest while the run is
// in flight share one execution; one response is the miss, the other
// is coalesced, and the bodies are identical.
func TestCoalescing(t *testing.T) {
	st := &stubExec{gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Exec: st.exec})
	spec := `{"app":"ft","variant":"dsm1","nodes":8}`

	type result struct {
		disposition string
		body        []byte
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSpec(t, ts, spec)
			results[i] = result{resp.Header.Get(HeaderCache), readAll(t, resp)}
		}(i)
	}
	// Both requests must be inside the server before the run finishes;
	// wait for the first to reach the executor, give the second a
	// moment to coalesce, then release.
	for st.runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(st.gate)
	wg.Wait()

	if !bytes.Equal(results[0].body, results[1].body) {
		t.Fatal("coalesced clients saw different bodies")
	}
	dispositions := []string{results[0].disposition, results[1].disposition}
	var miss, coalesced int
	for _, d := range dispositions {
		switch d {
		case CacheMiss:
			miss++
		case CacheCoalesced:
			coalesced++
		case CacheHit:
			// Legal rarity: the second POST arrived after completion.
		default:
			t.Fatalf("unexpected disposition %q", d)
		}
	}
	if st.runs.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1 (dispositions %v)", st.runs.Load(), dispositions)
	}
	if miss != 1 || coalesced != 1 {
		t.Logf("dispositions %v (timing-dependent split, run count is the invariant)", dispositions)
	}
}

// TestQueueFullRejection: submissions beyond the admission queue get a
// distinct 429 with Retry-After, and the server keeps serving.
func TestQueueFullRejection(t *testing.T) {
	st := &stubExec{gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{Workers: 1, BatchMax: 1, QueueDepth: 1, Exec: st.exec})

	// Distinct specs so nothing coalesces: the first occupies the
	// worker, the second sits in the queue, later ones must shed.
	const n = 6
	statuses := make([]int, n)
	var shedSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSpec(t, ts, fmt.Sprintf(`{"app":"cg","variant":"dsm2","nodes":16,"seed":%d}`, i+1))
			readAll(t, resp)
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without a Retry-After header")
				}
				shedSeen.Add(1)
			}
		}(i)
	}
	// Hold the gate until at least one request has been shed (or we
	// give up), so the burst genuinely overflows the queue.
	deadline := time.Now().Add(5 * time.Second)
	for shedSeen.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(st.gate)
	wg.Wait()

	var ok, shed int
	for _, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d (all: %v)", s, statuses)
		}
	}
	if shed == 0 {
		t.Fatalf("no request was shed: %v", statuses)
	}
	if ok == 0 {
		t.Fatalf("no request succeeded: %v", statuses)
	}

	// The service recovers once the burst drains.
	resp := postSpec(t, ts, `{"app":"cg","variant":"dsm2","nodes":16,"seed":99}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst POST: status %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint: /v1/metrics is valid canonical metrics JSON and
// reflects cache traffic.
func TestMetricsEndpoint(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Exec: st.exec})
	readAll(t, postSpec(t, ts, `{"app":"cg","variant":"dsm2"}`))
	readAll(t, postSpec(t, ts, `{"app":"cg","variant":"dsm2"}`))

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if doc.Counters["serve/cache/hits"] != 1 || doc.Counters["serve/cache/misses"] != 1 {
		t.Fatalf("cache counters = hits %d misses %d, want 1/1\n%s",
			doc.Counters["serve/cache/hits"], doc.Counters["serve/cache/misses"], body)
	}
	if doc.Counters["serve/pool/completed"] != 1 {
		t.Fatalf("completed = %d, want 1", doc.Counters["serve/pool/completed"])
	}
}

// TestHealthz: healthy until Close, 503 after.
func TestHealthz(t *testing.T) {
	st := &stubExec{}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Exec: st.exec})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, r); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d, want 503", r.StatusCode)
	}
	resp := postSpec(t, ts, `{"app":"cg","variant":"dsm2"}`)
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after Close: %d, want 503", resp.StatusCode)
	}
}

// TestMethodRouting: wrong methods are rejected by the mux.
func TestMethodRouting(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Exec: st.exec})
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, r); r.StatusCode != http.StatusMethodNotAllowed && r.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/jobs: %d, want 405/404", r.StatusCode)
	}
}
