package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cenju4/internal/runner"
)

// LoadOptions configures a closed-loop load run against a serve
// instance. Each of Clients goroutines issues Requests/Clients POSTs
// back to back (or loops until Duration elapses when Duration > 0),
// then the generator GETs every digest it saw twice more and checks
// all three bodies for byte-identity.
type LoadOptions struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8944".
	BaseURL string
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// Requests is the total POST count across all clients (default
	// 64×Clients). Ignored when Duration is set.
	Requests int
	// Duration, when positive, runs each client until it elapses
	// instead of counting requests.
	Duration time.Duration
	// DupRatio in [0, 1] is the probability a request reuses one of the
	// shared base specs instead of a client-unique one; higher means
	// more cache hits (default 0.9).
	DupRatio float64
	// Seed makes the spec mix reproducible (default 1).
	Seed uint64
	// Spec is the base workload every generated spec varies from;
	// zero value means a small cg/dsm2 run.
	Spec Spec
	// SharedSpecs is how many distinct "popular" specs the duplicate
	// traffic draws from (default 4).
	SharedSpecs int
	// MaxRetries is how many times a shed response (429 queue-full or
	// 503 unavailable) is retried before it is tallied. 0 disables
	// retries. Each retry backs off exponentially from RetryBackoff
	// with seeded jitter, and never shorter than the server's
	// Retry-After header.
	MaxRetries int
	// RetryBackoff is the base of the exponential retry backoff
	// (default 25ms).
	RetryBackoff time.Duration
	// Client overrides the HTTP client (tests inject the httptest
	// client; nil builds one sized for Clients connections).
	Client *http.Client
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 64 * o.Clients
	}
	if o.DupRatio == 0 {
		o.DupRatio = 0.9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SharedSpecs <= 0 {
		o.SharedSpecs = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.Spec.App == "" {
		o.Spec = Spec{App: "cg", Variant: "dsm2", Nodes: 8, Iterations: 1, Scale: 0.02}
	}
	if o.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        o.Clients + 8,
			MaxIdleConnsPerHost: o.Clients + 8,
		}
		o.Client = &http.Client{Transport: tr}
	}
	return o
}

// LoadReport is the outcome of a load run. The tallies cover all
// cache traffic the generator produced — the POST phase plus the
// reverification GETs; rejected (429) and failed requests are counted
// separately and do not enter the hit rate.
type LoadReport struct {
	Requests  int `json:"requests"`   // POSTs that got a response
	Hits      int `json:"hits"`       // X-Cenju4-Cache: hit
	Coalesced int `json:"coalesced"`  // X-Cenju4-Cache: coalesced
	Misses    int `json:"misses"`     // X-Cenju4-Cache: miss
	Rejected  int `json:"rejected"`   // 429 queue-full responses (after retries)
	Retries   int `json:"retries"`    // shed responses retried after backoff
	Errors    int `json:"errors"`     // transport errors / non-2xx non-429
	Digests   int `json:"digests"`    // distinct digests observed
	Reverify  int `json:"reverified"` // digests re-GET and compared
	Mismatch  int `json:"mismatched"` // re-GET bodies that differed

	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"`
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`
}

// HitRate is hits+coalesced over all successful POSTs.
func (r LoadReport) HitRate() float64 {
	done := r.Hits + r.Coalesced + r.Misses
	if done == 0 {
		return 0
	}
	return float64(r.Hits+r.Coalesced) / float64(done)
}

// String renders the human-readable soak report.
func (r LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests   %d in %v (%.1f req/s)\n", r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput)
	fmt.Fprintf(&b, "cache      %d hit / %d coalesced / %d miss  (hit rate %.1f%%)\n",
		r.Hits, r.Coalesced, r.Misses, 100*r.HitRate())
	fmt.Fprintf(&b, "shed       %d rejected (429), %d retried, %d errors\n", r.Rejected, r.Retries, r.Errors)
	fmt.Fprintf(&b, "identity   %d digests, %d reverified, %d mismatched\n", r.Digests, r.Reverify, r.Mismatch)
	fmt.Fprintf(&b, "latency    p50 %v  p95 %v  p99 %v  max %v\n",
		r.LatencyP50.Round(time.Microsecond), r.LatencyP95.Round(time.Microsecond),
		r.LatencyP99.Round(time.Microsecond), r.LatencyMax.Round(time.Microsecond))
	return b.String()
}

// loadClient is one closed-loop worker's private state; everything is
// merged on the coordinating goroutine after the WaitGroup, so workers
// share nothing while running.
type loadClient struct {
	rng       *rand.Rand
	jitter    *rand.Rand // backoff jitter; separate stream so retries never perturb the spec mix
	latencies []time.Duration
	report    LoadReport
	bodies    map[string][32]byte // digest -> sha256 of first-seen body
}

// RunLoad drives the service with Clients closed loops and returns the
// aggregate report. It is deterministic in its request *mix* (seeded
// per client via runner.DeriveSeed) though not in timing. Cancel ctx
// to stop early.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return LoadReport{}, fmt.Errorf("serve: load: BaseURL is required")
	}

	// Popular specs: the duplicate share of the traffic draws from
	// these, so at DupRatio 0.9 each is requested many times and all but
	// the first are hits or coalesced.
	shared := make([]Spec, opts.SharedSpecs)
	for i := range shared {
		s := opts.Spec
		s.Seed = int64(i + 1)
		shared[i] = s
	}

	start := time.Now()
	clients := make([]*loadClient, opts.Clients)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		lc := &loadClient{
			rng:    rand.New(rand.NewSource(int64(runner.DeriveSeed(opts.Seed, c)))),
			jitter: rand.New(rand.NewSource(int64(runner.DeriveSeed(opts.Seed, 1<<20+c)))),
			bodies: make(map[string][32]byte),
		}
		clients[c] = lc
		perClient := opts.Requests / opts.Clients
		if c < opts.Requests%opts.Clients {
			perClient++
		}
		wg.Add(1)
		go func(c int, lc *loadClient, n int) {
			defer wg.Done()
			deadline := time.Time{}
			if opts.Duration > 0 {
				deadline = start.Add(opts.Duration)
			}
			for i := 0; ; i++ {
				if deadline.IsZero() {
					if i >= n {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				spec := shared[lc.rng.Intn(len(shared))]
				if lc.rng.Float64() >= opts.DupRatio {
					// Unique spec: the seed field is part of the digest but
					// not the simulation, so distinct seeds are cache-cold
					// without costing distinct workloads.
					spec.Seed = int64(1000 + c*1_000_000 + i)
				}
				lc.post(ctx, opts, spec)
			}
		}(c, lc, perClient)
	}
	wg.Wait()

	// Merge private per-client state.
	total := LoadReport{}
	var lats []time.Duration
	bodies := make(map[string][32]byte)
	mismatch := 0
	for _, lc := range clients {
		total.Requests += lc.report.Requests
		total.Hits += lc.report.Hits
		total.Coalesced += lc.report.Coalesced
		total.Misses += lc.report.Misses
		total.Rejected += lc.report.Rejected
		total.Retries += lc.report.Retries
		total.Errors += lc.report.Errors
		total.Mismatch += lc.report.Mismatch
		lats = append(lats, lc.latencies...)
		for d, h := range lc.bodies {
			if prev, ok := bodies[d]; ok && prev != h {
				mismatch++
			}
			bodies[d] = h
		}
	}
	total.Mismatch += mismatch
	total.Digests = len(bodies)

	// Reverification pass: every digest observed during the run is
	// fetched twice more, and all three bodies (the POST's and both
	// GETs') must be byte-identical. These GETs are real cache traffic
	// and are tallied like any other request.
	for d, want := range bodies {
		var sums [][32]byte
		for i := 0; i < 2; i++ {
			t0 := time.Now()
			body, status, hdr, err := doGet(ctx, opts, "/v1/jobs/"+d)
			if err != nil {
				total.Errors++
				continue
			}
			lats = append(lats, time.Since(t0))
			total.Requests++
			if status != http.StatusOK {
				// Evicted (404) or still running (202): not an identity
				// violation, but not a hit either.
				total.Misses++
				continue
			}
			switch hdr.Get(HeaderCache) {
			case CacheHit:
				total.Hits++
			default:
				total.Errors++
			}
			sums = append(sums, sha256.Sum256(body))
		}
		if len(sums) == 0 {
			continue
		}
		total.Reverify++
		for _, s := range sums {
			if s != want {
				total.Mismatch++
				break
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		total.LatencyP50 = lats[n/2]
		total.LatencyP95 = lats[n*95/100]
		total.LatencyP99 = lats[n*99/100]
		total.LatencyMax = lats[n-1]
	}
	total.Elapsed = time.Since(start)
	if total.Elapsed > 0 {
		total.Throughput = float64(total.Requests) / total.Elapsed.Seconds()
	}
	return total, nil
}

// post issues one job submission, retrying shed responses up to
// MaxRetries times, and tallies the final outcome.
func (lc *loadClient) post(ctx context.Context, opts LoadOptions, spec Spec) {
	payload, err := json.Marshal(spec)
	if err != nil {
		lc.report.Errors++
		return
	}
	var resp *http.Response
	var body []byte
	var readErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/jobs", bytes.NewReader(payload))
		if err != nil {
			lc.report.Errors++
			return
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, err = opts.Client.Do(req)
		if err != nil {
			lc.report.Errors++
			return
		}
		body, readErr = io.ReadAll(resp.Body)
		resp.Body.Close()
		lc.latencies = append(lc.latencies, time.Since(t0))
		shed := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !shed || attempt >= opts.MaxRetries {
			break
		}
		lc.report.Retries++
		if !sleepCtx(ctx, retryDelay(lc.jitter, attempt, resp.Header.Get("Retry-After"), opts.RetryBackoff)) {
			break // cancelled mid-backoff: tally the response we have
		}
	}
	lc.report.Requests++
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		lc.report.Rejected++
		return
	case resp.StatusCode != http.StatusOK || readErr != nil:
		lc.report.Errors++
		return
	}
	switch resp.Header.Get(HeaderCache) {
	case CacheHit:
		lc.report.Hits++
	case CacheCoalesced:
		lc.report.Coalesced++
	case CacheMiss:
		lc.report.Misses++
	default:
		lc.report.Errors++
		return
	}
	dig := resp.Header.Get(HeaderDigest)
	if dig == "" {
		lc.report.Errors++
		return
	}
	sum := sha256.Sum256(body)
	if prev, seen := lc.bodies[dig]; seen {
		if prev != sum {
			lc.report.Mismatch++
		}
	} else {
		lc.bodies[dig] = sum
	}
}

// retryDelay computes the backoff before the 0-based retry attempt:
// exponential from base (capped at 2s), never shorter than the
// server's Retry-After header, plus up to 50% seeded jitter so
// synchronized clients spread their retry storm.
func retryDelay(rng *rand.Rand, attempt int, retryAfter string, base time.Duration) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	d := base << uint(min(attempt, 20))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// sleepCtx sleeps for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// doGet fetches a service path, returning body and status.
func doGet(ctx context.Context, opts LoadOptions, path string) ([]byte, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.BaseURL+path, nil)
	if err != nil {
		return nil, 0, nil, err
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, resp.Header, err
}
