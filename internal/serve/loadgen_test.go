package serve

import (
	"context"
	"testing"
	"time"
)

// TestRunLoadHitRate: at a 0.9 duplicate ratio against a stub-backed
// server, the aggregate hit rate clears the soak threshold and every
// reverified body matches.
func TestRunLoadHitRate(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Exec: st.exec})
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  16,
		Requests: 800,
		DupRatio: 0.9,
		Seed:     42,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 800 {
		t.Fatalf("requests = %d, want >= 800 (POSTs plus reverify GETs)", rep.Requests)
	}
	if rep.Errors != 0 || rep.Mismatch != 0 {
		t.Fatalf("errors %d mismatches %d, want 0/0\n%s", rep.Errors, rep.Mismatch, rep)
	}
	if hr := rep.HitRate(); hr < 0.90 {
		t.Fatalf("hit rate %.3f below 0.90\n%s", hr, rep)
	}
	if rep.Reverify == 0 {
		t.Fatal("no digest was reverified")
	}
	if rep.LatencyMax == 0 || rep.Throughput == 0 {
		t.Fatalf("report missing latency/throughput: %+v", rep)
	}
}

// TestRunLoadUniqueSpecs: at DupRatio ~0 almost every request is a
// distinct digest, so misses dominate and the digest count is large.
func TestRunLoadUniqueSpecs(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Exec: st.exec})
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 100,
		DupRatio: 0.0001, // withDefaults treats 0 as "default", so ~0
		Seed:     7,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d\n%s", rep.Errors, rep)
	}
	if rep.Misses < 90 {
		t.Fatalf("misses = %d at ~0 dup ratio, want ~100\n%s", rep.Misses, rep)
	}
	if rep.Digests < 90 {
		t.Fatalf("digests = %d, want ~100", rep.Digests)
	}
}

// TestRunLoadDuration: duration-bounded runs stop on their own.
func TestRunLoadDuration(t *testing.T) {
	st := &stubExec{}
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Exec: st.exec})
	start := time.Now()
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  2,
		Duration: 150 * time.Millisecond,
		Seed:     3,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("duration-bounded run did not stop")
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued in the window")
	}
}

// TestRunLoadRejectionTally: against a tiny pool with a blocked
// executor, shed responses land in Rejected, not Errors.
func TestRunLoadRejectionTally(t *testing.T) {
	st := &stubExec{delay: 20 * time.Millisecond}
	_, ts := newTestServer(t, Config{Workers: 1, BatchMax: 1, QueueDepth: 1, Exec: st.exec})
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  8,
		Requests: 64,
		DupRatio: 0.0001, // all-unique so nothing coalesces
		Seed:     9,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d\n%s", rep.Errors, rep)
	}
	if rep.Rejected == 0 {
		t.Fatalf("no request was shed by a 1-deep queue\n%s", rep)
	}
	if rep.Requests < 64 {
		t.Fatalf("requests = %d, want >= 64", rep.Requests)
	}
}
