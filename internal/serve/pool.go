package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cenju4/internal/metrics"
	"cenju4/internal/runner"
)

// Admission and lifecycle errors. The HTTP layer maps ErrQueueFull to
// a 429 (the load-shedding contract: a full service rejects fast with
// a distinct status instead of queuing unboundedly) and ErrShuttingDown
// to a 503.
var (
	ErrQueueFull    = errors.New("serve: job queue full")
	ErrShuttingDown = errors.New("serve: shutting down")
)

// Exec runs one job and renders its cacheable entry. The context
// carries the job's wall-clock deadline and the pool's shutdown
// signal; implementations must abort promptly when it is cancelled
// (Execute threads it into the simulation loop via machine.RunContext).
// The returned registry holds the run's simulation metrics (may be
// nil).
type Exec func(ctx context.Context, digest string, spec Spec) (*Entry, *metrics.Registry, error)

// PoolConfig configures a Pool.
type PoolConfig struct {
	// Workers is the runner.Map parallelism per batch (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the jobs admitted but not yet batched; Submit
	// returns ErrQueueFull beyond it (default 64).
	QueueDepth int
	// BatchMax is the most jobs one runner.Map batch executes (default
	// 2x Workers, minimum 4): large enough to fill the workers, small
	// enough that a queued job never waits behind an unbounded batch.
	BatchMax int
	// JobTimeout is each job's wall-clock budget (0 = none).
	JobTimeout time.Duration
	// Exec executes one job (required).
	Exec Exec
	// Done, if non-nil, observes every finished job before its waiters
	// are released, called from the dispatcher goroutine in batch
	// order — the server uses it to populate the cache and merge
	// simulation metrics deterministically.
	Done func(j *Job)
}

// Job is one admitted execution. Waiters block on Wait; the dispatcher
// fills entry/err and closes done exactly once.
type Job struct {
	Digest string
	Spec   Spec

	done  chan struct{}
	entry *Entry
	reg   *metrics.Registry
	err   error
}

// Wait blocks until the job finishes or ctx is cancelled. On success
// the returned entry is the same immutable value every coalesced
// waiter receives.
func (j *Job) Wait(ctx context.Context) (*Entry, error) {
	select {
	case <-j.done:
		return j.entry, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Err returns the job's terminal error (nil before completion or on
// success).
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return nil
	}
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Submitted uint64 // jobs admitted to the queue
	Coalesced uint64 // submissions attached to an in-flight duplicate
	Rejected  uint64 // submissions refused with ErrQueueFull
	Completed uint64 // jobs finished successfully
	Failed    uint64 // jobs finished with an error
	Batches   uint64 // runner.Map batches dispatched
	Inflight  int    // jobs admitted but not yet finished
}

// Pool executes jobs by batching them through runner.Map. One
// dispatcher goroutine pulls admitted jobs, gathers up to BatchMax of
// them, and fans the batch across the worker pool; duplicate digests
// submitted while a job is queued or running coalesce onto the same
// Job rather than running twice.
type Pool struct {
	cfg    PoolConfig
	ctx    context.Context // cancelled to force-abort in-flight work
	cancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	inflight map[string]*Job
	queue    chan *Job
	drained  chan struct{} // closed when the dispatcher exits

	// Shared counters follow the pdessafety discipline for state
	// touched from runner.Map workers and concurrent submitters: every
	// access is an atomic.Uint64 Add/Load, never a bare x++ (a
	// read-modify-write the lint would flag as a racy counter).
	// submitted/coalesced/rejected are bumped by Submit callers under
	// mu; completed/failed/batches are bumped from batch completions on
	// worker goroutines.
	submitted, coalesced, rejected atomic.Uint64
	completed, failed, batches     atomic.Uint64
}

// NewPool starts a pool's dispatcher.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Exec == nil {
		panic("serve: PoolConfig.Exec is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 2 * cfg.Workers
		if cfg.BatchMax < 4 {
			cfg.BatchMax = 4
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
		drained:  make(chan struct{}),
	}
	go p.dispatch()
	return p
}

// Submit admits a job for the spec (already normalized and validated).
// It returns the job to wait on and whether this submission coalesced
// onto an already in-flight duplicate. It fails fast with ErrQueueFull
// when the admission queue is full and ErrShuttingDown after Close.
func (p *Pool) Submit(digest string, spec Spec) (j *Job, coalesced bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false, ErrShuttingDown
	}
	if j := p.inflight[digest]; j != nil {
		p.coalesced.Add(1)
		return j, true, nil
	}
	j = &Job{Digest: digest, Spec: spec, done: make(chan struct{})}
	select {
	case p.queue <- j:
		p.inflight[digest] = j
		p.submitted.Add(1)
		return j, false, nil
	default:
		p.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
}

// Running reports whether digest is admitted but not yet finished.
func (p *Pool) Running(digest string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight[digest] != nil
}

// Close shuts the pool down gracefully: no new submissions are
// admitted, queued and running jobs drain, and waiters are released.
// If ctx expires before the drain completes, in-flight work is
// force-cancelled (jobs finish with a cancellation error) and Close
// returns ctx.Err(). Close is idempotent.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	select {
	case <-p.drained:
		return nil
	case <-ctx.Done():
		p.cancel()
		<-p.drained
		return ctx.Err()
	}
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	inflight := len(p.inflight)
	p.mu.Unlock()
	return PoolStats{
		Submitted: p.submitted.Load(),
		Coalesced: p.coalesced.Load(),
		Rejected:  p.rejected.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Batches:   p.batches.Load(),
		Inflight:  inflight,
	}
}

// dispatch is the pool's single dispatcher loop: pull one job
// (blocking), top the batch up without blocking, run the batch, repeat
// until the queue is closed and empty.
func (p *Pool) dispatch() {
	defer close(p.drained)
	for {
		j, ok := <-p.queue
		if !ok {
			return
		}
		batch := []*Job{j}
	fill:
		for len(batch) < p.cfg.BatchMax {
			select {
			case j2, ok := <-p.queue:
				if !ok {
					break fill
				}
				batch = append(batch, j2)
			default:
				break fill
			}
		}
		p.runBatch(batch)
	}
}

// outcome is a worker's return value; finalization happens on the
// dispatcher after runner.Map so workers never write shared state.
type outcome struct {
	entry *Entry
	reg   *metrics.Registry
	err   error
}

func (p *Pool) runBatch(batch []*Job) {
	p.batches.Add(1)
	results, panics := runner.Map(runner.Options{
		Parallel: p.cfg.Workers,
		Context:  p.ctx,
		Label:    func(i int) string { return batch[i].Digest },
	}, len(batch), func(i int) outcome {
		ctx := p.ctx
		if p.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.cfg.JobTimeout)
			defer cancel()
		}
		entry, reg, err := p.cfg.Exec(ctx, batch[i].Digest, batch[i].Spec)
		return outcome{entry: entry, reg: reg, err: err}
	})

	panicked := make(map[int]*runner.Panic, len(panics))
	for _, pc := range panics {
		panicked[pc.Index] = pc
	}
	for i, j := range batch {
		switch {
		case panicked[i] != nil:
			j.err = fmt.Errorf("serve: job %s: %w", j.Digest, panicked[i])
		case results[i].entry == nil && results[i].err == nil:
			// Skipped by the runner: the pool was force-cancelled before
			// this job started.
			j.err = ErrShuttingDown
		default:
			j.entry, j.reg, j.err = results[i].entry, results[i].reg, results[i].err
		}
		if j.err != nil {
			p.failed.Add(1)
		} else {
			p.completed.Add(1)
		}
		if p.cfg.Done != nil {
			p.cfg.Done(j)
		}
		p.mu.Lock()
		delete(p.inflight, j.Digest)
		p.mu.Unlock()
		close(j.done)
	}
}
