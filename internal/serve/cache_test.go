package serve

import (
	"fmt"
	"testing"
)

func entryOf(digest string, bodyBytes int) *Entry {
	return &Entry{Digest: digest, Body: make([]byte, bodyBytes)}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned an entry")
	}
	e := entryOf("a", 100)
	c.Put(e)
	got, ok := c.Get("a")
	if !ok || got != e {
		t.Fatalf("Get after Put = (%v, %v)", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes != e.size() {
		t.Fatalf("bytes = %d, want %d", st.Bytes, e.size())
	}
}

// TestCacheEvictsLRU: filling past the byte bound evicts the least
// recently *used* entry, and a Get refreshes recency.
func TestCacheEvictsLRU(t *testing.T) {
	// Three 400-byte bodies fit a 1350-byte cache; a fourth evicts.
	c := NewCache(1350)
	for _, d := range []string{"a", "b", "c"} {
		c.Put(entryOf(d, 400))
	}
	c.Get("a") // refresh a: b is now LRU
	c.Put(entryOf("d", 400))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, d := range []string{"a", "c", "d"} {
		if _, ok := c.Get(d); !ok {
			t.Fatalf("entry %s was evicted, want b evicted", d)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestCacheEvictsEnough: one big insert can push out several entries.
func TestCacheEvictsEnough(t *testing.T) {
	c := NewCache(1000)
	for i := 0; i < 4; i++ {
		c.Put(entryOf(fmt.Sprintf("e%d", i), 200))
	}
	c.Put(entryOf("big", 700))
	st := c.Stats()
	if st.Bytes > 1000 {
		t.Fatalf("cache holds %d bytes, bound 1000", st.Bytes)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("newly inserted entry was not retained")
	}
}

// TestCacheOversizeEntry: an entry larger than the whole cache is not
// admitted and does not flush the existing population.
func TestCacheOversizeEntry(t *testing.T) {
	c := NewCache(500)
	c.Put(entryOf("keep", 100))
	c.Put(entryOf("huge", 10000))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversize entry was admitted")
	}
	if _, ok := c.Get("keep"); !ok {
		t.Fatal("oversize insert flushed an existing entry")
	}
}

// TestCacheDuplicatePut: content addressing means a duplicate Put is a
// recency refresh, not a second copy.
func TestCacheDuplicatePut(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put(entryOf("a", 100))
	c.Put(entryOf("a", 100))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != entryOf("a", 100).size() {
		t.Fatalf("duplicate Put changed accounting: %+v", st)
	}
}

// TestCacheTraceCounted: trace bytes count against the bound.
func TestCacheTraceCounted(t *testing.T) {
	c := NewCache(1 << 20)
	e := &Entry{Digest: "t", Body: make([]byte, 10), Trace: make([]byte, 90)}
	c.Put(e)
	if st := c.Stats(); st.Bytes != int64(len("t")+10+90) {
		t.Fatalf("bytes = %d, want body+trace+digest", st.Bytes)
	}
}
