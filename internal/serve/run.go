package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"cenju4/internal/machine"
	"cenju4/internal/metrics"
	"cenju4/internal/npb"
	"cenju4/internal/trace"
)

// Summary is the result section of a job payload: the workload-level
// figures the CLIs print, plus the machine result's own content digest
// (machine.Digest), which ties a served payload back to the golden
// regression machinery — two payloads with equal result digests came
// from byte-identical simulations.
type Summary struct {
	TimeNs           uint64  `json:"time_ns"`
	Events           uint64  `json:"events"`
	Instructions     uint64  `json:"instructions"`
	MemAccesses      uint64  `json:"mem_accesses"`
	MissRatio        float64 `json:"miss_ratio"`
	PrivateMissShare float64 `json:"private_miss_share"`
	LocalMissShare   float64 `json:"local_miss_share"`
	RemoteMissShare  float64 `json:"remote_miss_share"`
	SyncFraction     float64 `json:"sync_fraction"`
	RewriteRatio     float64 `json:"rewrite_ratio"`
	ResultDigest     string  `json:"result_digest"`
}

// Payload is the JSON document served for a finished job. Marshalling
// is deterministic (fixed field order, canonical metrics JSON), so for
// a given spec the payload bytes are identical across runs, workers
// and processes — the property the cache and the soak test rely on.
type Payload struct {
	Digest  string          `json:"digest"`
	Spec    Spec            `json:"spec"`
	Result  Summary         `json:"result"`
	Metrics json.RawMessage `json:"metrics"`
}

// Execute runs one validated, normalized spec to completion and
// renders its cache entry. It honours ctx (wall-clock timeout,
// shutdown) and maxEvents (per-job event budget) via
// machine.RunContext, and validates machine-wide coherence before
// trusting the result. intraWorkers caps the PDES shard threads of a
// spec with IntraParallel > 1 (0 = one per shard, up to GOMAXPROCS);
// the server derives it with runner.NestedBudget so pool workers times
// shard workers stays within the process budget.
func Execute(ctx context.Context, dig string, spec Spec, maxEvents uint64, intraWorkers int) (*Entry, *metrics.Registry, error) {
	app, err := npb.ParseApp(spec.App)
	if err != nil {
		return nil, nil, err
	}
	variant, err := npb.ParseVariant(spec.Variant)
	if err != nil {
		return nil, nil, err
	}
	w, err := npb.Build(npb.Options{
		App:            app,
		Variant:        variant,
		Nodes:          spec.Nodes,
		DataMapping:    !spec.NoMapping,
		Iterations:     spec.Iterations,
		Scale:          spec.Scale,
		UpdateProtocol: spec.UpdateProtocol,
	})
	if err != nil {
		return nil, nil, err
	}
	m := machine.New(machine.Config{
		Nodes:         spec.Nodes,
		Stages:        spec.Stages,
		Multicast:     !spec.NoMulticast,
		Mode:          spec.mode(),
		UpdateMode:    w.UpdateMode,
		Fault:         spec.fault(),
		IntraParallel: spec.IntraParallel,
		IntraWorkers:  intraWorkers,
	})
	var col *trace.Collector
	if spec.TraceMax > 0 {
		col = trace.NewCollector(spec.TraceMax)
		m.SetTracer(col.Tracer())
	}
	r, err := m.RunContext(ctx, w.Progs, maxEvents)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, nil, fmt.Errorf("serve: coherence violated by %s/%s: %w", spec.App, spec.Variant, err)
	}

	reg := metrics.New()
	reg.Gauge("run/seed").Peak(spec.Seed)
	m.MetricsInto(reg)
	var regJSON bytes.Buffer
	if err := reg.WriteJSON(&regJSON); err != nil {
		return nil, nil, err
	}

	tot := r.Totals()
	misses := float64(tot.Misses)
	if misses == 0 {
		misses = 1
	}
	syncFrac := 0.0
	if r.Time > 0 {
		syncFrac = float64(tot.SyncTime) / (float64(r.Time) * float64(spec.Nodes))
	}
	sum := Summary{
		TimeNs:           r.Time.Nanoseconds(),
		Events:           r.Events,
		Instructions:     tot.Instructions,
		MemAccesses:      tot.MemAccesses,
		MissRatio:        tot.MissRatio(),
		PrivateMissShare: float64(tot.PrivateMisses) / misses,
		LocalMissShare:   float64(tot.LocalMisses) / misses,
		RemoteMissShare:  float64(tot.RemoteMisses) / misses,
		SyncFraction:     syncFrac,
		RewriteRatio:     w.Meta.RewriteRatio,
		ResultDigest:     machine.Digest(r),
	}
	body, err := json.MarshalIndent(Payload{
		Digest:  dig,
		Spec:    spec,
		Result:  sum,
		Metrics: json.RawMessage(bytes.TrimSpace(regJSON.Bytes())),
	}, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	body = append(body, '\n')

	e := &Entry{Digest: dig, Body: body}
	if col != nil {
		var tr bytes.Buffer
		label := fmt.Sprintf("%s/%s nodes=%d seed=%d", spec.App, spec.Variant, spec.Nodes, spec.Seed)
		if _, err := trace.WriteChrome(&tr, col.Stream(label)); err != nil {
			return nil, nil, err
		}
		e.Trace = tr.Bytes()
	}
	return e, reg, nil
}
