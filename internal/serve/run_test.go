package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"cenju4/internal/machine"
)

func runSpec(t *testing.T) Spec {
	t.Helper()
	s := Spec{App: "cg", Variant: "dsm2", Nodes: 8, Iterations: 1, Scale: 0.02, Seed: 7}.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExecuteDeterministic: the same spec executed twice renders
// byte-identical payloads — the property that makes digests cache keys.
func TestExecuteDeterministic(t *testing.T) {
	spec := runSpec(t)
	dig := spec.Digest()
	a, _, err := Execute(context.Background(), dig, spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(context.Background(), dig, spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("two executions of one spec rendered different payloads")
	}

	var doc Payload
	if err := json.Unmarshal(a.Body, &doc); err != nil {
		t.Fatalf("payload is not valid JSON: %v", err)
	}
	if doc.Digest != dig {
		t.Fatalf("payload digest %s, want %s", doc.Digest, dig)
	}
	if doc.Result.Events == 0 || doc.Result.TimeNs == 0 {
		t.Fatalf("payload result looks empty: %+v", doc.Result)
	}
	if doc.Result.ResultDigest == "" {
		t.Fatal("payload missing the machine result digest")
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("payload missing embedded metrics JSON")
	}
}

// TestExecuteTrace: trace_max > 0 yields a Chrome-trace payload;
// omitting it yields none, and tracing does not perturb the simulation
// result.
func TestExecuteTrace(t *testing.T) {
	plain := runSpec(t)
	traced := plain
	traced.TraceMax = 4096

	pe, _, err := Execute(context.Background(), plain.Digest(), plain, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	te, _, err := Execute(context.Background(), traced.Digest(), traced, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.Trace) != 0 {
		t.Fatal("untraced spec produced trace bytes")
	}
	if len(te.Trace) == 0 {
		t.Fatal("traced spec produced no trace bytes")
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(te.Trace, &chrome); err != nil {
		t.Fatalf("trace is not Chrome-trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	var pd, td Payload
	if err := json.Unmarshal(pe.Body, &pd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(te.Body, &td); err != nil {
		t.Fatal(err)
	}
	if pd.Result.ResultDigest != td.Result.ResultDigest {
		t.Fatal("tracing perturbed the simulation result digest")
	}
}

// TestExecuteIntraParallelIdentity: a PDES spec is a distinct cache
// entry (intra_parallel is digested) but its simulation is
// byte-identical to the sequential kernel's — the two payloads carry
// the same machine result digest.
func TestExecuteIntraParallelIdentity(t *testing.T) {
	seq := runSpec(t)
	par := seq
	par.IntraParallel = 4
	par = par.Normalize()
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	if par.Digest() == seq.Digest() {
		t.Fatal("intra_parallel did not split the cache keyspace")
	}
	se, _, err := Execute(context.Background(), seq.Digest(), seq, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pe, _, err := Execute(context.Background(), par.Digest(), par, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sd, pd Payload
	if err := json.Unmarshal(se.Body, &sd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pe.Body, &pd); err != nil {
		t.Fatal(err)
	}
	if sd.Result.ResultDigest != pd.Result.ResultDigest {
		t.Fatalf("intra_parallel perturbed the simulation: %s vs %s",
			pd.Result.ResultDigest, sd.Result.ResultDigest)
	}
}

// TestExecuteEventBudget: a tiny event budget aborts the run with
// machine.ErrEventBudget rather than returning a partial result.
func TestExecuteEventBudget(t *testing.T) {
	spec := runSpec(t)
	e, _, err := Execute(context.Background(), spec.Digest(), spec, 100, 0)
	if !errors.Is(err, machine.ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if e != nil {
		t.Fatal("budget-aborted run returned an entry")
	}
}

// TestExecuteCancelled: a pre-cancelled context aborts immediately.
func TestExecuteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := runSpec(t)
	if _, _, err := Execute(ctx, spec.Digest(), spec, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecuteRecoverableFault: a lossy fault plan threads all the way
// into the machine — the run still completes (recovery masks the
// losses), its payload is deterministic, and the injector's ledger
// shows up in the embedded metrics.
func TestExecuteRecoverableFault(t *testing.T) {
	spec := runSpec(t)
	spec.Fault = "light-loss"
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	dig := spec.Digest()
	a, _, err := Execute(context.Background(), dig, spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(context.Background(), dig, spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("faulty executions of one spec rendered different payloads")
	}
	if !bytes.Contains(a.Body, []byte("faults/candidates")) {
		t.Fatal("payload metrics missing the fault injector's ledger")
	}

	clean := runSpec(t)
	ce, _, err := Execute(context.Background(), clean.Digest(), clean, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cd, fd Payload
	if err := json.Unmarshal(ce.Body, &cd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(a.Body, &fd); err != nil {
		t.Fatal(err)
	}
	if cd.Result.ResultDigest == fd.Result.ResultDigest {
		t.Fatal("fault plan did not perturb the simulation (injector not threaded?)")
	}
}

// TestExecuteUnrecoverableFaultTripsWatchdog: a plan that wedges the
// protocol surfaces as machine.ErrDeadlock — never a hang, never a
// partial payload — which the HTTP layer classifies as a watchdog
// abort (TestJobAbortClassification).
func TestExecuteUnrecoverableFaultTripsWatchdog(t *testing.T) {
	spec := runSpec(t)
	// Unmapped shared data keeps dirty blocks remote from their homes,
	// so the workload genuinely depends on the forward leg this plan
	// severs; the mapped variant never needs one.
	spec.NoMapping = true
	spec.Fault = "drop=1,scope=forwards,timeout=20000,retries=2"
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _, err := Execute(context.Background(), spec.Digest(), spec, 0, 0)
	if !errors.Is(err, machine.ErrDeadlock) {
		t.Fatalf("err = %v, want machine.ErrDeadlock", err)
	}
	if e != nil {
		t.Fatal("watchdog-aborted run returned an entry")
	}
	var de *machine.DeadlockError
	if !errors.As(err, &de) || de.Diagnosis == "" {
		t.Fatalf("watchdog abort carries no diagnosis: %v", err)
	}
}

// TestServerRealExecutor: the whole stack with no stub — POST runs a
// real simulation, the repeat is a byte-identical cache hit, and the
// trace endpoint serves the Chrome payload.
func TestServerRealExecutor(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	spec := `{"app":"cg","variant":"dsm2","nodes":8,"iterations":1,"scale":0.02,"trace_max":2048}`

	first := postSpec(t, ts, spec)
	firstBody := readAll(t, first)
	if first.StatusCode != 200 {
		t.Fatalf("POST: %d %s", first.StatusCode, firstBody)
	}
	second := postSpec(t, ts, spec)
	secondBody := readAll(t, second)
	if second.Header.Get(HeaderCache) != CacheHit {
		t.Fatalf("repeat disposition %q", second.Header.Get(HeaderCache))
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("repeat POST body differs")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + first.Header.Get(HeaderDigest) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("trace GET: %d %s", resp.StatusCode, tr)
	}
	if !bytes.Contains(tr, []byte("traceEvents")) {
		t.Fatal("trace endpoint did not serve Chrome-trace JSON")
	}
}
