package serve

import (
	"container/list"
	"sync"
)

// Entry is one cached job result: the rendered response payload plus
// the optional Chrome-trace export. Entries are immutable after Put —
// handlers write the byte slices to the wire verbatim, which is what
// makes repeated GETs byte-identical.
type Entry struct {
	// Digest is the spec's content address.
	Digest string
	// Body is the canonical JSON response payload of POST /v1/jobs and
	// GET /v1/jobs/{digest}.
	Body []byte
	// Trace is the Chrome-trace-event JSON (empty unless the spec
	// requested tracing).
	Trace []byte
}

// size is the entry's accounting weight in the byte-bounded cache.
func (e *Entry) size() int64 {
	return int64(len(e.Digest) + len(e.Body) + len(e.Trace))
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

// Cache is a thread-safe LRU of result entries bounded by total bytes.
// Content addressing makes it trivially coherent: an entry for a
// digest can only ever hold one value, so eviction is purely a cost
// decision — a re-run regenerates the identical bytes.
type Cache struct {
	mu        sync.Mutex
	max       int64
	size      int64
	entries   map[string]*list.Element // digest -> element holding *Entry
	order     *list.List               // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache returns an empty cache bounded to maxBytes of entry weight.
// maxBytes <= 0 disables caching (every Get misses, Put drops).
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the entry for digest, marking it most recently used.
func (c *Cache) Get(digest string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[digest]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Put inserts an entry, evicting least-recently-used entries until the
// byte bound holds. An entry larger than the whole cache is not stored
// (and counts as an eviction): admitting it would flush everything for
// a single tenant.
func (c *Cache) Put(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.Digest]; ok {
		// Content-addressed: same digest means same bytes; just refresh
		// recency.
		c.order.MoveToFront(el)
		return
	}
	if e.size() > c.max {
		c.evictions++
		return
	}
	c.entries[e.Digest] = c.order.PushFront(e)
	c.size += e.size()
	for c.size > c.max {
		back := c.order.Back()
		victim := back.Value.(*Entry)
		c.order.Remove(back)
		delete(c.entries, victim.Digest)
		c.size -= victim.size()
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.size,
		MaxBytes:  c.max,
	}
}
