package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cenju4/internal/metrics"
)

// stubExec returns an Exec that renders a tiny entry after an optional
// gate, counting invocations.
type stubExec struct {
	runs  atomic.Int64
	gate  chan struct{} // if non-nil, exec blocks until closed
	delay time.Duration
}

func (s *stubExec) exec(ctx context.Context, dig string, spec Spec) (*Entry, *metrics.Registry, error) {
	s.runs.Add(1)
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return &Entry{Digest: dig, Body: []byte("body:" + dig + "\n")}, nil, nil
}

func TestPoolRunsJob(t *testing.T) {
	st := &stubExec{}
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 8, Exec: st.exec})
	defer p.Close(context.Background())
	j, coalesced, err := p.Submit("d1", Spec{})
	if err != nil || coalesced {
		t.Fatalf("Submit = (%v, %v)", coalesced, err)
	}
	e, err := j.Wait(context.Background())
	if err != nil || string(e.Body) != "body:d1\n" {
		t.Fatalf("Wait = (%q, %v)", e.Body, err)
	}
	if st.runs.Load() != 1 {
		t.Fatalf("exec ran %d times, want 1", st.runs.Load())
	}
}

// TestPoolCoalesces: concurrent submissions of one digest share a
// single execution, and every waiter gets the same entry.
func TestPoolCoalesces(t *testing.T) {
	st := &stubExec{gate: make(chan struct{})}
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 8, Exec: st.exec})
	defer p.Close(context.Background())

	first, coalesced, err := p.Submit("dup", Spec{})
	if err != nil || coalesced {
		t.Fatalf("first Submit = (%v, %v)", coalesced, err)
	}
	// Wait until the job is actually executing so later submissions
	// must coalesce rather than racing the queue.
	for st.runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	entries := make([]*Entry, 10)
	for i := range entries {
		j, coalesced, err := p.Submit("dup", Spec{})
		if err != nil || !coalesced {
			t.Fatalf("duplicate Submit %d = (%v, %v), want coalesced", i, coalesced, err)
		}
		if j != first {
			t.Fatalf("duplicate Submit %d returned a different job", i)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], _ = j.Wait(context.Background())
		}(i)
	}
	close(st.gate)
	wg.Wait()
	ref, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		if e != ref {
			t.Fatalf("waiter %d got a different entry", i)
		}
	}
	if st.runs.Load() != 1 {
		t.Fatalf("exec ran %d times for one digest, want 1", st.runs.Load())
	}
	if p.Stats().Coalesced != 10 {
		t.Fatalf("coalesced = %d, want 10", p.Stats().Coalesced)
	}
}

// TestPoolQueueFull: admissions beyond QueueDepth are rejected
// distinctly and immediately, not queued.
func TestPoolQueueFull(t *testing.T) {
	st := &stubExec{gate: make(chan struct{})}
	p := NewPool(PoolConfig{Workers: 1, BatchMax: 4, QueueDepth: 2, Exec: st.exec})
	defer func() { close(st.gate); p.Close(context.Background()) }()

	// One job occupies the dispatcher (blocked on the gate); two more
	// fill the queue; the next must bounce.
	var admitted int
	var rejected int
	for i := 0; i < 8; i++ {
		_, _, err := p.Submit(fmt.Sprintf("d%d", i), Spec{})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Fatalf("no submission was rejected (admitted %d)", admitted)
	}
	if got := p.Stats().Rejected; got != uint64(rejected) {
		t.Fatalf("Rejected counter = %d, want %d", got, rejected)
	}
}

// TestPoolGracefulClose: Close drains queued jobs; waiters get real
// results, and later submissions are refused.
func TestPoolGracefulClose(t *testing.T) {
	st := &stubExec{}
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 16, Exec: st.exec})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, _, err := p.Submit(fmt.Sprintf("d%d", i), Spec{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, j := range jobs {
		if e, err := j.Wait(context.Background()); err != nil || e == nil {
			t.Fatalf("job %d not drained: %v", i, err)
		}
	}
	if _, _, err := p.Submit("late", Spec{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-Close Submit = %v, want ErrShuttingDown", err)
	}
	if st.runs.Load() != 8 {
		t.Fatalf("exec ran %d times, want 8", st.runs.Load())
	}
}

// TestPoolForcedClose: when the drain deadline expires, in-flight jobs
// are cancelled and waiters are released with an error instead of
// hanging.
func TestPoolForcedClose(t *testing.T) {
	st := &stubExec{gate: make(chan struct{})} // never closed: jobs hang
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 8, Exec: st.exec})
	j, _, err := p.Submit("stuck", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close = %v, want DeadlineExceeded", err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("force-cancelled job completed without error")
	}
}

// TestPoolJobTimeout: a job exceeding JobTimeout fails with
// DeadlineExceeded while other jobs are unaffected.
func TestPoolJobTimeout(t *testing.T) {
	slow := &stubExec{gate: make(chan struct{})} // blocks forever
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 8, JobTimeout: 30 * time.Millisecond, Exec: slow.exec})
	defer p.Close(context.Background())
	j, _, err := p.Submit("slow", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow job err = %v, want DeadlineExceeded", err)
	}
	if p.Stats().Failed != 1 {
		t.Fatalf("failed = %d, want 1", p.Stats().Failed)
	}
}
