package shmem

import (
	"testing"
	"testing/quick"

	"cenju4/internal/topology"
)

func TestMapNoneHomesEverythingAtZero(t *testing.T) {
	a := NewAllocator(16)
	r := a.Shared("u", 1000, MapNone)
	for i := 0; i < 1000; i += 37 {
		if r.Home(i) != 0 {
			t.Fatalf("element %d homed at %v, want 0", i, r.Home(i))
		}
	}
}

func TestMapBlockedHomesChunksLocally(t *testing.T) {
	a := NewAllocator(4)
	r := a.Shared("u", 64, MapBlocked) // 16 elements per node
	for i := 0; i < 64; i++ {
		want := topology.NodeID(i / 16)
		if r.Home(i) != want {
			t.Fatalf("element %d homed at %v, want %v", i, r.Home(i), want)
		}
	}
	lo, hi := r.OwnerRange(2)
	if lo != 32 || hi != 48 {
		t.Fatalf("OwnerRange(2) = %d,%d", lo, hi)
	}
}

func TestMapBlockedUnevenTail(t *testing.T) {
	a := NewAllocator(4)
	r := a.Shared("u", 10, MapBlocked) // chunk=3: nodes get 3,3,3,1
	lo, hi := r.OwnerRange(3)
	if lo != 9 || hi != 10 {
		t.Fatalf("OwnerRange(3) = %d,%d, want 9,10", lo, hi)
	}
	if r.Home(9) != 3 {
		t.Fatalf("Home(9) = %v, want 3", r.Home(9))
	}
}

func TestMapCyclicRoundRobinByBlock(t *testing.T) {
	a := NewAllocator(4)
	// 16 elements per block (128/8): elements 0..15 block 0, 16..31 block 1...
	r := a.Shared("u", 256, MapCyclic)
	if r.Home(0) != 0 || r.Home(15) != 0 {
		t.Fatal("block 0 not homed at node 0")
	}
	if r.Home(16) != 1 || r.Home(47) != 2 {
		t.Fatalf("cyclic homes wrong: Home(16)=%v Home(47)=%v", r.Home(16), r.Home(47))
	}
	if r.Home(64) != 0 {
		t.Fatalf("wraparound: Home(64)=%v, want 0", r.Home(64))
	}
}

// Distinct regions must never overlap in the shared address space.
func TestRegionsDoNotOverlap(t *testing.T) {
	a := NewAllocator(4)
	r1 := a.Shared("u", 100, MapBlocked)
	r2 := a.Shared("v", 100, MapBlocked)
	r3 := a.Shared("w", 100, MapNone)
	seen := map[topology.Addr]string{}
	for _, r := range []*Region{r1, r2, r3} {
		for i := 0; i < r.Len(); i++ {
			blk := r.Addr(i).Block()
			if owner, ok := seen[blk]; ok && owner != r.Name() {
				t.Fatalf("block %v shared by regions %s and %s", blk, owner, r.Name())
			}
			seen[blk] = r.Name()
		}
	}
}

func TestPrivateRegions(t *testing.T) {
	a := NewAllocator(4)
	p1 := a.Private("scratch", 64)
	p2 := a.Private("buf", 64)
	if p1.Addr(0).Shared() {
		t.Fatal("private address marked shared")
	}
	if p1.Addr(63).Block() == p2.Addr(0).Block() {
		t.Fatal("private regions overlap")
	}
	if p1.Len() != 64 {
		t.Fatalf("Len() = %d", p1.Len())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := NewAllocator(4)
	r := a.Shared("u", 10, MapBlocked)
	p := a.Private("p", 10)
	for name, fn := range map[string]func(){
		"shared over":  func() { r.Addr(10) },
		"shared under": func() { r.Addr(-1) },
		"priv over":    func() { p.Addr(10) },
		"empty region": func() { a.Shared("bad", 0, MapNone) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every address decodes back to a consistent home and all
// addresses within a region are distinct.
func TestPropertyAddressesDistinct(t *testing.T) {
	f := func(rawNodes, rawElems uint8, m uint8) bool {
		nodes := 1 << (rawNodes % 5) // 1..16
		elems := 1 + int(rawElems)
		a := NewAllocator(nodes)
		r := a.Shared("u", elems, Mapping(m%3))
		seen := map[topology.Addr]bool{}
		for i := 0; i < elems; i++ {
			ad := r.Addr(i)
			if seen[ad] {
				return false
			}
			seen[ad] = true
			if int(ad.Home()) >= nodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingString(t *testing.T) {
	if MapNone.String() != "none" || MapBlocked.String() != "blocked" || MapCyclic.String() != "cyclic" {
		t.Fatal("mapping strings wrong")
	}
}
