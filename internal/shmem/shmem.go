// Package shmem is the shared memory library of the paper's Section
// 4.2: it allocates distributed shared arrays, applies the data
// mappings that programs specify to localize accesses, and allocates
// private (per-node) arrays for the optimized dsm(2) variants that map
// shared data into private memory.
//
// "No data mappings" places every shared block in node 0's memory (the
// default placement); blocked and cyclic mappings distribute blocks so
// each node's partition is homed locally — the single most important
// optimization the paper evaluates (Table 3's local/remote shifts).
package shmem

import (
	"fmt"

	"cenju4/internal/topology"
)

// ElemSize is the element size of all workload arrays (float64).
const ElemSize = 8

// Mapping selects a shared region's block placement.
type Mapping uint8

const (
	// MapNone homes every block at node 0 ("no data mappings").
	MapNone Mapping = iota
	// MapBlocked gives each node one contiguous chunk, homed locally.
	MapBlocked
	// MapCyclic distributes blocks round-robin across nodes.
	MapCyclic
)

func (m Mapping) String() string {
	switch m {
	case MapNone:
		return "none"
	case MapBlocked:
		return "blocked"
	case MapCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Mapping(%d)", uint8(m))
}

// Allocator manages the shared and private address spaces of a machine.
type Allocator struct {
	nodes      int
	sharedOff  []uint64 // per-node shared bump pointer (block aligned)
	privateOff uint64   // SPMD private bump pointer (same layout every node)
}

// NewAllocator returns an allocator for a machine of n nodes.
//
// Each home's allocation space starts at a node-dependent skew. Without
// it, every node's partition of every region would begin at offset 0 of
// its home and all partitions would collide in the same low cache sets
// (the cache indexes offset bits only — the node number sits above
// them), a systematic aliasing pathology that real systems avoid
// because the OS places physical pages at varied offsets.
func NewAllocator(n int) *Allocator {
	a := &Allocator{nodes: n, sharedOff: make([]uint64, n)}
	for i := range a.sharedOff {
		a.sharedOff[i] = uint64((i*9973)%4096) * topology.BlockSize
	}
	return a
}

// Region is a distributed shared array of float64 elements.
type Region struct {
	name    string
	elems   int
	mapping Mapping
	nodes   int
	chunk   int      // elements per node chunk (blocked mapping)
	bases   []uint64 // per-home base offset of this region's storage
	sizes   []uint64 // per-home storage size in bytes (block aligned)
}

// Shared allocates a shared region of elems elements under the given
// mapping.
func (a *Allocator) Shared(name string, elems int, m Mapping) *Region {
	if elems <= 0 {
		panic(fmt.Sprintf("shmem: region %q with %d elements", name, elems))
	}
	r := &Region{name: name, elems: elems, mapping: m, nodes: a.nodes}
	r.chunk = (elems + a.nodes - 1) / a.nodes
	// Reserve block-aligned storage at every home that will hold data.
	perHome := make([]uint64, a.nodes)
	switch m {
	case MapNone:
		perHome[0] = uint64(elems) * ElemSize
	case MapBlocked:
		for n := 0; n < a.nodes; n++ {
			lo, hi := r.ownerRange(n)
			if hi > lo {
				perHome[n] = uint64(hi-lo) * ElemSize
			}
		}
	case MapCyclic:
		blocks := (elems*ElemSize + topology.BlockSize - 1) / topology.BlockSize
		per := (blocks + a.nodes - 1) / a.nodes
		for n := 0; n < a.nodes; n++ {
			perHome[n] = uint64(per) * topology.BlockSize
		}
	}
	r.bases = make([]uint64, a.nodes)
	r.sizes = make([]uint64, a.nodes)
	for n := 0; n < a.nodes; n++ {
		r.bases[n] = a.sharedOff[n]
		sz := (perHome[n] + topology.BlockSize - 1) &^ (topology.BlockSize - 1)
		r.sizes[n] = sz
		a.sharedOff[n] += sz
	}
	return r
}

// Contains reports whether addr falls inside this region's storage —
// used to mark regions for the update-protocol extension.
func (r *Region) Contains(addr topology.Addr) bool {
	if !addr.Shared() {
		return false
	}
	h := int(addr.Home())
	if h >= r.nodes {
		return false
	}
	off := addr.Offset()
	return off >= r.bases[h] && off < r.bases[h]+r.sizes[h]
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Len returns the element count.
func (r *Region) Len() int { return r.elems }

// Mapping returns the region's mapping.
func (r *Region) Mapping() Mapping { return r.mapping }

func (r *Region) ownerRange(node int) (lo, hi int) {
	lo = node * r.chunk
	hi = lo + r.chunk
	if lo > r.elems {
		lo = r.elems
	}
	if hi > r.elems {
		hi = r.elems
	}
	return lo, hi
}

// OwnerRange returns the element range [lo,hi) that node's chunk covers
// (the owner-computes partition, independent of the mapping).
func (r *Region) OwnerRange(node topology.NodeID) (lo, hi int) {
	return r.ownerRange(int(node))
}

// Addr returns the physical address of element i.
func (r *Region) Addr(i int) topology.Addr {
	if i < 0 || i >= r.elems {
		panic(fmt.Sprintf("shmem: %s[%d] out of range (len %d)", r.name, i, r.elems))
	}
	switch r.mapping {
	case MapNone:
		return topology.SharedAddr(0, r.bases[0]+uint64(i)*ElemSize)
	case MapBlocked:
		home := i / r.chunk
		local := i - home*r.chunk
		return topology.SharedAddr(topology.NodeID(home), r.bases[home]+uint64(local)*ElemSize)
	case MapCyclic:
		byteOff := uint64(i) * ElemSize
		blk := byteOff / topology.BlockSize
		home := blk % uint64(r.nodes)
		localBlk := blk / uint64(r.nodes)
		return topology.SharedAddr(topology.NodeID(home),
			r.bases[home]+localBlk*topology.BlockSize+byteOff%topology.BlockSize)
	default:
		panic(fmt.Sprintf("shmem: %s has unknown mapping %d", r.name, r.mapping))
	}
}

// Home returns the home node of element i.
func (r *Region) Home(i int) topology.NodeID { return r.Addr(i).Home() }

// PrivRegion is a per-node private array: the same layout exists in
// every node's private memory, and accesses never generate coherence
// traffic.
type PrivRegion struct {
	name  string
	elems int
	base  uint64
}

// Private allocates a private region of elems elements (SPMD: one
// instance per node at the same offsets).
func (a *Allocator) Private(name string, elems int) *PrivRegion {
	if elems <= 0 {
		panic(fmt.Sprintf("shmem: private region %q with %d elements", name, elems))
	}
	r := &PrivRegion{name: name, elems: elems, base: a.privateOff}
	sz := (uint64(elems)*ElemSize + topology.BlockSize - 1) &^ (topology.BlockSize - 1)
	a.privateOff += sz
	return r
}

// Len returns the element count.
func (r *PrivRegion) Len() int { return r.elems }

// Addr returns the private address of element i (valid on any node; the
// address names that node's own memory).
func (r *PrivRegion) Addr(i int) topology.Addr {
	if i < 0 || i >= r.elems {
		panic(fmt.Sprintf("shmem: %s[%d] out of range (len %d)", r.name, i, r.elems))
	}
	return topology.PrivateAddr(r.base + uint64(i)*ElemSize)
}
