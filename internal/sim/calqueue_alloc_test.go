package sim

import "testing"

func sparseAllocNop(any) {}

// TestCalQueueSparseAllocs pins the sparse-horizon allocation fix: the
// BenchmarkEngineRunSparse schedule shape (16384 events spread over a
// 2^27 ns horizon, forcing the queue through its full rebuild ladder on
// the first round) must be allocation-free in steady state. Before the
// intrusive-list buckets, every push appended to a freshly rebuilt
// bucket slice and this shape cost ~25k allocations per round
// (BENCH_sim.json "after": 41818 allocs/op including the benchmark's
// own closures, vs 16474 with the fix — i.e. only the closures).
//
// The measured round uses AtCall with a static callback so the queue
// and the event pool are the only possible allocators.
func TestCalQueueSparseAllocs(t *testing.T) {
	eng := NewEngine()
	round := func() {
		tt := eng.Now() // rounds accumulate on the engine clock
		for j := 0; j < 16384; j++ {
			tt += Time(1 + (uint64(j)*2654435761)%(1<<27))
			eng.AtCall(tt, sparseAllocNop, nil)
		}
		eng.Run()
	}
	round() // warm: event pool filled, buckets grown to final ladder size
	if allocs := testing.AllocsPerRun(5, round); allocs > 8 {
		t.Fatalf("sparse steady-state round allocated %.0f times; want ~0 (per-push bucket allocation regressed)", allocs)
	}
}
