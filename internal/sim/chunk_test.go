package sim

import "testing"

// TestRunChunkEquivalentToRun: looping RunChunk with any limit fires
// the same events in the same order as one Run call.
func TestRunChunkEquivalentToRun(t *testing.T) {
	build := func() (*Engine, *[]int) {
		e := NewEngine()
		var order []int
		// Mixed schedule with nested reschedules, like the protocol's
		// self-continuing handler chains.
		for i := 0; i < 50; i++ {
			i := i
			e.At(Time(i%7)*10, func() {
				order = append(order, i)
				if i%5 == 0 {
					e.After(3, func() { order = append(order, 1000+i) })
				}
			})
		}
		return e, &order
	}

	ref, refOrder := build()
	ref.Run()

	for _, limit := range []uint64{1, 3, 64, 1 << 20} {
		e, order := build()
		var chunks int
		for {
			_, more := e.RunChunk(limit)
			chunks++
			if !more {
				break
			}
		}
		if e.Fired() != ref.Fired() {
			t.Fatalf("limit %d: fired %d events, Run fired %d", limit, e.Fired(), ref.Fired())
		}
		if len(*order) != len(*refOrder) {
			t.Fatalf("limit %d: %d callbacks, Run had %d", limit, len(*order), len(*refOrder))
		}
		for i := range *order {
			if (*order)[i] != (*refOrder)[i] {
				t.Fatalf("limit %d: order[%d]=%d, Run order %d", limit, i, (*order)[i], (*refOrder)[i])
			}
		}
		if limit == 1 && chunks < int(ref.Fired()) {
			t.Fatalf("limit 1 took %d chunks for %d events", chunks, ref.Fired())
		}
	}
}

// TestRunChunkLimit: a chunk never exceeds its event limit.
func TestRunChunkLimit(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {})
	}
	fired, more := e.RunChunk(30)
	if fired != 30 || !more {
		t.Fatalf("RunChunk(30) = (%d, %v), want (30, true)", fired, more)
	}
	fired, more = e.RunChunk(1000)
	if fired != 70 || more {
		t.Fatalf("second chunk = (%d, %v), want (70, false)", fired, more)
	}
}

// TestRunChunkIdleFunc: the idle func fires at queue drains inside a
// chunk, and work it schedules keeps the chunk going — identical to
// Run's quiescent-point contract.
func TestRunChunkIdleFunc(t *testing.T) {
	e := NewEngine()
	rounds := 0
	e.SetIdleFunc(func() {
		if rounds < 3 {
			rounds++
			e.After(5, func() {})
		}
	})
	e.At(0, func() {})
	fired, more := e.RunChunk(1 << 20)
	if more {
		t.Fatal("chunk reported work remaining after full drain")
	}
	if rounds != 3 {
		t.Fatalf("idle func ran %d rounds, want 3", rounds)
	}
	if fired != 4 { // the seed event + one per idle round
		t.Fatalf("fired %d events, want 4", fired)
	}
}

// TestRunChunkStop: Stop ends the chunk after the current event, and
// the next chunk clears it, like Run.
func TestRunChunkStop(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(i), func() {
			if i == 4 {
				e.Stop()
			}
		})
	}
	fired, more := e.RunChunk(1 << 20)
	if fired != 5 || !more {
		t.Fatalf("stopped chunk = (%d, %v), want (5, true)", fired, more)
	}
	fired, more = e.RunChunk(1 << 20)
	if fired != 5 || more {
		t.Fatalf("resumed chunk = (%d, %v), want (5, false)", fired, more)
	}
}
