package sim

// calQueue is a lazy-delete bucketed calendar queue (R. Brown, CACM
// 1988) specialized for the simulator's near-monotonic schedule: almost
// every insertion lands at or shortly after the current cursor, so a
// dequeue is an O(1) scan of the cursor bucket instead of an O(log n)
// heap sift. Power-of-two bucket widths keep indexing to a shift and a
// mask.
//
// Ordering contract (identical to the heap it replaced, proven by the
// differential test in calqueue_test.go): events dequeue in ascending
// (at, seq) order. The invariant that makes the cursor-bucket scan
// sufficient: every live event satisfies at >= bucketTop-width (the
// cursor window start) — push resets the cursor whenever an insertion
// would land before it — so all events due in the current window
// [bucketTop-width, bucketTop) hash to the cursor bucket itself, and
// the window minimum is the global minimum.
//
// Cancellation is lazy: Engine.Cancel only marks the event dead and
// adjusts counters; the entry is dropped when a scan or rebuild next
// touches it. Rebuilds re-spread events over 2x the live count in
// buckets and re-derive the width from the live span, so occupancy
// stays O(1) per bucket per year for self-similar schedules.
type calQueue struct {
	buckets [][]*Event
	mask    uint64 // len(buckets)-1; len is a power of two
	shift   uint   // bucket width = 1 << shift nanoseconds
	size    int    // live (non-canceled) events
	dead    int    // canceled events still resident in buckets
	cur     int    // cursor bucket index
	// bucketTop is the exclusive upper time bound of the cursor
	// bucket's active window.
	bucketTop Time
}

const calMinBuckets = 8

func (q *calQueue) init() {
	q.buckets = make([][]*Event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.shift = 0
	q.resetCursor(0)
}

func (q *calQueue) width() Time { return Time(1) << q.shift }

func (q *calQueue) bucketFor(t Time) int {
	return int((uint64(t) >> q.shift) & q.mask)
}

// resetCursor points the cursor at the bucket and window containing t.
func (q *calQueue) resetCursor(t Time) {
	q.cur = q.bucketFor(t)
	q.bucketTop = (t>>q.shift + 1) << q.shift
}

// push inserts ev, repositioning the cursor when the insertion lands
// before the current window (only possible for inserts at the engine's
// current time after the cursor drained past it — e.g. work scheduled
// by an idle callback).
//
//cenju4:hotpath
func (q *calQueue) push(ev *Event) {
	if q.size == 0 || ev.at < q.bucketTop-q.width() {
		q.resetCursor(ev.at)
	}
	b := q.bucketFor(ev.at)
	q.buckets[b] = append(q.buckets[b], ev)
	q.size++
	if q.size+q.dead > 2*len(q.buckets) {
		q.rebuild()
	}
}

// pop removes and returns the minimum live event by (at, seq), or nil
// when the queue is empty. Dead entries encountered on the way are
// dropped.
//
//cenju4:hotpath
func (q *calQueue) pop() *Event {
	if q.size == 0 {
		return nil
	}
	if q.dead > q.size && q.dead > 64 {
		q.rebuild() // mostly tombstones: compact
	}
	w := q.width()
	for scanned := 0; scanned < len(q.buckets); scanned++ {
		if ev := q.scanBucket(q.cur); ev != nil {
			q.size--
			return ev
		}
		q.cur = int(uint64(q.cur+1) & q.mask)
		q.bucketTop += w
	}
	// A full ring (one "year") without a due event: every live event is
	// more than nbuckets*width ahead. Find the global minimum directly
	// and restart the cursor there.
	ev := q.popMinDirect()
	q.size--
	return ev
}

// scanBucket removes and returns the minimum due event of bucket i
// (due: at < bucketTop), dropping dead entries as it goes.
func (q *calQueue) scanBucket(i int) *Event {
	b := q.buckets[i]
	best := -1
	for j := 0; j < len(b); {
		ev := b[j]
		if ev.dead {
			b[j] = b[len(b)-1]
			b[len(b)-1] = nil
			b = b[:len(b)-1]
			q.dead--
			continue
		}
		if ev.at < q.bucketTop &&
			(best < 0 || ev.at < b[best].at || (ev.at == b[best].at && ev.seq < b[best].seq)) {
			best = j
		}
		j++
	}
	q.buckets[i] = b
	if best < 0 {
		return nil
	}
	ev := b[best]
	b[best] = b[len(b)-1]
	b[len(b)-1] = nil
	q.buckets[i] = b[:len(b)-1]
	return ev
}

// popMinDirect removes and returns the global minimum by (at, seq) with
// a full sweep, and repositions the cursor at its window.
func (q *calQueue) popMinDirect() *Event {
	var best *Event
	bi := -1
	for i := range q.buckets {
		b := q.buckets[i]
		for j := 0; j < len(b); {
			ev := b[j]
			if ev.dead {
				b[j] = b[len(b)-1]
				b[len(b)-1] = nil
				b = b[:len(b)-1]
				q.dead--
				continue
			}
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
				bi = i
			}
			j++
		}
		q.buckets[i] = b
	}
	if best == nil {
		panic("sim: calendar queue lost an event") // size said otherwise
	}
	b := q.buckets[bi]
	for j, ev := range b {
		if ev == best {
			b[j] = b[len(b)-1]
			b[len(b)-1] = nil
			q.buckets[bi] = b[:len(b)-1]
			break
		}
	}
	q.resetCursor(best.at)
	return best
}

// rebuild re-spreads the live events over a bucket count sized for the
// population and a width sized for the live span, dropping tombstones.
func (q *calQueue) rebuild() {
	//cenju4:alloc-ok rebuilds are O(live) and amortize across the pushes that doubled occupancy
	live := make([]*Event, 0, q.size)
	for _, b := range q.buckets {
		for _, ev := range b {
			if !ev.dead {
				live = append(live, ev)
			}
		}
	}
	q.dead = 0
	q.size = len(live)

	nb := calMinBuckets
	for nb < 2*len(live) {
		nb <<= 1
	}
	//cenju4:alloc-ok same amortization as the live slice above
	q.buckets = make([][]*Event, nb)
	q.mask = uint64(nb) - 1

	// Width: the average inter-event gap of the live population, rounded
	// down to a power of two (min 1). With nb >= 2*size this spreads a
	// uniform schedule at <= 1 event per bucket per year.
	q.shift = 0
	if len(live) > 1 {
		lo, hi := live[0].at, live[0].at
		for _, ev := range live[1:] {
			if ev.at < lo {
				lo = ev.at
			}
			if ev.at > hi {
				hi = ev.at
			}
		}
		gap := (hi - lo) / Time(len(live))
		for q.shift < 40 && Time(1)<<(q.shift+1) <= gap {
			q.shift++
		}
		q.resetCursor(lo)
	} else if len(live) == 1 {
		q.resetCursor(live[0].at)
	} else {
		q.resetCursor(0)
	}
	for _, ev := range live {
		b := q.bucketFor(ev.at)
		q.buckets[b] = append(q.buckets[b], ev)
	}
}
