package sim

// calQueue is a lazy-delete bucketed calendar queue (R. Brown, CACM
// 1988) specialized for the simulator's near-monotonic schedule: almost
// every insertion lands at or shortly after the current cursor, so a
// dequeue is an O(1) scan of the cursor bucket instead of an O(log n)
// heap sift. Power-of-two bucket widths keep indexing to a shift and a
// mask.
//
// Buckets are intrusive singly-linked lists threaded through
// Event.next: a push is a pointer prepend, and scans, compactions and
// rebuilds relink events in place. The queue therefore allocates only
// when the bucket *count* grows (a rebuild to a larger power of two) —
// never per push — which is what keeps the sparse-horizon schedule
// allocation-free in steady state (see TestCalQueueSparseAllocs). The
// earlier slice-of-slices layout re-grew every bucket's backing array
// after each rebuild, costing tens of thousands of allocations per
// sparse run.
//
// Ordering contract (identical to the heap it replaced, proven by the
// differential test in calqueue_test.go): events dequeue in ascending
// (at, seq) order. The invariant that makes the cursor-bucket scan
// sufficient: every live event satisfies at >= bucketTop-width (the
// cursor window start) — push resets the cursor whenever an insertion
// would land before it — so all events due in the current window
// [bucketTop-width, bucketTop) hash to the cursor bucket itself, and
// the window minimum is the global minimum. Order within a bucket list
// is irrelevant: a dequeue drains the window into the due min-heap and
// pops its (at, seq) minimum, which is unique because sequence numbers
// are.
//
// Cancellation is lazy: Engine.Cancel only marks the event dead and
// adjusts counters; the entry is unlinked when a scan or rebuild next
// touches it. Rebuilds re-spread events over 2x the live count in
// buckets and re-derive the width from the live span, so occupancy
// stays O(1) per bucket per year for self-similar schedules.
type calQueue struct {
	buckets []*Event // head of each bucket's intrusive list
	mask    uint64   // len(buckets)-1; len is a power of two
	shift   uint     // bucket width = 1 << shift nanoseconds
	size    int      // live (non-canceled) events
	dead    int      // canceled events still resident in buckets or due
	cur     int      // cursor bucket index
	// bucketTop is the exclusive upper time bound of the cursor
	// bucket's active window.
	bucketTop Time
	// due is a binary min-heap (by (at, seq)) of events already unlinked
	// from the cursor bucket because they fall inside the active window.
	// Extracting the whole window once and heap-ordering it makes a
	// same-timestamp burst of k events cost O(k log k) total instead of
	// the O(k^2) a per-pop rescan of the bucket list costs — the
	// difference between milliseconds and microseconds for a 1024-node
	// invalidation storm, whose deliveries all land on one tick. The
	// slice is scratch storage, reused across pops.
	due []*Event
}

const calMinBuckets = 8

func (q *calQueue) init() {
	q.buckets = make([]*Event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.shift = 0
	q.resetCursor(0)
}

func (q *calQueue) width() Time { return Time(1) << q.shift }

func (q *calQueue) bucketFor(t Time) int {
	return int((uint64(t) >> q.shift) & q.mask)
}

// resetCursor points the cursor at the bucket and window containing t.
func (q *calQueue) resetCursor(t Time) {
	q.cur = q.bucketFor(t)
	q.bucketTop = (t>>q.shift + 1) << q.shift
}

// push inserts ev, repositioning the cursor when the insertion lands
// before the current window (only possible for inserts at the engine's
// current time after the cursor drained past it — e.g. work scheduled
// by an idle callback).
//
//cenju4:hotpath
func (q *calQueue) push(ev *Event) {
	if q.size == 0 || ev.at < q.bucketTop-q.width() {
		q.resetCursor(ev.at)
	}
	b := q.bucketFor(ev.at)
	ev.next = q.buckets[b]
	q.buckets[b] = ev
	q.size++
	if q.size+q.dead > 2*len(q.buckets) {
		q.rebuild()
	}
}

// pop removes and returns the minimum live event by (at, seq), or nil
// when the queue is empty. Dead entries encountered on the way are
// dropped.
//
//cenju4:hotpath
func (q *calQueue) pop() *Event {
	if q.size == 0 {
		return nil
	}
	if q.dead > q.size && q.dead > 64 {
		q.rebuild() // mostly tombstones: compact
	}
	w := q.width()
	for scanned := 0; scanned < len(q.buckets); scanned++ {
		q.drainDue(q.cur)
		q.pruneDueHead()
		if len(q.due) > 0 && q.due[0].at < q.bucketTop {
			q.size--
			return q.heapPop()
		}
		q.cur = int(uint64(q.cur+1) & q.mask)
		q.bucketTop += w
	}
	// A full ring (one "year") without a due event: every live event is
	// more than nbuckets*width ahead. Find the global minimum directly
	// and restart the cursor there.
	ev := q.popMinDirect()
	q.size--
	return ev
}

// drainDue unlinks every event of bucket i that falls inside the active
// window (at < bucketTop) into the due heap, dropping dead entries as it
// goes. Events beyond the window (a whole ring ahead) stay in place.
func (q *calQueue) drainDue(i int) {
	var prev *Event
	for ev := q.buckets[i]; ev != nil; {
		if ev.dead {
			next := ev.next
			if prev == nil {
				q.buckets[i] = next
			} else {
				prev.next = next
			}
			ev.next = nil
			q.dead--
			ev = next
			continue
		}
		if ev.at < q.bucketTop {
			next := ev.next
			if prev == nil {
				q.buckets[i] = next
			} else {
				prev.next = next
			}
			ev.next = nil
			q.heapPush(ev)
			ev = next
			continue
		}
		prev = ev
		ev = ev.next
	}
}

// eventBefore is the queue's total order: ascending (at, seq).
func eventBefore(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// pruneDueHead discards canceled events from the top of the due heap so
// the head, if any, is live.
func (q *calQueue) pruneDueHead() {
	for len(q.due) > 0 && q.due[0].dead {
		q.dead--
		q.heapPop()
	}
}

//cenju4:hotpath
func (q *calQueue) heapPush(ev *Event) {
	//cenju4:alloc-ok due-heap growth amortizes across the bursts that filled it
	q.due = append(q.due, ev)
	j := len(q.due) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !eventBefore(q.due[j], q.due[p]) {
			break
		}
		q.due[j], q.due[p] = q.due[p], q.due[j]
		j = p
	}
}

//cenju4:hotpath
func (q *calQueue) heapPop() *Event {
	ev := q.due[0]
	last := len(q.due) - 1
	q.due[0] = q.due[last]
	q.due[last] = nil
	q.due = q.due[:last]
	j := 0
	for {
		l := 2*j + 1
		if l >= last {
			break
		}
		s := l
		if r := l + 1; r < last && eventBefore(q.due[r], q.due[l]) {
			s = r
		}
		if !eventBefore(q.due[s], q.due[j]) {
			break
		}
		q.due[j], q.due[s] = q.due[s], q.due[j]
		j = s
	}
	return ev
}

// popMinDirect removes and returns the global minimum by (at, seq) with
// a full sweep of the buckets and the due heap, and repositions the
// cursor at its window.
func (q *calQueue) popMinDirect() *Event {
	var best, bestPrev *Event
	bi := -1
	for i := range q.buckets {
		var prev *Event
		for ev := q.buckets[i]; ev != nil; {
			if ev.dead {
				next := ev.next
				if prev == nil {
					q.buckets[i] = next
				} else {
					prev.next = next
				}
				ev.next = nil
				q.dead--
				ev = next
				continue
			}
			if best == nil || eventBefore(ev, best) {
				best, bestPrev, bi = ev, prev, i
			}
			prev = ev
			ev = ev.next
		}
	}
	q.pruneDueHead()
	if len(q.due) > 0 && (best == nil || eventBefore(q.due[0], best)) {
		ev := q.heapPop()
		q.resetCursor(ev.at)
		return ev
	}
	if best == nil {
		panic("sim: calendar queue lost an event") // size said otherwise
	}
	if bestPrev == nil {
		q.buckets[bi] = best.next
	} else {
		bestPrev.next = best.next
	}
	best.next = nil
	q.resetCursor(best.at)
	return best
}

// rebuild re-spreads the live events over a bucket count sized for the
// population and a width sized for the live span, dropping tombstones.
// The live events are collected by relinking them into one chain, so
// the only allocation is the bucket-head slice itself — and only when
// the bucket count actually changes.
func (q *calQueue) rebuild() {
	// Chain every live event together and measure the population. Due
	// heap residents are live events too — fold them back in.
	var live *Event
	n := 0
	var lo, hi Time
	for i := range q.buckets {
		for ev := q.buckets[i]; ev != nil; {
			next := ev.next
			if ev.dead {
				ev.next = nil
			} else {
				if n == 0 {
					lo, hi = ev.at, ev.at
				} else {
					if ev.at < lo {
						lo = ev.at
					}
					if ev.at > hi {
						hi = ev.at
					}
				}
				ev.next = live
				live = ev
				n++
			}
			ev = next
		}
		q.buckets[i] = nil
	}
	for i, ev := range q.due {
		q.due[i] = nil
		if ev.dead {
			continue
		}
		if n == 0 {
			lo, hi = ev.at, ev.at
		} else {
			if ev.at < lo {
				lo = ev.at
			}
			if ev.at > hi {
				hi = ev.at
			}
		}
		ev.next = live
		live = ev
		n++
	}
	q.due = q.due[:0]
	q.dead = 0
	q.size = n

	nb := calMinBuckets
	for nb < 2*n {
		nb <<= 1
	}
	if nb != len(q.buckets) {
		//cenju4:alloc-ok bucket-count growth amortizes across the pushes that doubled occupancy
		q.buckets = make([]*Event, nb)
		q.mask = uint64(nb) - 1
	}

	// Width: the average inter-event gap of the live population, rounded
	// down to a power of two (min 1). With nb >= 2*size this spreads a
	// uniform schedule at <= 1 event per bucket per year.
	q.shift = 0
	switch {
	case n > 1:
		gap := (hi - lo) / Time(n)
		for q.shift < 40 && Time(1)<<(q.shift+1) <= gap {
			q.shift++
		}
		q.resetCursor(lo)
	case n == 1:
		q.resetCursor(live.at)
	default:
		q.resetCursor(0)
	}
	for ev := live; ev != nil; {
		next := ev.next
		b := q.bucketFor(ev.at)
		ev.next = q.buckets[b]
		q.buckets[b] = ev
		ev = next
	}
}
