package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// --- Satellite bugfix: RunUntil idle parity with Run/RunChunk ---

// driveRounds builds a workload whose driver injects one batch of
// events per idle callback, for `rounds` rounds, each batch `step` ns
// after the previous drain. Returns the engine and a pointer to the
// idle-callback count.
func driveRounds(rounds int, step Time) (*Engine, *int) {
	e := NewEngine()
	idles := 0
	round := 0
	e.SetIdleFunc(func() {
		idles++
		if round < rounds {
			round++
			e.After(step, func() {})
		}
	})
	e.After(step, func() {})
	return e, &idles
}

// TestIdleCountParityAcrossRunModes pins the idle-callback count of
// Run, RunChunk, and RunUntil on the same round-injecting workload.
// RunUntil historically skipped the idle func on queue drain, so
// quiescent hooks went dark under window-bounded execution.
func TestIdleCountParityAcrossRunModes(t *testing.T) {
	const rounds = 5
	const step = Time(10)

	runN := func(e *Engine) uint64 { return e.Run() }
	chunkN := func(e *Engine) uint64 {
		var total uint64
		for {
			n, more := e.RunChunk(3)
			total += n
			if !more {
				return total
			}
		}
	}
	untilN := func(e *Engine) uint64 { return e.RunUntil(Time(1_000_000)) }

	type result struct {
		fired uint64
		idles int
	}
	results := map[string]result{}
	for name, drive := range map[string]func(*Engine) uint64{
		"Run": runN, "RunChunk": chunkN, "RunUntil": untilN,
	} {
		e, idles := driveRounds(rounds, step)
		fired := drive(e)
		results[name] = result{fired, *idles}
	}

	want := results["Run"]
	if want.idles != rounds+1 {
		t.Fatalf("Run: idle count = %d, want %d (one per round + final drain)", want.idles, rounds+1)
	}
	for name, got := range results {
		if got != want {
			t.Errorf("%s: (fired=%d, idles=%d), want (fired=%d, idles=%d) as in Run",
				name, got.fired, got.idles, want.fired, want.idles)
		}
	}
}

// TestRunUntilIdleRespectsDeadline checks that events the idle func
// schedules beyond the deadline stay queued: the idle func fires at
// the drain, but the window boundary still holds.
func TestRunUntilIdleRespectsDeadline(t *testing.T) {
	e := NewEngine()
	idles := 0
	e.SetIdleFunc(func() {
		idles++
		if idles == 1 {
			e.At(200, func() {}) // beyond the window
		}
	})
	e.At(50, func() {})
	fired := e.RunUntil(100)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (the t=50 event only)", fired)
	}
	if idles != 1 {
		t.Fatalf("idle count = %d, want 1 (single drain; t=200 refill is past deadline)", idles)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (idle-scheduled t=200 event held for next window)", e.Pending())
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want deadline 100", e.Now())
	}
}

// TestRunUntilIdleNotCalledOnStop: a stopped engine is paused, not
// quiescent — same rule Run follows.
func TestRunUntilIdleNotCalledOnStop(t *testing.T) {
	e := NewEngine()
	idles := 0
	e.SetIdleFunc(func() { idles++ })
	e.At(10, func() { e.Stop() })
	e.At(20, func() {})
	e.RunUntil(100)
	if idles != 0 {
		t.Fatalf("idle count = %d, want 0 after Stop", idles)
	}
}

// --- Satellite bugfix: After/RunFor overflow diagnosis ---

func mustPanicContaining(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic mentioning %q", substr)
		}
		msg := fmt.Sprint(r)
		if !contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAfterOverflowPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	// now = 100; adding ^Time(0) wraps to 99 — in the past. Without the
	// check this would surface as a misleading scheduling-in-the-past
	// panic; the overflow diagnosis names the real bug.
	mustPanicContaining(t, "overflows sim.Time", func() {
		e.After(^Time(0), func() {})
	})
}

func TestRunForOverflowPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	mustPanicContaining(t, "overflows sim.Time", func() {
		e.RunFor(^Time(0))
	})
}

func TestAfterMaxNonWrappingDelayOK(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	// The largest delay that does not wrap must still be accepted.
	ev := e.After(^Time(0)-100, func() {})
	if ev.When() != ^Time(0) {
		t.Fatalf("When = %v, want max Time", ev.When())
	}
}

// --- Ranked mode: differential against the sequential engine ---

// recordingWorkload schedules a randomized cascade of events on eng and
// appends a trace entry per firing. Every handler reschedules a few
// children at randomized (often colliding) times so tie-breaking is
// exercised hard. The rng must be seeded identically across engines.
func recordingWorkload(eng *Engine, rng *rand.Rand, trace *[]string) {
	var spawn func(id int, depth int) func()
	spawn = func(id int, depth int) func() {
		return func() {
			*trace = append(*trace, fmt.Sprintf("%d@%v", id, eng.Now()))
			if depth >= 3 {
				return
			}
			kids := rng.Intn(3)
			for k := 0; k < kids; k++ {
				// Small deltas (including 0) force same-time ties.
				d := Time(rng.Intn(3))
				eng.After(d, spawn(id*10+k, depth+1))
			}
		}
	}
	for i := 0; i < 16; i++ {
		eng.At(Time(rng.Intn(4)), spawn(i, 0))
	}
}

// TestRankedOrderMatchesSequential proves the core ranked-mode theorem
// on a single engine: (time, rank) firing order is identical to the
// sequential (time, seq) order for the same push pattern.
func TestRankedOrderMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var seqTrace, rankTrace []string

		seqEng := NewEngine()
		recordingWorkload(seqEng, rand.New(rand.NewSource(seed)), &seqTrace)
		seqEng.Run()

		rankEng := NewEngine()
		rankEng.EnableRankedMode()
		recordingWorkload(rankEng, rand.New(rand.NewSource(seed)), &rankTrace)
		for rankEng.Step() {
		}

		if len(seqTrace) != len(rankTrace) {
			t.Fatalf("seed %d: fired %d sequential vs %d ranked events", seed, len(seqTrace), len(rankTrace))
		}
		for i := range seqTrace {
			if seqTrace[i] != rankTrace[i] {
				t.Fatalf("seed %d: firing order diverges at %d: seq %s vs ranked %s",
					seed, i, seqTrace[i], rankTrace[i])
			}
		}
	}
}

// TestRankedOrderSurvivesCanonicalize re-runs the differential with a
// CanonicalizeRanks pass injected at window boundaries, proving the
// flattening is order-preserving.
func TestRankedOrderSurvivesCanonicalize(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var seqTrace, rankTrace []string

		seqEng := NewEngine()
		recordingWorkload(seqEng, rand.New(rand.NewSource(seed)), &seqTrace)
		seqEng.Run()

		rankEng := NewEngine()
		rankEng.EnableRankedMode()
		recordingWorkload(rankEng, rand.New(rand.NewSource(seed)), &rankTrace)
		for deadline := Time(0); rankEng.Pending() > 0; deadline += 2 {
			rankEng.RunDue(deadline)
			CanonicalizeRanks([]*Engine{rankEng})
		}

		if fmt.Sprint(seqTrace) != fmt.Sprint(rankTrace) {
			t.Fatalf("seed %d: ranked+canonicalize trace diverges from sequential", seed)
		}
	}
}

// TestRankedCancel exercises cancellation through the rank heap's
// lazy-delete path.
func TestRankedCancel(t *testing.T) {
	e := NewEngine()
	e.EnableRankedMode()
	fired := []int{}
	e.At(10, func() { fired = append(fired, 1) })
	ev := e.At(10, func() { fired = append(fired, 2) })
	e.At(10, func() { fired = append(fired, 3) })
	e.Cancel(ev)
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 after cancel", e.Pending())
	}
	for e.Step() {
	}
	if fmt.Sprint(fired) != "[1 3]" {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

// TestEnableRankedModeRejectsUsedEngine: the orders cannot be spliced
// once anything has happened.
func TestEnableRankedModeRejectsUsedEngine(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	mustPanicContaining(t, "EnableRankedMode", func() { e.EnableRankedMode() })
}

// TestInjectedRankOrdering: externally injected events interleave with
// locally scheduled ones exactly where their rank places them. This is
// the primitive the PDES coordinator relies on to splice cross-shard
// deliveries into a shard's schedule.
func TestInjectedRankOrdering(t *testing.T) {
	e := NewEngine()
	e.EnableRankedMode()
	var got []string

	// Handler at t=5 reserves a slot between two local pushes, as if a
	// deferred outcall happened there; later the "coordinator" injects
	// the outcall's sub-pushes with composed ranks.
	var parent *Rank
	var pushAt Time
	var slot uint64
	e.At(5, func() {
		e.After(10, func() { got = append(got, "local-a") }) // slot 0
		parent, pushAt, slot = e.ReserveRankSlot()           // slot 1 (the outcall)
		e.After(10, func() { got = append(got, "local-b") }) // slot 2
	})
	e.RunDue(5)

	// Replay: the outcall performs two sub-pushes landing at the same
	// t=15 as the locals. Their ranks must order a < sub0 < sub1 < b.
	e.InjectAt(15, ComposedRank(parent, pushAt, slot, 0), func() { got = append(got, "sub-0") })
	e.InjectAt(15, ComposedRank(parent, pushAt, slot, 1), func() { got = append(got, "sub-1") })
	for e.Step() {
	}

	want := "[local-a sub-0 sub-1 local-b]"
	if fmt.Sprint(got) != want {
		t.Fatalf("order = %v, want %s", got, want)
	}
}

// TestDriverSectionOrdering: pre-run driver pushes sort before event
// pushes at the same time; quiescent-section pushes sort after.
func TestDriverSectionOrdering(t *testing.T) {
	e := NewEngine()
	e.EnableRankedMode()
	var got []string

	// Pre-run driver push at t=10 …
	e.At(10, func() { got = append(got, "driver-pre") })
	// … and an event at t=0 that also pushes to t=10.
	e.At(0, func() {
		e.At(10, func() { got = append(got, "from-event") })
	})
	e.RunDue(20)

	// Quiescent driver section at t=20 pushing to t=20 must sort after
	// anything events pushed at t=20 (nothing here, but the rank must
	// still be mintable and fire).
	e.BeginDriverSection(20)
	e.SyncTo(20)
	e.At(20, func() { got = append(got, "driver-post") })
	e.RunDue(20)

	want := "[driver-pre from-event driver-post]"
	if fmt.Sprint(got) != want {
		t.Fatalf("order = %v, want %s", got, want)
	}
}

// TestSyncToBackwardsPanics guards the coordinator's clock-advance
// primitive.
func TestSyncToBackwardsPanics(t *testing.T) {
	e := NewEngine()
	e.EnableRankedMode()
	e.SyncTo(100)
	mustPanicContaining(t, "backwards", func() { e.SyncTo(50) })
}
