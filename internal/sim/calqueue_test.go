package sim

// Differential property test: the calendar-queue Engine must be
// observationally equivalent to a reference engine built on
// container/heap (the implementation the calendar queue replaced).
// Both engines are driven by identical randomized scripts of
// schedule / nested-schedule / cancel / Step / Run / RunUntil / Stop
// operations, and must produce identical firing logs, clocks, and
// counters. Any ordering bug in the bucket scan, cursor reset, lazy
// delete, or rebuild shows up as a log divergence.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------
// Reference engine: binary heap ordered by (at, seq), eager delete.
// This mirrors the pre-calendar-queue kernel.

type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now     Time
	seq     uint64
	queue   refHeap
	fired   uint64
	stopped bool
}

func (e *refEngine) at(t Time, fn func()) *refEvent {
	if t < e.now {
		panic("refEngine: scheduling in the past")
	}
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) cancel(ev *refEvent) {
	if ev == nil || ev.dead || ev.idx < 0 || ev.idx >= len(e.queue) || e.queue[ev.idx] != ev {
		return
	}
	ev.dead = true
	heap.Remove(&e.queue, ev.idx)
}

func (e *refEngine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*refEvent)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

func (e *refEngine) run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

func (e *refEngine) runUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
}

// ---------------------------------------------------------------------
// Generic driver. The script's rng decisions are consumed inside event
// callbacks, so identical firing order implies identical rng streams;
// a firing-order divergence breaks the streams apart and the logs with
// them, which is exactly the failure the test exists to catch.

type fireRec struct {
	id int
	at Time
}

type diffDriver struct {
	rng  *rand.Rand
	log  []fireRec
	next int

	// Engine hooks, bound by the two adapters below.
	now      func() Time
	schedule func(t Time, fn func()) (cancel func())
	step     func() bool
	run      func()
	runUntil func(Time)
	stop     func()
	pending  func() int

	// live cancel funcs for still-pending events, keyed by event id.
	live map[int]func()
}

func (d *diffDriver) spawn(at Time) {
	id := d.next
	d.next++
	cancel := d.schedule(at, func() {
		d.log = append(d.log, fireRec{id: id, at: d.now()})
		delete(d.live, id)
		r := d.rng.Intn(100)
		switch {
		case r < 35:
			// Schedule 1-2 follow-ups a short distance ahead (the
			// near-monotonic hot path, including zero-delay at ties).
			n := 1 + d.rng.Intn(2)
			for i := 0; i < n; i++ {
				d.spawn(d.now() + Time(d.rng.Intn(64)))
			}
		case r < 45:
			// Cancel a random still-pending event.
			d.cancelRandom()
		case r < 47:
			d.stop()
		}
	})
	d.live[id] = cancel
}

func (d *diffDriver) cancelRandom() {
	if len(d.live) == 0 {
		return
	}
	// Deterministic victim choice: smallest id >= a random threshold.
	k := d.rng.Intn(d.next)
	victim := -1
	for id := range d.live {
		if id >= k && (victim < 0 || id < victim) {
			victim = id
		}
	}
	if victim < 0 {
		return
	}
	d.live[victim]()
	delete(d.live, victim)
}

// runScript drives one engine through the scripted scenario for seed.
func runScript(seed int64, d *diffDriver) {
	d.rng = rand.New(rand.NewSource(seed))
	d.live = make(map[int]func())
	rounds := 2 + d.rng.Intn(3)
	for r := 0; r < rounds; r++ {
		batch := 4 + d.rng.Intn(24)
		base := d.now()
		for i := 0; i < batch; i++ {
			gap := d.rng.Intn(3)
			var at Time
			switch gap {
			case 0: // dense / tie-heavy
				at = base + Time(d.rng.Intn(8))
			case 1: // moderate
				at = base + Time(d.rng.Intn(512))
			default: // sparse, forces cursor rings and rebuild widths
				at = base + Time(d.rng.Intn(1<<22))
			}
			d.spawn(at)
		}
		// Cancel a few before running anything.
		for i := d.rng.Intn(4); i > 0; i-- {
			d.cancelRandom()
		}
		switch d.rng.Intn(4) {
		case 0:
			for i := d.rng.Intn(6); i > 0; i-- {
				d.step()
			}
		case 1:
			d.runUntil(d.now() + Time(d.rng.Intn(1<<21)))
		case 2:
			d.run() // may be cut short by a Stop inside a callback
		case 3:
			// Schedule-only round: let pending events pile up.
		}
	}
	d.run()
	for d.pending() > 0 { // drain past any trailing in-callback Stop
		d.run()
	}
}

func bindReal(e *Engine) *diffDriver {
	d := &diffDriver{}
	d.now = e.Now
	d.schedule = func(t Time, fn func()) func() {
		ev := e.At(t, fn)
		return func() { e.Cancel(ev) }
	}
	d.step = e.Step
	d.run = func() { e.Run() }
	d.runUntil = func(t Time) { e.RunUntil(t) }
	d.stop = e.Stop
	d.pending = e.Pending
	return d
}

func bindRef(e *refEngine) *diffDriver {
	d := &diffDriver{}
	d.now = func() Time { return e.now }
	d.schedule = func(t Time, fn func()) func() {
		ev := e.at(t, fn)
		return func() { e.cancel(ev) }
	}
	d.step = e.step
	d.run = e.run
	d.runUntil = e.runUntil
	d.stop = func() { e.stopped = true }
	d.pending = func() int { return len(e.queue) }
	return d
}

func TestDifferentialCalendarVsHeap(t *testing.T) {
	sequences := 10000
	if testing.Short() {
		sequences = 1500
	}
	for seed := int64(0); seed < int64(sequences); seed++ {
		real := NewEngine()
		ref := &refEngine{}
		dReal := bindReal(real)
		dRef := bindRef(ref)
		runScript(seed, dReal)
		runScript(seed, dRef)

		if len(dReal.log) != len(dRef.log) {
			t.Fatalf("seed %d: fired %d events, reference fired %d",
				seed, len(dReal.log), len(dRef.log))
		}
		for i := range dReal.log {
			if dReal.log[i] != dRef.log[i] {
				t.Fatalf("seed %d: firing %d diverged: got {id %d at %v}, reference {id %d at %v}",
					seed, i, dReal.log[i].id, dReal.log[i].at, dRef.log[i].id, dRef.log[i].at)
			}
		}
		if real.Now() != ref.now {
			t.Fatalf("seed %d: clock %v, reference %v", seed, real.Now(), ref.now)
		}
		if real.Fired() != ref.fired {
			t.Fatalf("seed %d: fired counter %d, reference %d", seed, real.Fired(), ref.fired)
		}
		if real.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after drain", seed, real.Pending())
		}
	}
}

// ---------------------------------------------------------------------
// Directed white-box tests for calendar-queue edge paths the property
// test reaches only probabilistically.

// TestCalQueueRingMissFallback forces a full cursor ring with no due
// event: a single event farther ahead than nbuckets*width must still be
// found (via the direct-search fallback) and must reset the cursor.
func TestCalQueueRingMissFallback(t *testing.T) {
	e := NewEngine()
	firedAt := Time(0)
	// Fresh engine: 8 buckets, width 1 → anything past t=8 misses the ring.
	e.At(1<<30, func() { firedAt = e.Now() })
	if n := e.Run(); n != 1 {
		t.Fatalf("ran %d events, want 1", n)
	}
	if firedAt != 1<<30 {
		t.Fatalf("fired at %v, want %v", firedAt, Time(1<<30))
	}
}

// TestCalQueueBackwardInsertAfterDrain checks the push-time cursor
// reset: after the cursor has advanced far ahead, an insert at the
// current clock (behind the window) must still dequeue first.
func TestCalQueueBackwardInsertAfterDrain(t *testing.T) {
	e := NewEngine()
	var order []Time
	rec := func() { order = append(order, e.Now()) }
	e.At(1_000_000, rec)
	e.Run() // cursor now sits at the 1_000_000 window
	e.At(e.Now()+5, rec)
	e.At(e.Now()+5_000_000, rec)
	e.At(e.Now()+1, rec) // behind the later insert: needs cursor reset
	e.Run()
	want := []Time{1_000_000, 1_000_001, 1_000_005, 6_000_000}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v (full order %v)", i, order[i], want[i], order)
		}
	}
}

// TestCalQueueTombstoneCompaction cancels far more events than survive
// and checks the survivors still fire in order through the compaction
// rebuild.
func TestCalQueueTombstoneCompaction(t *testing.T) {
	e := NewEngine()
	var fired []Time
	const n = 4096
	evs := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		at := Time(i * 3)
		evs = append(evs, e.At(at, func() { fired = append(fired, e.Now()) }))
	}
	for i, ev := range evs {
		if i%64 != 0 {
			e.Cancel(ev)
		}
	}
	if got, want := e.Pending(), n/64; got != want {
		t.Fatalf("pending %d, want %d", got, want)
	}
	e.Run()
	if len(fired) != n/64 {
		t.Fatalf("fired %d, want %d", len(fired), n/64)
	}
	for i, at := range fired {
		if want := Time(i * 64 * 3); at != want {
			t.Fatalf("firing %d at %v, want %v", i, at, want)
		}
	}
}
