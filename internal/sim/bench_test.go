package sim

// Microbenchmarks for the event kernel. BENCH_sim.json records the
// before/after numbers for the container/heap -> calendar-queue
// migration; regenerate with
//
//	go test ./internal/sim -bench 'BenchmarkEngine' -benchmem -count 5
//
// The dense case is the protocol simulator's actual shape: many events
// over a short, near-monotonic horizon (every message hop schedules a
// delivery a few hundred nanoseconds out). The sparse case spreads the
// same event count over a horizon six orders of magnitude wider. The
// cancel case measures lazy deletion against the timer-like pattern
// where most scheduled work is canceled before it fires.

import "testing"

// BenchmarkEngineSchedule measures raw At cost: scheduling into a
// standing population of pending events, without running them.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Time(i%4096), fn)
	}
}

// BenchmarkEngineRunDense fires a dense, near-monotonic schedule: each
// event reschedules itself a short bounded distance ahead, the pattern
// every switch hop and controller service in the simulator produces.
func BenchmarkEngineRunDense(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		const chains = 64
		const perChain = 256
		fired := 0
		for c := 0; c < chains; c++ {
			c := c
			depth := 0
			var step func()
			step = func() {
				fired++
				depth++
				if depth < perChain {
					e.After(Time(1+(c*7+depth)%113), step)
				}
			}
			e.At(Time(c%13), step)
		}
		e.Run()
		if fired != chains*perChain {
			b.Fatalf("fired %d events, want %d", fired, chains*perChain)
		}
	}
}

// BenchmarkEngineRunSparse fires the same event count scattered over a
// horizon ~1e6 wider than the dense case, stressing bucket-cursor
// advance across mostly-empty regions.
func BenchmarkEngineRunSparse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		const n = 16384
		fired := 0
		t := Time(0)
		for j := 0; j < n; j++ {
			// Deterministic pseudo-random gaps up to ~2^27 ns.
			t += Time(1 + (uint64(j)*2654435761)%(1<<27))
			e.At(t, func() { fired++ })
		}
		e.Run()
		if fired != n {
			b.Fatalf("fired %d events, want %d", fired, n)
		}
	}
}

// BenchmarkEngineCancel schedules timer-like events and cancels most of
// them before they fire (the lazy-delete path).
func BenchmarkEngineCancel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		const n = 8192
		evs := make([]*Event, 0, n)
		for j := 0; j < n; j++ {
			evs = append(evs, e.At(Time(j%1024), func() {}))
		}
		for j, ev := range evs {
			if j%8 != 0 {
				e.Cancel(ev)
			}
		}
		e.Run()
	}
}
