package sim

// Explicit tests for the Stop() contract documented on Engine.Stop,
// Engine.Run and Engine.SetIdleFunc: Stop pauses the current run
// without draining or canceling anything, does not count as
// quiescence, and does not persist across Run calls.

import "testing"

// TestStopLeavesPendingEventsQueued: events not yet fired when Stop
// takes effect stay queued (not canceled) and fire on the next Run.
func TestStopLeavesPendingEventsQueued(t *testing.T) {
	e := NewEngine()
	var fired []Time
	rec := func() { fired = append(fired, e.Now()) }
	e.At(10, func() { rec(); e.Stop() })
	ev := e.At(20, rec)
	e.At(30, rec)

	if n := e.Run(); n != 1 {
		t.Fatalf("first Run fired %d events, want 1 (stopped after the first)", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d after Stop, want 2", e.Pending())
	}
	if ev.Canceled() {
		t.Fatal("Stop marked a pending event canceled; Stop must not cancel")
	}
	if n := e.Run(); n != 2 {
		t.Fatalf("second Run fired %d events, want 2", n)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order %v, want %v", fired, want)
		}
	}
}

// TestScheduleAfterStop: an engine paused by Stop still accepts At and
// After; the new events wait for the next Run and interleave correctly
// with the events that survived the Stop.
func TestScheduleAfterStop(t *testing.T) {
	e := NewEngine()
	var fired []Time
	rec := func() { fired = append(fired, e.Now()) }
	e.At(5, func() { rec(); e.Stop() })
	e.At(40, rec)
	e.Run()

	// Engine is stopped at t=5. Schedule between and after the survivor.
	e.At(20, rec)
	e.After(50, rec) // 5+50 = 55
	if e.Pending() != 3 {
		t.Fatalf("pending %d, want 3", e.Pending())
	}
	e.Run()
	want := []Time{5, 20, 40, 55}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestIdleFuncNotCalledOnStop: a Run that returns because of Stop is
// paused, not quiescent — the idle func must not fire. A later Run that
// actually drains the queue does invoke it.
func TestIdleFuncNotCalledOnStop(t *testing.T) {
	e := NewEngine()
	idles := 0
	e.SetIdleFunc(func() { idles++ })
	e.At(1, func() { e.Stop() })
	e.At(2, func() {})
	e.Run()
	if idles != 0 {
		t.Fatalf("idle func ran %d times during a stopped Run, want 0", idles)
	}
	e.Run()
	if idles != 1 {
		t.Fatalf("idle func ran %d times after draining Run, want 1", idles)
	}
}

// TestStopWhileNotRunningIsNoOp: Stop does not persist — the next
// Run/RunUntil clears it on entry and executes normally.
func TestStopWhileNotRunningIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(2, func() { fired++ })
	e.Stop()
	if n := e.Run(); n != 2 || fired != 2 {
		t.Fatalf("Run after idle Stop fired %d (count %d), want 2", n, fired)
	}

	e.At(e.Now()+1, func() { fired++ })
	e.Stop()
	e.RunUntil(e.Now() + 10)
	if fired != 3 {
		t.Fatalf("RunUntil after idle Stop fired %d total, want 3", fired)
	}
}

// TestStopDuringRunUntil: Stop inside a callback halts RunUntil before
// the deadline; the clock stays at the stopping event and is NOT
// advanced to the deadline.
func TestStopDuringRunUntil(t *testing.T) {
	e := NewEngine()
	e.At(10, func() { e.Stop() })
	e.At(20, func() {})
	e.RunUntil(100)
	if e.Now() != 10 {
		t.Fatalf("clock %v after Stop mid-RunUntil, want 10 (no deadline advance)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("after resume: clock %v pending %d, want 100 and 0", e.Now(), e.Pending())
	}
}

// TestCanceledSurvivesStop: Event.Canceled keeps reporting true for a
// canceled (never-fired) handle across a Stop and subsequent Runs.
func TestCanceledSurvivesStop(t *testing.T) {
	e := NewEngine()
	canceledRan := false
	ev := e.At(30, func() { canceledRan = true })
	e.At(10, func() { e.Stop() })
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("Canceled() false immediately after Cancel")
	}
	e.Run() // stops at t=10
	if !ev.Canceled() {
		t.Fatal("Canceled() false after a stopped Run")
	}
	e.Run() // drains
	if canceledRan {
		t.Fatal("canceled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() false after draining Run")
	}
}
