// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is a single-threaded event queue ordered by (time, sequence
// number). Ties on time are broken by insertion order, which makes every
// simulation fully deterministic for a given input. All Cenju-4 component
// models (switches, caches, protocol modules, processors) schedule work
// through one Engine.
//
// The queue is a lazy-delete bucketed calendar queue (see calqueue.go),
// chosen for the simulator's near-monotonic schedule pattern; the
// differential test in calqueue_test.go proves it dequeue-equivalent to
// the reference binary heap. Event records are pooled: once an event
// has fired, the engine recycles its storage for a later At/After. The
// *Event handle returned by At/After is therefore valid for
// Cancel/Canceled only until the event fires; retaining a handle past
// that point and using it may observe an unrelated recycled event.
// Canceled events are never recycled, so a canceled handle's Canceled()
// stays true indefinitely. No simulation model in this repository
// retains handles past firing.
package sim

import "fmt"

// Time is simulated time in nanoseconds.
type Time uint64

// Nanoseconds returns t as a plain uint64 nanosecond count.
func (t Time) Nanoseconds() uint64 { return uint64(t) }

// Microseconds returns t converted to microseconds as a float.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%dns", uint64(t)) }

// Event is a unit of scheduled work: either a plain callback (fn, from
// At/After) or a callback-with-argument (fnc+arg, from AtCall — the
// allocation-free form: a package-level func plus a pointer-shaped
// argument needs no closure object per event).
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	fnc    func(any)
	arg    any
	next   *Event // intrusive calendar-queue bucket link (see calqueue.go)
	rank   *Rank  // ranked-mode ordering key (nil in sequential mode; see rank.go)
	dead   bool   // canceled before firing
	queued bool   // currently in the calendar queue
}

// Canceled reports whether the event was canceled before firing. Only
// meaningful while the handle is valid (see the package comment on
// event recycling).
func (e *Event) Canceled() bool { return e.dead }

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.at }

// Engine is a discrete-event simulation engine.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   calQueue
	fired   uint64
	lastAt  Time // time of the most recently fired event
	stopped bool
	idle    func()

	// Ranked mode (see rank.go): events are ordered by (time, Rank)
	// instead of (time, seq), which lets an outside coordinator inject
	// events whose ordering reproduces the sequential engine's insertion
	// order exactly. Sequential mode never touches these fields.
	ranked   bool
	rh       rankHeap
	curRank  *Rank  // rank of the currently firing event (nil in driver context)
	pushSlot uint64 // per-firing-context push counter
	drvTime  Time   // current driver section's virtual time
	drvSec   uint64 // driver section counter
	drvSlot  uint64 // push counter within the current driver section
	drvPre   bool   // current driver section precedes the run (sorts first)

	// free and chunk implement the event pool: fired events return to
	// free; fresh events are carved from chunk in blocks so one
	// allocation covers eventChunk schedules.
	free  []*Event
	chunk []Event
}

const eventChunk = 256

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.init()
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue (canceled
// events do not count).
func (e *Engine) Pending() int {
	if e.ranked {
		return e.rh.size
	}
	return e.queue.size
}

// alloc returns a zeroed event record from the pool.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.chunk) == 0 {
		//cenju4:alloc-ok one block allocation amortizes over eventChunk schedules
		e.chunk = make([]Event, eventChunk)
	}
	ev := &e.chunk[0]
	e.chunk = e.chunk[1:]
	return ev
}

// recycle returns a finished event record to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnc = nil
	ev.arg = nil
	ev.rank = nil
	ev.queued = false
	e.free = append(e.free, ev)
}

// fire runs the event's callback after the record has been recycled.
func fire(fn func(), fnc func(any), arg any) {
	if fnc != nil {
		fnc(arg)
		return
	}
	fn()
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug. Scheduling while the engine
// is stopped (or after Stop, before the next Run) is allowed; the event
// waits for the next Run/RunUntil.
//
//cenju4:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	if e.ranked {
		*ev = Event{at: t, rank: e.nextRank(), fn: fn, queued: true}
		e.rh.push(ev)
		return ev
	}
	*ev = Event{at: t, seq: e.seq, fn: fn, queued: true}
	e.seq++
	e.queue.push(ev)
	return ev
}

// AtCall schedules fn(arg) at absolute time t. It is the
// allocation-free variant of At for per-event scheduling on hot paths:
// fn is typically a package-level function (a static func value) and
// arg a pointer to a pooled record, so — unlike an At closure capturing
// the same state — nothing escapes to the heap per event. Semantics
// (ordering, panics, Cancel) are identical to At.
//
//cenju4:hotpath
func (e *Engine) AtCall(t Time, fn func(any), arg any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	if e.ranked {
		*ev = Event{at: t, rank: e.nextRank(), fnc: fn, arg: arg, queued: true}
		e.rh.push(ev)
		return ev
	}
	*ev = Event{at: t, seq: e.seq, fnc: fn, arg: arg, queued: true}
	e.seq++
	e.queue.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. A delay so large
// that now+d wraps around sim.Time panics with an overflow diagnosis
// (without the check the wrapped value would trip At's
// scheduling-in-the-past panic, blaming the wrong bug).
//
//cenju4:hotpath
func (e *Engine) After(d Time, fn func()) *Event {
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: After(%v) from now %v overflows sim.Time", d, e.now))
	}
	return e.At(t, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event (while its handle is still valid) is a no-op,
// as is canceling nil. Cancellation is lazy: the entry is dropped when
// the queue next scans it. Canceled records are not pooled, so the
// handle's Canceled() result stays valid indefinitely.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead || !ev.queued {
		return
	}
	ev.dead = true
	ev.queued = false
	if e.ranked {
		e.rh.size--
		return
	}
	e.queue.size--
	e.queue.dead++
}

// Step executes the single earliest event. It reports false when the
// queue is empty.
//
//cenju4:hotpath
func (e *Engine) Step() bool {
	ev := e.pop()
	if ev == nil {
		return false
	}
	e.fireEvent(ev)
	return true
}

// pop removes the earliest pending event from whichever queue the
// engine runs on (nil when empty).
//
//cenju4:hotpath
func (e *Engine) pop() *Event {
	if e.ranked {
		return e.rh.pop()
	}
	return e.queue.pop()
}

// fireEvent advances the clock to ev and runs its callback. In ranked
// mode the event's rank becomes the push context for everything the
// callback schedules.
//
//cenju4:hotpath
func (e *Engine) fireEvent(ev *Event) {
	e.now = ev.at
	e.lastAt = ev.at
	e.fired++
	fn, fnc, arg := ev.fn, ev.fnc, ev.arg
	if e.ranked {
		e.curRank = ev.rank
		e.pushSlot = 0
	}
	e.recycle(ev)
	fire(fn, fnc, arg)
	if e.ranked {
		e.curRank = nil
	}
}

// SetIdleFunc installs fn (nil removes it), invoked by Run every time
// the event queue drains — the machine's quiescent points. fn may
// schedule new events; Run then continues. Drivers that inject work in
// rounds therefore get one callback per round without hand-rolling
// idle detection. The idle func is NOT invoked when Run returns because
// of Stop: a stopped engine is paused mid-schedule, not quiescent.
func (e *Engine) SetIdleFunc(fn func()) { e.idle = fn }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events executed by this call. Run clears any
// Stop left from an earlier call first, so a Stop issued while the
// engine is not running has no effect on the next Run.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		if e.Step() {
			continue
		}
		if e.idle != nil {
			e.idle()
		}
		if e.Pending() == 0 {
			break
		}
	}
	return e.fired - start
}

// RunChunk executes at most limit events and reports how many fired
// and whether work remains queued. It is Run sliced into bounded
// pieces: the idle func fires at every queue drain exactly as in Run,
// and a drain with nothing rescheduled ends the chunk early with
// more=false. Callers that need to interleave the simulation with
// outside checks — the serve layer polls a context for cancellation
// and enforces an event budget between chunks — loop over RunChunk
// until more is false; the event sequence is identical to one Run
// call, so chunked execution cannot perturb a result digest. Like Run
// it clears a stale Stop on entry and returns early (with more
// reporting the queue state) when Stop is called mid-chunk.
//
// When the event limit lands exactly on a queue drain, the drain has
// not yet been offered to the idle func; RunChunk then reports
// more=true so the next call delivers the callback (which may refill
// the queue). A finished simulation costs at most one extra call that
// fires zero events.
func (e *Engine) RunChunk(limit uint64) (fired uint64, more bool) {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.fired-start < limit {
		if e.Step() {
			continue
		}
		if e.idle != nil {
			e.idle()
		}
		if e.Pending() == 0 {
			return e.fired - start, false
		}
	}
	if e.stopped {
		return e.fired - start, e.Pending() > 0
	}
	return e.fired - start, e.Pending() > 0 || e.idle != nil
}

// RunUntil executes events with time <= deadline. Events scheduled past
// the deadline remain queued; the clock is left at the last fired event
// (or advanced to the deadline if nothing fired at it). The idle func
// is invoked at every queue drain, exactly as in Run and RunChunk, so
// quiescent-point hooks (Machine.AutoValidate, round-injecting drivers)
// keep firing under window-bounded execution; events the idle func
// schedules at or before the deadline run within this call. Like Run it
// clears a stale Stop on entry and returns early when Stop is called.
//
//cenju4:hotpath
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		ev := e.pop()
		if ev == nil {
			// True drain: give the idle func its quiescent point; if it
			// refills the queue, keep going (Run behaves identically).
			if e.idle != nil {
				e.idle()
				if e.Pending() > 0 {
					continue
				}
			}
			break
		}
		if ev.at > deadline {
			e.unpop(ev) // not due: put it back (ordering key preserved)
			break
		}
		e.fireEvent(ev)
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.fired - start
}

// unpop returns a popped-but-not-fired event to the queue. Its ordering
// key (seq or rank) is untouched, so the put-back cannot perturb
// tie-breaking.
func (e *Engine) unpop(ev *Event) {
	if e.ranked {
		e.rh.push(ev)
		return
	}
	e.queue.push(ev)
}

// RunFor runs events within the next d nanoseconds (see RunUntil). A
// horizon so large that now+d wraps around sim.Time panics with an
// overflow diagnosis rather than a misleading result.
func (e *Engine) RunFor(d Time) uint64 {
	deadline := e.now + d
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunFor(%v) from now %v overflows sim.Time", d, e.now))
	}
	return e.RunUntil(deadline)
}

// Stop makes the current Run/RunUntil call return after the current
// event completes. Pending events stay queued and fire on the next
// Run/RunUntil; events may still be scheduled and canceled while the
// engine is stopped. Stop does not persist: the next Run/RunUntil
// clears it on entry, so stopping an engine that is not running is a
// no-op.
func (e *Engine) Stop() { e.stopped = true }
