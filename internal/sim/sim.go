// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is a single-threaded event queue ordered by (time, sequence
// number). Ties on time are broken by insertion order, which makes every
// simulation fully deterministic for a given input. All Cenju-4 component
// models (switches, caches, protocol modules, processors) schedule work
// through one Engine.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time uint64

// Nanoseconds returns t as a plain uint64 nanosecond count.
func (t Time) Nanoseconds() uint64 { return uint64(t) }

// Microseconds returns t converted to microseconds as a float.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%dns", uint64(t)) }

// Event is a unit of scheduled work.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 when not queued
	dead bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.dead }

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	stopped bool
	idle    func()
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead || ev.idx < 0 {
		return
	}
	ev.dead = true
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
}

// Step executes the single earliest event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// SetIdleFunc installs fn (nil removes it), invoked by Run every time
// the event queue drains — the machine's quiescent points. fn may
// schedule new events; Run then continues. Drivers that inject work in
// rounds therefore get one callback per round without hand-rolling
// idle detection.
func (e *Engine) SetIdleFunc(fn func()) { e.idle = fn }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events executed by this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		if e.Step() {
			continue
		}
		if e.idle != nil {
			e.idle()
		}
		if len(e.queue) == 0 {
			break
		}
	}
	return e.fired - start
}

// RunUntil executes events with time <= deadline. Events scheduled past
// the deadline remain queued; the clock is left at the last fired event
// (or advanced to the deadline if nothing fired at it).
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.fired - start
}

// RunFor runs events within the next d nanoseconds (see RunUntil).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// Stop makes the current Run/RunUntil call return after the current
// event completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }
