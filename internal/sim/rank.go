package sim

import (
	"fmt"
	"sort"
)

// Ranked mode replaces the engine's global push-sequence tie-break with
// structural ranks so that K shard engines, each firing a disjoint
// subset of a sequential run's events, can reproduce the sequential
// (time, seq) total order without sharing a counter.
//
// A Rank records *where* a push happened: the rank of the event whose
// handler performed it (parent), the simulated time of that push
// (pushAt), and the push's ordinal within that handler (idx). Driver
// pushes (made outside any event handler — machine construction,
// quiescent callbacks) have a nil parent and encode a section counter
// in idx instead. Comparing two ranks walks toward the common ancestor
// and compares the first diverging (pushAt, idx) pair; this is exactly
// the order a single sequential engine's monotone seq counter would
// have produced, because within one handler pushes are numbered in
// program order and across handlers the firing order itself is the
// (time, rank) order being defined. See DESIGN.md §12 for the
// equivalence argument.
type Rank struct {
	parent *Rank  // rank of the event whose handler pushed this one; nil for driver pushes
	pushAt Time   // simulated time of the push
	idx    uint64 // ordinal of the push within its context (see subBits/secShift)
	pre    bool   // driver push that precedes the run (sorts before event pushes at equal pushAt)
}

const (
	// idx layout: bits [0,subBits) hold a replay sub-push ordinal
	// (0 = the reserving push itself, j+1 = sub-push j of a deferred
	// outcall replayed at the reserved slot), bits [subBits,secShift)
	// hold the per-handler push slot, and bits [secShift,64) hold the
	// driver section counter for nil-parent ranks.
	subBits  = 20
	secShift = 44
)

// RankLess reports whether a fires strictly before b under the
// sequential-equivalent order. Both arguments must be non-nil; an
// event's full ordering key is (at, rank), so RankLess is only
// consulted for equal-time events. Ancestor/descendant pairs are never
// co-queued (a parent has already fired by the time its child is
// pushed), so the walk always diverges before the chains run out
// together with equal fields.
func RankLess(a, b *Rank) bool {
	for {
		if a.pushAt != b.pushAt {
			return a.pushAt < b.pushAt
		}
		if a.parent == b.parent {
			return a.idx < b.idx
		}
		if a.parent == nil {
			// Driver push vs an event-context push at the same time:
			// pre-run driver sections precede the run (their pushes
			// happened before any event fired), quiescent sections
			// follow it.
			return a.pre
		}
		if b.parent == nil {
			return !b.pre
		}
		a, b = a.parent, b.parent
	}
}

// rankHeap is a binary min-heap of events keyed by (at, rank). Dead
// (cancelled) events are skipped lazily on pop; size counts live
// events only.
type rankHeap struct {
	ev   []*Event
	size int
}

func rankEventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return RankLess(a.rank, b.rank)
}

func (h *rankHeap) push(ev *Event) {
	h.ev = append(h.ev, ev)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !rankEventLess(h.ev[i], h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
	h.size++
}

// pop removes and returns the earliest live event, or nil.
func (h *rankHeap) pop() *Event {
	for len(h.ev) > 0 {
		ev := h.ev[0]
		last := len(h.ev) - 1
		h.ev[0] = h.ev[last]
		h.ev[last] = nil
		h.ev = h.ev[:last]
		if last > 0 {
			h.siftDown(0)
		}
		if ev.dead {
			continue
		}
		h.size--
		return ev
	}
	return nil
}

// peek returns the earliest live event without removing it, or nil.
// Dead events encountered on top are discarded as a side effect.
func (h *rankHeap) peek() *Event {
	for len(h.ev) > 0 {
		ev := h.ev[0]
		if !ev.dead {
			return ev
		}
		last := len(h.ev) - 1
		h.ev[0] = h.ev[last]
		h.ev[last] = nil
		h.ev = h.ev[:last]
		if last > 0 {
			h.siftDown(0)
		}
	}
	return nil
}

func (h *rankHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && rankEventLess(h.ev[l], h.ev[m]) {
			m = l
		}
		if r < n && rankEventLess(h.ev[r], h.ev[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
}

// EnableRankedMode switches the engine from the global-seq tie-break to
// structural ranks. It must be called on a virgin engine: once anything
// has been scheduled or fired the two orders can no longer be spliced.
func (e *Engine) EnableRankedMode() {
	if e.seq != 0 || e.fired != 0 || e.Pending() != 0 {
		panic("sim: EnableRankedMode on an engine that already scheduled or fired events")
	}
	e.ranked = true
	e.drvPre = true // construction-time driver pushes precede the run
}

// Ranked reports whether the engine is in ranked mode.
func (e *Engine) Ranked() bool { return e.ranked }

// nextRank mints the rank for a push happening now. Inside an event
// handler the rank descends from the firing event; outside (driver
// context) it is a nil-parent rank carrying the driver section.
func (e *Engine) nextRank() *Rank {
	if e.curRank != nil {
		//cenju4:alloc-ok rank nodes are the ranked mode's ordering state; chains are flattened by CanonicalizeRanks at window barriers, and the sequential kernel (ranked off) never reaches this
		r := &Rank{parent: e.curRank, pushAt: e.now, idx: e.pushSlot << subBits}
		e.pushSlot++
		return r
	}
	//cenju4:alloc-ok driver pushes are rare (launch and quiescent points); see above
	r := &Rank{pushAt: e.drvTime, idx: e.drvSec<<secShift | e.drvSlot<<subBits, pre: e.drvPre}
	e.drvSlot++
	return r
}

// BeginDriverSection opens a new driver context at virtual time t for
// pushes made outside any event handler after the run has started
// (quiescent callbacks). Such pushes sort after event-context pushes at
// the same time, matching the sequential engine where the quiescent
// callback's seq values follow every previously fired event's.
func (e *Engine) BeginDriverSection(t Time) {
	e.drvSec++
	e.drvTime = t
	e.drvSlot = 0
	e.drvPre = false
}

// SetDriverSlot overrides the driver-context push counter. Machine
// construction uses it to stamp node i's launch push with the global
// node index, so launches on different shard engines compare exactly as
// the sequential engine's launch loop ordered them.
func (e *Engine) SetDriverSlot(n uint64) { e.drvSlot = n }

// RunDue fires every queued event with at <= deadline, in (time, rank)
// order, and returns the count fired. Unlike RunUntil it neither bumps
// the clock to the deadline nor invokes the idle func: shard engines
// are driven window by window and quiescence is a global property the
// coordinator decides. Ranked mode only.
func (e *Engine) RunDue(deadline Time) uint64 {
	if !e.ranked {
		panic("sim: RunDue requires ranked mode")
	}
	start := e.fired
	for {
		ev := e.rh.peek()
		if ev == nil || ev.at > deadline {
			return e.fired - start
		}
		e.rh.pop()
		e.fireEvent(ev)
	}
}

// PeekTime returns the time of the earliest pending event. ok is false
// on an empty queue. Ranked mode only.
func (e *Engine) PeekTime() (Time, bool) {
	if !e.ranked {
		panic("sim: PeekTime requires ranked mode")
	}
	ev := e.rh.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// LastFired returns the timestamp of the most recently fired event
// (zero if none has fired).
func (e *Engine) LastFired() Time { return e.lastAt }

// SyncTo advances the clock to t without firing anything. Moving the
// clock backwards panics.
func (e *Engine) SyncTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: SyncTo(%v) would move clock backwards from %v", t, e.now))
	}
	e.now = t
}

// InjectAt schedules fn at time t under an externally supplied rank.
// The PDES coordinator uses it to land replayed cross-shard effects on
// the destination shard with the rank the sequential engine would have
// assigned. Ranked mode only; scheduling in the past panics.
func (e *Engine) InjectAt(t Time, rank *Rank, fn func()) *Event {
	return e.inject(t, rank, fn, nil, nil)
}

// InjectCallAt is InjectAt for a single-argument callback, avoiding the
// closure allocation on hot delivery paths.
func (e *Engine) InjectCallAt(t Time, rank *Rank, fnc func(any), arg any) *Event {
	return e.inject(t, rank, nil, fnc, arg)
}

func (e *Engine) inject(t Time, rank *Rank, fn func(), fnc func(any), arg any) *Event {
	if !e.ranked {
		panic("sim: Inject requires ranked mode")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: inject at %v before now %v", t, e.now))
	}
	if rank == nil {
		panic("sim: inject with nil rank")
	}
	ev := e.alloc()
	*ev = Event{at: t, rank: rank, fn: fn, fnc: fnc, arg: arg, queued: true}
	e.rh.push(ev)
	return ev
}

// ReserveRankSlot burns one push slot of the currently firing event and
// returns the context needed to reconstruct descendant ranks later:
// the firing event's rank, the current time, and the reserved slot.
// Deferred outcalls reserve their slot at log time so replayed
// sub-pushes (see ComposedRank) interleave with the handler's direct
// pushes exactly as inline execution would have ordered them. Panics
// outside an event handler.
func (e *Engine) ReserveRankSlot() (*Rank, Time, uint64) {
	if e.curRank == nil {
		panic("sim: ReserveRankSlot outside event context")
	}
	slot := e.pushSlot
	e.pushSlot++
	return e.curRank, e.now, slot
}

// ComposedRank builds the rank of sub-push sub (0-based) performed
// while replaying a deferred outcall that reserved slot at (parent,
// pushAt). Sub-push ordinals occupy the low idx bits, offset by one so
// the reserving context itself (sub-ordinal 0) sorts first.
func ComposedRank(parent *Rank, pushAt Time, slot, sub uint64) *Rank {
	if sub+1 >= 1<<subBits {
		panic("sim: outcall sub-push ordinal overflows rank encoding")
	}
	return &Rank{parent: parent, pushAt: pushAt, idx: slot<<subBits | (sub + 1)}
}

// CanonicalizeRanks rewrites the ranks of every event queued across the
// given engines into flat (parentless) ranks that preserve the relative
// order. Rank chains otherwise retain their full ancestry — O(total
// events fired) memory — so the PDES coordinator calls this at window
// barriers. It is safe there because every event pushed after the
// barrier carries pushAt strictly greater than any canonicalized
// pushAt (all queued events' pushes happened at or before the barrier's
// deadline), so no new tie against a flattened rank can arise, and
// driver-context idx values (>= 1<<secShift) stay above the ordinals.
func CanonicalizeRanks(engines []*Engine) {
	var all []*Event
	for _, e := range engines {
		if !e.ranked {
			panic("sim: CanonicalizeRanks on unranked engine")
		}
		for _, ev := range e.rh.ev {
			if !ev.dead {
				all = append(all, ev)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return rankEventLess(all[i], all[j]) })
	for ord, ev := range all {
		ev.rank = &Rank{pushAt: ev.rank.pushAt, idx: uint64(ord)}
	}
	// Flat rewrite is order-isomorphic, so each heap's invariant holds.
}
