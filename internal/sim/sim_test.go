package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double-cancel and cancel-nil must be harmless.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelMiddleOfQueue(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	ev := e.At(20, func() { order = append(order, 2) })
	e.At(30, func() { order = append(order, 3) })
	e.Cancel(ev)
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25 (advanced to deadline)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 100 {
			e.After(1, grow)
		}
	}
	e.At(0, grow)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

// Property: regardless of insertion order, events fire in nondecreasing
// time order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(times []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, raw := range times {
			at := Time(raw % 10000)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(50)
		fired := make([]bool, n)
		evs := make([]*Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.At(Time(rng.Intn(1000)), func() { fired[i] = true })
		}
		canceled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				canceled[i] = true
				e.Cancel(evs[i])
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if fired[i] == canceled[i] {
				t.Fatalf("iter %d event %d: fired=%v canceled=%v", iter, i, fired[i], canceled[i])
			}
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
