package fuzz

// Determinism-equivalence for the parallel sweep: the rendered report —
// the tool's actual observable output — must be byte-identical whether
// cases run sequentially or sharded across eight workers. This is one
// of the two headline guarantees of the runner rework (the other is the
// calendar-queue differential test in internal/sim) and runs under
// -race in CI's race job.

import (
	"bytes"
	"testing"

	"cenju4/internal/core"
)

func equivalenceOptions(parallel int) Options {
	return Options{
		Seed:     42,
		Nodes:    4,
		Ops:      150,
		Rounds:   2,
		Patterns: AllPatterns(),
		Cells: []Cell{
			{Mode: core.ModeQueuing, Multicast: true, Stages: 2},
			{Mode: core.ModeNack, Multicast: false, Stages: 2},
			{Mode: core.ModeQueuing, Multicast: true, Update: true, Stages: 2},
		},
		Parallel: parallel,
	}
}

func TestParallelReportByteIdentical(t *testing.T) {
	seq := Run(equivalenceOptions(1)).String()
	for _, workers := range []int{2, 8} {
		par := Run(equivalenceOptions(workers)).String()
		if par != seq {
			t.Fatalf("parallel=%d report differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, seq, par)
		}
	}
}

// TestParallelProgressByteIdentical: the per-case progress stream is
// also emitted in case order regardless of completion order.
func TestParallelProgressByteIdentical(t *testing.T) {
	var seqBuf, parBuf bytes.Buffer
	o := equivalenceOptions(1)
	o.Progress = &seqBuf
	Run(o)
	o = equivalenceOptions(8)
	o.Progress = &parBuf
	Run(o)
	if seqBuf.String() != parBuf.String() {
		t.Fatalf("progress streams differ:\n--- sequential ---\n%s--- parallel ---\n%s",
			seqBuf.String(), parBuf.String())
	}
}

// TestParallelFailureReporting: an injected protocol bug is detected
// and reported identically at both parallelism levels (shrinking
// included — the shrinker runs inside the worker).
func TestParallelFailureReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking sweep is slow under -short")
	}
	opts := func(parallel int) Options {
		o := equivalenceOptions(parallel)
		o.Faults = &core.Faults{SkipInvalidate: true}
		o.Shrink = true
		o.MaxShrinkRuns = 40
		return o
	}
	seq := Run(opts(1))
	par := Run(opts(8))
	if !seq.Failed() {
		t.Fatal("injected fault not detected")
	}
	if seq.String() != par.String() {
		t.Fatalf("failure reports differ:\n--- sequential ---\n%s--- parallel ---\n%s",
			seq.String(), par.String())
	}
}
