package fuzz

import (
	"fmt"
	"strings"

	"cenju4/internal/faults"
)

// Chaos sweeps run the fuzz matrix under a grid of fault plans and
// hold each plan to its contract:
//
//   - a recoverable plan (faults confined to the request/reply legs
//     the master's timeout+retransmit machinery covers) must pass the
//     shadow-memory oracle on every case, and the whole sweep must be
//     byte-identical at every parallelism level;
//   - an unrecoverable plan (faults on legs recovery cannot repair,
//     e.g. dropped forwards) must abort within the event budget — never
//     hang, never corrupt silently. Under the queuing protocol the
//     wedge goes quiescent and the watchdog fires with a stuck-state
//     diagnosis; under the nack protocol the wedge livelocks (endless
//     nack/retry) and the event budget is the backstop that bounds it.

// Plan is one named fault plan with its expected outcome.
type Plan struct {
	Name string
	Spec faults.Spec
	// ExpectRecover: every case completes and passes the oracle.
	// Otherwise: at least one case must trip the watchdog, and every
	// tripped case must carry a stuck-state diagnosis.
	ExpectRecover bool
}

// DefaultPlans is the chaos grid: every recoverable preset, plus one
// deliberately unrecoverable plan proving the watchdog story.
func DefaultPlans() []Plan {
	var plans []Plan
	for _, p := range faults.Presets() {
		plans = append(plans, Plan{
			Name: p.Name,
			Spec: p.Spec,
			// Forward-scope faults hit the home->slave leg, which the
			// master-side retransmit cannot repair (the retransmitted
			// request parks behind the wedged pending entry).
			ExpectRecover: p.Spec.Scope == faults.ScopeRequestReply,
		})
	}
	return plans
}

// PlanVerdict is the outcome of one plan's sweep.
type PlanVerdict struct {
	Plan   Plan
	Report *Report
	// Watchdogs counts cases aborted by the quiescence watchdog.
	Watchdogs int
	// BudgetAborts counts cases stopped by the event budget (livelock
	// under an unrecoverable plan; a contract violation for a
	// recoverable one).
	BudgetAborts int
	// Completed counts cases that ran to completion.
	Completed int
	// DigestMismatch names the first case whose digest differed
	// between parallel and sequential execution ("" = none).
	DigestMismatch string
	// Problems lists contract violations (empty = plan passed).
	Problems []string
}

// Failed reports whether the plan violated its contract.
func (v *PlanVerdict) Failed() bool { return len(v.Problems) > 0 }

// ChaosOptions parameterizes a chaos sweep.
type ChaosOptions struct {
	// Fuzz is the base matrix each plan runs over (Fault is overwritten
	// per plan).
	Fuzz Options
	// Plans is the fault-plan grid (nil = DefaultPlans).
	Plans []Plan
	// CheckParallel re-runs each recoverable plan sequentially and
	// compares per-case digests against the parallel sweep.
	CheckParallel bool
}

// DefaultChaosBudget is the per-case event ceiling chaos sweeps apply
// when the caller sets none: far beyond any completing smoke case, and
// what bounds a nack-protocol livelock to roughly a second of wall
// time.
const DefaultChaosBudget = 10_000_000

// RunChaos executes the fuzz matrix under every plan and judges each
// against its contract.
func RunChaos(o ChaosOptions) *ChaosReport {
	plans := o.Plans
	if plans == nil {
		plans = DefaultPlans()
	}
	if o.Fuzz.MaxEvents == 0 {
		o.Fuzz.MaxEvents = DefaultChaosBudget
	}
	rep := &ChaosReport{}
	for _, plan := range plans {
		rep.Verdicts = append(rep.Verdicts, runPlan(o, plan))
	}
	return rep
}

func runPlan(o ChaosOptions, plan Plan) *PlanVerdict {
	v := &PlanVerdict{Plan: plan}
	fo := o.Fuzz
	fo.Fault = plan.Spec
	v.Report = Run(fo)
	for _, res := range v.Report.Results {
		switch {
		case res.Watchdog:
			v.Watchdogs++
			if !strings.Contains(res.Panic, "never finished") {
				v.Problems = append(v.Problems,
					fmt.Sprintf("%v: watchdog abort without diagnosis: %s", res.Case, res.Panic))
			}
		case strings.Contains(res.Panic, "event budget"):
			v.BudgetAborts++
			if plan.ExpectRecover {
				v.Problems = append(v.Problems,
					fmt.Sprintf("%v: recoverable plan exceeded the event budget: %s", res.Case, res.Panic))
			}
		case res.Failed():
			v.Problems = append(v.Problems, fmt.Sprintf("%v: %s", res.Case, failReason(res)))
		default:
			v.Completed++
		}
	}
	if plan.ExpectRecover {
		if v.Watchdogs > 0 {
			v.Problems = append(v.Problems,
				fmt.Sprintf("recoverable plan tripped the watchdog on %d cases", v.Watchdogs))
		}
		if o.CheckParallel {
			seq := fo
			seq.Parallel = 1
			sr := Run(seq)
			for i, res := range v.Report.Results {
				if res.Digest != sr.Results[i].Digest {
					v.DigestMismatch = res.Case.String()
					v.Problems = append(v.Problems, fmt.Sprintf(
						"%v: parallel digest %s != sequential %s",
						res.Case, res.Digest, sr.Results[i].Digest))
					break
				}
			}
		}
	} else if v.Watchdogs == 0 && v.BudgetAborts == 0 {
		v.Problems = append(v.Problems,
			"unrecoverable plan: no case tripped the watchdog or the event budget (placebo)")
	}
	return v
}

func failReason(res *Result) string {
	switch {
	case res.Panic != "":
		return "panic: " + res.Panic
	case res.ValidateErr != "":
		return "validate: " + res.ValidateErr
	default:
		return fmt.Sprintf("%d oracle violations", res.TotalViolations)
	}
}

// ChaosReport is the outcome of a chaos sweep.
type ChaosReport struct {
	Verdicts []*PlanVerdict
}

// Failed reports whether any plan violated its contract.
func (r *ChaosReport) Failed() bool {
	for _, v := range r.Verdicts {
		if v.Failed() {
			return true
		}
	}
	return false
}

// String renders the deterministic verdict table, with the first
// watchdog diagnosis per unrecoverable plan (proof it is actionable).
func (r *ChaosReport) String() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		status := "ok  "
		if v.Failed() {
			status = "FAIL"
		}
		expect := "recover"
		if !v.Plan.ExpectRecover {
			expect = "watchdog"
		}
		fmt.Fprintf(&b, "%s plan %-14s [%s] %v: %d completed, %d watchdog-aborted, %d budget-aborted\n",
			status, v.Plan.Name, expect, v.Plan.Spec, v.Completed, v.Watchdogs, v.BudgetAborts)
		for _, p := range v.Problems {
			fmt.Fprintf(&b, "     problem: %s\n", p)
		}
		// Print the first stuck-state diagnosis whenever the watchdog
		// fired: for an unrecoverable plan it is proof the abort is
		// actionable, for a failed recoverable plan it is the evidence
		// of what wedged.
		if v.Watchdogs > 0 {
			for _, res := range v.Report.Results {
				if res.Watchdog {
					fmt.Fprintf(&b, "     first diagnosis (%v):\n", res.Case)
					for _, line := range strings.Split(strings.TrimRight(res.Panic, "\n"), "\n") {
						fmt.Fprintf(&b, "       %s\n", line)
					}
					break
				}
			}
		}
	}
	if r.Failed() {
		b.WriteString("chaos: FAILED\n")
	} else {
		b.WriteString("chaos: all plans met their contracts\n")
	}
	return b.String()
}
