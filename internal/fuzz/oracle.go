package fuzz

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/core"
	"cenju4/internal/machine"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// Violation is one consistency-oracle failure.
type Violation struct {
	At   sim.Time
	Node topology.NodeID
	Addr topology.Addr
	Got  uint64
	Want uint64
	Kind string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %v: %v %v got tag %d want %d",
		v.Kind, v.At, v.Node, v.Addr, v.Got, v.Want)
}

// maxViolations bounds how many violations one case records; further
// ones only bump the counter (one bad store typically cascades).
const maxViolations = 16

// oracle shadows the machine's data: the value-tracking hooks report
// every serialized store and every observed load, and the oracle checks
// each observation against the per-block coherence order.
//
// Blocks under the invalidation protocol are checked strictly: a load
// must return the globally latest serialized tag, which is sound
// because the network delivers in order over unique paths and a store
// is serialized only once every stale copy is gone. Blocks under the
// update protocol propagate new values non-atomically, so they get a
// relaxed check instead: every observed value must exist in the block's
// version history and each node must see versions in non-decreasing
// order.
type oracle struct {
	update func(topology.Addr) bool // nil: everything strict
	hist   map[topology.Addr][]uint64
	index  map[topology.Addr]map[uint64]int // tag -> position (0 = initial)
	seen   map[topology.Addr]map[topology.NodeID]int
	viol   []Violation
	total  int
}

func newOracle(update func(topology.Addr) bool) *oracle {
	return &oracle{
		update: update,
		hist:   make(map[topology.Addr][]uint64),
		index:  make(map[topology.Addr]map[uint64]int),
		seen:   make(map[topology.Addr]map[topology.NodeID]int),
	}
}

func (o *oracle) isUpdate(b topology.Addr) bool {
	return o.update != nil && o.update(b)
}

func (o *oracle) record(v Violation) {
	o.total++
	if len(o.viol) < maxViolations {
		o.viol = append(o.viol, v)
	}
}

// Violations returns the recorded failures in simulation order.
func (o *oracle) Violations() []Violation { return o.viol }

// last returns the most recent serialized tag (0 before any store).
func (o *oracle) last(b topology.Addr) uint64 {
	h := o.hist[b]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1]
}

// StoreOrdered implements core.ValueObserver: tag became block b's
// newest version at its serialization point.
func (o *oracle) StoreOrdered(node topology.NodeID, addr topology.Addr, tag uint64, update bool, at sim.Time) {
	b := addr.Block()
	if o.isUpdate(b) != update {
		// A write-through on an invalidation block, or an exclusive
		// grant sneaking a silent upgrade onto an update block — either
		// way the two protocols are mixing on one block.
		o.record(Violation{At: at, Node: node, Addr: b, Got: tag, Want: o.last(b),
			Kind: "protocol-mix"})
	}
	o.hist[b] = append(o.hist[b], tag)
	idx := o.index[b]
	if idx == nil {
		idx = map[uint64]int{0: 0}
		o.index[b] = idx
	}
	idx[tag] = len(o.hist[b])
}

// LoadObserved implements core.ValueObserver: node's load of addr
// returned tag.
func (o *oracle) LoadObserved(node topology.NodeID, addr topology.Addr, tag uint64, at sim.Time) {
	b := addr.Block()
	if !o.isUpdate(b) {
		if want := o.last(b); tag != want {
			kind := "stale-load"
			if _, known := o.index[b][tag]; !known && tag != 0 {
				kind = "phantom-value"
			}
			o.record(Violation{At: at, Node: node, Addr: b, Got: tag, Want: want, Kind: kind})
		}
		return
	}
	// Update block: membership plus per-node monotonicity.
	pos, known := 0, tag == 0
	if !known {
		pos, known = o.index[b][tag]
	}
	if !known {
		o.record(Violation{At: at, Node: node, Addr: b, Got: tag, Want: o.last(b),
			Kind: "phantom-value"})
		return
	}
	nodes := o.seen[b]
	if nodes == nil {
		nodes = make(map[topology.NodeID]int)
		o.seen[b] = nodes
	}
	if prev := nodes[node]; pos < prev {
		o.record(Violation{At: at, Node: node, Addr: b, Got: tag, Want: o.hist[b][prev-1],
			Kind: "non-monotonic-load"})
		return
	}
	nodes[node] = pos
}

// checkFinal sweeps the block universe once all traffic has drained:
// every surviving cached copy, the home memory image (absent a dirty
// owner), and — for update blocks — every third-level cache must have
// converged on the block's final version.
func (o *oracle) checkFinal(m *machine.Machine, vt *core.ValueTracker, blocks []topology.Addr) {
	now := m.Engine().Now()
	for _, b := range blocks {
		want := o.last(b)
		dirty := false
		for n := 0; n < m.Nodes(); n++ {
			node := topology.NodeID(n)
			st := m.Controller(node).Cache().State(b)
			if st == cache.Invalid {
				continue
			}
			if st == cache.Modified {
				dirty = true
			}
			if got := vt.CacheValue(node, b); got != want {
				o.record(Violation{At: now, Node: node, Addr: b, Got: got, Want: want,
					Kind: "quiescent-cache-stale"})
			}
		}
		switch {
		case o.isUpdate(b):
			if got := vt.MemValue(b.Home(), b); got != want {
				o.record(Violation{At: now, Node: b.Home(), Addr: b, Got: got, Want: want,
					Kind: "quiescent-mem-stale"})
			}
			if len(o.hist[b]) > 0 {
				for n := 0; n < m.Nodes(); n++ {
					node := topology.NodeID(n)
					if got := vt.L3Value(node, b); got != want {
						o.record(Violation{At: now, Node: node, Addr: b, Got: got, Want: want,
							Kind: "quiescent-l3-stale"})
					}
				}
			}
		case !dirty:
			if got := vt.MemValue(b.Home(), b); got != want {
				o.record(Violation{At: now, Node: b.Home(), Addr: b, Got: got, Want: want,
					Kind: "quiescent-mem-stale"})
			}
		}
	}
}
