package fuzz

import (
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/cpu"
)

// smokeOptions is the bounded sweep wired into `go test`: the full
// pattern x cell matrix with a small per-case budget. `go test -short`
// trims the budget further so the suite stays fast in CI's quick lane.
func smokeOptions() Options {
	o := Options{Seed: 1, Ops: 1500, Rounds: 3}
	if testing.Short() {
		o.Ops = 400
		o.Rounds = 2
	}
	return o
}

// TestSmoke runs every pattern against every configuration cell and
// requires a clean bill: no oracle violations, no invariant failures,
// no deadlocks.
func TestSmoke(t *testing.T) {
	rep := Run(smokeOptions())
	if rep.Failed() {
		t.Fatalf("fuzz smoke failed:\n%s", rep.String())
	}
	if len(rep.Results) != len(AllPatterns())*len(DefaultCells()) {
		t.Fatalf("ran %d cases, want %d", len(rep.Results), len(AllPatterns())*len(DefaultCells()))
	}
}

// TestInjectedInvalidationBugCaught plants the classic directory bug —
// slaves skip the invalidation but still acknowledge — and requires the
// oracle to catch the resulting stale load and shrink it to a small
// reproducer.
func TestInjectedInvalidationBugCaught(t *testing.T) {
	rep := Run(Options{
		Seed: 1, Ops: 600, Rounds: 2,
		Faults:   &core.Faults{SkipInvalidate: true},
		Patterns: []Pattern{PatternHotspot},
		Cells: []Cell{
			{Mode: core.ModeQueuing, Multicast: true, Stages: 2},
			{Mode: core.ModeNack, Multicast: true, Stages: 2},
		},
		Shrink: true, MaxShrinkRuns: 200,
	})
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("injected invalidation bug not caught:\n%s", rep.String())
	}
	r := fails[0]
	orig := r.Loads + r.Stores
	if r.Reproducer == "" || r.ShrunkOps >= orig {
		t.Fatalf("no useful shrink: %d ops -> %d (reproducer %q)", orig, r.ShrunkOps, r.Reproducer)
	}
	if r.ShrunkOps > 24 {
		t.Errorf("reproducer still has %d ops; expected a tight shrink", r.ShrunkOps)
	}
	// The minimized streams must still fail when re-executed directly.
	if caught := oracleOrValidatorCaught(r); !caught {
		t.Errorf("failure carried no oracle violation or validator error:\n%s", rep.String())
	}
}

func oracleOrValidatorCaught(r *Result) bool {
	return r.TotalViolations > 0 || r.ValidateErr != "" || r.Panic != ""
}

// TestInjectedReservationBugCaught plants the queuing protocol's
// subtlest bug — the home never sets the reservation bit, so a drained
// queue's requests are forgotten — and requires the harness to flag the
// resulting deadlock (captured panic plus idle-queue invariant) without
// crashing the test process.
func TestInjectedReservationBugCaught(t *testing.T) {
	rep := Run(Options{
		Seed: 1, Ops: 600, Rounds: 2,
		Faults:   &core.Faults{SkipReservation: true},
		Patterns: []Pattern{PatternHotspot, PatternMigratory},
		Cells:    []Cell{{Mode: core.ModeQueuing, Multicast: true, Stages: 2}},
		Shrink:   true, MaxShrinkRuns: 200,
	})
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("injected reservation bug not caught:\n%s", rep.String())
	}
	sawDeadlock := false
	for _, r := range fails {
		if strings.Contains(r.Panic, "never finished") || strings.Contains(r.ValidateErr, "queue") {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Errorf("reservation bug failures did not look like a deadlock:\n%s", rep.String())
	}
}

// TestInjectedStaleReadBugCaught plants a home that serves dirty blocks
// straight from memory.
func TestInjectedStaleReadBugCaught(t *testing.T) {
	rep := Run(Options{
		Seed: 1, Ops: 600, Rounds: 2,
		Faults:   &core.Faults{StaleDirtyRead: true},
		Patterns: []Pattern{PatternMigratory},
		Cells:    []Cell{{Mode: core.ModeQueuing, Multicast: true, Stages: 2}},
	})
	if len(rep.Failures()) == 0 {
		t.Fatalf("injected stale-read bug not caught:\n%s", rep.String())
	}
}

// TestReportDeterminism: same seed and options must reproduce a
// byte-identical report — the property that makes -replay useful.
func TestReportDeterminism(t *testing.T) {
	opts := Options{Seed: 42, Ops: 300, Rounds: 2,
		Patterns: []Pattern{PatternUniform, PatternEviction},
		Cells: []Cell{
			{Mode: core.ModeQueuing, Multicast: true, Update: true, Stages: 2},
			{Mode: core.ModeNack, Multicast: false, Stages: 4},
		}}
	a := Run(opts).String()
	b := Run(opts).String()
	if a != b {
		t.Fatalf("reports differ for identical seed:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestGenerateDeterminism: stream generation is a pure function of
// (pattern, seed, nodes, ops).
func TestGenerateDeterminism(t *testing.T) {
	for _, p := range AllPatterns() {
		a := Generate(p, 7, 8, 400)
		b := Generate(p, 7, 8, 400)
		if FormatOps(a) != FormatOps(b) {
			t.Fatalf("%v: generation not deterministic", p)
		}
		if l, s := CountOps(a); l+s == 0 {
			t.Fatalf("%v: generated no accesses", p)
		}
		if len(Universe(a)) == 0 {
			t.Fatalf("%v: empty shared-block universe", p)
		}
	}
}

// TestShrinkPreservesFailure: the shrinker only ever keeps candidates
// that still fail, and the result re-fails when executed.
func TestShrinkPreservesFailure(t *testing.T) {
	c := Case{
		Seed: CaseSeed(1, 0), Nodes: 8, Ops: 400, Rounds: 2,
		Pattern: PatternHotspot,
		Cell:    Cell{Mode: core.ModeQueuing, Multicast: true, Stages: 2},
		Faults:  &core.Faults{SkipInvalidate: true},
	}
	ops := Generate(c.Pattern, c.Seed, c.Nodes, c.Ops)
	if !RunOps(c, ops).Failed() {
		t.Skip("seed did not trigger the injected bug at this budget")
	}
	min, runs := Shrink(c, ops, 200)
	if runs == 0 {
		t.Fatal("shrinker did no work")
	}
	if !RunOps(c, min).Failed() {
		t.Fatal("shrunk reproducer no longer fails")
	}
}

// TestParsePattern covers the CLI name round-trip.
func TestParsePattern(t *testing.T) {
	for _, p := range AllPatterns() {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Fatal("ParsePattern accepted a bogus name")
	}
}

// TestRoundSlice: the rounds partition exactly covers the stream.
func TestRoundSlice(t *testing.T) {
	ops := make([]cpu.Op, 10)
	total := 0
	for r := 0; r < 4; r++ {
		total += len(roundSlice(ops, r, 4))
	}
	if total != len(ops) {
		t.Fatalf("rounds cover %d of %d ops", total, len(ops))
	}
	if got := roundSlice(nil, 0, 4); len(got) != 0 {
		t.Fatalf("empty stream sliced to %d ops", len(got))
	}
}
