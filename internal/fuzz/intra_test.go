package fuzz

import (
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/cpu"
	"cenju4/internal/machine"
	"cenju4/internal/topology"
)

// intraCells is a small slice of the protocol matrix that still covers
// both coherence modes, multicast on/off, the update protocol, and the
// extreme stage counts. The full matrix is the sequential fuzzer's job;
// here each cell exists to push differently-shaped traffic through the
// PDES window protocol.
func intraCells() []Cell {
	return []Cell{
		{Mode: core.ModeQueuing, Multicast: true, Stages: 4},               // queuing baseline
		{Mode: core.ModeNack, Multicast: false, Stages: 2},                 // nack, narrow net
		{Mode: core.ModeQueuing, Multicast: true, Update: true, Stages: 6}, // update blocks in play
		{Mode: core.ModeNack, Multicast: true, Update: true, Stages: 4},    // nack + update + multicast
	}
}

// runIntraStreams executes generated op streams on a fresh machine at
// the given shard count and returns the final-round digest. Two rounds
// reuse one machine across Run calls, mirroring RunOps's round loop, so
// the PDES driver-section bookkeeping is exercised across quiescence.
func runIntraStreams(c Cell, ops [][]cpu.Op, shards, rounds int) string {
	var update func(topology.Addr) bool
	if c.Update {
		update = updatePredicate
	}
	m := machine.New(machine.Config{
		Nodes:         len(ops),
		Stages:        c.Stages,
		Multicast:     c.Multicast,
		Mode:          c.Mode,
		UpdateMode:    update,
		IntraParallel: shards,
		IntraWorkers:  2,
		CPU:           cpu.Config{Quantum: 1000},
	})
	var digest string
	for r := 0; r < rounds; r++ {
		progs := make([]cpu.Program, len(ops))
		for n := range progs {
			progs[n] = &cpu.SliceProgram{Ops: roundSlice(ops[n], r, rounds)}
		}
		digest = machine.Digest(m.Run(progs))
	}
	return digest
}

// TestIntraParallelFuzzMatrixIdentity: for every adversarial traffic
// pattern across a representative protocol-cell slice, the machine
// digest under IntraParallel K in {2, 4, 8} is byte-identical to the
// sequential kernel's. The golden-scale identity test pins one large
// workload; this one sweeps the protocol races the fuzzer was built to
// provoke (directory overflow, migratory ownership, false sharing,
// eviction storms) through the window/replay machinery. CI runs it
// under -race, which additionally checks the phase-disjoint ownership
// claims in internal/psim.
func TestIntraParallelFuzzMatrixIdentity(t *testing.T) {
	const (
		nodes  = 16
		nops   = 320
		rounds = 2
	)
	cells := intraCells()
	if testing.Short() {
		cells = cells[:2]
	}
	for _, cell := range cells {
		for _, p := range AllPatterns() {
			cell, p := cell, p
			t.Run(cell.String()+"/"+p.String(), func(t *testing.T) {
				t.Parallel()
				seed := CaseSeed(1, int(p)<<8|cell.Stages)
				ops := Generate(p, seed, nodes, nops)
				seq := runIntraStreams(cell, ops, 1, rounds)
				for _, k := range []int{2, 4, 8} {
					if got := runIntraStreams(cell, ops, k, rounds); got != seq {
						t.Errorf("K=%d: digest %s != sequential %s", k, got, seq)
					}
				}
			})
		}
	}
}
