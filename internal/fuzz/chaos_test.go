package fuzz

import (
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/faults"
)

// smokeFuzz is the small matrix the chaos self-tests sweep: two
// sharing-heavy patterns over both protocol modes, enough traffic to
// exercise every fault class without slowing `go test`.
func smokeFuzz(seed uint64) Options {
	return Options{
		Seed:     seed,
		Nodes:    8,
		Ops:      400,
		Rounds:   2,
		Patterns: []Pattern{PatternHotspot, PatternMigratory},
		Cells: []Cell{
			{Mode: core.ModeQueuing, Multicast: true, Stages: 4},
			{Mode: core.ModeNack, Multicast: true, Stages: 4},
		},
	}
}

func TestChaosGridMeetsContracts(t *testing.T) {
	rep := RunChaos(ChaosOptions{Fuzz: smokeFuzz(42), CheckParallel: true})
	if rep.Failed() {
		t.Fatalf("chaos sweep failed:\n%s", rep)
	}
	var sawRecover, sawWatchdog bool
	for _, v := range rep.Verdicts {
		if v.Plan.ExpectRecover {
			sawRecover = true
			if v.Completed == 0 {
				t.Errorf("plan %s: no case completed", v.Plan.Name)
			}
		} else {
			sawWatchdog = true
			if v.Watchdogs == 0 {
				t.Errorf("plan %s: watchdog never tripped", v.Plan.Name)
			}
		}
	}
	if !sawRecover || !sawWatchdog {
		t.Fatal("default grid must include both recoverable and unrecoverable plans")
	}
	out := rep.String()
	for _, want := range []string{"first diagnosis", "retransmits exhausted", "all plans met"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos report missing %q:\n%s", want, out)
		}
	}
}

func TestFaultSweepDigestsIdenticalAcrossParallelism(t *testing.T) {
	o := smokeFuzz(7)
	o.Fault = faults.Spec{Seed: 7, Drop: 0.02, Dup: 0.02, Corrupt: 0.01}.Normalize()
	par := o
	par.Parallel = 4
	seq := o
	seq.Parallel = 1
	pr, sr := Run(par), Run(seq)
	if pr.String() != sr.String() {
		t.Fatalf("reports differ across parallelism:\n--- parallel ---\n%s--- sequential ---\n%s", pr, sr)
	}
	for i := range pr.Results {
		if pr.Results[i].Digest == "" {
			t.Fatalf("case %v completed without a digest", pr.Results[i].Case)
		}
		if pr.Results[i].Digest != sr.Results[i].Digest {
			t.Fatalf("case %v digest differs: %s vs %s",
				pr.Results[i].Case, pr.Results[i].Digest, sr.Results[i].Digest)
		}
	}
}

func TestFaultSweepSeedsDiverge(t *testing.T) {
	a := smokeFuzz(7)
	a.Fault = faults.Spec{Seed: 7, Drop: 0.05}.Normalize()
	b := smokeFuzz(7)
	b.Fault = faults.Spec{Seed: 8, Drop: 0.05}.Normalize()
	ra, rb := Run(a), Run(b)
	same := true
	for i := range ra.Results {
		if ra.Results[i].Digest != rb.Results[i].Digest {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different fault seeds produced identical digests on every case (placebo)")
	}
}

func TestEventBudgetAbortIsNotAWatchdogTrip(t *testing.T) {
	c := Case{
		Seed: 1, Nodes: 8, Ops: 400, Rounds: 1,
		Pattern:   PatternHotspot,
		Cell:      Cell{Mode: core.ModeQueuing, Multicast: true, Stages: 4},
		MaxEvents: 100,
	}
	res := RunOps(c, Generate(c.Pattern, c.Seed, c.Nodes, c.Ops))
	if res.Panic == "" || !strings.Contains(res.Panic, "event budget") {
		t.Fatalf("budget overrun not reported: %q", res.Panic)
	}
	if res.Watchdog {
		t.Fatal("budget abort misclassified as a watchdog trip")
	}
}
