package fuzz

import (
	"context"
	"fmt"
	"io"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/cpu"
	"cenju4/internal/faults"
	"cenju4/internal/machine"
	"cenju4/internal/metrics"
	"cenju4/internal/runner"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
	"cenju4/internal/trace"
)

// Cell is one point of the protocol configuration matrix.
type Cell struct {
	Mode      core.Mode
	Multicast bool
	Update    bool
	Stages    int
}

func (c Cell) String() string {
	mc, upd := "mc-", "upd-"
	if c.Multicast {
		mc = "mc+"
	}
	if c.Update {
		upd = "upd+"
	}
	return fmt.Sprintf("%v/%s/%s/s%d", c.Mode, mc, upd, c.Stages)
}

// DefaultCells is the full matrix from the issue: {queuing, nack} x
// {multicast on, off} x {update on, off} x {2, 4, 6 network stages}.
func DefaultCells() []Cell {
	var cells []Cell
	for _, mode := range []core.Mode{core.ModeQueuing, core.ModeNack} {
		for _, mc := range []bool{true, false} {
			for _, upd := range []bool{false, true} {
				for _, stages := range []int{2, 4, 6} {
					cells = append(cells, Cell{Mode: mode, Multicast: mc, Update: upd, Stages: stages})
				}
			}
		}
	}
	return cells
}

// updatePredicate marks every fourth shared block for the update
// protocol, so update cells exercise both protocols side by side.
func updatePredicate(a topology.Addr) bool {
	return a.Shared() && a.BlockIndex()%4 == 1
}

// Case fully determines one fuzz execution.
type Case struct {
	Seed    uint64
	Nodes   int
	Ops     int
	Rounds  int
	Pattern Pattern
	Cell    Cell
	// Faults injects deliberate protocol bugs (self-tests only).
	Faults *core.Faults
	// Fault is the deterministic network fault plan (zero = fault-free).
	Fault faults.Spec
	// MaxEvents bounds the run (0 = unlimited); overruns surface as a
	// budget abort in Panic.
	MaxEvents uint64
	// Trace attaches a protocol trace collector; on failure the result
	// carries the delivery trace for the first violating block.
	Trace bool
	// Metrics collects the machine's observability registry into the
	// result regardless of outcome.
	Metrics bool
}

func (c Case) String() string {
	return fmt.Sprintf("%v %v seed=%d ops=%d", c.Pattern, c.Cell, c.Seed, c.Ops)
}

// Result is the outcome of one case.
type Result struct {
	Case       Case
	Loads      int
	Stores     int
	Violations []Violation
	// TotalViolations counts everything including those beyond the
	// recording cap.
	TotalViolations int
	ValidateErr     string
	Panic           string
	// Watchdog is set when the machine's quiescence watchdog aborted
	// the case: the fault plan was unrecoverable (Panic carries the
	// stuck-state diagnosis). Chaos sweeps expect it for such plans.
	Watchdog bool
	// Digest fingerprints the completed run's result (empty when the
	// case aborted); chaos sweeps compare it across parallelism levels.
	Digest     string
	Quiescents int
	SimTime    sim.Time
	Events     uint64
	Misses     uint64
	// Shrink results (set by Run when a failing case shrinks).
	Reproducer string
	ShrinkRuns int
	ShrunkOps  int
	TraceDump  string
	// Metrics is the case's registry (only when Case.Metrics).
	Metrics *metrics.Registry
	// Trace is the full protocol event collector (only when Case.Trace);
	// export it with trace.WriteChrome.
	Trace *trace.Collector
}

// Failed reports whether the oracle, validator, or simulator flagged
// the case.
func (r *Result) Failed() bool {
	return r.TotalViolations > 0 || r.ValidateErr != "" || r.Panic != ""
}

// Options parameterizes a fuzz run.
type Options struct {
	Seed  uint64
	Nodes int
	// Ops is the access budget per case.
	Ops int
	// Rounds splits each case's streams into quiescent rounds; the
	// machine validates at every round boundary.
	Rounds   int
	Patterns []Pattern
	Cells    []Cell
	// Shrink minimizes failing cases to a reproducer.
	Shrink bool
	// MaxShrinkRuns bounds the shrinker's re-executions per failure.
	MaxShrinkRuns int
	// Faults forwards injected bugs to every case (self-tests).
	Faults *core.Faults
	// Fault forwards a deterministic network fault plan to every case.
	Fault faults.Spec
	// MaxEvents bounds every case's event count (0 = unlimited). Fault
	// sweeps set it: an unrecoverable plan under the nack protocol
	// livelocks (endless nack/retry around the wedged block) instead of
	// going quiescent, and the budget is what turns that into a bounded
	// abort.
	MaxEvents uint64
	// CollectMetrics attaches a metrics registry to every case; merge
	// them with Report.MergedMetrics.
	CollectMetrics bool
	// Progress, when set, receives one line per completed case. Lines
	// are emitted in case order regardless of Parallel.
	Progress io.Writer
	// Parallel is the number of cases run concurrently (each on its own
	// machine). Zero means GOMAXPROCS; 1 forces sequential. The report
	// is byte-identical at every setting: per-case seeds derive from the
	// case index and results merge in index order.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Ops == 0 {
		o.Ops = 2000
	}
	if o.Rounds == 0 {
		o.Rounds = 4
	}
	if len(o.Patterns) == 0 {
		o.Patterns = AllPatterns()
	}
	if len(o.Cells) == 0 {
		o.Cells = DefaultCells()
	}
	if o.MaxShrinkRuns == 0 {
		o.MaxShrinkRuns = 300
	}
	return o
}

// CaseSeed derives the i-th case's seed from the run seed
// (runner.DeriveSeed's splitmix64 mixing: distinct per-case seeds from
// one user seed, stable across runs).
func CaseSeed(seed uint64, i int) uint64 {
	return runner.DeriveSeed(seed, i)
}

// Run executes the full pattern x cell sweep and returns the report.
// Cases are sharded across Options.Parallel workers; because every
// case's seed derives from its matrix index and results merge in index
// order, the report is byte-identical at every parallelism level.
func Run(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{Options: o}
	var cases []Case
	for _, p := range o.Patterns {
		for _, cell := range o.Cells {
			cases = append(cases, Case{
				Seed:      CaseSeed(o.Seed, len(cases)),
				Nodes:     o.Nodes,
				Ops:       o.Ops,
				Rounds:    o.Rounds,
				Pattern:   p,
				Cell:      cell,
				Faults:    o.Faults,
				Fault:     o.Fault,
				MaxEvents: o.MaxEvents,
				Metrics:   o.CollectMetrics,
			})
		}
	}
	results, panics := runner.MapEach(
		runner.Options{
			Parallel: o.Parallel,
			Label:    func(i int) string { return cases[i].String() },
		},
		len(cases),
		func(i int) *Result {
			c := cases[i]
			ops := Generate(c.Pattern, c.Seed, c.Nodes, c.Ops)
			res := RunOps(c, ops)
			if res.Failed() && o.Shrink {
				min, runs := Shrink(c, ops, o.MaxShrinkRuns)
				res.Reproducer = FormatOps(min)
				res.ShrinkRuns = runs
				l, s := CountOps(min)
				res.ShrunkOps = l + s
			}
			return res
		},
		func(i int, res *Result) {
			if o.Progress != nil {
				status := "ok"
				if res.Failed() {
					status = "FAIL"
				}
				fmt.Fprintf(o.Progress, "%-4s %v\n", status, cases[i])
			}
		})
	// RunOps captures simulator panics itself; a runner-level panic means
	// the harness around it (generation, shrinking) blew up. Record it as
	// a failed result so the report stays complete instead of killing
	// the sweep.
	for _, p := range panics {
		results[p.Index] = &Result{Case: cases[p.Index], Panic: fmt.Sprintf("harness: %v", p.Value)}
	}
	rep.Results = results
	return rep
}

// RunOps executes one case on the given streams. It never panics:
// simulator deadlock panics are captured in the result.
func RunOps(c Case, ops [][]cpu.Op) (res *Result) {
	res = &Result{Case: c}
	res.Loads, res.Stores = CountOps(ops)

	var update func(topology.Addr) bool
	if c.Cell.Update {
		update = updatePredicate
	}
	m := machine.New(machine.Config{
		Nodes:      c.Nodes,
		Stages:     c.Cell.Stages,
		Multicast:  c.Cell.Multicast,
		Mode:       c.Cell.Mode,
		UpdateMode: update,
		Faults:     c.Faults,
		Fault:      c.Fault,
		// A short quantum makes the processors interleave at fine grain,
		// which is where protocol races live.
		CPU: cpu.Config{Quantum: 1000},
	})
	orc := newOracle(update)
	vt := m.TrackValues(orc)
	firstInvalid := m.AutoValidate()
	var col *trace.Collector
	if c.Trace {
		col = trace.NewCollector(8192)
		m.SetTracer(col.Tracer())
	}

	finish := func() {
		res.Violations = orc.Violations()
		res.TotalViolations = orc.total
		res.Trace = col
		if c.Metrics {
			res.Metrics = m.Metrics()
		}
		if err := firstInvalid(); err != nil {
			res.ValidateErr = err.Error()
		}
		if col != nil && res.Failed() {
			if len(res.Violations) > 0 {
				var b strings.Builder
				fmt.Fprintf(&b, "deliveries for %v:\n", res.Violations[0].Addr)
				for _, ev := range col.Deliveries(res.Violations[0].Addr) {
					fmt.Fprintf(&b, "  %v\n", ev)
				}
				res.TraceDump = b.String()
			} else {
				res.TraceDump = col.String()
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res.Panic = fmt.Sprint(r)
			if _, ok := r.(*machine.DeadlockError); ok {
				res.Watchdog = true
			}
			finish()
		}
	}()

	rounds := c.Rounds
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		progs := make([]cpu.Program, c.Nodes)
		for n := range progs {
			progs[n] = &cpu.SliceProgram{Ops: roundSlice(ops[n], r, rounds)}
		}
		mr := runMachine(m, progs, c.MaxEvents)
		res.Quiescents++
		res.SimTime = mr.Time
		res.Events = mr.Events
		res.Misses = mr.Totals().Misses
		res.Digest = machine.Digest(mr)
		if orc.total > 0 || firstInvalid() != nil {
			break // already failing: stop early so shrinking stays cheap
		}
	}
	if orc.total == 0 && firstInvalid() == nil {
		orc.checkFinal(m, vt, Universe(ops))
	}
	finish()
	return res
}

// runMachine runs one round, optionally under an event budget. Budget
// and watchdog aborts both surface as panics so RunOps's recover path
// classifies them uniformly (machine.Run already panics on deadlock).
func runMachine(m *machine.Machine, progs []cpu.Program, maxEvents uint64) machine.Result {
	if maxEvents == 0 {
		return m.Run(progs)
	}
	r, err := m.RunContext(context.Background(), progs, maxEvents)
	if err != nil {
		panic(err)
	}
	return r
}

// roundSlice returns stream r of rounds equal chunks of ops.
func roundSlice(ops []cpu.Op, r, rounds int) []cpu.Op {
	chunk := (len(ops) + rounds - 1) / rounds
	lo := r * chunk
	if lo >= len(ops) {
		return nil
	}
	hi := lo + chunk
	if hi > len(ops) {
		hi = len(ops)
	}
	return ops[lo:hi]
}

// Report is the outcome of a full sweep.
type Report struct {
	Options Options
	Results []*Result
}

// MergedMetrics merges every case's registry in case order (nil when
// the sweep did not collect metrics). Case order is independent of
// Options.Parallel, so the merged report is too.
func (r *Report) MergedMetrics() *metrics.Registry {
	var merged *metrics.Registry
	for _, res := range r.Results {
		if res.Metrics == nil {
			continue
		}
		if merged == nil {
			merged = metrics.New()
		}
		merged.Merge(res.Metrics)
	}
	return merged
}

// Failed reports whether any case failed.
func (r *Report) Failed() bool {
	for _, res := range r.Results {
		if res.Failed() {
			return true
		}
	}
	return false
}

// Failures returns the failing cases.
func (r *Report) Failures() []*Result {
	var out []*Result
	for _, res := range r.Results {
		if res.Failed() {
			out = append(out, res)
		}
	}
	return out
}

// String renders the deterministic report: same seed and options yield
// byte-identical output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz seed=%d nodes=%d ops/case=%d rounds=%d cases=%d\n",
		r.Options.Seed, r.Options.Nodes, r.Options.Ops, r.Options.Rounds, len(r.Results))
	if r.Options.Fault.Enabled() {
		fmt.Fprintf(&b, "fault plan: %v\n", r.Options.Fault)
	}
	var loads, stores int
	var events uint64
	for _, res := range r.Results {
		status := "ok  "
		if res.Failed() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%s %-17v %-24v seed=%-20d ld=%-6d st=%-6d miss=%-6d t=%v\n",
			status, res.Case.Pattern, res.Case.Cell, res.Case.Seed,
			res.Loads, res.Stores, res.Misses, res.SimTime)
		loads += res.Loads
		stores += res.Stores
		events += res.Events
		if !res.Failed() {
			continue
		}
		if res.Panic != "" {
			fmt.Fprintf(&b, "     panic: %s\n", res.Panic)
		}
		if res.ValidateErr != "" {
			fmt.Fprintf(&b, "     validate: %s\n", res.ValidateErr)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(&b, "     violation: %v\n", v)
		}
		if res.TotalViolations > len(res.Violations) {
			fmt.Fprintf(&b, "     (+%d more violations)\n", res.TotalViolations-len(res.Violations))
		}
		if res.Reproducer != "" {
			fmt.Fprintf(&b, "     shrunk to %d ops in %d runs:\n", res.ShrunkOps, res.ShrinkRuns)
			for _, line := range strings.Split(strings.TrimRight(res.Reproducer, "\n"), "\n") {
				fmt.Fprintf(&b, "       %s\n", line)
			}
			fmt.Fprintf(&b, "     replay: -replay %d\n", res.Case.Seed)
		}
	}
	fails := len(r.Failures())
	fmt.Fprintf(&b, "total: %d loads, %d stores, %d events, %d/%d cases failed\n",
		loads, stores, events, fails, len(r.Results))
	return b.String()
}
