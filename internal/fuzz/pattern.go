// Package fuzz is a deterministic, seed-driven coherence-traffic fuzzer
// and memory-consistency oracle for the Cenju-4 model.
//
// A fuzz run sweeps adversarial access patterns across the protocol
// configuration matrix (queuing vs. nack, multicast on/off, update
// protocol on/off, network stage counts). Every case drives a freshly
// assembled machine with generated per-node op streams while a shadow
// oracle — fed by the core package's value-tracking hooks — checks that
// each load observes exactly the value the coherence order requires,
// that the machine's structural invariants hold at every quiescent
// point, and that all copies converge once the traffic drains. On
// failure the harness reports the seed, shrinks the op streams to a
// minimal reproducer, and (in replay mode) dumps the protocol trace.
//
// Everything is derived from the case seed through fixed-order
// generation and the simulator's deterministic event ordering, so the
// same seed and configuration reproduce a byte-identical report.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"cenju4/internal/cpu"
	"cenju4/internal/topology"
)

// Pattern selects one adversarial traffic generator.
type Pattern uint8

const (
	// PatternUniform spreads loads and stores uniformly over a pool of
	// blocks on every home.
	PatternUniform Pattern = iota
	// PatternHotspot concentrates store-heavy traffic on one block,
	// contending for its home's directory entry and memory queue.
	PatternHotspot
	// PatternPartition clusters many sharers onto a few blocks so the
	// directory's pointer encoding overflows into the bit-pattern
	// fallback before stores blast wide invalidations.
	PatternPartition
	// PatternMigratory passes exclusive ownership of each block from
	// node to node in load-store-store bursts.
	PatternMigratory
	// PatternProducerConsumer has a rotating producer store a block set
	// that every other node then reads.
	PatternProducerConsumer
	// PatternFalseSharing makes each node hammer a distinct word of the
	// same 128-byte block.
	PatternFalseSharing
	// PatternEviction thrashes one 2-way L2 set with conflicting shared
	// and private blocks, forcing writebacks and refills mid-protocol.
	PatternEviction
)

// AllPatterns lists every generator in report order.
func AllPatterns() []Pattern {
	return []Pattern{
		PatternUniform, PatternHotspot, PatternPartition,
		PatternMigratory, PatternProducerConsumer,
		PatternFalseSharing, PatternEviction,
	}
}

var patternNames = map[Pattern]string{
	PatternUniform:          "uniform",
	PatternHotspot:          "hotspot",
	PatternPartition:        "partition",
	PatternMigratory:        "migratory",
	PatternProducerConsumer: "producer-consumer",
	PatternFalseSharing:     "false-sharing",
	PatternEviction:         "eviction",
}

func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// ParsePattern resolves a CLI name ("all" is handled by the caller).
func ParsePattern(s string) (Pattern, error) {
	for p, name := range patternNames {
		if name == s {
			return p, nil
		}
	}
	var names []string
	for _, p := range AllPatterns() {
		names = append(names, p.String())
	}
	return 0, fmt.Errorf("unknown pattern %q (have: %s)", s, strings.Join(names, ", "))
}

// setStride is the address distance between blocks mapping to the same
// set of the default 1 MB 2-way L2 (4096 sets x 128 B).
const setStride = 4096 * topology.BlockSize

// blockPool builds count block addresses with homes round-robined over
// the machine and consecutive block offsets per home, so every home's
// directory and memory queue sees traffic.
func blockPool(nodes, count int) []topology.Addr {
	pool := make([]topology.Addr, count)
	for i := range pool {
		home := topology.NodeID(i % nodes)
		pool[i] = topology.SharedAddr(home, uint64(i/nodes)*topology.BlockSize)
	}
	return pool
}

// jitter appends a short compute batch ~10% of the time so the nodes'
// quanta drift apart and interleavings vary between rounds.
func jitter(rng *rand.Rand, ops []cpu.Op) []cpu.Op {
	if rng.Intn(10) == 0 {
		return append(ops, cpu.Op{Kind: cpu.OpCompute, N: uint64(1 + rng.Intn(40))})
	}
	return ops
}

// access builds one load or store on a random word of the block.
func access(rng *rand.Rand, block topology.Addr, store bool) cpu.Op {
	kind := cpu.OpLoad
	if store {
		kind = cpu.OpStore
	}
	return cpu.Op{Kind: kind, Addr: block + topology.Addr(8*rng.Intn(topology.BlockSize/8))}
}

// Generate materializes the per-node op streams for one case. The same
// (pattern, seed, nodes, ops) always yields identical streams.
func Generate(p Pattern, seed uint64, nodes, ops int) [][]cpu.Op {
	rng := rand.New(rand.NewSource(int64(seed)))
	perNode := ops / nodes
	if perNode < 1 {
		perNode = 1
	}
	streams := make([][]cpu.Op, nodes)
	switch p {
	case PatternUniform:
		pool := blockPool(nodes, 64)
		for n := range streams {
			for i := 0; i < perNode; i++ {
				b := pool[rng.Intn(len(pool))]
				streams[n] = jitter(rng, append(streams[n], access(rng, b, rng.Intn(10) < 3)))
			}
		}

	case PatternHotspot:
		pool := blockPool(nodes, 5)
		hot := pool[0]
		for n := range streams {
			for i := 0; i < perNode; i++ {
				b := hot
				if rng.Intn(5) == 0 {
					b = pool[1+rng.Intn(len(pool)-1)]
				}
				streams[n] = jitter(rng, append(streams[n], access(rng, b, rng.Intn(2) == 0)))
			}
		}

	case PatternPartition:
		// Groups of up to 8 nodes share 4 group-private blocks,
		// load-heavy so the sharer sets exceed the directory's pointer
		// capacity before the occasional store sweeps them.
		g := 8
		if g > nodes {
			g = nodes
		}
		pool := blockPool(nodes, 4*((nodes+g-1)/g))
		for n := range streams {
			group := n / g
			base := group * 4
			for i := 0; i < perNode; i++ {
				b := pool[base+rng.Intn(4)]
				streams[n] = jitter(rng, append(streams[n], access(rng, b, rng.Intn(100) < 15)))
			}
		}

	case PatternMigratory:
		// In phase p, node n owns the blocks with (index+p) % nodes == n
		// and runs a read-modify-write burst on each: ownership chases
		// the phase around the machine.
		pool := blockPool(nodes, nodes)
		phases := perNode / 3
		if phases < 1 {
			phases = 1
		}
		for n := range streams {
			for ph := 0; ph < phases; ph++ {
				for idx, b := range pool {
					if (idx+ph)%nodes != n {
						continue
					}
					streams[n] = append(streams[n],
						access(rng, b, false), access(rng, b, true), access(rng, b, true))
				}
				streams[n] = jitter(rng, streams[n])
			}
		}

	case PatternProducerConsumer:
		pool := blockPool(nodes, 8)
		rounds := perNode / len(pool)
		if rounds < 1 {
			rounds = 1
		}
		for n := range streams {
			for r := 0; r < rounds; r++ {
				producer := r % nodes
				for _, b := range pool {
					streams[n] = append(streams[n], access(rng, b, n == producer))
				}
				streams[n] = jitter(rng, streams[n])
			}
		}

	case PatternFalseSharing:
		pool := blockPool(nodes, 2)
		for n := range streams {
			word := topology.Addr(8 * (n % (topology.BlockSize / 8)))
			for i := 0; i < perNode; i++ {
				b := pool[rng.Intn(len(pool))] + word
				kind := cpu.OpLoad
				if rng.Intn(5) < 3 {
					kind = cpu.OpStore
				}
				streams[n] = jitter(rng, append(streams[n], cpu.Op{Kind: kind, Addr: b}))
			}
		}

	case PatternEviction:
		// Shared and private blocks all mapping to one L2 set: with two
		// ways, nearly every access evicts a victim, so refills race
		// writebacks and forwarded requests hit vanished copies.
		set := uint64(5 * topology.BlockSize)
		var shared []topology.Addr
		for k := 0; k < 3*nodes; k++ {
			home := topology.NodeID(k % nodes)
			shared = append(shared, topology.SharedAddr(home, set+uint64(k/nodes)*setStride))
		}
		var private []topology.Addr
		for j := 0; j < 4; j++ {
			private = append(private, topology.PrivateAddr(set+uint64(1+j)*setStride))
		}
		for n := range streams {
			for i := 0; i < perNode; i++ {
				if rng.Intn(5) < 2 {
					b := private[rng.Intn(len(private))]
					streams[n] = append(streams[n], access(rng, b, rng.Intn(2) == 0))
					continue
				}
				b := shared[rng.Intn(len(shared))]
				streams[n] = jitter(rng, append(streams[n], access(rng, b, rng.Intn(10) < 3)))
			}
		}

	default:
		panic(fmt.Sprintf("fuzz: unknown pattern %d", uint8(p)))
	}
	return streams
}

// Universe returns the sorted distinct shared blocks touched by ops,
// for the oracle's final convergence sweep.
func Universe(ops [][]cpu.Op) []topology.Addr {
	seen := make(map[topology.Addr]bool)
	var blocks []topology.Addr
	for _, stream := range ops {
		for _, op := range stream {
			if op.Kind != cpu.OpLoad && op.Kind != cpu.OpStore {
				continue
			}
			b := op.Addr.Block()
			if op.Addr.Shared() && !seen[b] {
				seen[b] = true
				blocks = append(blocks, b)
			}
		}
	}
	sortAddrs(blocks)
	return blocks
}

func sortAddrs(a []topology.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// CountOps tallies loads and stores across all streams.
func CountOps(ops [][]cpu.Op) (loads, stores int) {
	for _, stream := range ops {
		for _, op := range stream {
			switch op.Kind {
			case cpu.OpLoad:
				loads++
			case cpu.OpStore:
				stores++
			case cpu.OpCompute, cpu.OpBarrier, cpu.OpSend, cpu.OpRecv, cpu.OpAllReduce:
				// No coherence traffic to tally.
			}
		}
	}
	return
}

// FormatOps renders op streams as a compact deterministic reproducer
// listing (one line per node).
func FormatOps(ops [][]cpu.Op) string {
	var b strings.Builder
	for n, stream := range ops {
		fmt.Fprintf(&b, "n%d:", n)
		if len(stream) == 0 {
			b.WriteString(" (idle)")
		}
		for _, op := range stream {
			switch op.Kind {
			case cpu.OpLoad:
				fmt.Fprintf(&b, " Ld %v", op.Addr)
			case cpu.OpStore:
				fmt.Fprintf(&b, " St %v", op.Addr)
			case cpu.OpCompute:
				fmt.Fprintf(&b, " C%d", op.N)
			case cpu.OpBarrier, cpu.OpSend, cpu.OpRecv, cpu.OpAllReduce:
				// Message-passing ops never appear in coherence fuzz
				// streams; render them generically if they ever do.
				fmt.Fprintf(&b, " op%d", op.Kind)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
