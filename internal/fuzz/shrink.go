package fuzz

import "cenju4/internal/cpu"

// Shrink minimizes a failing op set: it repeatedly re-executes the case
// on candidate subsets (whole-node elimination, then per-node chunk
// removal with halving chunk sizes, ddmin style) and keeps any
// candidate that still fails. It returns the minimized streams and the
// number of re-executions spent; maxRuns bounds the work on stubborn
// failures. Determinism of the simulator makes every probe reliable:
// a candidate either always fails or never does.
func Shrink(c Case, ops [][]cpu.Op, maxRuns int) ([][]cpu.Op, int) {
	runs := 0
	fails := func(cand [][]cpu.Op) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return RunOps(c, cand).Failed()
	}

	cur := copyOps(ops)
	// Pass 1: silence whole nodes.
	for n := range cur {
		if len(cur[n]) == 0 {
			continue
		}
		cand := copyOps(cur)
		cand[n] = nil
		if fails(cand) {
			cur = cand
		}
	}
	// Pass 2: per-node chunk removal, halving the chunk until single ops.
	improved := true
	for improved && runs < maxRuns {
		improved = false
		for n := range cur {
			for size := (len(cur[n]) + 1) / 2; size >= 1; size /= 2 {
				for start := 0; start+size <= len(cur[n]) && runs < maxRuns; {
					cand := copyOps(cur)
					cand[n] = without(cur[n], start, size)
					if fails(cand) {
						cur = cand
						improved = true
					} else {
						start += size
					}
				}
			}
		}
	}
	return cur, runs
}

func copyOps(ops [][]cpu.Op) [][]cpu.Op {
	out := make([][]cpu.Op, len(ops))
	for i, s := range ops {
		out[i] = append([]cpu.Op(nil), s...)
	}
	return out
}

// without returns s with s[start:start+size] removed.
func without(s []cpu.Op, start, size int) []cpu.Op {
	out := append([]cpu.Op(nil), s[:start]...)
	return append(out, s[start+size:]...)
}
