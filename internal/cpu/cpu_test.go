package cpu

import (
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// nullSync satisfies Sync with immediate completion (single-node tests).
type nullSync struct{ barriers, reduces, sends, recvs int }

func (s *nullSync) Barrier(_ topology.NodeID, done func())             { s.barriers++; done() }
func (s *nullSync) Send(_, _ topology.NodeID, _ uint64)                { s.sends++ }
func (s *nullSync) Recv(_, _ topology.NodeID, done func())             { s.recvs++; done() }
func (s *nullSync) AllReduce(_ topology.NodeID, _ uint64, done func()) { s.reduces++; done() }

func newCPU(t *testing.T) (*CPU, *sim.Engine, *nullSync) {
	t.Helper()
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{Nodes: 2, Multicast: true})
	ctrl := core.New(eng, net, core.Config{Node: 0, Nodes: 2})
	net.Attach(0, ctrl.Deliver)
	c1 := core.New(eng, net, core.Config{Node: 1, Nodes: 2})
	net.Attach(1, c1.Deliver)
	sync := &nullSync{}
	return New(eng, ctrl, sync, Config{Node: 0}), eng, sync
}

func run(t *testing.T, c *CPU, eng *sim.Engine, ops ...Op) Stats {
	t.Helper()
	done := false
	c.Run(&SliceProgram{Ops: ops}, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("program did not finish")
	}
	return c.Stats()
}

func TestComputeTiming(t *testing.T) {
	c, eng, _ := newCPU(t)
	s := run(t, c, eng, Op{Kind: OpCompute, N: 200})
	if eng.Now() != 1000 { // 200 instructions x 5 ns
		t.Fatalf("time = %v, want 1000", eng.Now())
	}
	if s.Instructions != 200 || !s.Finished {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPrivateMissAndHit(t *testing.T) {
	c, eng, _ := newCPU(t)
	a := topology.PrivateAddr(0)
	s := run(t, c, eng,
		Op{Kind: OpLoad, Addr: a},
		Op{Kind: OpLoad, Addr: a},
		Op{Kind: OpStore, Addr: a},
	)
	p := timing.Default()
	want := (p.ProcOverhead + p.MemAccess) + p.CacheHit + p.CacheHit
	if eng.Now() != want {
		t.Fatalf("time = %v, want %v", eng.Now(), want)
	}
	if s.PrivateMisses != 1 || s.PrivateAccesses != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSharedMissBlocksOnProtocol(t *testing.T) {
	c, eng, _ := newCPU(t)
	a := topology.SharedAddr(0, 0)
	s := run(t, c, eng, Op{Kind: OpLoad, Addr: a})
	if eng.Now() != 610 { // Table 2 row b
		t.Fatalf("time = %v, want 610", eng.Now())
	}
	if s.LocalMisses != 1 || s.LocalAccesses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRemoteClassification(t *testing.T) {
	c, eng, _ := newCPU(t)
	s := run(t, c, eng, Op{Kind: OpLoad, Addr: topology.SharedAddr(1, 0)})
	if s.RemoteMisses != 1 || s.RemoteAccesses != 1 || s.LocalAccesses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSyncOpsReachProvider(t *testing.T) {
	c, eng, sync := newCPU(t)
	s := run(t, c, eng,
		Op{Kind: OpBarrier},
		Op{Kind: OpAllReduce, N: 8},
		Op{Kind: OpSend, Dst: 1, N: 64},
		Op{Kind: OpRecv, Dst: 1},
	)
	if sync.barriers != 1 || sync.reduces != 1 || sync.sends != 1 || sync.recvs != 1 {
		t.Fatalf("sync calls: %+v", *sync)
	}
	_ = s
}

func TestMissRatio(t *testing.T) {
	s := Stats{MemAccesses: 200, Misses: 3}
	if s.MissRatio() != 0.015 {
		t.Fatalf("MissRatio() = %v", s.MissRatio())
	}
	if (Stats{}).MissRatio() != 0 {
		t.Fatal("zero-access MissRatio not 0")
	}
}

func TestUnknownOpPanics(t *testing.T) {
	c, eng, _ := newCPU(t)
	c.Run(&SliceProgram{Ops: []Op{{Kind: OpKind(99)}}}, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng.Run()
}

func TestFuncProgram(t *testing.T) {
	c, eng, _ := newCPU(t)
	n := 0
	prog := FuncProgram(func() (Op, bool) {
		if n >= 5 {
			return Op{}, false
		}
		n++
		return Op{Kind: OpCompute, N: 1}, true
	})
	done := false
	c.Run(prog, func() { done = true })
	eng.Run()
	if !done || c.Stats().Instructions != 5 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
}

func TestQuantumSlicing(t *testing.T) {
	// A small quantum must split execution into multiple events without
	// changing the total time.
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{Nodes: 2, Multicast: true})
	ctrl := core.New(eng, net, core.Config{Node: 0, Nodes: 2})
	net.Attach(0, ctrl.Deliver)
	other := core.New(eng, net, core.Config{Node: 1, Nodes: 2})
	net.Attach(1, other.Deliver)
	c := New(eng, ctrl, &nullSync{}, Config{Node: 0, Quantum: 50})
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{Kind: OpCompute, N: 1}
	}
	done := false
	c.Run(&SliceProgram{Ops: ops}, func() { done = true })
	events := eng.Run()
	if !done {
		t.Fatal("not finished")
	}
	if eng.Now() != 500 {
		t.Fatalf("time = %v, want 500", eng.Now())
	}
	if events < 5 {
		t.Fatalf("only %d events: quantum not slicing", events)
	}
}
