// Package cpu models the R10000 processor of a Cenju-4 node executing a
// workload program: a stream of memory accesses, compute batches, and
// synchronization operations.
//
// Cache hits and compute never enter the event engine — the processor
// accumulates their cost locally and only schedules an event when it
// blocks (coherence miss, private-memory miss, message wait, barrier) or
// when its accumulated quantum expires (so concurrent processors
// interleave fairly). This keeps application-scale simulations tractable
// while every coherence transaction remains fully event-driven.
package cpu

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/core"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// OpKind enumerates program operations.
type OpKind uint8

const (
	// OpCompute executes N instructions with no memory traffic.
	OpCompute OpKind = iota
	// OpLoad reads Addr (N = 1 implied).
	OpLoad
	// OpStore writes Addr.
	OpStore
	// OpBarrier joins barrier N (all nodes must arrive).
	OpBarrier
	// OpSend transmits N bytes to node Dst through the message-passing
	// mechanism (private memory; no coherence traffic).
	OpSend
	// OpRecv blocks until a message from node Dst arrives.
	OpRecv
	// OpAllReduce performs a global reduction of N bytes.
	OpAllReduce
)

// Op is one program operation.
type Op struct {
	Kind OpKind
	Addr topology.Addr
	N    uint64
	Dst  topology.NodeID
}

// Program supplies a node's operation stream. Next returns false when
// the program is finished. Programs are single-use iterators.
type Program interface {
	Next() (Op, bool)
}

// SliceProgram adapts a materialized op slice (used by tests and small
// workloads).
type SliceProgram struct {
	Ops []Op
	pos int
}

func (p *SliceProgram) Next() (Op, bool) {
	if p.pos >= len(p.Ops) {
		return Op{}, false
	}
	op := p.Ops[p.pos]
	p.pos++
	return op, true
}

// FuncProgram adapts a generator function.
type FuncProgram func() (Op, bool)

func (f FuncProgram) Next() (Op, bool) { return f() }

// Sync provides the blocking synchronization and message-passing
// operations (implemented by the mpi package). Collectives match up by
// per-node arrival order: every program must issue its barriers and
// reductions in the same global sequence, as MPI programs do.
type Sync interface {
	// Barrier calls done when every node has arrived at its next barrier.
	Barrier(node topology.NodeID, done func())
	// Send transmits n bytes from src to dst (non-blocking).
	Send(src, dst topology.NodeID, n uint64)
	// Recv calls done when a message from src has arrived at dst.
	Recv(dst, src topology.NodeID, done func())
	// AllReduce calls done when the node's next global reduction of n
	// bytes completes.
	AllReduce(node topology.NodeID, n uint64, done func())
}

// Stats aggregates one processor's execution characteristics (the
// columns of Tables 3 and 4).
type Stats struct {
	Instructions uint64 // executed instructions (incl. memory accesses)
	MemAccesses  uint64
	// Memory access breakdown.
	PrivateAccesses uint64
	LocalAccesses   uint64 // shared, homed at this node
	RemoteAccesses  uint64 // shared, homed elsewhere
	// Secondary cache miss breakdown (store-to-shared counts as a miss).
	Misses        uint64
	PrivateMisses uint64
	LocalMisses   uint64
	RemoteMisses  uint64
	// Time breakdown.
	BusyTime sim.Time // compute + memory (non-sync)
	SyncTime sim.Time // barriers, recv waits, reductions
	Finished bool
	EndTime  sim.Time
}

// MissRatio returns misses / memory accesses.
func (s Stats) MissRatio() float64 {
	if s.MemAccesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.MemAccesses)
}

// CPU executes one node's program.
type CPU struct {
	node    topology.NodeID
	eng     *sim.Engine
	ctrl    *core.Controller
	sync    Sync
	params  timing.Params
	nsPerIn sim.Time
	quantum sim.Time

	prog  Program
	stats Stats
	done  func()

	// Blocking-op scratch for the static event callbacks below: at most
	// one blocking miss / finish / quantum event is outstanding per CPU
	// (step returns after scheduling one), so a single set of fields
	// replaces the per-event closures the hot path used to allocate.
	pendAddr  topology.Addr
	pendStore bool
	pendAcc   sim.Time
	resumeFn  func() // allocated once: the controller's done callback
}

// Config parameterizes a CPU.
type Config struct {
	Node topology.NodeID
	// NsPerInstr is the average non-memory instruction cost (default 5:
	// a ~200 MHz R10000 sustaining ~1 instruction per cycle).
	NsPerInstr sim.Time
	// Quantum bounds how much local time the processor accumulates
	// before yielding to the event engine (default 20 us).
	Quantum sim.Time
	// Params supplies hit/miss latency constants.
	Params timing.Params
}

// New builds a CPU bound to a controller and sync provider.
func New(eng *sim.Engine, ctrl *core.Controller, sync Sync, cfg Config) *CPU {
	if cfg.NsPerInstr == 0 {
		cfg.NsPerInstr = 5
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 20000
	}
	if cfg.Params == (timing.Params{}) {
		cfg.Params = timing.Default()
	}
	c := &CPU{}
	c.Init(eng, ctrl, sync, cfg)
	return c
}

// Init initializes a zero CPU in place (machine.Machine slab-allocates
// its processors; see core.Controller.Init).
func (c *CPU) Init(eng *sim.Engine, ctrl *core.Controller, sync Sync, cfg Config) {
	if cfg.NsPerInstr == 0 {
		cfg.NsPerInstr = 5
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 20000
	}
	if cfg.Params == (timing.Params{}) {
		cfg.Params = timing.Default()
	}
	c.node = cfg.Node
	c.eng = eng
	c.ctrl = ctrl
	c.sync = sync
	c.params = cfg.Params
	c.nsPerIn = cfg.NsPerInstr
	c.quantum = cfg.Quantum
	c.resumeFn = func() { c.step() }
}

// Stats returns the execution counters.
func (c *CPU) Stats() Stats { return c.stats }

// Run starts executing prog; done fires when the program ends.
func (c *CPU) Run(prog Program, done func()) {
	c.prog = prog
	c.done = done
	c.eng.After(0, c.resumeFn)
}

// step consumes operations until the processor must block or its
// quantum expires.
func (c *CPU) step() {
	var acc sim.Time
	for {
		op, ok := c.prog.Next()
		if !ok {
			c.pendAcc = acc
			c.eng.AtCall(c.eng.Now()+acc, cpuFinish, c)
			return
		}
		switch op.Kind {
		case OpCompute:
			c.stats.Instructions += op.N
			acc += sim.Time(op.N) * c.nsPerIn

		case OpLoad, OpStore:
			c.stats.Instructions++
			c.stats.MemAccesses++
			store := op.Kind == OpStore
			if !op.Addr.Shared() {
				c.stats.PrivateAccesses++
				if hit := c.privateAccess(op.Addr, store); hit {
					acc += c.params.CacheHit
				} else {
					c.stats.Misses++
					c.stats.PrivateMisses++
					acc += c.params.ProcOverhead + c.params.MemAccess
				}
				continue
			}
			local := op.Addr.Home() == c.node
			if local {
				c.stats.LocalAccesses++
			} else {
				c.stats.RemoteAccesses++
			}
			if _, hit := c.ctrl.Cache().Access(op.Addr, store); hit {
				c.ctrl.NoteAccessHit(op.Addr, store)
				acc += c.params.CacheHit
				continue
			}
			c.stats.Misses++
			if local {
				c.stats.LocalMisses++
			} else {
				c.stats.RemoteMisses++
			}
			// Block on the coherence transaction.
			c.stats.BusyTime += acc
			c.pendAddr, c.pendStore = op.Addr, store
			c.eng.AtCall(c.eng.Now()+acc, cpuMiss, c)
			return

		case OpBarrier:
			c.blockOnSync(acc, func(done func()) { c.sync.Barrier(c.node, done) })
			return
		case OpRecv:
			c.blockOnSync(acc, func(done func()) { c.sync.Recv(c.node, op.Dst, done) })
			return
		case OpAllReduce:
			c.blockOnSync(acc, func(done func()) { c.sync.AllReduce(c.node, op.N, done) })
			return
		case OpSend:
			c.stats.Instructions++
			// Charge the software send overhead locally; transfer time is
			// the receiver's problem.
			acc += c.params.ProcOverhead
			dst, n := op.Dst, op.N
			c.eng.After(acc, func() { c.sync.Send(c.node, dst, n) })

		default:
			panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
		}
		if acc >= c.quantum {
			c.stats.BusyTime += acc
			c.eng.AtCall(c.eng.Now()+acc, cpuResume, c)
			return
		}
	}
}

// blockOnSync charges accumulated busy time, then enters a sync wait
// whose duration counts as synchronization time.
func (c *CPU) blockOnSync(acc sim.Time, enter func(done func())) {
	c.stats.BusyTime += acc
	c.eng.After(acc, func() {
		start := c.eng.Now()
		enter(func() {
			c.stats.SyncTime += c.eng.Now() - start
			c.step()
		})
	})
}

// cpuMiss is the static blocked-miss callback: the access that blocked
// is in the CPU's pend fields and resumeFn re-enters step when the
// coherence transaction graduates.
func cpuMiss(a any) {
	c := a.(*CPU)
	c.ctrl.Request(c.pendAddr, c.pendStore, c.resumeFn)
}

// cpuResume is the static quantum-expiry callback.
func cpuResume(a any) { a.(*CPU).step() }

// cpuFinish is the static program-completion callback; pendAcc carries
// the final op batch's accumulated busy time.
func cpuFinish(a any) {
	c := a.(*CPU)
	c.stats.BusyTime += c.pendAcc
	c.stats.Finished = true
	c.stats.EndTime = c.eng.Now()
	c.done()
}

// privateAccess simulates the private-memory hierarchy: private blocks
// live in the same secondary cache; evicted shared victims raise
// writebacks through the controller, evicted private victims cost
// nothing extra (their writeback is local and overlapped).
func (c *CPU) privateAccess(addr topology.Addr, store bool) bool {
	st, hit := c.ctrl.Cache().Access(addr, store)
	if hit {
		return true
	}
	// Private blocks never need ownership transactions: a store "miss"
	// on a Shared-state private line cannot occur (they are inserted
	// Exclusive/Modified), so st is Invalid here.
	_ = st
	ins := cache.Modified
	if !store {
		ins = cache.Exclusive
	}
	if v := c.ctrl.Cache().Insert(addr, ins); v.Writeback && v.Addr.Shared() {
		c.ctrl.EvictShared(v.Addr)
	}
	return false
}
