package core

import (
	"testing"

	"cenju4/internal/cache"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// newUpdateCluster builds a cluster where every block homed at node 0
// with offset below 4 KB runs under the update protocol.
func newUpdateCluster(t testing.TB, nodes int, multicast bool) *cluster {
	t.Helper()
	updateMode := func(a topology.Addr) bool {
		return a.Home() == 0 && a.Offset() < 4096
	}
	cl := &cluster{eng: sim.NewEngine()}
	cl.net = network.New(cl.eng, network.Config{Nodes: nodes, Multicast: multicast})
	cl.ctrls = make([]*Controller, nodes)
	for i := 0; i < nodes; i++ {
		cl.ctrls[i] = New(cl.eng, cl.net, Config{
			Node:       topology.NodeID(i),
			Nodes:      nodes,
			UpdateMode: updateMode,
		})
		cl.net.Attach(topology.NodeID(i), cl.ctrls[i].Deliver)
	}
	return cl
}

func TestUpdateWritePopulatesAllL3s(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 3, a, true) // update write by node 3
	// Every node's L3 now holds the block: subsequent loads are local.
	for i := 0; i < 16; i++ {
		if !cl.ctrls[i].l3[a] {
			t.Fatalf("node %d L3 missing the block", i)
		}
	}
	st := cl.ctrls[0].Stats()
	if st.HomeRequests == 0 {
		t.Fatal("no home request recorded")
	}
	if cl.ctrls[3].Stats().UpdateWrites != 1 {
		t.Fatalf("UpdateWrites = %d", cl.ctrls[3].Stats().UpdateWrites)
	}
}

func TestUpdateLoadSatisfiedLocally(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 3, a, true) // populate L3s everywhere
	// A load by a distant node is now satisfied by its own L3 at
	// local-memory cost — the extension's goal: scalable load latency.
	lat := cl.access(t, 9, a, false)
	if lat != 610 { // ProcOverhead + MemAccess + DirAccess
		t.Fatalf("L3 load latency = %v, want 610 (local memory)", lat)
	}
	if cl.ctrls[9].Stats().L3Hits != 1 {
		t.Fatalf("L3Hits = %d", cl.ctrls[9].Stats().L3Hits)
	}
	if st := cl.ctrls[9].Cache().State(a); st != cache.Shared {
		t.Fatalf("L2 state after L3 fill = %v, want S", st)
	}
}

func TestUpdateFirstTouchFetchesRemotely(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	a := blockAt(0, 1)
	lat := cl.access(t, 5, a, false) // nothing written yet: remote fetch
	if lat <= 610 {
		t.Fatalf("first-touch latency = %v, want a remote transaction", lat)
	}
	if !cl.ctrls[5].l3[a] {
		t.Fatal("first touch did not install the L3 copy")
	}
	// Second load after eviction of the L2 copy hits the L3.
	cl.ctrls[5].Cache().SetState(a, cache.Invalid)
	lat = cl.access(t, 5, a, false)
	if lat != 610 {
		t.Fatalf("post-install load = %v, want 610", lat)
	}
}

func TestUpdateKeepsSharedCopiesValid(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, false) // reader caches the block
	cl.access(t, 2, a, true)  // writer updates: no invalidation
	if st := cl.ctrls[1].Cache().State(a); st != cache.Shared {
		t.Fatalf("reader's copy = %v after update, want S (updated in place)", st)
	}
	// Reader's next load is a pure L2 hit: zero transaction latency.
	if lat := cl.access(t, 1, a, false); lat != 0 {
		t.Fatalf("re-read latency = %v, want 0", lat)
	}
}

func TestUpdateWritesSerializeViaQueue(t *testing.T) {
	const n = 16
	cl := newUpdateCluster(t, n, true)
	a := blockAt(0, 1)
	completed := 0
	for i := 0; i < n; i++ {
		cl.ctrls[i].Request(a, true, func() { completed++ })
	}
	cl.eng.Run()
	if completed != n {
		t.Fatalf("%d/%d update writes completed", completed, n)
	}
	if cl.ctrls[0].Stats().QueuedRequests == 0 {
		t.Fatal("concurrent updates did not exercise the queue")
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State().Pending() || e.Reserved() {
		t.Fatalf("directory left pending: %v", *e)
	}
}

func TestUpdateSinglecastMode(t *testing.T) {
	cl := newUpdateCluster(t, 16, false)
	a := blockAt(0, 1)
	cl.access(t, 3, a, true)
	for i := 0; i < 16; i++ {
		if !cl.ctrls[i].l3[a] {
			t.Fatalf("node %d L3 missing under singlecast", i)
		}
	}
}

func TestNonUpdateBlocksUnaffected(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	b := blockAt(0, 1024) // offset 128 KB: outside the update window
	cl.access(t, 1, b, true)
	if st := cl.ctrls[1].Cache().State(b); st != cache.Modified {
		t.Fatalf("regular store = %v, want M", st)
	}
	if cl.ctrls[1].Stats().UpdateWrites != 0 {
		t.Fatal("regular block used update protocol")
	}
}

// Mixed update and invalidate traffic on different blocks of the same
// home must not interfere.
func TestUpdateAndInvalidateCoexist(t *testing.T) {
	cl := newUpdateCluster(t, 16, true)
	u := blockAt(0, 1)    // update-mode
	v := blockAt(0, 1024) // regular
	for i := 1; i <= 4; i++ {
		cl.access(t, topology.NodeID(i), v, false)
	}
	done := 0
	cl.ctrls[2].Request(u, true, func() { done++ })
	cl.ctrls[3].Request(v, true, func() { done++ })
	cl.eng.Run()
	if done != 2 {
		t.Fatalf("%d/2 completed", done)
	}
	if st := cl.ctrls[1].Cache().State(v); st != cache.Invalid {
		t.Fatalf("regular block sharer = %v, want I", st)
	}
}
