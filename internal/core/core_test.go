package core

import (
	"testing"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// cluster wires N controllers over a real multistage network.
type cluster struct {
	eng   *sim.Engine
	net   *network.Network
	ctrls []*Controller
}

type clusterOpt func(*Config)

func withMode(m Mode) clusterOpt { return func(c *Config) { c.Mode = m } }
func withCache(cc cache.Config) clusterOpt {
	return func(c *Config) { c.Cache = cc }
}

func newCluster(t testing.TB, nodes int, multicast bool, opts ...clusterOpt) *cluster {
	t.Helper()
	cl := &cluster{eng: sim.NewEngine()}
	cl.net = network.New(cl.eng, network.Config{Nodes: nodes, Multicast: multicast})
	cl.ctrls = make([]*Controller, nodes)
	for i := 0; i < nodes; i++ {
		cfg := Config{Node: topology.NodeID(i), Nodes: nodes}
		for _, o := range opts {
			o(&cfg)
		}
		cl.ctrls[i] = New(cl.eng, cl.net, cfg)
		cl.net.Attach(topology.NodeID(i), cl.ctrls[i].Deliver)
	}
	return cl
}

// access runs one access to completion and returns its latency.
func (cl *cluster) access(t testing.TB, node topology.NodeID, addr topology.Addr, store bool) sim.Time {
	t.Helper()
	start := cl.eng.Now()
	var end sim.Time
	done := false
	cl.ctrls[node].Request(addr, store, func() {
		done = true
		end = cl.eng.Now()
	})
	cl.eng.Run()
	if !done {
		t.Fatalf("access %v by %v never completed", addr, node)
	}
	return end - start
}

func blockAt(home topology.NodeID, idx uint64) topology.Addr {
	return topology.SharedAddr(home, idx*topology.BlockSize)
}

func TestColdLoadGrantsExclusive(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 0, a, false)
	if st := cl.ctrls[0].Cache().State(a); st != cache.Exclusive {
		t.Fatalf("cache state = %v, want E", st)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Dirty || !e.MapIsOnly(0) {
		t.Fatalf("directory = %v, want dirty {0}", *e)
	}
}

func TestSecondReaderSharesViaOwnerDowngrade(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, false) // node 1: E
	cl.access(t, 2, a, false) // node 2: forwarded to node 1, both S
	if st := cl.ctrls[1].Cache().State(a); st != cache.Shared {
		t.Fatalf("former owner state = %v, want S", st)
	}
	if st := cl.ctrls[2].Cache().State(a); st != cache.Shared {
		t.Fatalf("new reader state = %v, want S", st)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Clean || !e.MapContains(1) || !e.MapContains(2) {
		t.Fatalf("directory = %v, want clean {1,2}", *e)
	}
}

func TestStoreToSharedInvalidatesOthers(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	for _, n := range []topology.NodeID{1, 2, 3} {
		cl.access(t, n, a, false)
	}
	cl.access(t, 2, a, true) // ownership
	if st := cl.ctrls[2].Cache().State(a); st != cache.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	for _, n := range []topology.NodeID{1, 3} {
		if st := cl.ctrls[n].Cache().State(a); st != cache.Invalid {
			t.Fatalf("node %v state = %v, want I", n, st)
		}
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Dirty || !e.MapIsOnly(2) {
		t.Fatalf("directory = %v, want dirty {2}", *e)
	}
}

func TestStoreMissStealsDirtyBlock(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, true) // node 1: M
	cl.access(t, 3, a, true) // node 3 steals
	if st := cl.ctrls[1].Cache().State(a); st != cache.Invalid {
		t.Fatalf("old owner = %v, want I", st)
	}
	if st := cl.ctrls[3].Cache().State(a); st != cache.Modified {
		t.Fatalf("new owner = %v, want M", st)
	}
}

func TestLoadOfDirtyRemoteBlock(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, true)  // dirty at 1
	cl.access(t, 2, a, false) // read: 1 downgrades to S, memory updated
	if st := cl.ctrls[1].Cache().State(a); st != cache.Shared {
		t.Fatalf("owner after read = %v, want S", st)
	}
	if st := cl.ctrls[2].Cache().State(a); st != cache.Shared {
		t.Fatalf("reader = %v, want S", st)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Clean {
		t.Fatalf("directory state = %v, want C", e.State())
	}
}

func TestSilentExclusiveToModified(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, false) // E
	lat := cl.access(t, 1, a, true)
	if lat != 0 {
		t.Fatalf("silent E->M upgrade cost %v, want 0 protocol latency", lat)
	}
	if st := cl.ctrls[1].Cache().State(a); st != cache.Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	// One-set cache: the second block evicts the first.
	cl := newCluster(t, 16, true, withCache(cache.Config{SizeBytes: topology.BlockSize, Ways: 1}))
	a := blockAt(0, 1)
	b := blockAt(0, 1+4096)  // same set
	cl.access(t, 1, a, true) // M at node 1
	cl.access(t, 1, b, false)
	cl.eng.Run()
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Clean || !e.MapEmpty() {
		t.Fatalf("directory after writeback = %v, want clean empty", *e)
	}
	if cl.ctrls[1].Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", cl.ctrls[1].Stats().Writebacks)
	}
}

func TestReadAfterWritebackServedFromMemory(t *testing.T) {
	cl := newCluster(t, 16, true, withCache(cache.Config{SizeBytes: topology.BlockSize, Ways: 1}))
	a := blockAt(0, 1)
	cl.access(t, 1, a, true)                   // M at node 1
	cl.access(t, 1, blockAt(0, 1+4096), false) // evict -> writeback
	cl.access(t, 2, a, false)                  // memory is clean: direct grant
	if st := cl.ctrls[2].Cache().State(a); st != cache.Exclusive {
		t.Fatalf("reader state = %v, want E (sole copy after writeback)", st)
	}
}

// Five sharers force the directory into bit-pattern form; the
// invalidation multicast must still reach every true sharer.
func TestInvalidationAcrossFormatSwitch(t *testing.T) {
	cl := newCluster(t, 1024, true)
	a := blockAt(0, 1)
	sharers := []topology.NodeID{1, 4, 5, 32, 164}
	for _, n := range sharers {
		cl.access(t, n, a, false)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if !e.UsesBitPattern() {
		t.Fatal("directory did not switch to bit-pattern")
	}
	cl.access(t, 7, a, true) // read-exclusive from an unrelated node
	for _, n := range sharers {
		if st := cl.ctrls[n].Cache().State(a); st != cache.Invalid {
			t.Fatalf("sharer %v = %v after invalidation, want I", n, st)
		}
	}
	if st := cl.ctrls[7].Cache().State(a); st != cache.Modified {
		t.Fatalf("writer = %v, want M", st)
	}
	if e.State() != directory.Dirty || !e.MapIsOnly(7) {
		t.Fatalf("directory = %v, want dirty {7}", *e)
	}
}

// The same scenario with multicast disabled must be functionally
// identical (only slower).
func TestInvalidationSinglecastMode(t *testing.T) {
	cl := newCluster(t, 1024, false)
	a := blockAt(0, 1)
	sharers := []topology.NodeID{1, 4, 5, 32, 164}
	for _, n := range sharers {
		cl.access(t, n, a, false)
	}
	cl.access(t, 7, a, true)
	for _, n := range sharers {
		if st := cl.ctrls[n].Cache().State(a); st != cache.Invalid {
			t.Fatalf("sharer %v = %v, want I", n, st)
		}
	}
	if st := cl.ctrls[7].Cache().State(a); st != cache.Modified {
		t.Fatalf("writer = %v, want M", st)
	}
}

func TestOwnershipWithSoleSharerNoDataTransfer(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, false) // E at 1
	cl.access(t, 2, a, false) // S at 1,2
	// Invalidate node 1's copy by a store from 2 requires ownership.
	// First make 2 the sole sharer: store from 2.
	cl.access(t, 2, a, true)
	if st := cl.ctrls[2].Cache().State(a); st != cache.Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

// Concurrent stores to one block from many nodes: the queuing protocol
// completes all with zero nacks.
func TestHotBlockQueuingCompletesAll(t *testing.T) {
	const n = 32
	cl := newCluster(t, n, true)
	a := blockAt(0, 1)
	completed := 0
	for i := 0; i < n; i++ {
		cl.ctrls[i].Request(a, true, func() { completed++ })
	}
	cl.eng.Run()
	if completed != n {
		t.Fatalf("completed %d/%d stores", completed, n)
	}
	for i := 0; i < n; i++ {
		if cl.ctrls[i].Stats().Nacks != 0 {
			t.Fatalf("node %d saw nacks under queuing protocol", i)
		}
	}
	// Exactly one final owner.
	owners := 0
	for i := 0; i < n; i++ {
		if cl.ctrls[i].Cache().State(a) == cache.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d modified copies after the dust settles", owners)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.Reserved() {
		t.Fatal("reservation bit left set")
	}
	if st := cl.ctrls[0].Stats(); st.QueuedRequests == 0 {
		t.Fatal("no requests were queued despite contention")
	}
}

// The same hot-block storm under the nack protocol: everything still
// completes (retries make progress here) but nacks and retries occur.
func TestHotBlockNackModeRetries(t *testing.T) {
	const n = 32
	cl := newCluster(t, n, true, withMode(ModeNack))
	a := blockAt(0, 1)
	completed := 0
	for i := 0; i < n; i++ {
		cl.ctrls[i].Request(a, true, func() { completed++ })
	}
	cl.eng.Run()
	if completed != n {
		t.Fatalf("completed %d/%d stores", completed, n)
	}
	var nacks uint64
	for i := 0; i < n; i++ {
		nacks += cl.ctrls[i].Stats().Nacks
	}
	if nacks == 0 {
		t.Fatal("nack protocol saw no nacks under contention")
	}
}

// Mixed random traffic must preserve the single-writer invariant at
// every completion point and leave a coherent final state.
func TestSingleWriterInvariant(t *testing.T) {
	const n = 16
	cl := newCluster(t, n, true)
	blocks := []topology.Addr{blockAt(0, 1), blockAt(3, 2), blockAt(7, 9)}
	// Issue a deterministic pseudo-random access pattern.
	seed := uint64(12345)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	issued := 0
	var kick func(node int)
	kick = func(node int) {
		if issued >= 400 {
			return
		}
		issued++
		a := blocks[next(len(blocks))]
		store := next(2) == 0
		cl.ctrls[node].Request(a, store, func() {
			checkSingleWriter(t, cl, blocks)
			kick(next(n))
		})
	}
	for i := 0; i < 8; i++ {
		kick(next(n))
	}
	cl.eng.Run()
	if issued < 400 {
		t.Fatalf("only %d accesses issued — livelock?", issued)
	}
}

func checkSingleWriter(t *testing.T, cl *cluster, blocks []topology.Addr) {
	t.Helper()
	for _, a := range blocks {
		writers, sharers := 0, 0
		for _, c := range cl.ctrls {
			switch c.Cache().State(a) {
			case cache.Modified, cache.Exclusive:
				writers++
			case cache.Shared:
				sharers++
			}
		}
		if writers > 1 || (writers == 1 && sharers > 0) {
			t.Fatalf("block %v: %d exclusive owners, %d sharers", a, writers, sharers)
		}
	}
}

// FIFO fairness: queued requests are granted in arrival order.
func TestQueuedRequestsServedInOrder(t *testing.T) {
	const n = 8
	cl := newCluster(t, n, true)
	a := blockAt(0, 1)
	var order []topology.NodeID
	for i := 1; i < n; i++ {
		node := topology.NodeID(i)
		cl.ctrls[node].Request(a, true, func() { order = append(order, node) })
	}
	cl.eng.Run()
	if len(order) != n-1 {
		t.Fatalf("%d completions, want %d", len(order), n-1)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
}

func TestBufferBoundsRespected(t *testing.T) {
	const n = 32
	cl := newCluster(t, n, true)
	// Hammer one home with stores to distinct hot blocks from all nodes.
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			for b := 0; b < 2; b++ {
				cl.ctrls[i].Request(blockAt(0, uint64(b)), true, func() {})
			}
		}
		cl.eng.Run()
	}
	st := cl.ctrls[0].Stats()
	cap := n * topology.MaxOutstanding
	if st.QueueHighWater > cap {
		t.Fatalf("request queue high water %d exceeds bound %d", st.QueueHighWater, cap)
	}
	if st.HomeOverflowHW > cap {
		t.Fatalf("home overflow high water %d exceeds bound %d", st.HomeOverflowHW, cap)
	}
	for i := 0; i < n; i++ {
		if hw := cl.ctrls[i].Stats().SlaveOverflowHW; hw > cap {
			t.Fatalf("slave overflow high water %d exceeds bound %d", hw, cap)
		}
	}
}

func TestRequestOnPrivateAddressPanics(t *testing.T) {
	cl := newCluster(t, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cl.ctrls[0].Request(topology.PrivateAddr(0), false, func() {})
}

// Table 2 calibration: simulated latencies must be within 5% of the
// paper's measured values (the residuals are recorded in EXPERIMENTS.md).
func TestTable2Calibration(t *testing.T) {
	paper := map[string][3]sim.Time{
		"b": {610, 610, 610},
		"c": {1690, 2210, 2730},
		"d": {1900, 2480, 3060},
		"e": {3120, 4170, 5220},
	}
	sizes := []int{16, 128, 1024}
	for si, nodes := range sizes {
		// b) shared local clean.
		cl := newCluster(t, nodes, true)
		latB := cl.access(t, 0, blockAt(0, 1), false)
		// c) shared remote clean.
		cl = newCluster(t, nodes, true)
		latC := cl.access(t, 1, blockAt(0, 1), false)
		// d) shared local dirty: dirty at node 1, load by home node 0.
		cl = newCluster(t, nodes, true)
		cl.access(t, 1, blockAt(0, 1), true)
		latD := cl.access(t, 0, blockAt(0, 1), false)
		// e) shared remote dirty: dirty at 1, load by node 2.
		cl = newCluster(t, nodes, true)
		cl.access(t, 1, blockAt(0, 1), true)
		latE := cl.access(t, 2, blockAt(0, 1), false)

		for row, lat := range map[string]sim.Time{"b": latB, "c": latC, "d": latD, "e": latE} {
			want := paper[row][si]
			diff := float64(lat) - float64(want)
			if diff < 0 {
				diff = -diff
			}
			if diff/float64(want) > 0.05 {
				t.Errorf("row %s, %d nodes: latency %v, paper %v (%.1f%% off)",
					row, nodes, lat, want, 100*diff/float64(want))
			}
		}
	}
}

func BenchmarkHotBlockStores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := newCluster(b, 32, true)
		a := blockAt(0, 1)
		for j := 0; j < 32; j++ {
			cl.ctrls[j].Request(a, true, func() {})
		}
		cl.eng.Run()
	}
}
