package core

import (
	"fmt"

	"cenju4/internal/directory"
	"cenju4/internal/memory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// queuedReq is one 64-bit entry of the memory-resident request queue:
// the request kind, the master, and the target block. val preserves a
// queued update-write's tagged data for the value tracker (a queued
// write-through keeps its payload in the memory buffer).
type queuedReq struct {
	kind   msg.Kind
	master topology.NodeID
	addr   topology.Addr
	val    uint64
	// seq is the requesting attempt's sequence stamp, echoed into the
	// eventual reply so the master can match (or discard) it.
	seq uint32
}

// txn is the home's context for a pending block: who the transaction is
// for and what completes it. Records are pooled on the home's free
// list (next), so steady-state transaction churn allocates nothing.
type txn struct {
	kind     msg.Kind // original request kind
	master   topology.NodeID
	seq      uint32 // request's sequence stamp, echoed in the reply
	acksLeft int    // outstanding singlecast invalidation acks
	next     *txn   // home free list
}

// homeModule owns the directory for locally-homed blocks.
type homeModule struct {
	module
	c       *Controller
	queue   *memory.Queue[queuedReq] // starvation FIFO (32 KB at 1024 nodes)
	pending map[topology.Addr]*txn
	// overflow models the home's outbound buffer in main memory: one
	// entry (invalidation request + node map) per in-flight invalidation
	// transaction (64 KB at 1024 nodes).
	overflow *memory.Queue[topology.Addr]
	txnFree  *txn // recycled pending-transaction records
}

// newTxn takes a transaction record from the free list (or seeds it).
//
//cenju4:hotpath
func (h *homeModule) newTxn(kind msg.Kind, master topology.NodeID, seq uint32) *txn {
	t := h.txnFree
	if t == nil {
		//cenju4:alloc-ok pool seeding: records recycle on completion, so the pool settles at the pending-block peak
		t = &txn{}
	} else {
		h.txnFree = t.next
	}
	t.kind = kind
	t.master = master
	t.seq = seq
	t.acksLeft = 0
	t.next = nil
	return t
}

// freeTxn returns a completed transaction record to the pool.
func (h *homeModule) freeTxn(t *txn) {
	t.next = h.txnFree
	h.txnFree = t
}

func (h *homeModule) init(c *Controller) {
	h.c = c
	cap := memory.RequestQueueCapacity(c.cfg.Nodes)
	if c.cfg.RequestTimeout > 0 {
		// With recovery armed, a master whose transaction is wedged
		// behind a pending block retransmits into this queue: each of
		// its bounded retransmits can add one more copy of an entry the
		// paper's sizing argument counts once. The bound extends by the
		// retransmit limit, so the no-drop guarantee holds under fault
		// injection too.
		cap *= 1 + c.cfg.RetransmitLimit
	}
	if c.cfg.QueueCapOverride > 0 {
		cap = c.cfg.QueueCapOverride
	}
	h.queue = memory.NewQueue[queuedReq]("home-requests", cap, memory.RequestQueueBits)
	h.overflow = memory.NewQueue[topology.Addr]("home-out-overflow", cap, memory.OverflowQueueBits)
	h.pending = make(map[topology.Addr]*txn)
}

// handle processes one message addressed to this home. Directory
// mutations apply immediately (arrivals are already time-ordered by the
// event engine); the module's busy window — including any backlog from
// earlier services — delays the outbound effects, preserving the
// one-service-at-a-time discipline. This serialization at a hot home is
// what makes the no-multicast invalidation storm of Figure 10 linear.
func (h *homeModule) handle(m *msg.Message) {
	c := h.c
	now := c.eng.Now()
	var elapsed sim.Time
	if h.busy > now {
		elapsed = h.busy - now // wait for the service in progress
	}
	if !c.isLocal(m) {
		elapsed += c.cfg.Params.HomeProc
	}
	switch m.Kind {
	case msg.ReadShared, msg.ReadExclusive, msg.Ownership, msg.UpdateWrite:
		c.stats.HomeRequests++
		elapsed += h.processRequest(m.Kind, m.Master, m.Addr, m.Val, m.Seq, elapsed)
	case msg.WriteBack:
		elapsed += h.processWriteBack(m)
	case msg.SlaveData, msg.SlaveAck:
		elapsed += h.processSlaveReply(m, elapsed)
	case msg.InvAck, msg.UpdateAck:
		elapsed += h.processInvAck(m, elapsed)
	default:
		panic(fmt.Sprintf("core: home received %v", m))
	}
	h.busy = now + elapsed
}

// processRequest runs the appendix request sequences. sofar is the cost
// already accumulated for this service (outbound sends depart after the
// full service time). It returns the additional processing cost.
func (h *homeModule) processRequest(kind msg.Kind, master topology.NodeID, addr topology.Addr, val uint64, seq uint32, sofar sim.Time) sim.Time {
	c := h.c
	p := c.cfg.Params
	e := c.mem.Entry(addr)
	cost := p.DirAccess

	if e.State().Pending() {
		if c.cfg.Mode == ModeNack {
			h.reply(master, c.newMsg(msg.Message{Kind: msg.Nack, OrigKind: kind, Addr: addr, Master: master, Seq: seq}), sofar+cost)
			return cost
		}
		// Queuing protocol: an ownership request against a pending block
		// is converted to read-exclusive (the shared copy may be gone by
		// the time it is dequeued), then saved in the memory FIFO.
		if kind == msg.Ownership {
			kind = msg.ReadExclusive
		}
		wasEmpty := h.queue.Empty()
		h.queue.Push(queuedReq{kind, master, addr, val, seq})
		c.stats.QueuedRequests++
		if wasEmpty && !(c.cfg.Faults != nil && c.cfg.Faults.SkipReservation) {
			// The new request is at the top of the queue: mark its block.
			e.SetReserved(true)
		}
		return cost + p.QueueOp
	}
	return cost + h.processStable(kind, master, addr, val, seq, e, sofar+cost)
}

// processStable handles a request against a stable (clean or dirty)
// block, per the appendix. It may leave the block pending.
func (h *homeModule) processStable(kind msg.Kind, master topology.NodeID, addr topology.Addr, val uint64, seq uint32, e *directory.Entry, sofar sim.Time) sim.Time {
	c := h.c
	p := c.cfg.Params
	switch kind {
	case msg.UpdateWrite:
		// Update-protocol extension: write memory, then multicast the
		// new data to every node's third-level cache and gather the
		// acknowledgements.
		e.SetState(directory.PendingUpdate)
		t := h.newTxn(kind, master, seq)
		h.pending[addr] = t
		h.overflow.Push(addr)
		if c.vals != nil {
			// This directory access is the write-through's serialization
			// point: memory takes the data and the broadcast fans it out.
			c.vals.memWrite(c.cfg.Node, addr, val)
			c.vals.updateOrdered(master, addr, val, c.eng.Now())
		}
		um := msg.Message{
			Kind:    msg.UpdateData,
			Src:     c.cfg.Node,
			Dest:    c.allNodes,
			Addr:    addr,
			Master:  master,
			HasData: true,
			Val:     val,
		}
		if c.fab.MulticastEnabled() {
			pm := c.newMsg(um)
			pm.Gather = c.fab.AllocGather(c.allNodes, c.cfg.Node)
			t.acksLeft = 1
			c.send(pm, sofar+p.MemAccess)
		} else {
			targets := c.allNodes.Members(c.memberBuf[:0], c.cfg.Nodes)
			t.acksLeft = len(targets)
			for _, n := range targets {
				cp := c.newMsg(um)
				cp.Dest = directory.Single(n)
				c.send(cp, sofar+p.MemAccess)
			}
		}
		return p.MemAccess
	case msg.ReadShared:
		switch {
		case e.MapIsOnly(master) && !c.updateBlock(addr):
			// No node (or only the master) caches: grant exclusive.
			// Update-protocol blocks are never granted exclusively — a
			// silent E->M upgrade would bypass the write-through and
			// strand every third-level cache on stale data (the
			// validator's "no exclusive owner under the update protocol"
			// invariant).
			e.SetState(directory.Dirty)
			e.MapSetOnly(master)
			h.reply(master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: addr, Master: master, HasData: true, Excl: true, Val: h.memVal(addr), Seq: seq}), sofar+p.MemAccess)
			return p.MemAccess
		case e.State() == directory.Clean ||
			(c.cfg.Faults != nil && c.cfg.Faults.StaleDirtyRead):
			// Injected fault: a dirty block is served from (stale) memory
			// without forwarding to the owner.
			e.MapAdd(master)
			h.reply(master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: addr, Master: master, HasData: true, Val: h.memVal(addr), Seq: seq}), sofar+p.MemAccess)
			return p.MemAccess
		default: // Dirty at another node: forward to the slave.
			slave := h.dirtyOwner(e)
			e.SetState(directory.PendingShared)
			h.pending[addr] = h.newTxn(kind, master, seq)
			h.forward(slave, msg.FwdReadShared, addr, master, sofar)
			return 0
		}

	case msg.ReadExclusive, msg.Ownership:
		switch {
		case e.MapIsOnly(master):
			e.SetState(directory.Dirty)
			e.MapSetOnly(master)
			if kind == msg.Ownership {
				// Sole sharer upgrading: no data transfer needed.
				h.reply(master, c.newMsg(msg.Message{Kind: msg.HomeAck, Addr: addr, Master: master, Seq: seq}), sofar)
				return 0
			}
			h.reply(master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: addr, Master: master, HasData: true, Excl: true, Val: h.memVal(addr), Seq: seq}), sofar+p.MemAccess)
			return p.MemAccess
		case e.State() == directory.Clean:
			// Other nodes registered: invalidate them all.
			if kind == msg.Ownership {
				e.SetState(directory.PendingInvalidate)
			} else {
				e.SetState(directory.PendingExclusive)
			}
			t := h.newTxn(kind, master, seq)
			h.pending[addr] = t
			h.invalidate(e.Dest(), addr, master, t, sofar)
			return 0
		default: // Dirty at another node.
			slave := h.dirtyOwner(e)
			e.SetState(directory.PendingExclusive)
			// An ownership request that races with a steal of the line is
			// served as a read-exclusive: the master's copy is stale.
			h.pending[addr] = h.newTxn(msg.ReadExclusive, master, seq)
			h.forward(slave, msg.FwdReadExclusive, addr, master, sofar)
			return 0
		}
	default:
		panic(fmt.Sprintf("core: processStable(%v)", kind))
	}
}

// dirtyOwner returns the single node registered for a dirty block.
func (h *homeModule) dirtyOwner(e *directory.Entry) topology.NodeID {
	members := e.MapMembers(h.c.memberBuf[:0], h.c.cfg.Nodes)
	if len(members) != 1 {
		panic(fmt.Sprintf("core: dirty block with %d registered nodes", len(members)))
	}
	return members[0]
}

// forward relays a request to the dirty slave.
func (h *homeModule) forward(slave topology.NodeID, kind msg.Kind, addr topology.Addr, master topology.NodeID, delay sim.Time) {
	c := h.c
	c.stats.HomeForwards++
	c.send(c.newMsg(msg.Message{
		Kind:   kind,
		Src:    c.cfg.Node,
		Dest:   directory.Single(slave),
		Addr:   addr,
		Master: master,
	}), delay)
}

// invalidate sends invalidation requests to every node the map
// represents. Above the singlecast threshold it multicasts one message
// carrying the directory's own destination structure and collects the
// acknowledgements with the network's gathering function; otherwise it
// sends singlecasts and counts individual acks.
func (h *homeModule) invalidate(spec directory.Dest, addr topology.Addr, master topology.NodeID, t *txn, delay sim.Time) {
	c := h.c
	targets := spec.Members(c.memberBuf[:0], c.cfg.Nodes)
	if len(targets) == 0 {
		panic("core: invalidate with no targets")
	}
	c.stats.Invalidations++
	c.stats.InvTargets += uint64(len(targets))
	h.overflow.Push(addr) // outbound buffer: one invalidation + node map
	base := msg.Message{
		Kind:   msg.Invalidate,
		Src:    c.cfg.Node,
		Addr:   addr,
		Master: master,
	}
	if c.fab.MulticastEnabled() && len(targets) > c.cfg.SinglecastThreshold {
		m := c.newMsg(base)
		m.Dest = spec
		m.Gather = c.fab.AllocGather(spec, c.cfg.Node)
		t.acksLeft = 1 // one gathered reply
		c.send(m, delay)
		return
	}
	t.acksLeft = len(targets)
	for _, n := range targets {
		m := c.newMsg(base)
		m.Dest = directory.Single(n)
		c.send(m, delay)
	}
}

// reply sends a message back to the master. The home reads the block
// from memory when the reply carries data (cost accounted by caller).
func (h *homeModule) reply(master topology.NodeID, m *msg.Message, delay sim.Time) {
	m.Src = h.c.cfg.Node
	m.Dest = directory.Single(master)
	h.c.send(m, delay)
}

// memVal reads the home-memory value of addr for a data reply (0 when
// no value tracker is attached).
func (h *homeModule) memVal(addr topology.Addr) uint64 {
	if h.c.vals == nil {
		return 0
	}
	return h.c.vals.MemValue(h.c.cfg.Node, addr)
}

// processWriteBack accepts a writeback even while the block is pending
// (the "no-reply" sequence that shrinks the starvation/deadlock
// buffers).
func (h *homeModule) processWriteBack(m *msg.Message) sim.Time {
	c := h.c
	p := c.cfg.Params
	e := c.mem.Entry(m.Addr)
	if e.State() == directory.Dirty {
		e.SetState(directory.Clean)
		e.MapClear()
	}
	// In any other state (including pending) the directory is unchanged:
	// the data lands in memory and the in-flight transaction completes
	// against valid memory contents.
	if c.vals != nil {
		c.vals.memWrite(c.cfg.Node, m.Addr, m.Val)
	}
	return p.DirAccess + p.MemAccess
}

// processSlaveReply finishes a forwarded transaction.
func (h *homeModule) processSlaveReply(m *msg.Message, sofar sim.Time) sim.Time {
	c := h.c
	p := c.cfg.Params
	e := c.mem.Entry(m.Addr)
	t := h.pending[m.Addr]
	if t == nil {
		panic(fmt.Sprintf("core: slave reply %v with no pending transaction", m))
	}
	cost := p.DirAccess + p.MemAccess // memory write (dirty data) or read (reply data)
	if c.vals != nil && m.Kind == msg.SlaveData {
		c.vals.memWrite(c.cfg.Node, m.Addr, m.Val) // dirty data lands in memory
	}
	switch e.State() {
	case directory.PendingShared:
		e.SetState(directory.Clean)
		e.MapAdd(t.master)
		h.reply(t.master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: m.Addr, Master: t.master, HasData: true, Val: h.memVal(m.Addr), Seq: t.seq}), sofar+cost)
	case directory.PendingExclusive:
		e.SetState(directory.Dirty)
		e.MapSetOnly(t.master)
		h.reply(t.master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: m.Addr, Master: t.master, HasData: true, Excl: true, Val: h.memVal(m.Addr), Seq: t.seq}), sofar+cost)
	default:
		panic(fmt.Sprintf("core: slave reply in state %v", e.State()))
	}
	delete(h.pending, m.Addr)
	h.freeTxn(t)
	cost += h.completeBlock(e, sofar+cost)
	return cost
}

// processInvAck counts invalidation acknowledgements (one gathered
// message, or one per target in singlecast mode) and completes the
// transaction on the last.
func (h *homeModule) processInvAck(m *msg.Message, sofar sim.Time) sim.Time {
	c := h.c
	p := c.cfg.Params
	e := c.mem.Entry(m.Addr)
	t := h.pending[m.Addr]
	if t == nil {
		panic(fmt.Sprintf("core: inv-ack %v with no pending transaction", m))
	}
	t.acksLeft--
	if t.acksLeft > 0 {
		return 0 // singlecast mode: more acks coming
	}
	if _, ok := h.overflow.Pop(); !ok {
		panic("core: invalidation completion with empty outbound buffer")
	}
	cost := p.DirAccess
	switch t.kind {
	case msg.UpdateWrite:
		// All third-level caches updated: the block stays clean and the
		// node map is untouched (the update protocol does not track
		// sharers — every node holds the data).
		e.SetState(directory.Clean)
		h.reply(t.master, c.newMsg(msg.Message{Kind: msg.HomeAck, Addr: m.Addr, Master: t.master, Seq: t.seq}), sofar+cost)
	case msg.Ownership:
		e.SetState(directory.Dirty)
		e.MapSetOnly(t.master)
		h.reply(t.master, c.newMsg(msg.Message{Kind: msg.HomeAck, Addr: m.Addr, Master: t.master, Seq: t.seq}), sofar+cost)
	case msg.ReadExclusive:
		// Send the block (a pending ownership that raced with a steal
		// was already downgraded to read-exclusive when queued).
		e.SetState(directory.Dirty)
		e.MapSetOnly(t.master)
		cost += p.MemAccess
		h.reply(t.master, c.newMsg(msg.Message{Kind: msg.HomeData, Addr: m.Addr, Master: t.master, HasData: true, Excl: true, Val: h.memVal(m.Addr), Seq: t.seq}), sofar+cost)
	default:
		panic(fmt.Sprintf("core: invalidation transaction completed for %v", t.kind))
	}
	delete(h.pending, m.Addr)
	h.freeTxn(t)
	cost += h.completeBlock(e, sofar+cost)
	return cost
}

// completeBlock runs after a transaction returns a block to a stable
// state: if the reservation bit is set, the request at the top of the
// memory queue targets this block — drain the queue until it empties or
// a request hits a still-pending block. It returns the drain cost.
func (h *homeModule) completeBlock(e *directory.Entry, sofar sim.Time) sim.Time {
	if !e.Reserved() {
		return 0
	}
	e.SetReserved(false)
	return h.drainQueue(sofar)
}

// drainQueue returns the processing cost it adds; the caller folds it
// into the service time.
func (h *homeModule) drainQueue(sofar sim.Time) sim.Time {
	c := h.c
	p := c.cfg.Params
	var added sim.Time
	for {
		req, ok := h.queue.Peek()
		if !ok {
			return added
		}
		e := c.mem.Entry(req.addr)
		if e.State().Pending() {
			// Head of queue must wait: mark its block and stop.
			e.SetReserved(true)
			return added
		}
		h.queue.Pop()
		base := sofar + added + p.QueueOp + p.DirAccess
		extra := h.processStable(req.kind, req.master, req.addr, req.val, req.seq, e, base)
		added += p.QueueOp + p.DirAccess + extra
	}
}
