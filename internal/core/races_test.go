package core

import (
	"math/rand"
	"testing"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// The Figure 8(b) race: the home forwards a request to a slave whose
// modified copy is already on its way back as a writeback. The in-order
// network guarantees the writeback reaches the home before the slave's
// empty-handed acknowledgement, so the reply is served from (now valid)
// memory — no nack, no data loss.
func TestWritebackRacesForwardedRequest(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, true) // node 1 holds M

	completed := false
	// Node 2's load will be forwarded to node 1.
	cl.ctrls[2].Request(a, false, func() { completed = true })
	// While the forward is in flight, node 1 evicts the block.
	cl.eng.After(600, func() {
		cl.ctrls[1].Cache().SetState(a, cache.Invalid)
		cl.ctrls[1].EvictShared(a)
	})
	cl.eng.Run()
	if !completed {
		t.Fatal("racing load never completed")
	}
	if st := cl.ctrls[2].Cache().State(a); st != cache.Shared {
		t.Fatalf("reader state = %v, want S", st)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Clean {
		t.Fatalf("directory = %v, want clean", *e)
	}
	if cl.ctrls[0].Stats().HomeForwards != 1 {
		t.Fatalf("forwards = %d, want 1 (the race requires a forward)", cl.ctrls[0].Stats().HomeForwards)
	}
}

// The same race against a read-exclusive request.
func TestWritebackRacesReadExclusive(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	cl.access(t, 1, a, true)

	completed := false
	cl.ctrls[3].Request(a, true, func() { completed = true })
	cl.eng.After(600, func() {
		cl.ctrls[1].Cache().SetState(a, cache.Invalid)
		cl.ctrls[1].EvictShared(a)
	})
	cl.eng.Run()
	if !completed {
		t.Fatal("racing store never completed")
	}
	if st := cl.ctrls[3].Cache().State(a); st != cache.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	e := cl.ctrls[0].Memory().Entry(a)
	if e.State() != directory.Dirty || !e.MapIsOnly(3) {
		t.Fatalf("directory = %v, want dirty {3}", *e)
	}
}

// An ownership request whose shared copy is invalidated while the
// request is in flight: the home queues it against the pending
// invalidation and converts it to read-exclusive, so the requester ends
// up with a valid modified line.
func TestOwnershipConvertsToReadExclusiveWhenQueued(t *testing.T) {
	cl := newCluster(t, 16, true)
	a := blockAt(0, 1)
	// Nodes 1 and 2 share the block.
	cl.access(t, 1, a, false)
	cl.access(t, 2, a, false)
	// Both store "simultaneously": both send ownership; one is queued
	// behind the other's invalidation and must be converted.
	done1, done2 := false, false
	cl.ctrls[1].Request(a, true, func() { done1 = true })
	cl.ctrls[2].Request(a, true, func() { done2 = true })
	cl.eng.Run()
	if !done1 || !done2 {
		t.Fatalf("stores completed: %v %v", done1, done2)
	}
	// Exactly one final owner, and it must hold a valid Modified line.
	owners := 0
	for _, ctrl := range cl.ctrls {
		if ctrl.Cache().State(a) == cache.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d owners", owners)
	}
	if cl.ctrls[0].Stats().QueuedRequests == 0 {
		t.Fatal("no request was queued — race not exercised")
	}
}

// Head-of-line queue blocking across blocks: a queued request for block
// B must wait for the queue head (targeting block A) even after B's own
// transaction completes — FIFO service, the paper's fairness guarantee.
func TestQueueHeadOfLineAcrossBlocks(t *testing.T) {
	cl := newCluster(t, 16, true)
	a, b := blockAt(0, 1), blockAt(0, 2)
	// Make both blocks dirty at remote nodes so requests pend.
	cl.access(t, 1, a, true)
	cl.access(t, 2, b, true)
	var order []string
	// Two requests to A (the second queues), then one to B while A's
	// transactions hold the queue.
	cl.ctrls[3].Request(a, true, func() { order = append(order, "a3") })
	cl.ctrls[4].Request(a, true, func() { order = append(order, "a4") })
	cl.ctrls[5].Request(b, true, func() { order = append(order, "b5") })
	cl.eng.Run()
	if len(order) != 3 {
		t.Fatalf("completions = %v", order)
	}
	// a3 must finish before a4 (FIFO on the same block).
	ia3, ia4 := indexOf(order, "a3"), indexOf(order, "a4")
	if ia3 > ia4 {
		t.Fatalf("same-block FIFO violated: %v", order)
	}
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// Randomized 1024-node traffic exercises the bit-pattern superset
// paths: invalidations reach decoded non-sharers, which must simply
// acknowledge. Invariants checked at every completion.
func TestRandomTrafficLargeMachine(t *testing.T) {
	cl := newCluster(t, 1024, true)
	blocks := []topology.Addr{blockAt(0, 1), blockAt(511, 2), blockAt(1023, 3)}
	rng := rand.New(rand.NewSource(99))
	issued, completed := 0, 0
	var kick func()
	kick = func() {
		completed++
		checkSingleWriter(t, cl, blocks)
		if issued >= 300 {
			return
		}
		issued++
		node := topology.NodeID(rng.Intn(1024))
		cl.ctrls[node].Request(blocks[rng.Intn(3)], rng.Intn(3) == 0, func() { kick() })
	}
	for i := 0; i < 6; i++ {
		issued++
		node := topology.NodeID(rng.Intn(1024))
		cl.ctrls[node].Request(blocks[rng.Intn(3)], true, func() { kick() })
	}
	cl.eng.Run()
	if completed != issued {
		t.Fatalf("completed %d of %d", completed, issued)
	}
	// At least one directory entry should have exercised bit-pattern
	// form during the run (many sharers on a read-heavy block).
}

// Ownership completion after the line was silently evicted: the master
// re-allocates the line Modified (possibly writing back a victim).
func TestHomeAckAfterSilentEviction(t *testing.T) {
	cl := newCluster(t, 16, true, withCache(cache.Config{SizeBytes: 2 * topology.BlockSize, Ways: 1}))
	a := blockAt(0, 1)
	cl.access(t, 1, a, false) // E at node 1
	cl.access(t, 2, a, false) // S at 1 and 2
	// Node 2 stores; while the ownership request is in flight, its S
	// copy is displaced by another block mapping to the same set.
	done := false
	cl.ctrls[2].Request(a, true, func() { done = true })
	cl.eng.After(100, func() {
		cl.ctrls[2].Cache().Insert(blockAt(0, 1+8192), cache.Exclusive) // same set as a
	})
	cl.eng.Run()
	if !done {
		t.Fatal("store never completed")
	}
	if st := cl.ctrls[2].Cache().State(a); st != cache.Modified {
		t.Fatalf("state after re-allocation = %v, want M", st)
	}
}

// The writeback "no-reply" sequence must leave no pending context and
// no reserved bit behind, even under a burst of writebacks to the same
// home.
func TestWritebackBurst(t *testing.T) {
	cl := newCluster(t, 16, true, withCache(cache.Config{SizeBytes: topology.BlockSize, Ways: 1}))
	// Node 1 dirties many blocks homed at 0; the one-line cache forces a
	// writeback on every new block.
	var last sim.Time
	for i := 0; i < 20; i++ {
		cl.access(t, 1, blockAt(0, uint64(1+i)), true)
		last = cl.eng.Now()
	}
	cl.eng.Run()
	_ = last
	// 19 writebacks (each new block evicts the previous modified one).
	if wb := cl.ctrls[1].Stats().Writebacks; wb != 19 {
		t.Fatalf("writebacks = %d, want 19", wb)
	}
	for i := 0; i < 19; i++ {
		e := cl.ctrls[0].Memory().Entry(blockAt(0, uint64(1+i)))
		if e.State() != directory.Clean || !e.MapEmpty() || e.Reserved() {
			t.Fatalf("block %d directory = %v after writeback", i, *e)
		}
	}
}
