package core

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/stats"
	"cenju4/internal/topology"
)

// mshr is one outstanding master transaction (the R10000 allows four).
// The master holds them in a fixed in-struct array — matching the four
// hardware miss registers — instead of a map of heap records: slot
// lookup is a four-entry linear scan and issuing/completing a
// transaction allocates nothing. owner points back to the module so a
// slot pointer is a self-sufficient argument for the static retry and
// complete callbacks.
type mshr struct {
	owner     *masterModule
	addr      topology.Addr
	store     bool
	active    bool
	kind      msg.Kind
	issuedAt  sim.Time
	done      func()
	waiters   []deferredReq // same-block accesses arriving mid-flight
	retries   int
	installL3 bool   // update protocol: record the block in the local L3
	tag       uint64 // update protocol: value tag assigned at issue

	// Fault-recovery state (inert unless Config.RequestTimeout is set).
	// seq is the transaction's sequence stamp: carried on every attempt
	// and echoed by the home, so replies to transactions this slot no
	// longer holds are recognized and dropped. settled latches "a reply
	// was accepted and the completion (or nack retry) is in flight" —
	// the window in which a duplicated reply must be discarded, not
	// double-processed. timer is the armed retransmit timeout; resends
	// counts timeout-driven re-sends.
	seq     uint32
	resends int
	settled bool
	timer   *sim.Event
}

type deferredReq struct {
	addr  topology.Addr
	store bool
	done  func()
}

// masterModule issues requests and consumes replies.
type masterModule struct {
	c           *Controller
	slots       [topology.MaxOutstanding]mshr
	outstanding int
	deferred    []deferredReq // waiting for a free MSHR slot
	defHead     int           // consumed prefix of deferred (head index, no reslice)

	// Write-combining buffer for the update-protocol extension: one
	// block slot. The first store to a block broadcasts the update;
	// subsequent stores to the same block are absorbed until the
	// processor moves to another block (real update protocols combine
	// at block granularity or broadcast every word — combining is what
	// makes the extension profitable).
	combining      topology.Addr
	combiningValid bool

	// lat tracks per-request-kind transaction latency distributions,
	// indexed by msg.Kind (allocated lazily per kind actually seen).
	lat [msg.NumKinds]*stats.Histogram

	// seqCtr issues transaction sequence stamps (see mshr.seq).
	seqCtr uint32
}

func (m *masterModule) init(c *Controller) {
	m.c = c
	for i := range m.slots {
		m.slots[i].owner = m
	}
}

func (m *masterModule) recordLatency(kind msg.Kind, lat sim.Time) {
	h := m.lat[kind]
	if h == nil {
		//cenju4:alloc-ok once per kind actually observed, not per transaction
		h = &stats.Histogram{}
		m.lat[kind] = h
	}
	h.Add(lat)
}

// lookup returns the active slot for addr, or nil.
//
//cenju4:hotpath
func (m *masterModule) lookup(addr topology.Addr) *mshr {
	for i := range m.slots {
		if m.slots[i].active && m.slots[i].addr == addr {
			return &m.slots[i]
		}
	}
	return nil
}

// alloc claims a free slot for a new transaction. The caller guarantees
// one exists (outstanding < MaxOutstanding).
func (m *masterModule) alloc(addr topology.Addr, store bool, kind msg.Kind, done func()) *mshr {
	for i := range m.slots {
		if !m.slots[i].active {
			s := &m.slots[i]
			s.addr = addr
			s.store = store
			s.active = true
			s.kind = kind
			s.issuedAt = m.c.eng.Now()
			s.done = done
			s.retries = 0
			s.installL3 = false
			s.tag = 0
			m.seqCtr++
			s.seq = m.seqCtr
			s.resends = 0
			s.settled = false
			s.timer = nil // released slots never leave a live timer behind
			m.outstanding++
			return s
		}
	}
	panic("core: mshr alloc with all slots active")
}

// request starts (or merges, or defers) a transaction for block addr.
func (m *masterModule) request(addr topology.Addr, store bool, done func()) {
	if slot := m.lookup(addr); slot != nil {
		slot.waiters = append(slot.waiters, deferredReq{addr, store, done})
		return
	}
	if m.outstanding >= topology.MaxOutstanding {
		m.deferred = append(m.deferred, deferredReq{addr, store, done})
		return
	}
	m.issue(addr, store, done)
}

// issue re-examines the cache (a waiter's need may have been satisfied
// by the transaction it waited on) and sends the right request.
func (m *masterModule) issue(addr topology.Addr, store bool, done func()) {
	c := m.c
	if c.updateBlock(addr) {
		m.issueUpdate(addr, store, done)
		return
	}
	st := c.cache.State(addr)
	if !store && st != cache.Invalid {
		if c.vals != nil {
			c.vals.loadObserved(c.cfg.Node, addr, c.eng.Now())
		}
		done() // satisfied by an earlier transaction
		return
	}
	if store {
		switch st {
		case cache.Modified:
			if c.vals != nil {
				c.vals.storeOrdered(c.cfg.Node, addr, c.eng.Now())
			}
			done()
			return
		case cache.Exclusive:
			c.cache.SetState(addr, cache.Modified) // silent upgrade
			if c.vals != nil {
				c.vals.storeOrdered(c.cfg.Node, addr, c.eng.Now())
			}
			done()
			return
		case cache.Shared, cache.Invalid:
			// Ownership upgrade or plain miss: a transaction is issued
			// below.
		}
	}
	kind := msg.ReadShared
	switch {
	case store && st == cache.Shared:
		kind = msg.Ownership
	case store:
		kind = msg.ReadExclusive
	}
	slot := m.alloc(addr, store, kind, done)
	c.stats.Requests[kind]++
	m.sendRequest(slot, kind)
}

// issueUpdate handles accesses to update-protocol blocks: loads are
// served by the local third-level cache when present (the point of the
// extension), first touches fetch normally and install the L3 copy, and
// stores write through to the home.
func (m *masterModule) issueUpdate(addr topology.Addr, store bool, done func()) {
	c := m.c
	p := c.cfg.Params
	if !store {
		if c.cache.State(addr) != cache.Invalid {
			if c.vals != nil {
				c.vals.loadObserved(c.cfg.Node, addr, c.eng.Now())
			}
			done() // satisfied by a concurrent transaction
			return
		}
		if c.l3[addr] {
			// Third-level cache hit: one local memory access.
			c.stats.L3Hits++
			//cenju4:alloc-ok update-protocol extension path, outside the base-protocol steady state the alloc gate pins
			c.eng.After(p.ProcOverhead+p.MemAccess+p.DirAccess, func() {
				if v := c.cache.Insert(addr, cache.Shared); v.Writeback && v.Addr.Shared() {
					m.writeback(v.Addr)
				}
				if c.vals != nil {
					c.vals.fill(c.cfg.Node, addr, c.vals.L3Value(c.cfg.Node, addr))
					c.vals.loadObserved(c.cfg.Node, addr, c.eng.Now())
				}
				done()
			})
			return
		}
		slot := m.alloc(addr, false, msg.ReadShared, done)
		slot.installL3 = true
		c.stats.Requests[msg.ReadShared]++
		m.sendRequest(slot, msg.ReadShared)
		return
	}
	// Write-through with block-granular combining: the first store to a
	// block broadcasts it; the rest coalesce in the combining buffer.
	if m.combiningValid && m.combining == addr {
		c.eng.After(p.CacheHit, done)
		return
	}
	m.combining = addr
	m.combiningValid = true
	slot := m.alloc(addr, true, msg.UpdateWrite, done)
	if c.vals != nil {
		slot.tag = c.vals.newTag()
	}
	c.stats.Requests[msg.UpdateWrite]++
	c.stats.UpdateWrites++
	m.sendRequest(slot, msg.UpdateWrite)
}

//cenju4:hotpath
func (m *masterModule) sendRequest(slot *mshr, kind msg.Kind) {
	c := m.c
	slot.settled = false // each attempt reopens the reply window
	c.send(c.newMsg(msg.Message{
		Kind:     kind,
		OrigKind: kind,
		Src:      c.cfg.Node,
		Dest:     directory.Single(slot.addr.Home()),
		Addr:     slot.addr,
		Master:   c.cfg.Node,
		HasData:  kind == msg.UpdateWrite,
		Val:      slot.tag, // update write-through: the tagged store value
		Seq:      slot.seq,
	}), c.cfg.Params.ProcOverhead)
	m.armTimer(slot)
}

// armTimer schedules (or re-schedules) the retransmit timeout for the
// attempt just sent: RequestTimeout with exponential backoff per
// resend. A no-op in fault-free configurations.
func (m *masterModule) armTimer(slot *mshr) {
	c := m.c
	if c.cfg.RequestTimeout == 0 {
		return
	}
	if slot.timer != nil {
		c.eng.Cancel(slot.timer)
	}
	d := c.cfg.RequestTimeout << uint(slot.resends)
	slot.timer = c.eng.AtCall(c.eng.Now()+d, masterTimeout, slot)
}

// disarmTimer cancels a pending retransmit timeout; called the moment a
// reply is accepted, before the slot can be released or retried.
func (m *masterModule) disarmTimer(slot *mshr) {
	if slot.timer != nil {
		m.c.eng.Cancel(slot.timer)
		slot.timer = nil
	}
}

// masterTimeout is the static retransmit callback: the reply window
// for the current attempt expired, so re-send the request (the home
// replays idempotently) or, past the retransmit limit, abandon the
// transaction — the slot stays stuck and the machine watchdog reports
// it at quiescence.
func masterTimeout(a any) {
	s := a.(*mshr)
	s.timer = nil // the engine recycles fired event records immediately
	if !s.active || s.settled {
		return
	}
	m := s.owner
	c := m.c
	if s.resends >= c.cfg.RetransmitLimit {
		c.rec.Exhausted++
		return
	}
	s.resends++
	c.rec.Retransmits++
	m.retry(s)
}

// writeback emits a writeback for an evicted modified block. Writebacks
// do not occupy MSHR slots and expect no reply.
func (m *masterModule) writeback(addr topology.Addr) {
	c := m.c
	c.stats.Writebacks++
	var val uint64
	if c.vals != nil {
		val = c.vals.CacheValue(c.cfg.Node, addr) // dirty data leaves with the message
	}
	c.send(c.newMsg(msg.Message{
		Kind:     msg.WriteBack,
		OrigKind: msg.WriteBack,
		Src:      c.cfg.Node,
		Dest:     directory.Single(addr.Home()),
		Addr:     addr,
		Master:   c.cfg.Node,
		HasData:  true,
		Val:      val,
	}), 0)
}

// masterRetry is the static nack-backoff callback: its argument slot
// stays live (active) until the transaction completes, so no closure
// over (module, slot) is needed per retry.
func masterRetry(a any) {
	s := a.(*mshr)
	s.owner.retry(s)
}

// masterComplete is the static completion callback (see masterRetry).
func masterComplete(a any) {
	s := a.(*mshr)
	s.owner.complete(s)
}

// handle consumes a reply from a home.
//
//cenju4:hotpath
func (m *masterModule) handle(rm *msg.Message) {
	c := m.c
	slot := m.lookup(rm.Addr)
	if c.cfg.RequestTimeout > 0 {
		// Recovery armed: a reply with no live matching attempt is a
		// duplicate or a leftover of a retransmitted loss — expected
		// under fault injection, discarded by stamp.
		if slot == nil || slot.settled || rm.Seq != slot.seq {
			c.rec.StaleReplies++
			return
		}
	} else if slot == nil {
		panic(fmt.Sprintf("core: %v reply %v with no outstanding transaction", c.cfg.Node, rm))
	}
	var cost sim.Time
	if !c.isLocal(rm) {
		cost = c.cfg.Params.MasterProc
	}
	switch rm.Kind {
	case msg.HomeData:
		var st cache.LineState
		switch {
		case slot.store:
			st = cache.Modified
		case rm.Excl:
			st = cache.Exclusive
		default:
			st = cache.Shared
		}
		if v := c.cache.Insert(rm.Addr, st); v.Writeback {
			if v.Addr.Shared() {
				m.writeback(v.Addr)
			}
		}
		if slot.installL3 {
			c.l3[rm.Addr] = true
		}
		if c.vals != nil {
			if slot.store {
				// The pending store drains into the arriving block: this
				// grant is the store's serialization point (every stale
				// copy was invalidated before the home replied).
				c.vals.storeOrdered(c.cfg.Node, rm.Addr, c.eng.Now())
			} else {
				c.vals.fill(c.cfg.Node, rm.Addr, rm.Val)
				if slot.installL3 {
					c.vals.l3Write(c.cfg.Node, rm.Addr, rm.Val)
				}
				c.vals.loadObserved(c.cfg.Node, rm.Addr, c.eng.Now())
			}
		}
	case msg.HomeAck:
		if slot.kind == msg.UpdateWrite {
			// Write-through completed: memory holds the data, the local
			// copy (if any) stays Shared.
			if c.cache.State(rm.Addr) == cache.Invalid {
				if v := c.cache.Insert(rm.Addr, cache.Shared); v.Writeback && v.Addr.Shared() {
					m.writeback(v.Addr)
				}
				if c.vals != nil {
					c.vals.fill(c.cfg.Node, rm.Addr, slot.tag)
				}
			}
			break
		}
		// Ownership granted without data transfer. If the shared copy
		// was meanwhile displaced by a replacement, re-allocate the line
		// (the store data is the processor's own).
		if c.cache.State(rm.Addr) == cache.Invalid {
			if v := c.cache.Insert(rm.Addr, cache.Modified); v.Writeback && v.Addr.Shared() {
				m.writeback(v.Addr)
			}
		} else {
			c.cache.SetState(rm.Addr, cache.Modified)
		}
		if c.vals != nil {
			c.vals.storeOrdered(c.cfg.Node, rm.Addr, c.eng.Now())
		}
	case msg.Nack:
		c.stats.Nacks++
		slot.retries++
		if slot.retries > c.stats.MaxRetries {
			c.stats.MaxRetries = slot.retries
		}
		c.stats.Retries++
		slot.settled = true // absorb duplicate nacks until the retry re-sends
		m.disarmTimer(slot)
		c.eng.AtCall(c.eng.Now()+cost+c.cfg.NackDelay, masterRetry, slot)
		return
	default:
		panic(fmt.Sprintf("core: master received %v", rm))
	}
	c.stats.Replies++
	slot.settled = true // absorb duplicate replies while completion is in flight
	m.disarmTimer(slot)
	c.eng.AtCall(c.eng.Now()+cost, masterComplete, slot)
}

// retry re-sends a nacked request, downgrading ownership to
// read-exclusive if the shared copy has meanwhile been invalidated.
func (m *masterModule) retry(slot *mshr) {
	kind := slot.kind
	if kind == msg.Ownership && m.c.cache.State(slot.addr) == cache.Invalid {
		kind = msg.ReadExclusive
		slot.kind = kind
	}
	m.sendRequest(slot, kind)
}

// complete graduates the access, releases the slot, and re-drives any
// same-block waiters and deferred requests.
//
//cenju4:hotpath
func (m *masterModule) complete(slot *mshr) {
	c := m.c
	lat := c.eng.Now() - slot.issuedAt
	c.stats.Completed++
	c.stats.LatencySum += lat
	if lat > c.stats.LatencyMax {
		c.stats.LatencyMax = lat
	}
	m.recordLatency(slot.kind, lat)
	done := slot.done
	waiters := slot.waiters
	slot.waiters = nil // re-drives below may reclaim and refill the slot
	slot.done = nil
	slot.active = false
	m.outstanding--
	done()
	for _, w := range waiters {
		m.request(w.addr, w.store, w.done)
	}
	for m.defHead < len(m.deferred) && m.outstanding < topology.MaxOutstanding {
		d := m.deferred[m.defHead]
		m.deferred[m.defHead] = deferredReq{}
		m.defHead++
		m.request(d.addr, d.store, d.done)
	}
	if m.defHead == len(m.deferred) && m.defHead > 0 {
		m.deferred = m.deferred[:0]
		m.defHead = 0
	}
}
