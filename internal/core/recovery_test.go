package core

import (
	"strings"
	"testing"

	"cenju4/internal/faults"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// newFaultyCluster wires N controllers over a network with a compiled
// fault plan, with the master recovery machinery armed from the plan.
func newFaultyCluster(t testing.TB, nodes int, spec faults.Spec, opts ...clusterOpt) (*cluster, *faults.Injector) {
	t.Helper()
	spec = spec.Normalize()
	inj := spec.Compile(nodes)
	cl := &cluster{eng: sim.NewEngine()}
	cl.net = network.New(cl.eng, network.Config{Nodes: nodes, Multicast: true, Injector: inj})
	cl.ctrls = make([]*Controller, nodes)
	for i := 0; i < nodes; i++ {
		cfg := Config{
			Node:            topology.NodeID(i),
			Nodes:           nodes,
			RequestTimeout:  spec.Timeout,
			RetransmitLimit: spec.Retries,
		}
		for _, o := range opts {
			o(&cfg)
		}
		cl.ctrls[i] = New(cl.eng, cl.net, cfg)
		cl.net.Attach(topology.NodeID(i), cl.ctrls[i].Deliver)
	}
	return cl, inj
}

// churn drives a deterministic mix of loads and stores from every node
// across a few blocks, one access at a time, and fails the test if any
// access never completes.
func churn(t *testing.T, cl *cluster, rounds int) {
	t.Helper()
	nodes := len(cl.ctrls)
	for r := 0; r < rounds; r++ {
		node := topology.NodeID(r % nodes)
		home := topology.NodeID((r / 2) % nodes)
		addr := blockAt(home, uint64(r%3))
		cl.access(t, node, addr, r%3 == 0)
	}
}

func recoveryTotals(cl *cluster) RecoveryStats {
	var tot RecoveryStats
	for _, c := range cl.ctrls {
		r := c.Recovery()
		tot.Retransmits += r.Retransmits
		tot.StaleReplies += r.StaleReplies
		tot.Exhausted += r.Exhausted
	}
	return tot
}

func TestDroppedRequestsAndRepliesAreRetransmitted(t *testing.T) {
	cl, inj := newFaultyCluster(t, 8, faults.Spec{Seed: 11, Drop: 0.2, Timeout: 50_000})
	churn(t, cl, 120)
	if inj.Stats.Drops == 0 {
		t.Fatal("plan injected no drops (placebo)")
	}
	rec := recoveryTotals(cl)
	if rec.Retransmits == 0 {
		t.Fatalf("drops injected (%d) but no retransmits recorded", inj.Stats.Drops)
	}
	if rec.Exhausted != 0 {
		t.Fatalf("recoverable plan exhausted %d transactions", rec.Exhausted)
	}
	for _, c := range cl.ctrls {
		if c.Outstanding() != 0 {
			t.Fatalf("node %v finished with %d outstanding transactions", c.Node(), c.Outstanding())
		}
		if c.PendingBlocks() != 0 {
			t.Fatalf("node %v finished with %d pending blocks", c.Node(), c.PendingBlocks())
		}
	}
}

func TestDuplicateRepliesAreDiscardedByStamp(t *testing.T) {
	cl, inj := newFaultyCluster(t, 8, faults.Spec{Seed: 5, Dup: 0.5, Timeout: 500_000})
	churn(t, cl, 120)
	if inj.Stats.Dups == 0 {
		t.Fatal("plan injected no duplicates (placebo)")
	}
	rec := recoveryTotals(cl)
	if rec.StaleReplies == 0 {
		t.Fatalf("%d duplicates injected but no stale replies discarded", inj.Stats.Dups)
	}
	for _, c := range cl.ctrls {
		if c.Outstanding() != 0 {
			t.Fatalf("node %v finished with %d outstanding", c.Node(), c.Outstanding())
		}
	}
}

func TestCorruptionBecomesDetectedLossAndRecovers(t *testing.T) {
	cl, inj := newFaultyCluster(t, 8, faults.Spec{Seed: 9, Corrupt: 0.3, Timeout: 50_000})
	churn(t, cl, 100)
	if inj.Stats.Corruptions == 0 {
		t.Fatal("plan injected no corruptions (placebo)")
	}
	if inj.Stats.DetectedDrops != inj.Stats.Corruptions {
		t.Fatalf("checksum caught %d of %d corruptions", inj.Stats.DetectedDrops, inj.Stats.Corruptions)
	}
	if rec := recoveryTotals(cl); rec.Retransmits == 0 {
		t.Fatal("corrupted traffic never retransmitted")
	}
}

func TestNackModeRecoversDroppedNacks(t *testing.T) {
	cl, inj := newFaultyCluster(t, 8, faults.Spec{Seed: 3, Drop: 0.2, Timeout: 50_000},
		withMode(ModeNack))
	churn(t, cl, 80)
	if inj.Stats.Drops == 0 {
		t.Fatal("plan injected no drops (placebo)")
	}
	for _, c := range cl.ctrls {
		if c.Outstanding() != 0 {
			t.Fatalf("node %v finished with %d outstanding", c.Node(), c.Outstanding())
		}
	}
}

func TestExhaustedRetransmitsLeaveDiagnosableStuckSlot(t *testing.T) {
	// Forwards are dropped with certainty: node 2's steal of node 1's
	// dirty block can never complete — the home's forward dies on the
	// wire, the master's retransmits queue behind the pending block,
	// and after the bounded retransmits the slot is permanently stuck.
	spec := faults.Spec{Seed: 1, Drop: 1, Scope: faults.ScopeForwards, Timeout: 20_000, Retries: 2}
	cl, inj := newFaultyCluster(t, 4, spec)
	a := blockAt(0, 1)
	cl.access(t, 1, a, true) // node 1: M (no forwards involved)

	completed := false
	cl.ctrls[2].Request(a, true, func() { completed = true })
	cl.eng.Run()
	if completed {
		t.Fatal("access completed despite every forward being dropped")
	}
	if inj.Stats.Drops == 0 {
		t.Fatal("no forwards dropped (placebo)")
	}
	rec := recoveryTotals(cl)
	if rec.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", rec.Exhausted)
	}
	var sb strings.Builder
	wrote := false
	for _, c := range cl.ctrls {
		if c.DiagnoseInto(&sb) {
			wrote = true
		}
	}
	if !wrote {
		t.Fatal("no controller reported stuck state")
	}
	diag := sb.String()
	for _, want := range []string{"retransmits exhausted", "pending ", "mshr["} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, diag)
		}
	}
}

func TestDiagnoseQuietOnIdleController(t *testing.T) {
	cl := newCluster(t, 4, true)
	cl.access(t, 1, blockAt(0, 1), false)
	var sb strings.Builder
	for _, c := range cl.ctrls {
		if c.DiagnoseInto(&sb) {
			t.Fatalf("idle controller %v reported stuck state:\n%s", c.Node(), sb.String())
		}
	}
}

func TestRecoveryStatsStayZeroFaultFree(t *testing.T) {
	cl := newCluster(t, 8, true)
	churn(t, cl, 60)
	if rec := recoveryTotals(cl); rec != (RecoveryStats{}) {
		t.Fatalf("fault-free run accumulated recovery stats: %+v", rec)
	}
}
