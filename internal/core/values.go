package core

import (
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// ValueObserver receives the semantically significant data events a
// ValueTracker derives from the protocol's message flow. The fuzzing
// harness's consistency oracle implements it; the tracker itself is
// purely mechanical and never judges correctness.
type ValueObserver interface {
	// StoreOrdered reports that a store of tag to the block became
	// globally ordered: for invalidation-protocol blocks at the master's
	// grant (every stale copy is gone by then), for update-protocol
	// blocks (update=true) at the home's write-through serialization
	// point.
	StoreOrdered(node topology.NodeID, addr topology.Addr, tag uint64, update bool, at sim.Time)
	// LoadObserved reports the tagged value a processor load returned.
	LoadObserved(node topology.NodeID, addr topology.Addr, tag uint64, at sim.Time)
}

// ValueTracker mirrors the movement of one tagged 64-bit value per
// coherence block as the protocol executes: per-node secondary-cache
// line values, per-home memory values, and per-node third-level-cache
// values for update-protocol blocks. Blocks start holding tag 0; every
// ordered store writes a fresh monotonic tag. Because the tracker moves
// values exactly where the protocol moves data — fills, forwards,
// writebacks, update broadcasts — a protocol bug (a stale copy
// surviving an invalidation, a dirty block served from memory) surfaces
// as a load observing a tag the consistency oracle does not expect.
//
// One tracker is shared by every controller of a machine and is only
// safe for the single-threaded event engine that drives them.
type ValueTracker struct {
	nextTag uint64
	obs     ValueObserver
	cache   map[topology.NodeID]map[topology.Addr]uint64
	mem     map[topology.NodeID]map[topology.Addr]uint64
	l3      map[topology.NodeID]map[topology.Addr]uint64
}

// NewValueTracker builds a tracker reporting to obs (which must be
// non-nil).
func NewValueTracker(obs ValueObserver) *ValueTracker {
	return &ValueTracker{
		obs:   obs,
		cache: make(map[topology.NodeID]map[topology.Addr]uint64),
		mem:   make(map[topology.NodeID]map[topology.Addr]uint64),
		l3:    make(map[topology.NodeID]map[topology.Addr]uint64),
	}
}

func get(m map[topology.NodeID]map[topology.Addr]uint64, n topology.NodeID, a topology.Addr) uint64 {
	return m[n][a.Block()]
}

func set(m map[topology.NodeID]map[topology.Addr]uint64, n topology.NodeID, a topology.Addr, v uint64) {
	inner := m[n]
	if inner == nil {
		//cenju4:alloc-ok one map per node, lazily; the value tracker attaches only in the fuzzing oracle
		inner = make(map[topology.Addr]uint64)
		m[n] = inner
	}
	inner[a.Block()] = v
}

// CacheValue returns the value node's secondary cache holds for the
// block (meaningful only while the line is valid).
func (t *ValueTracker) CacheValue(n topology.NodeID, a topology.Addr) uint64 {
	return get(t.cache, n, a)
}

// MemValue returns the home-memory value of the block.
func (t *ValueTracker) MemValue(home topology.NodeID, a topology.Addr) uint64 {
	return get(t.mem, home, a)
}

// L3Value returns node's third-level-cache value of an update-protocol
// block.
func (t *ValueTracker) L3Value(n topology.NodeID, a topology.Addr) uint64 { return get(t.l3, n, a) }

// newTag returns a fresh, globally unique, monotonically increasing
// store tag (tag 0 is the initial value of every block).
func (t *ValueTracker) newTag() uint64 {
	t.nextTag++
	return t.nextTag
}

// storeOrdered installs a fresh tag as node's cache value for the block
// — the serialization point of an invalidation-protocol store (cache
// hit on M/E, or transaction grant).
func (t *ValueTracker) storeOrdered(n topology.NodeID, a topology.Addr, at sim.Time) {
	tag := t.newTag()
	set(t.cache, n, a, tag)
	t.obs.StoreOrdered(n, a, tag, false, at)
}

// loadObserved reports node's current cache value as a load result.
func (t *ValueTracker) loadObserved(n topology.NodeID, a topology.Addr, at sim.Time) {
	t.obs.LoadObserved(n, a, get(t.cache, n, a), at)
}

// fill records a cache fill with a value that arrived in a message.
func (t *ValueTracker) fill(n topology.NodeID, a topology.Addr, v uint64) { set(t.cache, n, a, v) }

// memWrite records a home-memory write (writeback, slave data landing,
// update write-through).
func (t *ValueTracker) memWrite(home topology.NodeID, a topology.Addr, v uint64) {
	set(t.mem, home, a, v)
}

// l3Write records an update broadcast landing in node's third-level
// cache.
func (t *ValueTracker) l3Write(n topology.NodeID, a topology.Addr, v uint64) { set(t.l3, n, a, v) }

// updateOrdered reports the home-side serialization of an update-
// protocol write-through (the tag was assigned at issue and rode in the
// UpdateWrite message).
func (t *ValueTracker) updateOrdered(master topology.NodeID, a topology.Addr, tag uint64, at sim.Time) {
	t.obs.StoreOrdered(master, a, tag, true, at)
}

// Faults deliberately break one correctness-critical protocol action
// each, so the fuzzing harness can prove its oracle catches real bugs
// (internal/fuzz self-tests). Production configurations leave the
// pointer nil.
type Faults struct {
	// SkipInvalidate makes slaves acknowledge invalidations without
	// invalidating their copy — the classic stale-sharer bug the data
	// oracle catches on the next load hit.
	SkipInvalidate bool
	// SkipReservation makes the home queue requests without ever setting
	// the directory reservation bit, so the memory FIFO is never drained
	// — queued masters starve and the machine deadlocks.
	SkipReservation bool
	// StaleDirtyRead makes the home serve a read-shared request for a
	// dirty block straight from memory instead of forwarding to the
	// owner — the requester observes stale data.
	StaleDirtyRead bool
}
