package core

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/memory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
)

// slaveModule services forwarded requests and invalidations against the
// local cache. It has a small on-chip buffer; when more requests are
// waiting than it can hold, the excess is queued in a bounded
// memory-resident overflow region (64 KB at 1024 nodes: at most
// MaxOutstanding requests from each of N nodes), which is what breaks
// the slave's arc in the deadlock dependency graph without a second
// network.
type slaveModule struct {
	module
	c *Controller
	// backlog counts services admitted but not yet finished; entries
	// beyond the on-chip buffer conceptually live in main memory.
	backlog  int
	overflow *memory.Queue[struct{}]
}

func (s *slaveModule) init(c *Controller) {
	s.c = c
	cap := memory.RequestQueueCapacity(c.cfg.Nodes)
	if c.cfg.QueueCapOverride > 0 {
		cap = c.cfg.QueueCapOverride
	}
	s.overflow = memory.NewQueue[struct{}]("slave-overflow", cap, memory.OverflowQueueBits)
}

func (s *slaveModule) handle(m *msg.Message) {
	c := s.c
	now := c.eng.Now()
	p := c.cfg.Params
	var elapsed sim.Time
	if s.busy > now {
		elapsed = s.busy - now
	}
	elapsed += p.SlaveProc

	s.backlog++
	spilled := false
	if s.backlog > c.cfg.ModuleBufEntries {
		// On-chip buffer full: this request detours through main memory.
		s.overflow.Push(struct{}{})
		spilled = true
		elapsed += 2 * p.QueueOp // write to and read back from memory
	}

	st := c.cache.State(m.Addr)
	reply := c.newMsg(msg.Message{
		Src:    c.cfg.Node,
		Dest:   directory.Single(m.Src),
		Addr:   m.Addr,
		Master: m.Master,
	})
	switch m.Kind {
	case msg.FwdReadShared:
		switch st {
		case cache.Modified:
			c.cache.SetState(m.Addr, cache.Shared)
			reply.Kind = msg.SlaveData
			reply.HasData = true
			if c.vals != nil {
				reply.Val = c.vals.CacheValue(c.cfg.Node, m.Addr)
			}
		case cache.Exclusive:
			c.cache.SetState(m.Addr, cache.Shared)
			reply.Kind = msg.SlaveAck
		case cache.Shared, cache.Invalid:
			// The dirty copy is gone (written back, or demoted in
			// flight): plain acknowledgement; memory already holds
			// valid data.
			reply.Kind = msg.SlaveAck
		}
	case msg.FwdReadExclusive:
		switch st {
		case cache.Modified:
			c.cache.SetState(m.Addr, cache.Invalid)
			reply.Kind = msg.SlaveData
			reply.HasData = true
			if c.vals != nil {
				reply.Val = c.vals.CacheValue(c.cfg.Node, m.Addr)
			}
		case cache.Exclusive, cache.Shared:
			// Clean copy: drop it; memory already holds valid data.
			c.cache.SetState(m.Addr, cache.Invalid)
			reply.Kind = msg.SlaveAck
		case cache.Invalid:
			// The copy vanished in flight (writeback or invalidation).
			reply.Kind = msg.SlaveAck
		}
	case msg.Invalidate:
		// A master upgrading its own shared copy appears in the node map;
		// it acknowledges without invalidating (the upgrade completes
		// when the home's grant arrives). Everyone else drops the copy.
		if m.Master != c.cfg.Node && st != cache.Invalid &&
			!(c.cfg.Faults != nil && c.cfg.Faults.SkipInvalidate) {
			c.cache.SetState(m.Addr, cache.Invalid)
		}
		reply.Kind = msg.InvAck
		reply.Gather = m.Gather
	case msg.UpdateData:
		// Update-protocol extension: deposit the new data in the local
		// third-level cache; a resident second-level copy is updated in
		// place and stays Shared.
		c.l3[m.Addr] = true
		if st == cache.Modified || st == cache.Exclusive {
			c.cache.SetState(m.Addr, cache.Shared)
		}
		if c.vals != nil {
			c.vals.l3Write(c.cfg.Node, m.Addr, m.Val)
			if c.cache.State(m.Addr) != cache.Invalid {
				c.vals.fill(c.cfg.Node, m.Addr, m.Val) // update in place
			}
		}
		elapsed += p.MemAccess // L3 write
		reply.Kind = msg.UpdateAck
		reply.Gather = m.Gather
	default:
		panic(fmt.Sprintf("core: slave received %v", m))
	}
	c.stats.SlaveRequests++

	s.busy = now + elapsed
	// Static completion callbacks (no per-service closure). Completions
	// fire in admission order — s.busy is strictly increasing across
	// services — so the spilled completions pop the FIFO overflow queue
	// in exactly the order their admissions pushed it.
	if spilled {
		c.eng.AtCall(s.busy, slaveDoneSpilled, s)
	} else {
		c.eng.AtCall(s.busy, slaveDone, s)
	}
	c.send(reply, elapsed)
}

func slaveDone(a any) {
	a.(*slaveModule).backlog--
}

func slaveDoneSpilled(a any) {
	s := a.(*slaveModule)
	s.backlog--
	s.overflow.Pop()
}
