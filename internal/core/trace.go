package core

import (
	"fmt"

	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// TraceKind classifies a trace event.
type TraceKind uint8

const (
	// TraceSend: a message left this node for the network.
	TraceSend TraceKind = iota
	// TraceLocal: a message was transferred module-to-module inside the
	// controller chip.
	TraceLocal
	// TraceRecv: a message was delivered to this node.
	TraceRecv
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceLocal:
		return "local"
	case TraceRecv:
		return "recv"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEvent is one observed protocol action.
type TraceEvent struct {
	At   sim.Time
	Node topology.NodeID
	Kind TraceKind
	Msg  msg.Kind
	Addr topology.Addr
	// Src/Master from the message, for correlating transactions.
	Src    topology.NodeID
	Master topology.NodeID
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%8d %v %-5v %-18v %v src=%v master=%v",
		uint64(e.At), e.Node, e.Kind, e.Msg, e.Addr, e.Src, e.Master)
}

// Tracer receives protocol events. Implementations must be cheap; the
// hook is on every message path.
type Tracer func(TraceEvent)

// SetTracer installs (or removes, with nil) a protocol event tracer.
func (c *Controller) SetTracer(t Tracer) { c.trace = t }

func (c *Controller) emit(kind TraceKind, m *msg.Message) {
	if c.trace == nil {
		return
	}
	c.trace(TraceEvent{
		At:     c.eng.Now(),
		Node:   c.cfg.Node,
		Kind:   kind,
		Msg:    m.Kind,
		Addr:   m.Addr,
		Src:    m.Src,
		Master: m.Master,
	})
}
