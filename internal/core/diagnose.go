package core

import (
	"fmt"
	"io"
	"slices"

	"cenju4/internal/topology"
)

// DiagnoseInto writes this controller's stuck-state report: everything
// a deadlock investigation needs to see per node, rendered only for
// nodes that are actually holding work. The machine watchdog calls it
// at quiescence-with-unfinished-programs; the output is deterministic
// (pending blocks sorted by address) so watchdog reports diff cleanly
// across runs.
//
// It returns true when the controller holds any in-flight work — a
// false return prints nothing.
func (c *Controller) DiagnoseInto(w io.Writer) bool {
	busy := c.master.outstanding > 0 ||
		len(c.master.deferred)-c.master.defHead > 0 ||
		c.home.queue.Len() > 0 || c.home.overflow.Len() > 0 ||
		len(c.home.pending) > 0 || c.slave.backlog > 0
	if !busy {
		return false
	}
	fmt.Fprintf(w, "node %d:\n", c.cfg.Node)
	m := &c.master
	for i := range m.slots {
		s := &m.slots[i]
		if !s.active {
			continue
		}
		state := "awaiting reply"
		switch {
		case s.settled:
			state = "completing"
		case c.cfg.RequestTimeout > 0 && s.resends >= c.cfg.RetransmitLimit:
			state = "retransmits exhausted"
		}
		fmt.Fprintf(w, "  mshr[%d]: %v %v seq=%d issued=%dns resends=%d (%s)\n",
			i, s.kind, s.addr, s.seq, s.issuedAt, s.resends, state)
	}
	if d := len(m.deferred) - m.defHead; d > 0 {
		fmt.Fprintf(w, "  master: %d deferred requests waiting for a free mshr\n", d)
	}
	h := &c.home
	if h.queue.Len() > 0 {
		fmt.Fprintf(w, "  home request FIFO: depth %d (high water %d, cap %d)\n",
			h.queue.Len(), h.queue.HighWater(), h.queue.Cap())
	}
	if h.overflow.Len() > 0 {
		fmt.Fprintf(w, "  home outbound overflow: depth %d (high water %d)\n",
			h.overflow.Len(), h.overflow.HighWater())
	}
	if len(h.pending) > 0 {
		addrs := make([]topology.Addr, 0, len(h.pending))
		for a := range h.pending { //cenju4:order-insensitive — keys are sorted below
			addrs = append(addrs, a)
		}
		slices.Sort(addrs)
		for _, a := range addrs {
			t := h.pending[a]
			fmt.Fprintf(w, "  pending %v: %v for master %d seq=%d acksLeft=%d\n",
				a, t.kind, t.master, t.seq, t.acksLeft)
		}
	}
	if c.slave.backlog > 0 {
		fmt.Fprintf(w, "  slave backlog: %d (overflow depth %d, high water %d)\n",
			c.slave.backlog, c.slave.overflow.Len(), c.slave.overflow.HighWater())
	}
	if c.rec != (RecoveryStats{}) {
		fmt.Fprintf(w, "  recovery: retransmits=%d stale-replies=%d exhausted=%d\n",
			c.rec.Retransmits, c.rec.StaleReplies, c.rec.Exhausted)
	}
	return true
}
