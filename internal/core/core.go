// Package core implements the Cenju-4 cache coherence protocol — the
// paper's primary contribution. Each node's controller chip contains
// three modules:
//
//   - the master module issues read-shared, read-exclusive, ownership
//     and writeback requests for its processor's misses and receives the
//     replies (at most topology.MaxOutstanding in flight);
//   - the home module owns the directory for locally-homed blocks and
//     runs the appendix protocol: it replies directly when it can,
//     forwards to the dirty slave when it cannot, multicasts
//     invalidations, and — in the queuing protocol — appends requests
//     that hit a pending block to a memory-resident FIFO instead of
//     nacking them;
//   - the slave module services forwarded requests and invalidations
//     against the local cache, always replying to the home (never to the
//     master), which removes the two DASH nack races of Figure 8.
//
// The protocol runs in one of two modes. ModeQueuing is Cenju-4's
// starvation-free protocol: the home never nacks; blocked requests wait
// in a FIFO whose head is tied to the directory's reservation bit.
// ModeNack is the DASH-style comparison: requests against pending
// blocks are nacked and the master retries after a delay — under
// contention some masters retry unboundedly (Figure 6(a)), which the
// ablation benchmarks quantify.
//
// Deadlock prevention (one physical network) is modeled structurally:
// the master buffer holds at most MaxOutstanding replies, and the slave
// and home modules spill to bounded memory-resident overflow queues
// (64 KB each at 1024 nodes) whose occupancy the tests drive to the
// paper's sizing bound.
package core

import (
	"fmt"

	"cenju4/internal/cache"
	"cenju4/internal/directory"
	"cenju4/internal/memory"
	"cenju4/internal/metrics"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/stats"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// Mode selects the coherence protocol variant.
type Mode uint8

const (
	// ModeQueuing is the Cenju-4 protocol: requests that hit a pending
	// block are queued in main memory; the home never nacks.
	ModeQueuing Mode = iota
	// ModeNack is the DASH-style comparison protocol: the home nacks
	// requests against pending blocks and masters retry.
	ModeNack
)

func (m Mode) String() string {
	if m == ModeQueuing {
		return "queuing"
	}
	return "nack"
}

// Fabric is the transport the controllers send remote messages through.
// network.Network implements it; unit tests use a direct loopback.
type Fabric interface {
	Send(m *msg.Message)
	AllocGather(spec directory.Dest, home topology.NodeID) *msg.Gather
	MulticastEnabled() bool
	Nodes() int
}

// Config parameterizes one node's controller.
type Config struct {
	Node  topology.NodeID
	Nodes int
	// Params supplies latency constants; zero value means timing.Default().
	Params timing.Params
	// Mode selects queuing (default) or nack protocol.
	Mode Mode
	// NackDelay is the master's retry backoff in ModeNack.
	NackDelay sim.Time
	// Cache overrides the cache geometry (default 1 MB, 2-way).
	Cache cache.Config
	// ModuleBufEntries is the on-chip buffer depth of the slave and home
	// modules before messages spill to the memory overflow queues.
	ModuleBufEntries int
	// SinglecastThreshold: invalidation target counts at or below this
	// use singlecast messages instead of multicast+gathering. The
	// hardware behavior is 1 (the paper notes a higher threshold was
	// possible but not implemented — an ablation benchmark explores it).
	SinglecastThreshold int
	// UpdateMode marks blocks handled by the update-type protocol the
	// paper proposes as future work (Section 4.2.3): stores write
	// through to the home, which multicasts the new data to a
	// third-level cache in every node's main memory; loads are then
	// satisfied locally. Nil disables the extension (the shipped
	// Cenju-4 behavior).
	UpdateMode func(topology.Addr) bool
	// Faults injects deliberate protocol bugs for the fuzzing
	// harness's self-tests (nil in production configurations).
	Faults *Faults
	// Pool, when non-nil, recycles Message records. It must be the same
	// pool the fabric uses (the network releases delivered messages back
	// to it); machine.Machine wires one pool through both. Nil keeps
	// plain allocation.
	Pool *msg.Pool
	// DenseDirectory selects the retained dense reference directory
	// layout (memory.NewDense) instead of the sparse paged store. The
	// two are observationally identical — the machine-scope digest
	// differential proves it — so this exists only for that proof and
	// for memory-cost comparisons.
	DenseDirectory bool
	// RequestTimeout arms the master's per-request retransmit timer:
	// a transaction whose reply has not arrived after
	// RequestTimeout << resends is re-sent (the home replays requests
	// idempotently; stale replies are discarded by sequence stamp).
	// Zero disables the recovery machinery entirely — the fault-free
	// configuration, with no timer events and no stamp checks.
	RequestTimeout sim.Time
	// RetransmitLimit bounds retransmit attempts per transaction when
	// RequestTimeout is armed (default 7). An exhausted transaction
	// stays stuck and surfaces in the machine watchdog's diagnosis.
	RetransmitLimit int
	// QueueCapOverride replaces the paper-sized capacity of the home's
	// memory-resident request and overflow queues (boundary tests
	// exercise exactly-full and full+1; 0 keeps
	// memory.RequestQueueCapacity(Nodes)).
	QueueCapOverride int
}

func (c Config) withDefaults() Config {
	if c.Params == (timing.Params{}) {
		c.Params = timing.Default()
	}
	if c.NackDelay == 0 {
		c.NackDelay = 1000
	}
	if c.ModuleBufEntries == 0 {
		c.ModuleBufEntries = 4
	}
	if c.SinglecastThreshold == 0 {
		c.SinglecastThreshold = 1
	}
	if c.RequestTimeout > 0 && c.RetransmitLimit == 0 {
		c.RetransmitLimit = 7
	}
	return c
}

// RecoveryStats counts the fault-recovery machinery's activity. It is
// deliberately not part of Stats: machine digests serialize Stats
// field by field, and recovery counters are always zero in fault-free
// runs, so keeping them separate preserves every committed golden.
type RecoveryStats struct {
	// Retransmits counts timed-out requests re-sent to the home.
	Retransmits uint64
	// StaleReplies counts replies discarded by the sequence-stamp
	// check: duplicates, or replies to attempts already superseded.
	StaleReplies uint64
	// Exhausted counts transactions abandoned after RetransmitLimit
	// resends; each one leaves a permanently stuck MSHR slot that the
	// machine watchdog reports.
	Exhausted uint64
}

// Stats aggregates one controller's protocol activity.
type Stats struct {
	// Master side. Requests is indexed by msg.Kind — a flat count array
	// instead of a map, so the steady-state request path neither hashes
	// nor allocates and the snapshot copy in Stats() is a plain struct
	// copy.
	Requests   [msg.NumKinds]uint64
	Replies    uint64
	Nacks      uint64
	Retries    uint64
	MaxRetries int
	Writebacks uint64
	LatencySum sim.Time
	LatencyMax sim.Time
	Completed  uint64
	// Home side.
	HomeRequests   uint64
	HomeForwards   uint64
	Invalidations  uint64 // invalidation transactions (multicast or singlecast group)
	InvTargets     uint64 // individual invalidation targets
	QueuedRequests uint64
	QueueHighWater int
	// Slave side.
	SlaveRequests   uint64
	SlaveOverflowHW int
	HomeOverflowHW  int
	// Update-protocol extension.
	L3Hits       uint64 // loads satisfied by the local third-level cache
	UpdateWrites uint64 // write-through stores issued
}

// Controller is one node's coherence engine (master + home + slave).
type Controller struct {
	cfg Config
	eng *sim.Engine
	fab Fabric

	cache *cache.Cache
	mem   *memory.Memory

	master masterModule
	home   homeModule
	slave  slaveModule

	// l3 tracks update-mode blocks present in this node's third-level
	// cache (main memory); allNodes caches the all-nodes multicast
	// destination for update-data fan-out.
	l3       map[topology.Addr]bool
	allNodes directory.Dest

	trace Tracer
	vals  *ValueTracker
	stats Stats
	rec   RecoveryStats

	// sendFree recycles sendEvent records (the argument objects of the
	// static send callback), so routing a message schedules no closure
	// and allocates nothing in steady state.
	sendFree *sendEvent

	// memberBuf is the home's scratch for decoding directory node maps
	// (dirty-owner lookup, invalidation fan-out). Decodes are consumed
	// before the next one begins, so one machine-sized buffer serves
	// every transaction without allocating.
	memberBuf []topology.NodeID
}

// New builds a controller for cfg.Node.
func New(eng *sim.Engine, fab Fabric, cfg Config) *Controller {
	c := &Controller{}
	c.Init(eng, fab, cfg)
	return c
}

// Init initializes a zero Controller in place. machine.Machine carves
// its controllers out of one contiguous slab and Inits each — a
// 1024-node build is one allocation instead of 1024, and the per-node
// hot state (module clocks, stat counters) lands in adjacent memory.
func (c *Controller) Init(eng *sim.Engine, fab Fabric, cfg Config) {
	cfg = cfg.withDefaults()
	c.cfg = cfg
	c.eng = eng
	c.fab = fab
	c.cache = cache.New(cfg.Cache)
	if cfg.DenseDirectory {
		c.mem = memory.NewDense(cfg.Node)
	} else {
		c.mem = memory.New(cfg.Node)
	}
	if cfg.UpdateMode != nil {
		c.l3 = make(map[topology.Addr]bool)
		c.allNodes = directory.AllNodes(cfg.Nodes)
	}
	c.memberBuf = make([]topology.NodeID, 0, cfg.Nodes)
	c.master.init(c)
	c.home.init(c)
	c.slave.init(c)
}

// updateBlock reports whether addr is handled by the update protocol.
func (c *Controller) updateBlock(addr topology.Addr) bool {
	return c.cfg.UpdateMode != nil && c.cfg.UpdateMode(addr)
}

// Node returns the controller's node ID.
func (c *Controller) Node() topology.NodeID { return c.cfg.Node }

// SetValueTracker attaches (or, with nil, removes) a data-value
// tracker. All controllers of one machine share a single tracker.
func (c *Controller) SetValueTracker(v *ValueTracker) { c.vals = v }

// NoteAccessHit informs the value tracker of a processor cache hit on
// a shared block (the cpu model calls it on every such hit; the cache
// array has already applied any silent E->M upgrade). It is a no-op
// without a tracker.
func (c *Controller) NoteAccessHit(addr topology.Addr, store bool) {
	if c.vals == nil || !addr.Shared() {
		return
	}
	if store {
		c.vals.storeOrdered(c.cfg.Node, addr, c.eng.Now())
	} else {
		c.vals.loadObserved(c.cfg.Node, addr, c.eng.Now())
	}
}

// Cache exposes the node's secondary cache (the processor model drives
// hits against it directly).
func (c *Controller) Cache() *cache.Cache { return c.cache }

// Memory exposes the node's directory memory.
func (c *Controller) Memory() *memory.Memory { return c.mem }

// Stats returns a snapshot of the counters (queue high-water marks are
// refreshed on read).
func (c *Controller) Stats() Stats {
	s := c.stats
	s.QueueHighWater = c.home.queue.HighWater()
	s.SlaveOverflowHW = c.slave.overflow.HighWater()
	s.HomeOverflowHW = c.home.overflow.HighWater()
	return s
}

// Recovery returns a snapshot of the fault-recovery counters (all zero
// unless Config.RequestTimeout armed the machinery).
func (c *Controller) Recovery() RecoveryStats { return c.rec }

// MetricsInto aggregates this controller's activity into reg under the
// "core/" prefix. Counters add across nodes; the memory-resident FIFO
// watermarks (request queue, home/slave overflow) and retry/latency
// peaks fold in as maxima (Gauge.Peak), so one registry summarizes the
// whole machine no matter the visit order.
func (c *Controller) MetricsInto(reg *metrics.Registry) {
	// Numeric kind loop instead of ranging the map: the per-kind counts
	// land in name-sorted renderings anyway, but the additions themselves
	// must happen in a fixed order for the determinism contract.
	for k := msg.Kind(0); k <= msg.UpdateAck; k++ {
		if n := c.stats.Requests[k]; n > 0 {
			reg.Counter("core/requests/" + k.String()).Add(n)
		}
	}
	reg.Counter("core/replies").Add(c.stats.Replies)
	reg.Counter("core/nacks").Add(c.stats.Nacks)
	reg.Counter("core/retries").Add(c.stats.Retries)
	reg.Counter("core/writebacks").Add(c.stats.Writebacks)
	reg.Counter("core/completed").Add(c.stats.Completed)
	reg.Counter("core/home-requests").Add(c.stats.HomeRequests)
	reg.Counter("core/home-forwards").Add(c.stats.HomeForwards)
	reg.Counter("core/invalidations").Add(c.stats.Invalidations)
	reg.Counter("core/inv-targets").Add(c.stats.InvTargets)
	reg.Counter("core/queued-requests").Add(c.stats.QueuedRequests)
	reg.Counter("core/slave-requests").Add(c.stats.SlaveRequests)
	reg.Counter("core/l3-hits").Add(c.stats.L3Hits)
	reg.Counter("core/update-writes").Add(c.stats.UpdateWrites)
	reg.Gauge("core/max-retries").Peak(int64(c.stats.MaxRetries))
	reg.Gauge("core/latency-max-ns").Peak(int64(c.stats.LatencyMax))
	reg.Gauge("core/fifo/" + c.home.queue.Name()).Peak(int64(c.home.queue.HighWater()))
	reg.Gauge("core/fifo/" + c.home.overflow.Name()).Peak(int64(c.home.overflow.HighWater()))
	reg.Gauge("core/fifo/" + c.slave.overflow.Name()).Peak(int64(c.slave.overflow.HighWater()))
	// Recovery counters appear only when the machinery is armed, so
	// fault-free metric renderings are byte-identical to pre-fault
	// builds.
	if c.cfg.RequestTimeout > 0 {
		reg.Counter("core/recovery/retransmits").Add(c.rec.Retransmits)
		reg.Counter("core/recovery/stale-replies").Add(c.rec.StaleReplies)
		reg.Counter("core/recovery/exhausted").Add(c.rec.Exhausted)
	}
}

// Deliver is the network handler: it routes an incoming message to the
// destination module.
func (c *Controller) Deliver(m *msg.Message) {
	c.emit(TraceRecv, m)
	switch {
	case m.Kind.ToHome():
		c.home.handle(m)
	case m.Kind.ToSlave():
		c.slave.handle(m)
	case m.Kind.ToMaster():
		c.master.handle(m)
	default:
		panic(fmt.Sprintf("core: undeliverable message %v", m))
	}
}

// newMsg returns a pooled (or, without a pool, freshly allocated) copy
// of proto. Outbound messages are built through it so records recycled
// by the network's release points get reused here.
func (c *Controller) newMsg(proto msg.Message) *msg.Message {
	return c.cfg.Pool.New(proto)
}

// sendEvent is the pooled argument record of runSend: the per-send
// state that the previous closure-based path captured on the heap for
// every scheduled departure.
type sendEvent struct {
	c     *Controller
	m     *msg.Message
	local bool
	next  *sendEvent // controller free list
}

// runSend is the static departure callback. The record is recycled
// before the message moves so a nested send scheduled by the delivery
// can reuse it immediately.
//
//cenju4:hotpath
func runSend(a any) {
	se := a.(*sendEvent)
	c, m, local := se.c, se.m, se.local
	se.m = nil
	se.next = c.sendFree
	c.sendFree = se
	if local {
		c.emit(TraceLocal, m)
		c.Deliver(m)
		c.cfg.Pool.Put(m)
	} else {
		c.emit(TraceSend, m)
		c.fab.Send(m)
	}
}

// send routes a message: destinations on this node are delivered
// directly (module-to-module transfers inside the controller chip do
// not use the network); everything else goes through the fabric.
// Gatherable replies always use the network so in-network combining
// stays uniform. On the local path the controller is the end of the
// message's life and releases it; on the fabric path the network owns
// the message from Send on.
//
//cenju4:hotpath
func (c *Controller) send(m *msg.Message, delay sim.Time) {
	se := c.sendFree
	if se == nil {
		//cenju4:alloc-ok pool seeding: records recycle at departure, so the pool settles at the in-flight peak
		se = &sendEvent{}
	} else {
		c.sendFree = se.next
	}
	se.c = c
	se.m = m
	se.local = m.Dest.SingleTo(c.cfg.Node) && m.Gather == nil
	c.eng.AtCall(c.eng.Now()+delay, runSend, se)
}

// isLocal reports whether a message came from this node's own modules
// (local transfers skip the per-message controller processing cost that
// network arrivals pay — calibrated so a shared-local-clean load costs
// exactly DirAccess more than a private load, per Table 2).
func (c *Controller) isLocal(m *msg.Message) bool { return m.Src == c.cfg.Node }

// Request begins a coherence transaction for a shared-memory access
// that missed (or needs ownership). done runs when the access
// graduates. The address must be a DSM address.
func (c *Controller) Request(addr topology.Addr, store bool, done func()) {
	if !addr.Shared() {
		panic(fmt.Sprintf("core: Request on private address %v", addr))
	}
	c.master.request(addr.Block(), store, done)
}

// Outstanding returns the number of in-flight master transactions.
func (c *Controller) Outstanding() int { return c.master.outstanding }

// Latencies returns the per-request-kind transaction latency
// histograms, built on demand from the master's kind-indexed table.
// The returned histograms are live; callers must treat them as
// read-only.
func (c *Controller) Latencies() map[msg.Kind]*stats.Histogram {
	out := make(map[msg.Kind]*stats.Histogram)
	for k, h := range c.master.lat {
		if h != nil {
			out[msg.Kind(k)] = h
		}
	}
	return out
}

// QueueLen returns the current depth of the home's memory-resident
// request queue (for validators and tests).
func (c *Controller) QueueLen() int { return c.home.queue.Len() }

// PendingBlocks returns the number of locally-homed blocks with an
// in-flight transaction.
func (c *Controller) PendingBlocks() int { return len(c.home.pending) }

// EvictShared issues the writeback for a modified shared block that the
// processor displaced from the cache (e.g. when a private-memory line
// claimed its way). Writebacks expect no reply and occupy no MSHR slot.
func (c *Controller) EvictShared(addr topology.Addr) {
	if !addr.Shared() {
		panic(fmt.Sprintf("core: EvictShared on private address %v", addr))
	}
	c.master.writeback(addr.Block())
}

// module serializes message processing: a module starts a service by
// receiving a message and does not start another while busy.
type module struct {
	busy sim.Time
}

// admit returns the service start time for work arriving now and marks
// the module busy until start+cost.
func (m *module) admit(eng *sim.Engine, cost sim.Time) sim.Time {
	start := eng.Now()
	if m.busy > start {
		start = m.busy
	}
	m.busy = start + cost
	return start
}
