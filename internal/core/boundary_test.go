package core

import (
	"strings"
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/faults"
	"cenju4/internal/memory"
	"cenju4/internal/msg"
	"cenju4/internal/network"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// Boundary tests for the paper's sizing story: the master's 4-entry
// reply buffer (R10000 MaxOutstanding), and the 64 KB memory-resident
// overflow regions that break the deadlock dependency graph. Each
// bound is driven to exactly-full (queued, never dropped) and to
// full+1 (deferred at the master; sizing-invariant panic at the
// memory queues, which the protocol guarantees is unreachable).

func TestMasterReplyBufferExactlyFullThenDeferred(t *testing.T) {
	cl := newCluster(t, 8, true)
	done := make([]bool, topology.MaxOutstanding+1)
	for i := range done {
		i := i
		cl.ctrls[1].Request(blockAt(0, uint64(i)), false, func() { done[i] = true })
	}
	m := &cl.ctrls[1].master
	if got := cl.ctrls[1].Outstanding(); got != topology.MaxOutstanding {
		t.Fatalf("Outstanding = %d, want exactly-full %d", got, topology.MaxOutstanding)
	}
	if d := len(m.deferred) - m.defHead; d != 1 {
		t.Fatalf("deferred = %d, want the full+1 request queued (not dropped)", d)
	}
	cl.eng.Run()
	for i, ok := range done {
		if !ok {
			t.Fatalf("request %d never completed", i)
		}
	}
	if cl.ctrls[1].Outstanding() != 0 || len(m.deferred)-m.defHead != 0 {
		t.Fatal("master did not drain back to empty")
	}
}

// deliverForwards feeds n forwarded reads straight into node's slave
// without running the engine, so the backlog accumulates exactly as a
// burst of simultaneous arrivals would.
func deliverForwards(cl *cluster, node topology.NodeID, n int) {
	c := cl.ctrls[node]
	for i := 0; i < n; i++ {
		c.Deliver(c.newMsg(msg.Message{
			Kind:   msg.FwdReadShared,
			Src:    2,
			Dest:   directory.Single(node),
			Addr:   blockAt(0, uint64(i)),
			Master: 2,
		}))
	}
}

func TestSlaveOverflowExactlyFull(t *testing.T) {
	const capOverride = 4
	cl := newCluster(t, 8, true, func(cfg *Config) {
		cfg.ModuleBufEntries = 1
		cfg.QueueCapOverride = capOverride
	})
	// 1 on-chip + capOverride spilled = overflow exactly full.
	deliverForwards(cl, 1, 1+capOverride)
	s := &cl.ctrls[1].slave
	if s.backlog != 1+capOverride {
		t.Fatalf("backlog = %d, want %d", s.backlog, 1+capOverride)
	}
	if s.overflow.Len() != capOverride || s.overflow.Len() != s.overflow.Cap() {
		t.Fatalf("overflow depth %d / cap %d, want exactly full", s.overflow.Len(), s.overflow.Cap())
	}
	if s.overflow.HighWater() != capOverride {
		t.Fatalf("overflow high water = %d, want %d", s.overflow.HighWater(), capOverride)
	}
}

func TestSlaveOverflowFullPlusOnePanics(t *testing.T) {
	const capOverride = 4
	cl := newCluster(t, 8, true, func(cfg *Config) {
		cfg.ModuleBufEntries = 1
		cfg.QueueCapOverride = capOverride
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overflow beyond capacity did not trip the sizing invariant")
		}
		if !strings.Contains(r.(string), "overflow beyond") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	deliverForwards(cl, 1, 1+capOverride+1)
}

func TestHomeRequestFIFOExactlyFullThenInvariantPanic(t *testing.T) {
	// A drop-all-forwards plan with recovery disabled wedges one
	// transaction pending at home 0 forever; every later request for
	// the same block parks in the home request FIFO. With the FIFO
	// capacity squeezed to 2, two parked requests are exactly full
	// (queued — never dropped or bounced), and a third trips the
	// sizing-invariant panic.
	const capOverride = 2
	spec := faults.Spec{Seed: 1, Drop: 1, Scope: faults.ScopeForwards}
	inj := spec.Compile(8)
	cl := &cluster{eng: sim.NewEngine()}
	cl.net = network.New(cl.eng, network.Config{Nodes: 8, Multicast: true, Injector: inj})
	cl.ctrls = make([]*Controller, 8)
	for i := 0; i < 8; i++ {
		cl.ctrls[i] = New(cl.eng, cl.net, Config{
			Node: topology.NodeID(i), Nodes: 8, QueueCapOverride: capOverride,
		})
		cl.net.Attach(topology.NodeID(i), cl.ctrls[i].Deliver)
	}

	a := blockAt(0, 1)
	cl.access(t, 1, a, true) // node 1 holds the block Modified

	// Node 2's steal wedges: the forward is dropped and (no recovery)
	// never retransmitted, so home 0 keeps the block pending forever.
	cl.ctrls[2].Request(a, true, nil)
	cl.eng.Run()

	for i, n := range []topology.NodeID{3, 4} {
		cl.ctrls[n].Request(a, false, nil)
		cl.eng.Run()
		q := cl.ctrls[0].home.queue
		if q.Len() != i+1 {
			t.Fatalf("after request %d: FIFO depth %d, want %d", i+1, q.Len(), i+1)
		}
	}
	q := cl.ctrls[0].home.queue
	if q.Len() != q.Cap() || q.HighWater() != capOverride {
		t.Fatalf("FIFO depth %d / cap %d / high water %d, want exactly full", q.Len(), q.Cap(), q.HighWater())
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("full+1 request did not trip the sizing invariant")
		}
		if !strings.Contains(r.(string), "overflow beyond 2 entries") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	cl.ctrls[5].Request(a, false, nil)
	cl.eng.Run()
}

func TestOverflowRegionMatchesPaperSizing(t *testing.T) {
	// At full scale (1024 nodes x 4 outstanding requests) the paper's
	// overflow regions are 64 KB of main memory per module.
	q := memory.NewQueue[struct{}]("sizing", memory.RequestQueueCapacity(1024), memory.OverflowQueueBits)
	if got := q.BufferBytes(); got != 64*1024 {
		t.Fatalf("BufferBytes = %d, want 64 KB", got)
	}
	if topology.MaxOutstanding != 4 {
		t.Fatalf("MaxOutstanding = %d, want the R10000's 4", topology.MaxOutstanding)
	}
}
