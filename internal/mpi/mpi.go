// Package mpi models Cenju-4's user-level message passing mechanism and
// the MPI-style library both program families use: the mpi workload
// variants for all communication, and the shared-memory (dsm) variants
// for synchronization and reduction operations, exactly as in the paper.
//
// Timing is calibrated to the published figures — 9.1 us one-way
// latency and 169 MB/s streaming throughput on a 128-node system.
// Message passing uses private memory and the network's singlecast
// paths; it creates no coherence traffic, so it is modeled as a latency/
// bandwidth cost rather than as simulated packets (the DSM, the paper's
// subject, is simulated in full).
package mpi

import (
	"container/heap"
	"fmt"
	"math/bits"

	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// World is the communication context of all nodes in one machine.
type World struct {
	eng    *sim.Engine
	n      int
	params timing.MPIParams

	inbox    map[pairKey]*pairQueue
	barriers []*collective // in-flight barriers, matched by arrival order
	reduces  []*collective

	sched Scheduler

	stats Stats
}

// Scheduler is the hook a World uses to schedule a completion callback
// for a given node. The default schedules on the World's engine and
// ignores the node; the intra-run PDES layer installs one that routes
// each completion to the engine owning the node's shard, which is why
// every World completion path must name the node it releases.
type Scheduler func(node topology.NodeID, at sim.Time, done func())

// SetScheduler installs sched as the completion scheduler (nil restores
// the default). Must be called before any traffic.
func (w *World) SetScheduler(sched Scheduler) {
	if w.stats.Messages != 0 || w.stats.Barriers != 0 || w.stats.AllReduces != 0 {
		panic("mpi: SetScheduler after traffic")
	}
	w.sched = sched
}

// schedule routes node's completion callback at time at.
func (w *World) schedule(node topology.NodeID, at sim.Time, done func()) {
	if w.sched != nil {
		w.sched(node, at, done)
		return
	}
	w.eng.At(at, done)
}

// Stats counts message-passing activity.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	Barriers   uint64
	AllReduces uint64
}

type pairKey struct {
	src, dst topology.NodeID
}

// pairQueue holds in-flight arrivals and pending receivers for one
// (src,dst) channel; delivery is in-order.
type pairQueue struct {
	arrivals arrivalHeap // message arrival times
	waiters  []waiter
}

// waiter is a pending completion callback tagged with the node it
// releases, so the scheduler hook can route it.
type waiter struct {
	node topology.NodeID
	fn   func()
}

type arrivalHeap []sim.Time

func (h arrivalHeap) Len() int           { return len(h) }
func (h arrivalHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h arrivalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)        { *h = append(*h, x.(sim.Time)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	v := old[len(old)-1]
	*h = old[:len(old)-1]
	return v
}

// collective tracks one in-flight barrier or reduction.
type collective struct {
	arrived int
	waiters []waiter
	bytes   uint64
	joined  map[topology.NodeID]bool
}

// New builds a world of n nodes.
func New(eng *sim.Engine, n int, params timing.MPIParams) *World {
	if params == (timing.MPIParams{}) {
		params = timing.DefaultMPI()
	}
	return &World{eng: eng, n: n, params: params, inbox: make(map[pairKey]*pairQueue)}
}

// Stats returns the counters.
func (w *World) Stats() Stats { return w.stats }

// Send transmits n bytes from src to dst. The message arrives after the
// latency+bandwidth cost.
func (w *World) Send(src, dst topology.NodeID, n uint64) {
	if int(src) >= w.n || int(dst) >= w.n {
		panic(fmt.Sprintf("mpi: send %v->%v outside world of %d", src, dst, w.n))
	}
	w.stats.Messages++
	w.stats.Bytes += n
	arrive := w.eng.Now() + w.params.Transfer(int(n))
	q := w.pair(src, dst)
	if len(q.waiters) > 0 {
		wt := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.schedule(wt.node, arrive, wt.fn)
		return
	}
	heap.Push(&q.arrivals, arrive)
}

// Recv completes when a message from src is available at dst.
func (w *World) Recv(dst, src topology.NodeID, done func()) {
	q := w.pair(src, dst)
	if q.arrivals.Len() > 0 {
		arrive := heap.Pop(&q.arrivals).(sim.Time)
		if arrive < w.eng.Now() {
			arrive = w.eng.Now()
		}
		w.schedule(dst, arrive, done)
		return
	}
	q.waiters = append(q.waiters, waiter{node: dst, fn: done})
}

func (w *World) pair(src, dst topology.NodeID) *pairQueue {
	k := pairKey{src, dst}
	q := w.inbox[k]
	if q == nil {
		q = &pairQueue{}
		w.inbox[k] = q
	}
	return q
}

// Barrier completes when all nodes have arrived at their next barrier.
// The release adds a tree-combining cost of 2*ceil(log2 n) message
// latencies, matching a software dissemination barrier over the
// message-passing mechanism.
func (w *World) Barrier(node topology.NodeID, done func()) {
	w.join(&w.barriers, node, 0, done)
}

// AllReduce completes the node's next global reduction of n bytes:
// barrier semantics plus per-stage data transfer.
func (w *World) AllReduce(node topology.NodeID, n uint64, done func()) {
	w.join(&w.reduces, node, n, done)
}

func (w *World) join(list *[]*collective, node topology.NodeID, bytes uint64, done func()) {
	// Find the first in-flight collective this node has not joined.
	var c *collective
	for _, cand := range *list {
		if !cand.joined[node] {
			c = cand
			break
		}
	}
	if c == nil {
		c = &collective{joined: make(map[topology.NodeID]bool)}
		*list = append(*list, c)
	}
	c.joined[node] = true
	c.arrived++
	c.waiters = append(c.waiters, waiter{node: node, fn: done})
	if bytes > c.bytes {
		c.bytes = bytes
	}
	if c.arrived < w.n {
		return
	}
	// Complete: drop from the in-flight list, release everyone.
	for i, cand := range *list {
		if cand == c {
			*list = append((*list)[:i], (*list)[i+1:]...)
			break
		}
	}
	stages := log2ceil(w.n)
	cost := sim.Time(2*stages) * w.params.Latency
	if c.bytes > 0 {
		cost += sim.Time(stages) * (w.params.Transfer(int(c.bytes)) - w.params.Latency)
		w.stats.AllReduces++
	} else {
		w.stats.Barriers++
	}
	release := w.eng.Now() + cost
	for _, wt := range c.waiters {
		w.schedule(wt.node, release, wt.fn)
	}
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
