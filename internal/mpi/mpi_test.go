package mpi

import (
	"testing"

	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

func TestSendThenRecv(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 4, timing.MPIParams{})
	w.Send(0, 1, 1024)
	var at sim.Time
	got := false
	w.Recv(1, 0, func() { got = true; at = eng.Now() })
	eng.Run()
	if !got {
		t.Fatal("recv never completed")
	}
	want := timing.DefaultMPI().Transfer(1024)
	if at != want {
		t.Fatalf("arrival at %v, want %v", at, want)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 4, timing.MPIParams{})
	got := false
	w.Recv(1, 0, func() { got = true })
	eng.At(5000, func() { w.Send(0, 1, 64) })
	eng.Run()
	if !got {
		t.Fatal("recv never completed")
	}
	if eng.Now() < 5000+timing.DefaultMPI().Latency {
		t.Fatalf("completed at %v, too early", eng.Now())
	}
}

func TestInOrderChannel(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 2, timing.MPIParams{})
	w.Send(0, 1, 8)
	w.Send(0, 1, 1<<20) // much slower
	var order []int
	w.Recv(1, 0, func() { order = append(order, 1) })
	w.Recv(1, 0, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 {
		t.Fatalf("completions = %v", order)
	}
}

func TestCalibration(t *testing.T) {
	// The paper: 9.1 us latency, 169 MB/s throughput.
	p := timing.DefaultMPI()
	if p.Transfer(0) != 9100 {
		t.Fatalf("zero-byte latency %v, want 9100ns", p.Transfer(0))
	}
	// 1 MB at 169 MB/s is ~5.9 ms + latency.
	ms := p.Transfer(1 << 20)
	if ms < 6000000 || ms > 6500000 {
		t.Fatalf("1MB transfer = %v, want ~6.2ms", ms)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 4, timing.MPIParams{})
	var times []sim.Time
	for i := 0; i < 3; i++ {
		node := i
		eng.At(sim.Time(node*1000), func() {
			w.Barrier(uint16ID(node), func() { times = append(times, eng.Now()) })
		})
	}
	eng.At(30000, func() {
		w.Barrier(3, func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	if len(times) != 4 {
		t.Fatalf("%d releases, want 4", len(times))
	}
	for _, at := range times {
		if at != times[0] {
			t.Fatalf("releases not simultaneous: %v", times)
		}
	}
	// Release must be after the last arrival plus the combining cost.
	if times[0] <= 30000 {
		t.Fatalf("released at %v, before last arrival", times[0])
	}
	if w.Stats().Barriers != 1 {
		t.Fatalf("Barriers = %d", w.Stats().Barriers)
	}
}

func TestConsecutiveBarriersMatchInOrder(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 2, timing.MPIParams{})
	seq := []string{}
	var phase2 func()
	phase2 = func() {
		w.Barrier(0, func() { seq = append(seq, "a2") })
		w.Barrier(1, func() { seq = append(seq, "b2") })
	}
	w.Barrier(0, func() { seq = append(seq, "a1"); phase2() })
	// Node 1 arrives at barrier 1 late; node 0 will already be waiting
	// at barrier 2 by then — arrivals must not cross-match.
	eng.At(100, func() {
		w.Barrier(1, func() { seq = append(seq, "b1") })
	})
	eng.Run()
	if len(seq) != 4 {
		t.Fatalf("seq = %v", seq)
	}
	if w.Stats().Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", w.Stats().Barriers)
	}
}

func TestAllReduceCostsMoreThanBarrier(t *testing.T) {
	run := func(bytes uint64) sim.Time {
		eng := sim.NewEngine()
		w := New(eng, 8, timing.MPIParams{})
		for i := 0; i < 8; i++ {
			if bytes == 0 {
				w.Barrier(uint16ID(i), func() {})
			} else {
				w.AllReduce(uint16ID(i), bytes, func() {})
			}
		}
		eng.Run()
		return eng.Now()
	}
	if run(1<<16) <= run(0) {
		t.Fatal("64KB allreduce not slower than barrier")
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	w := New(eng, 2, timing.MPIParams{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Send(0, 5, 8)
}

func uint16ID(i int) topology.NodeID { return topology.NodeID(i) }
