// Package perfgate compares `go test -bench` output against the
// committed baseline (BENCH_sim.json) and fails on regressions.
//
// The baseline records, per benchmark, the ns/op range measured after
// the event-kernel optimization landed. The gate takes the *minimum*
// ns/op across the fresh run's repetitions (the least-noisy sample a
// shared CI box can produce), and requires it to stay under the
// baseline range's upper bound times a tolerance factor. Memory
// figures (B/op, allocs/op) are compared too when present — allocation
// counts are deterministic, so they get a much tighter tolerance.
//
// Baselines may additionally declare throughput floors on custom
// b.ReportMetric columns (BENCH_scale.json pins a msgs/sec minimum on
// the 1024-node storm benchmark); floors divide by the same tolerance
// the ceilings multiply by.
package perfgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Baseline mirrors the schema of BENCH_sim.json (fields the gate does
// not use are ignored).
type Baseline struct {
	Description string              `json:"description"`
	Command     string              `json:"command"`
	Benchmarks  []BaselineBenchmark `json:"benchmarks"`
}

// BaselineBenchmark is one benchmark's committed expectation.
type BaselineBenchmark struct {
	Name  string        `json:"name"`
	After BaselineRange `json:"after"`
	// Floors lists per-metric minimums for custom benchmark metrics
	// (b.ReportMetric units such as "msgs/sec"): the best (maximum)
	// sample of each named metric must reach floor / Tolerance. Where a
	// ns/op band is an upper bound on cost, a floor is a lower bound on
	// throughput — BENCH_scale.json uses one to pin the 1024-node
	// protocol message rate.
	Floors map[string]float64 `json:"floors,omitempty"`
}

// BaselineRange is the post-optimization measurement band.
type BaselineRange struct {
	NsOpRange []float64 `json:"ns_op_range"`
	BOp       float64   `json:"b_op"`
	AllocsOp  float64   `json:"allocs_op"`
}

// ParseBaseline decodes a BENCH_sim.json document.
func ParseBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("perfgate: baseline: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("perfgate: baseline lists no benchmarks")
	}
	for _, bm := range b.Benchmarks {
		if bm.Name == "" || len(bm.After.NsOpRange) != 2 {
			return Baseline{}, fmt.Errorf("perfgate: baseline entry %q malformed", bm.Name)
		}
	}
	return b, nil
}

// Sample is one parsed benchmark result line.
type Sample struct {
	Name     string  // benchmark name with the -N cpu suffix stripped
	NsOp     float64 // ns/op
	BOp      float64 // B/op, -1 if the line had no -benchmem columns
	AllocsOp float64 // allocs/op, -1 likewise
	// Metrics holds custom b.ReportMetric columns by unit (for example
	// "msgs/sec"); nil when the line carries none.
	Metrics map[string]float64
}

// ParseBench extracts benchmark samples from `go test -bench` output.
// Lines that are not benchmark results (headers, PASS, ok) are
// skipped; a -count > 1 run yields multiple samples per name.
func ParseBench(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// BenchmarkName-8  100  12345 ns/op [ 67 B/op  8 allocs/op ]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		s := Sample{Name: trimCPUSuffix(f[0]), NsOp: ns, BOp: -1, AllocsOp: -1}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				s.BOp = v
			case "allocs/op":
				s.AllocsOp = v
			default:
				if s.Metrics == nil {
					s.Metrics = make(map[string]float64)
				}
				s.Metrics[f[i+1]] = v
			}
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfgate: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perfgate: no benchmark result lines found")
	}
	return out, nil
}

// trimCPUSuffix drops go test's -GOMAXPROCS suffix ("BenchmarkX-8").
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Verdict is the gate's decision for one baseline benchmark.
type Verdict struct {
	Name        string
	Ran         bool    // samples were found for this benchmark
	BestNs      float64 // min ns/op across samples
	LimitNs     float64 // allowed ceiling (baseline upper bound x tolerance)
	MinAllocs   float64 // min allocs/op across samples (-1 if unmeasured)
	LimitAllocs float64
	Pass        bool
	Reason      string
}

// Options tunes the gate.
type Options struct {
	// Tolerance multiplies the baseline ns/op upper bound (default 2.5:
	// CI boxes are slower and noisier than the machine that set the
	// baseline; the gate is for order-of-magnitude regressions, not
	// single-digit percentages).
	Tolerance float64
	// AllocTolerance multiplies the baseline allocs/op (default 1.5).
	// Allocation counts barely vary between machines, so a tighter
	// bound catches accidental per-event allocations — the exact
	// regression class the event-kernel PR removed.
	AllocTolerance float64
}

func (o Options) withDefaults() Options {
	if o.Tolerance == 0 {
		o.Tolerance = 2.5
	}
	if o.AllocTolerance == 0 {
		o.AllocTolerance = 1.5
	}
	return o
}

// Check gates samples against the baseline. Every baseline benchmark
// must have at least one sample, and its best sample must be inside
// the tolerated ceiling. The returned verdicts are sorted by name;
// failed reports err == nil — inspect Verdict.Pass (Gate aggregates).
func Check(b Baseline, samples []Sample, opts Options) []Verdict {
	opts = opts.withDefaults()
	byName := make(map[string][]Sample)
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	var verdicts []Verdict
	for _, bm := range b.Benchmarks {
		v := Verdict{
			Name:        bm.Name,
			LimitNs:     bm.After.NsOpRange[1] * opts.Tolerance,
			MinAllocs:   -1,
			LimitAllocs: bm.After.AllocsOp * opts.AllocTolerance,
		}
		ss := byName[bm.Name]
		if len(ss) == 0 {
			v.Reason = "no samples in bench output"
			verdicts = append(verdicts, v)
			continue
		}
		v.Ran = true
		v.BestNs = ss[0].NsOp
		for _, s := range ss {
			if s.NsOp < v.BestNs {
				v.BestNs = s.NsOp
			}
			if s.AllocsOp >= 0 && (v.MinAllocs < 0 || s.AllocsOp < v.MinAllocs) {
				v.MinAllocs = s.AllocsOp
			}
		}
		switch {
		case v.BestNs > v.LimitNs:
			v.Reason = fmt.Sprintf("best %.0f ns/op exceeds ceiling %.0f (baseline upper %.0f x tolerance %.2g)",
				v.BestNs, v.LimitNs, bm.After.NsOpRange[1], opts.Tolerance)
		case v.MinAllocs >= 0 && bm.After.AllocsOp > 0 && v.MinAllocs > v.LimitAllocs:
			v.Reason = fmt.Sprintf("best %.0f allocs/op exceeds ceiling %.0f (baseline %.0f x tolerance %.2g)",
				v.MinAllocs, v.LimitAllocs, bm.After.AllocsOp, opts.AllocTolerance)
		case v.MinAllocs >= 0 && bm.After.AllocsOp == 0 && v.MinAllocs > 0:
			v.Reason = fmt.Sprintf("best %.0f allocs/op but the baseline is allocation-free", v.MinAllocs)
		default:
			v.Reason = checkFloors(bm, ss, opts)
			v.Pass = v.Reason == ""
		}
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Name < verdicts[j].Name })
	return verdicts
}

// checkFloors enforces the benchmark's custom-metric floors against the
// samples: the best (maximum) value of each metric must reach
// floor / Tolerance (the same slack direction the ns/op ceiling grants a
// slow CI box). Returns "" when every floor holds.
func checkFloors(bm BaselineBenchmark, ss []Sample, opts Options) string {
	if len(bm.Floors) == 0 {
		return ""
	}
	units := make([]string, 0, len(bm.Floors))
	for u := range bm.Floors {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		best, seen := 0.0, false
		for _, s := range ss {
			if v, ok := s.Metrics[u]; ok && (!seen || v > best) {
				best, seen = v, true
			}
		}
		required := bm.Floors[u] / opts.Tolerance
		switch {
		case !seen:
			return fmt.Sprintf("metric %q not reported by any sample (floor %.0f)", u, bm.Floors[u])
		case best < required:
			return fmt.Sprintf("best %.0f %s below floor %.0f (baseline %.0f / tolerance %.2g)",
				best, u, required, bm.Floors[u], opts.Tolerance)
		}
	}
	return ""
}

// Gate runs Check and renders a report; it returns an error listing
// the failures if any benchmark regressed or is missing.
func Gate(w io.Writer, b Baseline, samples []Sample, opts Options) error {
	verdicts := Check(b, samples, opts)
	var failed []string
	for _, v := range verdicts {
		status := "ok  "
		detail := fmt.Sprintf("best %.0f ns/op <= ceiling %.0f", v.BestNs, v.LimitNs)
		if !v.Pass {
			status = "FAIL"
			detail = v.Reason
			failed = append(failed, v.Name)
		}
		fmt.Fprintf(w, "%s %-28s %s\n", status, v.Name, detail)
	}
	if len(failed) > 0 {
		return fmt.Errorf("perfgate: %d benchmark(s) regressed or missing: %s",
			len(failed), strings.Join(failed, ", "))
	}
	return nil
}
