package perfgate

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: cenju4/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineSchedule-8    	 4316576	       280.9 ns/op	     160 B/op	       0 allocs/op
BenchmarkEngineSchedule-8    	 4267922	       305.0 ns/op	     160 B/op	       0 allocs/op
BenchmarkEngineRunDense-8    	    1250	    950123 ns/op	   24832 B/op	     478 allocs/op
BenchmarkEngineRunDense-8    	    1203	    931022 ns/op	   24832 B/op	     478 allocs/op
PASS
ok  	cenju4/internal/sim	12.345s
`

func baseline(t *testing.T) Baseline {
	t.Helper()
	b := Baseline{Benchmarks: []BaselineBenchmark{
		{Name: "BenchmarkEngineSchedule", After: BaselineRange{NsOpRange: []float64{263, 497}, AllocsOp: 0}},
		{Name: "BenchmarkEngineRunDense", After: BaselineRange{NsOpRange: []float64{904297, 1042875}, AllocsOp: 478}},
	}}
	return b
}

func TestParseBench(t *testing.T) {
	samples, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4", len(samples))
	}
	s := samples[0]
	if s.Name != "BenchmarkEngineSchedule" || s.NsOp != 280.9 || s.BOp != 160 || s.AllocsOp != 0 {
		t.Fatalf("first sample = %+v", s)
	}
	if samples[2].AllocsOp != 478 {
		t.Fatalf("dense allocs = %g, want 478", samples[2].AllocsOp)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	samples, err := ParseBench(strings.NewReader("BenchmarkX-4  100  5000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].AllocsOp != -1 || samples[0].BOp != -1 {
		t.Fatalf("missing benchmem columns should read as -1: %+v", samples[0])
	}
}

func TestCheckPasses(t *testing.T) {
	samples, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Gate(&buf, baseline(t), samples, Options{}); err != nil {
		t.Fatalf("in-range samples failed the gate: %v\n%s", err, buf.String())
	}
}

func TestCheckFailsOnSlowdown(t *testing.T) {
	samples := []Sample{
		{Name: "BenchmarkEngineSchedule", NsOp: 497 * 10, AllocsOp: 0},
		{Name: "BenchmarkEngineRunDense", NsOp: 950000, AllocsOp: 478},
	}
	verdicts := Check(baseline(t), samples, Options{Tolerance: 2.5})
	var failed []string
	for _, v := range verdicts {
		if !v.Pass {
			failed = append(failed, v.Name)
		}
	}
	if len(failed) != 1 || failed[0] != "BenchmarkEngineSchedule" {
		t.Fatalf("failed = %v, want only the slowed benchmark", failed)
	}
}

// TestCheckMinOfSamples: one noisy repetition must not fail the gate
// when another repetition is in range — the gate keys on the minimum.
func TestCheckMinOfSamples(t *testing.T) {
	samples := []Sample{
		{Name: "BenchmarkEngineSchedule", NsOp: 90000, AllocsOp: -1}, // noise spike
		{Name: "BenchmarkEngineSchedule", NsOp: 300, AllocsOp: -1},
		{Name: "BenchmarkEngineRunDense", NsOp: 950000, AllocsOp: -1},
	}
	for _, v := range Check(baseline(t), samples, Options{}) {
		if !v.Pass {
			t.Fatalf("%s failed despite an in-range minimum: %s", v.Name, v.Reason)
		}
	}
}

// TestCheckFailsOnNewAllocations: a formerly allocation-free benchmark
// that now allocates fails even inside the ns/op ceiling.
func TestCheckFailsOnNewAllocations(t *testing.T) {
	samples := []Sample{
		{Name: "BenchmarkEngineSchedule", NsOp: 300, AllocsOp: 3},
		{Name: "BenchmarkEngineRunDense", NsOp: 950000, AllocsOp: 478},
	}
	var failed int
	for _, v := range Check(baseline(t), samples, Options{}) {
		if !v.Pass {
			failed++
			if v.Name != "BenchmarkEngineSchedule" {
				t.Fatalf("wrong benchmark failed: %s", v.Name)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
}

func TestCheckFailsOnMissingBenchmark(t *testing.T) {
	samples := []Sample{{Name: "BenchmarkEngineSchedule", NsOp: 300}}
	var buf bytes.Buffer
	if err := Gate(&buf, baseline(t), samples, Options{}); err == nil {
		t.Fatal("gate passed with a baseline benchmark missing from the output")
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	line := "BenchmarkMulticastStorm1024-8  6087  174008 ns/op  11769573 msgs/sec  50 B/op  0 allocs/op\n"
	samples, err := ParseBench(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	if s.Metrics["msgs/sec"] != 11769573 {
		t.Fatalf("msgs/sec = %g, want 11769573", s.Metrics["msgs/sec"])
	}
	if s.BOp != 50 || s.AllocsOp != 0 {
		t.Fatalf("benchmem columns misparsed alongside a custom metric: %+v", s)
	}
}

func floorBaseline() Baseline {
	return Baseline{Benchmarks: []BaselineBenchmark{{
		Name:   "BenchmarkStorm",
		After:  BaselineRange{NsOpRange: []float64{100000, 200000}, AllocsOp: 0},
		Floors: map[string]float64{"msgs/sec": 10_000_000},
	}}}
}

func TestCheckFloorPasses(t *testing.T) {
	samples := []Sample{
		{Name: "BenchmarkStorm", NsOp: 150000, AllocsOp: 0, Metrics: map[string]float64{"msgs/sec": 4_100_000}},
	}
	// 4.1M clears 10M / 2.5 tolerance.
	for _, v := range Check(floorBaseline(), samples, Options{}) {
		if !v.Pass {
			t.Fatalf("%s failed above the tolerated floor: %s", v.Name, v.Reason)
		}
	}
}

func TestCheckFloorFailsBelow(t *testing.T) {
	samples := []Sample{
		{Name: "BenchmarkStorm", NsOp: 150000, AllocsOp: 0, Metrics: map[string]float64{"msgs/sec": 3_900_000}},
	}
	v := Check(floorBaseline(), samples, Options{})[0]
	if v.Pass {
		t.Fatal("gate passed below the throughput floor")
	}
	if !strings.Contains(v.Reason, "msgs/sec") {
		t.Fatalf("reason does not name the metric: %s", v.Reason)
	}
}

func TestCheckFloorFailsWhenUnreported(t *testing.T) {
	samples := []Sample{{Name: "BenchmarkStorm", NsOp: 150000, AllocsOp: 0}}
	v := Check(floorBaseline(), samples, Options{})[0]
	if v.Pass {
		t.Fatal("gate passed with the floored metric missing from the output")
	}
}

// TestCommittedScaleBaselineParses: BENCH_scale.json must stay
// parseable and keep the 10M msgs/sec floor the scale claim rests on.
func TestCommittedScaleBaselineParses(t *testing.T) {
	f, err := os.Open("../../BENCH_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := ParseBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	var storm *BaselineBenchmark
	for i := range b.Benchmarks {
		if b.Benchmarks[i].Name == "BenchmarkMulticastStorm1024" {
			storm = &b.Benchmarks[i]
		}
	}
	if storm == nil {
		t.Fatal("BENCH_scale.json does not list BenchmarkMulticastStorm1024")
	}
	if storm.Floors["msgs/sec"] < 10_000_000 {
		t.Fatalf("msgs/sec floor = %g, want >= 10M", storm.Floors["msgs/sec"])
	}
}

// TestCommittedBaselineParses: the real BENCH_sim.json at the repo
// root must stay parseable by the gate.
func TestCommittedBaselineParses(t *testing.T) {
	f, err := os.Open("../../BENCH_sim.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := ParseBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) < 5 {
		t.Fatalf("baseline lists %d benchmarks, want >= 5", len(b.Benchmarks))
	}
	for _, bm := range b.Benchmarks {
		if bm.After.NsOpRange[0] > bm.After.NsOpRange[1] {
			t.Fatalf("%s: inverted ns_op_range", bm.Name)
		}
	}
}
