// Package topology defines the Cenju-4 machine geometry: node numbering,
// the 40-bit physical address map, cache-block geometry, and the
// multistage-network stage counts used throughout the simulator.
//
// Cenju-4 distinguishes private and shared (DSM) accesses by the MSB of a
// 40-bit physical address. A private access uses 29 offset bits. A shared
// access uses 10 bits of node number (the home node) and 29 offset bits:
//
//	bit 39    : 1 = shared (DSM), 0 = private
//	bits 38-29: home node number (shared accesses only)
//	bits 28-0 : offset within the node's main memory
//
// Cache blocks are 128 bytes. The machine scales to MaxNodes = 1024
// nodes; the multistage network of 4x4 crossbar switches uses 2 stages up
// to 16 nodes, 4 stages up to 128 nodes, and 6 stages up to 1024 nodes
// (the configurations evaluated in the paper).
package topology

import "fmt"

const (
	// MaxNodes is the architectural maximum node count.
	MaxNodes = 1024
	// NodeBits is the width of a node number.
	NodeBits = 10
	// OffsetBits is the width of a memory offset.
	OffsetBits = 29
	// BlockSize is the cache line / coherence block size in bytes.
	BlockSize = 128
	// BlockShift is log2(BlockSize).
	BlockShift = 7
	// SharedBit is the physical-address bit distinguishing DSM accesses.
	SharedBit = 39
	// SwitchRadix is the port count of each crossbar switch.
	SwitchRadix = 4
	// DirEntryBytes is the size of one directory entry (64 bits).
	DirEntryBytes = 8
	// MaxOutstanding is the maximum number of outstanding requests one
	// processor (R10000) may have in flight.
	MaxOutstanding = 4
)

// NodeID identifies one node (0..MaxNodes-1).
type NodeID uint16

func (n NodeID) String() string { return fmt.Sprintf("n%d", uint16(n)) }

// Addr is a 40-bit Cenju-4 physical address.
type Addr uint64

const (
	offsetMask = (1 << OffsetBits) - 1
	nodeMask   = (1 << NodeBits) - 1
)

// SharedAddr builds a shared (DSM) physical address for the given home
// node and offset. It panics if node or offset exceed their fields —
// callers construct addresses from validated configuration.
func SharedAddr(node NodeID, offset uint64) Addr {
	if uint64(node) > nodeMask {
		panic(fmt.Sprintf("topology: node %d out of range", node))
	}
	if offset > offsetMask {
		panic(fmt.Sprintf("topology: offset %#x out of range", offset))
	}
	return Addr(1<<SharedBit | uint64(node)<<OffsetBits | offset)
}

// PrivateAddr builds a private physical address with the given offset.
func PrivateAddr(offset uint64) Addr {
	if offset > offsetMask {
		panic(fmt.Sprintf("topology: offset %#x out of range", offset))
	}
	return Addr(offset)
}

// Shared reports whether a is a DSM address.
func (a Addr) Shared() bool { return a>>SharedBit&1 == 1 }

// Home returns the node number field of a shared address. For private
// addresses it returns 0 (the field is unused; only 29 offset bits are
// decoded for private accesses).
func (a Addr) Home() NodeID {
	if !a.Shared() {
		return 0
	}
	return NodeID(a >> OffsetBits & nodeMask)
}

// Offset returns the 29-bit offset field.
func (a Addr) Offset() uint64 { return uint64(a) & offsetMask }

// Block returns the address of the coherence block containing a.
func (a Addr) Block() Addr { return a &^ (BlockSize - 1) }

// BlockIndex returns the block number within the home memory.
func (a Addr) BlockIndex() uint64 { return a.Offset() >> BlockShift }

func (a Addr) String() string {
	if a.Shared() {
		return fmt.Sprintf("shared[%v+%#x]", a.Home(), a.Offset())
	}
	return fmt.Sprintf("private[%#x]", a.Offset())
}

// StagesForNodes returns the number of network stages used for a machine
// of n nodes, following the paper's evaluation: 2 stages up to 16 nodes,
// 4 stages up to 128, 6 stages up to 1024.
func StagesForNodes(n int) int {
	switch {
	case n <= 0:
		panic("topology: non-positive node count")
	case n <= 16:
		return 2
	case n <= 128:
		return 4
	case n <= MaxNodes:
		return 6
	default:
		panic(fmt.Sprintf("topology: %d nodes exceeds maximum %d", n, MaxNodes))
	}
}

// ValidNodeCount reports whether n is an acceptable machine size: a
// power of two between 1 and MaxNodes. Powers of two keep routing-digit
// extraction and the bit-pattern encodings well-formed.
func ValidNodeCount(n int) bool {
	if n < 1 || n > MaxNodes {
		return false
	}
	return n&(n-1) == 0
}

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// RouteDigit returns the radix-4 digit of node that stage s (0-based,
// counted from the node side) decides, in a network with the given total
// stages. Stage 0 decides the most significant digit.
func RouteDigit(node NodeID, stage, stages int) int {
	shift := 2 * (stages - 1 - stage)
	return int(node>>shift) & (SwitchRadix - 1)
}

// StageBits returns the node-number bit positions (little-endian, bit 0
// = LSB) that stage s decides: the pair {2*(stages-1-s), 2*(stages-1-s)+1}.
func StageBits(stage, stages int) (lo, hi int) {
	lo = 2 * (stages - 1 - stage)
	return lo, lo + 1
}
