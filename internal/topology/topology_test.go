package topology

import (
	"testing"
	"testing/quick"
)

func TestSharedAddrRoundTrip(t *testing.T) {
	cases := []struct {
		node   NodeID
		offset uint64
	}{
		{0, 0},
		{1, 128},
		{163, 0x1234580},
		{1023, offsetMask},
	}
	for _, c := range cases {
		a := SharedAddr(c.node, c.offset)
		if !a.Shared() {
			t.Errorf("SharedAddr(%v,%#x).Shared() = false", c.node, c.offset)
		}
		if a.Home() != c.node {
			t.Errorf("Home() = %v, want %v", a.Home(), c.node)
		}
		if a.Offset() != c.offset {
			t.Errorf("Offset() = %#x, want %#x", a.Offset(), c.offset)
		}
	}
}

func TestPrivateAddr(t *testing.T) {
	a := PrivateAddr(0x12345)
	if a.Shared() {
		t.Error("private address reports shared")
	}
	if a.Offset() != 0x12345 {
		t.Errorf("Offset() = %#x, want 0x12345", a.Offset())
	}
	if a.Home() != 0 {
		t.Errorf("Home() on private = %v, want 0", a.Home())
	}
}

func TestAddrOutOfRangePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("node overflow", func() { SharedAddr(1024, 0) })
	mustPanic("offset overflow shared", func() { SharedAddr(0, 1<<OffsetBits) })
	mustPanic("offset overflow private", func() { PrivateAddr(1 << OffsetBits) })
}

func TestBlockGeometry(t *testing.T) {
	a := SharedAddr(5, 1000) // 1000 = 7*128 + 104
	if a.Block() != SharedAddr(5, 896) {
		t.Errorf("Block() = %v, want block at offset 896", a.Block())
	}
	if a.BlockIndex() != 7 {
		t.Errorf("BlockIndex() = %d, want 7", a.BlockIndex())
	}
	if a.Block().Offset()%BlockSize != 0 {
		t.Error("Block() not aligned")
	}
}

func TestStagesForNodes(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 2}, {2, 2}, {4, 2}, {16, 2},
		{17, 4}, {32, 4}, {64, 4}, {128, 4},
		{129, 6}, {256, 6}, {512, 6}, {1024, 6},
	}
	for _, c := range cases {
		if got := StagesForNodes(c.n); got != c.want {
			t.Errorf("StagesForNodes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStagesForNodesPanics(t *testing.T) {
	for _, n := range []int{0, -1, 1025} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StagesForNodes(%d) did not panic", n)
				}
			}()
			StagesForNodes(n)
		}()
	}
}

func TestValidNodeCount(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		if !ValidNodeCount(n) {
			t.Errorf("ValidNodeCount(%d) = false", n)
		}
	}
	for _, n := range []int{0, 3, 5, 100, 1000, 2048, -4} {
		if ValidNodeCount(n) {
			t.Errorf("ValidNodeCount(%d) = true", n)
		}
	}
}

func TestRouteDigit(t *testing.T) {
	// Node 0b0010100100 = 164. With 5 stages (10 bits), digits MSB-first
	// are 00,10,10,01,00 = 0,2,2,1,0.
	want := []int{0, 2, 2, 1, 0}
	for s, w := range want {
		if got := RouteDigit(164, s, 5); got != w {
			t.Errorf("RouteDigit(164,%d,5) = %d, want %d", s, got, w)
		}
	}
}

func TestRouteDigitReconstructs(t *testing.T) {
	f := func(raw uint16) bool {
		node := NodeID(raw % MaxNodes)
		stages := 5
		var rebuilt int
		for s := 0; s < stages; s++ {
			rebuilt = rebuilt<<2 | RouteDigit(node, s, stages)
		}
		return NodeID(rebuilt) == node
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStageBits(t *testing.T) {
	lo, hi := StageBits(0, 5)
	if lo != 8 || hi != 9 {
		t.Errorf("StageBits(0,5) = %d,%d, want 8,9", lo, hi)
	}
	lo, hi = StageBits(4, 5)
	if lo != 0 || hi != 1 {
		t.Errorf("StageBits(4,5) = %d,%d, want 0,1", lo, hi)
	}
}

func TestLog2(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {2, 1}, {4, 2}, {128, 7}, {1024, 10}}
	for _, c := range cases {
		if got := Log2(c.n); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPropertySharedAddrFields(t *testing.T) {
	f := func(rawNode uint16, rawOff uint64) bool {
		node := NodeID(rawNode % MaxNodes)
		off := rawOff % (1 << OffsetBits)
		a := SharedAddr(node, off)
		return a.Shared() && a.Home() == node && a.Offset() == off &&
			a.Block().BlockIndex() == off>>BlockShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper: "The directory occupies 1/16 of the main memory" — one
// 64-bit entry per 128-byte block.
func TestDirectoryOverheadIsOneSixteenth(t *testing.T) {
	if DirEntryBytes*16 != BlockSize {
		t.Fatalf("directory overhead = %d/%d, want 1/16", DirEntryBytes, BlockSize)
	}
}

func TestAddrString(t *testing.T) {
	if s := SharedAddr(3, 256).String(); s != "shared[n3+0x100]" {
		t.Errorf("String() = %q", s)
	}
	if s := PrivateAddr(256).String(); s != "private[0x100]" {
		t.Errorf("String() = %q", s)
	}
}
