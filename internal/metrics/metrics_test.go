package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"cenju4/internal/sim"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	r.Counter("a").Inc()
	r.Counter("a").Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("q")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.HighWater() != 5 {
		t.Fatalf("gauge value/hw = %d/%d, want 1/5", g.Value(), g.HighWater())
	}
	g.Set(-2)
	if g.Value() != -2 || g.HighWater() != 5 {
		t.Fatal("Set lowered the high-water mark")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram not idempotent")
	}
}

// Report and WriteJSON must not depend on insertion order.
func TestRenderingInsertionOrderIndependent(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	build := func(order []int) *Registry {
		r := New()
		for _, i := range order {
			n := names[i]
			r.Counter("c/" + n).Add(uint64(len(n)))
			r.Gauge("g/" + n).Set(int64(i))
			r.Histogram("h/" + n).Add(1 << uint(i))
		}
		return r
	}
	fwd := build([]int{0, 1, 2, 3})
	rev := build([]int{3, 2, 1, 0})
	if fwd.Report() == "" {
		t.Fatal("empty report")
	}
	if fwd.Report() != rev.Report() {
		t.Fatalf("Report depends on insertion order:\n%s\nvs\n%s", fwd.Report(), rev.Report())
	}
	var a, b strings.Builder
	if err := fwd.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("JSON depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	r := New()
	r.Counter("net/messages").Add(12)
	r.Gauge("core/queue/home-requests/depth").Set(3)
	h := r.Histogram("latency/ReadShared")
	h.Add(100)
	h.Add(100000)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, b.String())
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("missing top-level %q in %s", key, b.String())
		}
	}
	// Empty registry still parses.
	var e strings.Builder
	if err := New().WriteJSON(&e); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(e.String()), &parsed); err != nil {
		t.Fatalf("empty WriteJSON does not parse: %v\n%s", err, e.String())
	}
}

func TestMergeSemantics(t *testing.T) {
	a := New()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(10)
	a.Gauge("g").Set(1) // hw 10, value 1
	a.Histogram("h").Add(100)

	b := New()
	b.Counter("c").Add(3)
	b.Counter("only-b").Inc()
	b.Gauge("g").Set(4) // hw 4, value 4
	b.Histogram("h").Add(200)

	a.Merge(b)
	if got := a.Counter("c").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := a.Counter("only-b").Value(); got != 1 {
		t.Fatalf("merged only-b = %d, want 1", got)
	}
	if g := a.Gauge("g"); g.Value() != 4 || g.HighWater() != 10 {
		t.Fatalf("merged gauge value/hw = %d/%d, want 4/10", g.Value(), g.HighWater())
	}
	if got := a.Histogram("h").Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
}

// perRun builds the registry run i of a simulated sweep would produce.
func perRun(i int) *Registry {
	r := New()
	r.Counter("runs").Inc()
	r.Counter("events").Add(uint64(100 + i*7))
	r.Gauge("queue/depth").Set(int64(i % 5))
	r.Gauge("queue/depth").Set(0)
	r.Histogram("latency").Add(sim.Time(50 + i*13))
	return r
}

// TestSequentialParallelMergeEquivalent is the registry half of the
// acceptance criterion "-parallel 1 and -parallel N reports are
// byte-identical": per-run registries merged in run-index order give
// the same bytes no matter which goroutine produced each run. Run
// under -race in CI.
func TestSequentialParallelMergeEquivalent(t *testing.T) {
	const runs = 16
	seq := New()
	for i := 0; i < runs; i++ {
		seq.Merge(perRun(i))
	}

	regs := make([]*Registry, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			regs[i] = perRun(i)
		}(i)
	}
	wg.Wait()
	par := New()
	for _, r := range regs {
		par.Merge(r)
	}

	if seq.Report() != par.Report() {
		t.Fatalf("reports diverge:\n--- sequential\n%s--- parallel\n%s", seq.Report(), par.Report())
	}
	var sj, pj strings.Builder
	if err := seq.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if sj.String() != pj.String() {
		t.Fatal("JSON exports diverge between sequential and parallel merge")
	}
}
