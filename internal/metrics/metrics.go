// Package metrics is the simulator's deterministic observability
// registry: named counters, gauges with high-water marks, and the
// log-bucketed latency histograms of internal/stats, collected from
// the hot layers (network switch ports, the memory-resident protocol
// FIFOs, per-kind transaction latencies) at snapshot points.
//
// Everything here is built for the repo's reproducibility contract
// rather than for live scraping: a registry is owned by one goroutine,
// all values are integers or stats.Histograms on the engine's virtual
// clock (never the wall clock — the simtime analyzer enforces it), and
// both renderings (Report text and WriteJSON) iterate names in sorted
// order, so the same simulation produces byte-identical reports. Per-run
// registries from a runner.Map sweep merge in run-index order
// (Registry.Merge), which keeps the merged report byte-identical at
// every -parallel setting. The package is in the determinism analyzer's
// simulation scope.
package metrics

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"cenju4/internal/sim"
	"cenju4/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level with a high-water mark — the shape of
// every occupancy measurement in the machine (FIFO depths, active
// gather groups, port backlogs).
type Gauge struct {
	v  int64
	hw int64
}

// Set records the current level and raises the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.hw {
		g.hw = v
	}
}

// Add moves the level by d (negative to drain).
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Peak records an observed peak: the level and high-water mark both
// rise to at least v, neither falls. Instrumentation that aggregates
// per-node watermarks into one gauge uses this so the result is the
// maximum regardless of visit order.
func (g *Gauge) Peak(v int64) {
	if v > g.v {
		g.v = v
	}
	if v > g.hw {
		g.hw = v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// HighWater returns the maximum level ever set.
func (g *Gauge) HighWater() int64 { return g.hw }

// Registry holds named metrics. The zero value is not usable; create
// registries with New. A registry is single-goroutine like the engine
// it observes; parallel sweeps give every run its own registry and
// merge afterwards.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*stats.Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first
// use.
func (r *Registry) Histogram(name string) *stats.Histogram {
	h := r.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds other into r: counters add, gauges keep the maximum of
// both level and high-water mark (cross-run watermark semantics), and
// histograms merge bucket-wise. Merging per-run registries in run-index
// order yields the same registry regardless of how the runs were
// scheduled.
func (r *Registry) Merge(other *Registry) {
	for name, c := range other.counters { //cenju4:order-insensitive — counter addition commutes
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges { //cenju4:order-insensitive — max-merge commutes
		dst := r.Gauge(name)
		if g.v > dst.v {
			dst.v = g.v
		}
		if g.hw > dst.hw {
			dst.hw = g.hw
		}
	}
	for name, h := range other.hists { //cenju4:order-insensitive — bucket addition commutes
		r.Histogram(name).Merge(h)
	}
}

// names returns the sorted union of all metric names.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters { //cenju4:order-insensitive — sorted below
		out = append(out, name)
	}
	for name := range r.gauges { //cenju4:order-insensitive — sorted below
		out = append(out, name)
	}
	for name := range r.hists { //cenju4:order-insensitive — sorted below
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.counters) + len(r.gauges) + len(r.hists) }

// Report renders the registry as sorted "kind name value" lines —
// byte-identical for equal registries regardless of insertion order.
func (r *Registry) Report() string {
	var b strings.Builder
	for _, name := range r.names() {
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&b, "counter    %-44s %d\n", name, r.counters[name].v)
		case r.gauges[name] != nil:
			g := r.gauges[name]
			fmt.Fprintf(&b, "gauge      %-44s value=%d highwater=%d\n", name, g.v, g.hw)
		default:
			h := r.hists[name]
			fmt.Fprintf(&b, "histogram  %-44s n=%d mean=%.0fns p50<=%d p99<=%d max=%d\n",
				name, h.Count(), h.Mean(), uint64(h.Percentile(50)), uint64(h.Percentile(99)), uint64(h.Max()))
		}
	}
	return b.String()
}

// WriteJSON writes the registry as canonical JSON: three top-level
// objects ("counters", "gauges", "histograms") with keys in sorted
// order, integer values only, and histogram buckets as [index, count]
// pairs. The serialization is hand-rolled so the byte stream depends
// only on the registry contents — the golden-digest tests compare
// exports byte for byte.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	first := true
	for _, name := range r.names() {
		c := r.counters[name]
		if c == nil {
			continue
		}
		writeSep(&b, &first)
		fmt.Fprintf(&b, "    %q: %d", name, c.v)
	}
	closeObj(&b, first)
	b.WriteString(",\n  \"gauges\": {")
	first = true
	for _, name := range r.names() {
		g := r.gauges[name]
		if g == nil {
			continue
		}
		writeSep(&b, &first)
		fmt.Fprintf(&b, "    %q: {\"value\": %d, \"highwater\": %d}", name, g.v, g.hw)
	}
	closeObj(&b, first)
	b.WriteString(",\n  \"histograms\": {")
	first = true
	for _, name := range r.names() {
		h := r.hists[name]
		if h == nil {
			continue
		}
		writeSep(&b, &first)
		fmt.Fprintf(&b, "    %q: {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"p50\": %d, \"p99\": %d, \"buckets\": [",
			name, h.Count(), h.Sum(), uint64(h.Min()), uint64(h.Max()),
			uint64(h.Percentile(50)), uint64(h.Percentile(99)))
		firstBucket := true
		h.EachBucket(func(i int, lo, hi sim.Time, count uint64) {
			if !firstBucket {
				b.WriteString(", ")
			}
			firstBucket = false
			fmt.Fprintf(&b, "[%d, %d]", i, count)
		})
		b.WriteString("]}")
	}
	closeObj(&b, first)
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSep(b *strings.Builder, first *bool) {
	if *first {
		b.WriteString("\n")
	} else {
		b.WriteString(",\n")
	}
	*first = false
}

func closeObj(b *strings.Builder, empty bool) {
	if empty {
		b.WriteString("}")
	} else {
		b.WriteString("\n  }")
	}
}
