// Package network models the Cenju-4 multistage interconnection
// network: columns of 4x4 crossbar switches with a unique path between
// any two nodes (hence in-order delivery), crosspoint-buffer output
// contention with virtual cut-through flow control, and the two features
// the DSM depends on — multicast replication of invalidation requests
// and in-network gathering of their replies.
//
// Geometry. A machine of N nodes uses S = topology.StagesForNodes(N)
// switch columns (2, 4 or 6 — the configurations of the paper), each
// with 4^(S-1) switches. Routing is butterfly-style: stage k replaces
// radix-4 digit k of the source address with digit k of the destination,
// so a message from s to d at stage k sits in the switch whose
// coordinates are d[0..k-1] ++ s[k+1..S-1] and leaves on output port
// d[k]. Every src-dst pair crosses exactly S switches.
//
// Multicast. An invalidation carries the directory's own destination
// structure (pointer list or bit-pattern). At each stage the switch
// computes which output ports lead to at least one destination — a
// partial-match query on the structure (directory.Dest.AnyMatch), the
// "calculation in the switch" of the paper — and replicates the message
// into the corresponding crosspoint buffers, one replication slot per
// extra copy.
//
// Gathering. Replies to one multicast share a Gather identifier. Replies
// to home h from sources with equal digit suffixes converge in the same
// switches; each switch derives a wait pattern (which input ports will
// contribute) from the original multicast destination structure and its
// own position, absorbs all but the last contribution, and forwards one
// combined message. The home receives exactly one reply per multicast.
//
// Timing. Latency accumulates per hop from timing.Params; each switch
// output port and each node injection/ejection port is a serialized
// resource, which is what produces the linear no-multicast curve and the
// hot-spot effects of Figure 10. Paths are computed when the message is
// sent (port reservations are made immediately), and only the deliveries
// are scheduled as events; this keeps large runs cheap while preserving
// per-pair ordering and determinism.
package network

import (
	"fmt"

	"cenju4/internal/directory"
	"cenju4/internal/faults"
	"cenju4/internal/metrics"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// Handler receives messages delivered to a node.
type Handler func(*msg.Message)

// Config parameterizes a network instance.
type Config struct {
	// Nodes is the number of attached nodes (power of two, <= 1024).
	Nodes int
	// Stages overrides the stage count; 0 selects the paper's value for
	// Nodes (2, 4 or 6).
	Stages int
	// Multicast enables the multicast and gathering functions. When
	// false the protocol layer falls back to singlecast invalidations
	// and individually delivered acknowledgements (the paper's
	// estimated comparison in Figure 10).
	Multicast bool
	// Params supplies latency constants; zero value means timing.Default().
	Params timing.Params
	// Pool, when non-nil, recycles Message records: the network releases
	// every message it finishes with (delivered to a handler, absorbed by
	// gathering, or expanded into copies) back to the pool. Enable it
	// only when every attached handler finishes with its messages before
	// returning — machine.Machine does; handlers that retain delivered
	// messages must leave Pool nil.
	Pool *msg.Pool
	// Injector, when non-nil, applies a compiled fault plan to this
	// network: messages are checksum-sealed at entry and verified at
	// delivery, and the injector decides per endpoint delivery whether
	// to drop, duplicate, delay or corrupt (see internal/faults). A nil
	// Injector leaves the fault-free hot path untouched beyond one
	// pointer test per delivery.
	Injector *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.Stages == 0 {
		c.Stages = topology.StagesForNodes(c.Nodes)
	}
	if c.Params == (timing.Params{}) {
		c.Params = timing.Default()
	}
	return c
}

// Stats aggregates network activity counters.
type Stats struct {
	Messages   uint64 // Send calls
	Deliveries uint64 // endpoint deliveries (multicast copies count individually)
	Hops       uint64 // switch traversals
	Multicasts uint64 // multicast Send calls
	// Replications counts extra message copies fanned out into crosspoint
	// buffers by the multicast function (copies beyond the first at each
	// switch — each one occupies a replication slot).
	Replications uint64
	Gathers      uint64 // gather groups allocated
	GatherMerges uint64 // replies absorbed inside the network
	PeakGathers  int    // peak concurrently active gather groups
	DataMessages uint64 // messages carrying a block payload
	// ContendedHops counts switch-port claims that had to wait for the
	// port (the message sat in a crosspoint buffer).
	ContendedHops uint64
	// MaxPortBacklog is the longest such wait — a proxy for the deepest
	// crosspoint-buffer residence time the run produced.
	MaxPortBacklog sim.Time
}

type gatherEntry struct {
	waitMask uint8
	latest   sim.Time
	merged   int
}

type switchState struct {
	portBusy [topology.SwitchRadix]sim.Time
	// g1ID/g1 are a one-entry cache in front of the gathers map: reply
	// gathering keeps at most a handful of groups live per switch (peak
	// concurrency is tracked in Stats.PeakGathers), so almost every
	// lookup on the reply hot path hits here without touching the map.
	g1ID    uint64
	g1      *gatherEntry
	gathers map[uint64]*gatherEntry
}

// Network is a simulated multistage interconnection network.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	stages   int
	perStage int
	switches []switchState // stage-major: [stage*perStage + index]
	inject   []sim.Time    // per-node injection port busy-until
	eject    []sim.Time    // per-node ejection port busy-until
	handlers []Handler
	stats    Stats

	// Per-stage accumulators behind Network.MetricsInto: total time the
	// stage's output ports were held (serialization reservations) and
	// switch traversals through the stage.
	stageBusy  []sim.Time
	stageHops  []uint64
	injectBusy sim.Time // summed injection-port hold time, all nodes
	ejectBusy  sim.Time // summed ejection-port hold time, all nodes

	nextGatherID  uint64
	activeGathers int

	// Hot-path scratch pools, all single-threaded like the engine:
	// memberBuf backs Send's destination expansion, freeDeliveries
	// recycles the per-event delivery records handed to sim.AtCall,
	// freeGathers recycles per-(gather, switch) merge entries, and
	// freeGroups recycles the msg.Gather group records themselves (a
	// group retires when its combined reply is delivered to the home).
	memberBuf      []topology.NodeID
	freeDeliveries []*deliveryEvent
	freeGathers    []*gatherEntry
	freeGroups     []*msg.Gather

	router DeliveryRouter
}

// DeliveryRouter intercepts endpoint deliveries. The intra-run PDES
// coordinator installs one so that a message whose wire time has been
// computed on the (serial) coordinator engine is handed to the engine
// owning the destination node's shard instead of this network's
// engine. The router assumes ownership of m and must eventually invoke
// the node's handler and release m to the configured pool; the
// delivery is counted in Stats before routing.
type DeliveryRouter interface {
	RouteDelivery(m *msg.Message, node topology.NodeID, t sim.Time)
}

// SetDeliveryRouter installs r as the delivery interceptor (nil
// restores direct delivery). Fault injection bypasses the router, so
// combining the two is rejected.
func (n *Network) SetDeliveryRouter(r DeliveryRouter) {
	if r != nil && n.cfg.Injector != nil {
		panic("network: delivery router and fault injector are mutually exclusive")
	}
	n.router = r
}

// deliveryEvent carries one scheduled handler invocation through the event
// queue. Together with runDelivery and Engine.AtCall it replaces the
// closure the network used to allocate per delivered message.
type deliveryEvent struct {
	n    *Network
	m    *msg.Message
	node topology.NodeID
}

// runDelivery fires one delivery: the record is recycled before the
// handler runs, so handlers that send (and thus deliver) more messages
// reuse it immediately.
//
//cenju4:hotpath
func runDelivery(x any) {
	d := x.(*deliveryEvent)
	n, m, node := d.n, d.m, d.node
	d.m = nil
	n.freeDeliveries = append(n.freeDeliveries, d)
	// A delivered gathered reply (InvAck/UpdateAck — never the Invalidate
	// or UpdateData multicast, whose copies merely carry the group as
	// metadata) is its group's single combined arrival: after the handler
	// consumes it the group record is dead and can be recycled. Handlers
	// must not retain it, the same contract the message pool imposes.
	var g *msg.Gather
	if m.Gather != nil && (m.Kind == msg.InvAck || m.Kind == msg.UpdateAck) {
		g = m.Gather
	}
	// Under fault injection every message was sealed at network entry;
	// a failed verification here is an injected corruption surfacing as
	// a detected loss — the message is discarded and (for recoverable
	// kinds) the master's timeout repairs it.
	if inj := n.cfg.Injector; inj != nil && !m.SumOK() {
		inj.NoteDetectedDrop()
		n.cfg.Pool.Put(m)
		if g != nil {
			n.freeGroups = append(n.freeGroups, g)
		}
		return
	}
	n.handlers[node](m)
	n.cfg.Pool.Put(m)
	if g != nil {
		n.freeGroups = append(n.freeGroups, g)
	}
}

// allocDelivery returns a delivery record bound to n.
func (n *Network) allocDelivery() *deliveryEvent {
	if k := len(n.freeDeliveries); k > 0 {
		d := n.freeDeliveries[k-1]
		n.freeDeliveries[k-1] = nil
		n.freeDeliveries = n.freeDeliveries[:k-1]
		return d
	}
	//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
	return &deliveryEvent{n: n}
}

// allocGatherEntry returns a zeroed gather entry.
func (n *Network) allocGatherEntry() *gatherEntry {
	if k := len(n.freeGathers); k > 0 {
		ge := n.freeGathers[k-1]
		n.freeGathers[k-1] = nil
		n.freeGathers = n.freeGathers[:k-1]
		*ge = gatherEntry{}
		return ge
	}
	//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
	return &gatherEntry{}
}

// New builds a network. The engine drives delivery events.
func New(eng *sim.Engine, cfg Config) *Network {
	cfg = cfg.withDefaults()
	if !topology.ValidNodeCount(cfg.Nodes) {
		panic(fmt.Sprintf("network: invalid node count %d", cfg.Nodes))
	}
	if cfg.Stages < 1 || 2*cfg.Stages > 32 {
		panic(fmt.Sprintf("network: invalid stage count %d", cfg.Stages))
	}
	if 1<<(2*cfg.Stages) < cfg.Nodes {
		panic(fmt.Sprintf("network: %d stages cannot address %d nodes", cfg.Stages, cfg.Nodes))
	}
	perStage := 1 << (2 * (cfg.Stages - 1))
	n := &Network{
		eng:      eng,
		cfg:      cfg,
		stages:   cfg.Stages,
		perStage: perStage,
		switches: make([]switchState, cfg.Stages*perStage),
		inject:   make([]sim.Time, cfg.Nodes),
		eject:    make([]sim.Time, cfg.Nodes),
		handlers: make([]Handler, cfg.Nodes),

		stageBusy: make([]sim.Time, cfg.Stages),
		stageHops: make([]uint64, cfg.Stages),

		memberBuf: make([]topology.NodeID, 0, cfg.Nodes),
	}
	return n
}

// Stages returns the stage count.
func (n *Network) Stages() int { return n.stages }

// Nodes returns the attached node count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MulticastEnabled reports whether the multicast/gathering functions are on.
func (n *Network) MulticastEnabled() bool { return n.cfg.Multicast }

// Stats returns a snapshot of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// Attach registers the delivery handler for a node. Must be called for
// every node before traffic reaches it.
func (n *Network) Attach(node topology.NodeID, h Handler) {
	n.handlers[node] = h
}

// digit returns radix-4 digit k (0 = most significant of the
// stage-count-wide address) of node x.
func (n *Network) digit(x int, k int) int {
	return x >> (2 * (n.stages - 1 - k)) & 3
}

// switchFor returns the switch at stage k on the path from src to dst:
// coordinates dst[0..k-1] ++ src[k+1..S-1].
func (n *Network) switchFor(k, src, dst int) *switchState {
	idx := 0
	for j := 0; j < k; j++ {
		idx = idx<<2 | n.digit(dst, j)
	}
	for j := k + 1; j < n.stages; j++ {
		idx = idx<<2 | n.digit(src, j)
	}
	return &n.switches[k*n.perStage+idx]
}

// claim serializes use of a port resource: the transfer starts when both
// the message has arrived (t) and the port is free; the port then stays
// busy for ser. Returns the start time and records contention.
func (n *Network) claim(busy *sim.Time, t, ser sim.Time) sim.Time {
	start := t
	if *busy > start {
		start = *busy
		if wait := start - t; wait > 0 {
			n.stats.ContendedHops++
			if wait > n.stats.MaxPortBacklog {
				n.stats.MaxPortBacklog = wait
			}
		}
	}
	*busy = start + ser
	return start
}

// stall returns the injected extra latency for the stage traversal
// starting at t (zero without an injector — the fault-free fast path).
func (n *Network) stall(t sim.Time) sim.Time {
	if inj := n.cfg.Injector; inj != nil {
		return inj.Stall(t)
	}
	return 0
}

func (n *Network) hopSer(data bool) (hop, ser sim.Time) {
	p := n.cfg.Params
	if data {
		return p.SwitchHopData, p.SerializeData
	}
	return p.SwitchHopCtl, p.SerializeCtl
}

// walkUnicast reserves the path src->dst starting at time t and returns
// the arrival time at the destination node.
func (n *Network) walkUnicast(src, dst int, t sim.Time, data bool) sim.Time {
	p := n.cfg.Params
	hop, ser := n.hopSer(data)
	t = n.claim(&n.inject[src], t, ser) + p.NetFixed/2
	n.injectBusy += ser
	for k := 0; k < n.stages; k++ {
		sw := n.switchFor(k, src, dst)
		port := n.digit(dst, k)
		start := n.claim(&sw.portBusy[port], t, ser)
		t = start + hop + n.stall(start)
		n.stats.Hops++
		n.stageBusy[k] += ser
		n.stageHops[k]++
	}
	n.ejectBusy += ser
	return n.claim(&n.eject[dst], t, ser) + p.NetFixed/2
}

// deliver schedules the handler invocation for node at time t. The
// message is released to the pool (if any) when the handler returns:
// delivery is the end of the network's ownership, and pooled handlers
// are required not to retain.
//
//cenju4:hotpath
func (n *Network) deliver(m *msg.Message, node topology.NodeID, t sim.Time) {
	if n.handlers[node] == nil {
		panic(fmt.Sprintf("network: no handler attached at %v", node))
	}
	if n.router != nil {
		n.stats.Deliveries++
		n.router.RouteDelivery(m, node, t)
		return
	}
	if inj := n.cfg.Injector; inj != nil {
		act, at := inj.Arrival(m.Kind, m.Src, node, m.Gather != nil, t)
		t = at
		switch act {
		case faults.DropMsg:
			// Injected loss: the message vanishes between the wire and
			// the handler. Not counted as a delivery.
			n.cfg.Pool.Put(m)
			return
		case faults.DupMsg:
			// Deliver the original at t and a clone one tick later (the
			// injector's pair floor keeps later traffic behind both).
			cp := n.cfg.Pool.Clone(m)
			n.stats.Deliveries++
			dd := n.allocDelivery()
			dd.m, dd.node = cp, node
			n.eng.AtCall(t+1, runDelivery, dd)
		case faults.CorruptMsg:
			// Flip one bit — payload when there is one, the checksum
			// field itself otherwise. runDelivery detects and discards.
			if m.HasData {
				m.Val ^= 1
			} else {
				m.Sum ^= 1
			}
		case faults.Pass:
			// Untouched (though possibly delayed via at).
		}
	}
	n.stats.Deliveries++
	d := n.allocDelivery()
	d.m, d.node = m, node
	n.eng.AtCall(t, runDelivery, d)
}

// Send injects a message. Singlecast messages go to the single node in
// m.Dest; multi-destination messages are multicast (or expanded to
// singlecasts when multicast is disabled); messages with a Gather are
// combined in-network on their way to the gather's home node.
//
//cenju4:hotpath
func (n *Network) Send(m *msg.Message) {
	now := n.eng.Now()
	m.SentAt = now
	if n.cfg.Injector != nil {
		m.Seal()
	}
	n.stats.Messages++
	if m.HasData {
		n.stats.DataMessages++
	}
	if m.GatherContribution() {
		n.walkGather(m, now)
		return
	}
	// memberBuf is scratch for this call only: deliveries copy the one
	// NodeID they need, and handlers run from the event queue, after
	// Send returned.
	members := m.Dest.Members(n.memberBuf[:0], n.cfg.Nodes)
	switch {
	case len(members) == 0:
		panic("network: message with empty destination")
	case len(members) == 1:
		t := n.walkUnicast(int(m.Src), int(members[0]), now, m.HasData)
		n.deliver(m, members[0], t)
	default:
		if n.cfg.Multicast {
			n.stats.Multicasts++
			n.walkMulticast(m, now)
		} else {
			// Singlecast expansion: the source injects one copy per
			// destination, serialized at its injection port.
			for _, d := range members {
				cp := n.cfg.Pool.Clone(m)
				cp.Dest = directory.Single(d)
				t := n.walkUnicast(int(m.Src), int(d), now, m.HasData)
				n.deliver(cp, d, t)
			}
		}
		// Fan-out complete: only the per-destination copies travel on.
		n.cfg.Pool.Put(m)
	}
}

// destHasPrefix reports whether any destination's address (stage-width)
// begins with the given digit prefix.
func (n *Network) destHasPrefix(d directory.Dest, prefix, digits int) bool {
	totalBits := 2 * n.stages
	shift := totalBits - 2*digits
	mask := uint32(1)<<(2*digits) - 1
	value := uint32(prefix)
	if shift >= 32 {
		return false
	}
	mask <<= shift
	value <<= shift
	if value>>topology.NodeBits != 0 {
		return false // prefix requires address bits above the node width
	}
	// Bits of the mask above the node width are satisfied by every real
	// node (their address bits there are zero), so clip the mask.
	mask &= 1<<topology.NodeBits - 1
	return d.AnyMatch(mask, value)
}

// walkMulticast replicates m down the switch tree. At stage k a copy
// identified by its chosen digit prefix fans out to every port whose
// extended prefix still covers a destination.
func (n *Network) walkMulticast(m *msg.Message, t sim.Time) {
	p := n.cfg.Params
	_, ser := n.hopSer(m.HasData)
	start := n.claim(&n.inject[int(m.Src)], t, ser)
	n.injectBusy += ser
	n.mcStep(m, 0, 0, start+p.NetFixed/2)
}

func (n *Network) mcStep(m *msg.Message, k, prefix int, t sim.Time) {
	p := n.cfg.Params
	if k == n.stages {
		node := topology.NodeID(prefix)
		if int(node) >= n.cfg.Nodes {
			return
		}
		_, ser := n.hopSer(m.HasData)
		arr := n.claim(&n.eject[int(node)], t, ser) + p.NetFixed/2
		n.ejectBusy += ser
		cp := n.cfg.Pool.Clone(m)
		cp.Dest = directory.Single(node)
		n.deliver(cp, node, arr)
		return
	}
	hop, ser := n.hopSer(m.HasData)
	sw := n.mcSwitch(m, k, prefix)
	copyIdx := 0
	for d := 0; d < topology.SwitchRadix; d++ {
		if !n.destHasPrefix(m.Dest, prefix<<2|d, k+1) {
			continue
		}
		depart := t + sim.Time(copyIdx)*p.ReplicateSlot
		start := n.claim(&sw.portBusy[d], depart, ser)
		n.stats.Hops++
		n.stageBusy[k] += ser
		n.stageHops[k]++
		if copyIdx > 0 {
			n.stats.Replications++
		}
		n.mcStep(m, k+1, prefix<<2|d, start+hop+n.stall(start))
		copyIdx++
	}
}

// mcSwitch returns the switch a multicast copy occupies at stage k:
// coordinates prefix ++ src[k+1..S-1].
func (n *Network) mcSwitch(m *msg.Message, k, prefix int) *switchState {
	src := int(m.Src)
	idx := prefix
	for j := k + 1; j < n.stages; j++ {
		idx = idx<<2 | n.digit(src, j)
	}
	return &n.switches[k*n.perStage+idx]
}

// AllocGather creates a gather group for a multicast with the given
// destination structure, collecting at home. The caller attaches the
// returned Gather to every reply of the group.
//
//cenju4:hotpath
func (n *Network) AllocGather(spec directory.Dest, home topology.NodeID) *msg.Gather {
	n.nextGatherID++
	n.stats.Gathers++
	n.activeGathers++
	if n.activeGathers > n.stats.PeakGathers {
		n.stats.PeakGathers = n.activeGathers
	}
	if k := len(n.freeGroups); k > 0 {
		g := n.freeGroups[k-1]
		n.freeGroups[k-1] = nil
		n.freeGroups = n.freeGroups[:k-1]
		*g = msg.Gather{ID: n.nextGatherID, Spec: spec, Home: home}
		return g
	}
	//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
	return &msg.Gather{ID: n.nextGatherID, Spec: spec, Home: home}
}

// NoteGatherAlloc records the statistics of one gather-group
// allocation performed outside AllocGather. The intra-run PDES layer
// allocates groups shard-side (from per-shard freelists, with
// shard-disjoint ID spaces) and defers the stats update to the serial
// replay phase, where this network's counters are single-owner.
func (n *Network) NoteGatherAlloc() {
	n.stats.Gathers++
	n.activeGathers++
	if n.activeGathers > n.stats.PeakGathers {
		n.stats.PeakGathers = n.activeGathers
	}
}

// waitPattern computes, for the switch at reply-stage k on the path of a
// reply from src to the gather home, the set of input ports that will
// carry contributions of this gather: port p is expected when some
// multicast destination has digit k equal to p and the same digit suffix
// as src (those are exactly the members whose replies converge here).
func (n *Network) waitPattern(spec directory.Dest, src, k int) uint8 {
	w := 2 * (n.stages - k) // bits covering digits k..S-1
	suffixBits := uint32(src) & (1<<(w-2) - 1)
	var mask uint32 = 1<<w - 1
	if w > topology.NodeBits {
		mask = 1<<topology.NodeBits - 1
	}
	var pat uint8
	for p := 0; p < topology.SwitchRadix; p++ {
		value := uint32(p)<<(w-2) | suffixBits
		if value>>topology.NodeBits != 0 {
			continue
		}
		if spec.AnyMatch(mask, value) {
			pat |= 1 << p
		}
	}
	return pat
}

// walkGather advances one gather contribution from m.Src toward the
// home, merging with sibling contributions at every stage.
func (n *Network) walkGather(m *msg.Message, t sim.Time) {
	p := n.cfg.Params
	hop, ser := n.hopSer(m.HasData)
	g := m.Gather
	if g.Merged == 0 {
		g.Merged = 1
	}
	src, home := int(m.Src), int(g.Home)
	t = n.claim(&n.inject[src], t, ser) + p.NetFixed/2
	n.injectBusy += ser
	merged := g.Merged
	for k := 0; k < n.stages; k++ {
		sw := n.switchFor(k, src, home)
		var ge *gatherEntry
		switch {
		case sw.g1 != nil && sw.g1ID == g.ID:
			ge = sw.g1
		case sw.gathers != nil:
			ge = sw.gathers[g.ID]
		}
		if ge == nil {
			ge = n.allocGatherEntry()
			ge.waitMask = n.waitPattern(g.Spec, src, k)
			if sw.g1 == nil {
				sw.g1, sw.g1ID = ge, g.ID
			} else {
				if sw.gathers == nil {
					//cenju4:alloc-ok created on first cache overflow, retained for the network's lifetime
					sw.gathers = make(map[uint64]*gatherEntry)
				}
				sw.gathers[g.ID] = ge
			}
		}
		inPort := n.digit(src, k)
		ge.waitMask &^= 1 << inPort
		ge.merged += merged
		if t > ge.latest {
			ge.latest = t
		}
		if ge.waitMask != 0 {
			// Earlier contribution: absorbed here, removed from the buffer
			// (its counts live on in the gather entry).
			n.stats.GatherMerges++
			n.cfg.Pool.Put(m)
			return
		}
		// Last contribution: forward the combined message.
		merged = ge.merged
		t = ge.latest + p.GatherMerge
		if sw.g1 == ge {
			sw.g1 = nil
		} else {
			delete(sw.gathers, g.ID)
		}
		n.freeGathers = append(n.freeGathers, ge)
		port := n.digit(home, k)
		start := n.claim(&sw.portBusy[port], t, ser)
		t = start + hop + n.stall(start)
		n.stats.Hops++
		n.stageBusy[k] += ser
		n.stageHops[k]++
	}
	n.ejectBusy += ser
	t = n.claim(&n.eject[home], t, ser) + p.NetFixed/2
	g.Merged = merged
	n.activeGathers--
	n.deliver(m, topology.NodeID(home), t)
}

// ActiveGathers returns the number of gather groups currently in
// flight — allocated but not yet retired by their combined delivery.
// Nonzero at quiescence means replies went missing inside a combining
// tree; the machine watchdog reports it.
func (n *Network) ActiveGathers() int { return n.activeGathers }

// Injector returns the compiled fault plan driving this network, nil
// in fault-free runs.
func (n *Network) Injector() *faults.Injector { return n.cfg.Injector }

// MetricsInto records the network's activity counters and per-stage
// output-port utilization into reg under the "net/" prefix. Utilization
// is reported in permille of stage port-time (ports × elapsed virtual
// time), using the engine's current virtual clock — call it at the end
// of a run.
func (n *Network) MetricsInto(reg *metrics.Registry) {
	s := n.stats
	reg.Counter("net/messages").Add(s.Messages)
	reg.Counter("net/deliveries").Add(s.Deliveries)
	reg.Counter("net/hops").Add(s.Hops)
	reg.Counter("net/multicasts").Add(s.Multicasts)
	reg.Counter("net/replications").Add(s.Replications)
	reg.Counter("net/gathers").Add(s.Gathers)
	reg.Counter("net/gather-merges").Add(s.GatherMerges)
	reg.Counter("net/data-messages").Add(s.DataMessages)
	reg.Counter("net/contended-hops").Add(s.ContendedHops)
	reg.Gauge("net/peak-gathers").Set(int64(s.PeakGathers))
	reg.Gauge("net/max-port-backlog-ns").Set(int64(s.MaxPortBacklog))
	elapsed := n.eng.Now()
	for k := 0; k < n.stages; k++ {
		reg.Counter(fmt.Sprintf("net/stage%d/hops", k)).Add(n.stageHops[k])
		reg.Counter(fmt.Sprintf("net/stage%d/port-busy-ns", k)).Add(uint64(n.stageBusy[k]))
		if elapsed > 0 {
			portTime := uint64(elapsed) * uint64(n.perStage) * topology.SwitchRadix
			reg.Gauge(fmt.Sprintf("net/stage%d/util-permille", k)).
				Set(int64(uint64(n.stageBusy[k]) * 1000 / portTime))
		}
	}
	reg.Counter("net/inject-busy-ns").Add(uint64(n.injectBusy))
	reg.Counter("net/eject-busy-ns").Add(uint64(n.ejectBusy))
}

// UncontendedLatency returns the zero-load latency of one traversal —
// useful for calibration tests and the analytic comparisons in the
// experiment harness.
func (n *Network) UncontendedLatency(data bool) sim.Time {
	return n.cfg.Params.Traversal(n.stages, data)
}
