package network

import (
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/faults"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

func injHarness(t *testing.T, spec faults.Spec) *harness {
	t.Helper()
	return newHarness(t, Config{
		Nodes:     16,
		Multicast: true,
		Injector:  spec.Normalize().Compile(16),
	})
}

func TestInjectedDropLosesMessage(t *testing.T) {
	h := injHarness(t, faults.Spec{Seed: 1, Drop: 1})
	h.net.Send(singlecast(1, 2, false))
	h.eng.Run()
	if len(h.got) != 0 {
		t.Fatalf("drop=1 plan delivered %d messages", len(h.got))
	}
	if got := h.net.Injector().Stats.Drops; got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
}

func TestInjectedDupDeliversTwice(t *testing.T) {
	h := injHarness(t, faults.Spec{Seed: 1, Dup: 1})
	h.net.Send(singlecast(1, 2, true))
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("dup=1 plan delivered %d messages, want 2", len(h.got))
	}
	if h.got[1].at != h.got[0].at+1 {
		t.Fatalf("duplicate at %d, original at %d: want original+1", h.got[1].at, h.got[0].at)
	}
	for _, d := range h.got {
		if d.m.Kind != h.got[0].m.Kind || d.m.Addr != h.got[0].m.Addr {
			t.Fatalf("duplicate differs from original: %v vs %v", d.m, h.got[0].m)
		}
	}
}

func TestInjectedCorruptionIsDetectedLoss(t *testing.T) {
	for _, data := range []bool{false, true} {
		h := injHarness(t, faults.Spec{Seed: 1, Corrupt: 1})
		h.net.Send(singlecast(1, 2, data))
		h.eng.Run()
		if len(h.got) != 0 {
			t.Fatalf("data=%v: corrupted message reached the handler", data)
		}
		st := h.net.Injector().Stats
		if st.Corruptions != 1 || st.DetectedDrops != 1 {
			t.Fatalf("data=%v: Corruptions=%d DetectedDrops=%d, want 1/1", data, st.Corruptions, st.DetectedDrops)
		}
	}
}

func TestInjectedDelayPreservesPairOrder(t *testing.T) {
	h := injHarness(t, faults.Spec{Seed: 7, Delay: 0.5, DelayBy: 50_000})
	const sends = 40
	send := func(i int) {
		h.net.Send(singlecast(3, 9, i%2 == 0))
	}
	for i := 0; i < sends; i++ {
		i := i
		h.eng.At(sim.Time(i*10), func() { send(i) })
	}
	h.eng.Run()
	if len(h.got) != sends {
		t.Fatalf("%d deliveries, want %d", len(h.got), sends)
	}
	for i := 1; i < len(h.got); i++ {
		if h.got[i].at < h.got[i-1].at {
			t.Fatalf("delivery %d at %d before previous at %d: pair order violated", i, h.got[i].at, h.got[i-1].at)
		}
	}
	if h.net.Injector().Stats.Delays == 0 {
		t.Fatal("delay plan injected nothing")
	}
}

func TestInjectedStallSlowsTraversal(t *testing.T) {
	base := newHarness(t, Config{Nodes: 16, Multicast: true})
	base.net.Send(singlecast(1, 14, false))
	base.eng.Run()

	h := injHarness(t, faults.Spec{Seed: 1, StallEvery: 1, StallFor: 1000})
	h.net.Send(singlecast(1, 14, false))
	h.eng.Run()
	if len(h.got) != 1 || len(base.got) != 1 {
		t.Fatalf("deliveries: faulted %d, base %d", len(h.got), len(base.got))
	}
	wantExtra := sim.Time(h.net.Stages()) * 1000
	if h.got[0].at != base.got[0].at+wantExtra {
		t.Fatalf("stalled arrival %d, want base %d + %d", h.got[0].at, base.got[0].at, wantExtra)
	}
	if got := h.net.Injector().Stats.Stalls; got != uint64(h.net.Stages()) {
		t.Fatalf("Stalls = %d, want %d", got, h.net.Stages())
	}
}

func TestGatherTrafficExemptFromScopeAllLoss(t *testing.T) {
	// Gather-carrying traffic is exempt from loss faults by contract
	// (dropping a combining-tree contribution would leak its pooled
	// group record): a full multicast + gathered-ack round trip
	// completes even under a drop-everything ScopeAll plan.
	h := injHarness(t, faults.Spec{Seed: 3, Drop: 1, Scope: faults.ScopeAll})
	members := []topology.NodeID{2, 3, 4, 5}
	const home topology.NodeID = 0
	inv := multicastTo(home, members)
	g := h.net.AllocGather(inv.Dest, home)
	inv.Gather = g
	h.net.Send(inv)
	h.eng.Run()
	if len(h.got) != len(members) {
		t.Fatalf("%d invalidations delivered, want %d", len(h.got), len(members))
	}
	h.got = nil
	for _, s := range members {
		h.net.Send(&msg.Message{
			Kind:   msg.InvAck,
			Src:    s,
			Dest:   directory.Single(home),
			Addr:   inv.Addr,
			Master: home,
			Gather: g,
		})
	}
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].node != home || h.got[0].m.Kind != msg.InvAck {
		t.Fatalf("gathered ack did not survive ScopeAll loss plan: %v", h.got)
	}
	if h.net.ActiveGathers() != 0 {
		t.Fatalf("ActiveGathers = %d after retire, want 0", h.net.ActiveGathers())
	}
}
