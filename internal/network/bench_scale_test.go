package network

import (
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// BenchmarkMulticastStorm1024 drives the full-machine invalidation storm
// the 1024-sharer headline claim rests on: one multicast Invalidate
// fanned out to every node, 1024 InvAck replies gathered in-network back
// to the home. Per iteration the network moves 2048 logical protocol
// messages (1024 multicast deliveries, 1023 in-switch merges, 1 combined
// reply delivery); the msgs/sec metric is that count over wall time and
// is the throughput floor BENCH_scale.json gates.
func BenchmarkMulticastStorm1024(b *testing.B) {
	const nodes = 1024
	const home = topology.NodeID(0)
	pool := &msg.Pool{}
	eng := sim.NewEngine()
	net := New(eng, Config{Nodes: nodes, Multicast: true, Pool: pool})
	for j := 0; j < nodes; j++ {
		node := topology.NodeID(j)
		net.Attach(node, func(m *msg.Message) {
			if m.Kind != msg.Invalidate {
				return // the home's combined InvAck: storm complete
			}
			net.Send(pool.New(msg.Message{
				Kind:   msg.InvAck,
				Src:    node,
				Dest:   directory.Single(m.Gather.Home),
				Addr:   m.Addr,
				Master: m.Master,
				Gather: m.Gather,
			}))
		})
	}
	all := directory.AllNodes(nodes)
	before := net.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := net.AllocGather(all, home)
		net.Send(pool.New(msg.Message{
			Kind:   msg.Invalidate,
			Src:    home,
			Dest:   all,
			Master: home,
			Gather: g,
		}))
		eng.Run()
	}
	b.StopTimer()
	after := net.Stats()
	moved := float64(after.Deliveries - before.Deliveries + after.GatherMerges - before.GatherMerges)
	b.ReportMetric(moved/b.Elapsed().Seconds(), "msgs/sec")
}
