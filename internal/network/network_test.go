package network

import (
	"math/rand"
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

type delivery struct {
	node topology.NodeID
	m    *msg.Message
	at   sim.Time
}

type harness struct {
	eng *sim.Engine
	net *Network
	got []delivery
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	h.net = New(h.eng, cfg)
	for i := 0; i < cfg.Nodes; i++ {
		node := topology.NodeID(i)
		h.net.Attach(node, func(m *msg.Message) {
			h.got = append(h.got, delivery{node, m, h.eng.Now()})
		})
	}
	return h
}

func singlecast(src, dst topology.NodeID, data bool) *msg.Message {
	return &msg.Message{
		Kind:    msg.ReadShared,
		Src:     src,
		Dest:    directory.Single(dst),
		Addr:    topology.SharedAddr(dst, 0),
		Master:  src,
		HasData: data,
	}
}

func TestUnicastUncontendedLatency(t *testing.T) {
	for _, nodes := range []int{16, 128, 1024} {
		h := newHarness(t, Config{Nodes: nodes, Multicast: true})
		p := timing.Default()
		h.net.Send(singlecast(1, topology.NodeID(nodes-1), false))
		h.eng.Run()
		if len(h.got) != 1 {
			t.Fatalf("nodes=%d: %d deliveries, want 1", nodes, len(h.got))
		}
		want := p.Traversal(h.net.Stages(), false)
		if h.got[0].at != want {
			t.Errorf("nodes=%d: latency %v, want %v", nodes, h.got[0].at, want)
		}
	}
}

func TestUnicastDataSlower(t *testing.T) {
	h := newHarness(t, Config{Nodes: 16, Multicast: true})
	h.net.Send(singlecast(0, 5, true))
	h.eng.Run()
	ctl := timing.Default().Traversal(2, false)
	if h.got[0].at <= ctl {
		t.Errorf("data latency %v not greater than control %v", h.got[0].at, ctl)
	}
}

func TestStageCountsFollowPaper(t *testing.T) {
	for nodes, stages := range map[int]int{16: 2, 128: 4, 1024: 6} {
		h := newHarness(t, Config{Nodes: nodes, Multicast: true})
		if h.net.Stages() != stages {
			t.Errorf("nodes=%d: stages=%d, want %d", nodes, h.net.Stages(), stages)
		}
	}
}

func TestInOrderDeliveryPerPair(t *testing.T) {
	h := newHarness(t, Config{Nodes: 64, Multicast: true})
	// Burst of messages 3 -> 40 interleaved with cross traffic.
	for i := 0; i < 20; i++ {
		h.net.Send(singlecast(3, 40, i%3 == 0))
		h.net.Send(singlecast(17, 40, false))
		h.net.Send(singlecast(3, 9, false))
	}
	h.eng.Run()
	var times []sim.Time
	for _, d := range h.got {
		if d.node == 40 && d.m.Src == 3 {
			times = append(times, d.at)
		}
	}
	if len(times) != 20 {
		t.Fatalf("got %d deliveries 3->40, want 20", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("out-of-order delivery: %v then %v", times[i-1], times[i])
		}
	}
}

func TestContentionSerializesPort(t *testing.T) {
	h := newHarness(t, Config{Nodes: 16, Multicast: true})
	// Two messages from the same source back-to-back must not have the
	// same latency: injection port serializes.
	h.net.Send(singlecast(0, 5, false))
	h.net.Send(singlecast(0, 5, false))
	h.eng.Run()
	if h.got[1].at-h.got[0].at < sim.Time(timing.Default().SerializeCtl) {
		t.Errorf("second message arrived %v after first, want >= serialization",
			h.got[1].at-h.got[0].at)
	}
}

func multicastTo(src topology.NodeID, nodes []topology.NodeID) *msg.Message {
	var e directory.Entry
	for _, n := range nodes {
		e.MapAdd(n)
	}
	return &msg.Message{
		Kind:   msg.Invalidate,
		Src:    src,
		Dest:   e.Dest(),
		Addr:   topology.SharedAddr(src, 0),
		Master: src,
	}
}

func TestMulticastReachesExactlyDecodedSet(t *testing.T) {
	h := newHarness(t, Config{Nodes: 1024, Multicast: true})
	targets := []topology.NodeID{0, 4, 5, 32, 164} // Figure 3: decodes to 12 nodes
	m := multicastTo(999, targets)
	want := m.Dest.Members(nil, 1024)
	h.net.Send(m)
	h.eng.Run()
	if len(h.got) != len(want) {
		t.Fatalf("%d deliveries, want %d", len(h.got), len(want))
	}
	seen := map[topology.NodeID]bool{}
	for _, d := range h.got {
		seen[d.node] = true
	}
	for _, n := range want {
		if !seen[n] {
			t.Errorf("member %v missed", n)
		}
	}
}

func TestMulticastPointerFormPrecise(t *testing.T) {
	h := newHarness(t, Config{Nodes: 128, Multicast: true})
	m := multicastTo(0, []topology.NodeID{7, 63, 100})
	h.net.Send(m)
	h.eng.Run()
	if len(h.got) != 3 {
		t.Fatalf("%d deliveries, want 3 (pointer form is precise)", len(h.got))
	}
}

func TestMulticastLatencyScalesWithStagesNotNodes(t *testing.T) {
	// Latency of invalidating all nodes must grow like the stage count,
	// not the node count (the paper's Figure 10 argument).
	lastArrival := func(nodes int) sim.Time {
		h := newHarness(t, Config{Nodes: nodes, Multicast: true})
		all := make([]topology.NodeID, nodes)
		for i := range all {
			all[i] = topology.NodeID(i)
		}
		h.net.Send(multicastTo(0, all))
		h.eng.Run()
		var last sim.Time
		for _, d := range h.got {
			if d.at > last {
				last = d.at
			}
		}
		if len(h.got) != nodes {
			t.Fatalf("nodes=%d: %d deliveries", nodes, len(h.got))
		}
		return last
	}
	l16 := lastArrival(16)
	l1024 := lastArrival(1024)
	if l1024 > 8*l16 {
		t.Errorf("multicast latency 16 nodes=%v, 1024 nodes=%v: not stage-scalable", l16, l1024)
	}
}

func TestSinglecastExpansionWhenMulticastOff(t *testing.T) {
	h := newHarness(t, Config{Nodes: 64, Multicast: false})
	all := make([]topology.NodeID, 64)
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	h.net.Send(multicastTo(0, all))
	h.eng.Run()
	if len(h.got) != 64 {
		t.Fatalf("%d deliveries, want 64", len(h.got))
	}
	st := h.net.Stats()
	if st.Multicasts != 0 {
		t.Errorf("multicast counter = %d with multicast disabled", st.Multicasts)
	}
	// Injection serialization must spread arrivals linearly.
	var first, last sim.Time
	first = ^sim.Time(0)
	for _, d := range h.got {
		if d.at < first {
			first = d.at
		}
		if d.at > last {
			last = d.at
		}
	}
	minSpread := sim.Time(60 * uint64(timing.Default().SerializeCtl))
	if last-first < minSpread {
		t.Errorf("singlecast spread %v, want >= %v", last-first, minSpread)
	}
}

func gatherReplies(t *testing.T, nodes int, members []topology.NodeID) (*harness, []delivery) {
	t.Helper()
	h := newHarness(t, Config{Nodes: nodes, Multicast: true})
	var e directory.Entry
	for _, n := range members {
		e.MapAdd(n)
	}
	spec := e.Dest()
	home := topology.NodeID(0)
	g := h.net.AllocGather(spec, home)
	decoded := spec.Members(nil, nodes)
	for _, s := range decoded {
		reply := &msg.Message{
			Kind:   msg.InvAck,
			Src:    s,
			Dest:   directory.Single(home),
			Addr:   topology.SharedAddr(home, 0),
			Master: home,
			Gather: g,
		}
		h.net.Send(reply)
	}
	h.eng.Run()
	var atHome []delivery
	for _, d := range h.got {
		if d.node == home {
			atHome = append(atHome, d)
		}
	}
	return h, atHome
}

func TestGatherCombinesToOneReply(t *testing.T) {
	members := []topology.NodeID{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	h, atHome := gatherReplies(t, 128, members)
	var e directory.Entry
	for _, n := range members {
		e.MapAdd(n)
	}
	decoded := e.Dest().Members(nil, 128)
	if len(atHome) != 1 {
		t.Fatalf("home received %d messages, want 1 gathered reply", len(atHome))
	}
	if atHome[0].m.Gather.Merged != len(decoded) {
		t.Errorf("Merged = %d, want %d", atHome[0].m.Gather.Merged, len(decoded))
	}
	st := h.net.Stats()
	if st.GatherMerges == 0 {
		t.Error("no in-network merges recorded")
	}
}

func TestGatherSingleMember(t *testing.T) {
	_, atHome := gatherReplies(t, 128, []topology.NodeID{77})
	if len(atHome) != 1 || atHome[0].m.Gather.Merged != 1 {
		t.Fatalf("single-member gather: %d msgs", len(atHome))
	}
}

func TestGatherAllNodes(t *testing.T) {
	nodes := 256
	all := make([]topology.NodeID, nodes)
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	h, atHome := gatherReplies(t, nodes, all)
	if len(atHome) != 1 {
		t.Fatalf("home received %d messages, want 1", len(atHome))
	}
	if atHome[0].m.Gather.Merged != nodes {
		t.Errorf("Merged = %d, want %d", atHome[0].m.Gather.Merged, nodes)
	}
	st := h.net.Stats()
	if st.PeakGathers != 1 {
		t.Errorf("PeakGathers = %d, want 1", st.PeakGathers)
	}
}

func TestGatherHomeAmongMembers(t *testing.T) {
	// The home itself can appear in an imprecise destination set; its
	// own acknowledgement must gather like any other.
	_, atHome := gatherReplies(t, 64, []topology.NodeID{0, 1, 2})
	if len(atHome) != 1 || atHome[0].m.Gather.Merged != 3 {
		t.Fatalf("gather with home member: %+v", atHome)
	}
}

func TestConcurrentGathersDoNotMix(t *testing.T) {
	h := newHarness(t, Config{Nodes: 64, Multicast: true})
	mkSpec := func(ns ...topology.NodeID) directory.Dest {
		var e directory.Entry
		for _, n := range ns {
			e.MapAdd(n)
		}
		return e.Dest()
	}
	specA := mkSpec(10, 11, 12)
	specB := mkSpec(10, 11, 12) // same members, different gather
	gA := h.net.AllocGather(specA, 1)
	gB := h.net.AllocGather(specB, 2)
	for _, s := range []topology.NodeID{10, 11, 12} {
		h.net.Send(&msg.Message{Kind: msg.InvAck, Src: s, Dest: directory.Single(1), Gather: gA})
		h.net.Send(&msg.Message{Kind: msg.InvAck, Src: s, Dest: directory.Single(2), Gather: gB})
	}
	h.eng.Run()
	count := map[topology.NodeID]int{}
	for _, d := range h.got {
		count[d.node]++
		if d.m.Gather.Merged != 3 {
			t.Errorf("node %v received Merged=%d, want 3", d.node, d.m.Gather.Merged)
		}
	}
	if count[1] != 1 || count[2] != 1 {
		t.Fatalf("deliveries = %v, want one each at nodes 1 and 2", count)
	}
}

func TestGatherLatencyScalesWithStages(t *testing.T) {
	arrival := func(nodes int) sim.Time {
		all := make([]topology.NodeID, nodes)
		for i := range all {
			all[i] = topology.NodeID(i)
		}
		_, atHome := gatherReplies(t, nodes, all)
		return atHome[0].at
	}
	l16 := arrival(16)
	l1024 := arrival(1024)
	if l1024 > 10*l16 {
		t.Errorf("gather latency 16=%v 1024=%v: not scalable", l16, l1024)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []delivery {
		h := newHarness(t, Config{Nodes: 128, Multicast: true})
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 200; i++ {
			src := topology.NodeID(rng.Intn(128))
			dst := topology.NodeID(rng.Intn(128))
			if src == dst {
				dst = (dst + 1) % 128
			}
			h.net.Send(singlecast(src, dst, rng.Intn(2) == 0))
		}
		h.eng.Run()
		return h.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].node != b[i].node || a[i].at != b[i].at {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	eng := sim.NewEngine()
	mustPanic("bad node count", func() { New(eng, Config{Nodes: 100}) })
	mustPanic("too few stages", func() { New(eng, Config{Nodes: 1024, Stages: 2}) })
	mustPanic("no handler", func() {
		n := New(eng, Config{Nodes: 16, Multicast: true})
		n.Send(singlecast(0, 1, false))
		eng.Run()
	})
	mustPanic("empty dest", func() {
		n := New(eng, Config{Nodes: 16, Multicast: true})
		n.Attach(0, func(*msg.Message) {})
		n.Send(&msg.Message{Kind: msg.ReadShared, Src: 0})
	})
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, Config{Nodes: 16, Multicast: true})
	h.net.Send(singlecast(0, 1, true))
	h.net.Send(multicastTo(0, []topology.NodeID{2, 3, 4, 5, 6}))
	h.eng.Run()
	st := h.net.Stats()
	if st.Messages != 2 {
		t.Errorf("Messages = %d, want 2", st.Messages)
	}
	if st.DataMessages != 1 {
		t.Errorf("DataMessages = %d, want 1", st.DataMessages)
	}
	if st.Multicasts != 1 {
		t.Errorf("Multicasts = %d, want 1", st.Multicasts)
	}
	if st.Deliveries < 6 {
		t.Errorf("Deliveries = %d, want >= 6", st.Deliveries)
	}
	if st.Hops == 0 {
		t.Error("no hops recorded")
	}
}

func BenchmarkUnicast(b *testing.B) {
	eng := sim.NewEngine()
	net := New(eng, Config{Nodes: 128, Multicast: true})
	for i := 0; i < 128; i++ {
		net.Attach(topology.NodeID(i), func(*msg.Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(singlecast(topology.NodeID(i%128), topology.NodeID((i+13)%128), false))
		eng.Run()
	}
}

func BenchmarkMulticast1024(b *testing.B) {
	all := make([]topology.NodeID, 1024)
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := New(eng, Config{Nodes: 1024, Multicast: true})
		for j := 0; j < 1024; j++ {
			net.Attach(topology.NodeID(j), func(*msg.Message) {})
		}
		net.Send(multicastTo(0, all))
		eng.Run()
	}
}
