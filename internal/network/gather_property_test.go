package network

import (
	"math/rand"
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/msg"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// Property: for ANY random sharer set on ANY machine size, a multicast
// followed by gathered replies from every delivered copy produces
// exactly one message at the home, with Merged equal to the delivered
// copy count. This exercises the wait-pattern computation (the paper's
// per-switch calculation) against the full cross-product structure of
// bit-pattern destinations.
func TestPropertyGatherAlwaysCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		nodes := 1 << (2 + rng.Intn(9)) // 4..1024
		eng := sim.NewEngine()
		net := New(eng, Config{Nodes: nodes, Multicast: true})

		// Random sharers, random home.
		home := topology.NodeID(rng.Intn(nodes))
		var e directory.Entry
		k := 1 + rng.Intn(12)
		for i := 0; i < k; i++ {
			e.MapAdd(topology.NodeID(rng.Intn(nodes)))
		}
		spec := e.Dest()
		members := spec.Members(nil, nodes)

		// Deliver the multicast, collect which nodes got copies.
		delivered := map[topology.NodeID]bool{}
		homeGot := 0
		var merged int
		for i := 0; i < nodes; i++ {
			node := topology.NodeID(i)
			net.Attach(node, func(m *msg.Message) {
				switch m.Kind {
				case msg.Invalidate:
					delivered[node] = true
				case msg.InvAck:
					homeGot++
					merged = m.Gather.Merged
				}
			})
		}
		net.Send(&msg.Message{Kind: msg.Invalidate, Src: home, Dest: spec, Addr: topology.SharedAddr(home, 0), Master: home})
		eng.Run()

		if len(delivered) != len(members) {
			t.Fatalf("trial %d (nodes=%d): delivered %d copies, decoded %d members",
				trial, nodes, len(delivered), len(members))
		}

		// Every delivered node replies; the home must see exactly one
		// gathered message accounting for all of them.
		g := net.AllocGather(spec, home)
		for _, m := range members {
			net.Send(&msg.Message{Kind: msg.InvAck, Src: m, Dest: directory.Single(home), Gather: g})
		}
		eng.Run()
		if homeGot != 1 {
			t.Fatalf("trial %d (nodes=%d, k=%d, members=%d): home received %d gathered messages",
				trial, nodes, k, len(members), homeGot)
		}
		if merged != len(members) {
			t.Fatalf("trial %d: merged %d, want %d", trial, merged, len(members))
		}
	}
}

// Property: multicast port computation never delivers to a node outside
// the decoded destination set, for random pointer-form destinations too.
func TestPropertyMulticastExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		nodes := 1 << (2 + rng.Intn(9))
		eng := sim.NewEngine()
		net := New(eng, Config{Nodes: nodes, Multicast: true})
		var e directory.Entry
		k := 1 + rng.Intn(7)
		for i := 0; i < k; i++ {
			e.MapAdd(topology.NodeID(rng.Intn(nodes)))
		}
		spec := e.Dest()
		want := map[topology.NodeID]bool{}
		for _, m := range spec.Members(nil, nodes) {
			want[m] = true
		}
		got := map[topology.NodeID]bool{}
		for i := 0; i < nodes; i++ {
			node := topology.NodeID(i)
			net.Attach(node, func(*msg.Message) { got[node] = true })
		}
		net.Send(&msg.Message{Kind: msg.Invalidate, Src: 0, Dest: spec, Addr: topology.SharedAddr(0, 0)})
		eng.Run()
		for n := range got {
			if !want[n] {
				t.Fatalf("trial %d: node %v got a copy but is not a destination", trial, n)
			}
		}
		for n := range want {
			if !got[n] {
				t.Fatalf("trial %d: destination %v missed", trial, n)
			}
		}
	}
}

func TestContentionStats(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{Nodes: 16, Multicast: true})
	for i := 0; i < 16; i++ {
		net.Attach(topology.NodeID(i), func(*msg.Message) {})
	}
	// A burst through one destination forces port contention.
	for i := 1; i < 16; i++ {
		net.Send(&msg.Message{Kind: msg.ReadShared, Src: topology.NodeID(i), Dest: directory.Single(0), Addr: topology.SharedAddr(0, 0)})
	}
	eng.Run()
	st := net.Stats()
	if st.ContendedHops == 0 {
		t.Fatal("no contention recorded under a burst")
	}
	if st.MaxPortBacklog == 0 {
		t.Fatal("no backlog recorded")
	}
}
