package msg

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := &Pool{}
	m1 := p.New(Message{Kind: ReadShared, Addr: 0x1000})
	p.Put(m1)
	m2 := p.Get()
	if m2 != m1 {
		t.Fatal("Get did not reuse the released record")
	}
	if m2.Kind != KindInvalid || m2.Addr != 0 || m2.inPool {
		t.Fatalf("recycled message not zeroed: %+v", m2)
	}
}

func TestPoolPutZeroesGather(t *testing.T) {
	p := &Pool{}
	m := p.New(Message{Kind: InvAck, Gather: &Gather{ID: 7}})
	p.Put(m)
	if m.Gather != nil {
		t.Fatal("Put left a Gather pointer on a released message")
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := &Pool{}
	m := p.Get()
	p.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(m)
}

func TestPoolCloneOfReleasedPanics(t *testing.T) {
	p := &Pool{}
	m := p.Get()
	p.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of released message did not panic")
		}
	}()
	p.Clone(m)
}

func TestPoolClone(t *testing.T) {
	p := &Pool{}
	m := p.New(Message{Kind: Invalidate, Addr: 0x2000, HasData: true})
	c := p.Clone(m)
	if c == m {
		t.Fatal("Clone returned the original")
	}
	if c.Kind != Invalidate || c.Addr != 0x2000 || !c.HasData {
		t.Fatalf("Clone lost fields: %+v", c)
	}
}

// TestNilPoolIsAllocateAndForget: a nil *Pool must behave exactly like
// plain allocation (the default for direct network/controller
// construction).
func TestNilPoolIsAllocateAndForget(t *testing.T) {
	var p *Pool
	m := p.New(Message{Kind: ReadShared})
	if m == nil || m.Kind != ReadShared {
		t.Fatalf("nil-pool New = %+v", m)
	}
	p.Put(m) // no-op
	if m.Kind != ReadShared {
		t.Fatal("nil-pool Put modified the message")
	}
	if c := p.Clone(m); c == m || c.Kind != ReadShared {
		t.Fatal("nil-pool Clone broken")
	}
}
