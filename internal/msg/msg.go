// Package msg defines the coherence messages exchanged among the
// master, home and slave modules of Cenju-4 nodes, and the destination
// and gathering metadata the network needs to deliver them.
package msg

import (
	"fmt"

	"cenju4/internal/directory"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// Kind enumerates coherence message types. Requests flow master->home,
// forwarded requests and invalidations home->slave(s), slave replies
// slave->home (the Cenju-4 protocol routes slave replies through the
// home, removing the DASH nack races), and final replies home->master.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it is never sent.
	KindInvalid Kind = iota

	// Master -> home requests.
	ReadShared    // load miss
	ReadExclusive // store miss
	Ownership     // store hit on a shared block (no data transfer needed)
	WriteBack     // replacement of a modified block (carries data, no reply)

	// Home -> slave.
	FwdReadShared    // forwarded to the dirty slave
	FwdReadExclusive // forwarded to the dirty slave
	Invalidate       // multicast to all registered slaves

	// Slave -> home replies.
	SlaveData // carries the dirty block
	SlaveAck  // no data
	InvAck    // invalidation acknowledgement (gathered in-network)

	// Home -> master replies.
	HomeData // carries the block
	HomeAck  // ownership granted, no data

	// Nack exists only in the DASH-style comparison protocol: the home
	// refuses a request against a pending block and the master retries.
	// The Cenju-4 queuing protocol never sends it.
	Nack

	// The update-type protocol extension (the paper's Section 4.2.3
	// future work): stores to update-mode blocks write through to the
	// home, which multicasts the new data to every node's third-level
	// cache in main memory.
	UpdateWrite // master -> home, carries data
	UpdateData  // home -> all nodes, multicast, carries data
	UpdateAck   // node -> home, gathered
)

// NumKinds is the number of defined Kind values, for sizing per-kind
// count/table arrays indexed by Kind.
const NumKinds = int(UpdateAck) + 1

var kindNames = [...]string{
	"invalid", "read-shared", "read-exclusive", "ownership", "writeback",
	"fwd-read-shared", "fwd-read-exclusive", "invalidate",
	"slave-data", "slave-ack", "inv-ack", "home-data", "home-ack", "nack",
	"update-write", "update-data", "update-ack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Request reports whether k is a master-originated request.
func (k Kind) Request() bool {
	return (k >= ReadShared && k <= WriteBack) || k == UpdateWrite
}

// ToSlave reports whether k is delivered to a slave module.
func (k Kind) ToSlave() bool {
	return (k >= FwdReadShared && k <= Invalidate) || k == UpdateData
}

// ToHome reports whether k is delivered to a home module.
func (k Kind) ToHome() bool {
	return k.Request() || (k >= SlaveData && k <= InvAck) || k == UpdateAck
}

// ToMaster reports whether k is delivered to a master module.
func (k Kind) ToMaster() bool { return k == HomeData || k == HomeAck || k == Nack }

// HeaderBytes is the size of a message header on the wire.
const HeaderBytes = 16

// Gather carries in-network reply-combining state. Every invalidation
// acknowledgement produced for the same multicast shares one Gather; the
// network merges them switch by switch so the home receives exactly one
// InvAck.
type Gather struct {
	// ID distinguishes concurrent gatherings. The hardware uses a
	// 10-bit identifier and a 1024-entry table per switch; the simulator
	// allocates IDs from a monotonic counter and keys switch tables by
	// ID, a behavioral superset (peak concurrency is tracked in network
	// stats and stays far below 1024 in every experiment).
	ID uint64
	// Spec is the destination set of the original multicast; switches
	// derive their wait patterns from it.
	Spec directory.Dest
	// Home is the node collecting the gathered reply.
	Home topology.NodeID
	// Merged counts replies combined into this message (>= 1).
	Merged int
}

// Message is one coherence message.
type Message struct {
	Kind Kind
	Src  topology.NodeID
	// Dest identifies the receiving node(s). Requests and replies are
	// singlecast; Invalidate carries the directory's pointer or
	// bit-pattern structure and is multicast.
	Dest directory.Dest
	// Addr is the target block address (block-aligned).
	Addr topology.Addr
	// Master is the node whose processor originated the transaction;
	// preserved across forwarding so replies can be routed and so a
	// master's own slave module can recognize self-invalidations that
	// an imprecise node map or an ownership multicast may carry.
	Master topology.NodeID
	// HasData marks a 128-byte payload.
	HasData bool
	// Excl marks a HomeData reply granting an exclusive copy (the
	// master caches E on a load, M on a store). Without it the copy is
	// Shared.
	Excl bool
	// OrigKind preserves the master's original request kind across
	// forwarding and nacks (for retry and statistics).
	OrigKind Kind
	// Gather is non-nil on gatherable replies (InvAck).
	Gather *Gather
	// SentAt is the simulation time the message entered the network.
	SentAt sim.Time
	// Val is the tagged block value riding with a HasData message. It is
	// maintained only when a core.ValueTracker is attached (the fuzzing
	// harness's consistency oracle); timing never depends on it.
	Val uint64

	// Seq tags a master transaction so replies can be matched to the
	// retransmitting attempt under fault injection: the master stamps
	// its requests, the home echoes the stamp into every reply, and the
	// master discards replies whose stamp does not match its
	// outstanding slot (duplicate replies after a recovered loss).
	// Zero on all traffic when recovery is disabled.
	Seq uint32
	// Sum is the header+payload checksum sealed at network entry when a
	// fault injector is active; the delivery endpoint verifies it so
	// injected corruption becomes detected loss. Zero (and unchecked)
	// in fault-free runs.
	Sum uint32

	// inPool guards against double release / use-after-release when the
	// message came from a Pool (see pool.go).
	inPool bool
}

// GatherContribution reports whether this message is a reply to be
// combined in-network: it carries a Gather and is singlecast to the
// gather's home. (An Invalidate multicast also carries the Gather — as
// metadata for the slaves — but is not itself a contribution.)
func (m *Message) GatherContribution() bool {
	return m.Gather != nil && m.Dest.SingleTo(m.Gather.Home)
}

// fnvMix folds the 8 bytes of v into an FNV-1a hash.
func fnvMix(h uint32, v uint64) uint32 {
	for i := 0; i < 8; i++ {
		h ^= uint32(v & 0xff)
		h *= 16777619
		v >>= 8
	}
	return h
}

// Checksum hashes the fields that must survive the wire intact: kind,
// source, address, originating master, the data/exclusivity flags, the
// retransmit sequence stamp and the tagged payload value. Dest and
// Gather are deliberately excluded — the network rewrites them while
// routing (multicast narrowing, gather merging), so including them
// would invalidate legitimately forwarded copies.
func (m *Message) Checksum() uint32 {
	h := fnvMix(2166136261, uint64(m.Kind))
	h = fnvMix(h, uint64(m.Src))
	h = fnvMix(h, uint64(m.Addr))
	h = fnvMix(h, uint64(m.Master))
	var flags uint64
	if m.HasData {
		flags |= 1
	}
	if m.Excl {
		flags |= 2
	}
	h = fnvMix(h, flags)
	h = fnvMix(h, uint64(m.Seq))
	return fnvMix(h, m.Val)
}

// Seal stamps the checksum; the network calls it at entry when a fault
// injector is active.
//
//cenju4:hotpath
func (m *Message) Seal() { m.Sum = m.Checksum() }

// SumOK verifies the seal. A corrupted message fails here and is
// treated as a detected loss by the delivery endpoint.
func (m *Message) SumOK() bool { return m.Sum == m.Checksum() }

// Bytes returns the wire size of the message.
func (m *Message) Bytes() int {
	if m.HasData {
		return HeaderBytes + topology.BlockSize
	}
	return HeaderBytes
}

func (m *Message) String() string {
	d := ""
	if m.HasData {
		d = "+data"
	}
	return fmt.Sprintf("%v%s %v->dest(%d) %v master=%v", m.Kind, d, m.Src, m.Dest.Count(), m.Addr, m.Master)
}
