package msg

import (
	"strings"
	"testing"
)

// TestKindNamesCoverEveryKind pins the name table to the const block:
// every Kind up to the last declared constant must render a real name,
// not the "Kind(n)" fallback, and the table must not carry stale
// entries past the last constant. The enumnames analyzer enforces the
// same invariant statically; this test keeps it honest at runtime.
func TestKindNamesCoverEveryKind(t *testing.T) {
	const last = UpdateAck
	if got, want := len(kindNames), int(last)+1; got != want {
		t.Fatalf("kindNames has %d entries, const block declares %d kinds", got, want)
	}
	seen := make(map[string]Kind, int(last)+1)
	for k := KindInvalid; k <= last; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("Kind %d has no name (got %q)", uint8(k), name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Kind %d and Kind %d share the name %q", uint8(prev), uint8(k), name)
		}
		seen[name] = k
	}
	if got := (last + 1).String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("value past the last constant should fall back to Kind(n), got %q", got)
	}
}
