package msg

// Pool is a free list of Message records for the simulator's hot path:
// every coherence hop allocates a Message, and in a machine-owned
// configuration each message has a well-defined end of life (delivered
// to a controller handler, absorbed by in-network gathering, or
// expanded into per-destination copies), so records can be recycled
// instead of garbage-collected.
//
// Pooling is opt-in. A nil *Pool is valid and disables recycling: Get
// falls back to plain allocation and Put is a no-op. Only
// machine.Machine wires a pool (into both the network and every
// controller); code that constructs networks or controllers directly —
// including tests whose handlers retain delivered messages — keeps the
// allocate-and-forget behavior.
//
// A Pool is not goroutine-safe: it belongs to one machine, which
// belongs to one engine, which is single-threaded. Parallel sweeps
// (internal/runner) give every run its own machine and therefore its
// own pool.
type Pool struct {
	free []*Message
}

// Get returns a zeroed Message, reusing a released record when one is
// available.
//
//cenju4:hotpath
func (p *Pool) Get() *Message {
	if p == nil {
		//cenju4:alloc-ok a nil pool opts out of recycling by contract
		return &Message{}
	}
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		m.inPool = false
		return m
	}
	//cenju4:alloc-ok pool miss grows the steady-state working set once, then recycles
	return &Message{}
}

// New returns a pooled copy of proto. proto is a value, so call sites
// keep composite-literal form: pool.New(Message{Kind: ..., ...}).
//
//cenju4:hotpath
func (p *Pool) New(proto Message) *Message {
	m := p.Get()
	*m = proto
	return m
}

// Clone returns a pooled copy of m (the network's fan-out primitive).
// Cloning a released message panics: it is a use-after-release.
//
//cenju4:hotpath
func (p *Pool) Clone(m *Message) *Message {
	if m.inPool {
		panic("msg: Clone of a released message")
	}
	return p.New(*m)
}

// Put releases m for reuse and zeroes it so stale fields (Gather
// pointers especially) cannot leak into the next transaction. Releasing
// the same record twice panics: the second owner would observe its
// message rewritten mid-flight. Put(nil) and Put on a nil pool are
// no-ops.
//
//cenju4:hotpath
func (p *Pool) Put(m *Message) {
	if p == nil || m == nil {
		return
	}
	if m.inPool {
		panic("msg: double release of a message")
	}
	*m = Message{inPool: true}
	p.free = append(p.free, m)
}
