package msg

import (
	"testing"

	"cenju4/internal/directory"
	"cenju4/internal/topology"
)

func TestKindClassification(t *testing.T) {
	cases := []struct {
		k                                  Kind
		request, toSlave, toHome, toMaster bool
	}{
		{ReadShared, true, false, true, false},
		{ReadExclusive, true, false, true, false},
		{Ownership, true, false, true, false},
		{WriteBack, true, false, true, false},
		{FwdReadShared, false, true, false, false},
		{FwdReadExclusive, false, true, false, false},
		{Invalidate, false, true, false, false},
		{SlaveData, false, false, true, false},
		{SlaveAck, false, false, true, false},
		{InvAck, false, false, true, false},
		{HomeData, false, false, false, true},
		{HomeAck, false, false, false, true},
		{Nack, false, false, false, true},
	}
	for _, c := range cases {
		if c.k.Request() != c.request {
			t.Errorf("%v.Request() = %v", c.k, c.k.Request())
		}
		if c.k.ToSlave() != c.toSlave {
			t.Errorf("%v.ToSlave() = %v", c.k, c.k.ToSlave())
		}
		if c.k.ToHome() != c.toHome {
			t.Errorf("%v.ToHome() = %v", c.k, c.k.ToHome())
		}
		if c.k.ToMaster() != c.toMaster {
			t.Errorf("%v.ToMaster() = %v", c.k, c.k.ToMaster())
		}
	}
}

func TestKindStrings(t *testing.T) {
	if ReadShared.String() != "read-shared" || Nack.String() != "nack" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("out-of-range kind has empty name")
	}
}

func TestMessageBytes(t *testing.T) {
	m := &Message{Kind: ReadShared}
	if m.Bytes() != HeaderBytes {
		t.Fatalf("header-only Bytes() = %d", m.Bytes())
	}
	m.HasData = true
	if m.Bytes() != HeaderBytes+topology.BlockSize {
		t.Fatalf("data Bytes() = %d", m.Bytes())
	}
}

func TestGatherContribution(t *testing.T) {
	g := &Gather{ID: 1, Home: 5}
	// A singlecast reply to the gather home is a contribution.
	reply := &Message{Kind: InvAck, Dest: directory.Single(5), Gather: g}
	if !reply.GatherContribution() {
		t.Error("reply to home not a contribution")
	}
	// The invalidation multicast carrying the gather is not.
	var e directory.Entry
	e.MapAdd(1)
	e.MapAdd(2)
	inv := &Message{Kind: Invalidate, Dest: e.Dest(), Gather: g}
	if inv.GatherContribution() {
		t.Error("multicast treated as contribution")
	}
	// A singlecast to a different node is not.
	other := &Message{Kind: InvAck, Dest: directory.Single(6), Gather: g}
	if other.GatherContribution() {
		t.Error("reply to non-home treated as contribution")
	}
	// No gather at all.
	plain := &Message{Kind: SlaveAck, Dest: directory.Single(5)}
	if plain.GatherContribution() {
		t.Error("gatherless message treated as contribution")
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Kind: HomeData, Src: 3, Dest: directory.Single(1), HasData: true, Master: 1}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
