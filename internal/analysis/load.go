package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// FileOf returns the syntax file containing pos, or nil. Interprocedural
// extractors use it to find the comment map that scopes suppression
// directives for a declaration they reached through the call graph.
func (p *Package) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Syntax {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go command would, from dir) and
// returns the matched packages parsed from source and typechecked.
// Dependencies — standard library included — are imported from the
// compiler export data `go list -deps -export` produces, so loading
// needs no network and no third-party loader.
//
// Test files and testdata directories are excluded, matching the go
// command's own pattern expansion.
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := check(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ListExports resolves paths (and their transitive dependencies) to
// compiler export data files, returning import path -> file. It is the
// piece of Load the analysistest harness reuses to typecheck fixture
// packages living outside the module's package graph.
func ListExports(dir string, paths ...string) (map[string]string, error) {
	exports, _, err := goList(dir, paths)
	return exports, err
}

// goList runs `go list -deps -export -json` and splits the output into
// export data locations (all packages) and analysis targets (the
// non-dependency, non-stdlib matches).
func goList(dir string, patterns []string) (map[string]string, []*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return exports, targets, nil
}

// ExportImporter returns a types.Importer that serves every import
// from the export data files in exports (import path -> file), using
// the standard library's gc importer to decode them.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses files and typechecks them as one package.
func check(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	return Check(fset, imp, importPath, syntax)
}

// Check typechecks already-parsed files as one package under
// importPath, resolving imports through imp. The analysistest harness
// uses it to load fixture packages that live outside the module's
// package graph (testdata directories).
func Check(fset *token.FileSet, imp types.Importer, importPath string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
