// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis model: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics.
//
// The repository builds its own driver instead of depending on
// x/tools. Packages are loaded from source and typechecked against
// compiler export data obtained from `go list -export` (see Load), so
// the suite needs nothing beyond the standard library and the go
// toolchain — the same way bazel-style drivers feed gcimporter.
//
// The subset implemented here is exactly what the cenju4-lint suite
// needs: syntax with comments, full type information, and positioned
// diagnostics. Analyzers written against it keep the x/tools shape
// (Name/Doc/Run, Pass.Reportf) so they could be ported to the real
// framework by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI filters. It
	// must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported problem, anchored to a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Program is the whole set of packages under analysis, with the
// interprocedural context the cross-package analyzers need: the
// module-wide call graph and a per-run cache for propagated facts.
// Every Pass handed to an analyzer carries the same Program, so an
// analyzer can compute module-wide facts once (under a cache key) and
// consult them from every per-package run.
type Program struct {
	Fset      *token.FileSet
	Packages  []*Package
	CallGraph *CallGraph

	cache map[string]any
}

// NewProgram builds the interprocedural context over pkgs, which must
// share one FileSet (the loader and the analysistest harness both
// guarantee this).
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	return &Program{
		Fset:      fset,
		Packages:  pkgs,
		CallGraph: buildCallGraph(pkgs),
		cache:     make(map[string]any),
	}
}

// Cached memoizes build under key for the lifetime of the program.
// Analyzers use it to compute module-wide fact maps exactly once even
// though their Run hook fires once per package.
func (p *Program) Cached(key string, build func() any) any {
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := build()
	p.cache[key] = v
	return v
}

// FactChain renders the call path from fn to the leaf evidence of the
// given fact kind: "a.F -> b.G: <desc> (file:line)". It returns "" if
// fn does not exhibit the fact.
func (p *Program) FactChain(facts FactMap, fn *types.Func, kind string) string {
	fp := facts.Lookup(fn, kind)
	if fp == nil {
		return ""
	}
	// Every FactPath on a chain carries the same leaf Fact (Propagate
	// copies it on inheritance), so fp already holds the evidence; the
	// loop only spells out the intermediate hops.
	chain := DisplayName(fn)
	for at := fp; at != nil && at.Via != nil; at = facts.Lookup(at.Via.Callee, kind) {
		chain += " -> " + DisplayName(at.Via.Callee)
	}
	pos := p.Fset.Position(fp.Fact.Pos)
	return fmt.Sprintf("%s: %s (%s:%d)", chain, fp.Fact.Desc, filepath.Base(pos.Filename), pos.Line)
}

// A Pass presents one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is the whole analysis run: every loaded package plus the
	// module-wide call graph. Per-package analyzers may ignore it;
	// interprocedural ones reach through it for facts about functions
	// in other packages.
	Program *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a diagnostic resolved to a file position, tagged with
// the analyzer that produced it.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package and returns the
// merged findings sorted by position. The packages are analyzed as one
// Program: interprocedural analyzers see the module-wide call graph,
// so running over a subset of the module weakens their transitive
// checks (the driver's default pattern is ./... for exactly this
// reason).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	prog := NewProgram(pkgs[0].Fset, pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   prog,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
