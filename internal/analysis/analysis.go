// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis model: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics.
//
// The repository builds its own driver instead of depending on
// x/tools. Packages are loaded from source and typechecked against
// compiler export data obtained from `go list -export` (see Load), so
// the suite needs nothing beyond the standard library and the go
// toolchain — the same way bazel-style drivers feed gcimporter.
//
// The subset implemented here is exactly what the cenju4-lint suite
// needs: syntax with comments, full type information, and positioned
// diagnostics. Analyzers written against it keep the x/tools shape
// (Name/Doc/Run, Pass.Reportf) so they could be ported to the real
// framework by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI filters. It
	// must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported problem, anchored to a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass presents one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a diagnostic resolved to a file position, tagged with
// the analyzer that produced it.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package and returns the
// merged findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
