// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against expectations written in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest
// on top of this repository's dependency-free analysis framework.
//
// A fixture is a directory of Go files (conventionally under a
// testdata directory, which the go tool — and therefore the lint
// driver — never builds). Expectations ride on the offending line:
//
//	switch k { // want `switch over msg.Kind is not exhaustive`
//
// Each want comment carries one or more Go string literals, each a
// regular expression that must match a diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test. Fixtures may import
// module and standard-library packages — dependencies are resolved
// through `go list -export`, like the real driver.
//
// Because fixtures sit outside the module's package graph, a fixture
// that must appear to the analyzer as a particular package (e.g. to
// land inside the determinism scope) declares its import path with a
// directive comment:
//
//	//lintfixture:path cenju4/internal/core
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cenju4/internal/analysis"
)

// pathDirective pins a fixture package's import path.
const pathDirective = "//lintfixture:path "

// Run applies the analyzer to the fixture package in dir and reports
// any mismatch against the fixture's want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunDirs(t, a, dir)
}

// RunDirs applies the analyzer to a multi-package fixture: each dir is
// typechecked as one package, in the given order, and a later fixture
// may import an earlier one by its declared import path (the
// //lintfixture:path directive, or the default
// cenju4/lintfixture/<base>). All packages are analyzed as one program
// — this is how the interprocedural analyzers' cross-package fact
// propagation is exercised under test — and want comments are checked
// across every fixture file.
func RunDirs(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	pkgs, err := LoadDirs(dirs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, dirs, err)
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		e, err := expectations(pkg)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, e...)
	}
	for _, f := range findings {
		if !claim(expects, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// LoadDirs parses and typechecks fixture directories in order under
// one shared FileSet, resolving imports among them in memory and
// everything else through `go list -export` artifacts. Tests that need
// to run analyzers over package subsets (e.g. to prove a violation is
// only visible with cross-package facts) load with this and call
// analysis.RunAnalyzers themselves.
func LoadDirs(dirs ...string) ([]*analysis.Package, error) {
	fset := token.NewFileSet()
	fixtures := make(map[string]*types.Package)
	exports := make(map[string]string)
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := load(fset, fixtures, exports, dir)
		if err != nil {
			return nil, err
		}
		fixtures[pkg.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// fixtureImporter serves sibling fixture packages from memory and
// everything else from export data.
type fixtureImporter struct {
	fixtures map[string]*types.Package
	fallback types.Importer
}

func (i fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.fixtures[path]; ok {
		return p, nil
	}
	return i.fallback.Import(path)
}

// load parses and typechecks one fixture directory as a package,
// against previously loaded sibling fixtures and the accumulated
// export data.
func load(fset *token.FileSet, fixtures map[string]*types.Package, exports map[string]string, dir string) (*analysis.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)

	var syntax []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}

	pkgPath := "cenju4/lintfixture/" + filepath.Base(dir)
	if p := directivePath(syntax); p != "" {
		pkgPath = p
	}

	var external []string
	for _, path := range imports(syntax) {
		if _, ok := fixtures[path]; ok {
			continue
		}
		if _, ok := exports[path]; ok {
			continue
		}
		external = append(external, path)
	}
	if err := mergeExportData(exports, dir, external); err != nil {
		return nil, err
	}
	imp := fixtureImporter{
		fixtures: fixtures,
		fallback: analysis.ExportImporter(fset, exports),
	}
	return analysis.Check(fset, imp, pkgPath, syntax)
}

// directivePath returns the lintfixture:path override, if any file
// declares one.
func directivePath(files []*ast.File) string {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, pathDirective) {
					return strings.TrimSpace(strings.TrimPrefix(c.Text, pathDirective))
				}
			}
		}
	}
	return ""
}

// imports collects the distinct import paths across the fixture files.
func imports(files []*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// mergeExportData resolves the given imports (and their transitive
// dependencies) to compiler export data files via `go list -export`,
// run from the enclosing module, merging them into exports.
func mergeExportData(exports map[string]string, dir string, paths []string) error {
	if len(paths) == 0 {
		return nil
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return err
	}
	m, err := analysis.ListExports(root, paths...)
	if err != nil {
		return err
	}
	for path, file := range m { //cenju4:order-insensitive per-key merge
		exports[path] = file
	}
	return nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// expectation is one parsed want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// expectations parses every want comment in the fixture.
func expectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parseWant reads the sequence of Go string literals after "want",
// each compiled as a regexp.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		lit, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("want clause: bad string literal at %q", s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("want clause: %v", err)
		}
		out = append(out, re)
		s = s[len(lit):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want clause with no pattern")
	}
	return out, nil
}

// claim marks the first unmet expectation matching the finding.
func claim(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if e.met || e.file != f.Position.Filename || e.line != f.Position.Line {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.met = true
			return true
		}
	}
	return false
}
