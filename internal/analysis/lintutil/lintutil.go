// Package lintutil holds the pieces the cenju4-lint analyzers share:
// enum discovery over go/types, wall-clock and rand call matching, and
// suppression-comment lookup.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePrefix scopes enum exhaustiveness to types declared in this
// module; switches over stdlib or third-party enums are not our
// protocol tables.
const ModulePrefix = "cenju4"

// EnumConst is one constant of an enum type.
type EnumConst struct {
	Name string
	Val  int64
}

// Enum describes a named integer type with a package-level constant
// set — the shape of msg.Kind, cache.LineState, directory.State and
// the rest of the protocol's transition-table domains.
type Enum struct {
	Type   *types.Named
	Consts []EnumConst // sorted by value, duplicates removed (first name wins)
}

// Name returns the qualified type name (pkg.Type).
func (e *Enum) Name() string {
	obj := e.Type.Obj()
	return obj.Pkg().Name() + "." + obj.Name()
}

// MaxVal returns the largest constant value.
func (e *Enum) MaxVal() int64 {
	return e.Consts[len(e.Consts)-1].Val
}

// Contiguous reports whether the constants cover 0..MaxVal without
// gaps — the precondition for an index-synchronized name table.
func (e *Enum) Contiguous() bool {
	for i, c := range e.Consts {
		if c.Val != int64(i) {
			return false
		}
	}
	return true
}

// EnumOf reports whether t is an enum declared in this module: a named
// integer type with at least two package-level constants. It returns
// nil otherwise. Constants of imported packages are visible only if
// exported (export data omits unexported ones), which holds for every
// protocol enum in the tree.
func EnumOf(t types.Type) *Enum {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 || basic.Info()&types.IsBoolean != 0 {
		return nil
	}
	return enumConsts(named)
}

func inModule(path string) bool {
	return path == ModulePrefix || strings.HasPrefix(path, ModulePrefix+"/")
}

func enumConsts(named *types.Named) *Enum {
	scope := named.Obj().Pkg().Scope()
	seen := make(map[int64]bool)
	var consts []EnumConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constInt64(c)
		if !exact || seen[v] {
			continue
		}
		seen[v] = true
		consts = append(consts, EnumConst{Name: name, Val: v})
	}
	if len(consts) < 2 {
		return nil
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Val < consts[j].Val })
	return &Enum{Type: named, Consts: consts}
}

func constInt64(c *types.Const) (int64, bool) {
	return constant.Int64Val(c.Val())
}

// PkgFunc resolves a call of the form pkg.Fn where pkg is an imported
// package named by path, returning the function name and true.
func PkgFunc(info *types.Info, call *ast.CallExpr, path string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// PanickingClause reports whether the case clause's statement list
// contains a direct call to the builtin panic.
func PanickingClause(info *types.Info, cc *ast.CaseClause) bool {
	for _, stmt := range cc.Body {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	return false
}

// SuppressedLines collects the lines carrying (or directly above) a
// comment containing directive, e.g. "cenju4:order-insensitive". A
// range statement on line N is suppressed if the directive appears on
// line N or N-1.
func SuppressedLines(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

// WallClock lists the time-package functions that read or depend on
// the host clock (shared by the determinism and simtime analyzers, for
// both their direct checks and the call-graph facts they propagate).
// Pure value constructors (time.Duration arithmetic) are not listed.
var WallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// PackageLevelVar reports whether obj is a package-level variable —
// the shared mutable state the pdessafety analyzer bans worker
// closures from reaching.
func PackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// RootIdent unwraps an assignable expression to its root identifier:
// results[i], *out, s.n and (x).f all resolve to the variable being
// (indirectly) written through. Returns nil for expressions with no
// identifier root (function call results, composite literals).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// SimPackages is the set of packages whose event ordering defines a
// simulation outcome; the determinism and simtime analyzers apply
// their strictest rules inside them. A seed or replay is only
// reproducible if these packages are bit-deterministic (the PR 1
// fuzzer's byte-identical replay contract).
var SimPackages = map[string]bool{
	"cenju4/internal/core":      true,
	"cenju4/internal/sim":       true,
	"cenju4/internal/machine":   true,
	"cenju4/internal/network":   true,
	"cenju4/internal/directory": true,
	"cenju4/internal/npb":       true,
	// The PDES coordinator must be bit-deterministic by construction:
	// its whole contract is that a K-sharded run digests identically to
	// the sequential kernel, so it gets the strict simulation rules.
	"cenju4/internal/psim": true,
	// Fault injection must be exactly as deterministic as the traffic
	// it perturbs: every drop/dup/delay/corrupt decision derives from
	// the (plan, seed, message) alone, so a chaos run replays
	// byte-identically at any -parallel level.
	"cenju4/internal/faults": true,
	// Observability must be as deterministic as the simulation it
	// reports on: metric reports and trace exports are byte-compared
	// across runs and across -parallel settings.
	"cenju4/internal/metrics": true,
	"cenju4/internal/trace":   true,

	// Deliberately NOT listed: cenju4/internal/serve and the cmd/
	// binaries. The experiment service is wall-clock-legitimate —
	// request latencies, job timeouts, LRU recency and drain deadlines
	// are service behavior, not simulation outcomes — so the simtime
	// analyzer's wall-clock ban would flag exactly the code that is
	// supposed to read the clock. Its determinism obligation is
	// narrower and enforced elsewhere: the payload bytes cached for a
	// digest must be identical wherever they were computed, which
	// internal/serve's tests and the CI serve-soak job assert directly.
	// The remaining analyzers (determinism's runner-closure rule,
	// exhaustiveswitch, enumnames) are module-wide and still cover it.
}
