package analysis

import "testing"

// TestLoadModulePackages exercises the export-data loading path against
// the real module: the msg package must typecheck with its transitive
// dependencies imported from `go list -export` artifacts.
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/msg", "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Syntax) == 0 {
			t.Errorf("%s: no syntax", p.ImportPath)
		}
		if p.Types == nil || p.Types.Scope().Lookup("Kind") == nil && p.ImportPath == "cenju4/internal/msg" {
			t.Errorf("%s: missing type info", p.ImportPath)
		}
	}
}

// TestLoadPatternAll loads every package in the module, the same call
// the cenju4-lint driver makes.
func TestLoadPatternAll(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
}
