// Package enumnames keeps string-name tables index-synchronized with
// the const blocks they describe.
//
// The repository's convention is a table named after its enum —
// msg.Kind has kindNames, fuzz.Pattern has patternNames — consumed by
// the String method. Adding an enum constant without extending the
// table silently shifts or truncates rendered names (and, for the
// fuzzer's byte-identical reports, changes output only on the new
// value's first appearance — the worst kind of drift to spot in a
// diff). The analyzer checks:
//
//   - array/slice tables ("<enum>Names = [...]string{...}"): the
//     element count must equal the enum's max constant value + 1, and
//     the enum must be gap-free, since the table is indexed by value
//   - map tables keyed by an enum type: every declared constant must
//     appear as a key
package enumnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Analyzer is the enumnames pass.
var Analyzer = &analysis.Analyzer{
	Name: "enumnames",
	Doc:  "enum string-name tables must cover every declared constant",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				checkSpec(pass, vs)
			}
		}
	}
	return nil
}

func checkSpec(pass *analysis.Pass, vs *ast.ValueSpec) {
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		return
	}
	name := vs.Names[0].Name
	cl, ok := vs.Values[0].(*ast.CompositeLit)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Array, *types.Slice:
		if !strings.HasSuffix(name, "Names") {
			return
		}
		checkIndexedTable(pass, vs, name, cl)
	case *types.Map:
		if enum := lintutil.EnumOf(t.Key()); enum != nil && strings.HasSuffix(name, "Names") {
			checkMapTable(pass, vs, name, cl, enum)
		}
	}
}

// checkIndexedTable matches "<enum>Names" against an enum declared in
// the same package (kindNames -> Kind) and compares lengths.
func checkIndexedTable(pass *analysis.Pass, vs *ast.ValueSpec, name string, cl *ast.CompositeLit) {
	enum := enumByName(pass, strings.TrimSuffix(name, "Names"))
	if enum == nil {
		return
	}
	if !enum.Contiguous() {
		pass.Reportf(vs.Pos(),
			"%s indexes by %s value, but the enum's constants have gaps (0..%d)",
			name, enum.Name(), enum.MaxVal())
		return
	}
	want := int(enum.MaxVal()) + 1
	if len(cl.Elts) != want {
		pass.Reportf(vs.Pos(),
			"%s has %d entries but %s declares %d constants; the table and const block drifted apart",
			name, len(cl.Elts), enum.Name(), want)
	}
}

// checkMapTable verifies every enum constant appears as a key.
func checkMapTable(pass *analysis.Pass, vs *ast.ValueSpec, name string, cl *ast.CompositeLit, enum *lintutil.Enum) {
	present := make(map[int64]bool)
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return
		}
		cv := pass.TypesInfo.Types[kv.Key].Value
		if cv == nil || cv.Kind() != constant.Int {
			return // non-constant key: not a static table
		}
		if v, exact := constant.Int64Val(cv); exact {
			present[v] = true
		}
	}
	var missing []string
	for _, c := range enum.Consts {
		if !present[c.Val] {
			missing = append(missing, c.Name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(vs.Pos(), "%s is missing entries for %s",
			name, strings.Join(missing, ", "))
	}
}

// enumByName finds an enum type in the package being analyzed whose
// name matches prefix case-insensitively (kindNames' prefix "kind"
// matches type Kind).
func enumByName(pass *analysis.Pass, prefix string) *lintutil.Enum {
	scope := pass.Pkg.Scope()
	for _, n := range scope.Names() {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok || !strings.EqualFold(tn.Name(), prefix) {
			continue
		}
		if enum := lintutil.EnumOf(tn.Type()); enum != nil {
			return enum
		}
	}
	return nil
}
