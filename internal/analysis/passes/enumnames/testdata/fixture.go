// Fixture for the enumnames analyzer: string-name tables must stay
// index-synchronized with their const blocks.
package fixture

// Color's table is short one entry: the silent-drift case the
// analyzer exists for.
type Color uint8

const (
	ColorRed Color = iota
	ColorGreen
	ColorBlue
)

var colorNames = [...]string{"red", "green"} // want `colorNames has 2 entries but fixture.Color declares 3 constants`

// Shade's table is complete.
type Shade uint8

const (
	ShadeLight Shade = iota
	ShadeDark
)

var shadeNames = [...]string{"light", "dark"}

// Tone uses a map table missing a key.
type Tone uint8

const (
	ToneLow Tone = iota
	ToneMid
	ToneHigh
)

var toneNames = map[Tone]string{ // want `toneNames is missing entries for ToneHigh`
	ToneLow: "low",
	ToneMid: "mid",
}

// Pitch's map table is complete.
type Pitch uint8

const (
	PitchFlat Pitch = iota
	PitchSharp
)

var pitchNames = map[Pitch]string{
	PitchFlat:  "flat",
	PitchSharp: "sharp",
}

// Mask's constants have gaps, so an index-synchronized table cannot
// exist at all.
type Mask uint8

const (
	MaskA Mask = 1
	MaskB Mask = 4
)

var maskNames = []string{"a", "b"} // want `maskNames indexes by fixture.Mask value, but the enum's constants have gaps`

// otherNames has no matching enum: ignored.
var otherNames = []string{"x", "y"}

// notATable is not a Names var: ignored even though Color is short.
var notATable = []string{"red"}
