package enumnames_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/enumnames"
)

func TestEnumNames(t *testing.T) {
	analysistest.Run(t, "testdata", enumnames.Analyzer)
}
