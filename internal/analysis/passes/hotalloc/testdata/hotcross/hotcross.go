// Root package for the cross-package reachability test: the hot root
// reaches coldlib.NewThing through a local helper, so the allocation
// two hops away — in another package — is flagged there.
package hotcross

import "cenju4/lintfixture/coldlib"

//cenju4:hotpath
func spin(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += build(i)
	}
	return total
}

func build(i int) int {
	t := coldlib.NewThing(i)
	return coldlib.Size(t)
}
