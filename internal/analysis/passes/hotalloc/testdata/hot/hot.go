// Fixture for the hotalloc allocation taxonomy inside one package: a
// marked root, a helper it reaches, a cold function the analyzer must
// ignore, and the exemptions (panic paths, amortized appends, justified
// suppressions).
package hot

import "fmt"

type entry struct {
	id   int
	next *entry
}

type queue struct {
	items []int
}

//cenju4:hotpath
func fire(q *queue, n int) int {
	e := &entry{id: n}            // want `hot path: composite literal escapes to the heap \(&T\{\.\.\.\}\) in hot\.fire`
	p := new(entry)               // want `hot path: new\(\.\.\.\) heap allocation in hot\.fire`
	buf := make([]int, 0, n)      // want `hot path: make allocates in hot\.fire`
	names := []string{"a", "b"}   // want `hot path: slice literal allocates its backing array in hot\.fire`
	index := map[int]int{}        // want `hot path: map literal allocates in hot\.fire`
	s := fmt.Sprintf("%d", n)     // want `hot path: fmt\.Sprintf formats and boxes its arguments in hot\.fire`
	cb := func() int { return n } // want `hot path: closure captures variables and allocates per evaluation in hot\.fire`

	var grown []int
	grown = append(grown, n) // want `hot path: append growth without preallocation in hot\.fire`

	// Amortized in-place growth of structure-owned capacity: allowed.
	q.items = append(q.items, n)
	// Appending to a slice created by a sized make in this function:
	// the make was the preallocation, the appends ride its capacity.
	buf = append(buf, n)

	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // cold failure path: exempt
	}
	return e.id + p.id + len(buf) + len(names) + len(index) + len(s) + cb() + len(grown) + helper(n)
}

// helper is not marked, but it is reachable from the root — its
// allocation is flagged with the path that makes it hot.
func helper(n int) int {
	spare := &entry{id: n} // want `hot path: composite literal escapes to the heap \(&T\{\.\.\.\}\) in hot\.helper \(reachable from //cenju4:hotpath root: hot\.fire -> hot\.helper\)`
	return spare.id
}

// justified shows the suppression: the allocation rides the root's
// reachable set but carries an alloc-ok with a reason.
//
//cenju4:hotpath
func justified(n int) *entry {
	//cenju4:alloc-ok one-time warmup allocation, reused for the run
	return &entry{id: n}
}

// cold is reachable from nothing marked: allocate freely.
func cold(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
