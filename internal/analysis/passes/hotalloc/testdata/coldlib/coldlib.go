// Helper package for the cross-package reachability test: a perfectly
// reasonable constructor that becomes a hot-path violation only because
// a marked root in another package calls it. The diagnostic lands here,
// at the allocation site, with the chain from the root.
package coldlib

type Thing struct {
	ID int
}

func NewThing(id int) *Thing {
	return &Thing{ID: id} // want `hot path: composite literal escapes to the heap \(&T\{\.\.\.\}\) in coldlib\.NewThing \(reachable from //cenju4:hotpath root: hotcross\.spin -> hotcross\.build -> coldlib\.NewThing\)`
}

// Free of allocations: reachable but clean.
func Size(t *Thing) int {
	return t.ID
}
