package hotalloc_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/hotalloc"
)

// TestAllocationTaxonomy checks every allocation shape the analyzer
// knows — and the exemptions (panic paths, amortized appends, sized
// makes, alloc-ok suppressions, unreachable functions) — inside one
// package.
func TestAllocationTaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata/hot", hotalloc.Analyzer)
}

// TestCrossPackageReach checks that reachability crosses package
// boundaries: a root in hotcross taints a constructor in coldlib, and
// the diagnostic is reported at the allocation site with the root path.
func TestCrossPackageReach(t *testing.T) {
	analysistest.RunDirs(t, hotalloc.Analyzer,
		"testdata/coldlib", "testdata/hotcross")
}
