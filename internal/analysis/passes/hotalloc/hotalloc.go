// Package hotalloc enforces the event kernel's allocation discipline:
// a function marked with a "//cenju4:hotpath" comment (on or directly
// above its declaration) runs per simulated event or per message hop,
// and the ROADMAP throughput target (≥10M protocol messages/sec) dies
// by a thousand cuts if such code — or anything it statically calls,
// in any package — allocates per invocation.
//
// The analyzer computes the set of module functions reachable from the
// hotpath roots over the module call graph and flags, inside each
// reachable function, the allocation sites the Go compiler cannot
// elide:
//
//   - composite literals that escape: &T{...}, new(T), and slice/map
//     literals ([]T{...} always heap-allocates its backing array)
//   - make of a slice, map or channel
//   - append growth without preallocation: append whose destination is
//     a function-local slice never created by a capacity-carrying
//     make(T, len, cap) in the same function. Appends that grow a
//     field, parameter or captured slice in place are allowed — those
//     amortize into the structure's standing capacity (the event pool,
//     the calendar-queue buckets, a caller-provided buffer)
//   - fmt calls, whose variadic ...any parameters box their arguments
//     (and whose formatting allocates the result)
//   - capturing closures: a func literal referencing variables of the
//     enclosing function allocates a closure object per evaluation
//
// Allocations inside the arguments of a panic call are exempt: a
// terminating failure path is not a hot path. A deliberate, amortized
// allocation (growing a pool chunk, a rare rebuild) is suppressed with
// a "//cenju4:alloc-ok" comment on or directly above the site — the
// comment should say why the cost amortizes; see DESIGN.md §6 for when
// that is acceptable.
//
// Reachability follows static calls only: closures handed to the event
// queue and interface dispatch are invisible, so handlers scheduled by
// hot code must be marked hot themselves if they matter.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Directive marks a function declaration as a hot-path root.
const Directive = "cenju4:hotpath"

// SuppressDirective silences one allocation site (with justification).
const SuppressDirective = "cenju4:alloc-ok"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "no per-event heap allocation in functions reachable from " +
		"//cenju4:hotpath roots (escaping literals, make, append " +
		"growth, fmt boxing, capturing closures)",
	Run: run,
}

// finding is one allocation site, precomputed module-wide and reported
// by the pass whose package owns the site.
type finding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

func run(pass *analysis.Pass) error {
	for _, f := range moduleFindings(pass.Program) {
		if f.pkgPath == pass.Pkg.Path() {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// moduleFindings computes (once per program) every allocation site in
// the hotpath-reachable set.
func moduleFindings(prog *analysis.Program) []finding {
	return prog.Cached("hotalloc.findings", func() any {
		var roots []*analysis.CGNode
		for _, n := range prog.CallGraph.Nodes() {
			if isHot(n) {
				roots = append(roots, n)
			}
		}
		parent := prog.CallGraph.ReachableFrom(roots)
		var out []finding
		for _, n := range prog.CallGraph.Nodes() { // deterministic order
			if _, ok := parent[n]; !ok {
				continue
			}
			out = append(out, checkFunc(prog, parent, n)...)
		}
		return out
	}).([]finding)
}

// isHot reports whether the node's declaration carries the hotpath
// directive on or directly above it (doc comment lines included).
func isHot(n *analysis.CGNode) bool {
	file := n.Pkg.FileOf(n.Decl.Pos())
	if file == nil {
		return false
	}
	marked := lintutil.SuppressedLines(n.Pkg.Fset, file, Directive)
	return marked[n.Pkg.Fset.Position(n.Decl.Pos()).Line]
}

// checkFunc scans one reachable function for allocation sites.
func checkFunc(prog *analysis.Program, parent map[*analysis.CGNode]*analysis.CGEdge, n *analysis.CGNode) []finding {
	file := n.Pkg.FileOf(n.Decl.Pos())
	var suppressed map[int]bool
	if file != nil {
		suppressed = lintutil.SuppressedLines(n.Pkg.Fset, file, SuppressDirective)
	}
	info := n.Pkg.TypesInfo
	sigObjs := signatureObjects(info, n.Decl)
	preallocated := capacityMakes(info, n.Decl.Body)

	where := ""
	if parent[n] != nil { // not itself a root: spell the path from one
		where = " (reachable from //cenju4:hotpath root: " + analysis.RootPath(parent, n) + ")"
	}

	var out []finding
	report := func(pos token.Pos, desc string) {
		if suppressed[n.Pkg.Fset.Position(pos).Line] {
			return
		}
		out = append(out, finding{
			pkgPath: n.Pkg.ImportPath,
			pos:     pos,
			msg: "hot path: " + desc + " in " + analysis.DisplayName(n.Fn) + where +
				"; hoist it, preallocate, or justify with \"" + SuppressDirective + "\"",
		})
	}

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if isPanic(info, node) {
				return false // failure paths that terminate the run are cold
			}
			switch builtinName(info, node) {
			case "new":
				report(node.Pos(), "new(...) heap allocation")
			case "make":
				report(node.Pos(), "make allocates")
			case "append":
				if growsWithoutPrealloc(info, node, sigObjs, preallocated) {
					report(node.Pos(), "append growth without preallocation")
				}
			}
			if name, ok := lintutil.PkgFunc(info, node, "fmt"); ok {
				report(node.Pos(), "fmt."+name+" formats and boxes its arguments")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(node.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(node.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			if captures(info, n.Decl, node) {
				report(node.Pos(), "closure captures variables and allocates per evaluation")
			}
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	return out
}

// signatureObjects collects the receiver, parameter and result
// variables of fd — roots that exempt an append from the
// local-growth rule (the caller owns their capacity).
func signatureObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	add(fd.Type.Results)
	return objs
}

// capacityMakes collects local variables that are, anywhere in the
// function, assigned a make with an explicit capacity (or length —
// a sized make is a preallocation): appends to them amortize.
func capacityMakes(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || builtinName(info, call) != "make" || len(call.Args) < 2 || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					objs[obj] = true
				}
			}
		}
		return true
	})
	return objs
}

// growsWithoutPrealloc reports whether the append's destination is a
// function-local slice with no sized make: each growth past the
// doubling threshold allocates, and nothing amortizes it across
// events.
func growsWithoutPrealloc(info *types.Info, call *ast.CallExpr, sigObjs, preallocated map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id := lintutil.RootIdent(call.Args[0])
	if id == nil || id.Name == "_" {
		return false
	}
	// A selector/index root (s.free, q.buckets[b]) grows structure-owned
	// capacity in place: amortized, allowed.
	if _, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); !isIdent {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil || sigObjs[obj] || preallocated[obj] {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return true
}

// captures reports whether lit references a variable declared in the
// enclosing function outside the literal itself. References to
// package-level state do not allocate (the closure is static).
func captures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
			found = true
		}
		return true
	})
	return found
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
