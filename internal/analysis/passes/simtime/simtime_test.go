package simtime_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/simtime"
)

// TestHandlers checks the event-handler wall-clock rule in an
// ordinary package.
func TestHandlers(t *testing.T) {
	analysistest.Run(t, "testdata/handlers", simtime.Analyzer)
}

// TestSimPackageImportBan checks the "time" import ban inside the
// simulation package set.
func TestSimPackageImportBan(t *testing.T) {
	analysistest.Run(t, "testdata/simpkg", simtime.Analyzer)
}

// TestCrossPackageHelpers checks the interprocedural rule: an
// event-handler context that reaches time.Now/Since through a helper
// package is flagged at its call site with the chain to the leaf,
// while engine-free callers of the same helper stay clean.
func TestCrossPackageHelpers(t *testing.T) {
	analysistest.RunDirs(t, simtime.Analyzer,
		"testdata/clockhelper", "testdata/handlercross")
}
