package simtime_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/simtime"
)

// TestHandlers checks the event-handler wall-clock rule in an
// ordinary package.
func TestHandlers(t *testing.T) {
	analysistest.Run(t, "testdata/handlers", simtime.Analyzer)
}

// TestSimPackageImportBan checks the "time" import ban inside the
// simulation package set.
func TestSimPackageImportBan(t *testing.T) {
	analysistest.Run(t, "testdata/simpkg", simtime.Analyzer)
}
