// Package simtime separates the two clocks in the codebase. The
// simulator has exactly one time base — sim.Engine's virtual
// nanosecond clock, advanced by the event queue — and wall-clock time
// may never leak into it:
//
//   - the simulation packages (core, sim, machine, network,
//     directory, npb, metrics, trace) must not import "time" at all;
//     latencies and delays there are sim.Time values
//   - anywhere in the module, a function with access to a *sim.Engine
//     (an Engine parameter, or a method on a struct holding one) is
//     an event-handler context: it must not call time.Now, time.Since
//     or friends — durations measured there must come from
//     Engine.Now deltas
//
// The second rule is interprocedural: an event-handler context must
// not reach the wall clock through helpers either, in this package or
// any other. The analyzer propagates a "reads the wall clock" fact
// bottom-up over the module call graph and flags handler calls into
// tainted helpers with the full call chain. Helpers that are
// themselves event-handler contexts are not re-reported at the call
// site — they get their own diagnostics.
//
// Drivers without an engine in scope (cmd/cenju4-bench timing a whole
// run of the real process) may still use the wall clock.
package simtime

import (
	"go/ast"
	"go/types"
	"strconv"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Analyzer is the simtime pass.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "event-handler contexts must use sim.Engine virtual time, " +
		"never the wall clock — directly or through helpers " +
		"(call-graph facts)",
	Run: run,
}

const factWallClock = "simtime.wallclock"

func run(pass *analysis.Pass) error {
	simPkg := lintutil.SimPackages[pass.Pkg.Path()]
	facts := moduleFacts(pass.Program)
	for _, f := range pass.Files {
		if simPkg {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "time" {
					pass.Reportf(imp.Pos(),
						`simulation package %s must not import "time"; model time is sim.Time on the engine's virtual clock`,
						pass.Pkg.Path())
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasEngineAccess(pass.TypesInfo, fd) {
				continue
			}
			checkBody(pass, facts, fd)
		}
	}
	return nil
}

// moduleFacts computes (once per program) which module functions
// transitively read the wall clock.
func moduleFacts(prog *analysis.Program) analysis.FactMap {
	return prog.Cached("simtime.facts", func() any {
		return prog.CallGraph.Propagate(func(n *analysis.CGNode) []analysis.Fact {
			var facts []analysis.Fact
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := lintutil.PkgFunc(n.Pkg.TypesInfo, call, "time"); ok && lintutil.WallClock[name] {
					facts = append(facts, analysis.Fact{
						Kind: factWallClock,
						Desc: "calls time." + name,
						Pos:  call.Pos(),
					})
				}
				return true
			})
			return facts
		})
	}).(analysis.FactMap)
}

// checkBody flags wall-clock access inside an event-handler context:
// direct calls, and calls into module helpers that transitively reach
// the clock. Function literals nested in the handler (scheduled
// callbacks) are included: they run from the event queue.
func checkBody(pass *analysis.Pass, facts analysis.FactMap, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "time"); ok && lintutil.WallClock[name] {
			pass.Reportf(call.Pos(),
				"%s has access to a *sim.Engine but calls time.%s; event handlers must measure with the engine's virtual clock (Engine.Now deltas)",
				fd.Name.Name, name)
			return true
		}
		checkTransitive(pass, facts, fd, call)
		return true
	})
}

// checkTransitive flags handler calls into helpers that reach the wall
// clock. Helpers that are themselves event-handler contexts are
// skipped — the analyzer reports them where they are declared.
func checkTransitive(pass *analysis.Pass, facts analysis.FactMap, fd *ast.FuncDecl, call *ast.CallExpr) {
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if facts.Lookup(callee, factWallClock) == nil {
		return
	}
	node := pass.Program.CallGraph.Node(callee)
	if node != nil && hasEngineAccess(node.Pkg.TypesInfo, node.Decl) {
		return // the callee is its own event-handler context: flagged there
	}
	pass.Reportf(call.Pos(),
		"%s has access to a *sim.Engine but calls %s, which transitively reads the wall clock: %s; event handlers must measure with the engine's virtual clock",
		fd.Name.Name, analysis.DisplayName(callee),
		pass.Program.FactChain(facts, callee, factWallClock))
}

// hasEngineAccess reports whether fd can see a *sim.Engine: through a
// parameter, through its receiver being (a pointer to) Engine itself,
// or through a direct field of its receiver's struct type.
func hasEngineAccess(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if t, ok := info.Types[field.Type]; ok && typeReachesEngine(t.Type) {
				return true
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t, ok := info.Types[field.Type]; ok && isEngine(t.Type) {
				return true
			}
		}
	}
	return false
}

// isEngine matches sim.Engine and *sim.Engine.
func isEngine(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "cenju4/internal/sim"
}

// typeReachesEngine matches Engine itself and structs with a direct
// Engine-typed field (the Controller/Machine pattern: the engine rides
// in the struct, so every method is an event-handler context).
func typeReachesEngine(t types.Type) bool {
	if isEngine(t) {
		return true
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isEngine(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
