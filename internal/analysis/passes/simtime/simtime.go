// Package simtime separates the two clocks in the codebase. The
// simulator has exactly one time base — sim.Engine's virtual
// nanosecond clock, advanced by the event queue — and wall-clock time
// may never leak into it:
//
//   - the simulation packages (core, sim, machine, network,
//     directory, npb) must not import "time" at all; latencies and
//     delays there are sim.Time values
//   - anywhere in the module, a function with access to a *sim.Engine
//     (an Engine parameter, or a method on a struct holding one) is
//     an event-handler context: it must not call time.Now, time.Since
//     or friends — durations measured there must come from
//     Engine.Now deltas
//
// Drivers without an engine in scope (cmd/cenju4-bench timing a whole
// run of the real process) may still use the wall clock.
package simtime

import (
	"go/ast"
	"go/types"
	"strconv"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Analyzer is the simtime pass.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "event-handler contexts must use sim.Engine virtual time, " +
		"never the wall clock",
	Run: run,
}

var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true, "After": true,
}

func run(pass *analysis.Pass) error {
	simPkg := lintutil.SimPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if simPkg {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "time" {
					pass.Reportf(imp.Pos(),
						`simulation package %s must not import "time"; model time is sim.Time on the engine's virtual clock`,
						pass.Pkg.Path())
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasEngineAccess(pass, fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// checkBody flags wall-clock calls inside an event-handler context.
// Function literals nested in the handler (scheduled callbacks) are
// included: they run from the event queue.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "time"); ok && wallClock[name] {
			pass.Reportf(call.Pos(),
				"%s has access to a *sim.Engine but calls time.%s; event handlers must measure with the engine's virtual clock (Engine.Now deltas)",
				fd.Name.Name, name)
		}
		return true
	})
}

// hasEngineAccess reports whether fd can see a *sim.Engine: through a
// parameter, through its receiver being (a pointer to) Engine itself,
// or through a direct field of its receiver's struct type.
func hasEngineAccess(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if t, ok := pass.TypesInfo.Types[field.Type]; ok && typeReachesEngine(t.Type) {
				return true
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t, ok := pass.TypesInfo.Types[field.Type]; ok && isEngine(t.Type) {
				return true
			}
		}
	}
	return false
}

// isEngine matches sim.Engine and *sim.Engine.
func isEngine(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "cenju4/internal/sim"
}

// typeReachesEngine matches Engine itself and structs with a direct
// Engine-typed field (the Controller/Machine pattern: the engine rides
// in the struct, so every method is an event-handler context).
func typeReachesEngine(t types.Type) bool {
	if isEngine(t) {
		return true
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isEngine(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
