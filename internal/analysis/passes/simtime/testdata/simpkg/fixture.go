// Fixture for the simtime analyzer's import ban: a package posing as
// one of the simulation packages must not import "time" at all.
//
//lintfixture:path cenju4/internal/network
package fixture

import (
	"time" // want `simulation package cenju4/internal/network must not import "time"`
)

// Delay is wall-clock typed state that has no business in a
// simulation package.
var Delay = 5 * time.Millisecond
