// Fixture for the simtime analyzer's event-handler rule: any function
// that can see a *sim.Engine is an event-handler context and must not
// read the wall clock. This package keeps the default fixture path —
// outside the simulation set — so the "time" import itself is legal.
package fixture

import (
	"time"

	"cenju4/internal/sim"
)

// handler takes the engine directly.
func handler(eng *sim.Engine) sim.Time {
	_ = time.Now() // want `handler has access to a \*sim\.Engine but calls time\.Now`
	return eng.Now()
}

// node mirrors the Controller/Machine pattern: the engine rides in the
// struct, making every method an event-handler context.
type node struct {
	eng *sim.Engine
}

func (n *node) step() {
	time.Sleep(time.Millisecond) // want `step has access to a \*sim\.Engine but calls time\.Sleep`
}

// scheduled flags wall-clock reads inside callbacks bound for the
// event queue too.
func scheduled(eng *sim.Engine) {
	eng.After(5, func() {
		_ = time.Since(time.Time{}) // want `scheduled has access to a \*sim\.Engine but calls time\.Since`
	})
}

// virtual is the accepted pattern: measure with engine deltas.
func virtual(eng *sim.Engine, started sim.Time) sim.Time {
	return eng.Now() - started
}

// wallClockDriver has no engine in scope: a process-level driver may
// time the real world.
func wallClockDriver() time.Duration {
	start := time.Now()
	return time.Since(start)
}
