// Event-handler contexts that launder wall-clock reads through a
// helper package. The direct rule cannot see these — no time.* call
// appears in this file — so they exercise the call-graph facts.
package handlercross

import (
	"cenju4/internal/sim"
	"cenju4/lintfixture/clockhelper"
)

type controller struct {
	eng *sim.Engine
}

func (c *controller) onMessage() int64 {
	return clockhelper.ElapsedMillis() // want `onMessage has access to a \*sim\.Engine but calls clockhelper\.ElapsedMillis, which transitively reads the wall clock: clockhelper\.ElapsedMillis: calls time\.Since \(clockhelper\.go:\d+\)`
}

func step(eng *sim.Engine, x int64) int64 {
	return clockhelper.Pure(x) + clockhelper.ElapsedMillis() // want `step has access to a \*sim\.Engine but calls clockhelper\.ElapsedMillis, which transitively reads the wall clock`
}

// noEngine has no engine in scope: helpers reading the clock are its
// own business.
func noEngine() int64 {
	return clockhelper.ElapsedMillis()
}
