// Helper package that legitimately reads the wall clock: it is not a
// simulation package and has no engine in scope, so nothing is flagged
// here. Calling it from an event-handler context is the violation.
package clockhelper

import "time"

var epoch = time.Now()

// ElapsedMillis reads the wall clock.
func ElapsedMillis() int64 {
	return time.Since(epoch).Milliseconds()
}

// Pure is clean: no clock anywhere below it.
func Pure(x int64) int64 {
	return x * 2
}
