// Fixture for the determinism analyzer's scoping: this package keeps
// the default (non-simulation) fixture path, so wall clocks, map
// ranges and the global rand source are all allowed — drivers and
// reporting code are free to use them.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func mapRange(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
