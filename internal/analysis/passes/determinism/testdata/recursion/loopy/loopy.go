// Mutually recursive helpers: Ping and Pong form a strongly connected
// component in the call graph. Fact propagation must terminate on the
// cycle and still taint both functions (the map range sits in Pong;
// Ping acquires it around the loop).
package loopy

func Ping(m map[int]int, d int) int {
	if d <= 0 {
		return 0
	}
	return Pong(m, d-1)
}

func Pong(m map[int]int, d int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n + Ping(m, d-1)
}
