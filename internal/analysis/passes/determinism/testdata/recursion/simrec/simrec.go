// Simulation-scope caller of the mutually recursive helpers. Both
// entry points are tainted by the one map range inside the SCC, and
// the diagnostic chain stops at the function that holds the leaf.
//
//lintfixture:path cenju4/internal/machine
package simrec

import "cenju4/lintfixture/loopy"

func drive(m map[int]int) int {
	a := loopy.Ping(m, 4) // want `call from a simulation package to loopy\.Ping, which transitively ranges over a map: loopy\.Ping -> loopy\.Pong: ranges over map m \(loopy\.go:\d+\)`
	b := loopy.Pong(m, 4) // want `call from a simulation package to loopy\.Pong, which transitively ranges over a map: loopy\.Pong: ranges over map m \(loopy\.go:\d+\)`
	return a + b
}
