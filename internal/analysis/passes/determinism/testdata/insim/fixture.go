// Fixture for the determinism analyzer, posing as a simulation package
// via the path directive below: map ranges, wall-clock reads and the
// global math/rand source must all be flagged here.
//
//lintfixture:path cenju4/internal/core
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func mapRange(m map[int]int) int {
	sum := 0
	for k, v := range m { // want `range over map m in a simulation package: iteration order is randomized`
		sum += k + v
	}
	return sum
}

func mapRangeSuppressed(m map[int]int) int {
	sum := 0
	for _, v := range m { //cenju4:order-insensitive — commutative sum
		sum += v
	}
	return sum
}

func mapRangeSortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//cenju4:order-insensitive — keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sliceRange(s []int) int {
	sum := 0
	for _, v := range s { // slices iterate in order: fine
		sum += v
	}
	return sum
}

func wallClock() int64 {
	t := time.Now() // want `time.Now reads the wall clock in a simulation package`
	return t.Unix()
}

func wallElapsed(since time.Time) float64 {
	return time.Since(since).Seconds() // want `time.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the global math/rand source`
}

func globalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand.Shuffle uses the global math/rand source`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are the accepted pattern
	return rng.Intn(10)
}
