// Intermediate package: clean syntax, tainted facts. Every function
// here merely forwards to leafutil, proving facts propagate through
// packages that never touch a banned construct themselves.
package midlayer

import "cenju4/lintfixture/leafutil"

func Timestamp() int64 {
	return leafutil.Stamp()
}

func Total(m map[string]int) int {
	return leafutil.Sum(m)
}

func Noise() int {
	return leafutil.Jitter()
}

func CountKeys(m map[string]int) int {
	return leafutil.Keys(m)
}
