// Leaf helper package: the actual violations live here, two packages
// away from the simulation code that ultimately reaches them. Nothing
// is flagged in this package — it is not in the simulation scope — but
// each banned construct becomes a call-graph fact.
package leafutil

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Sum ranges a map with randomized iteration order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Jitter draws from the global math/rand source.
func Jitter() int {
	return rand.Intn(8)
}

// Keys ranges a map too, but the loop is marked order-insensitive at
// the leaf — so no fact is recorded and no caller is flagged.
func Keys(m map[string]int) int {
	n := 0
	//cenju4:order-insensitive counting is commutative
	for range m {
		n++
	}
	return n
}
