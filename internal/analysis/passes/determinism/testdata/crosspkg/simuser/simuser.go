// Simulation-scope fixture: calls into midlayer, which calls into
// leafutil, where the violations actually live. The per-package
// analyzer of old saw only this file — syntactically spotless — and
// reported nothing; the interprocedural analyzer flags each exit call
// with the chain down to the leaf.
//
//lintfixture:path cenju4/internal/core
package simuser

import "cenju4/lintfixture/midlayer"

func record(m map[string]int) int64 {
	t := midlayer.Timestamp() // want `call from a simulation package to midlayer\.Timestamp, which transitively reads the wall clock: midlayer\.Timestamp -> leafutil\.Stamp: calls time\.Now \(leafutil\.go:\d+\); thread sim virtual time through instead`
	_ = midlayer.Total(m)     // want `call from a simulation package to midlayer\.Total, which transitively ranges over a map: midlayer\.Total -> leafutil\.Sum: ranges over map m \(leafutil\.go:\d+\)`
	_ = midlayer.Noise()      // want `call from a simulation package to midlayer\.Noise, which transitively uses the global math/rand source: midlayer\.Noise -> leafutil\.Jitter: calls rand\.Intn \(leafutil\.go:\d+\)`
	return t
}

// Suppression applies at the leaf: leafutil.Keys marked its range
// order-insensitive, so the whole chain stays quiet.
func countOnly(m map[string]int) int {
	return midlayer.CountKeys(m)
}
