// Package determinism enforces the simulator's bit-reproducibility
// contract inside the simulation packages (core, sim, machine,
// network, directory, npb, metrics, trace): the same seed must replay
// byte-identically (the fuzzer's shrinking and -replay flows depend on
// it).
//
// Three sources of run-to-run variation are banned there:
//
//   - ranging over a map, whose iteration order is randomized by the
//     runtime and can leak into event order or rendered output; loops
//     that are provably order-insensitive may carry a
//     "cenju4:order-insensitive" comment on or directly above the
//     range statement
//   - wall-clock reads (time.Now, time.Since, ...), which make event
//     timing depend on the host
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...),
//     which is shared, lockable and seeded per-process; randomness
//     must flow through an explicitly seeded *rand.Rand so a seed in
//     a flag or config reproduces the stream
//
// The checks are interprocedural: besides the direct syntactic rules,
// the analyzer propagates "ranges a map" / "reads the wall clock" /
// "uses global math/rand" facts bottom-up over the module call graph
// (SCCs of mutually recursive helpers included), and flags any call
// from a simulation package into a helper — in any other package —
// that transitively reaches a violation. The diagnostic carries the
// full call chain down to the leaf, so a sim package cannot launder a
// time.Now through an innocent-looking utility. Violations whose leaf
// lives inside another simulation package are not re-reported at the
// call site: they are already flagged at the leaf (or at that
// package's own exit-boundary call).
//
// The worker-closure rule that historically lived here (no captured
// writes in runner.Map closures) moved to the pdessafety analyzer,
// which generalizes it interprocedurally.
package determinism

import (
	"go/ast"
	"go/types"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Directive suppresses the map-range rule for one statement — at the
// leaf: a helper package's order-insensitive range must carry the
// directive itself, which then also silences transitive reports at
// every simulation-package caller.
const Directive = "cenju4:order-insensitive"

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "simulation packages must not range over maps, read the wall " +
		"clock, or use the global math/rand source — directly or " +
		"through helpers in other packages (call-graph facts)",
	Run: run,
}

// Fact kinds propagated over the call graph.
const (
	factMapRange   = "determinism.maprange"
	factWallClock  = "determinism.wallclock"
	factGlobalRand = "determinism.globalrand"
)

// factKinds orders the kinds for deterministic reporting.
var factKinds = []string{factMapRange, factWallClock, factGlobalRand}

// seededRandOK lists the math/rand package functions that construct an
// explicitly seeded generator rather than touching the global source.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	if !lintutil.SimPackages[pass.Pkg.Path()] {
		return nil
	}
	facts := moduleFacts(pass.Program)
	for _, f := range pass.Files {
		suppressed := lintutil.SuppressedLines(pass.Fset, f, Directive)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n, suppressed)
			case *ast.CallExpr:
				checkCall(pass, n)
				checkTransitive(pass, facts, n)
			}
			return true
		})
	}
	return nil
}

// moduleFacts computes (once per program) which module functions
// directly or transitively range a map, read the wall clock, or touch
// the global rand source. Local extraction applies the suppression
// directive at the leaf, so an order-insensitive helper range never
// becomes a fact.
func moduleFacts(prog *analysis.Program) analysis.FactMap {
	return prog.Cached("determinism.facts", func() any {
		return prog.CallGraph.Propagate(localFacts)
	}).(analysis.FactMap)
}

func localFacts(n *analysis.CGNode) []analysis.Fact {
	file := n.Pkg.FileOf(n.Decl.Pos())
	var suppressed map[int]bool
	if file != nil {
		suppressed = lintutil.SuppressedLines(n.Pkg.Fset, file, Directive)
	}
	var facts []analysis.Fact
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.RangeStmt:
			tv, ok := n.Pkg.TypesInfo.Types[node.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if suppressed[n.Pkg.Fset.Position(node.For).Line] {
				return true
			}
			facts = append(facts, analysis.Fact{
				Kind: factMapRange,
				Desc: "ranges over map " + types.ExprString(node.X),
				Pos:  node.For,
			})
		case *ast.CallExpr:
			if name, ok := lintutil.PkgFunc(n.Pkg.TypesInfo, node, "time"); ok && lintutil.WallClock[name] {
				facts = append(facts, analysis.Fact{
					Kind: factWallClock,
					Desc: "calls time." + name,
					Pos:  node.Pos(),
				})
			}
			if name, ok := lintutil.PkgFunc(n.Pkg.TypesInfo, node, "math/rand"); ok && !seededRandOK[name] {
				facts = append(facts, analysis.Fact{
					Kind: factGlobalRand,
					Desc: "calls rand." + name,
					Pos:  node.Pos(),
				})
			}
		}
		return true
	})
	return facts
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, suppressed map[int]bool) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if suppressed[pass.Fset.Position(rs.For).Line] {
		return
	}
	pass.Reportf(rs.For,
		"range over map %s in a simulation package: iteration order is randomized and can reach event order; iterate sorted keys or mark the loop %q",
		types.ExprString(rs.X), Directive)
}

// checkCall flags direct violations: wall-clock and global-rand calls
// written in the simulation package itself.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "time"); ok && lintutil.WallClock[name] {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a simulation package; use sim.Engine virtual time", name)
	}
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "math/rand"); ok && !seededRandOK[name] {
		pass.Reportf(call.Pos(),
			"rand.%s uses the global math/rand source; draw from an explicitly seeded *rand.Rand plumbed from flags or config", name)
	}
}

// checkTransitive flags calls from a simulation package into a module
// function outside the simulation scope that transitively reaches a
// banned construct, reporting the full call chain. Callees inside the
// simulation scope are skipped: their violations are reported at the
// leaf (or at their own exit-boundary call), so every problem surfaces
// exactly once.
func checkTransitive(pass *analysis.Pass, facts analysis.FactMap, call *ast.CallExpr) {
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if lintutil.SimPackages[callee.Pkg().Path()] || callee.Pkg().Path() == pass.Pkg.Path() {
		return
	}
	remedy := map[string]string{
		factMapRange:   "iterate sorted keys at the leaf or mark its loop \"" + Directive + "\"",
		factWallClock:  "thread sim virtual time through instead",
		factGlobalRand: "plumb an explicitly seeded *rand.Rand through instead",
	}
	noun := map[string]string{
		factMapRange:   "ranges over a map",
		factWallClock:  "reads the wall clock",
		factGlobalRand: "uses the global math/rand source",
	}
	for _, kind := range factKinds {
		if facts.Lookup(callee, kind) == nil {
			continue
		}
		pass.Reportf(call.Pos(),
			"call from a simulation package to %s, which transitively %s: %s; %s",
			analysis.DisplayName(callee), noun[kind],
			pass.Program.FactChain(facts, callee, kind), remedy[kind])
	}
}
