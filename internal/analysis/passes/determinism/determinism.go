// Package determinism enforces the simulator's bit-reproducibility
// contract inside the simulation packages (core, sim, machine,
// network, directory, npb): the same seed must replay byte-identically
// (the fuzzer's shrinking and -replay flows depend on it).
//
// Three sources of run-to-run variation are banned there:
//
//   - ranging over a map, whose iteration order is randomized by the
//     runtime and can leak into event order or rendered output; loops
//     that are provably order-insensitive may carry a
//     "cenju4:order-insensitive" comment on or directly above the
//     range statement
//   - wall-clock reads (time.Now, time.Since, ...), which make event
//     timing depend on the host
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...),
//     which is shared, lockable and seeded per-process; randomness
//     must flow through an explicitly seeded *rand.Rand so a seed in
//     a flag or config reproduces the stream
//
// A fourth rule applies in every package, not just the simulation
// scope: a worker closure handed to runner.Map or runner.MapEach must
// not write variables captured from the enclosing scope. Workers run
// on concurrent goroutines in scheduler order, so a captured write is
// at best a data race and at worst a silent source of
// completion-order-dependent results; workers communicate through
// their return value (merged in run-index order), and ordered side
// effects belong in MapEach's each callback, which the runner
// serializes in ascending index order.
package determinism

import (
	"go/ast"
	"go/types"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Directive suppresses the map-range rule for one statement.
const Directive = "cenju4:order-insensitive"

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "simulation packages must not range over maps, read the wall " +
		"clock, or use the global math/rand source; runner worker " +
		"closures must not write captured variables",
	Run: run,
}

// runnerPath is the worker-pool package whose Map/MapEach worker
// closures must be free of captured writes.
const runnerPath = "cenju4/internal/runner"

// wallClock lists the time functions that read or depend on the host
// clock. Pure value constructors (time.Duration arithmetic) are not
// listed, but simulation packages have no business importing time at
// all — the simtime analyzer enforces that separately.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandOK lists the math/rand package functions that construct an
// explicitly seeded generator rather than touching the global source.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	// The runner worker-closure rule guards every caller of the worker
	// pool (fuzz, experiments, ...), so it runs before the simulation
	// scope gate.
	for _, f := range pass.Files {
		checkRunnerClosures(pass, f)
	}
	if !lintutil.SimPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		suppressed := lintutil.SuppressedLines(pass.Fset, f, Directive)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n, suppressed)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, suppressed map[int]bool) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if suppressed[pass.Fset.Position(rs.For).Line] {
		return
	}
	pass.Reportf(rs.For,
		"range over map %s in a simulation package: iteration order is randomized and can reach event order; iterate sorted keys or mark the loop %q",
		types.ExprString(rs.X), Directive)
}

// checkRunnerClosures finds function literals passed as the worker fn
// of runner.Map / runner.MapEach (the third argument) and flags writes
// to variables declared outside the literal. The each callback of
// MapEach is exempt: the runner invokes it serially, in ascending run
// order, under its own lock, precisely so drivers can accumulate
// ordered output there.
func checkRunnerClosures(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := lintutil.PkgFunc(pass.TypesInfo, call, runnerPath)
		if !ok || (name != "Map" && name != "MapEach") || len(call.Args) < 3 {
			return true
		}
		if fl, ok := call.Args[2].(*ast.FuncLit); ok {
			checkCapturedWrites(pass, name, fl)
		}
		return true
	})
}

func checkCapturedWrites(pass *analysis.Pass, fn string, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pass, fn, fl, lhs)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, fn, fl, n.X)
		}
		return true
	})
}

// checkCapturedWrite reports lhs if its root identifier resolves to a
// variable declared outside the worker literal. Unwrapping to the root
// catches writes through captured slices, maps, pointers and struct
// fields (results[i] = v, *out = v, s.n++), while variables the worker
// declares itself — including writes from closures nested inside it,
// like engine callbacks — stay allowed.
func checkCapturedWrite(pass *analysis.Pass, fn string, fl *ast.FuncLit, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
		return // declared inside the worker closure
	}
	pass.Reportf(lhs.Pos(),
		"worker closure passed to runner.%s writes captured variable %s: workers run on concurrent goroutines and must communicate only through their return value (ordered side effects go in MapEach's each callback)",
		fn, id.Name)
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "time"); ok && wallClock[name] {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a simulation package; use sim.Engine virtual time", name)
	}
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "math/rand"); ok && !seededRandOK[name] {
		pass.Reportf(call.Pos(),
			"rand.%s uses the global math/rand source; draw from an explicitly seeded *rand.Rand plumbed from flags or config", name)
	}
}
