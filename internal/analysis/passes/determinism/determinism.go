// Package determinism enforces the simulator's bit-reproducibility
// contract inside the simulation packages (core, sim, machine,
// network, directory, npb): the same seed must replay byte-identically
// (the fuzzer's shrinking and -replay flows depend on it).
//
// Three sources of run-to-run variation are banned there:
//
//   - ranging over a map, whose iteration order is randomized by the
//     runtime and can leak into event order or rendered output; loops
//     that are provably order-insensitive may carry a
//     "cenju4:order-insensitive" comment on or directly above the
//     range statement
//   - wall-clock reads (time.Now, time.Since, ...), which make event
//     timing depend on the host
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...),
//     which is shared, lockable and seeded per-process; randomness
//     must flow through an explicitly seeded *rand.Rand so a seed in
//     a flag or config reproduces the stream
package determinism

import (
	"go/ast"
	"go/types"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Directive suppresses the map-range rule for one statement.
const Directive = "cenju4:order-insensitive"

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "simulation packages must not range over maps, read the wall " +
		"clock, or use the global math/rand source",
	Run: run,
}

// wallClock lists the time functions that read or depend on the host
// clock. Pure value constructors (time.Duration arithmetic) are not
// listed, but simulation packages have no business importing time at
// all — the simtime analyzer enforces that separately.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandOK lists the math/rand package functions that construct an
// explicitly seeded generator rather than touching the global source.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	if !lintutil.SimPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		suppressed := lintutil.SuppressedLines(pass.Fset, f, Directive)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n, suppressed)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, suppressed map[int]bool) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if suppressed[pass.Fset.Position(rs.For).Line] {
		return
	}
	pass.Reportf(rs.For,
		"range over map %s in a simulation package: iteration order is randomized and can reach event order; iterate sorted keys or mark the loop %q",
		types.ExprString(rs.X), Directive)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "time"); ok && wallClock[name] {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a simulation package; use sim.Engine virtual time", name)
	}
	if name, ok := lintutil.PkgFunc(pass.TypesInfo, call, "math/rand"); ok && !seededRandOK[name] {
		pass.Reportf(call.Pos(),
			"rand.%s uses the global math/rand source; draw from an explicitly seeded *rand.Rand plumbed from flags or config", name)
	}
}
