package determinism_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/determinism"
)

// TestInSimulationScope checks the rules fire inside a package posing
// as cenju4/internal/core.
func TestInSimulationScope(t *testing.T) {
	analysistest.Run(t, "testdata/insim", determinism.Analyzer)
}

// TestOutOfScope checks that non-simulation packages are untouched.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/outofscope", determinism.Analyzer)
}

// TestRunnerClosures checks the worker-closure rule: captured writes
// inside runner.Map/MapEach worker fns are flagged in any package,
// while worker-local state, nested callbacks and the serialized each
// callback stay clean.
func TestRunnerClosures(t *testing.T) {
	analysistest.Run(t, "testdata/runnerclosure", determinism.Analyzer)
}
