package determinism_test

import (
	"strings"
	"testing"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/determinism"
)

// TestInSimulationScope checks the direct rules fire inside a package
// posing as cenju4/internal/core.
func TestInSimulationScope(t *testing.T) {
	analysistest.Run(t, "testdata/insim", determinism.Analyzer)
}

// TestOutOfScope checks that non-simulation packages are untouched.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/outofscope", determinism.Analyzer)
}

// crosspkgDirs loads leaf -> middle -> simulation user, in dependency
// order: the violations live in leafutil, two packages away from the
// simulation scope.
var crosspkgDirs = []string{
	"testdata/crosspkg/leafutil",
	"testdata/crosspkg/midlayer",
	"testdata/crosspkg/simuser",
}

// TestCrossPackage checks fact propagation through an intermediate
// package: the sim-scope fixture calls midlayer, midlayer calls
// leafutil, and each diagnostic carries the chain down to the leaf.
// It also checks the negative: a leaf range suppressed with
// cenju4:order-insensitive never becomes a fact, so the whole chain
// stays quiet.
func TestCrossPackage(t *testing.T) {
	analysistest.RunDirs(t, determinism.Analyzer, crosspkgDirs...)
}

// TestMutualRecursion checks SCC handling: mutually recursive helpers
// must not hang fact propagation, and the taint from the one map range
// inside the cycle must reach both entry points.
func TestMutualRecursion(t *testing.T) {
	analysistest.RunDirs(t, determinism.Analyzer,
		"testdata/recursion/loopy", "testdata/recursion/simrec")
}

// TestPerPackageAnalysisMisses is the regression that motivated the
// interprocedural engine: analyzed module-wide, the sim-scope fixture's
// laundered time.Now is caught with its full call chain; analyzed the
// old way — the simulation package alone, without the helper packages'
// syntax — the same analyzer provably reports nothing.
func TestPerPackageAnalysisMisses(t *testing.T) {
	pkgs, err := analysistest.LoadDirs(crosspkgDirs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	whole, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatalf("module-wide run: %v", err)
	}
	const chain = "midlayer.Timestamp -> leafutil.Stamp: calls time.Now"
	found := false
	for _, f := range whole {
		if strings.Contains(f.Message, chain) {
			found = true
		}
	}
	if !found {
		t.Errorf("module-wide analysis did not report the laundered wall-clock read with chain %q; got %v", chain, whole)
	}

	solo, err := analysis.RunAnalyzers(pkgs[2:], []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatalf("single-package run: %v", err)
	}
	if len(solo) != 0 {
		t.Errorf("single-package analysis unexpectedly reported %v — the cross-package test no longer proves anything", solo)
	}
}
