// Package pdessafety guards the parallel-DES contract around
// runner.Map / runner.MapEach: worker closures run on concurrent
// goroutines in scheduler order, so a sweep's output is reproducible
// only if workers communicate exclusively through their return values
// (merged in run-index order — ordered side effects belong in
// MapEach's each callback, which the runner serializes).
//
// The analyzer generalizes the one-off captured-write closure check
// that previously lived in the determinism pass into the reusable
// guarantee intra-run parallelism needs. At every runner.Map/MapEach
// call site, in every package, it flags:
//
//   - writes to variables captured from the enclosing scope inside the
//     worker closure (including writes through captured pointers,
//     slices, maps and struct fields) — at best a data race, at worst
//     a silent source of completion-order-dependent results
//   - writes to package-level state reachable from the worker, through
//     any chain of static calls across any number of packages; a
//     read-modify-write (x++, x += v) is additionally called out as
//     non-atomic, the racy-counter shape
//
// The reachability side rides the module call graph: a
// "writes package-level state" fact is propagated bottom-up over SCCs,
// and worker closures (or named functions passed as workers) whose
// static call tree reaches such a write are flagged with the full
// chain. Atomic counters (sync/atomic values or Add/Store calls) are
// method/function calls, not assignments, and are naturally exempt —
// which is exactly the discipline serve.Pool's counters follow.
//
// The same guarantee extends to internal/psim's intra-run parallelism,
// whose phase-A workers are raw goroutines rather than runner.Map
// calls: each shard's engine and state are single-owner during a
// window, so the shard window executor (Coordinator.runShardWindow)
// must not reach a package-level write either — cross-shard
// communication belongs in the logged outcalls that the coordinator
// replays serially in phase B. The analyzer checks the executor's call
// tree against the same fact map.
package pdessafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Analyzer is the pdessafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "pdessafety",
	Doc: "runner.Map/MapEach workers must not write captured variables " +
		"or reach package-level state writes (call-graph facts)",
	Run: run,
}

// runnerPath is the worker-pool package whose Map/MapEach worker
// closures the analyzer guards.
const runnerPath = "cenju4/internal/runner"

// psimPath is the PDES coordinator package; its phase-A shard window
// executor is a worker entry point like a runner.Map closure, and gets
// the same reachability check.
const psimPath = "cenju4/internal/psim"

// psimWorkerEntry is the function every psim worker goroutine runs;
// everything statically reachable from it executes with only
// single-shard ownership.
const psimWorkerEntry = "runShardWindow"

const factGlobalWrite = "pdessafety.globalwrite"

func run(pass *analysis.Pass) error {
	facts := moduleFacts(pass.Program)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := lintutil.PkgFunc(pass.TypesInfo, call, runnerPath)
			if !ok || (name != "Map" && name != "MapEach") || len(call.Args) < 3 {
				return true
			}
			checkWorker(pass, facts, name, call.Args[2])
			return true
		})
	}
	if pass.Pkg.Path() == psimPath {
		checkShardWorkers(pass, facts)
	}
	return nil
}

// checkShardWorkers enforces the single-owner contract of psim's phase
// A: the shard window executor runs on concurrent worker goroutines
// with nothing but its own shard's engines, pools and logs, so its
// static call tree must not write package-level state. (Per-shard
// state is invisible to this check by construction — it hangs off the
// shard struct, not off globals — which is exactly the discipline that
// makes the phases data-race-free without locks.)
func checkShardWorkers(pass *analysis.Pass, facts analysis.FactMap) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != psimWorkerEntry || fd.Recv == nil {
				continue
			}
			callee, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || facts.Lookup(callee, factGlobalWrite) == nil {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"psim shard worker %s transitively writes package-level state: %s; phase-A workers own only their shard — route cross-shard effects through the outcall log for the coordinator's serial replay",
				analysis.DisplayName(callee),
				pass.Program.FactChain(facts, callee, factGlobalWrite))
		}
	}
}

// moduleFacts computes (once per program) which module functions
// directly or transitively write package-level state.
func moduleFacts(prog *analysis.Program) analysis.FactMap {
	return prog.Cached("pdessafety.facts", func() any {
		return prog.CallGraph.Propagate(func(n *analysis.CGNode) []analysis.Fact {
			var facts []analysis.Fact
			record := func(lhs ast.Expr, rmw bool) {
				id := lintutil.RootIdent(lhs)
				if id == nil || id.Name == "_" {
					return
				}
				obj := n.Pkg.TypesInfo.ObjectOf(id)
				if obj == nil || !lintutil.PackageLevelVar(obj) {
					return
				}
				desc := "writes package-level " + id.Name
				if rmw {
					desc = "non-atomic read-modify-write of package-level " + id.Name
				}
				facts = append(facts, analysis.Fact{Kind: factGlobalWrite, Desc: desc, Pos: lhs.Pos()})
			}
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.AssignStmt:
					rmw := node.Tok != token.ASSIGN && node.Tok != token.DEFINE
					for _, lhs := range node.Lhs {
						record(lhs, rmw)
					}
				case *ast.IncDecStmt:
					record(node.X, true)
				}
				return true
			})
			return facts
		})
	}).(analysis.FactMap)
}

// checkWorker inspects the worker argument of a runner.Map/MapEach
// call: a func literal is checked for captured writes and tainted
// callees; a named function or method value is checked against the
// fact map directly.
func checkWorker(pass *analysis.Pass, facts analysis.FactMap, fn string, arg ast.Expr) {
	switch worker := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		checkCapturedWrites(pass, fn, worker)
		checkCallees(pass, facts, fn, worker)
	default:
		if callee := workerFunc(pass.TypesInfo, arg); callee != nil {
			if facts.Lookup(callee, factGlobalWrite) != nil {
				pass.Reportf(arg.Pos(),
					"worker %s passed to runner.%s transitively writes package-level state: %s; workers run on concurrent goroutines and must communicate only through their return value",
					analysis.DisplayName(callee), fn,
					pass.Program.FactChain(facts, callee, factGlobalWrite))
			}
		}
	}
}

// workerFunc resolves a named function or method value passed as the
// worker argument.
func workerFunc(info *types.Info, arg ast.Expr) *types.Func {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkCallees flags calls from the worker closure into module
// functions that transitively write package-level state.
func checkCallees(pass *analysis.Pass, facts analysis.FactMap, fn string, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.StaticCallee(pass.TypesInfo, call)
		if callee == nil || facts.Lookup(callee, factGlobalWrite) == nil {
			return true
		}
		pass.Reportf(call.Pos(),
			"worker closure passed to runner.%s calls %s, which transitively writes package-level state: %s; workers run on concurrent goroutines and must communicate only through their return value",
			fn, analysis.DisplayName(callee),
			pass.Program.FactChain(facts, callee, factGlobalWrite))
		return true
	})
}

// checkCapturedWrites flags writes to variables declared outside the
// worker literal. Unwrapping to the root identifier catches writes
// through captured slices, maps, pointers and struct fields
// (results[i] = v, *out = v, s.n++), while variables the worker
// declares itself — including writes from closures nested inside it,
// like engine callbacks — stay allowed.
func checkCapturedWrites(pass *analysis.Pass, fn string, fl *ast.FuncLit) {
	check := func(lhs ast.Expr) {
		id := lintutil.RootIdent(lhs)
		if id == nil || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return // declared inside the worker closure
		}
		if lintutil.PackageLevelVar(obj) {
			pass.Reportf(lhs.Pos(),
				"worker closure passed to runner.%s writes package-level variable %s (shared across workers): workers must communicate only through their return value (ordered side effects go in MapEach's each callback)",
				fn, id.Name)
			return
		}
		pass.Reportf(lhs.Pos(),
			"worker closure passed to runner.%s writes captured variable %s: workers run on concurrent goroutines and must communicate only through their return value (ordered side effects go in MapEach's each callback)",
			fn, id.Name)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}
