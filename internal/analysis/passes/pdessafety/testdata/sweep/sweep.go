// Fixture for the interprocedural side of the pdessafety rule: worker
// closures (and named workers) that never write anything syntactically
// themselves, but reach package-level writes through calls — including
// through an intermediate helper in this package.
package sweep

import (
	"cenju4/internal/runner"
	"cenju4/lintfixture/globalsink"
)

// tallyAll is the intermediate hop: clean itself, tainted via callee.
func tallyAll(i int) int {
	return globalsink.Bump(i)
}

func closureCallsTainted(n int) {
	runner.Map(runner.Options{}, n, func(i int) int {
		return globalsink.Bump(i) // want `worker closure passed to runner.Map calls globalsink\.Bump, which transitively writes package-level state: globalsink\.Bump: non-atomic read-modify-write of package-level hits \(globalsink\.go:\d+\)`
	})
}

func closureCallsTaintedViaMiddle(n int) {
	runner.MapEach(runner.Options{}, n, func(i int) int {
		return tallyAll(i) // want `worker closure passed to runner.MapEach calls sweep\.tallyAll, which transitively writes package-level state: sweep\.tallyAll -> globalsink\.Bump: non-atomic read-modify-write of package-level hits \(globalsink\.go:\d+\)`
	}, nil)
}

func namedWorkerTainted(n int) {
	runner.Map(runner.Options{}, n, globalsink.Record) // want `worker globalsink\.Record passed to runner\.Map transitively writes package-level state: globalsink\.Record: writes package-level lastValue \(globalsink\.go:\d+\)`
}

func cleanCalls(n int) {
	runner.Map(runner.Options{}, n, func(i int) int {
		return globalsink.Observe(i)
	})
}
