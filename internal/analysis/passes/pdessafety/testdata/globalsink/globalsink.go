// Helper package for the transitive global-write rule: innocuous
// looking accounting helpers that mutate package-level state. Nothing
// is flagged here — the violation is calling these from a runner.Map
// worker, which the sweep fixture does.
package globalsink

var hits int

var lastValue int

// Bump is the racy-counter shape: a read-modify-write of package state.
func Bump(i int) int {
	hits++
	return i
}

// Record is a plain store to package state.
func Record(i int) int {
	lastValue = i
	return i
}

// Observe is clean: reads are not writes.
func Observe(i int) int {
	return i + hits
}
