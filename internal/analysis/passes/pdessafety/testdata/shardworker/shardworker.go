// Fixture for the psim shard-worker rule: the phase-A window executor
// runs on concurrent goroutines with single-shard ownership, so a
// package-level write anywhere in its static call tree is flagged —
// while coordinator-side (phase B) methods may touch whatever they
// like, because the window barrier serializes them.
//
//lintfixture:path cenju4/internal/psim
package psim

// windowsRun is the package-level sink a shard worker must not reach.
var windowsRun int

type Coordinator struct {
	deadline int
}

// runShardWindow is the worker entry the analyzer pins by name.
func (c *Coordinator) runShardWindow(i int, panics []any) { // want `psim shard worker psim\.Coordinator\.runShardWindow transitively writes package-level state: psim\.Coordinator\.runShardWindow -> psim\.Coordinator\.tally: non-atomic read-modify-write of package-level windowsRun \(shardworker\.go:\d+\)`
	c.tally()
}

// tally is the intermediate hop: clean itself, tainted via the write.
func (c *Coordinator) tally() {
	windowsRun++
}

// replay is coordinator-side: same write, no diagnostic — only the
// shard worker entry point carries the single-owner obligation.
func (c *Coordinator) replay() {
	windowsRun++
}
