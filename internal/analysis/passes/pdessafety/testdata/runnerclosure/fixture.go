// Fixture for the runner worker-closure rule. Deliberately NOT posing
// as a simulation package: the rule guards every caller of the worker
// pool (fuzz, experiments, future drivers), so it must fire outside
// the lintutil.SimPackages scope.
package fixture

import "cenju4/internal/runner"

func capturedWrites(n int) int {
	total := 0
	sums := make([]int, n)
	runner.Map(runner.Options{}, n, func(i int) int {
		total += i  // want `worker closure passed to runner.Map writes captured variable total`
		sums[i] = i // want `worker closure passed to runner.Map writes captured variable sums`
		return i * i
	})
	return total
}

var pkgCounter int

func packageLevelWrite(n int) {
	runner.Map(runner.Options{}, n, func(i int) int {
		pkgCounter++ // want `worker closure passed to runner.Map writes package-level variable pkgCounter \(shared across workers\)`
		return i
	})
}

type tally struct{ hits int }

func capturedPointerWrites(n int, out *[]int, t *tally) {
	runner.MapEach(runner.Options{}, n, func(i int) int {
		(*out)[i] = i // want `worker closure passed to runner.MapEach writes captured variable out`
		t.hits++      // want `worker closure passed to runner.MapEach writes captured variable t`
		return 0
	}, nil)
}

func cleanWorker(n int) []int {
	rs, _ := runner.Map(runner.Options{}, n, func(i int) int {
		local := 0
		for j := 0; j <= i; j++ {
			local += j
		}
		return local
	})
	return rs
}

// Writes from closures nested inside the worker to worker-declared
// state are fine — the pattern every engine-callback experiment uses.
func nestedCallbackWrite(n int) []int {
	rs, _ := runner.Map(runner.Options{}, n, func(i int) int {
		end := 0
		cb := func() { end = i * 2 }
		cb()
		return end
	})
	return rs
}

// The each callback may accumulate captured state: the runner invokes
// it serially in ascending index order under its lock.
func eachAccumulates(n int) int {
	total := 0
	runner.MapEach(runner.Options{}, n, func(i int) int { return i }, func(i, r int) {
		total += r
	})
	return total
}
