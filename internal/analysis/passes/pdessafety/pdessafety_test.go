package pdessafety_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/pdessafety"
)

// TestRunnerClosures checks the captured-write rule (inherited from the
// determinism pass, generalized here): writes to captured and
// package-level variables inside runner.Map/MapEach worker fns are
// flagged in any package, while worker-local state, nested callbacks
// and the serialized each callback stay clean.
func TestRunnerClosures(t *testing.T) {
	analysistest.Run(t, "testdata/runnerclosure", pdessafety.Analyzer)
}

// TestTransitiveGlobalWrites checks the call-graph side: a worker that
// reaches a package-level write through calls — direct, via an
// intermediate helper, or as a named worker function — is flagged with
// the chain down to the write.
func TestTransitiveGlobalWrites(t *testing.T) {
	analysistest.RunDirs(t, pdessafety.Analyzer,
		"testdata/globalsink", "testdata/sweep")
}

// TestShardWorkers checks the psim extension: the shard window
// executor (phase-A worker entry) must not reach a package-level
// write, while coordinator-side methods in the same package may.
func TestShardWorkers(t *testing.T) {
	analysistest.Run(t, "testdata/shardworker", pdessafety.Analyzer)
}
