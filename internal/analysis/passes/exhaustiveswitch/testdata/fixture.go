// Fixture for the exhaustiveswitch analyzer: switches over protocol
// enums (module-declared integer types with constant sets) must handle
// every constant or panic in an explicit default.
package fixture

import (
	"fmt"

	"cenju4/internal/msg"
)

// Phase is a local enum with three constants.
type Phase uint8

const (
	PhaseIdle Phase = iota
	PhaseBusy
	PhaseDone
)

// missingCaseNoDefault drops PhaseDone on the floor.
func missingCaseNoDefault(p Phase) int {
	switch p { // want `switch over fixture.Phase is not exhaustive: missing PhaseDone`
	case PhaseIdle:
		return 0
	case PhaseBusy:
		return 1
	}
	return -1
}

// silentDefault hides the missing constant behind a default that
// cannot fail loudly.
func silentDefault(p Phase) int {
	switch p { // want `switch over fixture.Phase has a silent default but does not handle PhaseDone`
	case PhaseIdle, PhaseBusy:
		return 0
	default:
		return -1
	}
}

// exhaustive handles every constant: no default needed.
func exhaustive(p Phase) int {
	switch p {
	case PhaseIdle:
		return 0
	case PhaseBusy:
		return 1
	case PhaseDone:
		return 2
	}
	return -1
}

// panickingDefault is the accepted escape for deliberately unhandled
// constants.
func panickingDefault(p Phase) int {
	switch p {
	case PhaseIdle:
		return 0
	default:
		panic(fmt.Sprintf("unhandled phase %d", p))
	}
}

// importedEnum demonstrates the check across package boundaries: the
// handler claims to cover home-bound kinds but misses most of the
// message space without a panicking default.
func importedEnum(k msg.Kind) bool {
	switch k { // want `switch over msg.Kind is not exhaustive`
	case msg.ReadShared, msg.ReadExclusive:
		return true
	}
	return false
}

// importedEnumGuarded is fine: the default panics.
func importedEnumGuarded(k msg.Kind) bool {
	switch k {
	case msg.ReadShared, msg.ReadExclusive:
		return true
	default:
		panic("unreachable")
	}
}

// notAnEnum: switches over plain integers are ignored.
func notAnEnum(n int) int {
	switch n {
	case 0:
		return 1
	}
	return 0
}

// taglessSwitch: condition dispatch is ignored.
func taglessSwitch(p Phase) int {
	switch {
	case p == PhaseIdle:
		return 0
	default:
		return 1
	}
}

// nonConstantCase: value computation with a variable guard is ignored.
func nonConstantCase(p, q Phase) int {
	switch p {
	case q:
		return 0
	}
	return 1
}
