package exhaustiveswitch_test

import (
	"testing"

	"cenju4/internal/analysis/analysistest"
	"cenju4/internal/analysis/passes/exhaustiveswitch"
)

func TestExhaustiveSwitch(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustiveswitch.Analyzer)
}
