// Package exhaustiveswitch checks that every switch over a protocol
// enum — msg.Kind, cache.LineState, directory.State and any other
// named integer type with a constant set declared in this module —
// either handles all declared constants or carries an explicit
// panicking default.
//
// The queuing protocol's liveness argument (the home never NACKs and
// every request completes) rests on every handler covering every
// reachable message-kind x state combination; a silently ignored enum
// value is exactly the kind of hole a new message kind would open.
// Transition tables must therefore fail loudly: handle everything, or
// panic on what you believe unreachable.
package exhaustiveswitch

import (
	"go/ast"
	"go/constant"
	"strings"

	"cenju4/internal/analysis"
	"cenju4/internal/analysis/lintutil"
)

// Analyzer is the exhaustiveswitch pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustiveswitch",
	Doc: "switches over protocol enums must handle every constant " +
		"or carry a panicking default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	enum := lintutil.EnumOf(tv.Type)
	if enum == nil {
		return
	}

	handled := make(map[int64]bool)
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			cv := pass.TypesInfo.Types[e].Value
			if cv == nil || cv.Kind() != constant.Int {
				// A non-constant case guard: the switch is doing value
				// computation, not transition dispatch; leave it alone.
				return
			}
			v, exact := constant.Int64Val(cv)
			if !exact {
				return
			}
			handled[v] = true
		}
	}

	var missing []string
	for _, c := range enum.Consts {
		if !handled[c.Val] {
			missing = append(missing, c.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt != nil && lintutil.PanickingClause(pass.TypesInfo, deflt) {
		return
	}
	list := strings.Join(missing, ", ")
	if deflt == nil {
		pass.Reportf(sw.Switch,
			"switch over %s is not exhaustive: missing %s (add the cases or a panicking default)",
			enum.Name(), list)
		return
	}
	pass.Reportf(sw.Switch,
		"switch over %s has a silent default but does not handle %s (handle them explicitly or panic in the default)",
		enum.Name(), list)
}
