package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of the framework: a
// module-wide call graph over every loaded package, strongly-connected
// components for bottom-up processing, and the two propagation shapes
// the analyzers need — bottom-up facts ("this function transitively
// reaches a wall-clock read") and top-down reachability ("this
// function is reachable from a //cenju4:hotpath root").
//
// Identity across packages is the crux. The loader typechecks every
// target package from source against export data, so the *types.Func
// for sim.NewEngine seen from its own package and the one seen through
// an import are different objects. Nodes are therefore keyed by
// FuncKey (types.Func.FullName), which is stable across the
// source/export-data boundary; edge resolution goes through the key,
// never through object identity.

// FuncKey returns the canonical cross-package identity of fn:
// "pkg/path.Name" for functions, "(pkg/path.Recv).Name" for methods.
// It is stable between the source-typechecked object of a function and
// the export-data object an importing package sees.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// A CGNode is one module function (or method) with source in the
// program.
type CGNode struct {
	Key  string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out holds the node's call sites in source order. Calls inside
	// function literals declared in the body are attributed to the
	// enclosing declaration: running the function may run its closures.
	Out []*CGEdge

	// Tarjan state.
	index, lowlink int
	onStack        bool
	scc            int
}

// A CGEdge is one static call site.
type CGEdge struct {
	Caller    *CGNode
	Callee    *types.Func // callee object as seen by the caller's package
	CalleeKey string
	To        *CGNode // resolved program node; nil for external callees
	Site      *ast.CallExpr
}

// CallGraph is the module-wide static call graph. Only statically
// resolvable calls appear: direct calls of declared functions and
// methods (through package qualifiers, receivers, or plain
// identifiers). Calls through function values, interface methods and
// the event queue's stored closures are not resolved — analyzers built
// on the graph are therefore "may-miss" on dynamic dispatch, never
// "may-crash".
type CallGraph struct {
	nodes map[string]*CGNode
	// order preserves deterministic node creation order
	// (package, file, declaration) for deterministic iteration.
	order []*CGNode
}

// Node returns the program node for fn, or nil if fn has no source in
// the program (external, interface method, or builtin).
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[FuncKey(fn)]
}

// NodeByKey returns the node with the given FuncKey, or nil.
func (g *CallGraph) NodeByKey(key string) *CGNode { return g.nodes[key] }

// Nodes returns every node in deterministic (package, file,
// declaration) order.
func (g *CallGraph) Nodes() []*CGNode { return g.order }

// StaticCallee resolves the statically-known callee of call, or nil:
// a plain identifier, a package-qualified function, or a method
// selection on a concrete receiver. Builtins, function values and
// interface method calls return the object go/types reports, which for
// builtins and unresolvable forms is not a *types.Func.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// buildCallGraph constructs the graph over pkgs. Two passes: declare
// every function, then resolve call sites through FuncKey so
// cross-package edges land on the source-typechecked node.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[string]*CGNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Key: FuncKey(fn), Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[n.Key] = n
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		info := n.Pkg.TypesInfo
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			key := FuncKey(callee)
			n.Out = append(n.Out, &CGEdge{
				Caller:    n,
				Callee:    callee,
				CalleeKey: key,
				To:        g.nodes[key],
				Site:      call,
			})
			return true
		})
	}
	return g
}

// SCCs returns the strongly connected components of the graph in
// reverse topological order: every component is emitted before any
// component that calls into it, so bottom-up fact propagation can
// process the slice front to back.
func (g *CallGraph) SCCs() [][]*CGNode {
	var (
		sccs    [][]*CGNode
		stack   []*CGNode
		counter int
	)
	for _, n := range g.order {
		n.index = 0
	}
	var strongconnect func(v *CGNode)
	strongconnect = func(v *CGNode) {
		counter++
		v.index, v.lowlink = counter, counter
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Out {
			w := e.To
			if w == nil {
				continue
			}
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var comp []*CGNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.scc = len(sccs)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range g.order {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return sccs
}

// ReachableFrom walks the graph forward from roots (BFS, edges in
// source order) and returns, for every reachable node, the edge
// through which it was first discovered. Roots map to nil. The parent
// chain of any reached node therefore spells a shortest call path back
// to some root.
func (g *CallGraph) ReachableFrom(roots []*CGNode) map[*CGNode]*CGEdge {
	parent := make(map[*CGNode]*CGEdge, len(roots))
	queue := make([]*CGNode, 0, len(roots))
	for _, r := range roots {
		if _, seen := parent[r]; seen || r == nil {
			continue
		}
		parent[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.To == nil {
				continue
			}
			if _, seen := parent[e.To]; seen {
				continue
			}
			parent[e.To] = e
			queue = append(queue, e.To)
		}
	}
	return parent
}

// RootPath renders the call path from the nearest root to n as
// "root -> a -> b", using the parent map from ReachableFrom. A root
// renders as its own name.
func RootPath(parent map[*CGNode]*CGEdge, n *CGNode) string {
	var names []string
	for at := n; at != nil; {
		names = append(names, DisplayName(at.Fn))
		e := parent[at]
		if e == nil {
			break
		}
		at = e.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := names[0]
	for _, s := range names[1:] {
		out += " -> " + s
	}
	return out
}

// DisplayName renders fn compactly for diagnostics: pkg.Fn for
// functions, pkg.Type.Method for methods (pointer receivers elided —
// positions in the diagnostic disambiguate).
func DisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := types.Unalias(t).(*types.Named); isNamed {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// A Fact is one property a function exhibits directly, discovered by
// an analyzer's local extractor: "ranges over a map here", "allocates
// here". Kind names the property; Desc and Pos describe the concrete
// leaf evidence for diagnostics.
type Fact struct {
	Kind string
	Desc string
	Pos  token.Pos
}

// A FactPath is one fact a function exhibits, directly (Via == nil) or
// through a call (Via is the first edge on a path to a function that
// exhibits it).
type FactPath struct {
	Fact Fact
	Via  *CGEdge
}

// FactMap holds propagated facts: FuncKey -> fact kind -> path.
type FactMap map[string]map[string]*FactPath

// Lookup returns the path for (fn, kind), or nil. fn may come from any
// package — source-typechecked or imported through export data — since
// the map is keyed by FuncKey.
func (m FactMap) Lookup(fn *types.Func, kind string) *FactPath {
	if fn == nil {
		return nil
	}
	return m[FuncKey(fn)][kind]
}

// Propagate computes, bottom-up over the SCCs of the graph, the facts
// every function exhibits directly (via local) or transitively through
// static calls. One path is kept per (function, kind); paths through a
// cycle are well-founded because a fact, once set, is never
// overwritten — following Via always reaches a node whose fact was set
// earlier, terminating at a direct fact.
func (g *CallGraph) Propagate(local func(*CGNode) []Fact) FactMap {
	m := make(FactMap, len(g.order))
	get := func(n *CGNode) map[string]*FactPath {
		fm := m[n.Key]
		if fm == nil {
			fm = make(map[string]*FactPath)
			m[n.Key] = fm
		}
		return fm
	}
	for _, comp := range g.SCCs() {
		// Direct facts first, then inherit through out-edges to a fixed
		// point. Out-of-component callees are already final (reverse
		// topological order); intra-component inheritance converges
		// because each (function, kind) is set at most once.
		for _, n := range comp {
			fm := get(n)
			for _, f := range local(n) {
				if _, ok := fm[f.Kind]; !ok {
					fm[f.Kind] = &FactPath{Fact: f}
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				fm := get(n)
				for _, e := range n.Out {
					if e.To == nil {
						continue
					}
					for kind, fp := range m[e.To.Key] {
						if _, ok := fm[kind]; !ok {
							fm[kind] = &FactPath{Fact: fp.Fact, Via: e}
							changed = true
						}
					}
				}
			}
		}
	}
	return m
}
