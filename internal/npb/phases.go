package npb

import (
	"cenju4/internal/cpu"
	"cenju4/internal/shmem"
	"cenju4/internal/topology"
)

// phase is a restartable generator of operations. Programs are built as
// sequences of phases repeated over iterations, so multi-million-access
// workloads never materialize op slices.
type phase interface {
	next() (cpu.Op, bool)
}

// opPhase emits a fixed slice of ops (collectives, small sequences).
type opPhase struct {
	ops []cpu.Op
	pos int
}

func (p *opPhase) next() (cpu.Op, bool) {
	if p.pos >= len(p.ops) {
		return cpu.Op{}, false
	}
	op := p.ops[p.pos]
	p.pos++
	return op, true
}

func barrier() phase             { return &opPhase{ops: []cpu.Op{{Kind: cpu.OpBarrier}}} }
func allReduce(n uint64) phase   { return &opPhase{ops: []cpu.Op{{Kind: cpu.OpAllReduce, N: n}}} }
func computeOnly(n uint64) phase { return &opPhase{ops: []cpu.Op{{Kind: cpu.OpCompute, N: n}}} }

func send(dst topology.NodeID, bytes uint64) cpu.Op {
	return cpu.Op{Kind: cpu.OpSend, Dst: dst, N: bytes}
}
func recv(src topology.NodeID) cpu.Op {
	return cpu.Op{Kind: cpu.OpRecv, Dst: src}
}

// addrAt abstracts shared and private regions.
type addrFn func(i int) topology.Addr

func sharedAt(r *shmem.Region) addrFn      { return r.Addr }
func privateAt(r *shmem.PrivRegion) addrFn { return r.Addr }

// streamPhase sweeps elements [lo,hi) with the given stride, emitting
// per element: a load, `compute` instructions, and a store every
// storeEvery-th element (0 = never). Sequential strides get the block's
// natural 1-in-16 miss locality; large strides model scatter access.
type streamPhase struct {
	at         addrFn
	lo, hi     int
	stride     int
	compute    uint64
	storeEvery int

	i     int
	state int // 0 = load, 1 = compute, 2 = store
	count int
}

func stream(at addrFn, lo, hi, stride int, compute uint64, storeEvery int) phase {
	if stride == 0 {
		stride = 1
	}
	return &streamPhase{at: at, lo: lo, hi: hi, stride: stride, compute: compute, storeEvery: storeEvery, i: lo}
}

func (p *streamPhase) next() (cpu.Op, bool) {
	for {
		if p.i >= p.hi || p.i < p.lo {
			return cpu.Op{}, false
		}
		switch p.state {
		case 0:
			p.state = 1
			return cpu.Op{Kind: cpu.OpLoad, Addr: p.at(p.i)}, true
		case 1:
			p.state = 2
			if p.compute > 0 {
				return cpu.Op{Kind: cpu.OpCompute, N: p.compute}, true
			}
		case 2:
			doStore := p.storeEvery > 0 && (p.count%p.storeEvery) == p.storeEvery-1
			addr := p.at(p.i)
			p.count++
			p.i += p.stride
			p.state = 0
			if doStore {
				return cpu.Op{Kind: cpu.OpStore, Addr: addr}, true
			}
		}
	}
}

// wrapStreamPhase sweeps `count` elements starting at `start` modulo the
// region length — used for transpose-style reads of other nodes'
// partitions and for CG's full-vector coverage.
type wrapStreamPhase struct {
	at         addrFn
	n          int
	start      int
	count      int
	stride     int
	compute    uint64
	storeEvery int
	pair       addrFn // optional second (private) access per element
	pairIdx    int
	pairLen    int

	i     int
	state int
}

func wrapStream(at addrFn, n, start, count, stride int, compute uint64) phase {
	if stride == 0 {
		stride = 1
	}
	return &wrapStreamPhase{at: at, n: n, start: start % n, count: count, stride: stride, compute: compute}
}

// rotStream sweeps `count` elements of a large private buffer starting
// at a pass-dependent offset, with a store every storeEvery-th element.
// Rotating the start across passes models a working set larger than the
// cache (the NPB solvers touch several state arrays per point), so
// streaming passes miss at the block rate on every machine size — the
// sequential baseline included — instead of turning into a cache-fit
// artifact at high node counts.
func rotStream(priv *shmem.PrivRegion, pass, count int, compute uint64, storeEvery int) phase {
	p := wrapStream(privateAt(priv), priv.Len(), pass*count, count, 1, compute).(*wrapStreamPhase)
	p.storeEvery = storeEvery
	return p
}

// pairedStream is wrapStream plus one private access per element — the
// CG inner loop: load A[j] (private), load p[col] (shared), compute.
func pairedStream(shared addrFn, n, start, count, stride int, priv addrFn, privLen int, compute uint64) phase {
	p := wrapStream(shared, n, start, count, stride, compute).(*wrapStreamPhase)
	p.pair = priv
	p.pairLen = privLen
	return p
}

func (p *wrapStreamPhase) next() (cpu.Op, bool) {
	for {
		if p.i >= p.count {
			return cpu.Op{}, false
		}
		switch p.state {
		case 0:
			p.state = 1
			if p.pair != nil {
				idx := p.pairIdx % p.pairLen
				p.pairIdx++
				return cpu.Op{Kind: cpu.OpLoad, Addr: p.pair(idx)}, true
			}
		case 1:
			p.state = 2
			idx := (p.start + p.i*p.stride) % p.n
			return cpu.Op{Kind: cpu.OpLoad, Addr: p.at(idx)}, true
		case 2:
			doStore := p.storeEvery > 0 && p.i%p.storeEvery == p.storeEvery-1
			idx := (p.start + p.i*p.stride) % p.n
			p.state = 0
			p.i++
			if doStore {
				return cpu.Op{Kind: cpu.OpStore, Addr: p.at(idx)}, true
			}
			if p.compute > 0 {
				return cpu.Op{Kind: cpu.OpCompute, N: p.compute}, true
			}
		}
	}
}

// program assembles per-iteration phase lists into a cpu.Program.
func program(iters int, build func(iter int) []phase) cpu.Program {
	iter := 0
	var cur []phase
	idx := 0
	return cpu.FuncProgram(func() (cpu.Op, bool) {
		for {
			if cur == nil {
				if iter >= iters {
					return cpu.Op{}, false
				}
				cur = build(iter)
				idx = 0
				iter++
			}
			if idx >= len(cur) {
				cur = nil
				continue
			}
			op, ok := cur[idx].next()
			if !ok {
				idx++
				continue
			}
			return op, true
		}
	})
}
