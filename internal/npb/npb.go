// Package npb provides the synthetic NAS Parallel Benchmark kernels the
// paper evaluates (BT, CG, FT, SP from NPB V2.3 Class A), in the four
// program forms of Section 4.2:
//
//	seq    — the sequential program (one node, all private memory)
//	mpi    — the message-passing parallelization (private memory + explicit
//	         communication over the message-passing mechanism)
//	dsm(1) — shared memory, parallelized only on the outermost loop
//	dsm(2) — shared memory, optimized: loop translations, divided arrays,
//	         and work arrays mapped to private memory
//
// The kernels are synthetic in the sense that they reproduce each
// application's memory-access *structure* — decomposition, sharing
// pattern, reuse distances, communication volume — at a configurable
// scale, not its arithmetic. DESIGN.md documents why this substitution
// preserves the evaluation's conclusions: parallel efficiency is
// determined by the ratio of compute to coherence traffic, which these
// structures carry.
//
// Each build also reports the program-rewriting ratio of Figure 11(a),
// computed from a transformation model of the source programs (see
// rewrite.go).
package npb

import (
	"fmt"
	"strings"

	"cenju4/internal/cpu"
	"cenju4/internal/shmem"
	"cenju4/internal/topology"
)

// App identifies one of the four applications.
type App uint8

const (
	BT App = iota
	CG
	FT
	SP
)

func (a App) String() string {
	switch a {
	case BT:
		return "BT"
	case CG:
		return "CG"
	case FT:
		return "FT"
	case SP:
		return "SP"
	}
	return fmt.Sprintf("App(%d)", uint8(a))
}

// Apps lists all four applications in paper order.
func Apps() []App { return []App{BT, CG, FT, SP} }

// Variant identifies a program form.
type Variant uint8

const (
	Seq Variant = iota
	MPI
	DSM1
	DSM2
)

func (v Variant) String() string {
	switch v {
	case Seq:
		return "seq"
	case MPI:
		return "mpi"
	case DSM1:
		return "dsm(1)"
	case DSM2:
		return "dsm(2)"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// ParseApp parses an application name ("bt", "cg", "ft", "sp", any
// case). Every CLI and the serve job API accept the same spellings.
func ParseApp(s string) (App, error) {
	switch strings.ToLower(s) {
	case "bt":
		return BT, nil
	case "cg":
		return CG, nil
	case "ft":
		return FT, nil
	case "sp":
		return SP, nil
	}
	return 0, fmt.Errorf("npb: unknown application %q (want bt, cg, ft or sp)", s)
}

// ParseVariant parses a program-form name: "seq", "mpi", "dsm1" or
// "dsm2" (the rendered forms "dsm(1)"/"dsm(2)" are also accepted).
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "seq":
		return Seq, nil
	case "mpi":
		return MPI, nil
	case "dsm1", "dsm(1)":
		return DSM1, nil
	case "dsm2", "dsm(2)":
		return DSM2, nil
	}
	return 0, fmt.Errorf("npb: unknown variant %q (want seq, mpi, dsm1 or dsm2)", s)
}

// Options selects and sizes a workload build.
type Options struct {
	App     App
	Variant Variant
	// Nodes is the machine size the programs will run on.
	Nodes int
	// DataMapping applies the shared-data mappings (dsm variants only;
	// false reproduces the "no data mappings" rows).
	DataMapping bool
	// Iterations is the number of outer time steps (default 2).
	Iterations int
	// Scale shrinks the Class A problem (1.0 = Class A; default 0.05,
	// which keeps unit tests fast; the benchmark harness uses larger).
	Scale float64
	// UpdateProtocol marks the application's hot shared region for the
	// update-type protocol extension (the paper's Section 4.2.3
	// proposal for CG). The built Workload exposes the region through
	// UpdateMode; the machine must be configured with it.
	UpdateProtocol bool
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 2
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	return o
}

// Workload is a built set of per-node programs plus metadata.
type Workload struct {
	Progs []cpu.Program
	Meta  Meta
	// UpdateMode is non-nil when Options.UpdateProtocol was set: it
	// identifies the blocks to run under the update-type protocol.
	// Pass it to machine.Config.UpdateMode.
	UpdateMode func(topology.Addr) bool
}

// Meta describes a built workload.
type Meta struct {
	App     App
	Variant Variant
	Nodes   int
	Mapped  bool
	// Points is the scaled main-array element count.
	Points int
	// RewriteRatio is the Figure 11(a) program-rewriting ratio.
	RewriteRatio float64
}

// classASizes holds the problem dimensions at Scale = 1.
var classASizes = map[App]struct {
	points int // main array elements
	nnz    int // CG matrix nonzeros
}{
	BT: {points: 262144},              // 64^3 grid
	SP: {points: 262144},              // 64^3 grid
	FT: {points: 4194304},             // 256x256x64 complex grid
	CG: {points: 14000, nnz: 1853104}, // na=14000 rows
}

// Build constructs the per-node programs for opts.
func Build(opts Options) (*Workload, error) {
	opts = opts.withDefaults()
	if opts.Variant == Seq && opts.Nodes != 1 {
		return nil, fmt.Errorf("npb: seq variant requires 1 node, got %d", opts.Nodes)
	}
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("npb: invalid node count %d", opts.Nodes)
	}
	sz := classASizes[opts.App]
	points := scaleTo(sz.points, opts.Scale, opts.Nodes)
	w := &Workload{
		Meta: Meta{
			App:          opts.App,
			Variant:      opts.Variant,
			Nodes:        opts.Nodes,
			Mapped:       opts.DataMapping,
			Points:       points,
			RewriteRatio: RewriteRatio(opts.App, opts.Variant, opts.DataMapping),
		},
	}
	alloc := shmem.NewAllocator(opts.Nodes)
	var region *shmem.Region
	switch opts.App {
	case BT:
		w.Progs, region = buildGridSolver(opts, alloc, points, gridParams{
			compute: 16, zFraction: 1.3, dsm2CopyFrac: 0.06, sweeps: 3,
		})
	case SP:
		w.Progs, region = buildGridSolver(opts, alloc, points, gridParams{
			compute: 6, zFraction: 1.5, dsm2CopyFrac: 0.2, sweeps: 3,
		})
	case FT:
		w.Progs, region = buildFT(opts, alloc, points)
	case CG:
		w.Progs, region = buildCG(opts, alloc, points, scaleTo(sz.nnz, opts.Scale, opts.Nodes))
	default:
		return nil, fmt.Errorf("npb: unknown app %v", opts.App)
	}
	if opts.UpdateProtocol {
		w.UpdateMode = region.Contains
	}
	return w, nil
}

// scaleTo scales a Class A dimension and rounds it up to a multiple of
// one cache block per node, so partitions are block-aligned.
func scaleTo(n int, scale float64, nodes int) int {
	v := int(float64(n) * scale)
	unit := 16 * nodes // elements per block x nodes
	if v < unit {
		v = unit
	}
	return (v + unit - 1) / unit * unit
}

// mapping returns the shared mapping the options imply.
func mapping(opts Options) shmem.Mapping {
	if opts.DataMapping {
		return shmem.MapBlocked
	}
	return shmem.MapNone
}
