package npb

// Program-rewriting model for Figure 11(a).
//
// The rewriting ratio is (lines changed from + lines added to the
// sequential program) / (lines of the sequential program). The paper
// explains where each variant's edits come from:
//
//   - both dsm and mpi programs change loop bounds (induction-variable
//     initial/end values) and insert synchronization — nearly all of
//     dsm(1)'s edits;
//   - mpi programs additionally add explicit inter-node communication
//     and divide arrays "in a complicated way" to minimize it;
//   - dsm(2) adds the optimization edits (loop translations, divided
//     shared arrays, private mirrors) but stays under half of mpi;
//   - specifying data mappings adds only a few directive lines.
//
// We model each variant as a list of transformations with line costs
// estimated from the NPB 2.3 sources and Figure 11(a), and *compute*
// the ratio, so the relationships the paper argues (dsm(1) < dsm(2) <
// mpi/2) are reproduced mechanically.

// Transform is one source-level rewriting step.
type Transform struct {
	Name  string
	Lines int // lines changed or added
}

// seqLines is the sequential source size per application (NPB 2.3
// serial versions, approximate).
var seqLines = map[App]int{
	BT: 3650,
	CG: 1150,
	FT: 1270,
	SP: 3220,
}

// commWeight scales the communication-related edits per application:
// the block solvers exchange boundary planes of five-variable cells in
// three directions (heavy packing code), FT's transpose is one dense
// all-to-all, and CG's exchanges are a few vector segments.
var commWeight = map[App]float64{
	BT: 1.00,
	CG: 0.65,
	FT: 0.80,
	SP: 1.10,
}

// optWeight scales the dsm(2) optimization edits: the paper notes CG's
// optimizations barely change it, while the grid solvers need real loop
// restructuring.
var optWeight = map[App]float64{
	BT: 1.00,
	CG: 0.50,
	FT: 0.85,
	SP: 1.05,
}

// transforms returns the rewriting steps for one program form.
func transforms(app App, v Variant, mapped bool) []Transform {
	base := seqLines[app]
	frac := func(f float64) int { return int(f * float64(base)) }
	cw, ow := commWeight[app], optWeight[app]
	var ts []Transform
	switch v {
	case Seq:
		return nil
	case DSM1:
		ts = []Transform{
			{"parallelize outermost loops (bounds)", frac(0.050)},
			{"insert synchronization", frac(0.015)},
			{"shared allocation calls", frac(0.008)},
		}
	case DSM2:
		ts = []Transform{
			{"parallelize outermost loops (bounds)", frac(0.050)},
			{"insert synchronization", frac(0.018)},
			{"shared allocation calls", frac(0.008)},
			{"loop translations", frac(0.055 * ow)},
			{"divide shared arrays", frac(0.035 * ow)},
			{"map work arrays to private memory", frac(0.025 * ow)},
		}
	case MPI:
		ts = []Transform{
			{"parallelize loops (bounds)", frac(0.050)},
			{"insert synchronization", frac(0.015)},
			{"explicit inter-node communication", frac(0.180 * cw)},
			{"divide arrays to minimize communication", frac(0.150 * cw)},
			{"buffer packing/unpacking", frac(0.060 * cw)},
		}
	}
	if mapped && v != MPI {
		ts = append(ts, Transform{"data mapping directives", frac(0.012)})
	}
	return ts
}

// RewriteRatio returns the Figure 11(a) rewriting ratio for a program
// form.
func RewriteRatio(app App, v Variant, mapped bool) float64 {
	total := 0
	for _, t := range transforms(app, v, mapped) {
		total += t.Lines
	}
	return float64(total) / float64(seqLines[app])
}

// RewriteBreakdown returns the transformation list (for documentation
// and the nodemap CLI).
func RewriteBreakdown(app App, v Variant, mapped bool) []Transform {
	return transforms(app, v, mapped)
}
