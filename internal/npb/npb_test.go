package npb

import (
	"testing"

	"cenju4/internal/cpu"
	"cenju4/internal/machine"
)

func runWorkload(t testing.TB, opts Options) (machine.Result, *Workload) {
	t.Helper()
	w, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{Nodes: opts.Nodes, Multicast: true, UpdateMode: w.UpdateMode})
	r := m.Run(w.Progs)
	if err := m.Validate(); err != nil {
		t.Fatalf("coherence violated by %v/%v: %v", opts.App, opts.Variant, err)
	}
	return r, w
}

func TestBuildAllAppsAllVariants(t *testing.T) {
	for _, app := range Apps() {
		for _, v := range []Variant{MPI, DSM1, DSM2} {
			opts := Options{App: app, Variant: v, Nodes: 4, DataMapping: true, Iterations: 1, Scale: 0.01}
			r, w := runWorkload(t, opts)
			if len(w.Progs) != 4 {
				t.Fatalf("%v/%v: %d programs", app, v, len(w.Progs))
			}
			tot := r.Totals()
			if tot.Instructions == 0 || tot.MemAccesses == 0 {
				t.Fatalf("%v/%v: empty execution %+v", app, v, tot)
			}
		}
		r, _ := runWorkload(t, Options{App: app, Variant: Seq, Nodes: 1, Iterations: 1, Scale: 0.01})
		if r.Totals().RemoteAccesses != 0 || r.Totals().LocalAccesses != 0 {
			t.Fatalf("%v/seq touched shared memory", app)
		}
	}
}

func TestSeqRequiresOneNode(t *testing.T) {
	if _, err := Build(Options{App: BT, Variant: Seq, Nodes: 4}); err == nil {
		t.Fatal("seq on 4 nodes did not error")
	}
}

func TestMappingLocalizesMisses(t *testing.T) {
	// With data mappings, dsm programs must have far fewer remote misses
	// than without (Table 3's headline shift).
	for _, app := range []App{BT, FT} {
		mapped, _ := runWorkload(t, Options{App: app, Variant: DSM1, Nodes: 8, DataMapping: true, Iterations: 2, Scale: 0.02})
		unmapped, _ := runWorkload(t, Options{App: app, Variant: DSM1, Nodes: 8, DataMapping: false, Iterations: 2, Scale: 0.02})
		mr := float64(mapped.Totals().RemoteMisses) / float64(mapped.Totals().Misses)
		ur := float64(unmapped.Totals().RemoteMisses) / float64(unmapped.Totals().Misses)
		if mr >= ur {
			t.Errorf("%v: remote miss share mapped %.2f >= unmapped %.2f", app, mr, ur)
		}
	}
}

func TestDSM2ShiftsMissesToPrivate(t *testing.T) {
	for _, app := range []App{BT, FT, SP} {
		d1, _ := runWorkload(t, Options{App: app, Variant: DSM1, Nodes: 8, DataMapping: true, Iterations: 2, Scale: 0.02})
		d2, _ := runWorkload(t, Options{App: app, Variant: DSM2, Nodes: 8, DataMapping: true, Iterations: 2, Scale: 0.02})
		p1 := float64(d1.Totals().PrivateMisses) / float64(d1.Totals().Misses)
		p2 := float64(d2.Totals().PrivateMisses) / float64(d2.Totals().Misses)
		if p2 <= p1 {
			t.Errorf("%v: dsm(2) private miss share %.2f <= dsm(1) %.2f", app, p2, p1)
		}
	}
}

func TestCGMappingDoesNotChangeStructure(t *testing.T) {
	// Paper: on CG, optimization and mapping barely move the miss
	// characteristics (the access pattern dominates).
	d1, _ := runWorkload(t, Options{App: CG, Variant: DSM1, Nodes: 8, DataMapping: true, Iterations: 2, Scale: 0.05})
	d2, _ := runWorkload(t, Options{App: CG, Variant: DSM2, Nodes: 8, DataMapping: true, Iterations: 2, Scale: 0.05})
	r1 := d1.Totals().MissRatio()
	r2 := d2.Totals().MissRatio()
	diff := r1 - r2
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1*r1 {
		t.Errorf("CG dsm(1) miss ratio %.4f vs dsm(2) %.4f: structure changed", r1, r2)
	}
}

func TestCGRemoteMissesPerNodeRoughlyConstant(t *testing.T) {
	// The saturation mechanism: per-node remote misses stay roughly
	// constant as nodes grow (whole-vector re-fetch each iteration),
	// while per-node work shrinks.
	r8, _ := runWorkload(t, Options{App: CG, Variant: DSM2, Nodes: 8, DataMapping: true, Iterations: 3, Scale: 0.05})
	r32, _ := runWorkload(t, Options{App: CG, Variant: DSM2, Nodes: 32, DataMapping: true, Iterations: 3, Scale: 0.05})
	per8 := float64(r8.Totals().RemoteMisses) / 8
	per32 := float64(r32.Totals().RemoteMisses) / 32
	if per32 < per8*0.5 {
		t.Errorf("per-node remote misses fell too fast: %.0f at 8 nodes, %.0f at 32", per8, per32)
	}
	// Meanwhile per-node instructions must shrink ~4x.
	i8 := float64(r8.Totals().Instructions) / 8
	i32 := float64(r32.Totals().Instructions) / 32
	if i32 > i8/2 {
		t.Errorf("per-node work did not shrink: %.0f vs %.0f", i8, i32)
	}
}

func TestRewriteRatios(t *testing.T) {
	for _, app := range Apps() {
		d1 := RewriteRatio(app, DSM1, true)
		d2 := RewriteRatio(app, DSM2, true)
		mpi := RewriteRatio(app, MPI, false)
		if !(d1 < d2 && d2 < mpi) {
			t.Errorf("%v: ordering violated: dsm1=%.3f dsm2=%.3f mpi=%.3f", app, d1, d2, mpi)
		}
		if d2 >= mpi/2 {
			t.Errorf("%v: dsm(2) ratio %.3f not less than half of mpi %.3f", app, d2, mpi)
		}
		if RewriteRatio(app, Seq, false) != 0 {
			t.Errorf("%v: seq ratio nonzero", app)
		}
		// Mapping adds little.
		delta := RewriteRatio(app, DSM1, true) - RewriteRatio(app, DSM1, false)
		if delta <= 0 || delta > 0.03 {
			t.Errorf("%v: mapping delta %.3f out of range", app, delta)
		}
	}
}

func TestRewriteBreakdownNonEmpty(t *testing.T) {
	ts := RewriteBreakdown(BT, MPI, false)
	if len(ts) == 0 {
		t.Fatal("empty breakdown")
	}
	total := 0
	for _, tr := range ts {
		if tr.Lines <= 0 {
			t.Errorf("transform %q has %d lines", tr.Name, tr.Lines)
		}
		total += tr.Lines
	}
	if float64(total)/float64(seqLines[BT]) != RewriteRatio(BT, MPI, false) {
		t.Error("breakdown does not sum to ratio")
	}
}

func TestDeterministicBuild(t *testing.T) {
	opts := Options{App: SP, Variant: DSM1, Nodes: 4, DataMapping: true, Iterations: 1, Scale: 0.01}
	a, _ := runWorkload(t, opts)
	b, _ := runWorkload(t, opts)
	if a.Time != b.Time {
		t.Fatalf("nondeterministic: %v vs %v", a.Time, b.Time)
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small, _ := runWorkload(t, Options{App: BT, Variant: DSM1, Nodes: 4, DataMapping: true, Iterations: 1, Scale: 0.01})
	big, _ := runWorkload(t, Options{App: BT, Variant: DSM1, Nodes: 4, DataMapping: true, Iterations: 1, Scale: 0.04})
	if big.Totals().Instructions <= small.Totals().Instructions*2 {
		t.Fatalf("scale 4x grew instructions only %d -> %d",
			small.Totals().Instructions, big.Totals().Instructions)
	}
}

func TestStringers(t *testing.T) {
	if BT.String() != "BT" || CG.String() != "CG" || FT.String() != "FT" || SP.String() != "SP" {
		t.Fatal("app names")
	}
	if Seq.String() != "seq" || MPI.String() != "mpi" || DSM1.String() != "dsm(1)" || DSM2.String() != "dsm(2)" {
		t.Fatal("variant names")
	}
}

func TestMPIVariantCommunicates(t *testing.T) {
	r, _ := runWorkload(t, Options{App: FT, Variant: MPI, Nodes: 8, Iterations: 1, Scale: 0.02})
	if r.MPI.Messages == 0 {
		t.Fatal("mpi variant sent no messages")
	}
	if r.Totals().RemoteMisses != 0 {
		t.Fatal("mpi variant generated coherence traffic")
	}
}

func BenchmarkBuildAndRunBT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := Build(Options{App: BT, Variant: DSM2, Nodes: 8, DataMapping: true, Iterations: 1, Scale: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		m := machine.New(machine.Config{Nodes: 8, Multicast: true})
		m.Run(w.Progs)
	}
}

var _ = cpu.Op{} // keep cpu import for helper types used in tests
