package npb

import "testing"

func TestParseApp(t *testing.T) {
	cases := map[string]App{"bt": BT, "BT": BT, "cg": CG, "Ft": FT, "sp": SP}
	for in, want := range cases {
		got, err := ParseApp(in)
		if err != nil || got != want {
			t.Errorf("ParseApp(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseApp("lu"); err == nil {
		t.Error("ParseApp accepted an unknown application")
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]Variant{
		"seq": Seq, "mpi": MPI, "dsm1": DSM1, "dsm2": DSM2,
		"dsm(1)": DSM1, "dsm(2)": DSM2, "DSM2": DSM2,
	}
	for in, want := range cases {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseVariant("omp"); err == nil {
		t.Error("ParseVariant accepted an unknown variant")
	}
}

// TestParseRoundTrips: every enum's rendered name parses back to
// itself, so specs can be echoed and resubmitted.
func TestParseRoundTrips(t *testing.T) {
	for _, a := range Apps() {
		if got, err := ParseApp(a.String()); err != nil || got != a {
			t.Errorf("ParseApp(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	for _, v := range []Variant{Seq, MPI, DSM1, DSM2} {
		if got, err := ParseVariant(v.String()); err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", v.String(), got, err, v)
		}
	}
}
