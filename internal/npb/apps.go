package npb

import (
	"cenju4/internal/cpu"
	"cenju4/internal/shmem"
	"cenju4/internal/topology"
)

// privBufElems sizes the rotating private work buffer (4 MB of address
// space — 4x the secondary cache). See rotStream.
const privBufElems = 512 * 1024

// gridParams tunes the BT/SP ADI solver shape. Both applications sweep
// a 3-D grid in three directions per time step; the third (z) direction
// crosses the plane decomposition, which is what dsm(1) pays for and
// dsm(2) restructures away.
//
// Every variant performs the same compute: `sweeps` passes at `compute`
// instructions per element plus one z-pass of zFraction x partition
// elements at compute/2. The variants differ only in which memory the
// passes touch.
type gridParams struct {
	// compute is the per-element instruction count of a sweep.
	compute uint64
	// zFraction scales the cross-partition z-pass volume relative to
	// the partition size (SP moves more data per flop than BT, hence
	// its lower ceiling).
	zFraction float64
	// dsm2CopyFrac is the fraction of the partition dsm(2) still copies
	// remotely per iteration after the loop translations (boundary
	// planes rather than whole partitions).
	dsm2CopyFrac float64
	// sweeps is the number of partition-local passes per iteration.
	sweeps int
}

// buildGridSolver builds BT or SP.
func buildGridSolver(opts Options, alloc *shmem.Allocator, points int, gp gridParams) ([]cpu.Program, *shmem.Region) {
	p := opts.Nodes
	npp := points / p
	u := alloc.Shared("u", points, mapping(opts))
	work := alloc.Private("work", privBufElems)
	zCount := int(float64(npp) * gp.zFraction)
	passes := gp.sweeps + 2 // rotation stride per iteration

	progs := make([]cpu.Program, p)
	for n := 0; n < p; n++ {
		node := topology.NodeID(n)
		lo, hi := u.OwnerRange(node)
		nextStart := ((n + 1) % p) * npp
		progs[n] = program(opts.Iterations, func(iter int) []phase {
			pass := iter * passes
			var ph []phase
			switch opts.Variant {
			case Seq:
				for s := 0; s < gp.sweeps; s++ {
					ph = append(ph, rotStream(work, pass+s, npp, gp.compute, 2))
				}
				ph = append(ph, rotStream(work, pass+gp.sweeps, zCount, gp.compute/2, 2))

			case DSM1:
				// Outermost-loop parallelization: the sweeps run in place
				// on the shared array (every iteration's stores re-acquire
				// ownership of blocks the neighbor read), and the
				// untransformed z-solve reads AND writes the next node's
				// still-dirty planes.
				for s := 0; s < gp.sweeps; s++ {
					ph = append(ph, stream(sharedAt(u), lo, hi, 1, gp.compute, 2))
					ph = append(ph, barrier())
				}
				z := wrapStream(sharedAt(u), points, nextStart, zCount, 1, gp.compute/2).(*wrapStreamPhase)
				z.storeEvery = 2
				ph = append(ph, z, barrier())

			case DSM2:
				// Loop translations + private work arrays: all passes run
				// on private memory; only boundary planes are copied from
				// the neighbor's partition and the owner writes its own
				// partition back.
				for s := 0; s < gp.sweeps; s++ {
					ph = append(ph, rotStream(work, pass+s, npp, gp.compute, 2))
				}
				ph = append(ph, rotStream(work, pass+gp.sweeps, zCount, gp.compute/2, 2))
				if copyCount := int(float64(npp) * gp.dsm2CopyFrac); copyCount > 0 {
					ph = append(ph, wrapStream(sharedAt(u), points, nextStart, copyCount, 1, 1))
					// Only the boundary planes live in shared memory now;
					// the owner writes just those back.
					wbHi := lo + copyCount
					if wbHi > hi {
						wbHi = hi
					}
					ph = append(ph, stream(sharedAt(u), lo, wbHi, 1, 1, 1))
				}
				ph = append(ph, barrier())

			case MPI:
				// Same private computation, halo exchanges with the two
				// neighbor ranks instead of shared-memory traffic.
				for s := 0; s < gp.sweeps; s++ {
					ph = append(ph, rotStream(work, pass+s, npp, gp.compute, 2))
				}
				ph = append(ph, rotStream(work, pass+gp.sweeps, zCount, gp.compute/2, 2))
				if p > 1 {
					halo := uint64(npp * shmem.ElemSize / 8)
					left := topology.NodeID((n + p - 1) % p)
					right := topology.NodeID((n + 1) % p)
					ph = append(ph, &opPhase{ops: []cpu.Op{
						send(left, halo), send(right, halo),
						recv(left), recv(right),
					}})
				}
				ph = append(ph, allReduce(8))
			}
			return ph
		})
	}
	return progs, u
}

// buildFT builds the 3-D FFT kernel: three compute-dense 1-D FFT passes
// and a global transpose each iteration.
func buildFT(opts Options, alloc *shmem.Allocator, points int) ([]cpu.Program, *shmem.Region) {
	const fftCompute = 40
	const fftPasses = 3
	p := opts.Nodes
	npp := points / p
	x := alloc.Shared("x", points, mapping(opts))
	y := alloc.Private("y", privBufElems)

	progs := make([]cpu.Program, p)
	for n := 0; n < p; n++ {
		node := topology.NodeID(n)
		lo, hi := x.OwnerRange(node)
		nextStart := ((n + 1) % p) * npp
		progs[n] = program(opts.Iterations, func(iter int) []phase {
			pass := iter * (fftPasses + 1)
			var ph []phase
			switch opts.Variant {
			case Seq:
				for s := 0; s < fftPasses; s++ {
					ph = append(ph, rotStream(y, pass+s, npp, fftCompute, 2))
				}
				ph = append(ph, rotStream(y, pass+fftPasses, npp, 2, 2))

			case DSM1:
				// FFT passes in place on the shared array; the transpose
				// reads and writes the neighbor's still-dirty partition.
				for s := 0; s < fftPasses; s++ {
					ph = append(ph, stream(sharedAt(x), lo, hi, 1, fftCompute, 2))
					ph = append(ph, barrier())
				}
				tr := wrapStream(sharedAt(x), points, nextStart, npp, 1, 2).(*wrapStreamPhase)
				tr.storeEvery = 2
				ph = append(ph, tr, barrier())

			case DSM2:
				// FFT passes on private memory; a blocked remote copy of
				// the transposed half, one owned write-back.
				for s := 0; s < fftPasses; s++ {
					ph = append(ph, rotStream(y, pass+s, npp, fftCompute, 2))
				}
				ph = append(ph, rotStream(y, pass+fftPasses, npp, 2, 2))
				ph = append(ph, wrapStream(sharedAt(x), points, nextStart, npp/4, 1, 1))
				ph = append(ph, stream(sharedAt(x), lo, lo+npp/4, 1, 1, 1))
				ph = append(ph, barrier())

			case MPI:
				for s := 0; s < fftPasses; s++ {
					ph = append(ph, rotStream(y, pass+s, npp, fftCompute, 2))
				}
				ph = append(ph, rotStream(y, pass+fftPasses, npp, 2, 2))
				if p > 1 {
					// All-to-all transpose: each rank exchanges 1/p of its
					// partition with every other rank.
					vol := uint64(npp / p * shmem.ElemSize)
					if vol == 0 {
						vol = shmem.ElemSize
					}
					var ops []cpu.Op
					for d := 1; d < p; d++ {
						ops = append(ops, send(topology.NodeID((n+d)%p), vol))
					}
					for d := 1; d < p; d++ {
						ops = append(ops, recv(topology.NodeID((n+p-d)%p)))
					}
					ph = append(ph, &opPhase{ops: ops})
				}
				ph = append(ph, barrier())
			}
			return ph
		})
	}
	return progs, x
}

// buildCG builds the conjugate-gradient kernel. The defining pattern:
// every node streams the *entire* shared vector p during the sparse
// mat-vec while p is rewritten by its owners each iteration, so the
// per-node re-fetch cost is constant in machine size while the per-node
// compute shrinks — the cause of CG's saturation in Figure 12.
func buildCG(opts Options, alloc *shmem.Allocator, points, nnz int) ([]cpu.Program, *shmem.Region) {
	p := opts.Nodes
	nnzPP := nnz / p
	vec := alloc.Shared("p", points, mapping(opts))
	a := alloc.Private("a", nnzPP)
	pPriv := alloc.Private("pcopy", points)

	progs := make([]cpu.Program, p)
	for n := 0; n < p; n++ {
		node := topology.NodeID(n)
		lo, hi := vec.OwnerRange(node)
		progs[n] = program(opts.Iterations, func(int) []phase {
			var ph []phase
			switch opts.Variant {
			case Seq:
				ph = append(ph,
					pairedStream(privateAt(pPriv), points, 0, nnzPP, 1, privateAt(a), a.Len(), 4),
					stream(privateAt(pPriv), 0, points, 1, 2, 1),
				)

			case DSM1, DSM2:
				// The paper found the dsm(2) optimizations do not change
				// CG's access structure (Table 3); the variants differ
				// only in rewriting effort.
				ph = append(ph,
					// Sparse mat-vec: A streams from private memory, p's
					// columns wrap the whole shared vector.
					pairedStream(sharedAt(vec), points, lo, nnzPP, 1, privateAt(a), a.Len(), 4),
					allReduce(8),
					allReduce(8),
					// Owners rewrite their partition of p, invalidating
					// every node's cached copy.
					stream(sharedAt(vec), lo, hi, 1, 2, 1),
					barrier(),
				)

			case MPI:
				ph = append(ph,
					pairedStream(privateAt(pPriv), points, lo, nnzPP, 1, privateAt(a), a.Len(), 4),
					allReduce(8),
					allReduce(8),
					stream(privateAt(pPriv), lo, hi, 1, 2, 1),
				)
				if p > 1 {
					// Exchange updated vector segments around the ring
					// (NPB CG exchanges with reduce partners; ring volume
					// is equivalent for our purposes).
					vol := uint64((hi - lo) * shmem.ElemSize)
					left := topology.NodeID((n + p - 1) % p)
					right := topology.NodeID((n + 1) % p)
					ph = append(ph, &opPhase{ops: []cpu.Op{
						send(left, vol), send(right, vol),
						recv(left), recv(right),
					}})
				}
			}
			return ph
		})
	}
	return progs, vec
}
