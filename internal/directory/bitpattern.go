// Package directory implements the Cenju-4 directory entry and the
// node-map schemes it is compared against.
//
// Each 128-byte memory block is associated with one 64-bit directory
// entry holding a reservation bit, the block state, a format flag, and a
// node map — a record of the nodes caching the block. The node map
// starts as a pointer structure (up to four 10-bit node pointers) and
// dynamically switches to a bit-pattern structure when a fifth sharer
// appears. The bit-pattern structure encodes the 2+2+1+5 bit fields of a
// 10-bit node number as one-hot vectors of 4+4+2+32 = 42 bits, ORed over
// all sharers. Decoding yields the cross product of the set bits in each
// field: a superset of the true sharers that is exact for <= 4 sharers
// (pointer form) and for machines of <= 32 nodes (only the 32-bit field
// varies).
//
// The package also implements the schemes of Figure 4 and Table 1 —
// full map, coarse vector, hierarchical bit-map — behind a common
// NodeMap interface, plus Monte-Carlo precision evaluation.
package directory

import (
	"fmt"
	"math/bits"

	"cenju4/internal/topology"
)

// Bit-pattern field geometry: a 10-bit node number n is split
// (MSB-first) into fields of 2, 2, 1 and 5 bits, each encoded one-hot.
const (
	// BitPatternBits is the total width of the bit-pattern structure.
	BitPatternBits = 42

	f4Width = 32 // one-hot of n[4:0]
	f3Width = 2  // one-hot of n[5]
	f2Width = 4  // one-hot of n[7:6]
	f1Width = 4  // one-hot of n[9:8]

	f4Shift = 0
	f3Shift = f4Shift + f4Width // 32
	f2Shift = f3Shift + f3Width // 34
	f1Shift = f2Shift + f2Width // 38

	f4Mask = (1<<f4Width - 1) << f4Shift
	f3Mask = (1<<f3Width - 1) << f3Shift
	f2Mask = (1<<f2Width - 1) << f2Shift
	f1Mask = (1<<f1Width - 1) << f1Shift
)

// BitPattern is the 42-bit bit-pattern node map, stored in the low 42
// bits of a uint64. The zero value is an empty map.
type BitPattern uint64

// EncodeNode returns the 42-bit pattern representing exactly one node.
func EncodeNode(n topology.NodeID) BitPattern {
	if n >= topology.MaxNodes {
		panic(fmt.Sprintf("directory: node %d out of range", n))
	}
	f1 := uint64(n) >> 8 & 0x3
	f2 := uint64(n) >> 6 & 0x3
	f3 := uint64(n) >> 5 & 0x1
	f4 := uint64(n) & 0x1f
	return BitPattern(1<<(f1Shift+f1) | 1<<(f2Shift+f2) | 1<<(f3Shift+f3) | 1<<(f4Shift+f4))
}

// Add ORs node n into the pattern.
func (p *BitPattern) Add(n topology.NodeID) { *p |= EncodeNode(n) }

// Union returns the OR of two patterns.
func (p BitPattern) Union(q BitPattern) BitPattern { return p | q }

// Empty reports whether no node is represented.
func (p BitPattern) Empty() bool { return p == 0 }

// fields returns the four one-hot fields (f1, f2, f3, f4).
func (p BitPattern) fields() (f1, f2, f3, f4 uint64) {
	v := uint64(p)
	return v & f1Mask >> f1Shift, v & f2Mask >> f2Shift, v & f3Mask >> f3Shift, v & f4Mask >> f4Shift
}

// Contains reports whether node n is in the represented set (the cross
// product of the fields). A true result does not imply n was Added —
// the structure is imprecise.
func (p BitPattern) Contains(n topology.NodeID) bool {
	return p&EncodeNode(n) == EncodeNode(n)
}

// Count returns the number of nodes in the represented set: the product
// of the per-field popcounts. An empty pattern counts zero.
func (p BitPattern) Count() int {
	if p == 0 {
		return 0
	}
	f1, f2, f3, f4 := p.fields()
	return bits.OnesCount64(f1) * bits.OnesCount64(f2) * bits.OnesCount64(f3) * bits.OnesCount64(f4)
}

// Members appends the represented node set (ascending) to dst and
// returns it. Nodes >= limit are skipped, so callers pass the machine
// size to confine decoding to real nodes.
func (p BitPattern) Members(dst []topology.NodeID, limit int) []topology.NodeID {
	if p == 0 {
		return dst
	}
	f1, f2, f3, f4 := p.fields()
	for a := 0; a < f1Width; a++ {
		if f1>>a&1 == 0 {
			continue
		}
		for b := 0; b < f2Width; b++ {
			if f2>>b&1 == 0 {
				continue
			}
			for c := 0; c < f3Width; c++ {
				if f3>>c&1 == 0 {
					continue
				}
				for d := 0; d < f4Width; d++ {
					if f4>>d&1 == 0 {
						continue
					}
					n := a<<8 | b<<6 | c<<5 | d
					if n < limit {
						dst = append(dst, topology.NodeID(n))
					}
				}
			}
		}
	}
	return dst
}

func (p BitPattern) String() string {
	f1, f2, f3, f4 := p.fields()
	return fmt.Sprintf("bp[%04b %04b %02b %032b]", f1, f2, f3, f4)
}
