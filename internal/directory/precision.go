package directory

import (
	"fmt"
	"math/rand"

	"cenju4/internal/topology"
)

// PrecisionPoint is one measurement for Figure 4: with Sharers true
// sharers drawn at random, the scheme's node map decoded to an average
// of Represented nodes over the Monte-Carlo trials.
type PrecisionPoint struct {
	Sharers     int
	Represented float64
}

// PrecisionConfig parameterizes a Figure 4 style precision sweep.
type PrecisionConfig struct {
	// TotalNodes is the machine size (1024 in the paper).
	TotalNodes int
	// GroupSize confines the random sharers to one aligned group of
	// this many nodes (Figure 4(b) uses 128). Zero or TotalNodes means
	// sharers are drawn from the whole machine (Figure 4(a)).
	GroupSize int
	// Trials is the Monte-Carlo sample count per point.
	Trials int
	// Seed makes the sweep reproducible.
	Seed int64
}

func (c PrecisionConfig) validate() PrecisionConfig {
	if c.TotalNodes <= 0 {
		c.TotalNodes = topology.MaxNodes
	}
	if c.GroupSize <= 0 || c.GroupSize > c.TotalNodes {
		c.GroupSize = c.TotalNodes
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	return c
}

// EvaluatePrecision measures the average represented-set size of one
// scheme for each sharer count in sharerCounts. Sharers are chosen
// uniformly without replacement; when GroupSize < TotalNodes each trial
// first picks a random aligned group (the "multi-user environment"
// scenario where a partition of the machine runs one program).
func EvaluatePrecision(s Scheme, cfg PrecisionConfig, sharerCounts []int) []PrecisionPoint {
	cfg = cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]PrecisionPoint, 0, len(sharerCounts))
	perm := make([]int, cfg.GroupSize)
	for _, k := range sharerCounts {
		if k > cfg.GroupSize {
			continue
		}
		sum := 0.0
		m := s.New(cfg.TotalNodes)
		for t := 0; t < cfg.Trials; t++ {
			m.Clear()
			base := 0
			if cfg.GroupSize < cfg.TotalNodes {
				groups := cfg.TotalNodes / cfg.GroupSize
				base = rng.Intn(groups) * cfg.GroupSize
			}
			for i := range perm {
				perm[i] = i
			}
			// Partial Fisher-Yates: first k entries are the sharers.
			for i := 0; i < k; i++ {
				j := i + rng.Intn(cfg.GroupSize-i)
				perm[i], perm[j] = perm[j], perm[i]
				m.Add(topology.NodeID(base + perm[i]))
			}
			sum += float64(m.Count())
		}
		out = append(out, PrecisionPoint{Sharers: k, Represented: sum / float64(cfg.Trials)})
	}
	return out
}

// DefaultSharerCounts returns the log-spaced sharer counts used for the
// Figure 4 sweeps, capped at max.
func DefaultSharerCounts(max int) []int {
	base := []int{1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}
	out := make([]int, 0, len(base))
	for _, k := range base {
		if k <= max {
			out = append(out, k)
		}
	}
	return out
}

// Overshoot returns the ratio represented/sharers for a point — 1.0
// means a perfectly precise record.
func (p PrecisionPoint) Overshoot() float64 {
	if p.Sharers == 0 {
		return 1
	}
	return p.Represented / float64(p.Sharers)
}

func (p PrecisionPoint) String() string {
	return fmt.Sprintf("{sharers=%d represented=%.1f}", p.Sharers, p.Represented)
}
