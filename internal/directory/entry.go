package directory

import (
	"fmt"

	"cenju4/internal/topology"
)

// State is the coherence state of a memory block, stored in the
// directory entry. Clean and Dirty are stable; the Pending states mark
// blocks with an outstanding transaction (requests targeting them are
// queued, never NACKed).
type State uint8

const (
	// Clean: one or more nodes may cache the data; memory is valid.
	Clean State = iota
	// Dirty: exactly one node caches the data; memory may be stale.
	Dirty
	// PendingShared: a read-shared request has been forwarded to the
	// dirty slave and its reply is awaited.
	PendingShared
	// PendingExclusive: a read-exclusive transaction is in flight
	// (invalidations multicast, or forwarded to the dirty slave).
	PendingExclusive
	// PendingInvalidate: an ownership transaction's invalidations are in
	// flight.
	PendingInvalidate
	// PendingUpdate: an update-protocol write's data multicast is in
	// flight (the Section 4.2.3 extension; not part of the original
	// Cenju-4 protocol).
	PendingUpdate
)

// Pending reports whether s is one of the three pending states.
func (s State) Pending() bool { return s >= PendingShared }

func (s State) String() string {
	switch s {
	case Clean:
		return "C"
	case Dirty:
		return "D"
	case PendingShared:
		return "Ps"
	case PendingExclusive:
		return "Pe"
	case PendingInvalidate:
		return "Pi"
	case PendingUpdate:
		return "Pu"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is the 64-bit Cenju-4 directory entry:
//
//	bit  63    : reservation bit (a queued request waits on this block)
//	bits 62-60 : block state
//	bit  59    : node-map format (0 = pointer, 1 = bit-pattern)
//	bits 58-0  : node map
//
// In pointer format the map holds a 3-bit sharer count (bits 42-40) and
// up to four 10-bit node pointers (bits 39-0). In bit-pattern format the
// low 42 bits hold a BitPattern. The entry never switches back from
// bit-pattern to pointer format except through MapClear/MapSetOnly,
// mirroring the hardware.
type Entry uint64

const (
	reservedBit = 63
	stateShift  = 60
	stateMask   = 0x7
	formatBit   = 59

	ptrCountShift = 40
	ptrCountMask  = 0x7
	ptrWidth      = 10
	ptrMask       = 1<<ptrWidth - 1

	// MaxPointers is the number of node pointers held before the entry
	// switches to the bit-pattern structure.
	MaxPointers = 4

	mapMask = 1<<59 - 1
)

// Reserved reports the reservation bit.
func (e Entry) Reserved() bool { return e>>reservedBit&1 == 1 }

// SetReserved sets or clears the reservation bit.
func (e *Entry) SetReserved(v bool) {
	if v {
		*e |= 1 << reservedBit
	} else {
		*e &^= 1 << reservedBit
	}
}

// State returns the block state.
func (e Entry) State() State { return State(e >> stateShift & stateMask) }

// SetState stores the block state.
func (e *Entry) SetState(s State) {
	*e = *e&^(stateMask<<stateShift) | Entry(s)<<stateShift
}

// UsesBitPattern reports whether the node map is in bit-pattern format.
func (e Entry) UsesBitPattern() bool { return e>>formatBit&1 == 1 }

// MapClear empties the node map and returns it to pointer format.
func (e *Entry) MapClear() { *e &^= 1<<formatBit | mapMask }

// MapSetOnly resets the node map to record exactly node n (pointer
// format). Used when the home grants an exclusive copy.
func (e *Entry) MapSetOnly(n topology.NodeID) {
	e.MapClear()
	e.MapAdd(n)
}

// pointers returns the pointer-format sharer list in scratch storage.
// Only valid when !UsesBitPattern(). The return is a value (inline
// array), so decoding never touches the heap.
func (e Entry) pointers() ([MaxPointers]topology.NodeID, int) {
	var out [MaxPointers]topology.NodeID
	cnt := int(e >> ptrCountShift & ptrCountMask)
	for i := 0; i < cnt; i++ {
		out[i] = topology.NodeID(e >> (i * ptrWidth) & ptrMask)
	}
	return out, cnt
}

// MapAdd records node n as a sharer. In pointer format a fifth distinct
// sharer triggers the dynamic switch to the bit-pattern structure,
// re-encoding the four pointers plus n.
func (e *Entry) MapAdd(n topology.NodeID) {
	if n >= topology.MaxNodes {
		panic(fmt.Sprintf("directory: node %d out of range", n))
	}
	if e.UsesBitPattern() {
		bp := e.bitPattern()
		bp.Add(n)
		e.setBitPattern(bp)
		return
	}
	cnt := int(*e >> ptrCountShift & ptrCountMask)
	for i := 0; i < cnt; i++ {
		if topology.NodeID(*e>>(i*ptrWidth)&ptrMask) == n {
			return // already recorded
		}
	}
	if cnt < MaxPointers {
		*e = *e&^(ptrCountMask<<ptrCountShift) |
			Entry(cnt+1)<<ptrCountShift |
			Entry(n)<<(cnt*ptrWidth)
		return
	}
	// Dynamic switch: pointer structure is full.
	var bp BitPattern
	ptrs, cnt := e.pointers()
	for _, p := range ptrs[:cnt] {
		bp.Add(p)
	}
	bp.Add(n)
	*e &^= mapMask
	*e |= 1 << formatBit
	e.setBitPattern(bp)
}

func (e Entry) bitPattern() BitPattern {
	return BitPattern(e & (1<<BitPatternBits - 1))
}

func (e *Entry) setBitPattern(bp BitPattern) {
	*e = *e&^Entry(1<<BitPatternBits-1) | Entry(bp)
}

// MapEmpty reports whether the node map represents no node.
func (e Entry) MapEmpty() bool {
	if e.UsesBitPattern() {
		return e.bitPattern().Empty()
	}
	return e>>ptrCountShift&ptrCountMask == 0
}

// MapContains reports whether n is in the represented set (possibly a
// superset of the true sharers in bit-pattern format).
func (e Entry) MapContains(n topology.NodeID) bool {
	if e.UsesBitPattern() {
		return e.bitPattern().Contains(n)
	}
	cnt := int(e >> ptrCountShift & ptrCountMask)
	for i := 0; i < cnt; i++ {
		if topology.NodeID(e>>(i*ptrWidth)&ptrMask) == n {
			return true
		}
	}
	return false
}

// MapCount returns the size of the represented set.
func (e Entry) MapCount() int {
	if e.UsesBitPattern() {
		return e.bitPattern().Count()
	}
	return int(e >> ptrCountShift & ptrCountMask)
}

// MapIsOnly reports whether the represented set is empty or exactly
// {n} — the "no node or only the master is registered" test of the
// protocol.
func (e Entry) MapIsOnly(n topology.NodeID) bool {
	switch e.MapCount() {
	case 0:
		return true
	case 1:
		return e.MapContains(n)
	default:
		return false
	}
}

// MapHasOthers reports whether the represented set contains any node
// other than n.
func (e Entry) MapHasOthers(n topology.NodeID) bool {
	c := e.MapCount()
	if c == 0 {
		return false
	}
	if c > 1 {
		return true
	}
	return !e.MapContains(n)
}

// MapMembers appends the represented node set to dst, restricted to
// nodes below limit (the machine size). With a dst of sufficient
// capacity the decode is allocation-free.
//
//cenju4:hotpath
func (e Entry) MapMembers(dst []topology.NodeID, limit int) []topology.NodeID {
	if e.UsesBitPattern() {
		return e.bitPattern().Members(dst, limit)
	}
	cnt := int(e >> ptrCountShift & ptrCountMask)
	for i := 0; i < cnt; i++ {
		if p := topology.NodeID(e >> (i * ptrWidth) & ptrMask); int(p) < limit {
			dst = append(dst, p)
		}
	}
	return dst
}

// Dest returns the multicast destination specification matching the
// node map: the same pointer or bit-pattern structure is carried in the
// invalidation message so the network delivers copies only to
// represented nodes.
//
//cenju4:hotpath
func (e Entry) Dest() Dest {
	if e.UsesBitPattern() {
		return Dest{Pattern: e.bitPattern(), IsPattern: true}
	}
	d := Dest{}
	d.ptrs, d.nptr = e.pointers()
	return d
}

func (e Entry) String() string {
	r := ""
	if e.Reserved() {
		r = "R,"
	}
	if e.UsesBitPattern() {
		return fmt.Sprintf("dir[%s%v,%v]", r, e.State(), e.bitPattern())
	}
	ptrs, cnt := e.pointers()
	return fmt.Sprintf("dir[%s%v,ptr%v]", r, e.State(), ptrs[:cnt])
}

// Dest is a multicast destination specification: either an explicit
// pointer list (precise, <= 4 nodes) or a bit-pattern. It mirrors the
// directory's two formats, as in the hardware, so invalidations reach
// exactly the represented set. The pointer list is stored inline — a
// Dest is a small value, built and copied without heap traffic on the
// per-message hot path.
type Dest struct {
	ptrs      [MaxPointers]topology.NodeID
	nptr      int
	Pattern   BitPattern
	IsPattern bool
}

// PointerDest builds a pointer-format destination from an explicit node
// list (at most MaxPointers entries).
func PointerDest(nodes ...topology.NodeID) Dest {
	if len(nodes) > MaxPointers {
		panic(fmt.Sprintf("directory: %d nodes exceed the pointer structure", len(nodes)))
	}
	d := Dest{nptr: len(nodes)}
	copy(d.ptrs[:], nodes)
	return d
}

// Pointers returns the pointer-format node list (empty in bit-pattern
// format). The slice aliases the receiver's inline storage.
func (d *Dest) Pointers() []topology.NodeID { return d.ptrs[:d.nptr] }

// SingleTo reports whether d addresses exactly node n in pointer
// format — the singlecast test the message layer applies per send.
func (d Dest) SingleTo(n topology.NodeID) bool {
	return !d.IsPattern && d.nptr == 1 && d.ptrs[0] == n
}

// Members appends the destination node set (below limit) to dst.
//
//cenju4:hotpath
func (d Dest) Members(dst []topology.NodeID, limit int) []topology.NodeID {
	if d.IsPattern {
		return d.Pattern.Members(dst, limit)
	}
	for _, p := range d.ptrs[:d.nptr] {
		if int(p) < limit {
			dst = append(dst, p)
		}
	}
	return dst
}

// Count returns the size of the destination set (limit-confined counts
// require Members; Count is the raw represented size).
func (d Dest) Count() int {
	if d.IsPattern {
		return d.Pattern.Count()
	}
	return d.nptr
}

// Contains reports whether node n is a destination.
func (d Dest) Contains(n topology.NodeID) bool {
	if d.IsPattern {
		return d.Pattern.Contains(n)
	}
	for _, p := range d.ptrs[:d.nptr] {
		if p == n {
			return true
		}
	}
	return false
}

// Single returns a destination spec for exactly one node.
//
//cenju4:hotpath
func Single(n topology.NodeID) Dest {
	return Dest{ptrs: [MaxPointers]topology.NodeID{n}, nptr: 1}
}

// AllNodes returns a bit-pattern destination covering exactly nodes
// 0..n-1 (n a power of two). The update-protocol extension uses it to
// address every third-level cache with one multicast.
func AllNodes(n int) Dest {
	var bp BitPattern
	for i := 0; i < n; i++ {
		bp.Add(topology.NodeID(i))
	}
	return Dest{Pattern: bp, IsPattern: true}
}
