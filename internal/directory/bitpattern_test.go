package directory

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cenju4/internal/topology"
)

func TestEncodeNodeFigure3(t *testing.T) {
	// Figure 3's worked example: the encodings of nodes 0, 4, 5, 32, 164.
	cases := []struct {
		node           topology.NodeID
		f1, f2, f3, f4 uint64
	}{
		{0, 0b0001, 0b0001, 0b01, 1 << 0},
		{4, 0b0001, 0b0001, 0b01, 1 << 4},
		{5, 0b0001, 0b0001, 0b01, 1 << 5},
		{32, 0b0001, 0b0001, 0b10, 1 << 0},
		{164, 0b0001, 0b0100, 0b10, 1 << 4},
	}
	for _, c := range cases {
		p := EncodeNode(c.node)
		f1, f2, f3, f4 := p.fields()
		if f1 != c.f1 || f2 != c.f2 || f3 != c.f3 || f4 != c.f4 {
			t.Errorf("EncodeNode(%d) fields = %04b %04b %02b %032b, want %04b %04b %02b %032b",
				c.node, f1, f2, f3, f4, c.f1, c.f2, c.f3, c.f4)
		}
	}
}

func TestBitPatternFigure3Union(t *testing.T) {
	// ORing nodes 0, 4, 5, 32, 164 must represent exactly the twelve
	// nodes listed in Figure 3(c).
	var p BitPattern
	for _, n := range []topology.NodeID{0, 4, 5, 32, 164} {
		p.Add(n)
	}
	want := []topology.NodeID{0, 4, 5, 32, 36, 37, 128, 132, 133, 160, 164, 165}
	if p.Count() != len(want) {
		t.Fatalf("Count() = %d, want %d", p.Count(), len(want))
	}
	got := p.Members(nil, topology.MaxNodes)
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
}

func TestBitPatternEmpty(t *testing.T) {
	var p BitPattern
	if !p.Empty() || p.Count() != 0 {
		t.Fatal("zero BitPattern not empty")
	}
	if got := p.Members(nil, 1024); len(got) != 0 {
		t.Fatalf("empty Members() = %v", got)
	}
}

func TestBitPatternSingleNodeExact(t *testing.T) {
	for n := 0; n < topology.MaxNodes; n += 7 {
		p := EncodeNode(topology.NodeID(n))
		if p.Count() != 1 {
			t.Fatalf("single node %d Count() = %d", n, p.Count())
		}
		m := p.Members(nil, topology.MaxNodes)
		if len(m) != 1 || m[0] != topology.NodeID(n) {
			t.Fatalf("single node %d Members() = %v", n, m)
		}
	}
}

// Property: the represented set always contains every added node
// (conservative superset — never loses a sharer).
func TestPropertyBitPatternSuperset(t *testing.T) {
	f := func(raw []uint16) bool {
		var p BitPattern
		added := map[topology.NodeID]bool{}
		for _, r := range raw {
			n := topology.NodeID(r % topology.MaxNodes)
			p.Add(n)
			added[n] = true
		}
		for n := range added {
			if !p.Contains(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the length of Members with no limit, and
// Members is sorted ascending with no duplicates.
func TestPropertyBitPatternCountMatchesMembers(t *testing.T) {
	f := func(raw []uint16) bool {
		var p BitPattern
		for _, r := range raw {
			p.Add(topology.NodeID(r % topology.MaxNodes))
		}
		m := p.Members(nil, topology.MaxNodes)
		if len(m) != p.Count() {
			return false
		}
		if !sort.SliceIsSorted(m, func(i, j int) bool { return m[i] < m[j] }) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i] == m[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: within a 32-node machine the bit-pattern is precise — the
// paper's guarantee (b): only the 32-bit field varies.
func TestPropertyBitPatternPreciseUpTo32Nodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var p BitPattern
		added := map[topology.NodeID]bool{}
		k := 1 + rng.Intn(32)
		for i := 0; i < k; i++ {
			n := topology.NodeID(rng.Intn(32))
			p.Add(n)
			added[n] = true
		}
		if p.Count() != len(added) {
			t.Fatalf("32-node machine: %d sharers represented as %d", len(added), p.Count())
		}
	}
}

func TestBitPatternMembersLimit(t *testing.T) {
	var p BitPattern
	p.Add(5)
	p.Add(900)
	m := p.Members(nil, 64) // machine of 64 nodes: decoded set clipped
	for _, n := range m {
		if n >= 64 {
			t.Fatalf("Members(limit=64) returned node %d", n)
		}
	}
}

func TestEncodeNodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeNode(1024) did not panic")
		}
	}()
	EncodeNode(1024)
}

func TestBitPatternUnion(t *testing.T) {
	a := EncodeNode(3)
	b := EncodeNode(900)
	u := a.Union(b)
	if !u.Contains(3) || !u.Contains(900) {
		t.Fatal("union lost a member")
	}
}
