package directory

import "testing"

func TestCostProfilesMatchTable1(t *testing.T) {
	profiles := CostProfiles()
	if len(profiles) != 6 {
		t.Fatalf("%d profiles, want 6", len(profiles))
	}
	for _, p := range profiles {
		// Table 1's two columns must be consistent with the quantitative
		// model.
		if p.HardwareScalable {
			// Storage at 1024 nodes must not exceed the Cenju-4 entry's
			// node-map budget by an order of magnitude.
			if bits := p.StorageBits(1024); bits > 128 {
				t.Errorf("%s: %d bits at 1024 nodes but claims hardware scalability", p.Name, bits)
			}
		} else if p.StorageBits(1024) <= p.StorageBits(64) {
			t.Errorf("%s: storage does not grow but claims unscalable hardware", p.Name)
		}
		if p.AccessScalable {
			if p.EnumAccesses(1024) != p.EnumAccesses(1) {
				t.Errorf("%s: enumeration grows with sharers but claims access scalability", p.Name)
			}
		} else if p.EnumAccesses(1024) <= p.EnumAccesses(4) {
			t.Errorf("%s: enumeration does not grow but claims unscalable access", p.Name)
		}
	}
}

func TestCostComparisonRows(t *testing.T) {
	rows := CostComparison()
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
	fm := byName["Full Map"]
	if fm.Bits1024 != 1024 || fm.Enum1024 != 1 {
		t.Errorf("full map row = %+v", fm)
	}
	cj := byName["Cenju-4 (Pointer + Bit Pattern)"]
	if cj.Bits1024 != BitPatternBits || cj.Enum1024 != 1 {
		t.Errorf("cenju-4 row = %+v", cj)
	}
	sci := byName["Chained (SCI)"]
	if sci.Enum1024 != 1025 {
		t.Errorf("SCI enumeration = %d, want 1+k", sci.Enum1024)
	}
	ll := byName["LimitLESS"]
	if ll.Enum1 != 1 || ll.Enum32 <= 1 {
		t.Errorf("LimitLESS enumeration = %+v", ll)
	}
	// Only the two access-scalable schemes enumerate in one access at
	// full sharing.
	oneAccess := 0
	for _, r := range rows {
		if r.Enum1024 == 1 && r.Bits1024 <= 128 {
			oneAccess++
		}
	}
	if oneAccess != 2 {
		t.Errorf("%d schemes are fully scalable, want 2 (Origin, Cenju-4)", oneAccess)
	}
}

func TestLog2Helper(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 2, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
