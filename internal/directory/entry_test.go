package directory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cenju4/internal/topology"
)

func TestEntryZeroValue(t *testing.T) {
	var e Entry
	if e.Reserved() || e.State() != Clean || e.UsesBitPattern() || !e.MapEmpty() {
		t.Fatalf("zero entry = %v, want clean/unreserved/empty pointer map", e)
	}
}

func TestEntryStateRoundTrip(t *testing.T) {
	var e Entry
	for _, s := range []State{Clean, Dirty, PendingShared, PendingExclusive, PendingInvalidate} {
		e.SetState(s)
		if e.State() != s {
			t.Errorf("SetState(%v) read back %v", s, e.State())
		}
	}
	// State changes must not clobber the map or reservation bit.
	e.MapAdd(7)
	e.SetReserved(true)
	e.SetState(Dirty)
	if !e.MapContains(7) || !e.Reserved() {
		t.Error("SetState clobbered map or reservation")
	}
}

func TestEntryReservationBit(t *testing.T) {
	var e Entry
	e.SetReserved(true)
	if !e.Reserved() {
		t.Fatal("reservation bit not set")
	}
	e.SetReserved(false)
	if e.Reserved() {
		t.Fatal("reservation bit not cleared")
	}
}

func TestEntryPointerPhase(t *testing.T) {
	var e Entry
	nodes := []topology.NodeID{10, 20, 30, 40}
	for i, n := range nodes {
		e.MapAdd(n)
		if e.UsesBitPattern() {
			t.Fatalf("switched to bit-pattern at %d sharers", i+1)
		}
		if e.MapCount() != i+1 {
			t.Fatalf("MapCount() = %d after %d adds", e.MapCount(), i+1)
		}
	}
	for _, n := range nodes {
		if !e.MapContains(n) {
			t.Errorf("pointer map lost node %d", n)
		}
	}
	if e.MapContains(15) {
		t.Error("pointer map contains node never added")
	}
}

func TestEntryDuplicateAddIsNoop(t *testing.T) {
	var e Entry
	e.MapAdd(5)
	e.MapAdd(5)
	e.MapAdd(5)
	if e.MapCount() != 1 {
		t.Fatalf("MapCount() = %d after duplicate adds, want 1", e.MapCount())
	}
	if e.UsesBitPattern() {
		t.Fatal("duplicate adds triggered format switch")
	}
}

func TestEntryDynamicSwitchAtFifthSharer(t *testing.T) {
	var e Entry
	nodes := []topology.NodeID{0, 4, 5, 32}
	for _, n := range nodes {
		e.MapAdd(n)
	}
	if e.UsesBitPattern() {
		t.Fatal("switched early")
	}
	e.MapAdd(164) // fifth sharer: dynamic switch
	if !e.UsesBitPattern() {
		t.Fatal("no switch at fifth sharer")
	}
	// Figure 3: now 12 nodes represented.
	if e.MapCount() != 12 {
		t.Fatalf("MapCount() after switch = %d, want 12", e.MapCount())
	}
	for _, n := range append(nodes, 164) {
		if !e.MapContains(n) {
			t.Errorf("lost sharer %d across switch", n)
		}
	}
}

func TestEntryMapSetOnly(t *testing.T) {
	var e Entry
	for i := 0; i < 10; i++ {
		e.MapAdd(topology.NodeID(i * 13))
	}
	e.MapSetOnly(42)
	if e.UsesBitPattern() {
		t.Fatal("MapSetOnly left bit-pattern format")
	}
	if e.MapCount() != 1 || !e.MapContains(42) {
		t.Fatalf("MapSetOnly: count=%d contains42=%v", e.MapCount(), e.MapContains(42))
	}
}

func TestEntryMapClear(t *testing.T) {
	var e Entry
	for i := 0; i < 6; i++ {
		e.MapAdd(topology.NodeID(i * 100))
	}
	e.SetState(Dirty)
	e.SetReserved(true)
	e.MapClear()
	if !e.MapEmpty() || e.UsesBitPattern() {
		t.Fatal("MapClear did not empty / reset format")
	}
	if e.State() != Dirty || !e.Reserved() {
		t.Fatal("MapClear clobbered state or reservation")
	}
}

func TestEntryMapIsOnly(t *testing.T) {
	var e Entry
	if !e.MapIsOnly(3) {
		t.Error("empty map: MapIsOnly should be true")
	}
	e.MapAdd(3)
	if !e.MapIsOnly(3) {
		t.Error("single sharer: MapIsOnly(3) should be true")
	}
	if e.MapIsOnly(4) {
		t.Error("MapIsOnly(4) should be false when only 3 registered")
	}
	e.MapAdd(9)
	if e.MapIsOnly(3) {
		t.Error("MapIsOnly should be false with two sharers")
	}
}

func TestEntryMapHasOthers(t *testing.T) {
	var e Entry
	if e.MapHasOthers(1) {
		t.Error("empty map has no others")
	}
	e.MapAdd(1)
	if e.MapHasOthers(1) {
		t.Error("only self registered: no others")
	}
	if !e.MapHasOthers(2) {
		t.Error("node 1 registered is an 'other' for node 2")
	}
	e.MapAdd(7)
	if !e.MapHasOthers(1) {
		t.Error("two sharers: others exist")
	}
}

func TestEntryDestMatchesFormat(t *testing.T) {
	var e Entry
	e.MapAdd(1)
	e.MapAdd(2)
	d := e.Dest()
	if d.IsPattern {
		t.Fatal("pointer-format entry produced pattern dest")
	}
	if len(d.Pointers()) != 2 {
		t.Fatalf("dest pointers = %v", d.Pointers())
	}
	for i := 0; i < 5; i++ {
		e.MapAdd(topology.NodeID(i * 50))
	}
	d = e.Dest()
	if !d.IsPattern {
		t.Fatal("bit-pattern entry produced pointer dest")
	}
	if !d.Contains(1) || !d.Contains(2) {
		t.Fatal("pattern dest lost sharers")
	}
}

func TestDestSingle(t *testing.T) {
	d := Single(77)
	if d.IsPattern || d.Count() != 1 || !d.Contains(77) || d.Contains(78) {
		t.Fatalf("Single(77) = %+v", d)
	}
	m := d.Members(nil, 1024)
	if len(m) != 1 || m[0] != 77 {
		t.Fatalf("Single members = %v", m)
	}
}

// Property: an entry's represented set is always a superset of added
// sharers, across the pointer->bit-pattern switch, and set/clear
// operations never disturb state or reservation bits.
func TestPropertyEntrySupersetAcrossSwitch(t *testing.T) {
	f := func(raw []uint16, stateRaw uint8, reserved bool) bool {
		var e Entry
		e.SetState(State(stateRaw % 5))
		e.SetReserved(reserved)
		added := map[topology.NodeID]bool{}
		for _, r := range raw {
			n := topology.NodeID(r % topology.MaxNodes)
			e.MapAdd(n)
			added[n] = true
		}
		for n := range added {
			if !e.MapContains(n) {
				return false
			}
		}
		if len(added) <= MaxPointers && e.UsesBitPattern() {
			return false // must stay precise up to 4 sharers
		}
		if len(added) <= MaxPointers && e.MapCount() != len(added) {
			return false
		}
		return e.State() == State(stateRaw%5) && e.Reserved() == reserved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MapMembers(limit) only returns nodes < limit and includes
// every added node < limit.
func TestPropertyEntryMembersLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var e Entry
		limit := 1 << (1 + rng.Intn(10)) // 2..1024
		added := map[topology.NodeID]bool{}
		k := 1 + rng.Intn(10)
		for i := 0; i < k; i++ {
			n := topology.NodeID(rng.Intn(limit))
			e.MapAdd(n)
			added[n] = true
		}
		got := e.MapMembers(nil, limit)
		seen := map[topology.NodeID]bool{}
		for _, n := range got {
			if int(n) >= limit {
				t.Fatalf("member %d >= limit %d", n, limit)
			}
			seen[n] = true
		}
		for n := range added {
			if !seen[n] {
				t.Fatalf("added node %d missing from members (limit %d)", n, limit)
			}
		}
	}
}

func TestEntryStringForms(t *testing.T) {
	var e Entry
	e.MapAdd(1)
	if e.String() == "" {
		t.Error("empty String()")
	}
	for i := 0; i < 6; i++ {
		e.MapAdd(topology.NodeID(i))
	}
	e.SetReserved(true)
	if e.String() == "" {
		t.Error("empty String() for bit-pattern entry")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Clean: "C", Dirty: "D", PendingShared: "Ps", PendingExclusive: "Pe", PendingInvalidate: "Pi"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if !PendingShared.Pending() || Clean.Pending() || Dirty.Pending() {
		t.Error("Pending() classification wrong")
	}
}
