package directory

import (
	"math/rand"
	"testing"

	"cenju4/internal/topology"
)

func allSchemes(total int) []NodeMap {
	return []NodeMap{
		NewFullMap(total),
		NewCoarseVector(total, 32),
		NewHierarchicalBitmap(total, 6),
		NewPointerBitPattern(total),
	}
}

// Every scheme must represent a superset of the added sharers.
func TestSchemesSupersetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		total := 1024
		for _, m := range allSchemes(total) {
			m.Clear()
			added := map[topology.NodeID]bool{}
			k := 1 + rng.Intn(64)
			for i := 0; i < k; i++ {
				n := topology.NodeID(rng.Intn(total))
				m.Add(n)
				added[n] = true
			}
			for n := range added {
				if !m.Contains(n) {
					t.Fatalf("%s lost sharer %d", m.Name(), n)
				}
			}
			if m.Count() < len(added) {
				t.Fatalf("%s Count() = %d < %d true sharers", m.Name(), m.Count(), len(added))
			}
			members := m.Members(nil)
			if len(members) != m.Count() {
				t.Fatalf("%s len(Members)=%d != Count=%d", m.Name(), len(members), m.Count())
			}
		}
	}
}

func TestFullMapIsPrecise(t *testing.T) {
	m := NewFullMap(1024)
	nodes := []topology.NodeID{0, 1, 500, 1023}
	for _, n := range nodes {
		m.Add(n)
	}
	if m.Count() != len(nodes) {
		t.Fatalf("Count() = %d, want %d", m.Count(), len(nodes))
	}
	m.Remove(500)
	if m.Contains(500) || m.Count() != 3 {
		t.Fatal("Remove failed")
	}
	if m.Bits() != 1024 {
		t.Fatalf("Bits() = %d", m.Bits())
	}
}

func TestCoarseVectorGrouping(t *testing.T) {
	m := NewCoarseVector(1024, 32) // 32 nodes per group
	m.Add(0)
	if m.Count() != 32 {
		t.Fatalf("one sharer represents %d nodes, want 32 (whole group)", m.Count())
	}
	if !m.Contains(31) {
		t.Error("group member 31 not represented")
	}
	if m.Contains(32) {
		t.Error("node 32 (next group) represented")
	}
	m.Add(5) // same group: no growth
	if m.Count() != 32 {
		t.Fatalf("same-group add grew count to %d", m.Count())
	}
	m.Add(100) // group 3
	if m.Count() != 64 {
		t.Fatalf("two groups represent %d, want 64", m.Count())
	}
}

func TestCoarseVectorSmallMachine(t *testing.T) {
	// 16 nodes with 32 bits: group size 1, fully precise.
	m := NewCoarseVector(16, 32)
	m.Add(3)
	m.Add(9)
	if m.Count() != 2 {
		t.Fatalf("Count() = %d, want 2 (precise at group size 1)", m.Count())
	}
}

func TestCoarseVectorBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0-bit coarse vector")
		}
	}()
	NewCoarseVector(1024, 0)
}

func TestHierarchicalBitmapSingleNode(t *testing.T) {
	m := NewHierarchicalBitmap(1024, 6)
	m.Add(164)
	if m.Count() != 1 {
		t.Fatalf("single sharer Count() = %d, want 1", m.Count())
	}
	if !m.Contains(164) || m.Contains(163) {
		t.Fatal("containment wrong for single sharer")
	}
	if m.Bits() != 24 {
		t.Fatalf("Bits() = %d, want 24", m.Bits())
	}
}

func TestHierarchicalBitmapCrossProduct(t *testing.T) {
	m := NewHierarchicalBitmap(1024, 6)
	// Two nodes differing in every level's branch: 0 (all digits 0) and
	// 1023 (all digits 3) => decoded set is the full cross product
	// {0,3}^5 at the 5 meaningful levels = 32 nodes (root level has one
	// branch since 10-bit numbers never set its high digit).
	m.Add(0)
	m.Add(1023)
	if got := m.Count(); got != 32 {
		t.Fatalf("Count() = %d, want 32", got)
	}
}

func TestHierarchicalBitmapClear(t *testing.T) {
	m := NewHierarchicalBitmap(1024, 6)
	m.Add(7)
	m.Clear()
	if m.Count() != 0 {
		t.Fatal("Clear left members")
	}
}

func TestHierarchicalBitmapBadLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0-level hierarchical bitmap")
		}
	}()
	NewHierarchicalBitmap(1024, 0)
}

func TestPointerBitPatternPrecisePhase(t *testing.T) {
	m := NewPointerBitPattern(1024)
	for i, n := range []topology.NodeID{9, 99, 999, 512} {
		m.Add(n)
		if !m.Precise() {
			t.Fatalf("imprecise at %d sharers", i+1)
		}
		if m.Count() != i+1 {
			t.Fatalf("Count() = %d at %d sharers", m.Count(), i+1)
		}
	}
	m.Add(4)
	if m.Precise() {
		t.Fatal("still precise at 5 sharers")
	}
}

// The paper's headline comparison: for sharers confined to a 128-node
// group, the bit-pattern scheme must be markedly more precise than both
// the coarse vector and the hierarchical bit-map.
func TestBitPatternBeatsOthersInGroup(t *testing.T) {
	cfg := PrecisionConfig{TotalNodes: 1024, GroupSize: 128, Trials: 60, Seed: 5}
	sharers := []int{8, 16, 32}
	results := map[string][]PrecisionPoint{}
	for _, s := range Schemes() {
		results[s.Name] = EvaluatePrecision(s, cfg, sharers)
	}
	bp := results["bit-pattern (42b)"]
	cv := results["coarse vector (32b)"]
	hb := results["hierarchical bit-map (24b)"]
	for i := range sharers {
		if bp[i].Represented >= cv[i].Represented {
			t.Errorf("sharers=%d: bit-pattern %.1f not better than coarse vector %.1f",
				sharers[i], bp[i].Represented, cv[i].Represented)
		}
		if bp[i].Represented >= hb[i].Represented {
			t.Errorf("sharers=%d: bit-pattern %.1f not better than hierarchical %.1f",
				sharers[i], bp[i].Represented, hb[i].Represented)
		}
	}
}

// Figure 4(a) shape: with few sharers drawn from the whole machine the
// bit-pattern is much more precise; with many sharers all schemes
// converge toward the machine size.
func TestPrecisionSweepShape(t *testing.T) {
	cfg := PrecisionConfig{TotalNodes: 1024, Trials: 40, Seed: 11}
	for _, s := range Schemes() {
		pts := EvaluatePrecision(s, cfg, []int{2, 1024})
		if pts[0].Represented < 2 {
			t.Errorf("%s: represented %.1f < 2 sharers", s.Name, pts[0].Represented)
		}
		if pts[1].Represented != 1024 {
			t.Errorf("%s: full sharing represented %.1f, want 1024", s.Name, pts[1].Represented)
		}
	}
	// Pointer phase: <= 4 sharers exactly represented by Cenju-4 scheme.
	cj := Schemes()[2]
	pts := EvaluatePrecision(cj, cfg, []int{1, 2, 3, 4})
	for _, p := range pts {
		if p.Represented != float64(p.Sharers) {
			t.Errorf("pointer phase: %d sharers represented as %.1f", p.Sharers, p.Represented)
		}
	}
}

func TestEvaluatePrecisionDeterministic(t *testing.T) {
	cfg := PrecisionConfig{TotalNodes: 1024, GroupSize: 128, Trials: 20, Seed: 3}
	s := Schemes()[0]
	a := EvaluatePrecision(s, cfg, []int{8, 16})
	b := EvaluatePrecision(s, cfg, []int{8, 16})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestEvaluatePrecisionSkipsOversizedCounts(t *testing.T) {
	cfg := PrecisionConfig{TotalNodes: 1024, GroupSize: 16, Trials: 5, Seed: 1}
	pts := EvaluatePrecision(Schemes()[0], cfg, []int{8, 64})
	if len(pts) != 1 || pts[0].Sharers != 8 {
		t.Fatalf("pts = %v, want only sharers=8", pts)
	}
}

func TestDefaultSharerCounts(t *testing.T) {
	counts := DefaultSharerCounts(128)
	if counts[0] != 1 {
		t.Fatal("must start at 1 sharer")
	}
	for _, k := range counts {
		if k > 128 {
			t.Fatalf("count %d exceeds cap", k)
		}
	}
	full := DefaultSharerCounts(1024)
	if full[len(full)-1] != 1024 {
		t.Fatal("full sweep must reach 1024")
	}
}

func TestOvershoot(t *testing.T) {
	p := PrecisionPoint{Sharers: 4, Represented: 8}
	if p.Overshoot() != 2 {
		t.Fatalf("Overshoot() = %v", p.Overshoot())
	}
	z := PrecisionPoint{}
	if z.Overshoot() != 1 {
		t.Fatalf("zero-sharers Overshoot() = %v", z.Overshoot())
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table1 has %d rows, want 6", len(rows))
	}
	// The two access-scalable schemes are Origin and Cenju-4.
	scalable := 0
	for _, r := range rows {
		if r.AccessScale {
			scalable++
			if !r.HardwareScale {
				t.Errorf("%s: access-scalable but not hardware-scalable?", r.Scheme)
			}
		}
	}
	if scalable != 2 {
		t.Fatalf("%d access-scalable schemes, want 2", scalable)
	}
}

func BenchmarkBitPatternEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var p BitPattern
		p.Add(topology.NodeID(i % 1024))
		_ = p.Count()
	}
}

func BenchmarkEntryAddSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Entry
		for j := 0; j < 8; j++ {
			e.MapAdd(topology.NodeID((i + j*131) % 1024))
		}
	}
}
