package directory

// AnyMatch reports whether the represented set contains any node n with
// n & mask == value (over the 10-bit node-number space). Network
// switches use this to compute multicast output ports (high-bit
// constraints) and gathering wait patterns (low-bit constraints) without
// decoding the full member set — the switch-chip calculation the paper
// describes as "found ... by their own position information in the
// network, the system size, and the multicast destination".
//
// Because the bit-pattern structure is a cross product of independent
// one-hot fields, the query decomposes field-wise and runs in O(42).
func (p BitPattern) AnyMatch(mask, value uint32) bool {
	if p == 0 {
		return false
	}
	if value&^mask != 0 {
		return false // value sets bits outside the mask: unsatisfiable
	}
	if value>>10 != 0 {
		return false // constraint requires bits above the node-number width
	}
	if p == 1<<BitPatternBits-1 {
		// Saturated pattern (every field fully one-hot — the 1024-sharer
		// "invalidate everyone" case of the headline figure): the set is
		// the whole node space, so any constraint that survived the
		// checks above is satisfied by n = value itself.
		return true
	}
	f1, f2, f3, f4 := p.fields()
	return fieldAny(f4, 5, 0, mask, value) &&
		fieldAny(f3, 1, 5, mask, value) &&
		fieldAny(f2, 2, 6, mask, value) &&
		fieldAny(f1, 2, 8, mask, value)
}

// fieldAny reports whether the one-hot field (width bits starting at
// node-number bit position pos) has a set bit consistent with the
// mask/value constraint. Rather than testing each of the field's 2^width
// candidate values, it builds the bitmask of all values matching the
// constraint — start from the constrained value and double the set over
// each unconstrained (free) bit — and intersects it with the field:
// O(width) for the width-5 worst case the switches query per port.
func fieldAny(field uint64, width, pos int, mask, value uint32) bool {
	m := mask >> pos & (1<<width - 1)
	v := value >> pos & (1<<width - 1)
	if v&^m != 0 {
		return false // value sets a bit the mask leaves free: unsatisfiable
	}
	set := uint64(1) << v
	free := ^m & (1<<width - 1)
	for j := 0; j < width; j++ {
		if free>>j&1 == 1 {
			set |= set << (1 << j)
		}
	}
	return field&set != 0
}

// AnyMatch reports whether any destination node n satisfies
// n & mask == value.
func (d Dest) AnyMatch(mask, value uint32) bool {
	if d.IsPattern {
		return d.Pattern.AnyMatch(mask, value)
	}
	for _, p := range d.ptrs[:d.nptr] {
		if uint32(p)&mask == value {
			return true
		}
	}
	return false
}
