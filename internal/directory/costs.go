package directory

import "fmt"

// CostProfile quantifies one directory scheme's scalability — the two
// columns of Table 1 made concrete. StorageBits is the directory
// storage per memory block (plus any per-cache-line state the scheme
// keeps in the caches themselves), and EnumAccesses is the number of
// sequential directory/memory/cache accesses needed to identify every
// node caching a block with k true sharers — the operation on a store's
// critical path.
type CostProfile struct {
	Name string
	// StorageBits is the per-block directory storage for a machine of
	// n nodes.
	StorageBits func(n int) int
	// EnumAccesses is the sequential accesses to enumerate k sharers.
	EnumAccesses func(k int) int
	// Precise reports whether the scheme records sharers exactly.
	Precise bool
	// HardwareScalable: storage independent of machine size.
	HardwareScalable bool
	// AccessScalable: enumeration cost independent of sharer count.
	AccessScalable bool
	Note           string
}

// CostProfiles returns the quantitative version of Table 1's six rows.
func CostProfiles() []CostProfile {
	return []CostProfile{
		{
			Name:             "Full Map",
			StorageBits:      func(n int) int { return n },
			EnumAccesses:     func(int) int { return 1 },
			Precise:          true,
			HardwareScalable: false,
			AccessScalable:   true,
			Note:             "one bit per node: storage grows with the machine",
		},
		{
			Name: "Chained (SCI)",
			// Head pointer at the memory plus forward/backward links in
			// every cache line.
			StorageBits:      func(n int) int { return log2(n) },
			EnumAccesses:     func(k int) int { return 1 + k },
			Precise:          true,
			HardwareScalable: true,
			AccessScalable:   false,
			Note:             "walks the sharing chain through the caches",
		},
		{
			Name:        "LimitLESS",
			StorageBits: func(n int) int { return MaxPointers * log2(n) },
			EnumAccesses: func(k int) int {
				if k <= MaxPointers {
					return 1
				}
				// Software trap: the processor reads the overflow list
				// from memory, one entry at a time.
				return 1 + softwareTrapCost + (k - MaxPointers)
			},
			Precise:          true,
			HardwareScalable: true,
			AccessScalable:   false,
			Note:             "software handler beyond the pointer limit",
		},
		{
			Name:             "Dynamic Pointer",
			StorageBits:      func(n int) int { return log2(n) + dynPtrEntryBits },
			EnumAccesses:     func(k int) int { return 1 + k },
			Precise:          true,
			HardwareScalable: true,
			AccessScalable:   false,
			Note:             "pointer list linked through a memory heap",
		},
		{
			Name: "Origin (Full Map + Coarse Vector)",
			StorageBits: func(n int) int {
				if n <= 64 {
					return n // full map regime
				}
				return 64 // coarse vector regime
			},
			EnumAccesses:     func(int) int { return 1 },
			Precise:          false,
			HardwareScalable: true,
			AccessScalable:   true,
			Note:             "imprecise beyond the vector resolution",
		},
		{
			Name:             "Cenju-4 (Pointer + Bit Pattern)",
			StorageBits:      func(int) int { return BitPatternBits },
			EnumAccesses:     func(int) int { return 1 },
			Precise:          false,
			HardwareScalable: true,
			AccessScalable:   true,
			Note:             "precise to 4 sharers; one access at any sharing degree",
		},
	}
}

const (
	// softwareTrapCost approximates a LimitLESS trap entry/exit in
	// directory-access units.
	softwareTrapCost = 20
	// dynPtrEntryBits is a dynamic-pointer list entry (next pointer +
	// node id).
	dynPtrEntryBits = 32
)

func log2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l == 0 {
		return 1
	}
	return l
}

// CostRow is one rendered comparison point.
type CostRow struct {
	Scheme        string
	Bits1024      int // storage per block at 1024 nodes
	Enum1         int // accesses with 1 sharer
	Enum32        int
	Enum1024      int
	Precise       bool
	HardwareScale bool
	AccessScale   bool
}

// CostComparison evaluates every profile at 1024 nodes.
func CostComparison() []CostRow {
	var rows []CostRow
	for _, p := range CostProfiles() {
		rows = append(rows, CostRow{
			Scheme:        p.Name,
			Bits1024:      p.StorageBits(1024),
			Enum1:         p.EnumAccesses(1),
			Enum32:        p.EnumAccesses(32),
			Enum1024:      p.EnumAccesses(1024),
			Precise:       p.Precise,
			HardwareScale: p.HardwareScalable,
			AccessScale:   p.AccessScalable,
		})
	}
	return rows
}

func (r CostRow) String() string {
	return fmt.Sprintf("%s: %db, enum 1/32/1024 sharers = %d/%d/%d accesses",
		r.Scheme, r.Bits1024, r.Enum1, r.Enum32, r.Enum1024)
}
