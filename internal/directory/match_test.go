package directory

import (
	"math/rand"
	"testing"

	"cenju4/internal/topology"
)

// Reference implementation: decode members and scan.
func refAnyMatch(d Dest, mask, value uint32) bool {
	for _, m := range d.Members(nil, topology.MaxNodes) {
		if uint32(m)&mask == value {
			return true
		}
	}
	return false
}

func TestAnyMatchAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		var bp BitPattern
		k := 1 + rng.Intn(8)
		for i := 0; i < k; i++ {
			bp.Add(topology.NodeID(rng.Intn(1024)))
		}
		d := Dest{Pattern: bp, IsPattern: true}
		mask := uint32(rng.Intn(1 << 12))
		value := uint32(rng.Intn(1<<12)) & mask
		got := d.AnyMatch(mask, value)
		want := refAnyMatch(d, mask, value)
		if got != want {
			t.Fatalf("AnyMatch(%#x,%#x) on %v = %v, want %v", mask, value, bp, got, want)
		}
	}
}

func TestAnyMatchPointerDest(t *testing.T) {
	d := PointerDest(5, 160)
	if !d.AnyMatch(0x1f, 5) {
		t.Error("low-bit match for node 5 failed")
	}
	if !d.AnyMatch(0x3e0, 160) {
		t.Error("high-bit match for node 160 failed")
	}
	if d.AnyMatch(0x1f, 7) {
		t.Error("matched absent low bits")
	}
}

func TestAnyMatchEmpty(t *testing.T) {
	var bp BitPattern
	if bp.AnyMatch(0, 0) {
		t.Error("empty pattern matched")
	}
	var d Dest
	if d.AnyMatch(0, 0) {
		t.Error("empty dest matched")
	}
}

func TestAnyMatchUnsatisfiable(t *testing.T) {
	bp := EncodeNode(3)
	if bp.AnyMatch(0x0f, 0x13) {
		t.Error("value outside mask matched")
	}
	if bp.AnyMatch(0xfff, 1<<10|3) {
		t.Error("value above node width matched")
	}
}

func TestAnyMatchZeroMaskMatchesNonEmpty(t *testing.T) {
	bp := EncodeNode(700)
	if !bp.AnyMatch(0, 0) {
		t.Error("zero mask should match any nonempty pattern")
	}
}

func TestAnyMatchRoutingUseCases(t *testing.T) {
	// Multicast port computation: 6-stage network, destination prefix
	// constraints. Nodes 0 and 164 (0b0010100100): stage digits (6
	// digits over 12 bits, top 2 bits zero): 164 -> 0,0,2,2,1,0.
	var bp BitPattern
	bp.Add(0)
	bp.Add(164)
	d := Dest{Pattern: bp, IsPattern: true}
	// Stage 2 (digit covering bits 7-6): with prefix digits 0,0 chosen,
	// are there members with digit2 = 2 (bits 7-6 = 10)?
	if !d.AnyMatch(0b1111000000, 0b0010000000) {
		t.Error("digit constraint for node 164 failed")
	}
	// digit2 = 0 must match node 0.
	if !d.AnyMatch(0b1111000000, 0) {
		t.Error("digit constraint for node 0 failed")
	}
	// digit2 = 1: no member.
	if d.AnyMatch(0b1111000000, 0b0001000000) {
		t.Error("matched nonexistent branch")
	}
}
