package directory

import (
	"fmt"
	"math/bits"

	"cenju4/internal/topology"
)

// NodeMap is the common interface over directory node-map schemes,
// used by the Figure 4 precision comparison and the plug-in directory
// ablation. Add records a sharer; Count returns the size of the
// represented set (>= the number of added sharers for imprecise
// schemes); Members decodes the represented set.
type NodeMap interface {
	Add(n topology.NodeID)
	Contains(n topology.NodeID) bool
	Count() int
	Members(dst []topology.NodeID) []topology.NodeID
	Clear()
	// Bits returns the storage the scheme uses per entry, in bits.
	Bits() int
	Name() string
}

// Scheme constructs NodeMaps for a machine of a given size.
type Scheme struct {
	Name string
	New  func(totalNodes int) NodeMap
}

// Schemes returns the three imprecise schemes compared in Figure 4,
// parameterized as in the paper: a 32-bit coarse vector, a 24-bit
// hierarchical bit-map (six 4-bit fields), and the 42-bit bit-pattern
// (with the 4-pointer precise prefix, as in Cenju-4).
func Schemes() []Scheme {
	return []Scheme{
		{Name: "coarse vector (32b)", New: func(n int) NodeMap { return NewCoarseVector(n, 32) }},
		{Name: "hierarchical bit-map (24b)", New: func(n int) NodeMap { return NewHierarchicalBitmap(n, 6) }},
		{Name: "bit-pattern (42b)", New: func(n int) NodeMap { return NewPointerBitPattern(n) }},
	}
}

// ---------------------------------------------------------------------
// Full map (Censier & Feautrier): one bit per node. Precise, but storage
// grows with machine size — the Table 1 "hardware cost: not scalable"
// baseline.

// FullMap is a precise one-bit-per-node map.
type FullMap struct {
	words []uint64
	n     int
}

// NewFullMap returns a full-map directory for totalNodes nodes.
func NewFullMap(totalNodes int) *FullMap {
	return &FullMap{words: make([]uint64, (totalNodes+63)/64), n: totalNodes}
}

func (m *FullMap) Add(n topology.NodeID)           { m.words[n/64] |= 1 << (n % 64) }
func (m *FullMap) Contains(n topology.NodeID) bool { return m.words[n/64]>>(n%64)&1 == 1 }

// Remove clears one node; full map is the only scheme that supports
// precise removal (used when replacements notify the home).
func (m *FullMap) Remove(n topology.NodeID) { m.words[n/64] &^= 1 << (n % 64) }

func (m *FullMap) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

func (m *FullMap) Members(dst []topology.NodeID) []topology.NodeID {
	for wi, w := range m.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, topology.NodeID(wi*64+b))
			w &^= 1 << b
		}
	}
	return dst
}

func (m *FullMap) Clear() {
	for i := range m.words {
		m.words[i] = 0
	}
}

func (m *FullMap) Bits() int    { return m.n }
func (m *FullMap) Name() string { return "full map" }

// ---------------------------------------------------------------------
// Coarse vector (Gupta et al.): nodes divided into groups; one bit per
// group. With 1024 nodes and 32 bits, each bit covers 32 nodes.

// CoarseVector is an imprecise group-bit map.
type CoarseVector struct {
	vec       uint64
	bitsN     int
	groupSize int
	total     int
}

// NewCoarseVector returns a coarse vector of vecBits bits covering
// totalNodes nodes. Group size is ceil(totalNodes/vecBits), minimum 1.
func NewCoarseVector(totalNodes, vecBits int) *CoarseVector {
	if vecBits < 1 || vecBits > 64 {
		panic(fmt.Sprintf("directory: coarse vector width %d out of range", vecBits))
	}
	gs := (totalNodes + vecBits - 1) / vecBits
	if gs < 1 {
		gs = 1
	}
	return &CoarseVector{bitsN: vecBits, groupSize: gs, total: totalNodes}
}

func (m *CoarseVector) group(n topology.NodeID) int { return int(n) / m.groupSize }

func (m *CoarseVector) Add(n topology.NodeID) { m.vec |= 1 << m.group(n) }

func (m *CoarseVector) Contains(n topology.NodeID) bool {
	return m.vec>>m.group(n)&1 == 1
}

func (m *CoarseVector) Count() int {
	c := 0
	for g := 0; g < m.bitsN; g++ {
		if m.vec>>g&1 == 1 {
			lo := g * m.groupSize
			hi := lo + m.groupSize
			if hi > m.total {
				hi = m.total
			}
			if hi > lo {
				c += hi - lo
			}
		}
	}
	return c
}

func (m *CoarseVector) Members(dst []topology.NodeID) []topology.NodeID {
	for g := 0; g < m.bitsN; g++ {
		if m.vec>>g&1 == 1 {
			for n := g * m.groupSize; n < (g+1)*m.groupSize && n < m.total; n++ {
				dst = append(dst, topology.NodeID(n))
			}
		}
	}
	return dst
}

func (m *CoarseVector) Clear()       { m.vec = 0 }
func (m *CoarseVector) Bits() int    { return m.bitsN }
func (m *CoarseVector) Name() string { return fmt.Sprintf("coarse vector (%db)", m.bitsN) }

// ---------------------------------------------------------------------
// Hierarchical bit-map (Matsumoto et al., JUMP-1): the node map consists
// of one 4-bit field per level of the network's quadruple tree; bit b of
// field L is set when any sharer's path uses branch b at level L. The
// same field is shared by all switches of a level, which couples the
// representation to the network shape and costs precision. Decoding
// yields every leaf whose per-level branch choices are all marked.

// HierarchicalBitmap is the JUMP-1-style per-tree-level map.
type HierarchicalBitmap struct {
	fields []uint8 // one 4-bit field per level, index 0 = root level
	levels int
	total  int
}

// NewHierarchicalBitmap returns a map with the given number of 4-bit
// levels over totalNodes leaves. The paper compares a 24-bit, six-level
// variant (the Cenju-4 network is a six-level quadruple tree). Levels
// beyond those needed to address totalNodes still exist but only ever
// have one useful branch.
func NewHierarchicalBitmap(totalNodes, levels int) *HierarchicalBitmap {
	if levels < 1 {
		panic("directory: hierarchical bitmap needs >= 1 level")
	}
	return &HierarchicalBitmap{fields: make([]uint8, levels), levels: levels, total: totalNodes}
}

// branch returns node n's branch digit at level L (level 0 = root,
// deciding the most significant radix-4 digit).
func (m *HierarchicalBitmap) branch(n topology.NodeID, level int) int {
	shift := 2 * (m.levels - 1 - level)
	return int(uint64(n)>>shift) & 3
}

func (m *HierarchicalBitmap) Add(n topology.NodeID) {
	for l := 0; l < m.levels; l++ {
		m.fields[l] |= 1 << m.branch(n, l)
	}
}

func (m *HierarchicalBitmap) Contains(n topology.NodeID) bool {
	for l := 0; l < m.levels; l++ {
		if m.fields[l]>>m.branch(n, l)&1 == 0 {
			return false
		}
	}
	return true
}

func (m *HierarchicalBitmap) Count() int {
	// Exact count of decoded leaves below total: enumerating the cross
	// product while clipping to real nodes.
	c := 0
	m.walk(0, 0, &c, nil)
	return c
}

// walk enumerates decoded leaves; if dst != nil it appends them.
func (m *HierarchicalBitmap) walk(level, prefix int, count *int, dst *[]topology.NodeID) {
	if level == m.levels {
		if prefix < m.total {
			*count++
			if dst != nil {
				*dst = append(*dst, topology.NodeID(prefix))
			}
		}
		return
	}
	f := m.fields[level]
	if f == 0 {
		return
	}
	for b := 0; b < 4; b++ {
		if f>>b&1 == 1 {
			m.walk(level+1, prefix<<2|b, count, dst)
		}
	}
}

func (m *HierarchicalBitmap) Members(dst []topology.NodeID) []topology.NodeID {
	c := 0
	m.walk(0, 0, &c, &dst)
	return dst
}

func (m *HierarchicalBitmap) Clear() {
	for i := range m.fields {
		m.fields[i] = 0
	}
}

func (m *HierarchicalBitmap) Bits() int { return 4 * m.levels }
func (m *HierarchicalBitmap) Name() string {
	return fmt.Sprintf("hierarchical bit-map (%db)", 4*m.levels)
}

// ---------------------------------------------------------------------
// Cenju-4: pointer structure (precise, up to 4) dynamically switching to
// the 42-bit bit-pattern structure.

// PointerBitPattern is the Cenju-4 node map as a standalone NodeMap.
type PointerBitPattern struct {
	entry Entry
	total int
}

// NewPointerBitPattern returns the Cenju-4 scheme for totalNodes nodes.
func NewPointerBitPattern(totalNodes int) *PointerBitPattern {
	return &PointerBitPattern{total: totalNodes}
}

func (m *PointerBitPattern) Add(n topology.NodeID)           { m.entry.MapAdd(n) }
func (m *PointerBitPattern) Contains(n topology.NodeID) bool { return m.entry.MapContains(n) }
func (m *PointerBitPattern) Count() int {
	if !m.entry.UsesBitPattern() {
		return m.entry.MapCount()
	}
	// Clip the cross product to real nodes.
	return len(m.entry.MapMembers(nil, m.total))
}
func (m *PointerBitPattern) Members(dst []topology.NodeID) []topology.NodeID {
	return m.entry.MapMembers(dst, m.total)
}
func (m *PointerBitPattern) Clear()    { m.entry.MapClear() }
func (m *PointerBitPattern) Bits() int { return BitPatternBits }
func (m *PointerBitPattern) Name() string {
	return "pointer + bit-pattern (42b)"
}

// Precise reports whether the map is still in the exact pointer form.
func (m *PointerBitPattern) Precise() bool { return !m.entry.UsesBitPattern() }

// ---------------------------------------------------------------------
// Table 1: qualitative scalability characteristics.

// Characteristic is one row of Table 1.
type Characteristic struct {
	Scheme        string
	HardwareScale bool // directory storage independent of node count
	AccessScale   bool // all sharers identified with one directory access
	Note          string
}

// Table1 returns the paper's Table 1: scalability characteristics of
// directory schemes.
func Table1() []Characteristic {
	return []Characteristic{
		{"Full Map", false, false, "storage grows with node count"},
		{"Chained (SCI)", true, false, "sharer list walked through caches"},
		{"LimitLESS", true, false, "software traps beyond pointer limit"},
		{"Dynamic Pointer", true, false, "pointer chains in memory"},
		{"Origin (Full Map + Coarse Vector)", true, true, "imprecise beyond vector resolution"},
		{"Cenju-4 (Pointer + Bit Pattern)", true, true, "imprecise beyond 4 sharers, precise <= 32 nodes"},
	}
}
