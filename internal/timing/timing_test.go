package timing

import "testing"

func TestDefaultCalibrationIdentities(t *testing.T) {
	p := Default()
	// Table 2 row a: private load.
	if p.ProcOverhead+p.MemAccess != 470 {
		t.Errorf("private load = %d, want 470", p.ProcOverhead+p.MemAccess)
	}
	// Table 2 row b: + one directory access.
	if p.ProcOverhead+p.MemAccess+p.DirAccess != 610 {
		t.Errorf("local clean load = %d, want 610", p.ProcOverhead+p.MemAccess+p.DirAccess)
	}
}

func TestTraversal(t *testing.T) {
	p := Default()
	ctl2 := p.Traversal(2, false)
	ctl4 := p.Traversal(4, false)
	if ctl4-ctl2 != 2*p.SwitchHopCtl {
		t.Errorf("control per-2-stage increment = %d", ctl4-ctl2)
	}
	data2 := p.Traversal(2, true)
	if data2 <= ctl2 {
		t.Error("data traversal not slower than control")
	}
	// One request+data round trip gains 520-550 ns per two stages, as
	// in Table 2 rows c and e.
	pair := (ctl4 - ctl2) + (p.Traversal(4, true) - data2)
	if pair < 500 || pair > 600 {
		t.Errorf("request+data 2-stage increment = %d, want ~520-550", pair)
	}
}

func TestMPICalibration(t *testing.T) {
	m := DefaultMPI()
	if m.Transfer(0) != 9100 {
		t.Errorf("latency = %v, want 9.1us", m.Transfer(0))
	}
	// Throughput: 169 bytes per microsecond.
	d := m.Transfer(169000) - m.Transfer(0)
	if d < 990000 || d > 1010000 {
		t.Errorf("169KB serialization = %v, want ~1ms", d)
	}
}
