// Package timing holds the latency constants of the simulated Cenju-4
// hardware.
//
// The paper reports measured latencies on real hardware (Table 2,
// Figure 10); our substrate is a discrete-event simulator, so the
// per-component costs below were calibrated so the simulated protocol
// sequences land on the published numbers:
//
//   - private load            = ProcOverhead + MemAccess                       = 470 ns
//   - shared local clean load = + DirAccess                                    = 610 ns
//   - shared remote clean     = + 2 network traversals + home/master handling  = 1690 ns at 2 stages
//   - per extra 2 stages on a request+data pair                                = +520 ns
//
// The residual error against Table 2 is recorded in EXPERIMENTS.md; the
// paper's own rows are not perfectly explained by any single per-stage
// cost either (rows c, d, e imply 520, 580 and 525 ns per 2-stage
// increment respectively), so we fit within ~10%.
package timing

import "cenju4/internal/sim"

// Params is the set of hardware latency constants, all in nanoseconds.
type Params struct {
	// ProcOverhead covers instruction issue to graduation overhead
	// around a memory access that leaves the processor chip.
	ProcOverhead sim.Time
	// CacheHit is the secondary-cache hit time (loads that never reach
	// the controller).
	CacheHit sim.Time
	// MemAccess is one main-memory block read or write.
	MemAccess sim.Time
	// DirAccess is one directory entry read-modify-write. The paper
	// notes this is the entire difference between private (470 ns) and
	// shared-local-clean (610 ns) loads.
	DirAccess sim.Time
	// HomeProc is the home controller's per-message processing cost.
	HomeProc sim.Time
	// MasterProc is the master controller's reply handling cost.
	MasterProc sim.Time
	// SlaveProc is the slave controller's cost to act on a forwarded
	// request (cache state change, data extraction).
	SlaveProc sim.Time
	// NetFixed is the fixed network entry+exit cost of one traversal.
	NetFixed sim.Time
	// SwitchHopCtl is the per-stage latency of a header-only message.
	SwitchHopCtl sim.Time
	// SwitchHopData is the per-stage latency of a data-carrying message
	// (128-byte block; virtual cut-through keeps the per-stage increment
	// modest rather than paying full serialization per stage).
	SwitchHopData sim.Time
	// SerializeCtl / SerializeData are the port occupancy times of one
	// message — the interval before the same switch output port can
	// accept the next message.
	SerializeCtl  sim.Time
	SerializeData sim.Time
	// ReplicateSlot is the extra delay per additional copy when a
	// switch's crosspoint buffers replicate a multicast to several
	// output ports.
	ReplicateSlot sim.Time
	// GatherMerge is the cost of combining replies at a switch.
	GatherMerge sim.Time
	// QueueOp is the cost of one memory-resident queue enqueue/dequeue
	// (the starvation and deadlock queues live in main memory).
	QueueOp sim.Time
}

// Default returns the calibrated Cenju-4 parameter set.
func Default() Params {
	return Params{
		ProcOverhead:  170,
		CacheHit:      8, // ~16 cycles at 200 MHz? The R10000 L2 hit is ~10 cycles; 8 ns keeps hit streams cheap.
		MemAccess:     300,
		DirAccess:     140,
		HomeProc:      140,
		MasterProc:    100,
		SlaveProc:     150,
		NetFixed:      170,
		SwitchHopCtl:  130,
		SwitchHopData: 145,
		SerializeCtl:  100,
		SerializeData: 220,
		ReplicateSlot: 130,
		GatherMerge:   40,
		QueueOp:       120,
	}
}

// Traversal returns the latency of one uncontended network traversal of
// the given stage count, for a control or data message.
func (p Params) Traversal(stages int, data bool) sim.Time {
	hop := p.SwitchHopCtl
	if data {
		hop = p.SwitchHopData
	}
	return p.NetFixed + sim.Time(stages)*hop
}

// MPIParams models the user-level message passing mechanism of Cenju-4,
// calibrated to the published figures: 9.1 us one-way latency and
// 169 MB/s throughput on a 128-node system.
type MPIParams struct {
	// Latency is the fixed software+hardware cost of one message.
	Latency sim.Time
	// BytesPerNs is the streaming throughput (0.169 bytes/ns = 169 MB/s).
	BytesPerNs float64
}

// DefaultMPI returns the calibrated message-passing parameters.
func DefaultMPI() MPIParams {
	return MPIParams{Latency: 9100, BytesPerNs: 0.169}
}

// Transfer returns the time to move n bytes: latency plus serialization.
func (m MPIParams) Transfer(n int) sim.Time {
	return m.Latency + sim.Time(float64(n)/m.BytesPerNs)
}
