// Package digest provides the repository's canonical content-digest
// writer: a SHA-256 accumulator fed by explicit formatted fields.
//
// Two very different layers key themselves by these digests and both
// depend on the same stability contract. The golden regression tests
// (internal/machine, internal/fuzz) compare simulation results by
// digest across releases, and the cenju4-serve result cache uses a job
// spec's digest as its content address — two specs share a cache entry
// exactly when their canonical encodings are byte-identical. An
// encoding that drifted between builds would silently split the cache
// keyspace or invalidate every golden file, so the rules are strict:
//
//   - fields are written explicitly, one Printf call per field or
//     record, in declaration order — never via reflection, map
//     iteration, or %v on a struct;
//   - only formats whose output is fully determined by the value are
//     allowed (integers, %q strings, %t bools, floats via %g);
//   - changing what a caller writes is a deliberate, versioned act:
//     each caller keeps a golden-stability test pinning a known input
//     to a known hex digest, so an accidental encoding change breaks a
//     test instead of shipping.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// Writer accumulates canonically encoded fields into a SHA-256 state.
// The zero value is not usable; create writers with New.
type Writer struct {
	h hash.Hash
}

// New returns an empty digest writer.
func New() *Writer {
	return &Writer{h: sha256.New()}
}

// Printf appends one formatted record to the digest state. Callers
// write explicit fields in a fixed order; see the package comment for
// the format rules.
func (w *Writer) Printf(format string, args ...any) {
	fmt.Fprintf(w.h, format, args...)
}

// Write appends raw bytes, satisfying io.Writer so existing
// field-by-field serializers (machine.Digest's writeResult) can target
// a Writer directly.
func (w *Writer) Write(p []byte) (int, error) {
	return w.h.Write(p)
}

// Sum returns the lowercase hex SHA-256 of everything written so far.
// The writer remains usable; further writes extend the same state.
func (w *Writer) Sum() string {
	return hex.EncodeToString(w.h.Sum(nil))
}
