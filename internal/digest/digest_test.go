package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestGoldenStability pins the digest of a fixed field sequence. If
// this test ever fails without a deliberate encoding-version decision,
// the change would have split the serve cache keyspace and invalidated
// the machine golden files.
func TestGoldenStability(t *testing.T) {
	w := New()
	w.Printf("spec app=%q variant=%q nodes=%d\n", "BT", "dsm(2)", 64)
	w.Printf("scale=%g mapped=%t seed=%d\n", 0.25, true, int64(7))
	const want = "d3a465c9f76fe4248a375cac95c4d8c183c06a4f9c85f8eb253d7a9fe59fd731"
	if got := w.Sum(); got != want {
		t.Fatalf("canonical digest changed:\n got  %s\n want %s", got, want)
	}
}

// TestMatchesSha256 checks the writer is plain SHA-256 over the
// formatted byte stream, nothing cleverer.
func TestMatchesSha256(t *testing.T) {
	w := New()
	w.Printf("a=%d b=%q\n", 42, "x")
	raw := sha256.Sum256([]byte("a=42 b=\"x\"\n"))
	if got, want := w.Sum(), hex.EncodeToString(raw[:]); got != want {
		t.Fatalf("digest = %s, want sha256 of formatted stream %s", got, want)
	}
}

// TestSumExtends checks Sum is a checkpoint, not a terminator: writes
// after a Sum extend the same state (machine.Digest never needs this,
// but the contract should be explicit).
func TestSumExtends(t *testing.T) {
	a := New()
	a.Printf("one")
	first := a.Sum()
	a.Printf("two")
	b := New()
	b.Printf("one")
	b.Printf("two")
	if a.Sum() == first {
		t.Fatal("Sum froze the writer: writes after Sum had no effect")
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("interleaved Sum perturbed the state: %s != %s", a.Sum(), b.Sum())
	}
}

// TestFieldSensitivity checks every field of a record perturbs the
// digest: equal prefixes with one differing field must not collide.
func TestFieldSensitivity(t *testing.T) {
	base := func() *Writer {
		w := New()
		w.Printf("nodes=%d scale=%g mapped=%t\n", 16, 0.05, true)
		return w
	}
	ref := base().Sum()
	variants := map[string]func() *Writer{
		"nodes": func() *Writer {
			w := New()
			w.Printf("nodes=%d scale=%g mapped=%t\n", 32, 0.05, true)
			return w
		},
		"scale": func() *Writer {
			w := New()
			w.Printf("nodes=%d scale=%g mapped=%t\n", 16, 0.06, true)
			return w
		},
		"mapped": func() *Writer {
			w := New()
			w.Printf("nodes=%d scale=%g mapped=%t\n", 16, 0.05, false)
			return w
		},
	}
	for name, build := range variants {
		if got := build().Sum(); got == ref {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

// TestWriteIsPrintfCompatible checks the io.Writer path and Printf
// path agree, so serializers can mix Fprintf(w, ...) with w.Printf.
func TestWriteIsPrintfCompatible(t *testing.T) {
	a := New()
	a.Printf("x=%d\n", 9)
	b := New()
	if _, err := b.Write([]byte("x=9\n")); err != nil {
		t.Fatal(err)
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("Printf and Write disagree: %s != %s", a.Sum(), b.Sum())
	}
}
