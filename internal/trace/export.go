// Chrome-trace-event export: renders collected protocol events as the
// JSON that chrome://tracing and Perfetto load, one process per stream
// and one thread per node, timestamped purely in virtual sim time.
package trace

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/topology"
)

// Stream is one exportable event sequence — typically one simulation
// run. Dropped carries the collector's truncation count so the export
// can refuse to pass off a partial stream as complete.
type Stream struct {
	Label   string
	Events  []core.TraceEvent
	Dropped int
}

// Stream packages the collector's contents for export.
func (c *Collector) Stream(label string) Stream {
	return Stream{Label: label, Events: c.events, Dropped: c.drops}
}

// WriteChrome writes the streams as a Chrome trace event file
// (Perfetto-loadable JSON). Each stream becomes a process (pid =
// stream index + 1) named by its label; each node becomes a thread
// within it. Protocol events are thread-scoped instants named by
// message kind, with the direction (send/local/recv), block address
// and transaction endpoints in args.
//
// Timestamps are the events' virtual sim times converted to
// microseconds with integer math ("%d.%03d"), so the byte stream is a
// pure function of the events — the golden-digest test compares two
// same-seed exports byte for byte. No wall-clock value appears
// anywhere in the output.
//
// A truncated stream is never exported silently: each stream with
// Dropped > 0 gets a final instant record naming the loss, and the
// total drop count is returned so callers can warn.
func WriteChrome(w io.Writer, streams ...Stream) (dropped int, err error) {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n")
	first := true
	put := func(format string, args ...any) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	for si, s := range streams {
		pid := si + 1
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("stream %d", pid)
		}
		put(`{"ph": "M", "pid": %d, "tid": 0, "name": "process_name", "args": {"name": %q}}`, pid, label)
		for _, node := range streamNodes(s.Events) {
			put(`{"ph": "M", "pid": %d, "tid": %d, "name": "thread_name", "args": {"name": "node %d"}}`,
				pid, int(node)+1, int(node))
		}
		var last uint64
		for _, ev := range s.Events {
			at := uint64(ev.At)
			if at < last {
				return dropped, fmt.Errorf("trace: stream %q events out of order at t=%d", label, at)
			}
			last = at
			put(`{"ph": "i", "s": "t", "pid": %d, "tid": %d, "ts": %d.%03d, "name": %q, `+
				`"args": {"dir": %q, "addr": %q, "src": %d, "master": %d}}`,
				pid, int(ev.Node)+1, at/1000, at%1000, ev.Msg.String(),
				ev.Kind.String(), ev.Addr.String(), int(ev.Src), int(ev.Master))
		}
		if s.Dropped > 0 {
			dropped += s.Dropped
			put(`{"ph": "i", "s": "p", "pid": %d, "tid": 0, "ts": %d.%03d, `+
				`"name": "TRACE TRUNCATED: %d events dropped beyond the collector bound"}`,
				pid, last/1000, last%1000, s.Dropped)
		}
	}
	b.WriteString("\n]}\n")
	_, err = io.WriteString(w, b.String())
	return dropped, err
}

// streamNodes returns the distinct nodes appearing in evs, sorted, so
// thread metadata is emitted in a deterministic order.
func streamNodes(evs []core.TraceEvent) []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	var out []topology.NodeID
	for _, ev := range evs {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			out = append(out, ev.Node)
		}
	}
	slices.Sort(out)
	return out
}
