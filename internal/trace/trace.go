// Package trace collects and filters coherence-protocol event streams
// (see core.Tracer). It backs the protocol conformance tests — which
// assert the exact message sequences of the paper's appendix — and is a
// debugging aid for anyone extending the protocol.
package trace

import (
	"fmt"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/msg"
	"cenju4/internal/topology"
)

// Collector accumulates protocol events up to a bound.
type Collector struct {
	max    int
	events []core.TraceEvent
	drops  int
}

// NewCollector returns a collector retaining at most max events
// (0 = 64k).
func NewCollector(max int) *Collector {
	if max <= 0 {
		max = 65536
	}
	return &Collector{max: max}
}

// Record is the core.Tracer hook.
func (c *Collector) Record(ev core.TraceEvent) {
	if len(c.events) >= c.max {
		c.drops++
		return
	}
	c.events = append(c.events, ev)
}

// Tracer returns the hook to install.
func (c *Collector) Tracer() core.Tracer { return c.Record }

// Len returns the number of retained events.
func (c *Collector) Len() int { return len(c.events) }

// Dropped returns the number of events beyond the retention bound.
func (c *Collector) Dropped() int { return c.drops }

// Reset discards all events.
func (c *Collector) Reset() {
	c.events = c.events[:0]
	c.drops = 0
}

// Events returns the retained events in order.
func (c *Collector) Events() []core.TraceEvent { return c.events }

// Filter returns the events matching pred, in order.
func (c *Collector) Filter(pred func(core.TraceEvent) bool) []core.TraceEvent {
	var out []core.TraceEvent
	for _, ev := range c.events {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Deliveries returns the receive-side events for one block, in order —
// the canonical view of a transaction's message sequence.
func (c *Collector) Deliveries(addr topology.Addr) []core.TraceEvent {
	block := addr.Block()
	return c.Filter(func(ev core.TraceEvent) bool {
		return ev.Kind == core.TraceRecv && ev.Addr.Block() == block
	})
}

// Kinds projects events to their message kinds.
func Kinds(evs []core.TraceEvent) []msg.Kind {
	out := make([]msg.Kind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Msg
	}
	return out
}

// String renders the retained events one per line. A truncated
// collection says so explicitly: silent drops once skewed every
// measurement read off a trace, so any rendering of a lossy collection
// must carry the loss.
func (c *Collector) String() string {
	var b strings.Builder
	for _, ev := range c.events {
		b.WriteString(ev.String())
		b.WriteString("\n")
	}
	if c.drops > 0 {
		fmt.Fprintf(&b, "!! trace truncated: %d events dropped beyond the %d-event bound\n", c.drops, c.max)
	}
	return b.String()
}
