// Protocol conformance: each appendix sequence of the paper, asserted
// as the exact series of messages delivered for one block.
package trace

import (
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/machine"
	"cenju4/internal/msg"
	"cenju4/internal/topology"
)

type rig struct {
	m   *machine.Machine
	col *Collector
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	r := &rig{
		m:   machine.New(machine.Config{Nodes: nodes, Multicast: true}),
		col: NewCollector(0),
	}
	r.m.SetTracer(r.col.Tracer())
	return r
}

func (r *rig) access(t *testing.T, node topology.NodeID, addr topology.Addr, store bool) {
	t.Helper()
	done := false
	r.m.Controller(node).Request(addr, store, func() { done = true })
	r.m.Engine().Run()
	if !done {
		t.Fatal("access did not complete")
	}
	// A truncated collection would silently pass any sequence assertion
	// whose tail fell beyond the bound — fail loudly instead.
	if d := r.col.Dropped(); d > 0 {
		t.Fatalf("trace collector dropped %d events; conformance assertions need the full stream", d)
	}
}

func (r *rig) sequence(addr topology.Addr) []msg.Kind {
	return Kinds(r.col.Deliveries(addr))
}

func kindsEqual(got, want []msg.Kind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

var block = topology.SharedAddr(0, 0)

// Read-shared, case (2)/(3): nobody caches — home replies directly with
// an exclusive grant. Two messages: the request and the data reply.
func TestSequenceReadSharedCold(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, false)
	want := []msg.Kind{msg.ReadShared, msg.HomeData}
	if got := r.sequence(block); !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, r.col)
	}
}

// Read-shared, case (5)/(7): the block is dirty at a slave — the home
// forwards, the slave returns the data to the home (never to the
// master), and the home forwards it on. Figure 7(b).
func TestSequenceReadSharedDirtyRemote(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, true) // node 1 takes M
	r.col.Reset()
	r.access(t, 2, block, false)
	want := []msg.Kind{msg.ReadShared, msg.FwdReadShared, msg.SlaveData, msg.HomeData}
	if got := r.sequence(block); !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, r.col)
	}
}

// Read-shared against an Exclusive (clean) slave: the slave downgrades
// and acknowledges without data; the home serves memory's copy.
func TestSequenceReadSharedExclusiveRemote(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, false) // node 1 takes E
	r.col.Reset()
	r.access(t, 2, block, false)
	want := []msg.Kind{msg.ReadShared, msg.FwdReadShared, msg.SlaveAck, msg.HomeData}
	if got := r.sequence(block); !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, r.col)
	}
}

// Read-exclusive with clean sharers: invalidations are multicast, the
// gathered single acknowledgement returns, and the home grants the data
// exclusively.
func TestSequenceReadExclusiveInvalidates(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, false)
	r.access(t, 2, block, false) // two sharers
	r.col.Reset()
	r.access(t, 3, block, true)
	got := r.sequence(block)
	// The multicast delivers one Invalidate per decoded member (2 here),
	// then exactly one gathered InvAck, then the data grant.
	want := []msg.Kind{msg.ReadExclusive, msg.Invalidate, msg.Invalidate, msg.InvAck, msg.HomeData}
	if !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, r.col)
	}
}

// Ownership: a store to a Shared copy transfers no data — the paper's
// performance improvement over plain read-exclusive.
func TestSequenceOwnershipNoData(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, false)
	r.access(t, 2, block, false)
	r.col.Reset()
	r.access(t, 2, block, true) // node 2 upgrades its S copy
	got := r.col.Deliveries(block)
	// Request, invalidations to the represented set (2 members,
	// including the master itself which acks without invalidating),
	// gathered ack, and a data-less grant.
	want := []msg.Kind{msg.Ownership, msg.Invalidate, msg.Invalidate, msg.InvAck, msg.HomeAck}
	if !kindsEqual(Kinds(got), want) {
		t.Fatalf("sequence = %v, want %v\n%s", Kinds(got), want, r.col)
	}
	for _, ev := range got {
		if ev.Msg == msg.HomeAck && ev.Node != 2 {
			t.Fatalf("grant delivered to %v, want master 2", ev.Node)
		}
	}
}

// Writeback: the no-reply sequence — exactly one message.
func TestSequenceWriteBackNoReply(t *testing.T) {
	r := newRig(t, 16)
	r.access(t, 1, block, true)
	r.col.Reset()
	ctrl := r.m.Controller(1)
	ctrl.Cache().SetState(block, 0 /* Invalid */)
	ctrl.EvictShared(block)
	r.m.Engine().Run()
	want := []msg.Kind{msg.WriteBack}
	if got := r.sequence(block); !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, r.col)
	}
}

// The slave never replies to the master directly: every slave reply in
// any mixed run is addressed to the home. (This is what removes the
// two DASH nack races of Figure 8.)
func TestSlaveRepliesAlwaysViaHome(t *testing.T) {
	r := newRig(t, 16)
	for i := 1; i <= 6; i++ {
		r.access(t, topology.NodeID(i), block, i%2 == 0)
	}
	for _, ev := range r.col.Events() {
		if ev.Kind != core.TraceRecv {
			continue
		}
		if ev.Msg == msg.SlaveData || ev.Msg == msg.SlaveAck || ev.Msg == msg.InvAck {
			if ev.Node != ev.Addr.Home() {
				t.Fatalf("slave reply %v delivered to %v, not the home %v", ev.Msg, ev.Node, ev.Addr.Home())
			}
		}
	}
}

// Update-protocol conformance: a write-through broadcast reaches every
// node and gathers to one acknowledgement.
func TestSequenceUpdateWrite(t *testing.T) {
	upd := func(a topology.Addr) bool { return a.Home() == 0 }
	m := machine.New(machine.Config{Nodes: 4, Multicast: true, UpdateMode: upd})
	col := NewCollector(0)
	m.SetTracer(col.Tracer())
	done := false
	m.Controller(1).Request(block, true, func() { done = true })
	m.Engine().Run()
	if !done {
		t.Fatal("update write did not complete")
	}
	want := []msg.Kind{msg.UpdateWrite, msg.UpdateData, msg.UpdateData, msg.UpdateData, msg.UpdateData, msg.UpdateAck, msg.HomeAck}
	if got := Kinds(col.Deliveries(block)); !kindsEqual(got, want) {
		t.Fatalf("sequence = %v, want %v\n%s", got, want, col)
	}
	if d := col.Dropped(); d > 0 {
		t.Fatalf("trace collector dropped %d events; conformance assertions need the full stream", d)
	}
}

func TestCollectorBoundsAndReset(t *testing.T) {
	col := NewCollector(3)
	for i := 0; i < 5; i++ {
		col.Record(core.TraceEvent{})
	}
	if col.Len() != 3 || col.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", col.Len(), col.Dropped())
	}
	// A lossy collection must say so in every rendering.
	if s := col.String(); !strings.Contains(s, "truncated") || !strings.Contains(s, "2 events dropped") {
		t.Fatalf("String() of a truncated collection does not surface the loss:\n%s", s)
	}
	col.Reset()
	if col.Len() != 0 || col.Dropped() != 0 {
		t.Fatal("reset failed")
	}
	if col.String() != "" {
		t.Fatal("nonempty render after reset")
	}
}
