package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"cenju4/internal/core"
	"cenju4/internal/machine"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// runTraced drives a small deterministic workload and returns the
// collected stream.
func runTraced(t *testing.T) Stream {
	t.Helper()
	m := machine.New(machine.Config{Nodes: 8, Multicast: true})
	col := NewCollector(0)
	m.SetTracer(col.Tracer())
	for i := 0; i < 6; i++ {
		node := topology.NodeID(1 + i%4)
		m.Controller(node).Request(topology.SharedAddr(0, uint64(i%3)), i%2 == 0, func() {})
	}
	m.Engine().Run()
	if col.Len() == 0 {
		t.Fatal("no events collected")
	}
	return col.Stream("run")
}

// TestWriteChromeGoldenDigest is the export half of the acceptance
// criterion: the same workload exported twice produces byte-identical,
// Perfetto-loadable JSON with more than zero events.
func TestWriteChromeGoldenDigest(t *testing.T) {
	var a, b strings.Builder
	if _, err := WriteChrome(&a, runTraced(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteChrome(&b, runTraced(t)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same workload exported twice differs byte-wise")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a.String()), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	events := 0
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "i" {
			events++
		}
	}
	if events == 0 {
		t.Fatal("export contains no instant events")
	}
	// Virtual time only: no key of any record may be a wall-clock field.
	if strings.Contains(a.String(), "\"wall\"") {
		t.Fatal("wall-clock field in export")
	}
}

func TestWriteChromeMultiStreamPids(t *testing.T) {
	var b strings.Builder
	s := runTraced(t)
	s2 := runTraced(t)
	s2.Label = "second"
	if _, err := WriteChrome(&b, s, s2); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, ev := range parsed.TraceEvents {
		pids[ev["pid"].(float64)] = true
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("streams did not get distinct pids: %v", pids)
	}
}

// A truncated stream must carry an explicit loss record and report the
// drop count to the caller.
func TestWriteChromeTruncationSurfaced(t *testing.T) {
	col := NewCollector(2)
	for i := 0; i < 5; i++ {
		col.Record(core.TraceEvent{At: sim.Time(i)})
	}
	var b strings.Builder
	dropped, err := WriteChrome(&b, col.Stream("lossy"))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if !strings.Contains(b.String(), "TRACE TRUNCATED: 3 events dropped") {
		t.Fatalf("no truncation record in export:\n%s", b.String())
	}
	if err := json.Unmarshal([]byte(b.String()), &map[string]any{}); err != nil {
		t.Fatalf("truncated export is not valid JSON: %v", err)
	}
}

func TestWriteChromeRejectsDisorderedStream(t *testing.T) {
	s := Stream{Label: "bad", Events: []core.TraceEvent{
		{At: sim.Time(10)}, {At: sim.Time(5)},
	}}
	if _, err := WriteChrome(&strings.Builder{}, s); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}
