package experiments

import (
	"fmt"
	"strings"

	"cenju4/internal/directory"
	"cenju4/internal/runner"
)

// Table1Result is the directory-scheme comparison: the paper's
// qualitative rows plus the quantitative cost model behind them.
type Table1Result struct {
	Rows  []directory.Characteristic
	Costs []directory.CostRow
}

// Table1 returns the paper's Table 1 with quantitative backing.
func Table1() Table1Result {
	return Table1Result{Rows: directory.Table1(), Costs: directory.CostComparison()}
}

// Render prints the table.
func (r Table1Result) Render() string {
	t := &table{header: []string{"scheme", "hardware cost", "access cost", "note"}}
	mark := func(ok bool) string {
		if ok {
			return "scalable"
		}
		return "x"
	}
	for _, row := range r.Rows {
		t.add(row.Scheme, mark(row.HardwareScale), mark(row.AccessScale), row.Note)
	}
	c := &table{header: []string{"scheme", "bits/block @1024", "enum k=1", "enum k=32", "enum k=1024", "precise"}}
	for _, row := range r.Costs {
		prec := "yes"
		if !row.Precise {
			prec = "no"
		}
		c.add(row.Scheme, fmt.Sprintf("%d", row.Bits1024),
			fmt.Sprintf("%d", row.Enum1), fmt.Sprintf("%d", row.Enum32),
			fmt.Sprintf("%d", row.Enum1024), prec)
	}
	return "Table 1: characteristics of directory schemes\n" + t.String() +
		"\nQuantitative cost model (per-block storage; sequential accesses to enumerate k sharers):\n" + c.String()
}

// Figure4Result holds both panels of Figure 4: average represented-set
// size per scheme, with sharers drawn from all 1024 nodes (panel a) and
// from one 128-node group (panel b).
type Figure4Result struct {
	PanelA map[string][]directory.PrecisionPoint
	PanelB map[string][]directory.PrecisionPoint
}

// Figure4 runs the Monte-Carlo precision sweeps, one worker per
// (scheme, panel) pair. Each sweep's seed is fixed by its panel, so
// the result is independent of cfg.Parallel.
func Figure4(cfg Config) Figure4Result {
	cfg = cfg.withDefaults()
	res := Figure4Result{
		PanelA: make(map[string][]directory.PrecisionPoint),
		PanelB: make(map[string][]directory.PrecisionPoint),
	}
	a := directory.PrecisionConfig{TotalNodes: 1024, Trials: cfg.Trials, Seed: cfg.Seed}
	b := directory.PrecisionConfig{TotalNodes: 1024, GroupSize: 128, Trials: cfg.Trials, Seed: cfg.Seed + 1}
	schemes := directory.Schemes()
	type sweep struct {
		scheme int // index into schemes
		pc     directory.PrecisionConfig
		counts []int
		panelA bool
	}
	var jobs []sweep
	for i := range schemes {
		jobs = append(jobs, sweep{i, a, directory.DefaultSharerCounts(1024), true})
		jobs = append(jobs, sweep{i, b, directory.DefaultSharerCounts(128), false})
	}
	points, panics := runner.Map(cfg.parOpts(), len(jobs), func(i int) []directory.PrecisionPoint {
		j := jobs[i]
		return directory.EvaluatePrecision(schemes[j.scheme], j.pc, j.counts)
	})
	rethrow(panics)
	for i, j := range jobs {
		if j.panelA {
			res.PanelA[schemes[j.scheme].Name] = points[i]
		} else {
			res.PanelB[schemes[j.scheme].Name] = points[i]
		}
	}
	return res
}

// SchemeNames returns the series names in plot order.
func (Figure4Result) SchemeNames() []string {
	names := make([]string, 0, 3)
	for _, s := range directory.Schemes() {
		names = append(names, s.Name)
	}
	return names
}

// Render prints both panels.
func (r Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: behavior of imprecise node maps (1024-node system)\n")
	render := func(title string, panel map[string][]directory.PrecisionPoint) {
		fmt.Fprintf(&b, "\n%s\n", title)
		names := r.SchemeNames()
		t := &table{header: append([]string{"sharers"}, names...)}
		if len(panel[names[0]]) == 0 {
			return
		}
		for i := range panel[names[0]] {
			cells := []string{fmt.Sprintf("%d", panel[names[0]][i].Sharers)}
			for _, n := range names {
				cells = append(cells, fmt.Sprintf("%.1f", panel[n][i].Represented))
			}
			t.add(cells...)
		}
		b.WriteString(t.String())
	}
	render("(a) sharers chosen from 1024 nodes — avg nodes represented", r.PanelA)
	render("(b) sharers chosen from a 128-node group — avg nodes represented", r.PanelB)
	return b.String()
}
