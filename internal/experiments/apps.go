package experiments

import (
	"fmt"
	"strings"

	"cenju4/internal/cpu"
	"cenju4/internal/machine"
	"cenju4/internal/npb"
	"cenju4/internal/runner"
	"cenju4/internal/sim"
)

// paperNodes returns the machine size the paper uses for an application
// in Figures 11/12 and Tables 3/4: BT and SP on 64 nodes, CG and FT on
// 128.
func paperNodes(app npb.App) int {
	if app == npb.BT || app == npb.SP {
		return 64
	}
	return 128
}

// appRun is one measured application execution.
type appRun struct {
	meta   npb.Meta
	result machine.Result
	obs    *runObservation
}

func runOne(cfg Config, app npb.App, v npb.Variant, nodes int, mapped bool) appRun {
	w, err := npb.Build(npb.Options{
		App:         app,
		Variant:     v,
		Nodes:       nodes,
		DataMapping: mapped,
		Iterations:  cfg.Iterations,
		Scale:       cfg.Scale,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	intra := cfg.intraFor(v, nodes)
	m := machine.New(machine.Config{
		Nodes:         nodes,
		Multicast:     true,
		Fault:         cfg.Fault,
		IntraParallel: intra,
		IntraWorkers:  runner.NestedBudget(cfg.Parallel, intra),
	})
	col := cfg.observePre(m)
	r := m.Run(w.Progs)
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("experiments: coherence violated by %v/%v: %v", app, v, err))
	}
	label := fmt.Sprintf("%v/%v nodes=%d", app, v, nodes)
	return appRun{meta: w.Meta, result: r, obs: cfg.observePost(m, col, label)}
}

// appJob names one application run of a sweep: the job lists are pure
// data so the whole sweep can shard across the worker pool.
type appJob struct {
	app    npb.App
	v      npb.Variant
	nodes  int
	mapped bool
}

// runJobs executes the jobs across cfg.Parallel workers (each run
// builds its own machine) and returns the results in job order.
func runJobs(cfg Config, jobs []appJob) []appRun {
	runs, panics := runner.Map(cfg.parOpts(), len(jobs), func(i int) appRun {
		j := jobs[i]
		return runOne(cfg, j.app, j.v, j.nodes, j.mapped)
	})
	rethrow(panics)
	for _, run := range runs {
		cfg.Observe.absorb(run.obs)
	}
	return runs
}

// appVariants is the program set of Figure 11 (Table 3 uses the dsm
// tail, appVariants[1:]), in presentation order.
var appVariants = []struct {
	v      npb.Variant
	mapped bool
}{{npb.MPI, false}, {npb.DSM1, false}, {npb.DSM1, true}, {npb.DSM2, false}, {npb.DSM2, true}}

// efficiency is speedup divided by node count.
func efficiency(seq sim.Time, r machine.Result, nodes int) float64 {
	return float64(seq) / (float64(nodes) * float64(r.Time))
}

// ---------------------------------------------------------------------
// Figure 11: DSM vs message passing.

// Figure11Entry is one bar of Figure 11.
type Figure11Entry struct {
	App          npb.App
	Variant      npb.Variant
	Mapped       bool
	RewriteRatio float64 // panel (a)
	Efficiency   float64 // panel (b)
	Nodes        int
}

// Figure11Result holds both panels.
type Figure11Result struct {
	Entries []Figure11Entry
	// PaperEfficiency holds the efficiencies the paper states in the
	// text for the mapped dsm programs.
	PaperEfficiency map[string]float64
}

// Figure11 measures rewriting ratio and parallel efficiency for the
// mpi, dsm(1) and dsm(2) programs of all four applications (dsm forms
// with and without data mappings).
func Figure11(cfg Config) Figure11Result {
	cfg = cfg.withDefaults()
	res := Figure11Result{PaperEfficiency: map[string]float64{
		"BT dsm(2)": 0.97, "FT dsm(2)": 0.81, "SP dsm(2)": 0.71,
		"BT dsm(1)": 0.20, "CG dsm(1)": 0.20, "SP dsm(1)": 0.20, "FT dsm(1)": 0.40,
	}}
	var jobs []appJob
	for _, app := range npb.Apps() {
		jobs = append(jobs, appJob{app, npb.Seq, 1, false})
		for _, c := range appVariants {
			jobs = append(jobs, appJob{app, c.v, paperNodes(app), c.mapped})
		}
	}
	runs := runJobs(cfg, jobs)
	for i := 0; i < len(runs); {
		nodes := paperNodes(jobs[i].app)
		seq := runs[i].result.Time // the npb.Seq baseline leads each group
		i++
		for range appVariants {
			j, run := jobs[i], runs[i]
			i++
			res.Entries = append(res.Entries, Figure11Entry{
				App:          j.app,
				Variant:      j.v,
				Mapped:       j.mapped,
				RewriteRatio: run.meta.RewriteRatio,
				Efficiency:   efficiency(seq, run.result, nodes),
				Nodes:        nodes,
			})
		}
	}
	return res
}

// Find returns the entry for (app, variant, mapped).
func (r Figure11Result) Find(app npb.App, v npb.Variant, mapped bool) (Figure11Entry, bool) {
	for _, e := range r.Entries {
		if e.App == app && e.Variant == v && e.Mapped == mapped {
			return e, true
		}
	}
	return Figure11Entry{}, false
}

// Render prints both panels.
func (r Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11(a): program rewriting ratio\n")
	ta := &table{header: []string{"app", "mpi", "dsm(1)", "dsm(1)+map", "dsm(2)", "dsm(2)+map"}}
	tb := &table{header: []string{"app", "nodes", "mpi", "dsm(1) no-map", "dsm(1)", "dsm(2) no-map", "dsm(2)", "paper dsm(2)"}}
	for _, app := range npb.Apps() {
		row := []string{app.String()}
		for _, c := range appVariants {
			if e, ok := r.Find(app, c.v, c.mapped); ok {
				row = append(row, pct(e.RewriteRatio))
			}
		}
		ta.add(row...)

		row = []string{app.String()}
		var nodes int
		for _, c := range appVariants {
			if e, ok := r.Find(app, c.v, c.mapped); ok {
				if nodes == 0 {
					nodes = e.Nodes
					row = append(row, fmt.Sprintf("%d", nodes))
				}
				row = append(row, pct(e.Efficiency))
			}
		}
		paper := "-"
		if v, ok := r.PaperEfficiency[app.String()+" dsm(2)"]; ok {
			paper = pct(v)
		}
		row = append(row, paper)
		tb.add(row...)
	}
	b.WriteString(ta.String())
	b.WriteString("\nFigure 11(b): parallel efficiency\n")
	b.WriteString(tb.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 12: speedups of the dsm(2) programs.

// Figure12Series is one application's speedup curve.
type Figure12Series struct {
	App      npb.App
	Nodes    []int
	Speedups []float64
}

// Figure12Result holds the four curves.
type Figure12Result struct {
	Series []Figure12Series
}

// Figure12 sweeps the dsm(2) programs (with data mappings) over machine
// sizes: up to 64 nodes for BT and SP, up to 128 for CG and FT.
func Figure12(cfg Config) Figure12Result {
	cfg = cfg.withDefaults()
	var res Figure12Result
	var jobs []appJob
	for _, app := range npb.Apps() {
		jobs = append(jobs, appJob{app, npb.Seq, 1, false})
		for _, n := range figure12Counts(app) {
			jobs = append(jobs, appJob{app, npb.DSM2, n, true})
		}
	}
	runs := runJobs(cfg, jobs)
	i := 0
	for _, app := range npb.Apps() {
		seq := runs[i].result.Time
		i++
		s := Figure12Series{App: app}
		for _, n := range figure12Counts(app) {
			s.Nodes = append(s.Nodes, n)
			s.Speedups = append(s.Speedups, float64(seq)/float64(runs[i].result.Time))
			i++
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// figure12Counts returns the machine sizes swept for an application:
// up to its paper size.
func figure12Counts(app npb.App) []int {
	counts := []int{4, 16, 64}
	if paperNodes(app) == 128 {
		counts = append(counts, 128)
	}
	return counts
}

// Find returns the series for app.
func (r Figure12Result) Find(app npb.App) (Figure12Series, bool) {
	for _, s := range r.Series {
		if s.App == app {
			return s, true
		}
	}
	return Figure12Series{}, false
}

// Render prints the curves.
func (r Figure12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: speedups of dsm(2) applications (with data mappings)\n")
	t := &table{header: []string{"app", "nodes", "speedup", "efficiency"}}
	for _, s := range r.Series {
		for i := range s.Nodes {
			t.add(s.App.String(), fmt.Sprintf("%d", s.Nodes[i]),
				fmt.Sprintf("%.1fx", s.Speedups[i]),
				pct(s.Speedups[i]/float64(s.Nodes[i])))
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nCG's curve saturates (its per-node remote re-fetch of the shared\nvector is constant while per-node work shrinks); BT, FT and SP keep scaling.\n")
	return b.String()
}

// ---------------------------------------------------------------------
// Table 3: secondary cache miss characteristics.

// Table3Row is one row: an application/variant/mapping combination.
type Table3Row struct {
	App       npb.App
	Variant   npb.Variant
	Mapped    bool
	Nodes     int
	MissRatio float64
	// Private, Local, Remote are fractions of all misses.
	Private, Local, Remote float64
}

// Table3Result holds all rows.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 measures miss ratios and breakdowns for dsm(1) and dsm(2) with
// and without data mappings.
func Table3(cfg Config) Table3Result {
	cfg = cfg.withDefaults()
	var res Table3Result
	var jobs []appJob
	for _, app := range npb.Apps() {
		for _, c := range appVariants[1:] { // the four dsm programs
			jobs = append(jobs, appJob{app, c.v, paperNodes(app), c.mapped})
		}
	}
	runs := runJobs(cfg, jobs)
	for i, run := range runs {
		j := jobs[i]
		tot := run.result.Totals()
		misses := float64(tot.Misses)
		if misses == 0 {
			misses = 1
		}
		res.Rows = append(res.Rows, Table3Row{
			App:       j.app,
			Variant:   j.v,
			Mapped:    j.mapped,
			Nodes:     j.nodes,
			MissRatio: tot.MissRatio(),
			Private:   float64(tot.PrivateMisses) / misses,
			Local:     float64(tot.LocalMisses) / misses,
			Remote:    float64(tot.RemoteMisses) / misses,
		})
	}
	return res
}

// Find returns the row for (app, variant, mapped).
func (r Table3Result) Find(app npb.App, v npb.Variant, mapped bool) (Table3Row, bool) {
	for _, row := range r.Rows {
		if row.App == app && row.Variant == v && row.Mapped == mapped {
			return row, true
		}
	}
	return Table3Row{}, false
}

// Render prints the table.
func (r Table3Result) Render() string {
	t := &table{header: []string{"app(nodes)", "program", "miss ratio", "private", "local", "remote"}}
	for _, row := range r.Rows {
		name := row.Variant.String()
		if !row.Mapped {
			name += " (no mappings)"
		}
		t.add(fmt.Sprintf("%v(%d)", row.App, row.Nodes), name,
			pct(row.MissRatio), pct(row.Private), pct(row.Local), pct(row.Remote))
	}
	return "Table 3: secondary cache miss characteristics\n" + t.String()
}

// ---------------------------------------------------------------------
// Table 4: application characteristics at two machine sizes.

// Table4Row is one (app, nodes) row of Table 4, for the dsm(2) mapped
// programs.
type Table4Row struct {
	App   npb.App
	Nodes int
	// ExecTime is the measured makespan.
	ExecTime sim.Time
	// SyncFrac is synchronization time / total time (averaged over
	// nodes). The paper's "system" column (OS overhead) is not modeled.
	SyncFrac float64
	// Instructions and MemAccesses are machine totals.
	Instructions uint64
	MemAccesses  uint64
	// Access breakdown (fractions of memory accesses).
	AccPrivate, AccLocal, AccRemote float64
	// MissRatio and miss breakdown.
	MissRatio                          float64
	MissPrivate, MissLocal, MissRemote float64
}

// Table4Result holds the rows.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 measures the dsm(2) programs at 16 nodes and at the paper's
// large size (64 for BT/SP, 128 for CG/FT).
func Table4(cfg Config) Table4Result {
	cfg = cfg.withDefaults()
	var res Table4Result
	var jobs []appJob
	for _, app := range npb.Apps() {
		for _, nodes := range []int{16, paperNodes(app)} {
			jobs = append(jobs, appJob{app, npb.DSM2, nodes, true})
		}
	}
	runs := runJobs(cfg, jobs)
	for i, run := range runs {
		j := jobs[i]
		tot := run.result.Totals()
		acc := float64(tot.MemAccesses)
		if acc == 0 {
			acc = 1
		}
		misses := float64(tot.Misses)
		if misses == 0 {
			misses = 1
		}
		res.Rows = append(res.Rows, Table4Row{
			App:          j.app,
			Nodes:        j.nodes,
			ExecTime:     run.result.Time,
			SyncFrac:     float64(tot.SyncTime) / (float64(run.result.Time) * float64(j.nodes)),
			Instructions: tot.Instructions,
			MemAccesses:  tot.MemAccesses,
			AccPrivate:   float64(tot.PrivateAccesses) / acc,
			AccLocal:     float64(tot.LocalAccesses) / acc,
			AccRemote:    float64(tot.RemoteAccesses) / acc,
			MissRatio:    tot.MissRatio(),
			MissPrivate:  float64(tot.PrivateMisses) / misses,
			MissLocal:    float64(tot.LocalMisses) / misses,
			MissRemote:   float64(tot.RemoteMisses) / misses,
		})
	}
	return res
}

// Find returns the row for (app, nodes).
func (r Table4Result) Find(app npb.App, nodes int) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.App == app && row.Nodes == nodes {
			return row, true
		}
	}
	return Table4Row{}, false
}

// Render prints the table.
func (r Table4Result) Render() string {
	t := &table{header: []string{
		"app", "nodes", "time", "sync", "instr(1e6)", "mem(1e6)",
		"acc p/l/r", "miss ratio", "miss p/l/r"}}
	for _, row := range r.Rows {
		t.add(row.App.String(), fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.3fms", float64(row.ExecTime)/1e6),
			pct(row.SyncFrac),
			fmt.Sprintf("%.2f", float64(row.Instructions)/1e6),
			fmt.Sprintf("%.2f", float64(row.MemAccesses)/1e6),
			fmt.Sprintf("%.0f/%.0f/%.0f%%", 100*row.AccPrivate, 100*row.AccLocal, 100*row.AccRemote),
			pct(row.MissRatio),
			fmt.Sprintf("%.0f/%.0f/%.0f%%", 100*row.MissPrivate, 100*row.MissLocal, 100*row.MissRemote))
	}
	return "Table 4: characteristics of applications (dsm(2), data mappings; system time not modeled)\n" + t.String()
}

// Totals re-exports the aggregate CPU stats helper for the CLI.
func Totals(r machine.Result) cpu.Stats { return r.Totals() }
